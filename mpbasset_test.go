package mpbasset_test

import (
	"testing"
	"time"

	"mpbasset"
	"mpbasset/internal/explore"
	"mpbasset/internal/mptest"
	"mpbasset/internal/protocols/multicast"
	"mpbasset/internal/protocols/paxos"
	"mpbasset/internal/protocols/storage"
)

func TestCheckDefaults(t *testing.T) {
	p, err := paxos.New(paxos.Config{Proposers: 1, Acceptors: 3, Learners: 1})
	if err != nil {
		t.Fatal(err)
	}
	res, err := mpbasset.Check(p, mpbasset.Options{})
	if err != nil {
		t.Fatal(err)
	}
	if res.Verdict != mpbasset.VerdictVerified {
		t.Fatalf("verdict = %s", res.Verdict)
	}
	if res.Stats.States == 0 || res.Stats.Duration == 0 {
		t.Fatal("stats not populated")
	}
}

func TestCheckAllSearches(t *testing.T) {
	quorum, err := paxos.New(paxos.Config{Proposers: 1, Acceptors: 3, Learners: 1})
	if err != nil {
		t.Fatal(err)
	}
	single, err := paxos.New(paxos.Config{Proposers: 1, Acceptors: 3, Learners: 1, Model: paxos.ModelSingle})
	if err != nil {
		t.Fatal(err)
	}
	cases := []struct {
		name   string
		p      *mpbasset.Protocol
		search mpbasset.Search
	}{
		{"spor", quorum, mpbasset.SearchSPOR},
		{"unreduced", quorum, mpbasset.SearchUnreduced},
		{"bfs", quorum, mpbasset.SearchBFS},
		{"stateless", quorum, mpbasset.SearchStateless},
		{"dpor", single, mpbasset.SearchDPOR},
	}
	for _, tc := range cases {
		res, err := mpbasset.Check(tc.p, mpbasset.Options{Search: tc.search, MaxDuration: time.Minute})
		if err != nil {
			t.Fatalf("%s: %v", tc.name, err)
		}
		if res.Verdict != mpbasset.VerdictVerified {
			t.Errorf("%s: verdict %s", tc.name, res.Verdict)
		}
	}
	// DPOR must reject quorum models.
	if _, err := mpbasset.Check(quorum, mpbasset.Options{Search: mpbasset.SearchDPOR}); err == nil {
		t.Error("DPOR accepted a quorum model")
	}
}

func TestCheckSplitAndSymmetry(t *testing.T) {
	cfg := paxos.Config{Proposers: 2, Acceptors: 3, Learners: 1}
	p, err := paxos.New(cfg)
	if err != nil {
		t.Fatal(err)
	}
	plain, err := mpbasset.Check(p, mpbasset.Options{Search: mpbasset.SearchUnreduced})
	if err != nil {
		t.Fatal(err)
	}
	split, err := mpbasset.Check(p, mpbasset.Options{Search: mpbasset.SearchUnreduced, Split: mpbasset.SplitCombined})
	if err != nil {
		t.Fatal(err)
	}
	// Theorem 2 through the facade: same graph, same count, unreduced.
	if split.Stats.States != plain.Stats.States {
		t.Errorf("split changed unreduced state count: %d vs %d", split.Stats.States, plain.Stats.States)
	}
	sym, err := mpbasset.Check(p, mpbasset.Options{Search: mpbasset.SearchUnreduced, SymmetryRoles: cfg.Roles()})
	if err != nil {
		t.Fatal(err)
	}
	if sym.Stats.States >= plain.Stats.States {
		t.Errorf("symmetry did not reduce: %d vs %d", sym.Stats.States, plain.Stats.States)
	}
}

func TestCheckFindsBugsWithTraces(t *testing.T) {
	cases := []struct {
		name string
		mk   func() (*mpbasset.Protocol, error)
	}{
		{"faulty-paxos", func() (*mpbasset.Protocol, error) {
			return paxos.New(paxos.Config{Proposers: 2, Acceptors: 3, Learners: 1, Faulty: true})
		}},
		{"wrong-agreement", func() (*mpbasset.Protocol, error) {
			return multicast.New(multicast.Config{HonestReceivers: 2, HonestInitiators: 1, ByzantineReceivers: 2, ByzantineInitiators: 1})
		}},
		{"wrong-regularity", func() (*mpbasset.Protocol, error) {
			return storage.New(storage.Config{Objects: 3, Readers: 2, WrongRegularity: true})
		}},
	}
	for _, tc := range cases {
		p, err := tc.mk()
		if err != nil {
			t.Fatal(err)
		}
		res, err := mpbasset.Check(p, mpbasset.Options{Search: mpbasset.SearchBFS, TrackTrace: true})
		if err != nil {
			t.Fatalf("%s: %v", tc.name, err)
		}
		if res.Verdict != mpbasset.VerdictViolated || res.Violation == nil || len(res.Trace) == 0 {
			t.Errorf("%s: expected a counterexample with trace, got %s", tc.name, res.Verdict)
		}
	}
}

// TestCheckWorkers drives the parallel engines through the facade: every
// stateful search under Workers must reproduce its own sequential run —
// the DFS searches (SPOR, unreduced) via the speculative parallel DFS
// engine, SearchBFS via the frontier-parallel BFS engine — for several
// worker counts, with and without symmetry/refinement, and the stateless
// searches must reject workers.
func TestCheckWorkers(t *testing.T) {
	cfg := paxos.Config{Proposers: 2, Acceptors: 3, Learners: 1}
	p, err := paxos.New(cfg)
	if err != nil {
		t.Fatal(err)
	}
	for _, search := range []mpbasset.Search{mpbasset.SearchSPOR, mpbasset.SearchUnreduced, mpbasset.SearchBFS} {
		seq, err := mpbasset.Check(p, mpbasset.Options{Search: search, MaxDuration: 2 * time.Minute})
		if err != nil {
			t.Fatal(err)
		}
		for _, workers := range []int{1, 4} {
			res, err := mpbasset.Check(p, mpbasset.Options{Search: search, Workers: workers, MaxDuration: 2 * time.Minute})
			if err != nil {
				t.Fatalf("search %d workers %d: %v", search, workers, err)
			}
			if res.Verdict != mpbasset.VerdictVerified {
				t.Errorf("search %d workers %d: verdict %s", search, workers, res.Verdict)
			}
			if res.Stats.States != seq.Stats.States || res.Stats.Events != seq.Stats.Events {
				t.Errorf("search %d workers %d: states=%d events=%d, sequential states=%d events=%d",
					search, workers, res.Stats.States, res.Stats.Events, seq.Stats.States, seq.Stats.Events)
			}
		}
	}
	// Symmetry + refinement + workers through the facade.
	sym, err := mpbasset.Check(p, mpbasset.Options{
		Search: mpbasset.SearchSPOR, Split: mpbasset.SplitCombined,
		SymmetryRoles: cfg.Roles(), Workers: 4, MaxDuration: 2 * time.Minute,
	})
	if err != nil {
		t.Fatal(err)
	}
	if sym.Verdict != mpbasset.VerdictVerified {
		t.Errorf("symmetry+split+workers: verdict %s", sym.Verdict)
	}
	// Parallel counterexamples keep their traces.
	faulty, err := paxos.New(paxos.Config{Proposers: 2, Acceptors: 3, Learners: 1, Faulty: true})
	if err != nil {
		t.Fatal(err)
	}
	ce, err := mpbasset.Check(faulty, mpbasset.Options{Search: mpbasset.SearchBFS, Workers: 4, TrackTrace: true})
	if err != nil {
		t.Fatal(err)
	}
	if ce.Verdict != mpbasset.VerdictViolated || len(ce.Trace) == 0 {
		t.Errorf("faulty paxos with workers: verdict %s, trace %d steps", ce.Verdict, len(ce.Trace))
	}
	// SearchDPOR + Workers runs the speculative parallel DPOR engine,
	// bit-identical to the sequential DPOR run (single-message models only,
	// so it gets its own protocol instance).
	single, err := paxos.New(paxos.Config{Proposers: 1, Acceptors: 3, Learners: 1, Model: paxos.ModelSingle})
	if err != nil {
		t.Fatal(err)
	}
	dporSeq, err := mpbasset.Check(single, mpbasset.Options{Search: mpbasset.SearchDPOR, MaxDuration: 2 * time.Minute})
	if err != nil {
		t.Fatal(err)
	}
	for _, workers := range []int{1, 4} {
		res, err := mpbasset.Check(single, mpbasset.Options{Search: mpbasset.SearchDPOR, Workers: workers, MaxDuration: 2 * time.Minute})
		if err != nil {
			t.Fatalf("dpor workers %d: %v", workers, err)
		}
		if res.Verdict != dporSeq.Verdict {
			t.Errorf("dpor workers %d: verdict %s, sequential %s", workers, res.Verdict, dporSeq.Verdict)
		}
		if res.Stats.States != dporSeq.Stats.States || res.Stats.Events != dporSeq.Stats.Events {
			t.Errorf("dpor workers %d: states=%d events=%d, sequential states=%d events=%d",
				workers, res.Stats.States, res.Stats.Events, dporSeq.Stats.States, dporSeq.Stats.Events)
		}
	}
	// The stateless search is the only engine without a parallel
	// counterpart; its rejection names the CLI flag spelling.
	if _, err := mpbasset.Check(p, mpbasset.Options{Search: mpbasset.SearchStateless, Workers: 2}); err == nil {
		t.Error("stateless search accepted Workers")
	}
}

// TestCheckStoreBudget drives the facade's spill path: a check under a
// tiny memory budget must spill to disk, report the spill activity, and
// reproduce the unconstrained run's verdict and search statistics
// bit-identically — sequential and parallel, verified and violating.
func TestCheckStoreBudget(t *testing.T) {
	verified, err := paxos.New(paxos.Config{Proposers: 1, Acceptors: 3, Learners: 1})
	if err != nil {
		t.Fatal(err)
	}
	violating, err := paxos.New(paxos.Config{Proposers: 2, Acceptors: 3, Learners: 1, Faulty: true})
	if err != nil {
		t.Fatal(err)
	}
	cases := []struct {
		name string
		p    *mpbasset.Protocol
		opts mpbasset.Options
	}{
		{"sequential-spor", verified, mpbasset.Options{}},
		{"parallel-spor", verified, mpbasset.Options{Workers: 4}},
		{"bfs-violating", violating, mpbasset.Options{Search: mpbasset.SearchBFS, TrackTrace: true}},
	}
	for _, tc := range cases {
		t.Run(tc.name, func(t *testing.T) {
			ref, err := mpbasset.Check(tc.p, tc.opts)
			if err != nil {
				t.Fatal(err)
			}
			budgeted := tc.opts
			budgeted.StoreBudgetBytes = 2048
			budgeted.SpillDir = t.TempDir()
			res, err := mpbasset.Check(tc.p, budgeted)
			if err != nil {
				t.Fatal(err)
			}
			if res.Stats.SpillRuns == 0 || res.Stats.SpillBytes == 0 {
				t.Fatalf("tiny budget never spilled: %+v", res.Stats)
			}
			if res.Verdict != ref.Verdict {
				t.Errorf("verdict %s under budget, %s without", res.Verdict, ref.Verdict)
			}
			rs, ws := res.Stats, ref.Stats
			rs.Duration, ws.Duration = 0, 0
			rs.SpillRuns, rs.SpillBytes, rs.DiskProbes = 0, 0, 0
			ws.SpillRuns, ws.SpillBytes, ws.DiskProbes = 0, 0, 0
			if rs != ws {
				t.Errorf("stats %+v under budget, %+v without", rs, ws)
			}
			if len(res.Trace) != len(ref.Trace) {
				t.Errorf("trace length %d under budget, %d without", len(res.Trace), len(ref.Trace))
			}
		})
	}
}

// TestCheckStoreBudgetRejections pins the option-combination errors.
func TestCheckStoreBudgetRejections(t *testing.T) {
	p, err := paxos.New(paxos.Config{Proposers: 1, Acceptors: 3, Learners: 1})
	if err != nil {
		t.Fatal(err)
	}
	if _, err := mpbasset.Check(p, mpbasset.Options{SpillDir: t.TempDir()}); err == nil {
		t.Error("SpillDir without StoreBudgetBytes accepted")
	}
	if _, err := mpbasset.Check(p, mpbasset.Options{StoreBudgetBytes: 1 << 20, ExactStates: true}); err == nil {
		t.Error("StoreBudgetBytes with ExactStates accepted")
	}
	if _, err := mpbasset.Check(p, mpbasset.Options{StoreBudgetBytes: 1 << 20, Search: mpbasset.SearchStateless}); err == nil {
		t.Error("StoreBudgetBytes with stateless search accepted")
	}
	single, err := paxos.New(paxos.Config{Proposers: 1, Acceptors: 3, Learners: 1, Model: paxos.ModelSingle})
	if err != nil {
		t.Fatal(err)
	}
	if _, err := mpbasset.Check(single, mpbasset.Options{StoreBudgetBytes: 1 << 20, Search: mpbasset.SearchDPOR}); err == nil {
		t.Error("StoreBudgetBytes with DPOR search accepted")
	}
}

func TestCheckNilProtocol(t *testing.T) {
	if _, err := mpbasset.Check(nil, mpbasset.Options{}); err == nil {
		t.Fatal("nil protocol accepted")
	}
}

func TestCheckLimits(t *testing.T) {
	p, err := paxos.New(paxos.Config{Proposers: 2, Acceptors: 3, Learners: 1})
	if err != nil {
		t.Fatal(err)
	}
	res, err := mpbasset.Check(p, mpbasset.Options{Search: mpbasset.SearchUnreduced, MaxStates: 100})
	if err != nil {
		t.Fatal(err)
	}
	if res.Verdict != mpbasset.VerdictLimit {
		t.Fatalf("verdict = %s, want Limit", res.Verdict)
	}
}

func TestCheckExactStates(t *testing.T) {
	p, err := paxos.New(paxos.Config{Proposers: 1, Acceptors: 3, Learners: 1})
	if err != nil {
		t.Fatal(err)
	}
	hashed, err := mpbasset.Check(p, mpbasset.Options{Search: mpbasset.SearchUnreduced})
	if err != nil {
		t.Fatal(err)
	}
	exact, err := mpbasset.Check(p, mpbasset.Options{Search: mpbasset.SearchUnreduced, ExactStates: true})
	if err != nil {
		t.Fatal(err)
	}
	if hashed.Stats.States != exact.Stats.States {
		t.Fatalf("stores disagree: %d vs %d", hashed.Stats.States, exact.Stats.States)
	}
}

// TestCheckLiveness drives the liveness path through the facade: verified
// and violated properties, sequential and parallel, in-memory and spill
// stores, with the lasso fields populated on violations and the
// unsupported-search combinations rejected.
func TestCheckLiveness(t *testing.T) {
	st, err := storage.New(storage.Config{Objects: 3, Readers: 1})
	if err != nil {
		t.Fatal(err)
	}
	prop := storage.ReadsComplete(storage.Config{Objects: 3, Readers: 1})
	var ref *mpbasset.Result
	for _, tc := range []struct {
		name string
		opts mpbasset.Options
	}{
		{"spor", mpbasset.Options{Property: prop}},
		{"unreduced", mpbasset.Options{Search: mpbasset.SearchUnreduced, Property: prop}},
		{"spor-workers", mpbasset.Options{Property: prop, Workers: 4}},
		{"spor-spill", mpbasset.Options{Property: prop, StoreBudgetBytes: 1 << 10}},
	} {
		res, err := mpbasset.Check(st, tc.opts)
		if err != nil {
			t.Fatalf("%s: %v", tc.name, err)
		}
		if res.Verdict != mpbasset.VerdictVerified {
			t.Errorf("%s: verdict %s, want Verified", tc.name, res.Verdict)
		}
		// The SPOR configurations must agree bit-for-bit with each other
		// (unreduced explores a different graph and is checked by verdict).
		if tc.name == "spor" {
			ref = res
		} else if tc.name != "unreduced" {
			rs, ws := res.Stats, ref.Stats
			rs.Duration, ws.Duration = 0, 0
			rs.SpillRuns, rs.SpillBytes, rs.DiskProbes = 0, 0, 0
			ws.SpillRuns, ws.SpillBytes, ws.DiskProbes = 0, 0, 0
			if rs != ws {
				t.Errorf("%s: stats %+v, want %+v", tc.name, rs, ws)
			}
		}
	}

	// A violated property yields a lasso counterexample through the facade.
	trap, trapProp, err := mptest.LivenessTrap(3)
	if err != nil {
		t.Fatal(err)
	}
	res, err := mpbasset.Check(trap, mpbasset.Options{Property: trapProp})
	if err != nil {
		t.Fatal(err)
	}
	if res.Verdict != mpbasset.VerdictViolated || res.Violation == nil {
		t.Fatalf("trap: verdict %s (violation %v), want a violation", res.Verdict, res.Violation)
	}
	if len(res.Trace) == 0 || res.CycleLen < 1 || res.Stutter {
		t.Errorf("trap: lasso (trace %d, cycle %d, stutter %v), want a real cycle", len(res.Trace), res.CycleLen, res.Stutter)
	}
	if _, err := explore.ReplayLasso(trap, trapProp, res.Trace, res.CycleLen, res.Stutter, nil); err != nil {
		t.Errorf("trap: lasso does not replay: %v", err)
	}

	// The Eventually re-export builds usable properties.
	own := mpbasset.Eventually("never", nil, func(*mpbasset.State) bool { return false })
	if own == nil || own.Accept == nil {
		t.Fatal("Eventually re-export broken")
	}

	// Non-DFS searches reject properties.
	for _, search := range []mpbasset.Search{mpbasset.SearchBFS, mpbasset.SearchStateless, mpbasset.SearchDPOR} {
		if _, err := mpbasset.Check(st, mpbasset.Options{Search: search, Property: prop}); err == nil {
			t.Errorf("search %d accepted a liveness property", search)
		}
	}
}

// TestCheckCompress pins collapse compression's facade contract: verdicts
// and deterministic stats identical to the uncompressed run, and traces
// transparently decompressed to full canonical keys — bit-identical to the
// uncompressed trace, sequential and parallel alike — so replay with a nil
// canon works as if compression had never happened.
func TestCheckCompress(t *testing.T) {
	verified, err := paxos.New(paxos.Config{Proposers: 1, Acceptors: 3, Learners: 1})
	if err != nil {
		t.Fatal(err)
	}
	violating, err := paxos.New(paxos.Config{Proposers: 2, Acceptors: 3, Learners: 1, Faulty: true})
	if err != nil {
		t.Fatal(err)
	}
	for _, tc := range []struct {
		name string
		p    *mpbasset.Protocol
		opts mpbasset.Options
	}{
		{"sequential-spor", verified, mpbasset.Options{TrackTrace: true}},
		{"parallel-spor", verified, mpbasset.Options{TrackTrace: true, Workers: 4}},
		{"violating-dfs", violating, mpbasset.Options{Search: mpbasset.SearchUnreduced, TrackTrace: true}},
		{"violating-parallel", violating, mpbasset.Options{TrackTrace: true, Workers: 4}},
		{"violating-bfs", violating, mpbasset.Options{Search: mpbasset.SearchBFS, TrackTrace: true}},
		{"spill", verified, mpbasset.Options{TrackTrace: true, StoreBudgetBytes: 2048}},
	} {
		t.Run(tc.name, func(t *testing.T) {
			ref, err := mpbasset.Check(tc.p, tc.opts)
			if err != nil {
				t.Fatal(err)
			}
			compressed := tc.opts
			compressed.Compress = true
			res, err := mpbasset.Check(tc.p, compressed)
			if err != nil {
				t.Fatal(err)
			}
			if res.Verdict != ref.Verdict {
				t.Fatalf("verdict %s compressed, %s plain", res.Verdict, ref.Verdict)
			}
			rs, ws := res.Stats, ref.Stats
			rs.Duration, ws.Duration = 0, 0
			rs.SpillRuns, rs.SpillBytes, rs.DiskProbes = 0, 0, 0
			ws.SpillRuns, ws.SpillBytes, ws.DiskProbes = 0, 0, 0
			if rs != ws {
				t.Errorf("stats %+v compressed, %+v plain", rs, ws)
			}
			if len(res.Trace) != len(ref.Trace) {
				t.Fatalf("trace length %d compressed, %d plain", len(res.Trace), len(ref.Trace))
			}
			// The decompressed trace must match the uncompressed run's
			// full-key trace step for step...
			for i := range res.Trace {
				if res.Trace[i].StateKey != ref.Trace[i].StateKey ||
					res.Trace[i].Event.Key() != ref.Trace[i].Event.Key() {
					t.Fatalf("trace step %d diverges after decompression", i)
				}
			}
			// ...and replay against the protocol with a nil canon.
			if res.Verdict == mpbasset.VerdictViolated {
				if _, err := explore.ReplayViolation(tc.p, res.Trace, nil); err != nil {
					t.Errorf("decompressed trace does not replay: %v", err)
				}
			}
		})
	}
}

// TestCheckLossy drives the lossy bitstate store through the facade: the
// coverage stats are populated, the visited count never exceeds the exact
// run's on a verified space, and sequential lossy runs are reproducible.
func TestCheckLossy(t *testing.T) {
	p, err := paxos.New(paxos.Config{Proposers: 1, Acceptors: 3, Learners: 1})
	if err != nil {
		t.Fatal(err)
	}
	for _, tc := range []struct {
		name string
		opts mpbasset.Options
	}{
		{"default-size", mpbasset.Options{Lossy: true}},
		{"tiny", mpbasset.Options{Lossy: true, BitstateBytes: 64}},
		{"parallel", mpbasset.Options{Lossy: true, Workers: 4}},
		{"bfs", mpbasset.Options{Lossy: true, Search: mpbasset.SearchBFS}},
		{"compressed", mpbasset.Options{Lossy: true, Compress: true}},
	} {
		t.Run(tc.name, func(t *testing.T) {
			// The exact reference runs the same search with the lossy store
			// swapped out, so state counts compare like against like.
			exactOpts := tc.opts
			exactOpts.Lossy, exactOpts.BitstateBytes = false, 0
			ref, err := mpbasset.Check(p, exactOpts)
			if err != nil {
				t.Fatal(err)
			}
			res, err := mpbasset.Check(p, tc.opts)
			if err != nil {
				t.Fatal(err)
			}
			if res.Stats.BitstateFill <= 0 || res.Stats.BitstateFill > 1 {
				t.Errorf("fill %v outside (0,1]", res.Stats.BitstateFill)
			}
			if res.Stats.BitstateOmission <= 0 || res.Stats.BitstateOmission > 1 {
				t.Errorf("omission %v outside (0,1]", res.Stats.BitstateOmission)
			}
			if ref.Verdict == mpbasset.VerdictVerified && res.Stats.States > ref.Stats.States {
				t.Errorf("lossy run visited %d states, exact %d", res.Stats.States, ref.Stats.States)
			}
			if res.Verdict == mpbasset.VerdictViolated && ref.Verdict == mpbasset.VerdictVerified {
				t.Errorf("lossy violation in a space the exact run verified")
			}
		})
	}
}

// TestCheckLossyCompressRejections pins the option-combination errors of
// the raw-speed tier: lossy mode wherever soundness demands exactness, and
// compression where no visited set exists or another canonicalizer is
// already installed.
func TestCheckLossyCompressRejections(t *testing.T) {
	p, err := paxos.New(paxos.Config{Proposers: 1, Acceptors: 3, Learners: 1})
	if err != nil {
		t.Fatal(err)
	}
	single, err := paxos.New(paxos.Config{Proposers: 1, Acceptors: 3, Learners: 1, Model: paxos.ModelSingle})
	if err != nil {
		t.Fatal(err)
	}
	prop := mpbasset.Eventually("never", nil, func(*mpbasset.State) bool { return false })
	cases := []struct {
		name string
		p    *mpbasset.Protocol
		opts mpbasset.Options
	}{
		{"bitstate-bytes-without-lossy", p, mpbasset.Options{BitstateBytes: 1 << 20}},
		{"lossy-stateless", p, mpbasset.Options{Lossy: true, Search: mpbasset.SearchStateless}},
		{"lossy-dpor", single, mpbasset.Options{Lossy: true, Search: mpbasset.SearchDPOR}},
		{"lossy-property", p, mpbasset.Options{Lossy: true, Property: prop}},
		{"lossy-exact-states", p, mpbasset.Options{Lossy: true, ExactStates: true}},
		{"lossy-mem-budget", p, mpbasset.Options{Lossy: true, StoreBudgetBytes: 1 << 20}},
		{"compress-stateless", p, mpbasset.Options{Compress: true, Search: mpbasset.SearchStateless}},
		{"compress-dpor", single, mpbasset.Options{Compress: true, Search: mpbasset.SearchDPOR}},
		{"compress-symmetry", p, mpbasset.Options{Compress: true, SymmetryRoles: [][]mpbasset.ProcessID{{1, 2, 3}}}},
	}
	for _, tc := range cases {
		if _, err := mpbasset.Check(tc.p, tc.opts); err == nil {
			t.Errorf("%s: accepted", tc.name)
		}
	}
}
