module mpbasset

go 1.24
