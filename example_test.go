package mpbasset_test

import (
	"fmt"

	"mpbasset"
	"mpbasset/internal/protocols/storage"
)

// ExampleCheck verifies read regularity of a small quorum-based storage
// protocol with the default engine (stateful DFS under static
// partial-order reduction).
func ExampleCheck() {
	p, err := storage.New(storage.Config{Objects: 3, Readers: 1})
	if err != nil {
		panic(err)
	}
	res, err := mpbasset.Check(p, mpbasset.Options{})
	if err != nil {
		panic(err)
	}
	fmt.Printf("%s after %d states\n", res.Verdict, res.Stats.States)
	// Output:
	// Verified after 13058 states
}

// ExampleCheck_spill bounds the visited set's resident memory: the search
// runs over the two-tier spill store, overflowing sorted fingerprint runs
// to disk, and the verdict and state count are bit-identical to the
// in-memory run of ExampleCheck.
func ExampleCheck_spill() {
	p, err := storage.New(storage.Config{Objects: 3, Readers: 1})
	if err != nil {
		panic(err)
	}
	res, err := mpbasset.Check(p, mpbasset.Options{
		StoreBudgetBytes: 32 << 10, // 32 KiB hot tier — far below the 13058-state space
	})
	if err != nil {
		panic(err)
	}
	fmt.Printf("%s after %d states, spilled runs: %v\n",
		res.Verdict, res.Stats.States, res.Stats.SpillRuns > 0)
	// Output:
	// Verified after 13058 states, spilled runs: true
}

// ExampleCheck_lossy trades exactness for a fixed memory ceiling: the
// visited set is a Spin-style bitstate array, so "Verified" is a coverage
// claim qualified by the reported omission probability, not a census. At
// this generous sizing no state happens to be omitted — the count matches
// the exact run — but only the omission estimate says how much to trust
// that.
func ExampleCheck_lossy() {
	p, err := storage.New(storage.Config{Objects: 3, Readers: 1})
	if err != nil {
		panic(err)
	}
	res, err := mpbasset.Check(p, mpbasset.Options{
		Lossy:         true,
		BitstateBytes: 256 << 10, // 2 Mbit array for ~13k states
	})
	if err != nil {
		panic(err)
	}
	fill, omission := res.Stats.BitstateFill, res.Stats.BitstateOmission
	fmt.Printf("%s after %d states\n", res.Verdict, res.Stats.States)
	fmt.Printf("coverage: fill %.4f, omission < 1e-5: %v\n", fill, omission < 1e-5)
	// Output:
	// Verified after 13058 states
	// coverage: fill 0.0185, omission < 1e-5: true
}
