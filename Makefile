# Development and CI entry points. `make ci` is what the CI workflow runs:
# vet + build + full test suite, plus the race detector over the packages
# with concurrent code (the parallel search engine and the core it drives)
# and the packages whose tests exercise it (the POR ignoring-proviso matrix
# and the cyclic protocol generators).

GO ?= go

.PHONY: all vet build test race bench bench-smoke ci

all: ci

vet:
	$(GO) vet ./...

build:
	$(GO) build ./...

test:
	$(GO) test ./...

race:
	$(GO) test -race ./internal/explore/ ./internal/core/ ./internal/por/ ./internal/mptest/

bench:
	$(GO) test -bench . -benchtime 1x -run '^$$' .

# One iteration of every benchmark with a tight per-cell budget: keeps the
# benchmark suites compiling and runnable in CI without paying for real
# measurements.
bench-smoke:
	MPBASSET_BENCH_BUDGET=2s $(GO) test -bench . -benchtime 1x -run '^$$' . ./internal/explore/

ci: vet build test race
