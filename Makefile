# Development and CI entry points. `make ci` is what the CI workflow runs:
# vet + build + full test suite, plus the race detector over the packages
# with concurrent code (the parallel search engine and the core it drives).

GO ?= go

.PHONY: all vet build test race bench ci

all: ci

vet:
	$(GO) vet ./...

build:
	$(GO) build ./...

test:
	$(GO) test ./...

race:
	$(GO) test -race ./internal/explore/ ./internal/core/

bench:
	$(GO) test -bench . -benchtime 1x -run '^$$' .

ci: vet build test race
