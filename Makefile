# Development and CI entry points. `make ci` is what every CI matrix cell
# runs: vet + build + full test suite, plus the race detector over the
# packages with concurrent code (the parallel search engines, the
# spill-to-disk store, and the core they drive) and the packages whose
# tests exercise them (the POR ignoring-proviso matrix, the cyclic
# protocol generators, the eval cells that run spill-backed parallel
# searches, and the liveness layer whose oracle pins the parallel nested
# DFS). `make fuzz` runs the native fuzz targets — the cross-engine
# differential harness and the fingerprint pin — for FUZZTIME each (CI
# smokes them at 30s, with the corpus cached across runs so coverage
# accumulates). `make bench-ci` is the perf trajectory: a fixed-work
# mpbench run whose report (BENCH_ci.json) is gated against the committed
# BENCH_baseline.json and uploaded as a CI artifact; regenerate the
# baseline with `make bench-baseline` after an intentional perf or
# state-count change. `make lint` runs the in-repo mplint suite
# (internal/lint: the determinism/soundness contract analyzers, closure
# roots extendable with ENTRYPOINTS=func:p.N,iface:p.N,struct:p.N) and
# then staticcheck when it is on PATH (CI installs it; mplint itself is
# dependency-free and always runs). `make vet` runs plain `go vet` plus
# `go vet -vettool` with mplint, so every CI cell enforces the contracts
# with full build caching. `make lint-fix` inserts idempotent
# //lint:<marker> TODO annotations above findings; `make lint-abs`
# prints findings as absolute file:line:col paths for editor jump.
# `make lint-sarif` writes SARIF 2.1.0 reports from both drivers
# (mplint.sarif standalone, mplint-vet.sarif merged from the vet run's
# per-unit fragments); it is reporting-only, so findings do not fail it.

GO ?= go
FUZZTIME ?= 30s
# The bench smoke's fixed work cap: every cell stops at this many states
# (or the budget), so baseline and CI runs compare like against like.
BENCH_MAX_STATES ?= 20000
BENCH_BUDGET ?= 30s

.PHONY: all vet build test race fuzz bench bench-smoke bench-ci bench-baseline lint lint-fix lint-abs lint-sarif mplint ci

all: ci

# The mplint binary go vet loads as its -vettool. Built into bin/ (not
# `go run`) because vet needs a stable executable to fingerprint via
# -V=full for its result cache.
MPLINT := bin/mplint
mplint:
	$(GO) build -o $(MPLINT) ./cmd/mplint

vet: mplint
	$(GO) vet ./...
	$(GO) vet -vettool=$(MPLINT) ./...

build:
	$(GO) build ./...

test:
	$(GO) test ./...

race:
	$(GO) test -race ./internal/explore/ ./internal/core/ ./internal/por/ ./internal/mptest/ ./internal/eval/ ./internal/liveness/ ./internal/dpor/

fuzz:
	$(GO) test -run '^$$' -fuzz '^FuzzEngineAgreement$$' -fuzztime $(FUZZTIME) ./internal/explore/
	$(GO) test -run '^$$' -fuzz '^FuzzFingerprint128$$' -fuzztime $(FUZZTIME) ./internal/explore/

bench:
	$(GO) test -bench . -benchtime 1x -run '^$$' .

# One iteration of every benchmark with a tight per-cell budget: keeps the
# benchmark suites compiling and runnable in CI without paying for real
# measurements.
bench-smoke:
	MPBASSET_BENCH_BUDGET=2s $(GO) test -bench . -benchtime 1x -run '^$$' . ./internal/explore/

# The CI perf gate: run both tables under the fixed work cap, write the
# machine-readable report, and fail on >BENCH_REGRESS_PCT% per-cell
# wall-clock regression (or any determinism drift) against the committed
# baseline. Wall-clock only compares like against like when the baseline
# came from the same machine class: after the first green CI run, download
# its BENCH_ci artifact and commit it as BENCH_baseline.json so the gate
# measures runner-to-runner drift, not laptop-vs-runner drift.
BENCH_REGRESS_PCT ?= 25
bench-ci:
	$(GO) run ./cmd/mpbench -budget $(BENCH_BUDGET) -max-states $(BENCH_MAX_STATES) -regress-pct $(BENCH_REGRESS_PCT) -out BENCH_ci.json -baseline BENCH_baseline.json

bench-baseline:
	$(GO) run ./cmd/mpbench -budget $(BENCH_BUDGET) -max-states $(BENCH_MAX_STATES) -out BENCH_baseline.json

lint:
	$(GO) run ./cmd/mplint $(if $(ENTRYPOINTS),-entrypoints '$(ENTRYPOINTS)') ./...
	@command -v staticcheck >/dev/null && staticcheck ./... || echo "staticcheck not installed; skipped"

# Insert //lint:<marker> TODO annotations above findings. Idempotent:
# re-running never stacks duplicate markers; findings without an escape
# hatch (statsmask) are listed and left for a real fix.
lint-fix:
	$(GO) run ./cmd/mplint -fix ./...

# Editor-jump helper: mplint findings with absolute file:line:col paths.
lint-abs:
	$(GO) run ./cmd/mplint -abs ./...

# SARIF 2.1.0 reports from both drivers: the standalone run writes
# mplint.sarif directly; the vet run drops one fragment per build unit
# into MPLINT_SARIF_DIR (a fresh temp dir, which busts vet's result
# cache via the -V=full fingerprint) and -merge-sarif unions them into
# mplint-vet.sarif. Reporting-only: findings do not fail the target —
# `make lint` and `make vet` are the enforcing entry points.
lint-sarif: mplint
	$(GO) run ./cmd/mplint -sarif ./... > mplint.sarif || true
	@dir=$$(mktemp -d); \
	MPLINT_SARIF_DIR=$$dir $(GO) vet -vettool=$(MPLINT) ./... || true; \
	$(GO) run ./cmd/mplint -merge-sarif $$dir > mplint-vet.sarif; \
	rm -rf $$dir

ci: vet build test race
