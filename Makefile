# Development and CI entry points. `make ci` is what the CI workflow runs:
# vet + build + full test suite, plus the race detector over the packages
# with concurrent code (the parallel search engine, the spill-to-disk
# store, and the core they drive) and the packages whose tests exercise
# them (the POR ignoring-proviso matrix, the cyclic protocol generators,
# and the eval cells that run spill-backed parallel searches). `make fuzz`
# runs the native fuzz targets — the cross-engine differential harness and
# the fingerprint pin — for FUZZTIME each (CI smokes them at 30s).

GO ?= go
FUZZTIME ?= 30s

.PHONY: all vet build test race fuzz bench bench-smoke ci

all: ci

vet:
	$(GO) vet ./...

build:
	$(GO) build ./...

test:
	$(GO) test ./...

race:
	$(GO) test -race ./internal/explore/ ./internal/core/ ./internal/por/ ./internal/mptest/ ./internal/eval/

fuzz:
	$(GO) test -run '^$$' -fuzz '^FuzzEngineAgreement$$' -fuzztime $(FUZZTIME) ./internal/explore/
	$(GO) test -run '^$$' -fuzz '^FuzzFingerprint128$$' -fuzztime $(FUZZTIME) ./internal/explore/

bench:
	$(GO) test -bench . -benchtime 1x -run '^$$' .

# One iteration of every benchmark with a tight per-cell budget: keeps the
# benchmark suites compiling and runnable in CI without paying for real
# measurements.
bench-smoke:
	MPBASSET_BENCH_BUDGET=2s $(GO) test -bench . -benchtime 1x -run '^$$' . ./internal/explore/

ci: vet build test race
