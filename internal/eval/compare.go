// The cross-run perf trajectory: mpbench serializes every table of one
// invocation into a Report (BENCH_ci.json in CI, BENCH_baseline.json
// committed to the repo) and CompareReports gates a current report against
// a baseline — wall-clock regressions past a threshold fail, and so do
// determinism breaches (verdict or state-count drift on cells the engines
// guarantee to be bit-identical run-to-run).

package eval

import (
	"encoding/json"
	"fmt"
	"io"
	"os"
	"reflect"

	"mpbasset/internal/explore"
)

// Report is the machine-readable outcome of one mpbench invocation: every
// table it ran, in emission order.
type Report struct {
	Tables []TableJSON `json:"tables"`
}

// WriteReport serializes r as indented JSON.
func WriteReport(w io.Writer, r Report) error {
	enc := json.NewEncoder(w)
	enc.SetIndent("", "  ")
	return enc.Encode(r)
}

// WriteReportFile writes r to path, creating or truncating it.
func WriteReportFile(path string, r Report) error {
	f, err := os.Create(path)
	if err != nil {
		return err
	}
	if err := WriteReport(f, r); err != nil {
		f.Close()
		return err
	}
	return f.Close()
}

// ReadReport parses a report previously written by WriteReport.
func ReadReport(rd io.Reader) (Report, error) {
	var r Report
	dec := json.NewDecoder(rd)
	if err := dec.Decode(&r); err != nil {
		return Report{}, fmt.Errorf("bench report: %w", err)
	}
	return r, nil
}

// ReadReportFile reads a report from path.
func ReadReportFile(path string) (Report, error) {
	f, err := os.Open(path)
	if err != nil {
		return Report{}, err
	}
	//lint:closeerr-ok read-only descriptor: a close failure cannot lose data, and decode errors already surface through ReadReport
	defer f.Close()
	return ReadReport(f)
}

// DeterministicStatsFields lists the explore.Stats fields covered by the
// engines' determinism guarantee: for a fixed protocol, options and
// reduction, every engine, worker count, scheduler and store tier must
// report bit-identical values. The differential suites compare these
// fields directly; CompareReports gates the States/Events subset that
// mpbench serializes.
//
// Together with VolatileStatsFields this list must classify every field of
// explore.Stats exactly once — the statsmask analyzer (internal/lint)
// fails the build when a new Stats field is added without deciding which
// side of the contract it falls on.
var DeterministicStatsFields = []string{
	"States",
	"Revisits",
	"Events",
	"Deadlocks",
	"MaxDepth",
	"RedStates",
	"FullExpansions",
	"ReducedExpansions",
	"ProvisoExpansions",
}

// VolatileStatsFields lists the explore.Stats fields explicitly excluded
// from the determinism guarantee — wall-clock time, the spill tier's
// storage-effort counters, whose values depend on insert timing, the
// parallel-DPOR speculation counters, whose values depend on worker
// scheduling, and the lossy bitstate coverage figures, whose values depend
// on which colliding state reached the store first — and therefore masked
// before any cross-run or cross-engine comparison.
var VolatileStatsFields = []string{
	"Duration",
	"SpillRuns",
	"SpillBytes",
	"DiskProbes",
	"SpeculatedVisits",
	"SpeculationHits",
	"BitstateFill",
	"BitstateOmission",
}

// MaskVolatileStats zeroes the fields of st that VolatileStatsFields
// excludes from the determinism guarantee, leaving exactly the comparable
// counters. The differential and fuzz suites call it on both sides before
// comparing whole Stats values, so a newly added volatile field has a
// single place to be masked. It panics when a listed field does not exist
// on explore.Stats — the lists above are the source of truth and must
// track the struct (the statsmask analyzer enforces this statically too).
func MaskVolatileStats(st *explore.Stats) {
	v := reflect.ValueOf(st).Elem()
	for _, name := range VolatileStatsFields {
		f := v.FieldByName(name)
		if !f.IsValid() {
			panic(fmt.Sprintf("eval: VolatileStatsFields names unknown explore.Stats field %q", name))
		}
		f.SetZero()
	}
}

// StatsEqualModuloVolatile reports whether a and b agree on every field
// covered by the determinism guarantee, ignoring the volatile ones.
func StatsEqualModuloVolatile(a, b explore.Stats) bool {
	MaskVolatileStats(&a)
	MaskVolatileStats(&b)
	return a == b
}

// Regression is one gate violation found by CompareReports.
type Regression struct {
	Table  string
	Row    string
	Column string
	// Kind classifies the violation: "duration" (wall-clock past the
	// threshold), "determinism" (verdict or state/event drift), "error"
	// (the current cell failed), or "missing" (a baseline cell the current
	// report no longer has).
	Kind   string
	Detail string
}

func (r Regression) String() string {
	return fmt.Sprintf("%s / %s [%s]: %s: %s", r.Table, r.Row, r.Column, r.Kind, r.Detail)
}

// CompareOptions tunes the regression gate.
type CompareOptions struct {
	// MaxSlowdownPct is the tolerated per-cell wall-clock growth over the
	// baseline, in percent; cells slower than baseline*(1+pct/100) fail.
	// <= 0 means the default of 25.
	MaxSlowdownPct float64
	// MinDurationMS is the noise floor: cells whose baseline ran faster
	// than this are skipped by the duration gate (their timing is
	// scheduler noise, not signal). < 0 disables the floor; 0 means the
	// default of 250ms.
	MinDurationMS float64
}

func (o CompareOptions) pct() float64 {
	if o.MaxSlowdownPct > 0 {
		return o.MaxSlowdownPct
	}
	return 25
}

func (o CompareOptions) floor() float64 {
	if o.MinDurationMS < 0 {
		return 0
	}
	if o.MinDurationMS == 0 {
		return 250
	}
	return o.MinDurationMS
}

// CompareReports gates current against baseline cell by cell (tables
// matched by title, rows by protocol/setting/property, cells by column)
// and returns every regression found, in baseline order:
//
//   - a baseline cell absent from the current report is "missing";
//   - a current cell that errored is "error";
//   - a verdict change is "determinism", and so is state- or event-count
//     drift on cells neither side cut short (a Limit verdict can come from
//     a wall-clock budget, whose cut point is timing-dependent, so limited
//     cells are only held to verdict agreement);
//   - a cell whose baseline wall-clock is at or above the noise floor and
//     whose current wall-clock exceeds it by more than the threshold is
//     "duration".
//
// Cells present only in the current report are new coverage, not
// regressions.
func CompareReports(baseline, current Report, opts CompareOptions) []Regression {
	curTables := make(map[string]TableJSON, len(current.Tables))
	for _, t := range current.Tables {
		curTables[t.Title] = t
	}
	var regs []Regression
	for _, bt := range baseline.Tables {
		ct, ok := curTables[bt.Title]
		if !ok {
			regs = append(regs, Regression{Table: bt.Title, Kind: "missing", Detail: "table absent from the current report"})
			continue
		}
		curRows := make(map[string]RowJSON, len(ct.Rows))
		for _, r := range ct.Rows {
			curRows[r.Protocol+"|"+r.Setting+"|"+r.Property] = r
		}
		for _, br := range bt.Rows {
			rowName := fmt.Sprintf("%s %s — %s", br.Protocol, br.Setting, br.Property)
			cr, ok := curRows[br.Protocol+"|"+br.Setting+"|"+br.Property]
			if !ok {
				regs = append(regs, Regression{Table: bt.Title, Row: rowName, Kind: "missing", Detail: "row absent from the current report"})
				continue
			}
			curCells := make(map[string]CellJSON, len(cr.Cells))
			for _, c := range cr.Cells {
				curCells[c.Column] = c
			}
			for _, bc := range br.Cells {
				cc, ok := curCells[bc.Column]
				if !ok {
					regs = append(regs, Regression{Table: bt.Title, Row: rowName, Column: bc.Column, Kind: "missing", Detail: "cell absent from the current report"})
					continue
				}
				regs = append(regs, compareCell(bt.Title, rowName, bc, cc, opts)...)
			}
		}
	}
	return regs
}

func compareCell(table, row string, base, cur CellJSON, opts CompareOptions) []Regression {
	if base.Error != "" {
		return nil // a broken baseline cell gates nothing
	}
	if cur.Error != "" {
		return []Regression{{Table: table, Row: row, Column: cur.Column, Kind: "error", Detail: cur.Error}}
	}
	var regs []Regression
	if cur.Verdict != base.Verdict {
		regs = append(regs, Regression{
			Table: table, Row: row, Column: cur.Column, Kind: "determinism",
			Detail: fmt.Sprintf("verdict %s, baseline %s", cur.Verdict, base.Verdict),
		})
		return regs // state counts are incomparable across verdicts
	}
	if base.Verdict != "Limit" && (cur.States != base.States || cur.Events != base.Events) {
		regs = append(regs, Regression{
			Table: table, Row: row, Column: cur.Column, Kind: "determinism",
			Detail: fmt.Sprintf("states=%d events=%d, baseline states=%d events=%d", cur.States, cur.Events, base.States, base.Events),
		})
	}
	if base.DurationMS >= opts.floor() && cur.DurationMS > base.DurationMS*(1+opts.pct()/100) {
		regs = append(regs, Regression{
			Table: table, Row: row, Column: cur.Column, Kind: "duration",
			Detail: fmt.Sprintf("%.0fms, baseline %.0fms (>%.0f%% slower)", cur.DurationMS, base.DurationMS, opts.pct()),
		})
	}
	return regs
}
