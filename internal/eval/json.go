package eval

import (
	"encoding/json"
	"io"
	"time"
)

// jsonCell is the machine-readable form of a Cell.
type jsonCell struct {
	Column     string  `json:"column"`
	Verdict    string  `json:"verdict"`
	States     int     `json:"states"`
	Events     int     `json:"events"`
	DurationMS float64 `json:"durationMillis"`
	Note       string  `json:"note,omitempty"`
	Error      string  `json:"error,omitempty"`
}

// jsonRow is the machine-readable form of a Row.
type jsonRow struct {
	Protocol string     `json:"protocol"`
	Setting  string     `json:"setting"`
	Property string     `json:"property"`
	Cells    []jsonCell `json:"cells"`
}

// WriteJSON renders rows as a JSON document (one object with a "rows"
// array), for downstream tooling and plotting.
func WriteJSON(w io.Writer, title string, rows []Row) error {
	type doc struct {
		Title string    `json:"title"`
		Rows  []jsonRow `json:"rows"`
	}
	d := doc{Title: title}
	for _, r := range rows {
		jr := jsonRow{Protocol: r.Protocol, Setting: r.Setting, Property: r.Property}
		for _, c := range r.Cells {
			jc := jsonCell{
				Column:     c.Column,
				Verdict:    c.Verdict.String(),
				States:     c.States,
				Events:     c.Events,
				DurationMS: float64(c.Duration) / float64(time.Millisecond),
				Note:       c.Note,
			}
			if c.Err != nil {
				jc.Error = c.Err.Error()
			}
			jr.Cells = append(jr.Cells, jc)
		}
		d.Rows = append(d.Rows, jr)
	}
	enc := json.NewEncoder(w)
	enc.SetIndent("", "  ")
	return enc.Encode(d)
}
