package eval

import (
	"encoding/json"
	"io"
	"time"
)

// CellJSON is the machine-readable form of a Cell.
type CellJSON struct {
	Column     string  `json:"column"`
	Verdict    string  `json:"verdict"`
	States     int     `json:"states"`
	Events     int     `json:"events"`
	DurationMS float64 `json:"durationMillis"`
	Note       string  `json:"note,omitempty"`
	Error      string  `json:"error,omitempty"`
}

// RowJSON is the machine-readable form of a Row.
type RowJSON struct {
	Protocol string     `json:"protocol"`
	Setting  string     `json:"setting"`
	Property string     `json:"property"`
	Cells    []CellJSON `json:"cells"`
}

// TableJSON is the machine-readable form of one emitted table.
type TableJSON struct {
	Title string    `json:"title"`
	Rows  []RowJSON `json:"rows"`
}

// TableToJSON converts one table run into its machine-readable form.
func TableToJSON(title string, rows []Row) TableJSON {
	t := TableJSON{Title: title}
	for _, r := range rows {
		jr := RowJSON{Protocol: r.Protocol, Setting: r.Setting, Property: r.Property}
		for _, c := range r.Cells {
			jc := CellJSON{
				Column:     c.Column,
				Verdict:    c.Verdict.String(),
				States:     c.States,
				Events:     c.Events,
				DurationMS: float64(c.Duration) / float64(time.Millisecond),
				Note:       c.Note,
			}
			if c.Err != nil {
				jc.Error = c.Err.Error()
			}
			jr.Cells = append(jr.Cells, jc)
		}
		t.Rows = append(t.Rows, jr)
	}
	return t
}

// WriteJSON renders rows as a JSON document (one object with a "rows"
// array), for downstream tooling and plotting.
func WriteJSON(w io.Writer, title string, rows []Row) error {
	enc := json.NewEncoder(w)
	enc.SetIndent("", "  ")
	return enc.Encode(TableToJSON(title, rows))
}
