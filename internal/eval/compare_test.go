package eval

import (
	"bytes"
	"encoding/json"
	"strings"
	"testing"
	"time"

	"mpbasset/internal/explore"
)

// TestWriteJSONShapes is the table-driven output-shape test of mpbench's
// -json emission: every shape a table run can produce (multi-cell rows,
// empty tables, error and timeout cells) must serialize into the documented
// structure and round-trip through the Report reader.
func TestWriteJSONShapes(t *testing.T) {
	cases := []struct {
		name      string
		title     string
		rows      []Row
		wantRows  int
		wantCells []int // per row
	}{
		{"empty table", "Empty", nil, 0, nil},
		{"single cell", "One", []Row{
			{Protocol: "P", Setting: "(1)", Property: "safe", Cells: []Cell{
				{Column: "spor", Verdict: explore.VerdictVerified, States: 10, Events: 20, Duration: time.Second},
			}},
		}, 1, []int{1}},
		{"mixed outcomes", "Mixed", []Row{
			{Protocol: "P", Setting: "(2)", Property: "safe", Cells: []Cell{
				{Column: "spor", Verdict: explore.VerdictVerified, States: 5, Events: 9},
				{Column: "unreduced", Verdict: explore.VerdictLimit, States: 100, Events: 300, Note: "timeout"},
				{Column: "dpor", Err: errDemo("exploded")},
			}},
			{Protocol: "Q", Setting: "(3)", Property: "wrong", Cells: []Cell{
				{Column: "spor", Verdict: explore.VerdictViolated, States: 4, Events: 6},
			}},
		}, 2, []int{3, 1}},
	}
	for _, tc := range cases {
		t.Run(tc.name, func(t *testing.T) {
			var buf bytes.Buffer
			if err := WriteJSON(&buf, tc.title, tc.rows); err != nil {
				t.Fatal(err)
			}
			var tbl TableJSON
			if err := json.Unmarshal(buf.Bytes(), &tbl); err != nil {
				t.Fatalf("output is not valid JSON: %v\n%s", err, buf.String())
			}
			if tbl.Title != tc.title || len(tbl.Rows) != tc.wantRows {
				t.Fatalf("structure wrong: %+v", tbl)
			}
			for i, want := range tc.wantCells {
				if len(tbl.Rows[i].Cells) != want {
					t.Errorf("row %d: %d cells, want %d", i, len(tbl.Rows[i].Cells), want)
				}
			}
			// The same table must round-trip through the report layer.
			report := Report{Tables: []TableJSON{TableToJSON(tc.title, tc.rows)}}
			var rb bytes.Buffer
			if err := WriteReport(&rb, report); err != nil {
				t.Fatal(err)
			}
			back, err := ReadReport(&rb)
			if err != nil {
				t.Fatal(err)
			}
			if len(back.Tables) != 1 || back.Tables[0].Title != tc.title || len(back.Tables[0].Rows) != tc.wantRows {
				t.Errorf("report round-trip lost structure: %+v", back)
			}
		})
	}
}

type errDemo string

func (e errDemo) Error() string { return string(e) }

func TestReportFileRoundTrip(t *testing.T) {
	path := t.TempDir() + "/bench.json"
	r := Report{Tables: []TableJSON{{Title: "T", Rows: []RowJSON{{Protocol: "P", Cells: []CellJSON{{Column: "c", Verdict: "Verified", States: 1}}}}}}}
	if err := WriteReportFile(path, r); err != nil {
		t.Fatal(err)
	}
	back, err := ReadReportFile(path)
	if err != nil {
		t.Fatal(err)
	}
	if len(back.Tables) != 1 || back.Tables[0].Rows[0].Cells[0].States != 1 {
		t.Fatalf("round-trip lost data: %+v", back)
	}
	if _, err := ReadReportFile(t.TempDir() + "/missing.json"); err == nil {
		t.Error("missing baseline read succeeded")
	}
}

// benchCell builds a healthy baseline cell for the gate tests.
func benchCell(column string, states int, ms float64) CellJSON {
	return CellJSON{Column: column, Verdict: "Verified", States: states, Events: states * 3, DurationMS: ms}
}

func benchReport(cells ...CellJSON) Report {
	return Report{Tables: []TableJSON{{
		Title: "Table I",
		Rows:  []RowJSON{{Protocol: "Paxos", Setting: "(2,3,1)", Property: "agreement", Cells: cells}},
	}}}
}

// TestCompareReportsGate exercises the CI regression gate cell by cell:
// within-threshold drift passes, wall-clock past the threshold fails,
// determinism drift (verdict or state counts) fails, vanished cells fail,
// and the noise floor plus limited-verdict carve-outs hold.
func TestCompareReportsGate(t *testing.T) {
	base := benchReport(benchCell("spor", 1000, 1000))
	cases := []struct {
		name     string
		baseline Report
		current  Report
		opts     CompareOptions
		wantKind string // "" means no regression
		wantSub  string
	}{
		{"identical", base, benchReport(benchCell("spor", 1000, 1000)), CompareOptions{}, "", ""},
		{"within threshold", base, benchReport(benchCell("spor", 1000, 1240)), CompareOptions{}, "", ""},
		{"faster is fine", base, benchReport(benchCell("spor", 1000, 200)), CompareOptions{}, "", ""},
		{"duration regression", base, benchReport(benchCell("spor", 1000, 1300)), CompareOptions{}, "duration", ">25% slower"},
		{"tighter threshold", base, benchReport(benchCell("spor", 1000, 1150)), CompareOptions{MaxSlowdownPct: 10}, "duration", ">10% slower"},
		{"states drift", base, benchReport(benchCell("spor", 999, 1000)), CompareOptions{}, "determinism", "states=999"},
		{"verdict drift", base, Report{Tables: []TableJSON{{Title: "Table I", Rows: []RowJSON{{
			Protocol: "Paxos", Setting: "(2,3,1)", Property: "agreement",
			Cells: []CellJSON{{Column: "spor", Verdict: "CE", States: 1000, Events: 3000, DurationMS: 1000}},
		}}}}}, CompareOptions{}, "determinism", "verdict CE"},
		{"cell errored", base, benchReport(CellJSON{Column: "spor", Error: "boom"}), CompareOptions{}, "error", "boom"},
		{"cell missing", base, benchReport(benchCell("unreduced", 1000, 1000)), CompareOptions{}, "missing", "cell absent"},
		{"row missing", base, Report{Tables: []TableJSON{{Title: "Table I"}}}, CompareOptions{}, "missing", "row absent"},
		{"table missing", base, Report{}, CompareOptions{}, "missing", "table absent"},
		{"noise floor skips fast cells", benchReport(benchCell("spor", 1000, 50)),
			benchReport(benchCell("spor", 1000, 500)), CompareOptions{}, "", ""},
		{"floor disabled gates fast cells", benchReport(benchCell("spor", 1000, 50)),
			benchReport(benchCell("spor", 1000, 500)), CompareOptions{MinDurationMS: -1}, "duration", ""},
		{"limited cells compare verdict only", benchReport(CellJSON{Column: "spor", Verdict: "Limit", States: 5000, Events: 9000, DurationMS: 1000, Note: "timeout"}),
			benchReport(CellJSON{Column: "spor", Verdict: "Limit", States: 4800, Events: 8500, DurationMS: 1100, Note: "timeout"}), CompareOptions{}, "", ""},
		{"broken baseline gates nothing", benchReport(CellJSON{Column: "spor", Error: "was broken"}),
			benchReport(benchCell("spor", 1, 1)), CompareOptions{}, "", ""},
		{"new cells are not regressions", base,
			benchReport(benchCell("spor", 1000, 1000), benchCell("unreduced", 2000, 900)), CompareOptions{}, "", ""},
	}
	for _, tc := range cases {
		t.Run(tc.name, func(t *testing.T) {
			regs := CompareReports(tc.baseline, tc.current, tc.opts)
			if tc.wantKind == "" {
				if len(regs) != 0 {
					t.Fatalf("unexpected regressions: %v", regs)
				}
				return
			}
			if len(regs) != 1 {
				t.Fatalf("regressions %v, want exactly one %q", regs, tc.wantKind)
			}
			if regs[0].Kind != tc.wantKind || !strings.Contains(regs[0].String(), tc.wantSub) {
				t.Errorf("regression %v, want kind %q containing %q", regs[0], tc.wantKind, tc.wantSub)
			}
		})
	}
}

// TestCompareReportsEndToEnd runs the gate over two real (tiny) table
// runs: a run against its own report must pass, and a doctored baseline
// (halved durations on a slow-enough cell, then drifted state counts)
// must fail with the right kinds — the shape of the CI wiring.
func TestCompareReportsEndToEnd(t *testing.T) {
	rows, err := Table1(Options{Budget: 30 * time.Second, MaxStates: 500})
	if err != nil {
		t.Fatal(err)
	}
	report := Report{Tables: []TableJSON{TableToJSON("Table I", rows)}}
	if regs := CompareReports(report, report, CompareOptions{}); len(regs) != 0 {
		t.Fatalf("self-comparison regressed: %v", regs)
	}
	// Doctor a baseline with drifted state counts on a non-limited cell:
	// the gate must flag determinism, not noise.
	doctored, err := ReadReport(bytes.NewReader(mustJSON(t, report)))
	if err != nil {
		t.Fatal(err)
	}
	flagged := false
	for ti := range doctored.Tables {
		for ri := range doctored.Tables[ti].Rows {
			for ci := range doctored.Tables[ti].Rows[ri].Cells {
				c := &doctored.Tables[ti].Rows[ri].Cells[ci]
				if c.Error == "" && c.Verdict != "Limit" {
					c.States++
					flagged = true
				}
			}
		}
	}
	if !flagged {
		t.Skip("every cell hit the state cap; nothing to doctor")
	}
	regs := CompareReports(doctored, report, CompareOptions{})
	if len(regs) == 0 {
		t.Fatal("state-count drift passed the gate")
	}
	for _, r := range regs {
		if r.Kind != "determinism" {
			t.Errorf("unexpected regression kind %q: %v", r.Kind, r)
		}
	}
}

func mustJSON(t *testing.T, r Report) []byte {
	t.Helper()
	var buf bytes.Buffer
	if err := WriteReport(&buf, r); err != nil {
		t.Fatal(err)
	}
	return buf.Bytes()
}
