package eval

import (
	"errors"
	"strings"
	"testing"

	"mpbasset/internal/explore"
)

func TestVerifyAcceptsExpectedVerdicts(t *testing.T) {
	rows := []Row{
		{Protocol: "Paxos", Setting: "(2,3,1)", Property: "Consensus",
			Cells: []Cell{{Column: "a", Verdict: explore.VerdictVerified}}},
		{Protocol: "Faulty Paxos", Setting: "(2,3,1)", Property: "Consensus",
			Cells: []Cell{{Column: "a", Verdict: explore.VerdictViolated}}},
		{Protocol: "Regular storage", Setting: "(3,2)", Property: "Wrong regularity",
			Cells: []Cell{{Column: "a", Verdict: explore.VerdictViolated}}},
		{Protocol: "Echo Multicast", Setting: "(2,1,2,1)", Property: "Wrong agreement",
			Cells: []Cell{{Column: "a", Verdict: explore.VerdictViolated}}},
	}
	if err := Verify(rows); err != nil {
		t.Fatalf("expected verdicts rejected: %v", err)
	}
}

func TestVerifyRejectsWrongVerdicts(t *testing.T) {
	rows := []Row{{Protocol: "Paxos", Setting: "(2,3,1)", Property: "Consensus",
		Cells: []Cell{{Column: "a", Verdict: explore.VerdictViolated}}}}
	err := Verify(rows)
	if err == nil || !strings.Contains(err.Error(), "verdict") {
		t.Fatalf("false counterexample accepted: %v", err)
	}
	rows = []Row{{Protocol: "Faulty Paxos", Setting: "(2,3,1)", Property: "Consensus",
		Cells: []Cell{{Column: "a", Verdict: explore.VerdictVerified}}}}
	if Verify(rows) == nil {
		t.Fatal("missed bug accepted")
	}
}

func TestVerifyToleratesTimeoutsAndReportsErrors(t *testing.T) {
	rows := []Row{{Protocol: "Paxos", Setting: "(2,3,1)", Property: "Consensus",
		Cells: []Cell{{Column: "a", Verdict: explore.VerdictLimit}}}}
	if err := Verify(rows); err != nil {
		t.Fatalf("timeout cell rejected: %v", err)
	}
	rows[0].Cells = append(rows[0].Cells, Cell{Column: "b", Err: errors.New("boom")})
	if Verify(rows) == nil {
		t.Fatal("error cell accepted")
	}
}
