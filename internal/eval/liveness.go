package eval

import (
	"fmt"

	"mpbasset/internal/core"
	"mpbasset/internal/explore"
	"mpbasset/internal/liveness"
	"mpbasset/internal/por"
	"mpbasset/internal/protocols/multicast"
	"mpbasset/internal/protocols/paxos"
	"mpbasset/internal/protocols/storage"
)

// RunNDFS is the liveness cell: the protocol is instrumented for prop (the
// property's visibility marks constrain the reduction, ample-set condition
// C2) and checked by nested DFS — SPOR-reduced when reduced is true, full
// expansion otherwise. Under weak fairness the engines force full expansion
// regardless, so a reduced fair cell equals its unreduced twin. Workers and
// the spill-store budget apply exactly as in the safety cells (speculative
// parallel NDFS, bit-identical to the sequential engine).
func RunNDFS(column string, p *core.Protocol, prop *liveness.Property, reduced bool, opts Options) Cell {
	ip, err := liveness.Instrument(p, prop)
	if err != nil {
		return Cell{Column: column, Err: err}
	}
	xo := explore.Options{Property: prop}
	if reduced {
		exp, err := por.NewExpander(ip)
		if err != nil {
			return Cell{Column: column, Err: err}
		}
		xo.Expander = exp
	}
	// stateful() configures workers, steal depth and the store tier; its
	// engine choice is for the safety searches, so swap in the nested pair.
	_, xo, err = opts.stateful(xo)
	if err != nil {
		return Cell{Column: column, Err: err}
	}
	engine := explore.NDFS
	if opts.Workers > 0 {
		engine = explore.ParallelNDFS
	}
	return run(column, ip, opts, engine, xo)
}

// livenessTarget is one protocol/liveness-property line of the liveness
// table. Every bundled instance satisfies its property, so the table's
// expected verdict column is uniformly Verified — counterexample coverage
// (accepting cycles, stutter lassos) lives in the test suites, which check
// crafted violating models against the Büchi-product oracle.
type livenessTarget struct {
	protocol string
	setting  string
	property string
	build    func() (*core.Protocol, *liveness.Property, error)
}

func livenessTargets() []livenessTarget {
	return []livenessTarget{
		{
			protocol: "Paxos", setting: "(2,3,1)", property: "Termination",
			build: func() (*core.Protocol, *liveness.Property, error) {
				cfg := paxos.Config{Proposers: 2, Acceptors: 3, Learners: 1}
				p, err := paxos.New(cfg)
				return p, paxos.Decides(cfg), err
			},
		},
		{
			protocol: "Echo Multicast", setting: "(2,1,0,1)", property: "Delivery",
			build: func() (*core.Protocol, *liveness.Property, error) {
				cfg := multicast.Config{HonestReceivers: 2, HonestInitiators: 1, ByzantineReceivers: 0, ByzantineInitiators: 1}
				p, err := multicast.New(cfg)
				return p, multicast.Delivers(cfg), err
			},
		},
		{
			protocol: "Regular storage", setting: "(3,1)", property: "Read completion",
			build: func() (*core.Protocol, *liveness.Property, error) {
				cfg := storage.Config{Objects: 3, Readers: 1}
				p, err := storage.New(cfg)
				return p, storage.ReadsComplete(cfg), err
			},
		},
	}
}

// LivenessTable checks each bundled protocol's liveness property by nested
// DFS: the full product graph, the SPOR-reduced graph (sound for cycle
// detection via the stack ignoring proviso), and the full graph under weak
// fairness (the Choueka copies construction). Fairness only removes
// counterexamples, so with the unrestricted cells Verified the fair cells
// are too — the column pins the monitor-product cost and determinism.
func LivenessTable(opts Options) ([]Row, error) {
	var rows []Row
	for _, tg := range livenessTargets() {
		row := Row{Protocol: tg.protocol, Setting: tg.setting, Property: tg.property}
		for _, col := range []struct {
			name    string
			reduced bool
			fair    bool
		}{
			{"NDFS unreduced", false, false},
			{"NDFS SPOR", true, false},
			{"NDFS weakly fair", false, true},
		} {
			p, prop, err := tg.build()
			if err != nil {
				return nil, fmt.Errorf("liveness table %s %s: %w", tg.protocol, tg.setting, err)
			}
			prop.WeakFair = col.fair
			row.Cells = append(row.Cells, RunNDFS(col.name, p, prop, col.reduced, opts))
		}
		rows = append(rows, row)
	}
	return rows, nil
}
