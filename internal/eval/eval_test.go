package eval

import (
	"strings"
	"testing"
	"time"

	"mpbasset/internal/core"
	"mpbasset/internal/explore"
	"mpbasset/internal/liveness"
	"mpbasset/internal/protocols/multicast"
	"mpbasset/internal/protocols/paxos"
)

func TestTable1VerdictsMatchPaper(t *testing.T) {
	if testing.Short() {
		t.Skip("table generation is slow")
	}
	rows, err := Table1(Options{Budget: 5 * time.Second})
	if err != nil {
		t.Fatal(err)
	}
	if len(rows) != 7 {
		t.Fatalf("Table I rows = %d, want 7 (as in the paper)", len(rows))
	}
	if err := Verify(rows); err != nil {
		t.Fatal(err)
	}
	for _, r := range rows {
		// DPOR rows carry a fourth cell: the 2-worker parallel DPOR run
		// that rides along so the bench gate continuously compares the
		// parallel engine against the sequential cell.
		want := 3
		if r.Cells[0].Column == "no-quorum DPOR" {
			want = 4
		}
		if len(r.Cells) != want {
			t.Fatalf("%s %s: %d cells, want %d columns", r.Protocol, r.Setting, len(r.Cells), want)
		}
	}
	// The parallel DPOR cell must be bit-identical to the sequential one
	// (compared only when both completed: a wall-clock budget truncates
	// each run at a timing-dependent point).
	for _, r := range rows {
		if r.Cells[0].Column != "no-quorum DPOR" {
			continue
		}
		seq, par := r.Cells[0], r.Cells[1]
		if par.Column != "no-quorum DPOR-p2" {
			t.Fatalf("%s %s: cell 1 is %q, want no-quorum DPOR-p2", r.Protocol, r.Setting, par.Column)
		}
		if seq.Verdict != explore.VerdictVerified || par.Verdict != explore.VerdictVerified {
			continue
		}
		if par.States != seq.States || par.Events != seq.Events {
			t.Errorf("%s %s: parallel DPOR states/events %d/%d diverge from sequential %d/%d",
				r.Protocol, r.Setting, par.States, par.Events, seq.States, seq.Events)
		}
	}
	// The headline claim: the quorum model explores fewer states than the
	// single-message model under the same reduction, on every exhaustive
	// verification row.
	for _, r := range rows {
		spor, quorum := r.Cells[len(r.Cells)-2], r.Cells[len(r.Cells)-1]
		if spor.Verdict != explore.VerdictVerified || quorum.Verdict != explore.VerdictVerified {
			continue
		}
		if quorum.States >= spor.States {
			t.Errorf("%s %s: quorum states %d not below single-message states %d",
				r.Protocol, r.Setting, quorum.States, spor.States)
		}
	}
}

func TestTable2VerdictsAndShape(t *testing.T) {
	if testing.Short() {
		t.Skip("table generation is slow")
	}
	rows, err := Table2(Options{Budget: 5 * time.Second})
	if err != nil {
		t.Fatal(err)
	}
	if len(rows) != 7 {
		t.Fatalf("Table II rows = %d, want 7 (8th row is paper-scale only)", len(rows))
	}
	if err := Verify(rows); err != nil {
		t.Fatal(err)
	}
	for _, r := range rows {
		if len(r.Cells) != 4 {
			t.Fatalf("%s %s: %d cells, want 4 split columns", r.Protocol, r.Setting, len(r.Cells))
		}
		// Splits never enlarge the explored space on exhaustive rows
		// (same state graph, finer reduction).
		unsplit := r.Cells[0]
		if unsplit.Verdict != explore.VerdictVerified {
			continue
		}
		for _, c := range r.Cells[1:] {
			if c.States > unsplit.States {
				t.Errorf("%s %s [%s]: %d states above unsplit %d",
					r.Protocol, r.Setting, c.Column, c.States, unsplit.States)
			}
		}
	}
}

// TestCellsUnderMemoryBudget pins the eval layer's spill plumbing: a SPOR
// cell and an unreduced cell run under a tiny memory budget must report
// the same verdict, state and event counts as their in-memory runs —
// sequential and parallel — and the per-cell spill store must not leak
// into the next cell (each run closes its own).
func TestCellsUnderMemoryBudget(t *testing.T) {
	p, err := paxos.New(paxos.Config{Proposers: 1, Acceptors: 3, Learners: 1})
	if err != nil {
		t.Fatal(err)
	}
	for _, workers := range []int{0, 4} {
		base := Options{Budget: time.Minute, Workers: workers}
		budgeted := base
		budgeted.StoreBudgetBytes = 2048
		budgeted.SpillDir = t.TempDir()
		for _, cell := range []struct {
			name string
			run  func(Options) Cell
		}{
			{"spor", func(o Options) Cell { return RunSPOR("spor", p, o) }},
			{"unreduced", func(o Options) Cell { return RunUnreduced("unreduced", p, o) }},
		} {
			ref := cell.run(base)
			got := cell.run(budgeted)
			if ref.Err != nil || got.Err != nil {
				t.Fatalf("workers=%d %s: errors %v / %v", workers, cell.name, ref.Err, got.Err)
			}
			if got.Verdict != ref.Verdict || got.States != ref.States || got.Events != ref.Events {
				t.Errorf("workers=%d %s: budgeted cell %s states=%d events=%d, in-memory %s states=%d events=%d",
					workers, cell.name, got.Verdict, got.States, got.Events, ref.Verdict, ref.States, ref.Events)
			}
		}
	}
}

func TestAnalysisNumbers(t *testing.T) {
	if got := InterleavingBound(3).Int64(); got != 18 { // 3!·3
		t.Errorf("InterleavingBound(3) = %d, want 18", got)
	}
	if got := InterleavingBound(0).Int64(); got != 1 {
		t.Errorf("InterleavingBound(0) = %d, want 1", got)
	}
	if got := SingleMessagePenalty(11, 2).Int64(); got != 169 {
		t.Errorf("SingleMessagePenalty(11,2) = %d, want 169 (the paper's example)", got)
	}
	_, _, penalty := SmallestPaxosExample()
	if penalty.Int64() != 169 {
		t.Errorf("SmallestPaxosExample penalty = %s, want 169", penalty)
	}
	subsets, singles := PowersetCost(3)
	if subsets != 8 || singles != 3 {
		t.Errorf("PowersetCost(3) = %d,%d, want 8,3 (the paper's §IV-A example)", subsets, singles)
	}
	var sb strings.Builder
	PrintAnalysis(&sb)
	if !strings.Contains(sb.String(), "169") {
		t.Error("analysis output misses the paper's example number")
	}
}

func TestFormatRows(t *testing.T) {
	rows := []Row{{
		Protocol: "Demo",
		Setting:  "(1,1)",
		Property: "P",
		Cells: []Cell{
			{Column: "a", Verdict: explore.VerdictVerified, States: 42, Duration: time.Second},
			{Column: "b", Verdict: explore.VerdictLimit, States: 7, Note: "timeout"},
		},
	}}
	var sb strings.Builder
	FormatRows(&sb, "T", rows)
	out := sb.String()
	for _, want := range []string{"Demo", "states=42", "timeout", "Verified"} {
		if !strings.Contains(out, want) {
			t.Errorf("formatted table misses %q:\n%s", want, out)
		}
	}
}

// TestLivenessTableVerdictsAndShape pins the liveness table: every bundled
// instance satisfies its eventuality property (so Verify's default
// expectation holds on all nine cells), the SPOR cell never explores more
// than the unreduced product, and the weakly fair cell pays the Choueka
// monitor copies — at least the unrestricted product, explored on the full
// graph.
func TestLivenessTableVerdictsAndShape(t *testing.T) {
	if testing.Short() {
		t.Skip("table generation is slow")
	}
	rows, err := LivenessTable(Options{Budget: time.Minute})
	if err != nil {
		t.Fatal(err)
	}
	if len(rows) != 3 {
		t.Fatalf("liveness rows = %d, want 3", len(rows))
	}
	if err := Verify(rows); err != nil {
		t.Fatal(err)
	}
	for _, r := range rows {
		if len(r.Cells) != 3 {
			t.Fatalf("%s %s: %d cells, want 3 columns", r.Protocol, r.Setting, len(r.Cells))
		}
		unreduced, spor, fair := r.Cells[0], r.Cells[1], r.Cells[2]
		if spor.States > unreduced.States {
			t.Errorf("%s %s: SPOR states %d above unreduced %d",
				r.Protocol, r.Setting, spor.States, unreduced.States)
		}
		if fair.States < unreduced.States {
			t.Errorf("%s %s: weakly fair states %d below unreduced %d (monitor copies should not shrink the product)",
				r.Protocol, r.Setting, fair.States, unreduced.States)
		}
	}
}

// TestLivenessCellsParallelAndSpilled pins RunNDFS's engine plumbing on
// one small model: the parallel and spill-backed cells reproduce the
// sequential in-memory cell's verdict and counts bit-identically, for both
// reduction modes.
func TestLivenessCellsParallelAndSpilled(t *testing.T) {
	cfg := multicast.Config{HonestReceivers: 2, HonestInitiators: 1, ByzantineReceivers: 0, ByzantineInitiators: 1}
	build := func() (*core.Protocol, *liveness.Property, error) {
		p, err := multicast.New(cfg)
		return p, multicast.Delivers(cfg), err
	}
	base := Options{Budget: time.Minute}
	for _, reduced := range []bool{false, true} {
		p, prop, err := build()
		if err != nil {
			t.Fatal(err)
		}
		ref := RunNDFS("ref", p, prop, reduced, base)
		if ref.Err != nil {
			t.Fatalf("reduced=%v: %v", reduced, ref.Err)
		}
		for _, alt := range []struct {
			name string
			opts Options
		}{
			{"workers-4", Options{Budget: time.Minute, Workers: 4}},
			{"spill-1KiB", Options{Budget: time.Minute, StoreBudgetBytes: 1 << 10, SpillDir: t.TempDir()}},
		} {
			p, prop, err := build()
			if err != nil {
				t.Fatal(err)
			}
			c := RunNDFS(alt.name, p, prop, reduced, alt.opts)
			if c.Err != nil {
				t.Fatalf("reduced=%v %s: %v", reduced, alt.name, c.Err)
			}
			if c.Verdict != ref.Verdict || c.States != ref.States || c.Events != ref.Events {
				t.Errorf("reduced=%v %s: %s states=%d events=%d, sequential in-memory %s states=%d events=%d",
					reduced, alt.name, c.Verdict, c.States, c.Events, ref.Verdict, ref.States, ref.Events)
			}
		}
	}
}
