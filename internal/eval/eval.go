package eval

import (
	"fmt"
	"io"
	"strings"
	"time"

	"mpbasset/internal/core"
	"mpbasset/internal/dpor"
	"mpbasset/internal/explore"
	"mpbasset/internal/por"
	"mpbasset/internal/refine"
)

// Options configures a table run.
type Options struct {
	// Budget bounds each cell's wall-clock time (the analogue of the
	// paper's 48 h timeout); default 60 s.
	Budget time.Duration
	// MaxStates bounds each cell's state count; 0 = unlimited.
	MaxStates int
	// Paper selects the paper-scale workloads (larger settings where our
	// defaults are reduced); currently this enables the Echo Multicast
	// (3,1,1,1) row of Table II and doubles the Paxos ballots.
	Paper bool
	// Workers > 0 runs the stateful cells (SPOR, unreduced) with the
	// speculative parallel DFS engine and the DPOR cells with the
	// speculative parallel DPOR engine, each with that many workers —
	// sound on any model (the DFS commit walk enforces the stack variant
	// of the ignoring proviso; the DPOR commit walk replays the sequential
	// exploration verbatim) and bit-identical to the sequential cells:
	// verdicts, state and event counts never change, only wall-clock.
	Workers int
	// StealDepth bounds one stolen subtree's speculation in the parallel
	// DFS and DPOR cells (events below a stolen sibling or backtrack
	// point before the worker steals afresh); 0 selects the engine
	// default. It never changes cell results, only throughput, and is
	// ignored without Workers.
	StealDepth int
	// StoreBudgetBytes > 0 runs the stateful cells over a two-tier
	// explore.SpillStore: the visited set's in-memory hot tier is bounded
	// by the budget and spills sorted fingerprint runs to disk. Cell
	// results (verdicts, state and event counts) are bit-identical to the
	// in-memory stores; only the cell's wall-clock changes. DPOR cells
	// keep no visited set and ignore it.
	StoreBudgetBytes int64
	// SpillDir is the spill store's run-file directory; empty means a
	// fresh temporary directory per cell, removed when the cell finishes.
	// Only meaningful with StoreBudgetBytes > 0.
	SpillDir string
	// Compress runs the stateful cells with collapse compression: a fresh
	// explore.Collapser per cell interns state components so stored keys
	// shrink to component IDs. Cell results (verdicts, state and event
	// counts) are bit-identical to uncompressed cells — the mapping is
	// injective — so only wall-clock changes. DPOR cells keep no visited
	// set and ignore it.
	Compress bool
	// Lossy runs the stateful cells over an explicitly lossy
	// explore.BitstateStore sized by BitstateBytes instead of an exact
	// store. Lossy cells are coverage claims: their state counts are a
	// floor, and their "Verified" verdicts only mean no violation was found
	// among the states visited. DPOR cells ignore it.
	Lossy bool
	// BitstateBytes sizes the lossy cells' bit array; 0 means the
	// explore.BitstateStore 64 MiB default. Only meaningful with Lossy.
	BitstateBytes int64
}

func (o Options) budget() time.Duration {
	if o.Budget > 0 {
		return o.Budget
	}
	return time.Minute
}

// Cell is one measurement of a table.
type Cell struct {
	Column   string
	Verdict  explore.Verdict
	States   int
	Events   int
	Duration time.Duration
	Note     string
	Err      error
}

// Row is one protocol/property line of a table.
type Row struct {
	Protocol string
	Setting  string
	Property string
	Cells    []Cell
}

// run executes one search and converts the result into a cell. A spill
// store configured by stateful() owns disk state and is released here
// once the cell's search returns.
func run(column string, p *core.Protocol, opts Options, search func(*core.Protocol, explore.Options) (*explore.Result, error), xo explore.Options) Cell {
	xo.MaxDuration = opts.budget()
	xo.MaxStates = opts.MaxStates
	if xo.Store == nil {
		xo.Store = explore.NewHashStore()
	}
	res, err := search(p, xo)
	if c, ok := xo.Store.(io.Closer); ok {
		if cerr := c.Close(); err == nil {
			err = cerr
		}
	}
	if err != nil {
		return Cell{Column: column, Err: err}
	}
	c := Cell{
		Column:   column,
		Verdict:  res.Verdict,
		States:   res.Stats.States,
		Events:   res.Stats.Events,
		Duration: res.Stats.Duration,
	}
	if res.Verdict == explore.VerdictLimit {
		c.Note = "timeout"
	}
	return c
}

// stateful selects the sequential DFS engine or, when opts.Workers is set,
// the speculative parallel DFS engine (bit-identical results) with a
// sharded concurrent store. With StoreBudgetBytes it backs either engine
// with a fresh spill store (the SpillStore is concurrency-safe, so the
// same store serves both); run() closes it when the cell finishes.
func (o Options) stateful(xo explore.Options) (func(*core.Protocol, explore.Options) (*explore.Result, error), explore.Options, error) {
	engine := explore.DFS
	if o.Workers > 0 {
		xo.Workers = o.Workers
		xo.StealDepth = o.StealDepth
		engine = explore.ParallelDFS
	}
	if o.Compress {
		// One collapser per cell: intern-table IDs are run-internal names,
		// and cells must not share visited-set state.
		xo.Canon = explore.NewCollapser().Canon
	}
	switch {
	case o.Lossy:
		xo.Store = explore.NewBitstateStore(o.BitstateBytes, 0)
	case o.StoreBudgetBytes > 0:
		sp, err := explore.NewSpillStore(explore.SpillConfig{BudgetBytes: o.StoreBudgetBytes, Dir: o.SpillDir})
		if err != nil {
			return nil, xo, err
		}
		xo.Store = sp
	case o.Workers > 0:
		xo.Store = explore.NewShardedHashStore()
	}
	return engine, xo, nil
}

// RunSPOR is the standard stateful DFS + static POR cell used across both
// tables (speculative parallel DFS when Options.Workers is set).
func RunSPOR(column string, p *core.Protocol, opts Options) Cell {
	exp, err := por.NewExpander(p)
	if err != nil {
		return Cell{Column: column, Err: err}
	}
	search, xo, err := opts.stateful(explore.Options{Expander: exp})
	if err != nil {
		return Cell{Column: column, Err: err}
	}
	return run(column, p, opts, search, xo)
}

// RunDPOR is the stateless dynamic-POR cell (single-message models only);
// speculative parallel DPOR when Options.Workers is set, with results
// bit-identical to the sequential engine.
func RunDPOR(column string, p *core.Protocol, opts Options) Cell {
	engine, xo := dpor.Explore, explore.Options{}
	if opts.Workers > 0 {
		xo.Workers = opts.Workers
		xo.StealDepth = opts.StealDepth
		engine = dpor.ExploreParallel
	}
	return run(column, p, opts, engine, xo)
}

// RunUnreduced is the plain stateful cell.
func RunUnreduced(column string, p *core.Protocol, opts Options) Cell {
	search, xo, err := opts.stateful(explore.Options{})
	if err != nil {
		return Cell{Column: column, Err: err}
	}
	return run(column, p, opts, search, xo)
}

// split refines p and runs SPOR (Table II cells).
func runSplit(p *core.Protocol, strat refine.Strategy, opts Options) Cell {
	sp, err := refine.Split(p, strat)
	if err != nil {
		return Cell{Column: strat.String(), Err: err}
	}
	return RunSPOR(strat.String(), sp, opts)
}

// FormatRows renders rows in the paper's table style.
func FormatRows(w io.Writer, title string, rows []Row) {
	fmt.Fprintf(w, "%s\n%s\n", title, strings.Repeat("=", len(title)))
	for _, r := range rows {
		fmt.Fprintf(w, "\n%s %s — %s\n", r.Protocol, r.Setting, r.Property)
		for _, c := range r.Cells {
			if c.Err != nil {
				fmt.Fprintf(w, "  %-22s ERROR: %v\n", c.Column, c.Err)
				continue
			}
			note := ""
			if c.Note != "" {
				note = " (" + c.Note + ")"
			}
			fmt.Fprintf(w, "  %-22s %-8s states=%-9d events=%-10d time=%s%s\n",
				c.Column, c.Verdict, c.States, c.Events, c.Duration.Round(time.Millisecond), note)
		}
	}
}
