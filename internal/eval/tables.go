package eval

import (
	"fmt"

	"mpbasset/internal/core"
	"mpbasset/internal/explore"
	"mpbasset/internal/protocols/multicast"
	"mpbasset/internal/protocols/paxos"
	"mpbasset/internal/protocols/storage"
	"mpbasset/internal/refine"
)

func refineStrategies() []refine.Strategy { return refine.Strategies() }

// target is one protocol/property line shared by both tables.
type target struct {
	protocol string
	setting  string
	property string
	quorum   func() (*core.Protocol, error)
	single   func() (*core.Protocol, error)
	// unreducedBaseline replaces the DPOR column with unreduced stateful
	// search — the paper does this for regular storage, whose property is
	// not preserved by Basset's DPOR (Table I, fn. 3).
	unreducedBaseline bool
	// paperOnly marks rows that only run at paper scale (Table II's Echo
	// Multicast (3,1,1,1)).
	paperOnly bool
}

func paxosTarget(faulty bool, opts Options) target {
	cfg := paxos.Config{Proposers: 2, Acceptors: 3, Learners: 1, Faulty: faulty}
	if opts.Paper {
		cfg.MaxBallots = 2
	}
	name, prop := "Paxos", "Consensus"
	if faulty {
		name = "Faulty Paxos"
	}
	return target{
		protocol: name,
		setting:  cfg.Setting(),
		property: prop,
		quorum: func() (*core.Protocol, error) {
			c := cfg
			c.Model = paxos.ModelQuorum
			return paxos.New(c)
		},
		single: func() (*core.Protocol, error) {
			c := cfg
			c.Model = paxos.ModelSingle
			return paxos.New(c)
		},
	}
}

func multicastTarget(cfg multicast.Config, property string, paperOnly bool) target {
	return target{
		protocol:  "Echo Multicast",
		setting:   cfg.Setting(),
		property:  property,
		paperOnly: paperOnly,
		quorum: func() (*core.Protocol, error) {
			c := cfg
			c.Model = multicast.ModelQuorum
			return multicast.New(c)
		},
		single: func() (*core.Protocol, error) {
			c := cfg
			c.Model = multicast.ModelSingle
			return multicast.New(c)
		},
	}
}

func storageTarget(cfg storage.Config, property string) target {
	return target{
		protocol:          "Regular storage",
		setting:           cfg.Setting(),
		property:          property,
		unreducedBaseline: true,
		quorum: func() (*core.Protocol, error) {
			c := cfg
			c.Model = storage.ModelQuorum
			return storage.New(c)
		},
		single: func() (*core.Protocol, error) {
			c := cfg
			c.Model = storage.ModelSingle
			return storage.New(c)
		},
	}
}

// targets lists the paper's evaluation lines in table order.
func targets(opts Options) []target {
	return []target{
		paxosTarget(false, opts),
		paxosTarget(true, opts),
		multicastTarget(multicast.Config{HonestReceivers: 3, HonestInitiators: 0, ByzantineReceivers: 1, ByzantineInitiators: 1}, "Agreement", false),
		multicastTarget(multicast.Config{HonestReceivers: 2, HonestInitiators: 1, ByzantineReceivers: 0, ByzantineInitiators: 1}, "Agreement", false),
		multicastTarget(multicast.Config{HonestReceivers: 3, HonestInitiators: 1, ByzantineReceivers: 1, ByzantineInitiators: 1}, "Agreement", true),
		multicastTarget(multicast.Config{HonestReceivers: 2, HonestInitiators: 1, ByzantineReceivers: 2, ByzantineInitiators: 1}, "Wrong agreement", false),
		storageTarget(storage.Config{Objects: 3, Readers: 1}, "Regularity"),
		storageTarget(storage.Config{Objects: 3, Readers: 2, WrongRegularity: true}, "Wrong regularity"),
	}
}

// Table1 reproduces the paper's Table I (quorum semantics): per target, the
// single-message model under stateless DPOR — sequential plus a 2-worker
// speculative parallel cell — (or unreduced stateful search where the paper
// used it), the single-message model under SPOR, and the quorum model under
// SPOR.
func Table1(opts Options) ([]Row, error) {
	var rows []Row
	for _, tg := range targets(opts) {
		if tg.paperOnly {
			// Table I in the paper has no (3,1,1,1) row.
			continue
		}
		sp, err := tg.single()
		if err != nil {
			return nil, fmt.Errorf("table 1 %s%s: %w", tg.protocol, tg.setting, err)
		}
		qp, err := tg.quorum()
		if err != nil {
			return nil, fmt.Errorf("table 1 %s%s: %w", tg.protocol, tg.setting, err)
		}
		row := Row{Protocol: tg.protocol, Setting: tg.setting, Property: tg.property}
		if tg.unreducedBaseline {
			c := RunUnreduced("no-quorum unreduced", sp, opts)
			c.Note = joinNote(c.Note, "paper: DPOR does not preserve this property")
			row.Cells = append(row.Cells, c)
		} else {
			row.Cells = append(row.Cells, RunDPOR("no-quorum DPOR", sp, opts))
			// A 2-worker speculative parallel DPOR cell rides along so the
			// bench gate continuously checks the parallel engine against the
			// sequential cell above (bit-identical counts by construction).
			p2 := opts
			p2.Workers, p2.StealDepth = 2, 0
			row.Cells = append(row.Cells, RunDPOR("no-quorum DPOR-p2", sp, p2))
		}
		row.Cells = append(row.Cells,
			RunSPOR("no-quorum SPOR", sp, opts),
			RunSPOR("quorum SPOR", qp, opts),
		)
		rows = append(rows, row)
	}
	return rows, nil
}

// Table2 reproduces the paper's Table II (transition refinement): all
// quorum models under SPOR with the four split strategies.
func Table2(opts Options) ([]Row, error) {
	var rows []Row
	for _, tg := range targets(opts) {
		if tg.paperOnly && !opts.Paper {
			continue
		}
		qp, err := tg.quorum()
		if err != nil {
			return nil, fmt.Errorf("table 2 %s%s: %w", tg.protocol, tg.setting, err)
		}
		row := Row{Protocol: tg.protocol, Setting: tg.setting, Property: tg.property}
		for _, strat := range refineStrategies() {
			row.Cells = append(row.Cells, runSplit(qp, strat, opts))
		}
		rows = append(rows, row)
	}
	return rows, nil
}

func joinNote(a, b string) string {
	if a == "" {
		return b
	}
	return a + "; " + b
}

// Verify checks the table verdicts against the paper's expectations
// (Verified vs counterexample per row) and returns an error on the first
// mismatch. The protocol tests use it as a regression gate.
func Verify(rows []Row) error {
	for _, r := range rows {
		want := explore.VerdictVerified
		if r.Protocol == "Faulty Paxos" || r.Property == "Wrong agreement" || r.Property == "Wrong regularity" {
			want = explore.VerdictViolated
		}
		for _, c := range r.Cells {
			if c.Err != nil {
				return fmt.Errorf("%s %s [%s]: %w", r.Protocol, r.Setting, c.Column, c.Err)
			}
			if c.Verdict == explore.VerdictLimit {
				continue // a timeout is an acceptable outcome, as in the paper
			}
			if c.Verdict != want {
				return fmt.Errorf("%s %s [%s]: verdict %s, want %s", r.Protocol, r.Setting, c.Column, c.Verdict, want)
			}
		}
	}
	return nil
}
