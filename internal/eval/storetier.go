package eval

import (
	"fmt"

	"mpbasset/internal/core"
	"mpbasset/internal/explore"
	"mpbasset/internal/por"
	"mpbasset/internal/protocols/paxos"
	"mpbasset/internal/protocols/storage"
)

// hashEntryBytes is the approximate in-memory cost of one visited state in
// the exact-mode HashStore: a 16-byte fingerprint key plus Go map bucket
// and header overhead. The store-tier table uses it to translate a byte
// budget into the state cap an exact store could hold in the same memory a
// bitstate sweep gets as its bit array — the "equal memory" comparison the
// bitstate row makes.
const hashEntryBytes = 48

// storeTierBudget is the byte budget both cells of the bitstate row get:
// small enough that the exact store's equivalent state cap binds well
// before the table's MaxStates, large enough that the bitstate array stays
// far from saturation over the same space.
const storeTierBudget = 256 << 10

// StoreTierTable measures the raw-speed store tier: collapse compression
// against the exact stores it must match state-for-state, and the lossy
// bitstate store against an exact store capped at the same memory budget.
//
// Row one runs the regular-storage SPOR workload over the hash and exact
// stores with compression off and on — four cells whose verdicts, state
// and event counts must be identical (collapse is injective; only
// wall-clock may move), which the determinism gate in CompareReports then
// pins. Row two runs the Paxos SPOR workload twice at the same byte
// budget: an exact hash store allowed only the states that fit the budget
// (MaxStates = budget / hashEntryBytes), and a bitstate store whose bit
// array IS the budget — the lossy cell's higher state count is the
// coverage win the tier exists for. Both row-two cells end at a state
// limit, so the comparison gate checks their verdicts only; the bitstate
// cell's count is a coverage claim, not a census.
//
// The table always runs sequentially (Workers is ignored): which states a
// parallel run's bitstate store omits depends on visit order, and this
// table's numbers feed the committed baseline.
func StoreTierTable(opts Options) ([]Row, error) {
	opts.Workers = 0
	opts.Lossy = false
	opts.Compress = false

	sp, err := storage.New(storage.Config{Objects: 3, Readers: 1, Model: storage.ModelQuorum})
	if err != nil {
		return nil, err
	}
	compressRow := Row{Protocol: "Regular storage", Setting: "(3,1) quorum", Property: "Read regularity"}
	for _, tier := range []struct {
		column   string
		store    func() explore.Store
		compress bool
	}{
		{"SPOR hash", func() explore.Store { return explore.NewHashStore() }, false},
		{"SPOR exact", func() explore.Store { return explore.NewExactStore() }, false},
		{"SPOR collapse hash", func() explore.Store { return explore.NewHashStore() }, true},
		{"SPOR collapse exact", func() explore.Store { return explore.NewExactStore() }, true},
	} {
		xo := explore.Options{Store: tier.store()}
		if tier.compress {
			xo.Canon = explore.NewCollapser().Canon
		}
		compressRow.Cells = append(compressRow.Cells, runSPORCell(tier.column, sp, opts, xo))
	}

	px, err := paxos.New(paxos.Config{Proposers: 2, Acceptors: 3, Learners: 1, Model: paxos.ModelQuorum})
	if err != nil {
		return nil, err
	}
	budgetStates := storeTierBudget / hashEntryBytes
	bitstateRow := Row{Protocol: "Paxos", Setting: "(2,3,1) quorum", Property: "Consensus"}

	capped := opts
	if capped.MaxStates == 0 || capped.MaxStates > budgetStates {
		capped.MaxStates = budgetStates
	}
	cell := runSPORCell(fmt.Sprintf("SPOR exact @%dKiB", storeTierBudget>>10), px, capped,
		explore.Options{Store: explore.NewHashStore()})
	cell.Note = fmt.Sprintf("capped at %d states (%d B/state)", budgetStates, hashEntryBytes)
	bitstateRow.Cells = append(bitstateRow.Cells, cell)

	bits := explore.NewBitstateStore(storeTierBudget, 0)
	cell = runSPORCell(fmt.Sprintf("SPOR bitstate @%dKiB", storeTierBudget>>10), px, opts,
		explore.Options{Store: bits})
	fill, omission := bits.BitstateStats()
	cell.Note = fmt.Sprintf("lossy coverage: fill %.4f, omission ~%.1e", fill, omission)
	bitstateRow.Cells = append(bitstateRow.Cells, cell)

	return []Row{compressRow, bitstateRow}, nil
}

// runSPORCell runs one SPOR cell over a caller-chosen store and canon —
// the store-tier table picks those per cell, unlike RunSPOR, which derives
// them from Options.
func runSPORCell(column string, p *core.Protocol, opts Options, xo explore.Options) Cell {
	exp, err := por.NewExpander(p)
	if err != nil {
		return Cell{Column: column, Err: err}
	}
	xo.Expander = exp
	return run(column, p, opts, explore.DFS, xo)
}
