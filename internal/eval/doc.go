// Package eval defines the paper's evaluation as executable experiments:
// the quorum-semantics comparison of Table I, the transition-refinement
// comparison of Table II, the interleaving-cost analysis of §II-C, and
// the repo's own store-tier table (collapse compression and lossy
// bitstate sweeps). cmd/mpbench prints the tables; the root bench_test.go
// exposes each row as a Go benchmark.
//
// The package is part of the determinism contract (it appears in the lint
// suite's deterministic allowlist) and is also the contract's arbiter: it
// owns the canonical partition of result statistics into
// DeterministicStatsFields — bit-identical across engines, worker counts,
// schedulers and exact store tiers, enforced cell-by-cell by the baseline
// gate in compare.go — and VolatileStatsFields, the timing, spill and
// bitstate-coverage numbers that legitimately drift. The statsmask lint
// analyzer cross-checks that partition against explore.Stats, so a new
// statistic cannot ship without being classified.
//
// In the engine/store matrix, eval is the row driver: every cell it emits
// names one engine (DFS, BFS, their parallel twins, DPOR, NDFS) crossed
// with one reduction (none, SPOR, refinement, symmetry) and one store
// tier (exact, fingerprint, sharded, spill, bitstate) or compression
// mode. Cells over lossy or compressed tiers set Options accordingly and
// inherit the facade's soundness gating.
package eval
