package eval

import (
	"bytes"
	"encoding/json"
	"errors"
	"strings"
	"testing"
	"time"

	"mpbasset/internal/explore"
)

func TestWriteJSON(t *testing.T) {
	rows := []Row{{
		Protocol: "Demo",
		Setting:  "(1,1)",
		Property: "P",
		Cells: []Cell{
			{Column: "a", Verdict: explore.VerdictVerified, States: 42, Events: 7, Duration: 1500 * time.Millisecond},
			{Column: "b", Verdict: explore.VerdictLimit, Note: "timeout"},
			{Column: "c", Err: errors.New("boom")},
		},
	}}
	var buf bytes.Buffer
	if err := WriteJSON(&buf, "T", rows); err != nil {
		t.Fatal(err)
	}
	var parsed struct {
		Title string `json:"title"`
		Rows  []struct {
			Protocol string `json:"protocol"`
			Cells    []struct {
				Column     string  `json:"column"`
				Verdict    string  `json:"verdict"`
				States     int     `json:"states"`
				DurationMS float64 `json:"durationMillis"`
				Note       string  `json:"note"`
				Error      string  `json:"error"`
			} `json:"cells"`
		} `json:"rows"`
	}
	if err := json.Unmarshal(buf.Bytes(), &parsed); err != nil {
		t.Fatalf("output is not valid JSON: %v\n%s", err, buf.String())
	}
	if parsed.Title != "T" || len(parsed.Rows) != 1 || len(parsed.Rows[0].Cells) != 3 {
		t.Fatalf("structure wrong: %+v", parsed)
	}
	c := parsed.Rows[0].Cells[0]
	if c.Verdict != "Verified" || c.States != 42 || c.DurationMS != 1500 {
		t.Errorf("cell wrong: %+v", c)
	}
	if parsed.Rows[0].Cells[1].Note != "timeout" {
		t.Error("note lost")
	}
	if !strings.Contains(parsed.Rows[0].Cells[2].Error, "boom") {
		t.Error("error lost")
	}
}
