package core

import (
	"strings"
	"testing"
)

func validProtocol() *Protocol {
	return &Protocol{
		Name: "valid",
		N:    2,
		Init: func() []LocalState {
			return []LocalState{&counterState{}, &counterState{}}
		},
		Transitions: []*Transition{
			{Name: "T", Proc: 0, MsgType: "M", Quorum: 1},
		},
	}
}

func TestFinalizeValid(t *testing.T) {
	p := validProtocol()
	if err := p.Finalize(); err != nil {
		t.Fatal(err)
	}
	// Idempotent.
	if err := p.Finalize(); err != nil {
		t.Fatal(err)
	}
	if p.Transitions[0].Index() != 0 {
		t.Fatal("transition index not assigned")
	}
	if len(p.ByProc(0)) != 1 || len(p.ByProc(1)) != 0 {
		t.Fatal("ByProc grouping wrong")
	}
}

func TestFinalizeRejections(t *testing.T) {
	cases := []struct {
		name   string
		mutate func(*Protocol)
		want   string
	}{
		{"zero N", func(p *Protocol) { p.N = 0 }, "N must be positive"},
		{"nil Init", func(p *Protocol) { p.Init = nil }, "Init is required"},
		{"no transitions", func(p *Protocol) { p.Transitions = nil }, "at least one transition"},
		{"nil transition", func(p *Protocol) { p.Transitions = []*Transition{nil} }, "is nil"},
		{"proc out of range", func(p *Protocol) { p.Transitions[0].Proc = 5 }, "out of range"},
		{"empty name", func(p *Protocol) { p.Transitions[0].Name = "" }, "empty name"},
		{"negative quorum", func(p *Protocol) { p.Transitions[0].Quorum = -2 }, "negative quorum"}, // -1 is AnyQuorum
		{"spontaneous with type", func(p *Protocol) { p.Transitions[0].Quorum = 0 }, "spontaneous"},
		{"quorum without type", func(p *Protocol) { p.Transitions[0].MsgType = "" }, "spontaneous"},
		{
			"peers below quorum",
			func(p *Protocol) { p.Transitions[0].Quorum = 2; p.Transitions[0].Peers = []ProcessID{1} },
			"cannot satisfy quorum",
		},
		{
			"peer out of range",
			func(p *Protocol) { p.Transitions[0].Peers = []ProcessID{9} },
			"peer 9 out of range",
		},
		{
			"duplicate transition",
			func(p *Protocol) {
				dup := *p.Transitions[0]
				p.Transitions = append(p.Transitions, &dup)
			},
			"duplicate transition",
		},
		{
			"send recipient out of range",
			func(p *Protocol) { p.Transitions[0].Sends = []SendSpec{{Type: "X", To: []ProcessID{9}}} },
			"out of range",
		},
		{
			"empty send type",
			func(p *Protocol) { p.Transitions[0].Sends = []SendSpec{{}} },
			"empty type",
		},
		{
			"global read out of range",
			func(p *Protocol) { p.Transitions[0].GlobalReads = []ProcessID{7} },
			"out of range",
		},
		{
			"initial message out of range",
			func(p *Protocol) { p.InitialMessages = []Message{{From: 0, To: 9, Type: "M"}} },
			"out of range",
		},
	}
	for _, tc := range cases {
		t.Run(tc.name, func(t *testing.T) {
			p := validProtocol()
			tc.mutate(p)
			err := p.Finalize()
			if err == nil || !strings.Contains(err.Error(), tc.want) {
				t.Fatalf("Finalize() = %v, want error containing %q", err, tc.want)
			}
		})
	}
}

func TestInitialStateChecksInit(t *testing.T) {
	p := validProtocol()
	p.Init = func() []LocalState { return []LocalState{&counterState{}} } // wrong length
	if _, err := p.InitialState(); err == nil {
		t.Fatal("short Init slice not rejected")
	}
	p2 := validProtocol()
	p2.Init = func() []LocalState { return []LocalState{&counterState{}, nil} }
	if _, err := p2.InitialState(); err == nil {
		t.Fatal("nil local not rejected")
	}
}

func TestInitialMessagesSeedBag(t *testing.T) {
	p := validProtocol()
	p.InitialMessages = []Message{{From: 1, To: 0, Type: "M"}}
	s, err := p.InitialState()
	if err != nil {
		t.Fatal(err)
	}
	if s.Msgs.Len() != 1 {
		t.Fatal("initial messages not seeded")
	}
}

func TestProtocolClone(t *testing.T) {
	p := validProtocol()
	if err := p.Finalize(); err != nil {
		t.Fatal(err)
	}
	c := p.Clone()
	c.Transitions[0].Name = "RENAMED"
	c.Transitions[0].Peers = []ProcessID{0}
	if p.Transitions[0].Name != "T" || p.Transitions[0].Peers != nil {
		t.Fatal("clone aliases source transitions")
	}
	if err := c.Finalize(); err != nil {
		t.Fatal(err)
	}
}

func TestCheckInvariantNil(t *testing.T) {
	p := validProtocol()
	if err := p.Finalize(); err != nil {
		t.Fatal(err)
	}
	s, _ := p.InitialState()
	if err := p.CheckInvariant(s); err != nil {
		t.Fatal("nil invariant must hold vacuously")
	}
}

func TestTransitionHelpers(t *testing.T) {
	tr := &Transition{Name: "X", Proc: 3, MsgType: "M", Quorum: 2, Peers: []ProcessID{1, 2}}
	if tr.String() != "3/X" {
		t.Fatalf("String = %q", tr.String())
	}
	if tr.Spontaneous() {
		t.Fatal("quorum transition reported spontaneous")
	}
	if !tr.AllowsSender(1) || tr.AllowsSender(0) {
		t.Fatal("AllowsSender wrong with peers")
	}
	tr2 := &Transition{Name: "Y", Proc: 0}
	if !tr2.Spontaneous() || !tr2.AllowsSender(7) {
		t.Fatal("spontaneous/nil-peers helpers wrong")
	}
}

func TestEventKeyAndString(t *testing.T) {
	p := pingPong(t)
	s0, _ := p.InitialState()
	ev := p.Enabled(s0)[0]
	if ev.Key() == "" || !strings.Contains(ev.String(), "START") {
		t.Fatalf("event rendering wrong: key=%q str=%q", ev.Key(), ev.String())
	}
	s1, _ := p.Execute(s0, ev)
	ev2 := p.Enabled(s1)[0]
	if !strings.Contains(ev2.String(), "PING") || !strings.Contains(ev2.String(), "0>1") {
		t.Fatalf("event string %q should mention consumed message", ev2.String())
	}
	if ev.Key() == ev2.Key() {
		t.Fatal("distinct events share a key")
	}
}
