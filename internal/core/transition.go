package core

import (
	"fmt"
	"strconv"
	"strings"
)

// SendSpec statically describes one kind of message a transition may send.
// It corresponds to the messageOut/senders annotations of the paper's
// Table IV and feeds the static dependence analysis of package por.
type SendSpec struct {
	// Type is the message type that may be sent.
	Type string
	// To restricts the possible recipients; nil means any process.
	To []ProcessID
	// ToSenders declares that recipients are a subset of the senders of
	// the consumed message set (Definition 4, reply transitions). For a
	// transition whose Peers are restricted (e.g. by reply-split), the
	// possible recipients are then exactly those peers.
	ToSenders bool
}

// Guard decides whether a transition may consume the given message set in
// the given local state (§II-A). msgs is sorted by canonical key; the order
// carries no meaning. Guards must be pure: no mutation, no sends.
type Guard func(local LocalState, msgs []Message) bool

// Apply executes the body of a transition. It may mutate c.Local (a private
// clone), send messages via c.Send, and — only for ReadsGlobal transitions —
// inspect other processes' pre-states via c.Global.
type Apply func(c *Ctx)

// Transition is a guarded atomic event of one process: it consumes a set of
// messages, updates the local state, and sends messages (§II-A). The
// annotation fields mirror the paper's Table IV and are consumed by the POR
// and refinement packages.
type Transition struct {
	// Name identifies the transition; (Proc, Name) must be unique within a
	// protocol. By the paper's convention the name of an unrefined
	// transition matches the message type it consumes; refined transitions
	// carry a "__<peers>" suffix.
	Name string
	// Proc is the process executing the transition.
	Proc ProcessID
	// MsgType is the type of messages consumed. Empty for spontaneous
	// transitions (Quorum == 0), which model the paper's driver-sent
	// "fake messages" as guards over the local state.
	MsgType string
	// Quorum is the exact number of distinct senders whose messages the
	// transition consumes in one step (Definition 2): 0 = spontaneous,
	// 1 = single-message, >1 = quorum transition. The special value
	// AnyQuorum selects the paper's unrestricted §II-A semantics: the
	// transition may consume any non-empty subset of matching pending
	// messages the guard accepts, enumerated over the powerset (§IV-A).
	Quorum int
	// Peers restricts the allowed senders of consumed messages; nil means
	// any process. Quorum-split and reply-split refine transitions by
	// narrowing Peers (Definition 3).
	Peers []ProcessID
	// Guard decides enabledness; nil means "enabled whenever the message
	// set is structurally complete".
	Guard Guard
	// LocalGuard is an optional necessary condition of Guard that depends
	// on the local state only (the paper's isStateSensitive annotation):
	// whenever LocalGuard is false the transition must be disabled for
	// every message set. It lets the static POR conclude that a disabled
	// transition can only be enabled by its own process, and lets
	// enumeration skip message matching early.
	LocalGuard func(local LocalState) bool
	// Apply is the transition body; nil means "consume and do nothing".
	Apply Apply

	// Priority orders seed candidates for the static POR's "opposite
	// transaction" heuristic (§V-B): higher values are preferred, meaning
	// the transition starts a new protocol instance or at least does not
	// terminate an ongoing one.
	Priority int
	// Visible marks transitions that can change the truth value of the
	// protocol's invariant. POR never reduces away states around visible
	// transitions (ample condition C2).
	Visible bool
	// IsReply marks reply transitions (Definition 4): every send goes back
	// to a sender of the consumed messages. Reply-split refines these.
	IsReply bool
	// Sends lists the kinds of messages the transition may send.
	Sends []SendSpec
	// ReadOnly declares that Apply never modifies the local state (the
	// negation of the paper's isWrite annotation, Table IV). Two ReadOnly
	// transitions of the same process that cannot contend for the same
	// messages commute, which lets the POR analysis decouple them — e.g.
	// a storage base object answering probes of different readers.
	// Protocol.ValidateSends checks the claim on every execution.
	ReadOnly bool
	// UniquePerSender declares that in every reachable state, every
	// allowed sender has at most one pending message this transition can
	// consume (e.g. one READ_REPL per acceptor per ballot). The static POR
	// then knows that an enabled transition's event set can only grow
	// through senders it is still missing, which sharpens stubborn sets —
	// the dynamic counterpart of the paper's "READ_REPLij can be enabled
	// only by transitions of acceptors i and j" argument (§III-C).
	// Protocol.ValidateSends checks the claim on every reached state.
	UniquePerSender bool
	// GlobalReads lists processes whose state Apply reads through
	// Ctx.Global (specification instrumentation). POR treats the
	// transition as dependent on every transition of those processes.
	GlobalReads []ProcessID

	idx int // position in Protocol.Transitions, set by Finalize
}

// Index returns the transition's position in its protocol's transition
// list. Valid only after Protocol.Finalize.
func (t *Transition) Index() int { return t.idx }

// String returns "proc/name".
func (t *Transition) String() string {
	return t.Proc.String() + "/" + t.Name
}

// Spontaneous reports whether the transition consumes no messages.
func (t *Transition) Spontaneous() bool { return t.Quorum == 0 }

// guardOK evaluates the guard, treating nil as true.
func (t *Transition) guardOK(local LocalState, msgs []Message) bool {
	if t.LocalGuard != nil && !t.LocalGuard(local) {
		return false
	}
	if t.Guard == nil {
		return true
	}
	return t.Guard(local, msgs)
}

// LocalGuardOK evaluates the local-state guard, treating nil as true.
func (t *Transition) LocalGuardOK(local LocalState) bool {
	return t.LocalGuard == nil || t.LocalGuard(local)
}

// AllowsSender reports whether p may contribute messages to the transition
// under its peer restriction (nil Peers allows any process).
func (t *Transition) AllowsSender(p ProcessID) bool {
	if t.Peers == nil {
		return true
	}
	for _, q := range t.Peers {
		if q == p {
			return true
		}
	}
	return false
}

// validate checks structural well-formedness against a system of n
// processes.
func (t *Transition) validate(n int) error {
	if t.Name == "" {
		return fmt.Errorf("transition of process %d has empty name", t.Proc)
	}
	if t.Proc < 0 || int(t.Proc) >= n {
		return fmt.Errorf("transition %s: process out of range [0,%d)", t, n)
	}
	if t.Quorum < 0 && t.Quorum != AnyQuorum {
		return fmt.Errorf("transition %s: negative quorum", t)
	}
	if (t.Quorum == 0) != (t.MsgType == "") {
		return fmt.Errorf("transition %s: spontaneous transitions (quorum 0) must have empty message type and vice versa", t)
	}
	if t.Peers != nil && t.Quorum > 0 && len(t.Peers) < t.Quorum {
		return fmt.Errorf("transition %s: %d peers cannot satisfy quorum %d", t, len(t.Peers), t.Quorum)
	}
	for _, p := range t.Peers {
		if p < 0 || int(p) >= n {
			return fmt.Errorf("transition %s: peer %d out of range", t, p)
		}
	}
	for _, p := range t.GlobalReads {
		if p < 0 || int(p) >= n {
			return fmt.Errorf("transition %s: global-read process %d out of range", t, p)
		}
	}
	for _, s := range t.Sends {
		if s.Type == "" {
			return fmt.Errorf("transition %s: send spec with empty type", t)
		}
		for _, p := range s.To {
			if p < 0 || int(p) >= n {
				return fmt.Errorf("transition %s: send recipient %d out of range", t, p)
			}
		}
	}
	return nil
}

// PeerSuffix renders a peer set as the double-underscore suffix used for
// refined transition names, e.g. "__1_2" (the paper's msgType__ convention).
func PeerSuffix(peers []ProcessID) string {
	var sb strings.Builder
	sb.WriteString("__")
	for i, p := range peers {
		if i > 0 {
			sb.WriteByte('_')
		}
		sb.WriteString(strconv.Itoa(int(p)))
	}
	return sb.String()
}
