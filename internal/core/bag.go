package core

import (
	"sort"
	"strconv"
	"strings"
)

// Bag is a multiset of in-flight messages: the union of all channel
// contents. Channels are unordered per the MP model, so a counted set keyed
// by canonical message encoding represents them faithfully.
//
// The zero value is not ready to use; call NewBag.
type Bag struct {
	entries map[string]bagEntry
	size    int
}

type bagEntry struct {
	msg Message
	n   int
}

// NewBag returns an empty bag.
func NewBag() *Bag {
	return &Bag{entries: make(map[string]bagEntry)}
}

// Add inserts one copy of m.
func (b *Bag) Add(m Message) {
	k := m.Key()
	e := b.entries[k]
	e.msg = m
	e.n++
	b.entries[k] = e
	b.size++
}

// Remove deletes one copy of m. It reports whether a copy was present.
func (b *Bag) Remove(m Message) bool {
	k := m.Key()
	e, ok := b.entries[k]
	if !ok {
		return false
	}
	if e.n == 1 {
		delete(b.entries, k)
	} else {
		e.n--
		b.entries[k] = e
	}
	b.size--
	return true
}

// Count returns the number of copies of m in the bag.
func (b *Bag) Count(m Message) int { return b.entries[m.Key()].n }

// Len returns the total number of messages (counting multiplicity).
func (b *Bag) Len() int { return b.size }

// Distinct returns the number of distinct messages.
func (b *Bag) Distinct() int { return len(b.entries) }

// Clone returns an independent copy of the bag.
func (b *Bag) Clone() *Bag {
	nb := &Bag{entries: make(map[string]bagEntry, len(b.entries)), size: b.size}
	//lint:nondet-ok map-to-map copy: insertion order of the clone is unobservable
	for k, e := range b.entries {
		nb.entries[k] = e
	}
	return nb
}

// Each calls f for every distinct message with its multiplicity, in
// unspecified order.
func (b *Bag) Each(f func(m Message, n int)) {
	//lint:nondet-ok unspecified order is the documented contract; every engine caller folds into commutative counts or sorts what it collects
	for _, e := range b.entries {
		f(e.msg, e.n)
	}
}

// MatchingBySender collects the distinct pending messages addressed to
// proc with the given type whose sender is allowed by peers (nil peers =
// any sender). It returns the sorted list of senders that have at least one
// candidate, and the candidates per sender sorted by message key.
//
// Multiplicity is irrelevant here: consuming any one of several identical
// copies yields the same successor state, so one representative suffices.
func (b *Bag) MatchingBySender(proc ProcessID, typ string, peers []ProcessID) ([]ProcessID, map[ProcessID][]Message) {
	var allowed map[ProcessID]bool
	if peers != nil {
		allowed = make(map[ProcessID]bool, len(peers))
		for _, p := range peers {
			allowed[p] = true
		}
	}
	bySender := make(map[ProcessID][]Message)
	//lint:nondet-ok per-sender lists and the sender list are both sorted below
	for _, e := range b.entries {
		m := e.msg
		if m.To != proc || m.Type != typ {
			continue
		}
		if allowed != nil && !allowed[m.From] {
			continue
		}
		bySender[m.From] = append(bySender[m.From], m)
	}
	senders := make([]ProcessID, 0, len(bySender))
	//lint:nondet-ok the in-place sort of each list and the sort.Slice on senders below erase any trace of iteration order
	for p, msgs := range bySender {
		sort.Slice(msgs, func(i, j int) bool { return msgs[i].Key() < msgs[j].Key() })
		bySender[p] = msgs
		senders = append(senders, p)
	}
	sort.Slice(senders, func(i, j int) bool { return senders[i] < senders[j] })
	return senders, bySender
}

// HasMatching reports whether at least one pending message is addressed to
// proc with the given type from an allowed sender.
func (b *Bag) HasMatching(proc ProcessID, typ string, peers []ProcessID) bool {
	senders, _ := b.MatchingBySender(proc, typ, peers)
	return len(senders) > 0
}

// appendKey writes the canonical encoding of the bag: sorted message keys
// with multiplicities.
func (b *Bag) appendKey(sb *strings.Builder) {
	keys := make([]string, 0, len(b.entries))
	for k := range b.entries {
		keys = append(keys, k)
	}
	sort.Strings(keys)
	for _, k := range keys {
		e := b.entries[k]
		sb.WriteByte(';')
		sb.WriteString(k)
		if e.n > 1 {
			sb.WriteByte('*')
			sb.WriteString(strconv.Itoa(e.n))
		}
	}
}

// Key returns the canonical encoding of the bag contents.
func (b *Bag) Key() string {
	var sb strings.Builder
	b.appendKey(&sb)
	return sb.String()
}
