package core

import (
	"testing"
	"testing/quick"
)

func TestLocalGuardIsNecessaryCondition(t *testing.T) {
	// guardOK must be false whenever LocalGuard is false, regardless of
	// the content guard.
	tr := &Transition{
		Name:    "T",
		Proc:    0,
		MsgType: "M",
		Quorum:  1,
		LocalGuard: func(ls LocalState) bool {
			return ls.(*counterState).N == 0
		},
		Guard: func(LocalState, []Message) bool { return true },
	}
	if !tr.guardOK(&counterState{N: 0}, []Message{msg(1, 0, "M", 1)}) {
		t.Fatal("guard should pass when both conditions hold")
	}
	if tr.guardOK(&counterState{N: 1}, []Message{msg(1, 0, "M", 1)}) {
		t.Fatal("local guard false must disable the transition")
	}
	if !tr.LocalGuardOK(&counterState{N: 0}) || tr.LocalGuardOK(&counterState{N: 1}) {
		t.Fatal("LocalGuardOK wrong")
	}
	// Nil guards are permissive.
	tr2 := &Transition{Name: "U", Proc: 0, MsgType: "M", Quorum: 1}
	if !tr2.guardOK(&counterState{}, nil) || !tr2.LocalGuardOK(&counterState{}) {
		t.Fatal("nil guards must be permissive")
	}
}

func TestCloneIsolationProperty(t *testing.T) {
	// Mutating a clone never affects the original, for arbitrary
	// mutation sequences.
	f := func(initial uint8, tags []string, bumps uint8) bool {
		orig := &counterState{N: int(initial), Tags: append([]string(nil), tags...)}
		origKey := orig.Key()
		c := orig.Clone().(*counterState)
		for i := 0; i < int(bumps%8); i++ {
			c.N++
			c.Tags = append(c.Tags, "x")
		}
		return orig.Key() == origKey
	}
	if err := quick.Check(f, nil); err != nil {
		t.Fatal(err)
	}
}

func TestStateImmutabilityThroughExecution(t *testing.T) {
	// Executing every enabled event from one state must leave the state's
	// key unchanged (copy-on-write discipline), for generated protocols.
	p := pingPong(t)
	s, err := p.InitialState()
	if err != nil {
		t.Fatal(err)
	}
	for depth := 0; depth < 4; depth++ {
		key := s.Key()
		events := p.Enabled(s)
		if len(events) == 0 {
			break
		}
		var next *State
		for _, ev := range events {
			ns, err := p.Execute(s, ev)
			if err != nil {
				t.Fatal(err)
			}
			next = ns
		}
		if s.Key() != key {
			t.Fatalf("depth %d: source state mutated by Execute", depth)
		}
		s = next
	}
}

func TestEnabledDoesNotMutateState(t *testing.T) {
	p := quorumTestProtocol(t, 2, nil)
	s := stateWithMsgs(p, t, msg(0, 3, "Q", 1), msg(1, 3, "Q", 2), msg(2, 3, "Q", 3))
	key := s.Key()
	for i := 0; i < 3; i++ {
		_ = p.Enabled(s)
	}
	if s.Key() != key {
		t.Fatal("Enabled mutated the state")
	}
	if s.Msgs.Len() != 3 {
		t.Fatal("Enabled consumed messages")
	}
}
