package core

import "strings"

// LocalState is the state of a single process. Implementations must provide
// a canonical encoding and a deep clone; transitions mutate only the clone
// handed to them by the execution engine.
type LocalState interface {
	// Key returns a canonical, collision-free encoding of the local state.
	Key() string
	// Clone returns an independent deep copy.
	Clone() LocalState
}

// State is a global protocol state: one local state per process plus the
// multiset of in-flight messages. States are immutable once constructed;
// Protocol.Execute builds successor states copy-on-write.
type State struct {
	Locals []LocalState
	Msgs   *Bag

	key string // lazily computed canonical encoding
}

// NewState builds a state from locals and a bag. The arguments are owned by
// the new state and must not be mutated afterwards.
func NewState(locals []LocalState, msgs *Bag) *State {
	if msgs == nil {
		msgs = NewBag()
	}
	return &State{Locals: locals, Msgs: msgs}
}

// Key returns the canonical encoding of the state. Two states are equal iff
// their keys are equal. The key is cached; State must not be mutated after
// the first call.
func (s *State) Key() string {
	if s.key == "" {
		var sb strings.Builder
		sb.Grow(64)
		for i, l := range s.Locals {
			if i > 0 {
				sb.WriteByte('|')
			}
			sb.WriteString(l.Key())
		}
		sb.WriteByte('#')
		s.Msgs.appendKey(&sb)
		s.key = sb.String()
	}
	return s.key
}

// ComponentKeys returns the canonical encoding of the state component by
// component: one key per process local state, plus the message-bag key.
// Key() is exactly the locals joined by '|', then '#', then the bag key —
// ComponentKeys exposes the parts before they are flattened, so collapse
// compression (explore.Collapser) can intern each component in a shared
// table instead of re-splitting the joined string (local keys may contain
// any byte, so splitting the flat key would be ambiguous).
func (s *State) ComponentKeys() (locals []string, bag string) {
	locals = make([]string, len(s.Locals))
	for i, l := range s.Locals {
		locals[i] = l.Key()
	}
	return locals, s.Msgs.Key()
}

// Local returns the local state of process p.
func (s *State) Local(p ProcessID) LocalState { return s.Locals[p] }

// String returns the canonical key (useful in error messages and traces).
func (s *State) String() string { return s.Key() }

// GlobalView grants read access to the pre-state of every process. It is
// available inside Apply only to transitions annotated with ReadsGlobal and
// exists for specification instrumentation (history/observer variables), in
// the spirit of the escape hatch the paper documents in its appendix
// (footnote 7). Using it makes the transition conservatively dependent on
// the processes it reads (see package por).
type GlobalView struct {
	locals []LocalState
}

// Local returns the pre-state local state of process p. The returned value
// must not be mutated.
func (v GlobalView) Local(p ProcessID) LocalState { return v.locals[p] }
