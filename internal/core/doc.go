// Package core implements the message-passing (MP) computation model of
// Bokor et al., "Efficient Model Checking of Fault-Tolerant Distributed
// Protocols" (DSN 2011), Section II.
//
// A system consists of n processes communicating through unordered channels.
// A protocol defines, per process, a set of transitions. A transition can
// consume a set of messages from the incoming channels of its process (a
// quorum transition if the set may contain messages from more than one
// sender), change the local state of the process, and send messages — all in
// one indivisible step. The semantics is a state graph whose states are
// vectors of local states plus the multiset of in-flight messages.
//
// The package provides:
//
//   - the state representation (LocalState, Message, Bag, State) with
//     canonical, deterministic encoding used for stateful search;
//   - the transition representation (Transition) including the partial-order
//     reduction annotations of the paper's Table IV (priority, visibility,
//     reply flag, send specifications, peer restriction);
//   - enabled-event enumeration implementing exact quorum semantics
//     (Definition 2): an event is a pair (t, X) where X holds exactly
//     q_t messages of t's type from q_t distinct senders;
//   - execution of events with copy-on-write state construction.
//
// Everything in this package is deterministic: enumeration orders, state
// keys and event keys are stable across runs, which makes searches
// reproducible and state graphs comparable (the property behind the paper's
// Theorem 2 tests in package refine).
package core
