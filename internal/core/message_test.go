package core

import (
	"sort"
	"testing"
	"testing/quick"
)

func TestMessageKeyDistinguishesFields(t *testing.T) {
	base := msg(1, 2, "T", 5)
	variants := []Message{
		msg(0, 2, "T", 5),
		msg(1, 0, "T", 5),
		msg(1, 2, "U", 5),
		msg(1, 2, "T", 6),
	}
	for _, v := range variants {
		if v.Key() == base.Key() {
			t.Errorf("distinct messages share key: %v vs %v", base, v)
		}
	}
	if base.Key() != msg(1, 2, "T", 5).Key() {
		t.Error("equal messages have different keys")
	}
}

func TestMessageKeyInjectiveOnSmallDomain(t *testing.T) {
	// Property: distinct (from,to,type,payload) tuples yield distinct keys.
	seen := make(map[string]Message)
	for from := 0; from < 4; from++ {
		for to := 0; to < 4; to++ {
			for _, typ := range []string{"A", "B", "AB"} {
				for v := 0; v < 4; v++ {
					m := msg(ProcessID(from), ProcessID(to), typ, v)
					k := m.Key()
					if prev, ok := seen[k]; ok {
						t.Fatalf("key collision: %v and %v both map to %q", prev, m, k)
					}
					seen[k] = m
				}
			}
		}
	}
}

func TestNoPayloadKeyEmpty(t *testing.T) {
	if (NoPayload{}).Key() != "" {
		t.Fatal("NoPayload key should be empty")
	}
	m := Message{From: 1, To: 2, Type: "T", Payload: NoPayload{}}
	m2 := Message{From: 1, To: 2, Type: "T"}
	if m.Key() != m2.Key() {
		t.Fatalf("NoPayload and nil payload should encode the same: %q vs %q", m.Key(), m2.Key())
	}
}

func TestSortMessagesIsCanonical(t *testing.T) {
	f := func(vals []uint8) bool {
		if len(vals) == 0 {
			return true
		}
		var a, b []Message
		for i, v := range vals {
			m := msg(ProcessID(int(v)%3), 0, "T", i%5)
			a = append(a, m)
			b = append([]Message{m}, b...) // reversed insertion
		}
		SortMessages(a)
		SortMessages(b)
		if len(a) != len(b) {
			return false
		}
		for i := range a {
			if a[i].Key() != b[i].Key() {
				return false
			}
		}
		return sort.SliceIsSorted(a, func(i, j int) bool { return a[i].Key() < a[j].Key() })
	}
	if err := quick.Check(f, nil); err != nil {
		t.Fatal(err)
	}
}

func TestPeerSuffix(t *testing.T) {
	if got := PeerSuffix([]ProcessID{1, 2}); got != "__1_2" {
		t.Fatalf("PeerSuffix = %q, want __1_2", got)
	}
	if got := PeerSuffix([]ProcessID{7}); got != "__7" {
		t.Fatalf("PeerSuffix = %q, want __7", got)
	}
}
