package core

import (
	"strings"
	"testing"
)

// pingPong builds a 2-process protocol: process 0 spontaneously sends PING
// to 1 (once); process 1 replies PONG; process 0 consumes PONG.
func pingPong(t *testing.T) *Protocol {
	t.Helper()
	p := &Protocol{
		Name: "pingpong",
		N:    2,
		Init: func() []LocalState {
			return []LocalState{&counterState{}, &counterState{}}
		},
		Transitions: []*Transition{
			{
				Name:     "START",
				Proc:     0,
				Priority: 1,
				Sends:    []SendSpec{{Type: "PING", To: []ProcessID{1}}},
				LocalGuard: func(ls LocalState) bool {
					return ls.(*counterState).N == 0
				},
				Apply: func(c *Ctx) {
					c.Local.(*counterState).N = 1
					c.Send(1, "PING", NoPayload{})
				},
			},
			{
				Name:    "PING",
				Proc:    1,
				MsgType: "PING",
				Quorum:  1,
				Peers:   []ProcessID{0},
				IsReply: true,
				Sends:   []SendSpec{{Type: "PONG", ToSenders: true}},
				Apply: func(c *Ctx) {
					c.Local.(*counterState).N++
					c.Send(c.Msgs[0].From, "PONG", NoPayload{})
				},
			},
			{
				Name:    "PONG",
				Proc:    0,
				MsgType: "PONG",
				Quorum:  1,
				Peers:   []ProcessID{1},
				Apply: func(c *Ctx) {
					c.Local.(*counterState).N = 2
				},
			},
		},
	}
	p.ValidateSends = true
	if err := p.Finalize(); err != nil {
		t.Fatal(err)
	}
	return p
}

func TestExecuteSemantics(t *testing.T) {
	p := pingPong(t)
	s0, err := p.InitialState()
	if err != nil {
		t.Fatal(err)
	}
	ev := p.Enabled(s0)
	if len(ev) != 1 || ev[0].T.Name != "START" {
		t.Fatalf("initial enabled = %v", ev)
	}
	s1, err := p.Execute(s0, ev[0])
	if err != nil {
		t.Fatal(err)
	}
	// Original state untouched (copy-on-write).
	if s0.Local(0).(*counterState).N != 0 || s0.Msgs.Len() != 0 {
		t.Fatal("Execute mutated the source state")
	}
	if s1.Local(0).(*counterState).N != 1 || s1.Msgs.Len() != 1 {
		t.Fatalf("successor wrong: local=%v msgs=%d", s1.Local(0), s1.Msgs.Len())
	}
	// Unaffected local states are shared structurally.
	if s0.Local(1) != s1.Local(1) {
		t.Fatal("unchanged local state was copied, not shared")
	}

	ev = p.Enabled(s1)
	if len(ev) != 1 || ev[0].T.Name != "PING" {
		t.Fatalf("after START enabled = %v", ev)
	}
	s2, err := p.Execute(s1, ev[0])
	if err != nil {
		t.Fatal(err)
	}
	if s2.Msgs.Len() != 1 || !s2.Msgs.HasMatching(0, "PONG", nil) {
		t.Fatal("PING consumption should yield exactly one PONG")
	}

	ev = p.Enabled(s2)
	s3, err := p.Execute(s2, ev[0])
	if err != nil {
		t.Fatal(err)
	}
	if s3.Msgs.Len() != 0 || s3.Local(0).(*counterState).N != 2 {
		t.Fatal("final state wrong")
	}
	if len(p.Enabled(s3)) != 0 {
		t.Fatal("protocol should terminate (deadlock state)")
	}
}

func TestExecuteRejectsMissingMessage(t *testing.T) {
	p := pingPong(t)
	s0, _ := p.InitialState()
	bogus := Event{T: p.Transitions[1], Msgs: []Message{{From: 0, To: 1, Type: "PING"}}}
	if _, err := p.Execute(s0, bogus); err == nil {
		t.Fatal("executing with a non-pending message must fail")
	}
}

func TestValidateSendsCatchesUndeclaredSend(t *testing.T) {
	p := pingPong(t)
	p.Transitions[0].Apply = func(c *Ctx) {
		c.Local.(*counterState).N = 1
		c.Send(1, "SNEAKY", NoPayload{})
	}
	s0, _ := p.InitialState()
	if _, err := p.Execute(s0, p.Enabled(s0)[0]); err == nil ||
		!strings.Contains(err.Error(), "Sends specifications") {
		t.Fatalf("undeclared send not caught: %v", err)
	}
}

func TestValidateSendsCatchesReplyViolation(t *testing.T) {
	p := pingPong(t)
	// PING is marked IsReply; make it send to a non-sender.
	p.Transitions[1].Sends = []SendSpec{{Type: "PONG"}}
	p.Transitions[1].Apply = func(c *Ctx) {
		c.Send(1, "PONG", NoPayload{}) // to itself, not to the sender
	}
	s0, _ := p.InitialState()
	s1, err := p.Execute(s0, p.Enabled(s0)[0])
	if err != nil {
		t.Fatal(err)
	}
	if _, err := p.Execute(s1, p.Enabled(s1)[0]); err == nil ||
		!strings.Contains(err.Error(), "IsReply") {
		t.Fatalf("reply violation not caught: %v", err)
	}
}

func TestValidateReadOnlyCatchesWrite(t *testing.T) {
	p := pingPong(t)
	p.Transitions[1].ReadOnly = true // but Apply increments N
	s0, _ := p.InitialState()
	s1, err := p.Execute(s0, p.Enabled(s0)[0])
	if err != nil {
		t.Fatal(err)
	}
	if _, err := p.Execute(s1, p.Enabled(s1)[0]); err == nil ||
		!strings.Contains(err.Error(), "ReadOnly") {
		t.Fatalf("read-only violation not caught: %v", err)
	}
}

func TestGlobalReadRequiresDeclaration(t *testing.T) {
	p := pingPong(t)
	p.Transitions[0].Apply = func(c *Ctx) {
		c.Local.(*counterState).N = 1
		c.Global(1) // not declared in GlobalReads
	}
	s0, _ := p.InitialState()
	defer func() {
		if recover() == nil {
			t.Fatal("undeclared global read must panic")
		}
	}()
	p.Execute(s0, p.Enabled(s0)[0]) //nolint:errcheck // panics before returning
}

func TestGlobalReadDeclared(t *testing.T) {
	p := pingPong(t)
	p.Transitions[0].GlobalReads = []ProcessID{1}
	var observed int
	p.Transitions[0].Apply = func(c *Ctx) {
		c.Local.(*counterState).N = 1
		observed = c.Global(1).(*counterState).N
		c.Send(1, "PING", NoPayload{})
	}
	s0, _ := p.InitialState()
	if _, err := p.Execute(s0, p.Enabled(s0)[0]); err != nil {
		t.Fatal(err)
	}
	if observed != 0 {
		t.Fatalf("observed %d, want 0", observed)
	}
}
