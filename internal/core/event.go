package core

import (
	"strconv"
	"strings"
)

// Event is one executable step: a transition together with the exact
// message set it consumes (the paper's s --t(X)--> s'). For spontaneous
// transitions Msgs is nil.
type Event struct {
	T    *Transition
	Msgs []Message // sorted by canonical key
}

// Key returns a canonical encoding of the event, unique within a finalized
// protocol (it embeds the transition index and the consumed message keys).
func (e Event) Key() string {
	var sb strings.Builder
	sb.WriteString(strconv.Itoa(e.T.idx))
	for _, m := range e.Msgs {
		sb.WriteByte(',')
		m.appendKey(&sb)
	}
	return sb.String()
}

// String renders the event for traces: "proc/name <- {msgs}".
func (e Event) String() string {
	var sb strings.Builder
	sb.WriteString(e.T.String())
	if len(e.Msgs) > 0 {
		sb.WriteString(" <- {")
		for i, m := range e.Msgs {
			if i > 0 {
				sb.WriteString(", ")
			}
			sb.WriteString(m.String())
		}
		sb.WriteByte('}')
	}
	return sb.String()
}

// Senders returns the distinct senders of the consumed messages.
func (e Event) Senders() []ProcessID { return Senders(e.Msgs) }
