package core

import (
	"errors"
	"fmt"
)

// Invariant is a state-local predicate: it returns nil when the state
// satisfies the property and a descriptive error otherwise. The searches in
// package explore evaluate the invariant on every visited state and report
// the first violating state as a counterexample (§II-A, Properties).
type Invariant func(s *State) error

// Protocol is a complete message-passing protocol model: the number of
// processes, their initial local states, the transition set T = ∪ T_i, and
// the property under verification.
type Protocol struct {
	// Name labels the protocol in results and traces.
	Name string
	// N is the number of processes; ProcessIDs range over [0, N).
	N int
	// Init builds the initial local states, one per process. It is called
	// once per search; the returned slice must have length N.
	Init func() []LocalState
	// InitialMessages seeds the bag of the initial state (rarely needed;
	// spontaneous transitions usually replace the paper's driver
	// messages).
	InitialMessages []Message
	// Transitions is the full transition set.
	Transitions []*Transition
	// Invariant is the property under verification; nil means "explore
	// only" (deadlock detection still applies).
	Invariant Invariant
	// ValidateSends makes Execute check every sent message against the
	// sending transition's Sends specifications (and reply discipline for
	// IsReply transitions). POR soundness rests on those annotations being
	// accurate, so tests enable this.
	ValidateSends bool

	finalized bool
	byProc    [][]*Transition
}

// Finalize validates the protocol and freezes transition indices. It must
// be called (directly or via InitialState) before the protocol is used by
// a search. Finalize is idempotent.
func (p *Protocol) Finalize() error {
	if p.finalized {
		return nil
	}
	if p.N <= 0 {
		return errors.New("protocol: N must be positive")
	}
	if p.Init == nil {
		return errors.New("protocol: Init is required")
	}
	if len(p.Transitions) == 0 {
		return errors.New("protocol: at least one transition is required")
	}
	names := make(map[string]bool, len(p.Transitions))
	p.byProc = make([][]*Transition, p.N)
	for i, t := range p.Transitions {
		if t == nil {
			return fmt.Errorf("protocol: transition %d is nil", i)
		}
		if err := t.validate(p.N); err != nil {
			return fmt.Errorf("protocol %s: %w", p.Name, err)
		}
		key := t.String()
		if names[key] {
			return fmt.Errorf("protocol %s: duplicate transition %s", p.Name, key)
		}
		names[key] = true
		t.idx = i
		p.byProc[t.Proc] = append(p.byProc[t.Proc], t)
	}
	for _, m := range p.InitialMessages {
		if m.To < 0 || int(m.To) >= p.N || m.From < 0 || int(m.From) >= p.N {
			return fmt.Errorf("protocol %s: initial message %s addresses process out of range", p.Name, m)
		}
	}
	p.finalized = true
	return nil
}

// InitialState builds the initial global state: per-process initial locals
// and the (usually empty) initial message bag.
func (p *Protocol) InitialState() (*State, error) {
	if err := p.Finalize(); err != nil {
		return nil, err
	}
	locals := p.Init()
	if len(locals) != p.N {
		return nil, fmt.Errorf("protocol %s: Init returned %d locals, want %d", p.Name, len(locals), p.N)
	}
	for i, l := range locals {
		if l == nil {
			return nil, fmt.Errorf("protocol %s: Init returned nil local for process %d", p.Name, i)
		}
	}
	bag := NewBag()
	for _, m := range p.InitialMessages {
		bag.Add(m)
	}
	return NewState(locals, bag), nil
}

// ByProc returns the transitions of process q. Valid after Finalize.
func (p *Protocol) ByProc(q ProcessID) []*Transition { return p.byProc[q] }

// CheckInvariant evaluates the invariant, treating nil as always true.
func (p *Protocol) CheckInvariant(s *State) error {
	if p.Invariant == nil {
		return nil
	}
	return p.Invariant(s)
}

// Clone returns a shallow copy of the protocol with a fresh, unfinalized
// transition list (the *Transition values are copied so refinement can
// rewrite names and peers without aliasing the source protocol).
func (p *Protocol) Clone() *Protocol {
	np := &Protocol{
		Name:            p.Name,
		N:               p.N,
		Init:            p.Init,
		InitialMessages: append([]Message(nil), p.InitialMessages...),
		Invariant:       p.Invariant,
		ValidateSends:   p.ValidateSends,
	}
	np.Transitions = make([]*Transition, len(p.Transitions))
	for i, t := range p.Transitions {
		tc := *t
		tc.idx = 0
		np.Transitions[i] = &tc
	}
	return np
}
