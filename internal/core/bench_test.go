package core

import (
	"strconv"
	"testing"
)

func benchBag(n int) *Bag {
	b := NewBag()
	for i := 0; i < n; i++ {
		b.Add(msg(ProcessID(i%4), ProcessID((i+1)%4), "T"+strconv.Itoa(i%3), i))
	}
	return b
}

func BenchmarkBagAddRemove(b *testing.B) {
	m := msg(0, 1, "T", 42)
	bag := benchBag(24)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		bag.Add(m)
		bag.Remove(m)
	}
}

func BenchmarkBagClone(b *testing.B) {
	bag := benchBag(24)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		_ = bag.Clone()
	}
}

func BenchmarkBagKey(b *testing.B) {
	bag := benchBag(24)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		_ = bag.Key()
	}
}

func BenchmarkStateKey(b *testing.B) {
	locals := []LocalState{
		&counterState{N: 1}, &counterState{N: 2}, &counterState{N: 3}, &counterState{N: 4},
	}
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		s := NewState(locals, benchBag(16))
		_ = s.Key()
	}
}

// BenchmarkEnabledQuorum measures the exact-quorum enumeration against
// sender counts — the cost §IV-A discusses (our combinations vs the
// original powerset).
func BenchmarkEnabledQuorum(b *testing.B) {
	for _, senders := range []int{3, 5, 7} {
		senders := senders
		b.Run("senders="+strconv.Itoa(senders), func(b *testing.B) {
			peers := make([]ProcessID, senders)
			for i := range peers {
				peers[i] = ProcessID(i)
			}
			p := &Protocol{
				Name: "bench",
				N:    senders + 1,
				Init: func() []LocalState {
					ls := make([]LocalState, senders+1)
					for i := range ls {
						ls[i] = &counterState{}
					}
					return ls
				},
				Transitions: []*Transition{{
					Name:    "COLLECT",
					Proc:    ProcessID(senders),
					MsgType: "Q",
					Quorum:  senders/2 + 1,
					Peers:   peers,
				}},
			}
			if err := p.Finalize(); err != nil {
				b.Fatal(err)
			}
			s, err := p.InitialState()
			if err != nil {
				b.Fatal(err)
			}
			bag := s.Msgs.Clone()
			for i := 0; i < senders; i++ {
				bag.Add(msg(ProcessID(i), ProcessID(senders), "Q", i))
			}
			s = NewState(s.Locals, bag)
			b.ResetTimer()
			for i := 0; i < b.N; i++ {
				_ = p.Enabled(s)
			}
		})
	}
}

func BenchmarkExecute(b *testing.B) {
	p := quorumBenchProtocol(b)
	s, err := p.InitialState()
	if err != nil {
		b.Fatal(err)
	}
	bag := s.Msgs.Clone()
	bag.Add(msg(0, 3, "Q", 1))
	bag.Add(msg(1, 3, "Q", 2))
	s = NewState(s.Locals, bag)
	events := p.Enabled(s)
	if len(events) == 0 {
		b.Fatal("no events")
	}
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := p.Execute(s, events[0]); err != nil {
			b.Fatal(err)
		}
	}
}

func quorumBenchProtocol(b *testing.B) *Protocol {
	b.Helper()
	p := &Protocol{
		Name: "exec-bench",
		N:    4,
		Init: func() []LocalState {
			return []LocalState{&counterState{}, &counterState{}, &counterState{}, &counterState{}}
		},
		Transitions: []*Transition{{
			Name:    "COLLECT",
			Proc:    3,
			MsgType: "Q",
			Quorum:  2,
			Peers:   []ProcessID{0, 1, 2},
			Apply: func(c *Ctx) {
				c.Local.(*counterState).N++
			},
		}},
	}
	if err := p.Finalize(); err != nil {
		b.Fatal(err)
	}
	return p
}
