package core

import (
	"fmt"
	"testing"
)

func anyQuorumProtocol(t *testing.T, guard Guard) *Protocol {
	t.Helper()
	p := &Protocol{
		Name: "anyquorum",
		N:    4,
		Init: func() []LocalState {
			return []LocalState{&counterState{}, &counterState{}, &counterState{}, &counterState{}}
		},
		Transitions: []*Transition{{
			Name:    "ANY",
			Proc:    3,
			MsgType: "Q",
			Quorum:  AnyQuorum,
			Peers:   []ProcessID{0, 1, 2},
			Guard:   guard,
			Apply: func(c *Ctx) {
				c.Local.(*counterState).N += len(c.Msgs)
			},
		}},
	}
	if err := p.Finalize(); err != nil {
		t.Fatal(err)
	}
	return p
}

func TestAnyQuorumEnumeratesPowerset(t *testing.T) {
	p := anyQuorumProtocol(t, nil)
	s := stateWithMsgs(p, t, msg(0, 3, "Q", 1), msg(1, 3, "Q", 2), msg(2, 3, "Q", 3))
	events := p.Enabled(s)
	// 2^3 - 1 non-empty subsets — the paper's §IV-A example: "these are
	// 2^3 sets compared to only three messages".
	if len(events) != 7 {
		t.Fatalf("got %d events, want 7", len(events))
	}
	sizes := map[int]int{}
	for _, ev := range events {
		sizes[len(ev.Msgs)]++
	}
	if sizes[1] != 3 || sizes[2] != 3 || sizes[3] != 1 {
		t.Fatalf("subset size histogram wrong: %v", sizes)
	}
}

func TestAnyQuorumGuardFilters(t *testing.T) {
	// Guard accepts only exact pairs from distinct senders — the subset
	// semantics then coincides with an exact quorum of 2.
	guard := func(_ LocalState, msgs []Message) bool {
		return len(msgs) == 2 && len(Senders(msgs)) == 2
	}
	pAny := anyQuorumProtocol(t, guard)
	sAny := stateWithMsgs(pAny, t, msg(0, 3, "Q", 1), msg(1, 3, "Q", 2), msg(2, 3, "Q", 3))
	anyEvents := pAny.Enabled(sAny)

	pExact := quorumTestProtocol(t, 2, nil)
	sExact := stateWithMsgs(pExact, t, msg(0, 3, "Q", 1), msg(1, 3, "Q", 2), msg(2, 3, "Q", 3))
	exactEvents := pExact.Enabled(sExact)

	if len(anyEvents) != len(exactEvents) {
		t.Fatalf("AnyQuorum+guard (%d events) should coincide with exact quorum (%d events)",
			len(anyEvents), len(exactEvents))
	}
	seen := map[string]bool{}
	for _, ev := range anyEvents {
		seen[fmt.Sprint(ev.Senders())] = true
	}
	for _, ev := range exactEvents {
		if !seen[fmt.Sprint(ev.Senders())] {
			t.Fatalf("sender combination %v missing from AnyQuorum enumeration", ev.Senders())
		}
	}
}

func TestAnyQuorumMultipleMessagesPerSender(t *testing.T) {
	p := anyQuorumProtocol(t, nil)
	// Two distinct payloads from one sender: subsets may take both.
	s := stateWithMsgs(p, t, msg(0, 3, "Q", 1), msg(0, 3, "Q", 2))
	events := p.Enabled(s)
	if len(events) != 3 { // {m1}, {m2}, {m1,m2}
		t.Fatalf("got %d events, want 3", len(events))
	}
	both := false
	for _, ev := range events {
		if len(ev.Msgs) == 2 {
			both = true
			if got := len(ev.Senders()); got != 1 {
				t.Fatalf("two-message subset has %d senders, want 1", got)
			}
		}
	}
	if !both {
		t.Fatal("subset with both messages missing")
	}
}

func TestAnyQuorumExecution(t *testing.T) {
	p := anyQuorumProtocol(t, nil)
	s := stateWithMsgs(p, t, msg(0, 3, "Q", 1), msg(1, 3, "Q", 2))
	var full Event
	for _, ev := range p.Enabled(s) {
		if len(ev.Msgs) == 2 {
			full = ev
		}
	}
	ns, err := p.Execute(s, full)
	if err != nil {
		t.Fatal(err)
	}
	if ns.Msgs.Len() != 0 || ns.Local(3).(*counterState).N != 2 {
		t.Fatalf("subset execution wrong: msgs=%d n=%d", ns.Msgs.Len(), ns.Local(3).(*counterState).N)
	}
}

func TestAnyQuorumPendingCap(t *testing.T) {
	p := anyQuorumProtocol(t, nil)
	msgs := make([]Message, 0, maxAnyQuorumPending+1)
	for i := 0; i <= maxAnyQuorumPending; i++ {
		msgs = append(msgs, msg(ProcessID(i%3), 3, "Q", i))
	}
	s := stateWithMsgs(p, t, msgs...)
	defer func() {
		if recover() == nil {
			t.Fatal("expected panic above the AnyQuorum pending cap")
		}
	}()
	p.Enabled(s)
}

func TestAnyQuorumStructurallyEnabled(t *testing.T) {
	p := anyQuorumProtocol(t, nil)
	tr := p.Transitions[0]
	s0, err := p.InitialState()
	if err != nil {
		t.Fatal(err)
	}
	if p.StructurallyEnabled(tr, s0) {
		t.Fatal("no candidates: must be structurally disabled")
	}
	s := stateWithMsgs(p, t, msg(0, 3, "Q", 1))
	if !p.StructurallyEnabled(tr, s) {
		t.Fatal("one candidate should structurally enable an AnyQuorum transition")
	}
}

func TestAnyQuorumValidation(t *testing.T) {
	p := anyQuorumProtocol(t, nil)
	p.Transitions[0].Quorum = -7
	p2 := p.Clone()
	if err := p2.Finalize(); err == nil {
		t.Fatal("arbitrary negative quorum accepted")
	}
}
