package core

import (
	"sort"
	"strconv"
	"strings"
)

// ProcessID identifies a process of the system. Processes are numbered
// 0..N-1 within a Protocol.
type ProcessID int

// String returns the decimal representation of the ID.
func (p ProcessID) String() string { return strconv.Itoa(int(p)) }

// Payload is the immutable content of a message beyond its addressing
// envelope. Implementations must be treated as values: once a message is
// sent, its payload must never be mutated.
type Payload interface {
	// Key returns a canonical, collision-free encoding of the payload.
	// Two payloads are considered equal iff their keys are equal.
	Key() string
}

// NoPayload is the payload of messages that carry no content (pure
// signals).
type NoPayload struct{}

// Key implements Payload.
func (NoPayload) Key() string { return "" }

// Message is a message in transit from one process to another. The paper's
// channel c_{i,j} is recovered from the From/To fields, so a single global
// bag of messages represents all channels.
type Message struct {
	From    ProcessID
	To      ProcessID
	Type    string
	Payload Payload
}

// Key returns the canonical encoding of the message. Messages are equal iff
// their keys are equal.
func (m Message) Key() string {
	var sb strings.Builder
	sb.Grow(16 + len(m.Type))
	m.appendKey(&sb)
	return sb.String()
}

func (m Message) appendKey(sb *strings.Builder) {
	sb.WriteString(strconv.Itoa(int(m.From)))
	sb.WriteByte('>')
	sb.WriteString(strconv.Itoa(int(m.To)))
	sb.WriteByte(':')
	sb.WriteString(m.Type)
	if m.Payload != nil {
		if k := m.Payload.Key(); k != "" {
			sb.WriteByte('{')
			sb.WriteString(k)
			sb.WriteByte('}')
		}
	}
}

// String returns a human-readable rendering of the message.
func (m Message) String() string { return m.Key() }

// SortMessages orders msgs by canonical key, in place. Transitions receive
// their consumed message sets in this order; per the MP semantics the order
// carries no meaning, but a deterministic order keeps searches reproducible.
func SortMessages(msgs []Message) {
	sort.Slice(msgs, func(i, j int) bool { return msgs[i].Key() < msgs[j].Key() })
}

// Senders returns the set of distinct senders of msgs, ascending.
func Senders(msgs []Message) []ProcessID {
	seen := make(map[ProcessID]bool, len(msgs))
	var out []ProcessID
	for _, m := range msgs {
		if !seen[m.From] {
			seen[m.From] = true
			out = append(out, m.From)
		}
	}
	sort.Slice(out, func(i, j int) bool { return out[i] < out[j] })
	return out
}
