package core

import "fmt"

// Ctx is the execution context handed to a transition's Apply: the private
// clone of the executing process's local state, the consumed messages, and
// the send primitive.
type Ctx struct {
	// Self is the executing process.
	Self ProcessID
	// Local is a private clone of Self's local state; Apply mutates it
	// freely (typically after a type assertion to the concrete type).
	Local LocalState
	// Msgs is the consumed message set, sorted by canonical key. The order
	// carries no meaning (MP semantics); treat it as a set.
	Msgs []Message

	view  GlobalView
	reads []ProcessID
	sends []Message
}

// Senders returns the distinct senders of the consumed message set.
func (c *Ctx) Senders() []ProcessID { return Senders(c.Msgs) }

// Send enqueues a message from Self to the given recipient. Messages become
// visible in the successor state only.
func (c *Ctx) Send(to ProcessID, typ string, p Payload) {
	c.sends = append(c.sends, Message{From: c.Self, To: to, Type: typ, Payload: p})
}

// Global returns the pre-state local state of process p, read-only. It
// panics unless the executing transition declared p in GlobalReads: global
// reads break process isolation and must be visible to the POR analysis.
func (c *Ctx) Global(p ProcessID) LocalState {
	for _, q := range c.reads {
		if q == p {
			return c.view.Local(p)
		}
	}
	panic(fmt.Sprintf("core: transition of process %d reads process %d without declaring it in GlobalReads", c.Self, p))
}

// Execute applies event e to state s and returns the successor state
// (§II-A semantics): the consumed messages are removed, the local state of
// the executing process is replaced by the result of the transition body,
// and the sent messages are added. s is not mutated; unaffected local
// states are structurally shared.
func (p *Protocol) Execute(s *State, e Event) (*State, error) {
	t := e.T
	bag := s.Msgs.Clone()
	for _, m := range e.Msgs {
		if !bag.Remove(m) {
			return nil, fmt.Errorf("execute %s: message %s not pending", e, m)
		}
	}
	locals := make([]LocalState, len(s.Locals))
	copy(locals, s.Locals)
	ctx := &Ctx{
		Self:  t.Proc,
		Local: s.Locals[t.Proc].Clone(),
		Msgs:  e.Msgs,
		view:  GlobalView{locals: s.Locals},
		reads: t.GlobalReads,
	}
	if t.Apply != nil {
		t.Apply(ctx)
	}
	if p.ValidateSends && t.ReadOnly && ctx.Local.Key() != s.Locals[t.Proc].Key() {
		return nil, fmt.Errorf("transition %s is marked ReadOnly but changed the local state", t)
	}
	locals[t.Proc] = ctx.Local
	for _, m := range ctx.sends {
		if m.To < 0 || int(m.To) >= p.N {
			return nil, fmt.Errorf("execute %s: send to process %d out of range", e, m.To)
		}
		if p.ValidateSends {
			if err := validateSend(t, m, e.Msgs); err != nil {
				return nil, err
			}
		}
		bag.Add(m)
	}
	ns := NewState(locals, bag)
	if p.ValidateSends {
		if err := p.validateUniqueness(ns); err != nil {
			return nil, err
		}
	}
	return ns, nil
}

// validateUniqueness checks the UniquePerSender claims of all transitions
// against a reached state (debug mode): the static POR relies on them.
func (p *Protocol) validateUniqueness(s *State) error {
	for _, t := range p.Transitions {
		if !t.UniquePerSender {
			continue
		}
		// Iterate the sorted sender list, not the map: with two offending
		// senders the error reported must not depend on iteration order.
		senders, bySender := s.Msgs.MatchingBySender(t.Proc, t.MsgType, t.Peers)
		for _, q := range senders {
			if msgs := bySender[q]; len(msgs) > 1 {
				return fmt.Errorf("transition %s is marked UniquePerSender but sender %d has %d pending candidates in a reachable state", t, q, len(msgs))
			}
		}
	}
	return nil
}

// validateSend checks that a sent message is covered by the transition's
// static send specifications, and that reply transitions only send back to
// senders of the consumed set (Definition 4).
func validateSend(t *Transition, m Message, consumed []Message) error {
	isSender := func(q ProcessID) bool {
		for _, c := range consumed {
			if c.From == q {
				return true
			}
		}
		return false
	}
	if t.IsReply && !isSender(m.To) {
		return fmt.Errorf("transition %s is marked IsReply but sends %s to a non-sender", t, m)
	}
	for _, spec := range t.Sends {
		if spec.Type != m.Type {
			continue
		}
		if spec.ToSenders && !isSender(m.To) {
			continue
		}
		if spec.To != nil {
			found := false
			for _, q := range spec.To {
				if q == m.To {
					found = true
					break
				}
			}
			if !found {
				continue
			}
		}
		return nil
	}
	return fmt.Errorf("transition %s sends %s, which matches none of its Sends specifications", t, m)
}
