package core

import (
	"fmt"
	"testing"
)

// quorumTestProtocol builds a 4-process protocol where process 3 runs one
// quorum transition consuming type "Q" from peers {0,1,2} with the given
// quorum size; processes 0-2 have a dummy spontaneous transition that is
// never enabled (protocols need at least one transition per rule, and we
// drive the bag by hand).
func quorumTestProtocol(t *testing.T, quorum int, guard Guard) *Protocol {
	t.Helper()
	p := &Protocol{
		Name: fmt.Sprintf("quorumtest-%d", quorum),
		N:    4,
		Init: func() []LocalState {
			return []LocalState{&counterState{}, &counterState{}, &counterState{}, &counterState{}}
		},
		Transitions: []*Transition{
			{
				Name:    "COLLECT",
				Proc:    3,
				MsgType: "Q",
				Quorum:  quorum,
				Peers:   []ProcessID{0, 1, 2},
				Guard:   guard,
				Apply: func(c *Ctx) {
					c.Local.(*counterState).N++
				},
			},
		},
	}
	if err := p.Finalize(); err != nil {
		t.Fatal(err)
	}
	return p
}

func stateWithMsgs(p *Protocol, t *testing.T, msgs ...Message) *State {
	t.Helper()
	s, err := p.InitialState()
	if err != nil {
		t.Fatal(err)
	}
	bag := s.Msgs.Clone()
	for _, m := range msgs {
		bag.Add(m)
	}
	return NewState(s.Locals, bag)
}

func TestEnabledQuorumCombinations(t *testing.T) {
	// 3 senders, quorum 2 -> C(3,2) = 3 events.
	p := quorumTestProtocol(t, 2, nil)
	s := stateWithMsgs(p, t, msg(0, 3, "Q", 0), msg(1, 3, "Q", 0), msg(2, 3, "Q", 0))
	events := p.Enabled(s)
	if len(events) != 3 {
		t.Fatalf("got %d events, want 3 (C(3,2))", len(events))
	}
	seen := map[string]bool{}
	for _, ev := range events {
		if len(ev.Msgs) != 2 {
			t.Fatalf("event consumes %d messages, want 2", len(ev.Msgs))
		}
		snd := ev.Senders()
		if len(snd) != 2 {
			t.Fatalf("event has %d distinct senders, want 2", len(snd))
		}
		seen[fmt.Sprint(snd)] = true
	}
	if len(seen) != 3 {
		t.Fatalf("sender combinations not distinct: %v", seen)
	}
}

func TestEnabledQuorumInsufficientSenders(t *testing.T) {
	p := quorumTestProtocol(t, 2, nil)
	s := stateWithMsgs(p, t, msg(0, 3, "Q", 0), msg(0, 3, "Q", 1))
	// Two messages but a single sender: quorum of 2 distinct senders unmet.
	if events := p.Enabled(s); len(events) != 0 {
		t.Fatalf("got %d events, want 0", len(events))
	}
}

func TestEnabledPerSenderAlternatives(t *testing.T) {
	// Sender 0 has two distinct payloads; sender 1 one: quorum 2 over
	// {0,1} yields 2 alternative events.
	p := quorumTestProtocol(t, 2, nil)
	s := stateWithMsgs(p, t, msg(0, 3, "Q", 1), msg(0, 3, "Q", 2), msg(1, 3, "Q", 0))
	if events := p.Enabled(s); len(events) != 2 {
		t.Fatalf("got %d events, want 2 alternatives", len(events))
	}
}

func TestEnabledGuardFilters(t *testing.T) {
	// Guard admits only message sets whose payloads are all equal.
	guard := func(_ LocalState, msgs []Message) bool {
		for _, m := range msgs[1:] {
			if m.Payload.Key() != msgs[0].Payload.Key() {
				return false
			}
		}
		return true
	}
	p := quorumTestProtocol(t, 2, guard)
	s := stateWithMsgs(p, t,
		msg(0, 3, "Q", 1), msg(1, 3, "Q", 1), msg(2, 3, "Q", 2))
	events := p.Enabled(s)
	if len(events) != 1 {
		t.Fatalf("got %d events, want 1 (only senders 0,1 agree)", len(events))
	}
	if got := fmt.Sprint(events[0].Senders()); got != "[0 1]" {
		t.Fatalf("wrong quorum chosen: %s", got)
	}
}

func TestEnabledPeerRestriction(t *testing.T) {
	p := quorumTestProtocol(t, 2, nil)
	// Sender 3 is not a peer (and also the executing process itself).
	s := stateWithMsgs(p, t, msg(0, 3, "Q", 0), msg(3, 3, "Q", 0))
	if events := p.Enabled(s); len(events) != 0 {
		t.Fatalf("got %d events, want 0 (non-peer sender must not count)", len(events))
	}
}

func TestEnabledLocalGuardShortCircuit(t *testing.T) {
	p := quorumTestProtocol(t, 1, nil)
	p.Transitions[0].LocalGuard = func(ls LocalState) bool {
		return ls.(*counterState).N == 0
	}
	s := stateWithMsgs(p, t, msg(0, 3, "Q", 0))
	if len(p.Enabled(s)) != 1 {
		t.Fatal("transition should be enabled initially")
	}
	ns, err := p.Execute(s, p.Enabled(s)[0])
	if err != nil {
		t.Fatal(err)
	}
	// After one execution N=1, the local guard disables the transition
	// even if messages are pending.
	ns2 := NewState(ns.Locals, func() *Bag { b := ns.Msgs.Clone(); b.Add(msg(1, 3, "Q", 0)); return b }())
	if len(p.Enabled(ns2)) != 0 {
		t.Fatal("local guard should disable the transition")
	}
}

func TestStructurallyEnabledAndMissingSenders(t *testing.T) {
	p := quorumTestProtocol(t, 2, nil)
	tr := p.Transitions[0]
	s := stateWithMsgs(p, t, msg(1, 3, "Q", 0))
	if p.StructurallyEnabled(tr, s) {
		t.Fatal("one sender should not satisfy quorum 2")
	}
	missing := p.MissingSenders(tr, s)
	if got := fmt.Sprint(missing); got != "[0 2]" {
		t.Fatalf("missing senders = %s, want [0 2]", got)
	}
	s2 := stateWithMsgs(p, t, msg(1, 3, "Q", 0), msg(2, 3, "Q", 0))
	if !p.StructurallyEnabled(tr, s2) {
		t.Fatal("two senders should satisfy quorum 2")
	}
}

func TestPowersetSize(t *testing.T) {
	if PowersetSize(3) != 8 || PowersetSize(0) != 1 {
		t.Fatal("PowersetSize wrong on small inputs")
	}
	if PowersetSize(100) <= 0 {
		t.Fatal("PowersetSize must saturate, not overflow")
	}
}
