package core

import (
	"math/rand"
	"reflect"
	"strconv"
	"testing"
	"testing/quick"
)

type intPayload struct{ V int }

func (p intPayload) Key() string { return strconv.Itoa(p.V) }

func msg(from, to ProcessID, typ string, v int) Message {
	return Message{From: from, To: to, Type: typ, Payload: intPayload{V: v}}
}

func TestBagAddRemove(t *testing.T) {
	b := NewBag()
	m1 := msg(0, 1, "A", 7)
	if b.Len() != 0 || b.Distinct() != 0 {
		t.Fatalf("new bag not empty: len=%d distinct=%d", b.Len(), b.Distinct())
	}
	b.Add(m1)
	b.Add(m1)
	if b.Len() != 2 || b.Distinct() != 1 || b.Count(m1) != 2 {
		t.Fatalf("after two adds: len=%d distinct=%d count=%d", b.Len(), b.Distinct(), b.Count(m1))
	}
	if !b.Remove(m1) {
		t.Fatal("remove of present message reported absent")
	}
	if b.Len() != 1 || b.Count(m1) != 1 {
		t.Fatalf("after remove: len=%d count=%d", b.Len(), b.Count(m1))
	}
	if !b.Remove(m1) || b.Len() != 0 || b.Distinct() != 0 {
		t.Fatal("bag not empty after removing both copies")
	}
	if b.Remove(m1) {
		t.Fatal("remove of absent message reported present")
	}
}

func TestBagCloneIndependence(t *testing.T) {
	b := NewBag()
	m1, m2 := msg(0, 1, "A", 1), msg(1, 0, "B", 2)
	b.Add(m1)
	c := b.Clone()
	c.Add(m2)
	c.Remove(m1)
	if b.Count(m1) != 1 || b.Count(m2) != 0 {
		t.Fatalf("mutating clone affected original: %s", b.Key())
	}
	if c.Count(m1) != 0 || c.Count(m2) != 1 {
		t.Fatalf("clone state wrong: %s", c.Key())
	}
}

func TestBagKeyDeterministicUnderPermutation(t *testing.T) {
	// Property: inserting the same multiset in any order yields the same
	// canonical key.
	f := func(seed int64, n uint8) bool {
		rng := rand.New(rand.NewSource(seed))
		msgs := make([]Message, 0, int(n%12)+2)
		for i := 0; i < cap(msgs); i++ {
			msgs = append(msgs, msg(ProcessID(rng.Intn(3)), ProcessID(rng.Intn(3)),
				string(rune('A'+rng.Intn(3))), rng.Intn(4)))
		}
		b1 := NewBag()
		for _, m := range msgs {
			b1.Add(m)
		}
		b2 := NewBag()
		for _, i := range rng.Perm(len(msgs)) {
			b2.Add(msgs[i])
		}
		return b1.Key() == b2.Key()
	}
	if err := quick.Check(f, nil); err != nil {
		t.Fatal(err)
	}
}

func TestBagMatchingBySender(t *testing.T) {
	b := NewBag()
	b.Add(msg(0, 5, "X", 1))
	b.Add(msg(1, 5, "X", 2))
	b.Add(msg(1, 5, "X", 3)) // second distinct candidate from sender 1
	b.Add(msg(2, 5, "X", 4))
	b.Add(msg(1, 5, "Y", 9)) // wrong type
	b.Add(msg(1, 6, "X", 9)) // wrong recipient

	senders, bySender := b.MatchingBySender(5, "X", nil)
	if want := []ProcessID{0, 1, 2}; !reflect.DeepEqual(senders, want) {
		t.Fatalf("senders = %v, want %v", senders, want)
	}
	if len(bySender[1]) != 2 {
		t.Fatalf("sender 1 candidates = %d, want 2", len(bySender[1]))
	}
	// Peer restriction.
	senders, _ = b.MatchingBySender(5, "X", []ProcessID{1, 2})
	if want := []ProcessID{1, 2}; !reflect.DeepEqual(senders, want) {
		t.Fatalf("peer-restricted senders = %v, want %v", senders, want)
	}
	if !b.HasMatching(5, "X", nil) || b.HasMatching(7, "X", nil) {
		t.Fatal("HasMatching wrong")
	}
}

func TestBagMultiplicityInKey(t *testing.T) {
	b1, b2 := NewBag(), NewBag()
	m := msg(0, 1, "A", 1)
	b1.Add(m)
	b2.Add(m)
	b2.Add(m)
	if b1.Key() == b2.Key() {
		t.Fatal("multiplicity not reflected in canonical key")
	}
}

func TestSenders(t *testing.T) {
	msgs := []Message{msg(2, 0, "A", 1), msg(1, 0, "A", 2), msg(2, 0, "A", 3)}
	if got, want := Senders(msgs), []ProcessID{1, 2}; !reflect.DeepEqual(got, want) {
		t.Fatalf("Senders = %v, want %v", got, want)
	}
	if got := Senders(nil); len(got) != 0 {
		t.Fatalf("Senders(nil) = %v", got)
	}
}
