package core

import (
	"strconv"
	"strings"
	"testing"
)

// counterState is a minimal LocalState for tests.
type counterState struct {
	N    int
	Tags []string
}

func (s *counterState) Key() string {
	return "c" + strconv.Itoa(s.N) + "[" + strings.Join(s.Tags, ",") + "]"
}

func (s *counterState) Clone() LocalState {
	c := &counterState{N: s.N, Tags: append([]string(nil), s.Tags...)}
	return c
}

func TestStateKeyComposition(t *testing.T) {
	bag := NewBag()
	bag.Add(msg(0, 1, "A", 1))
	s := NewState([]LocalState{&counterState{N: 1}, &counterState{N: 2}}, bag)
	k := s.Key()
	if !strings.Contains(k, "c1") || !strings.Contains(k, "c2") || !strings.Contains(k, "0>1:A") {
		t.Fatalf("state key %q misses components", k)
	}
	// Key is cached and stable.
	if s.Key() != k {
		t.Fatal("state key not stable")
	}
}

func TestStateKeyDistinguishesLocalOrder(t *testing.T) {
	s1 := NewState([]LocalState{&counterState{N: 1}, &counterState{N: 2}}, NewBag())
	s2 := NewState([]LocalState{&counterState{N: 2}, &counterState{N: 1}}, NewBag())
	if s1.Key() == s2.Key() {
		t.Fatal("states with swapped locals share a key")
	}
}

func TestNewStateNilBag(t *testing.T) {
	s := NewState([]LocalState{&counterState{}}, nil)
	if s.Msgs == nil || s.Msgs.Len() != 0 {
		t.Fatal("nil bag not replaced by empty bag")
	}
}

func TestLocalAccess(t *testing.T) {
	s := NewState([]LocalState{&counterState{N: 7}, &counterState{N: 9}}, nil)
	if s.Local(1).(*counterState).N != 9 {
		t.Fatal("Local returned wrong process state")
	}
}
