package core

import (
	"fmt"
	"sort"
)

// AnyQuorum, used as a Transition.Quorum value, selects unrestricted
// subset consumption: every non-empty guard-accepted subset of matching
// pending messages is a separate event. This is the paper's original
// MP-Basset enumeration (§IV-A), exponential in the number of pending
// messages — the cost the exact-quorum specialization avoids.
const AnyQuorum = -1

// maxAnyQuorumPending bounds the powerset enumeration: an AnyQuorum
// transition facing more pending candidates than this indicates a modeling
// error (unbounded message accumulation), and enumeration panics with a
// diagnostic rather than silently exploding.
const maxAnyQuorumPending = 20

// Enabled enumerates every executable event of state s: every pair (t, X)
// such that X consists of exactly t.Quorum messages of t's type from
// t.Quorum distinct allowed senders and t's guard holds (§II-A). Events
// are returned in deterministic order (transition index, then message
// keys).
//
// This is the exact-quorum specialization of MP-Basset's "enabled set of
// messages" computation (§IV-A): instead of enumerating the full powerset
// of pending messages, only sender combinations of the declared quorum size
// are generated. PowersetSize quantifies the cost the paper's unrestricted
// enumeration would pay.
func (p *Protocol) Enabled(s *State) []Event {
	var out []Event
	for _, t := range p.Transitions {
		out = appendEventsFor(out, t, s)
	}
	return out
}

// EnabledFor enumerates the executable events of a single transition.
func (p *Protocol) EnabledFor(t *Transition, s *State) []Event {
	return appendEventsFor(nil, t, s)
}

func appendEventsFor(out []Event, t *Transition, s *State) []Event {
	if t.Spontaneous() {
		if t.guardOK(s.Locals[t.Proc], nil) {
			out = append(out, Event{T: t})
		}
		return out
	}
	if !t.LocalGuardOK(s.Locals[t.Proc]) {
		return out
	}
	senders, bySender := s.Msgs.MatchingBySender(t.Proc, t.MsgType, t.Peers)
	local := s.Locals[t.Proc]
	if t.Quorum == AnyQuorum {
		return appendSubsetEvents(out, t, local, senders, bySender)
	}
	if len(senders) < t.Quorum {
		return out
	}
	// Enumerate every size-q combination of senders; within a combination
	// every per-sender alternative (distinct payloads from the same sender
	// are alternative choices, §II-A non-determinism).
	combo := make([]ProcessID, t.Quorum)
	var rec func(start, depth int)
	pick := make([]Message, t.Quorum)
	var cartesian func(d int)
	cartesian = func(d int) {
		if d == t.Quorum {
			x := make([]Message, t.Quorum)
			copy(x, pick)
			SortMessages(x)
			if t.guardOK(local, x) {
				out = append(out, Event{T: t, Msgs: x})
			}
			return
		}
		for _, m := range bySender[combo[d]] {
			pick[d] = m
			cartesian(d + 1)
		}
	}
	rec = func(start, depth int) {
		if depth == t.Quorum {
			cartesian(0)
			return
		}
		for i := start; i <= len(senders)-(t.Quorum-depth); i++ {
			combo[depth] = senders[i]
			rec(i+1, depth+1)
		}
	}
	rec(0, 0)
	return out
}

// appendSubsetEvents enumerates every non-empty subset of the matching
// pending messages (AnyQuorum semantics). All messages across senders are
// flattened; subsets are generated in deterministic bitmask order.
func appendSubsetEvents(out []Event, t *Transition, local LocalState, senders []ProcessID, bySender map[ProcessID][]Message) []Event {
	var all []Message
	for _, q := range senders {
		all = append(all, bySender[q]...)
	}
	if len(all) == 0 {
		return out
	}
	if len(all) > maxAnyQuorumPending {
		panic(fmt.Sprintf("core: AnyQuorum transition %s faces %d pending messages (cap %d); bound the model",
			t, len(all), maxAnyQuorumPending))
	}
	SortMessages(all)
	for mask := 1; mask < 1<<len(all); mask++ {
		x := make([]Message, 0, len(all))
		for i := range all {
			if mask&(1<<i) != 0 {
				x = append(x, all[i])
			}
		}
		if t.guardOK(local, x) {
			out = append(out, Event{T: t, Msgs: x})
		}
	}
	return out
}

// StructurallyEnabled reports whether t has at least the quorum of distinct
// allowed senders with pending messages in s, ignoring the guard. Package
// por uses the distinction to pick necessary enabling sets. AnyQuorum
// transitions are structurally enabled once a single candidate is pending.
func (p *Protocol) StructurallyEnabled(t *Transition, s *State) bool {
	if t.Spontaneous() {
		return true
	}
	senders, _ := s.Msgs.MatchingBySender(t.Proc, t.MsgType, t.Peers)
	if t.Quorum == AnyQuorum {
		return len(senders) > 0
	}
	return len(senders) >= t.Quorum
}

// MissingSenders returns the allowed peers of t that currently have no
// pending candidate message, when t is structurally disabled in s. For
// transitions with nil Peers it returns nil (any process could supply the
// missing messages). Package por's NET optimization narrows necessary
// enabling transitions to feeders executed by missing senders.
func (p *Protocol) MissingSenders(t *Transition, s *State) []ProcessID {
	if t.Peers == nil {
		return nil
	}
	senders, _ := s.Msgs.MatchingBySender(t.Proc, t.MsgType, t.Peers)
	have := make(map[ProcessID]bool, len(senders))
	for _, q := range senders {
		have[q] = true
	}
	var missing []ProcessID
	for _, q := range t.Peers {
		if !have[q] {
			missing = append(missing, q)
		}
	}
	sort.Slice(missing, func(i, j int) bool { return missing[i] < missing[j] })
	return missing
}

// PowersetSize returns 2^k capped at maxInt, the number of message subsets
// MP-Basset's unrestricted quorum enumeration inspects for k pending
// messages (§IV-A: "these are 2^3 sets compared to only three messages").
// It exists for the evaluation harness's cost analysis.
func PowersetSize(k int) int {
	if k >= 62 {
		return int(^uint(0) >> 1)
	}
	return 1 << k
}
