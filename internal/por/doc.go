// Package por implements the static partial-order reduction of the paper's
// MP-Basset checker (the MP-LPOR algorithm, §III-A/§IV): stubborn sets
// computed per state from a seed transition, over a *precomputed,
// state-independent* dependence relation specialized to the message-passing
// model, with the necessary-enabling-transitions (NET) optimization that
// narrows enabling candidates to the senders a disabled transition is still
// missing.
//
// Dependence in the MP model (the relation MP-LPOR precomputes):
//
//   - transitions of the same process are dependent (they share the local
//     state and compete for the process's incoming messages);
//   - t is dependent on u if t may send a message u may consume, taking
//     static send specifications, peer restrictions and reply discipline
//     into account — this is where transition refinement (package refine)
//     pays off: split transitions declare narrower peers/recipients, so
//     fewer pairs are dependent and "can-enable" edges become sparser
//     (§III-C/D);
//   - sends into channels commute, so transitions of different processes
//     that only send are independent;
//   - transitions reading other processes' states (GlobalReads) are
//     dependent on every transition of those processes.
//
// The expander implements the ample-set provisos: C2 (a reduced ample set
// must contain no property-visible transition) here, and C3 (the ignoring
// proviso) in cooperation with the engines of package explore. C3 demands
// that deferred events cannot be ignored forever around a cycle, and each
// engine discharges it with the discipline matching its search order: the
// DFS engines (DFS, and ParallelDFS through its sequential commit walk)
// promote a reduced expansion to a full one when some successor is on the
// search stack (the classic stack/cycle proviso), while BFS and
// ParallelBFS promote when every successor of a reduced expansion was
// already visited before the expanded node's level began (the queue
// proviso — if nothing new is enqueued, the deferred events would never be
// retried). Both disciplines make the reduction sound on cyclic state
// graphs; promoted expansions are reported in Stats.ProvisoExpansions.
//
// The same two conditions carry the reduction from safety to liveness
// checking: liveness.Instrument marks every transition the property reads
// as Visible (so C2 keeps it out of reduced ample sets), and the stack
// proviso is exactly the cycle condition the nested-DFS engines need —
// a reduced expansion never hides an accepting cycle from explore.NDFS,
// as the differential tests against the Büchi-product oracle pin down.
//
// In the store matrix (see package explore's doc), static reduction is
// store-agnostic: the expander only narrows which events an engine
// executes, never how states are keyed or remembered, so SPOR composes
// with every store tier — including the lossy bitstate tier, where the
// reduction shrinks the state space before the bit array ever sees it —
// and with both Canon users (symmetry, collapse compression).
package por
