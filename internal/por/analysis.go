package por

import (
	"sort"

	"mpbasset/internal/core"
)

// Analysis holds the precomputed, state-independent relations over a
// protocol's transitions, mirroring MP-LPOR's pre-computation of
// unconditional (in)dependence outside the modeled program (§IV-B):
//
//   - enabledDeps[t]: the transitions that must accompany an *enabled*
//     member t of a stubborn set — t's own process (they can disable t or
//     conflict on t's messages and local state), t's feeders (they grow
//     t's set of executable events, so reordering them past t loses
//     quorum choices), and global-read couplings;
//   - feeders[t], grouped by the feeding process, used for
//     necessary-enabling sets (NET) of disabled members;
//   - the symmetric dependence relation used by dynamic POR's race
//     detection.
type Analysis struct {
	p *core.Protocol
	// conflicts[t]: same-process conflicting transitions plus global-read
	// couplings — the state-independent part of an enabled member's
	// dependence set. Two ReadOnly transitions of one process that cannot
	// contend for the same messages are *not* conflicting (the paper's
	// isWrite annotation at work).
	conflicts [][]int
	feeders   []map[core.ProcessID][]int
	// writers[t]: same-process transitions that may change the local
	// state — the only ones that can flip a local guard.
	writers [][]int
	symDep  [][]bool
}

// NewAnalysis precomputes the relations for p.
func NewAnalysis(p *core.Protocol) (*Analysis, error) {
	if err := p.Finalize(); err != nil {
		return nil, err
	}
	ts := p.Transitions
	n := len(ts)
	a := &Analysis{
		p:         p,
		conflicts: make([][]int, n),
		feeders:   make([]map[core.ProcessID][]int, n),
		writers:   make([][]int, n),
		symDep:    make([][]bool, n),
	}
	for i := range ts {
		a.feeders[i] = make(map[core.ProcessID][]int)
		a.symDep[i] = make([]bool, n)
		a.symDep[i][i] = true
	}
	for i, ti := range ts {
		for j, tj := range ts {
			if i == j {
				continue
			}
			same := ti.Proc == tj.Proc
			conflict := same && sameProcConflict(ti, tj)
			feedsJI := canFeed(tj, ti) // tj may supply messages ti consumes
			// Global-read couplings: a reader is affected only by
			// transitions that can change the state it reads.
			reads := (readsProcess(ti, tj.Proc) && !tj.ReadOnly) ||
				(readsProcess(tj, ti.Proc) && !ti.ReadOnly)
			if same && !tj.ReadOnly {
				a.writers[i] = append(a.writers[i], j)
			}
			if feedsJI {
				a.feeders[i][tj.Proc] = append(a.feeders[i][tj.Proc], j)
			}
			if conflict || reads {
				a.conflicts[i] = append(a.conflicts[i], j)
			}
			if conflict || feedsJI || reads {
				a.symDep[i][j] = true
				a.symDep[j][i] = true
			}
		}
	}
	return a, nil
}

// sameProcConflict decides whether two distinct transitions of one process
// conflict: they do unless both are ReadOnly (neither changes the state the
// other reads) and they cannot contend for the same pending messages.
func sameProcConflict(t, u *core.Transition) bool {
	if !t.ReadOnly || !u.ReadOnly {
		return true
	}
	return mayShareMessages(t, u)
}

// mayShareMessages reports whether two transitions of the same process
// could consume the same message: same consumed type and overlapping
// allowed senders.
func mayShareMessages(t, u *core.Transition) bool {
	if t.Spontaneous() || u.Spontaneous() {
		return false
	}
	if t.MsgType != u.MsgType {
		return false
	}
	if t.Peers == nil || u.Peers == nil {
		return true
	}
	for _, q := range t.Peers {
		for _, r := range u.Peers {
			if q == r {
				return true
			}
		}
	}
	return false
}

// Protocol returns the analyzed protocol.
func (a *Analysis) Protocol() *core.Protocol { return a.p }

// Dependent reports (symmetric, reflexive) static dependence between two
// transitions by index: same process, feeding in either direction, or
// global-read coupling. Dynamic POR uses this for race detection.
func (a *Analysis) Dependent(i, j int) bool { return a.symDep[i][j] }

// DependenceCount returns the number of ordered dependent pairs (i != j).
// Transition refinement should shrink it; the ablation bench reports it.
func (a *Analysis) DependenceCount() int {
	n := 0
	for i := range a.symDep {
		for j := range a.symDep[i] {
			if i != j && a.symDep[i][j] {
				n++
			}
		}
	}
	return n
}

// readsProcess reports whether t reads q's local state via GlobalReads.
func readsProcess(t *core.Transition, q core.ProcessID) bool {
	for _, r := range t.GlobalReads {
		if r == q {
			return true
		}
	}
	return false
}

// canFeed reports whether u may send a message that t may consume: u has a
// send specification matching t's message type, whose possible recipients
// include t's process, and u's process is an allowed sender (peer) of t.
// Refined transitions declare narrower peers and reply recipients, making
// this relation sparser — the mechanism behind §III-C/D.
func canFeed(u, t *core.Transition) bool {
	if t.Spontaneous() {
		return false
	}
	if !t.AllowsSender(u.Proc) {
		return false
	}
	for _, spec := range u.Sends {
		if spec.Type != t.MsgType {
			continue
		}
		if specCanReach(u, spec, t.Proc) {
			return true
		}
	}
	return false
}

// specCanReach reports whether u's send specification may address process q.
func specCanReach(u *core.Transition, spec core.SendSpec, q core.ProcessID) bool {
	if spec.To != nil {
		for _, r := range spec.To {
			if r == q {
				return true
			}
		}
		return false
	}
	if spec.ToSenders {
		// Recipients are senders of u's consumed messages, i.e. u's peers.
		if u.Peers == nil {
			return true
		}
		for _, r := range u.Peers {
			if r == q {
				return true
			}
		}
		return false
	}
	return true
}

// closureConfig selects sound weakenings of the closure for ablation
// studies (the paper's appendix distinguishes plain LPOR from LPOR-NET the
// same way): replacing a necessary-enabling set or the uniqueness-refined
// feeder set by a superset is always sound, merely less reductive.
// dropGrowthFeeders is the UNSOUND test-only variant documented at
// Expander.dropGrowthFeeders.
type closureConfig struct {
	disableNET        bool
	disableUniqueness bool
	dropGrowthFeeders bool
}

// stubborn computes a strong stubborn set at state s, seeded with seed:
// an enabled member pulls in anything that could disable it, conflict with
// it, or grow its set of executable events; a disabled member pulls in a
// necessary enabling set. Returns transition indices.
func (a *Analysis) stubborn(seed int, s *core.State, enabled map[int]bool, cfg closureConfig) map[int]bool {
	inSet := map[int]bool{seed: true}
	work := []int{seed}
	add := func(j int) {
		if !inSet[j] {
			inSet[j] = true
			work = append(work, j)
		}
	}
	for len(work) > 0 {
		i := work[len(work)-1]
		work = work[:len(work)-1]
		if enabled[i] {
			for _, j := range a.conflicts[i] {
				add(j)
			}
			if !cfg.dropGrowthFeeders {
				for _, j := range a.growthFeeders(i, s, cfg.disableUniqueness) {
					add(j)
				}
			}
			continue
		}
		for _, j := range a.net(i, s, cfg.disableNET) {
			add(j)
		}
	}
	return inSet
}

// growthFeeders returns the feeders that could still grow the event set of
// the *enabled* transition i at state s. New events for i need new
// consumable messages; when i is UniquePerSender, a sender that already
// contributes a candidate cannot supply another, so only feeders executed
// by non-contributing peers qualify — for a fully split transition whose
// quorum is complete, that is the empty set, which is precisely why
// refinement sharpens the reduction (§III-C/D). Without the uniqueness
// property every feeder must be assumed capable of adding alternatives.
func (a *Analysis) growthFeeders(i int, s *core.State, disableUniqueness bool) []int {
	t := a.p.Transitions[i]
	if t.Spontaneous() {
		return nil
	}
	if !t.UniquePerSender || disableUniqueness {
		return a.allFeeders(i)
	}
	contributing, _ := s.Msgs.MatchingBySender(t.Proc, t.MsgType, t.Peers)
	have := make(map[core.ProcessID]bool, len(contributing))
	for _, q := range contributing {
		have[q] = true
	}
	var out []int
	//lint:nondet-ok out is sorted before return
	for q, fs := range a.feeders[i] {
		if !have[q] {
			out = append(out, fs...)
		}
	}
	sort.Ints(out)
	return out
}

// net returns a necessary enabling set for the disabled transition i at
// state s: every path on which i becomes enabled must execute one of the
// returned transitions first. The tightest applicable condition is chosen
// (the LPOR-NET optimization):
//
//  1. the local-state guard is false — only the process's own
//     state-writing transitions can change that;
//  2. the message quorum is structurally incomplete — only feeders, and
//     with restricted peers only feeders executed by the *missing* senders
//     (this is where quorum-split sharpens the NET); if no feeder can ever
//     supply the deficit the transition is permanently disabled and the
//     empty set is a valid NET;
//  3. otherwise the content guard rejects every candidate set — a local
//     change or different message contents are needed.
func (a *Analysis) net(i int, s *core.State, disableNET bool) []int {
	t := a.p.Transitions[i]
	if !t.LocalGuardOK(s.Locals[t.Proc]) {
		return a.writers[i]
	}
	if t.Spontaneous() {
		// LocalGuard (if any) holds yet the transition is disabled: the
		// full guard must be local-state based too.
		return a.writers[i]
	}
	if !a.p.StructurallyEnabled(t, s) {
		missing := a.p.MissingSenders(t, s)
		if missing == nil || disableNET {
			return a.allFeeders(i)
		}
		var out []int
		for _, q := range missing {
			out = append(out, a.feeders[i][q]...)
		}
		sort.Ints(out)
		return out
	}
	out := append([]int(nil), a.writers[i]...)
	out = append(out, a.allFeeders(i)...)
	sort.Ints(out)
	return out
}

func (a *Analysis) allFeeders(i int) []int {
	var out []int
	//lint:nondet-ok out is sorted before return
	for _, f := range a.feeders[i] {
		out = append(out, f...)
	}
	sort.Ints(out)
	return out
}
