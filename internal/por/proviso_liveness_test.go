// The liveness analogue of the ignoring-trap tests: on cyclic graphs the
// stack proviso is what makes SPOR sound for Büchi checking. For safety
// the proviso-free reduction merely postpones the bad state; for liveness
// it is worse — the reduction can omit the accepting region entirely, so a
// proviso-free reduced NDFS would report "live" with full confidence.
// LivenessTrap is the minimal model where that happens, and these tests
// pin both directions: the proviso-free reduced graph provably contains no
// accepting state at all, and the real SPOR NDFS (stack proviso on) finds
// the accepting cycle the reduction tried to hide.
package por

import (
	"testing"

	"mpbasset/internal/core"
	"mpbasset/internal/explore"
	"mpbasset/internal/liveness"
	"mpbasset/internal/mptest"
)

// reducedGraphWithoutProviso exhaustively explores the reduced state graph
// with the proviso disabled (the liveness counterpart of
// reducedBFSWithoutProviso): expander-chosen events only, no promotion
// ever. It returns the number of reachable reduced states and how many of
// them the property accepts. Zero accepting states means ANY Büchi checker
// run over this graph — nested DFS included — must report the property
// live, whatever cycles the graph has.
func reducedGraphWithoutProviso(t *testing.T, p *core.Protocol, prop *liveness.Property, exp *Expander) (states, accepting int) {
	t.Helper()
	init, err := p.InitialState()
	if err != nil {
		t.Fatal(err)
	}
	seen := map[string]bool{init.Key(): true}
	if prop.Accept(init) {
		accepting++
	}
	frontier := []*core.State{init}
	for len(frontier) > 0 {
		var next []*core.State
		for _, s := range frontier {
			enabled := p.Enabled(s)
			if len(enabled) == 0 {
				continue
			}
			for _, ev := range exp.Expand(s, enabled, noopProviso{}) {
				ns, err := p.Execute(s, ev)
				if err != nil {
					t.Fatal(err)
				}
				key := ns.Key()
				if seen[key] {
					continue
				}
				seen[key] = true
				if prop.Accept(ns) {
					accepting++
				}
				next = append(next, ns)
			}
		}
		frontier = next
	}
	return len(seen), accepting
}

// TestLivenessTrapReducedGraphWithoutProvisoHasNoAcceptingState proves the
// unsoundness the trap is built around: the proviso-free reduced graph is
// exactly the ring cycle at rounds 0 — no accepting state is reachable in
// it, so a proviso-free reduced NDFS would wrongly verify the property.
// The oracle on the full graph confirms the property is in fact violated.
func TestLivenessTrapReducedGraphWithoutProvisoHasNoAcceptingState(t *testing.T) {
	for _, ring := range []int{2, 3, 4, 6} {
		p, prop, err := mptest.LivenessTrap(ring)
		if err != nil {
			t.Fatal(err)
		}
		exp, err := NewExpander(p)
		if err != nil {
			t.Fatal(err)
		}
		states, accepting := reducedGraphWithoutProviso(t, p, prop, exp)
		if accepting != 0 {
			t.Errorf("ring %d: proviso-free reduced graph reaches %d accepting states — the trap no longer traps", ring, accepting)
		}
		if states != ring {
			t.Errorf("ring %d: proviso-free reduced graph has %d states, want exactly the %d-state token cycle", ring, states, ring)
		}
		ores, err := liveness.Oracle(p, prop, 0)
		if err != nil {
			t.Fatal(err)
		}
		if !ores.Violated || ores.Limited {
			t.Errorf("ring %d: oracle violated=%v limited=%v — the property should be genuinely violated", ring, ores.Violated, ores.Limited)
		}
	}
}

// TestLivenessTrapSPORNDFSFindsCycle is the positive direction: the real
// engines (stack proviso on) must find the accepting cycle under
// reduction, with the proviso firing, and agree bit-for-bit between the
// sequential and parallel engines.
func TestLivenessTrapSPORNDFSFindsCycle(t *testing.T) {
	for _, ring := range []int{2, 3, 4, 6} {
		p, prop, err := mptest.LivenessTrap(ring)
		if err != nil {
			t.Fatal(err)
		}
		exp, err := NewExpander(p)
		if err != nil {
			t.Fatal(err)
		}
		ref, err := explore.NDFS(p, explore.Options{Expander: exp, Property: prop})
		if err != nil {
			t.Fatal(err)
		}
		if ref.Verdict != explore.VerdictViolated {
			t.Fatalf("ring %d: SPOR NDFS verdict %s, want the accepting cycle", ring, ref.Verdict)
		}
		if ref.Stats.ProvisoExpansions == 0 {
			t.Errorf("ring %d: violation found without the proviso firing — the trap is not exercising C3", ring)
		}
		if _, err := explore.ReplayLasso(p, prop, ref.Trace, ref.CycleLen, ref.Stutter, nil); err != nil {
			t.Errorf("ring %d: lasso does not replay: %v", ring, err)
		}
		for _, workers := range []int{1, 2, 8} {
			res, err := explore.ParallelNDFS(p, explore.Options{Expander: exp, Property: prop, Workers: workers})
			if err != nil {
				t.Fatal(err)
			}
			rs, fs := res.Stats, ref.Stats
			rs.Duration, fs.Duration = 0, 0
			if res.Verdict != ref.Verdict || rs != fs || len(res.Trace) != len(ref.Trace) ||
				res.CycleLen != ref.CycleLen || res.Stutter != ref.Stutter {
				t.Errorf("ring %d workers %d: (%s, %+v) vs sequential (%s, %+v)", ring, workers, res.Verdict, rs, ref.Verdict, fs)
			}
			for i := range res.Trace {
				if res.Trace[i].StateKey != ref.Trace[i].StateKey {
					t.Errorf("ring %d workers %d: trace diverges at step %d", ring, workers, i)
					break
				}
			}
		}
	}
}
