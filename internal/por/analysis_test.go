package por

import (
	"testing"

	"mpbasset/internal/core"
	"mpbasset/internal/protocols/paxos"
	"mpbasset/internal/protocols/storage"
	"mpbasset/internal/refine"
)

// findTransition returns the index of the first transition of proc with
// the given name prefix.
func findTransition(t *testing.T, p *core.Protocol, proc core.ProcessID, name string) int {
	t.Helper()
	for _, tr := range p.Transitions {
		if tr.Proc == proc && tr.Name == name {
			return tr.Index()
		}
	}
	t.Fatalf("transition %d/%s not found", proc, name)
	return -1
}

func TestDependenceRelationsOnPaxos(t *testing.T) {
	cfg := paxos.Config{Proposers: 2, Acceptors: 3, Learners: 1}
	p, err := paxos.New(cfg)
	if err != nil {
		t.Fatal(err)
	}
	a, err := NewAnalysis(p)
	if err != nil {
		t.Fatal(err)
	}
	propose0 := findTransition(t, p, cfg.ProposerID(0), "PROPOSE")
	propose1 := findTransition(t, p, cfg.ProposerID(1), "PROPOSE")
	collect0 := findTransition(t, p, cfg.ProposerID(0), paxos.MsgReadRepl)
	read2 := findTransition(t, p, cfg.AcceptorID(0), paxos.MsgRead)
	write2 := findTransition(t, p, cfg.AcceptorID(0), paxos.MsgWrite)
	learner := findTransition(t, p, cfg.LearnerID(0), paxos.MsgAccept)

	// Reflexive.
	if !a.Dependent(propose0, propose0) {
		t.Error("dependence must be reflexive")
	}
	// Two proposals are independent: different processes, no feeding.
	if a.Dependent(propose0, propose1) {
		t.Error("PROPOSE transitions of different proposers must be independent")
	}
	// PROPOSE feeds the acceptors' READ transitions.
	if !a.Dependent(propose0, read2) {
		t.Error("PROPOSE must be dependent with the acceptor READ it feeds")
	}
	// Same process: READ and WRITE of one acceptor conflict.
	if !a.Dependent(read2, write2) {
		t.Error("same-process transitions must be dependent")
	}
	// Acceptor READ feeds the proposer's collect.
	if !a.Dependent(read2, collect0) {
		t.Error("acceptor READ must be dependent with the proposer's READ_REPL")
	}
	// The learner's collect is fed by acceptor WRITE (ACCEPT messages),
	// not by acceptor READ.
	if !a.Dependent(write2, learner) {
		t.Error("acceptor WRITE must feed the learner")
	}
	if a.Dependent(read2, learner) {
		t.Error("acceptor READ must be independent of the learner")
	}
}

func TestReplySplitSparsifiesDependence(t *testing.T) {
	p, err := paxos.New(paxos.Config{Proposers: 2, Acceptors: 3, Learners: 1})
	if err != nil {
		t.Fatal(err)
	}
	base, err := NewAnalysis(p)
	if err != nil {
		t.Fatal(err)
	}
	sp, err := refine.Split(p, refine.Reply)
	if err != nil {
		t.Fatal(err)
	}
	sa, err := NewAnalysis(sp)
	if err != nil {
		t.Fatal(err)
	}
	// After reply-split an acceptor's READ__0 feeds only proposer 0: it
	// must be independent of proposer 1's collect.
	cfg := paxos.Config{Proposers: 2, Acceptors: 3, Learners: 1}
	read0 := findTransition(t, sp, cfg.AcceptorID(0), paxos.MsgRead+"__0")
	collect1 := findTransition(t, sp, cfg.ProposerID(1), paxos.MsgReadRepl)
	if sa.Dependent(read0, collect1) {
		t.Error("reply-split READ__0 must not feed proposer 1's collect")
	}
	// Average dependence degree must not grow (per-transition relations
	// get sparser even though the transition count grows).
	baseDeg := float64(base.DependenceCount()) / float64(len(p.Transitions))
	splitDeg := float64(sa.DependenceCount()) / float64(len(sp.Transitions))
	if splitDeg > baseDeg {
		t.Errorf("reply-split increased average dependence degree: %.2f -> %.2f", baseDeg, splitDeg)
	}
}

func TestReadOnlyDecouplesProbes(t *testing.T) {
	cfg := storage.Config{Objects: 2, Readers: 2}
	p, err := storage.New(cfg)
	if err != nil {
		t.Fatal(err)
	}
	sp, err := refine.Split(p, refine.Reply)
	if err != nil {
		t.Fatal(err)
	}
	a, err := NewAnalysis(sp)
	if err != nil {
		t.Fatal(err)
	}
	// After reply-split, the same object's probes for different readers
	// are ReadOnly and touch disjoint messages: independent — the paper's
	// isWrite annotation at work.
	r1 := findTransition(t, sp, cfg.ObjectID(0), storage.MsgRead+core.PeerSuffix([]core.ProcessID{cfg.ReaderID(0)}))
	r2 := findTransition(t, sp, cfg.ObjectID(0), storage.MsgRead+core.PeerSuffix([]core.ProcessID{cfg.ReaderID(1)}))
	if a.Dependent(r1, r2) {
		t.Error("read-only probes of different readers at one object must be independent")
	}
	// But each probe conflicts with the object's WRITE.
	w := findTransition(t, sp, cfg.ObjectID(0), storage.MsgWrite)
	if !a.Dependent(r1, w) {
		t.Error("probe must be dependent with the object's WRITE")
	}
}

func TestGlobalReadCoupling(t *testing.T) {
	cfg := storage.Config{Objects: 3, Readers: 1}
	p, err := storage.New(cfg)
	if err != nil {
		t.Fatal(err)
	}
	a, err := NewAnalysis(p)
	if err != nil {
		t.Fatal(err)
	}
	// The reader's R_START reads the writer's state (observer snapshot):
	// dependent with the writer's state-writing transitions.
	rstart := findTransition(t, p, cfg.ReaderID(0), "R_START")
	wack := findTransition(t, p, cfg.WriterID(), storage.MsgAck)
	if !a.Dependent(rstart, wack) {
		t.Error("observer snapshot must couple the reader start to the writer's completion")
	}
}
