package por

import (
	"testing"
	"time"

	"mpbasset/internal/core"
	"mpbasset/internal/explore"
	"mpbasset/internal/mptest"
	"mpbasset/internal/protocols/multicast"
	"mpbasset/internal/protocols/paxos"
	"mpbasset/internal/protocols/storage"
)

// runBoth explores p unreduced and SPOR-reduced and checks the soundness
// contract: identical verdicts and identical deadlock-state counts (the
// stubborn-set guarantee), with the reduced run never exploring more
// states.
func runBoth(t *testing.T, p *core.Protocol, search func(*core.Protocol, explore.Options) (*explore.Result, error)) {
	t.Helper()
	full, err := search(p, explore.Options{MaxDuration: time.Minute})
	if err != nil {
		t.Fatalf("%s unreduced: %v", p.Name, err)
	}
	exp, err := NewExpander(p)
	if err != nil {
		t.Fatalf("%s analysis: %v", p.Name, err)
	}
	red, err := search(p, explore.Options{Expander: exp, MaxDuration: time.Minute})
	if err != nil {
		t.Fatalf("%s reduced: %v", p.Name, err)
	}
	if full.Verdict != red.Verdict {
		t.Errorf("%s: verdict mismatch: unreduced %s, SPOR %s", p.Name, full.Verdict, red.Verdict)
	}
	if full.Verdict == explore.VerdictVerified {
		if full.Stats.Deadlocks != red.Stats.Deadlocks {
			t.Errorf("%s: deadlock count mismatch: unreduced %d, SPOR %d (stubborn sets must preserve deadlocks)",
				p.Name, full.Stats.Deadlocks, red.Stats.Deadlocks)
		}
		// Exhaustive runs: the reduction must never enlarge the explored
		// space. (A violated run may legitimately visit more states before
		// hitting its — possibly different — counterexample.)
		if red.Stats.States > full.Stats.States {
			t.Errorf("%s: SPOR explored more states (%d) than unreduced (%d)", p.Name, red.Stats.States, full.Stats.States)
		}
	}
}

func TestSoundnessOnRandomProtocols(t *testing.T) {
	for seed := int64(0); seed < 150; seed++ {
		for _, thr := range []int{0, 1, 2} {
			p, err := mptest.Random(mptest.GenConfig{Seed: seed, Quorums: true, Threshold: thr})
			if err != nil {
				t.Fatal(err)
			}
			runBoth(t, p, explore.DFS)
		}
	}
}

func TestSoundnessWithAnyQuorumTransitions(t *testing.T) {
	// Unrestricted-subset (AnyQuorum) transitions exercise the
	// conservative branches of the closure (no missing-sender NETs, no
	// uniqueness shortcuts).
	for seed := int64(0); seed < 80; seed++ {
		p, err := mptest.Random(mptest.GenConfig{Seed: seed, Quorums: true, AnyQuorums: true, Threshold: 2})
		if err != nil {
			t.Fatal(err)
		}
		runBoth(t, p, explore.DFS)
	}
}

func TestSoundnessOnCyclicProtocols(t *testing.T) {
	// Cyclic state graphs exercise the ignoring proviso (C3): the stack
	// discipline in DFS, the queue discipline in BFS.
	for seed := int64(0); seed < 60; seed++ {
		p, err := mptest.Random(mptest.GenConfig{Seed: seed, Quorums: true, Cycles: true, Threshold: 1})
		if err != nil {
			t.Fatal(err)
		}
		runBoth(t, p, explore.DFS)
		runBoth(t, p, explore.BFS)
	}
}

func TestSoundnessOnBundledProtocols(t *testing.T) {
	if testing.Short() {
		t.Skip("bundled-protocol soundness sweep is slow")
	}
	var ps []*core.Protocol
	add := func(p *core.Protocol, err error) {
		if err != nil {
			t.Fatal(err)
		}
		p.ValidateSends = true
		ps = append(ps, p)
	}
	for _, m := range []paxos.Model{paxos.ModelQuorum, paxos.ModelSingle} {
		add(paxos.New(paxos.Config{Proposers: 2, Acceptors: 3, Learners: 1, Model: m}))
		add(paxos.New(paxos.Config{Proposers: 2, Acceptors: 3, Learners: 1, Model: m, Faulty: true}))
	}
	add(multicast.New(multicast.Config{HonestReceivers: 3, ByzantineReceivers: 1, ByzantineInitiators: 1}))
	add(multicast.New(multicast.Config{HonestReceivers: 2, HonestInitiators: 1, ByzantineInitiators: 1}))
	add(multicast.New(multicast.Config{HonestReceivers: 2, HonestInitiators: 1, ByzantineReceivers: 2, ByzantineInitiators: 1}))
	add(multicast.New(multicast.Config{HonestReceivers: 3, HonestInitiators: 1, ByzantineReceivers: 1, ByzantineInitiators: 1}))
	add(storage.New(storage.Config{Objects: 3, Readers: 1}))
	add(storage.New(storage.Config{Objects: 3, Readers: 2, WrongRegularity: true}))
	add(storage.New(storage.Config{Objects: 3, Readers: 1, Model: storage.ModelSingle}))
	for _, p := range ps {
		runBoth(t, p, explore.DFS)
	}
}

func TestSoundnessBFS(t *testing.T) {
	// Acyclic protocols: the queue proviso may still promote
	// conservatively (a DAG cross-edge can make every reduced successor an
	// old state) but the reduction must stay sound and never enlarge the
	// space beyond unreduced. Cyclic coverage lives in
	// TestSoundnessOnCyclicProtocols and proviso_test.go.
	for seed := int64(0); seed < 60; seed++ {
		p, err := mptest.Random(mptest.GenConfig{Seed: seed, Quorums: true, Threshold: 2})
		if err != nil {
			t.Fatal(err)
		}
		runBoth(t, p, explore.BFS)
	}
}

// TestDroppingGrowthFeedersIsUnsound documents why the expander offers no
// "enabled members pull conflicts only" mode: a closure that ignores the
// feeders of enabled quorum transitions loses quorum-choice behaviours —
// demonstrably including deadlock states — on generated protocols. The
// test asserts that at least one seed exposes the deadlock loss.
func TestDroppingGrowthFeedersIsUnsound(t *testing.T) {
	exposed := 0
	for seed := int64(0); seed < 100; seed++ {
		p, err := mptest.Random(mptest.GenConfig{Seed: seed, Quorums: true})
		if err != nil {
			t.Fatal(err)
		}
		full, err := explore.DFS(p, explore.Options{})
		if err != nil {
			t.Fatal(err)
		}
		a, err := NewAnalysis(p)
		if err != nil {
			t.Fatal(err)
		}
		exp := NewExpanderFromAnalysis(a)
		exp.dropGrowthFeeders = true // test-only backdoor
		red, err := explore.DFS(p, explore.Options{Expander: exp})
		if err != nil {
			t.Fatal(err)
		}
		if full.Stats.Deadlocks != red.Stats.Deadlocks {
			exposed++
		}
	}
	if exposed == 0 {
		t.Fatal("expected at least one seed to expose the unsoundness of dropping growth feeders")
	}
	t.Logf("deadlock loss exposed on %d/100 seeds", exposed)
}

func TestAblationModesStillSound(t *testing.T) {
	// DisableNET and DisableUniqueness replace sets by supersets: less
	// reduction, never unsoundness.
	for seed := int64(0); seed < 60; seed++ {
		p, err := mptest.Random(mptest.GenConfig{Seed: seed, Quorums: true, Threshold: 1})
		if err != nil {
			t.Fatal(err)
		}
		full, err := explore.DFS(p, explore.Options{})
		if err != nil {
			t.Fatal(err)
		}
		for _, mode := range []struct {
			name string
			set  func(*Expander)
		}{
			{"no-NET", func(e *Expander) { e.DisableNET = true }},
			{"no-uniqueness", func(e *Expander) { e.DisableUniqueness = true }},
			{"both", func(e *Expander) { e.DisableNET = true; e.DisableUniqueness = true }},
		} {
			exp, err := NewExpander(p)
			if err != nil {
				t.Fatal(err)
			}
			mode.set(exp)
			red, err := explore.DFS(p, explore.Options{Expander: exp})
			if err != nil {
				t.Fatal(err)
			}
			if red.Verdict != full.Verdict {
				t.Errorf("seed %d %s: verdict %s, want %s", seed, mode.name, red.Verdict, full.Verdict)
			}
			if full.Verdict == explore.VerdictVerified && red.Stats.Deadlocks != full.Stats.Deadlocks {
				t.Errorf("seed %d %s: deadlocks %d, want %d", seed, mode.name, red.Stats.Deadlocks, full.Stats.Deadlocks)
			}
		}
	}
}

func TestNETOptimizationImproves(t *testing.T) {
	// On the bundled storage model the NET optimization must not explore
	// more states than its disabled counterpart; on at least one bundled
	// protocol it should explore strictly fewer.
	strictly := false
	for _, mk := range []func() (*core.Protocol, error){
		func() (*core.Protocol, error) {
			return paxos.New(paxos.Config{Proposers: 2, Acceptors: 3, Learners: 1})
		},
		func() (*core.Protocol, error) {
			return storage.New(storage.Config{Objects: 3, Readers: 2, WrongRegularity: true})
		},
		func() (*core.Protocol, error) {
			return multicast.New(multicast.Config{HonestReceivers: 3, HonestInitiators: 1, ByzantineReceivers: 1, ByzantineInitiators: 1})
		},
	} {
		p, err := mk()
		if err != nil {
			t.Fatal(err)
		}
		withNET, err := NewExpander(p)
		if err != nil {
			t.Fatal(err)
		}
		resNET, err := explore.DFS(p, explore.Options{Expander: withNET, MaxDuration: 2 * time.Minute})
		if err != nil {
			t.Fatal(err)
		}
		woNET, err := NewExpander(p)
		if err != nil {
			t.Fatal(err)
		}
		woNET.DisableNET = true
		resNo, err := explore.DFS(p, explore.Options{Expander: woNET, MaxDuration: 2 * time.Minute})
		if err != nil {
			t.Fatal(err)
		}
		if resNET.Verdict == explore.VerdictVerified && resNo.Verdict == explore.VerdictVerified {
			if resNET.Stats.States > resNo.Stats.States {
				t.Errorf("%s: NET explored more states (%d) than no-NET (%d)", p.Name, resNET.Stats.States, resNo.Stats.States)
			}
			if resNET.Stats.States < resNo.Stats.States {
				strictly = true
			}
		}
	}
	if !strictly {
		t.Log("note: NET gave no strict improvement on the sampled protocols this run")
	}
}

func TestBestSeedStillSound(t *testing.T) {
	for seed := int64(0); seed < 50; seed++ {
		p, err := mptest.Random(mptest.GenConfig{Seed: seed, Quorums: true, Threshold: 1})
		if err != nil {
			t.Fatal(err)
		}
		full, err := explore.DFS(p, explore.Options{})
		if err != nil {
			t.Fatal(err)
		}
		exp, err := NewExpander(p)
		if err != nil {
			t.Fatal(err)
		}
		exp.BestSeed = true
		red, err := explore.DFS(p, explore.Options{Expander: exp})
		if err != nil {
			t.Fatal(err)
		}
		if full.Verdict != red.Verdict {
			t.Errorf("seed %d: verdict %s (full) vs %s (best-seed)", seed, full.Verdict, red.Verdict)
		}
	}
}
