// Tests of the ignoring proviso (C3) on cyclic state graphs: the
// DFS/ParallelDFS stack proviso and the BFS/ParallelBFS queue proviso must
// agree with each other and with unreduced search on every cyclic model —
// each parallel engine additionally bit-identical to its sequential
// reference — and the IgnoringTrap must demonstrate that a reduced BFS
// *without* the proviso is genuinely unsound (it provably misses the
// violation).
package por

import (
	"testing"
	"time"

	"mpbasset/internal/core"
	"mpbasset/internal/explore"
	"mpbasset/internal/mptest"
)

// noopProviso mimics the pre-proviso BFS engines: it never promotes a
// reduced expansion. Used by the reference walker below to reconstruct the
// unsound reduced state graph.
type noopProviso struct{}

func (noopProviso) OnStack(string) bool    { return false }
func (noopProviso) Ignoring([]string) bool { return false }

// reducedBFSWithoutProviso exhaustively explores the reduced state graph
// the way the BFS engines did before the queue proviso existed: expander
// chosen events only, no promotion ever. It reports whether any reachable
// state (in that reduced graph) violates the invariant.
func reducedBFSWithoutProviso(t *testing.T, p *core.Protocol, exp *Expander) (violates bool, states int) {
	t.Helper()
	init, err := p.InitialState()
	if err != nil {
		t.Fatal(err)
	}
	if p.CheckInvariant(init) != nil {
		return true, 1
	}
	seen := map[string]bool{init.Key(): true}
	frontier := []*core.State{init}
	for len(frontier) > 0 {
		var next []*core.State
		for _, s := range frontier {
			enabled := p.Enabled(s)
			if len(enabled) == 0 {
				continue
			}
			for _, ev := range exp.Expand(s, enabled, noopProviso{}) {
				ns, err := p.Execute(s, ev)
				if err != nil {
					t.Fatal(err)
				}
				key := ns.Key()
				if seen[key] {
					continue
				}
				seen[key] = true
				if p.CheckInvariant(ns) != nil {
					return true, len(seen)
				}
				next = append(next, ns)
			}
		}
		frontier = next
	}
	return false, len(seen)
}

// provisoEngines is the engine matrix of the cyclic soundness tests: DFS,
// sequential BFS, and ParallelBFS with 1/2/8 workers under both the
// work-stealing and single-index schedulers, batched and per-key insert
// paths.
type provisoEngine struct {
	name string
	run  func(*core.Protocol, explore.Options) (*explore.Result, error)
}

func provisoEngines() []provisoEngine {
	parallel := func(workers int, sched explore.Sched, chunk, batch int) func(*core.Protocol, explore.Options) (*explore.Result, error) {
		return func(p *core.Protocol, xo explore.Options) (*explore.Result, error) {
			xo.Workers = workers
			xo.Sched = sched
			xo.ChunkSize = chunk
			xo.BatchSize = batch
			return explore.ParallelBFS(p, xo)
		}
	}
	return []provisoEngine{
		{"BFS", explore.BFS},
		{"ParallelBFS-1", parallel(1, explore.SchedWorkStealing, 0, 0)},
		{"ParallelBFS-2", parallel(2, explore.SchedWorkStealing, 0, 0)},
		{"ParallelBFS-8", parallel(8, explore.SchedWorkStealing, 0, 0)},
		{"ParallelBFS-8-batch1", parallel(8, explore.SchedWorkStealing, 1, 1)},
		{"ParallelBFS-8-single-index", parallel(8, explore.SchedSingleIndex, 0, 0)},
	}
}

// provisoDFSEngines is the DFS row of the matrix: ParallelDFS at 1/2/8
// workers plus a shallow steal depth, each held bit-identical to
// sequential DFS (whose stack proviso the commit walk replays verbatim).
func provisoDFSEngines() []provisoEngine {
	pdfs := func(workers, stealDepth int) func(*core.Protocol, explore.Options) (*explore.Result, error) {
		return func(p *core.Protocol, xo explore.Options) (*explore.Result, error) {
			xo.Workers = workers
			xo.StealDepth = stealDepth
			return explore.ParallelDFS(p, xo)
		}
	}
	return []provisoEngine{
		{"ParallelDFS-1", pdfs(1, 0)},
		{"ParallelDFS-2", pdfs(2, 0)},
		{"ParallelDFS-8", pdfs(8, 0)},
		{"ParallelDFS-8-steal-1", pdfs(8, 1)},
	}
}

// TestIgnoringTrapReducedBFSWithoutProvisoMisses is the unsoundness
// witness the queue proviso exists for: on the trap model the reduced
// state graph explored without any proviso contains NO violating state —
// the pre-proviso SPOR+BFS combination verified the protocol incorrectly —
// while unreduced search finds the violation one step from the initial
// state.
func TestIgnoringTrapReducedBFSWithoutProvisoMisses(t *testing.T) {
	for _, ring := range []int{2, 3, 5} {
		p, err := mptest.IgnoringTrap(ring)
		if err != nil {
			t.Fatal(err)
		}
		full, err := explore.BFS(p, explore.Options{})
		if err != nil {
			t.Fatal(err)
		}
		if full.Verdict != explore.VerdictViolated {
			t.Fatalf("ring %d: unreduced BFS verdict %s, want CE (the violation is reachable)", ring, full.Verdict)
		}
		exp, err := NewExpander(p)
		if err != nil {
			t.Fatal(err)
		}
		violates, states := reducedBFSWithoutProviso(t, p, exp)
		if violates {
			t.Fatalf("ring %d: proviso-less reduced BFS reached the violation — the trap no longer traps", ring)
		}
		// The proviso-less reduced graph is exactly the token loop: the
		// ring states, and nothing else.
		if states != ring {
			t.Errorf("ring %d: proviso-less reduced graph has %d states, want %d (the bare token loop)", ring, states, ring)
		}
	}
}

// TestIgnoringTrapAllEnginesAgree is the acceptance check of the queue
// proviso: on the trap — where SPOR+BFS previously verified incorrectly —
// every reduced engine must now report the violation with the identical,
// replayable trace (ring-1 CYC hops followed by the violating event),
// bit-identical across DFS, BFS and ParallelBFS at 1/2/8 workers under
// both schedulers, with a deterministic ProvisoExpansions count of 1 (only
// the expansion closing the ring is promoted).
func TestIgnoringTrapAllEnginesAgree(t *testing.T) {
	for _, ring := range []int{2, 3, 5} {
		p, err := mptest.IgnoringTrap(ring)
		if err != nil {
			t.Fatal(err)
		}
		exp, err := NewExpander(p)
		if err != nil {
			t.Fatal(err)
		}
		dfs, err := explore.DFS(p, explore.Options{Expander: exp, TrackTrace: true})
		if err != nil {
			t.Fatal(err)
		}
		if dfs.Verdict != explore.VerdictViolated {
			t.Fatalf("ring %d: SPOR DFS verdict %s, want CE", ring, dfs.Verdict)
		}
		if len(dfs.Trace) != ring {
			t.Fatalf("ring %d: DFS trace length %d, want %d (ring-1 hops + violation)", ring, len(dfs.Trace), ring)
		}
		if dfs.Stats.ProvisoExpansions != 1 {
			t.Errorf("ring %d: DFS ProvisoExpansions = %d, want 1", ring, dfs.Stats.ProvisoExpansions)
		}
		if _, err := explore.ReplayViolation(p, dfs.Trace, nil); err != nil {
			t.Errorf("ring %d: DFS counterexample does not replay: %v", ring, err)
		}
		for _, eng := range provisoEngines() {
			res, err := eng.run(p, explore.Options{Expander: exp, TrackTrace: true})
			if err != nil {
				t.Fatalf("ring %d %s: %v", ring, eng.name, err)
			}
			if res.Verdict != explore.VerdictViolated {
				t.Errorf("ring %d %s: verdict %s, want CE", ring, eng.name, res.Verdict)
				continue
			}
			if res.Stats.ProvisoExpansions != 1 {
				t.Errorf("ring %d %s: ProvisoExpansions = %d, want 1", ring, eng.name, res.Stats.ProvisoExpansions)
			}
			if len(res.Trace) != len(dfs.Trace) {
				t.Errorf("ring %d %s: trace length %d, DFS %d", ring, eng.name, len(res.Trace), len(dfs.Trace))
				continue
			}
			for i := range res.Trace {
				if res.Trace[i].StateKey != dfs.Trace[i].StateKey || res.Trace[i].Event.Key() != dfs.Trace[i].Event.Key() {
					t.Errorf("ring %d %s: trace step %d = %+v, DFS %+v", ring, eng.name, i, res.Trace[i], dfs.Trace[i])
					break
				}
			}
			if _, err := explore.ReplayViolation(p, res.Trace, nil); err != nil {
				t.Errorf("ring %d %s: counterexample does not replay: %v", ring, eng.name, err)
			}
		}
		// The DFS row: ParallelDFS must reproduce the sequential DFS
		// result bit-identically — stats, trace and the single promoted
		// expansion included.
		for _, eng := range provisoDFSEngines() {
			res, err := eng.run(p, explore.Options{Expander: exp, TrackTrace: true})
			if err != nil {
				t.Fatalf("ring %d %s: %v", ring, eng.name, err)
			}
			rs, ds := res.Stats, dfs.Stats
			rs.Duration, ds.Duration = 0, 0
			if rs != ds || res.Verdict != dfs.Verdict {
				t.Errorf("ring %d %s: %s %+v, sequential DFS %s %+v", ring, eng.name, res.Verdict, rs, dfs.Verdict, ds)
			}
			if len(res.Trace) != len(dfs.Trace) {
				t.Errorf("ring %d %s: trace length %d, DFS %d", ring, eng.name, len(res.Trace), len(dfs.Trace))
				continue
			}
			for i := range res.Trace {
				if res.Trace[i].StateKey != dfs.Trace[i].StateKey || res.Trace[i].Event.Key() != dfs.Trace[i].Event.Key() {
					t.Errorf("ring %d %s: trace step %d = %+v, DFS %+v", ring, eng.name, i, res.Trace[i], dfs.Trace[i])
					break
				}
			}
			if _, err := explore.ReplayViolation(p, res.Trace, nil); err != nil {
				t.Errorf("ring %d %s: counterexample does not replay: %v", ring, eng.name, err)
			}
		}
	}
}

// TestQueueProvisoSoundnessMatrixOnCyclicProtocols sweeps generated cyclic
// protocols — the original two-process bounce and longer rings, at both
// benign and adversarial cycle priorities — through the full engine
// matrix: reduced BFS must match the unreduced verdict (soundness), DFS
// must agree, and every BFS-family engine must report bit-identical
// statistics (including ProvisoExpansions) and traces for every worker
// count and scheduler.
func TestQueueProvisoSoundnessMatrixOnCyclicProtocols(t *testing.T) {
	configs := []mptest.GenConfig{
		{Quorums: true, Cycles: true, Threshold: 1},
		{Quorums: true, Cycles: true, Threshold: 1, CyclePriority: 3},
		{Quorums: true, Cycles: true, Threshold: 1, RingSize: 3, CyclePriority: 3},
		{Quorums: true, Cycles: true, Threshold: 2, RingSize: 4, CyclePriority: 3},
	}
	provisoFired := 0
	for ci, base := range configs {
		for seed := int64(0); seed < 25; seed++ {
			cfg := base
			cfg.Seed = seed
			p, err := mptest.Random(cfg)
			if err != nil {
				t.Fatal(err)
			}
			full, err := explore.BFS(p, explore.Options{MaxDuration: time.Minute})
			if err != nil {
				t.Fatal(err)
			}
			exp, err := NewExpander(p)
			if err != nil {
				t.Fatal(err)
			}
			xo := explore.Options{Expander: exp, TrackTrace: true, MaxDuration: time.Minute}
			seq, err := explore.BFS(p, xo)
			if err != nil {
				t.Fatal(err)
			}
			if seq.Verdict != full.Verdict {
				t.Errorf("config %d seed %d: reduced BFS verdict %s, unreduced %s (queue proviso unsound)",
					ci, seed, seq.Verdict, full.Verdict)
			}
			if seq.Stats.ProvisoExpansions > 0 {
				provisoFired++
			}
			dfs, err := explore.DFS(p, xo)
			if err != nil {
				t.Fatal(err)
			}
			if dfs.Verdict != seq.Verdict {
				t.Errorf("config %d seed %d: SPOR DFS verdict %s, SPOR BFS %s", ci, seed, dfs.Verdict, seq.Verdict)
			}
			// The DFS row: every ParallelDFS configuration must reproduce
			// the sequential DFS result bit-identically, ProvisoExpansions
			// included (its stack-proviso reduced graph differs from the
			// queue-proviso one, so the comparison target is dfs, not seq).
			for _, eng := range provisoDFSEngines() {
				res, err := eng.run(p, xo)
				if err != nil {
					t.Fatalf("config %d seed %d %s: %v", ci, seed, eng.name, err)
				}
				rs, ds := res.Stats, dfs.Stats
				rs.Duration, ds.Duration = 0, 0
				if rs != ds || res.Verdict != dfs.Verdict {
					t.Errorf("config %d seed %d %s: %s %+v, sequential DFS %s %+v", ci, seed, eng.name, res.Verdict, rs, dfs.Verdict, ds)
				}
				if len(res.Trace) != len(dfs.Trace) {
					t.Errorf("config %d seed %d %s: trace length %d, DFS %d", ci, seed, eng.name, len(res.Trace), len(dfs.Trace))
					continue
				}
				for i := range res.Trace {
					if res.Trace[i].StateKey != dfs.Trace[i].StateKey || res.Trace[i].Event.Key() != dfs.Trace[i].Event.Key() {
						t.Errorf("config %d seed %d %s: trace step %d differs", ci, seed, eng.name, i)
						break
					}
				}
			}
			for _, eng := range provisoEngines()[1:] { // sequential BFS is the reference
				res, err := eng.run(p, xo)
				if err != nil {
					t.Fatalf("config %d seed %d %s: %v", ci, seed, eng.name, err)
				}
				ps, ss := res.Stats, seq.Stats
				ps.Duration, ss.Duration = 0, 0
				if ps != ss {
					t.Errorf("config %d seed %d %s: stats %+v, sequential %+v", ci, seed, eng.name, ps, ss)
				}
				if res.Verdict != seq.Verdict {
					t.Errorf("config %d seed %d %s: verdict %s, sequential %s", ci, seed, eng.name, res.Verdict, seq.Verdict)
				}
				if len(res.Trace) != len(seq.Trace) {
					t.Errorf("config %d seed %d %s: trace length %d, sequential %d", ci, seed, eng.name, len(res.Trace), len(seq.Trace))
					continue
				}
				for i := range res.Trace {
					if res.Trace[i].StateKey != seq.Trace[i].StateKey || res.Trace[i].Event.Key() != seq.Trace[i].Event.Key() {
						t.Errorf("config %d seed %d %s: trace step %d differs", ci, seed, eng.name, i)
						break
					}
				}
				if res.Verdict == explore.VerdictViolated {
					if _, err := explore.ReplayViolation(p, res.Trace, nil); err != nil {
						t.Errorf("config %d seed %d %s: counterexample does not replay: %v", ci, seed, eng.name, err)
					}
				}
			}
		}
	}
	if provisoFired == 0 {
		t.Error("queue proviso never fired across the cyclic sweep — the matrix is not exercising it")
	} else {
		t.Logf("queue proviso fired on %d/100 runs", provisoFired)
	}
}

// TestQueueProvisoDeterministicRepeats pins ProvisoExpansions determinism
// directly: repeated 8-worker runs of a proviso-firing model must report
// the bit-identical statistics every time.
func TestQueueProvisoDeterministicRepeats(t *testing.T) {
	p, err := mptest.IgnoringTrap(4)
	if err != nil {
		t.Fatal(err)
	}
	exp, err := NewExpander(p)
	if err != nil {
		t.Fatal(err)
	}
	var base *explore.Result
	for i := 0; i < 10; i++ {
		res, err := explore.ParallelBFS(p, explore.Options{Expander: exp, Workers: 8, TrackTrace: true})
		if err != nil {
			t.Fatal(err)
		}
		if base == nil {
			base = res
			continue
		}
		bs, rs := base.Stats, res.Stats
		bs.Duration, rs.Duration = 0, 0
		if rs != bs || res.Verdict != base.Verdict || len(res.Trace) != len(base.Trace) {
			t.Fatalf("run %d differs: %s %+v vs %s %+v", i, res.Verdict, rs, base.Verdict, bs)
		}
	}
}
