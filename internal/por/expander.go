package por

import (
	"sort"

	"mpbasset/internal/explore"

	"mpbasset/internal/core"
)

// Expander is the static-POR expander plugged into the searches of package
// explore: at each state it tries seed transitions in heuristic order,
// computes the stubborn set of each candidate, and explores only the
// enabled part (the ample set) of the first candidate that passes the
// reduction and visibility checks.
type Expander struct {
	a         *Analysis
	seedOrder []int
	// BestSeed makes the expander evaluate every enabled seed and keep
	// the smallest valid ample set, instead of the first valid one in
	// heuristic order. More time per state, sometimes fewer states.
	//
	// A note on a design alternative we rejected: a closure that applies
	// enabling-set reasoning only to disabled members (leaving an enabled
	// member's feeders out) looks attractive and reduces much more, but
	// it is unsound for quorum transitions — a feeder can create *new*
	// quorum choices for an already-enabled transition, and dropping it
	// loses those behaviours including deadlock states. The property
	// tests in this package demonstrate the unsoundness on generated
	// protocols, which is why no such mode is offered.
	BestSeed bool
	// DisableNET replaces the missing-sender necessary-enabling sets with
	// all feeders — the paper's plain-LPOR configuration (its appendix
	// distinguishes LPOR from LPOR-NET via the fw.spor flag). Sound, less
	// reductive; exists for the ablation benches.
	DisableNET bool
	// DisableUniqueness ignores UniquePerSender annotations, treating
	// every feeder as able to grow an enabled quorum transition's event
	// set. Sound, less reductive; exists for the ablation benches.
	DisableUniqueness bool

	// dropGrowthFeeders exists only so the tests can demonstrate the
	// unsoundness described above; production code never sets it.
	dropGrowthFeeders bool
}

var _ explore.Expander = (*Expander)(nil)

// NewExpander builds a static-POR expander for p. Seeds are ordered by
// decreasing Transition.Priority (the paper's "opposite transaction"
// heuristic, §V-B), ties broken by transition index.
func NewExpander(p *core.Protocol) (*Expander, error) {
	a, err := NewAnalysis(p)
	if err != nil {
		return nil, err
	}
	return newExpander(a), nil
}

// NewExpanderFromAnalysis reuses a precomputed analysis.
func NewExpanderFromAnalysis(a *Analysis) *Expander { return newExpander(a) }

func newExpander(a *Analysis) *Expander {
	order := make([]int, len(a.p.Transitions))
	for i := range order {
		order[i] = i
	}
	sort.SliceStable(order, func(x, y int) bool {
		tx, ty := a.p.Transitions[order[x]], a.p.Transitions[order[y]]
		if tx.Priority != ty.Priority {
			return tx.Priority > ty.Priority
		}
		return order[x] < order[y]
	})
	return &Expander{a: a, seedOrder: order}
}

// Analysis exposes the underlying static analysis (diagnostics, tests).
func (e *Expander) Analysis() *Analysis { return e.a }

// Expand implements explore.Expander. The ignoring proviso (C3) is
// enforced by the engines themselves — DFS re-expands when a reduced
// expansion would close a cycle on its stack, the BFS engines when a
// reduced expansion discovers no state that was unvisited at the start of
// the node's level; Expand enforces C1 (stubbornness) and C2 (a reduced
// ample set contains no visible transition).
func (e *Expander) Expand(s *core.State, enabled []core.Event, _ explore.Proviso) []core.Event {
	if len(enabled) <= 1 {
		return enabled
	}
	enabledSet := make(map[int]bool)
	distinct := 0
	for _, ev := range enabled {
		idx := ev.T.Index()
		if !enabledSet[idx] {
			enabledSet[idx] = true
			distinct++
		}
	}
	if distinct <= 1 {
		// A single (possibly non-deterministic) transition: all its
		// events must be executed anyway (Figure 4(b)).
		return enabled
	}

	var best map[int]bool
	bestSize := distinct
	for _, seed := range e.seedOrder {
		if !enabledSet[seed] {
			continue
		}
		stub := e.a.stubborn(seed, s, enabledSet, closureConfig{
			disableNET:        e.DisableNET,
			disableUniqueness: e.DisableUniqueness,
			dropGrowthFeeders: e.dropGrowthFeeders,
		})
		size, visible := e.ampleInfo(stub, enabledSet)
		if size >= bestSize || visible {
			continue
		}
		if !e.BestSeed {
			best = stub
			break
		}
		best = stub
		bestSize = size
	}
	if best == nil {
		return enabled
	}
	out := make([]core.Event, 0, len(enabled))
	for _, ev := range enabled {
		if best[ev.T.Index()] {
			out = append(out, ev)
		}
	}
	return out
}

// ampleInfo returns the number of distinct enabled transitions in the
// stubborn set and whether any of them is visible.
func (e *Expander) ampleInfo(stub, enabled map[int]bool) (size int, visible bool) {
	//lint:nondet-ok commutative accumulation: size is a count and visible an OR, both order-free
	for idx := range stub {
		if !enabled[idx] {
			continue
		}
		size++
		if e.a.p.Transitions[idx].Visible {
			visible = true
		}
	}
	return size, visible
}
