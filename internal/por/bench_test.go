package por

import (
	"testing"

	"mpbasset/internal/protocols/paxos"
	"mpbasset/internal/refine"
)

// BenchmarkAnalysisPrecomputation measures MP-LPOR's one-time cost of
// precomputing the static relations, for the unsplit and combined-split
// Paxos models (split models have more transitions).
func BenchmarkAnalysisPrecomputation(b *testing.B) {
	base, err := paxos.New(paxos.Config{Proposers: 2, Acceptors: 3, Learners: 1})
	if err != nil {
		b.Fatal(err)
	}
	for _, strat := range []refine.Strategy{refine.None, refine.Combined} {
		strat := strat
		b.Run(strat.String(), func(b *testing.B) {
			p, err := refine.Split(base, strat)
			if err != nil {
				b.Fatal(err)
			}
			b.ResetTimer()
			for i := 0; i < b.N; i++ {
				if _, err := NewAnalysis(p); err != nil {
					b.Fatal(err)
				}
			}
		})
	}
}

// BenchmarkStubbornClosure measures the per-state closure computation.
func BenchmarkStubbornClosure(b *testing.B) {
	p, err := paxos.New(paxos.Config{Proposers: 2, Acceptors: 3, Learners: 1})
	if err != nil {
		b.Fatal(err)
	}
	a, err := NewAnalysis(p)
	if err != nil {
		b.Fatal(err)
	}
	s, err := p.InitialState()
	if err != nil {
		b.Fatal(err)
	}
	// Advance one PROPOSE so the state has pending messages.
	s, err = p.Execute(s, p.Enabled(s)[0])
	if err != nil {
		b.Fatal(err)
	}
	enabled := map[int]bool{}
	for _, ev := range p.Enabled(s) {
		enabled[ev.T.Index()] = true
	}
	seed := -1
	for idx := range enabled {
		seed = idx
		break
	}
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		_ = a.stubborn(seed, s, enabled, closureConfig{})
	}
}
