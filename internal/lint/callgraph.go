package lint

import (
	"fmt"
	"go/ast"
	"go/token"
	"go/types"
	"sort"
	"strings"
)

// This file is the call-graph layer of the suite: per-package function
// summaries precise enough to compute, across packages, which functions
// are reachable from the engine entry points (the "deterministic
// closure"; see closure.go). The summaries are plain data — they travel
// between packages through the unitchecker facts channel (vetx files) in
// vet-tool mode and are merged in-process by the standalone driver, so
// both load paths see the same cross-package edges.
//
// Node identity is a string, so summaries serialize as JSON:
//
//	pkgpath.Func               a package-level function
//	pkgpath.(Recv).Method      a method (receiver named without pointer)
//	pkgpath.Func$1             the n-th function literal inside Func
//	iface:pkgpath.I.M          a dynamic call of method M through interface I
//	field:pkgpath.S.F          a dynamic call through func-typed field F of struct S
//
// The two dynamic node kinds resolve at closure time: an iface node
// expands to T.M for every recorded implementation pair (I, T), a field
// node to every function recorded as assigned into S.F anywhere in the
// analyzed universe. Calls through plain func-typed variables and
// parameters are not tracked (no stable identity exists for them);
// protocol callbacks — the case that matters here — flow through struct
// fields and are tracked.

// PackageFacts is one package's serialized contribution to the
// whole-program view: its call-graph summary, its entry points under the
// active EntryPoints spec, and the closure-conditional findings its
// analyzers recorded (emitted later, by whichever package's analysis
// proves the enclosing function reachable; see EmitClosure).
type PackageFacts struct {
	// Path is the package import path.
	Path string
	// Funcs maps each function node ID to its outgoing call edges
	// (sorted, deduplicated node IDs).
	Funcs map[string][]string
	// Impls records interface-satisfaction pairs (interface ID, type ID)
	// for every named non-interface type of this package against every
	// module-local interface visible to it.
	Impls [][2]string
	// Methods maps a type ID to its declared methods (name → func ID),
	// used to resolve iface: nodes against Impls.
	Methods map[string]map[string]string
	// Fields maps a field:pkg.S.F node to the functions recorded as
	// assigned into that field (composite literals and assignments).
	Fields map[string][]string
	// Entries lists the entry-point function IDs this package defines
	// under the spec: named engine entry points, methods of types
	// implementing a spec interface, and functions assigned into
	// func-typed fields of a spec callback struct.
	Entries []string
	// Pending holds the closure-conditional diagnostics of this package:
	// findings of the closure-scoped analyzers, keyed by enclosing
	// function, that only become real once some package's closure
	// computation reaches that function.
	Pending []PendingDiag
}

// PendingDiag is one closure-conditional finding, positioned absolutely
// so it can be emitted by a different package's analysis (which has no
// AST for this one).
type PendingDiag struct {
	// Func is the enclosing function's node ID; empty means the finding
	// is package-scoped (e.g. a banned import) and fires when any
	// function of Pkg is in the closure.
	Func     string
	Pkg      string
	Analyzer string
	File     string
	Line     int
	Col      int
	Message  string
}

// funcSpan locates one function node in the file set, innermost-wins.
type funcSpan struct {
	pos, end token.Pos
	id       string
}

// funcIndex resolves a position to its enclosing function node ID, so
// closure-scoped analyzers can attribute findings without knowing the
// call-graph layer's ID scheme.
type funcIndex struct {
	spans []funcSpan
}

// enclosing returns the innermost function node containing pos, or ""
// for package-level positions (imports, var initializers, type decls).
func (ix *funcIndex) enclosing(pos token.Pos) string {
	best := ""
	bestSize := token.Pos(-1)
	for _, s := range ix.spans {
		if pos < s.pos || pos > s.end {
			continue
		}
		if size := s.end - s.pos; bestSize < 0 || size < bestSize {
			best, bestSize = s.id, size
		}
	}
	return best
}

// funcObjID renders the node ID of a resolved function object.
func funcObjID(fn *types.Func) string {
	pkg := ""
	if fn.Pkg() != nil {
		pkg = fn.Pkg().Path()
	}
	sig, _ := fn.Type().(*types.Signature)
	if sig != nil && sig.Recv() != nil {
		if name, ok := recvTypeName(sig.Recv().Type()); ok {
			return fmt.Sprintf("%s.(%s).%s", pkg, name, fn.Name())
		}
	}
	return pkg + "." + fn.Name()
}

// recvTypeName names a receiver type without its pointer.
func recvTypeName(t types.Type) (string, bool) {
	if p, ok := t.(*types.Pointer); ok {
		t = p.Elem()
	}
	if n, ok := t.(*types.Named); ok {
		return n.Obj().Name(), true
	}
	return "", false
}

// typeObjID renders the node ID of a named type.
func typeObjID(n *types.Named) string {
	pkg := ""
	if n.Obj().Pkg() != nil {
		pkg = n.Obj().Pkg().Path()
	}
	return pkg + "." + n.Obj().Name()
}

// funcPkg extracts the package path from a function node ID.
func funcPkg(id string) string {
	if i := strings.Index(id, ".("); i >= 0 {
		return id[:i]
	}
	if i := strings.LastIndex(id, "."); i >= 0 {
		return id[:i]
	}
	return id
}

// moduleLocal reports whether a package path belongs to the analyzed
// module rather than the standard library: a path with an internal/
// segment (the layout of this repository and of the lint fixtures) or a
// domain-qualified first element. The filter bounds the interface
// universe the Impls computation checks against.
func moduleLocal(path string) bool {
	if strings.HasPrefix(path, "internal/") || strings.Contains(path, "/internal/") {
		return true
	}
	first, _, _ := strings.Cut(path, "/")
	return strings.Contains(first, ".")
}

// cgBuilder accumulates one package's facts during the AST walk.
type cgBuilder struct {
	fset  *token.FileSet
	info  *types.Info
	pkg   *types.Package
	facts *PackageFacts
	index *funcIndex
	// litIDs remembers the node ID assigned to each function literal so
	// the field-assignment scan can reference literals by ID.
	litIDs map[*ast.FuncLit]string
	// litSeq numbers literals per enclosing node ID (package-level var
	// decls share one synthetic id, so the counter cannot be local).
	litSeq map[string]int
	edges  map[string]map[string]bool
}

// BuildFacts computes the call-graph summary, the entry points under
// spec, and the function index of one typechecked package. Test files
// are excluded: the determinism contracts bind production code.
func BuildFacts(fset *token.FileSet, files []*ast.File, pkg *types.Package, info *types.Info, spec *EntryPoints) (*PackageFacts, *funcIndex) {
	b := &cgBuilder{
		fset: fset,
		info: info,
		pkg:  pkg,
		facts: &PackageFacts{
			Path:    pkg.Path(),
			Funcs:   make(map[string][]string),
			Methods: make(map[string]map[string]string),
			Fields:  make(map[string][]string),
		},
		index:  &funcIndex{},
		litIDs: make(map[*ast.FuncLit]string),
		litSeq: make(map[string]int),
		edges:  make(map[string]map[string]bool),
	}
	prod := make([]*ast.File, 0, len(files))
	for _, f := range files {
		if strings.HasSuffix(fset.Position(f.Pos()).Filename, "_test.go") {
			continue
		}
		prod = append(prod, f)
	}
	for _, f := range prod {
		for _, decl := range f.Decls {
			switch decl := decl.(type) {
			case *ast.FuncDecl:
				if decl.Body == nil {
					continue
				}
				obj, ok := info.Defs[decl.Name].(*types.Func)
				if !ok {
					continue
				}
				id := funcObjID(obj)
				b.index.spans = append(b.index.spans, funcSpan{decl.Pos(), decl.End(), id})
				b.walkFunc(id, decl.Body)
			case *ast.GenDecl:
				// Package-level var initializers (protocol tables,
				// callback registrations) run under a synthetic init
				// node, so their function literals get IDs and their
				// field assignments count for entry-point extraction.
				if decl.Tok == token.VAR {
					b.walkFunc(pkg.Path()+".init", decl)
				}
			}
		}
	}
	// The field-assignment scan runs after the walk so function literals
	// already carry their IDs.
	for _, f := range prod {
		b.scanFieldAssignments(f)
	}
	b.collectMethodsAndImpls()
	b.finish(spec)
	return b.facts, b.index
}

// walkFunc records the outgoing edges of one function node, descending
// into nested literals as their own nodes (with an edge from the
// definer: defining a literal is treated as potentially calling it,
// which keeps callbacks handed to other functions inside the closure).
func (b *cgBuilder) walkFunc(id string, body ast.Node) {
	if b.edges[id] == nil {
		b.edges[id] = make(map[string]bool)
	}
	ast.Inspect(body, func(n ast.Node) bool {
		switch n := n.(type) {
		case *ast.FuncLit:
			b.litSeq[id]++
			litID := fmt.Sprintf("%s$%d", id, b.litSeq[id])
			b.litIDs[n] = litID
			b.edges[id][litID] = true
			b.index.spans = append(b.index.spans, funcSpan{n.Pos(), n.End(), litID})
			b.walkFunc(litID, n.Body)
			return false
		case *ast.Ident:
			if fn, ok := b.info.Uses[n].(*types.Func); ok && !interfaceMethod(fn) {
				b.edges[id][funcObjID(fn)] = true
			}
		case *ast.SelectorExpr:
			sel, ok := b.info.Selections[n]
			if !ok {
				return true
			}
			switch sel.Kind() {
			case types.MethodVal, types.MethodExpr:
				if in, ok := namedInterface(sel.Recv()); ok {
					b.edges[id]["iface:"+typeObjID(in)+"."+n.Sel.Name] = true
				}
			case types.FieldVal:
				if _, isSig := sel.Obj().Type().Underlying().(*types.Signature); isSig {
					if node, ok := fieldNode(sel.Recv(), n.Sel.Name); ok {
						b.edges[id][node] = true
					}
				}
			}
		}
		return true
	})
}

// interfaceMethod reports whether fn is the abstract method of an
// interface (resolved through iface: nodes, not direct edges).
func interfaceMethod(fn *types.Func) bool {
	sig, ok := fn.Type().(*types.Signature)
	if !ok || sig.Recv() == nil {
		return false
	}
	return types.IsInterface(sig.Recv().Type())
}

// namedInterface unwraps t to a named interface type.
func namedInterface(t types.Type) (*types.Named, bool) {
	if p, ok := t.(*types.Pointer); ok {
		t = p.Elem()
	}
	n, ok := t.(*types.Named)
	if !ok || !types.IsInterface(n) {
		return nil, false
	}
	return n, true
}

// fieldNode renders the field: node of field name on the named struct
// type recv.
func fieldNode(recv types.Type, name string) (string, bool) {
	if p, ok := recv.(*types.Pointer); ok {
		recv = p.Elem()
	}
	n, ok := recv.(*types.Named)
	if !ok {
		return "", false
	}
	return "field:" + typeObjID(n) + "." + name, true
}

// scanFieldAssignments records every function value assigned into a
// func-typed field of a named struct — composite literals
// (S{F: fn, G: func(){...}}) and plain assignments (s.F = fn) — as
// field: → function edges for the closure resolver.
func (b *cgBuilder) scanFieldAssignments(f *ast.File) {
	ast.Inspect(f, func(n ast.Node) bool {
		switch n := n.(type) {
		case *ast.CompositeLit:
			tv, ok := b.info.Types[n]
			if !ok {
				return true
			}
			t := tv.Type
			if p, ok := t.Underlying().(*types.Pointer); ok {
				t = p.Elem()
			}
			named, ok := t.(*types.Named)
			if !ok {
				return true
			}
			if _, ok := named.Underlying().(*types.Struct); !ok {
				return true
			}
			for _, elt := range n.Elts {
				kv, ok := elt.(*ast.KeyValueExpr)
				if !ok {
					continue
				}
				key, ok := kv.Key.(*ast.Ident)
				if !ok {
					continue
				}
				b.recordFieldValue("field:"+typeObjID(named)+"."+key.Name, kv.Value)
			}
		case *ast.AssignStmt:
			for i, lhs := range n.Lhs {
				if i >= len(n.Rhs) {
					break
				}
				sel, ok := lhs.(*ast.SelectorExpr)
				if !ok {
					continue
				}
				s, ok := b.info.Selections[sel]
				if !ok || s.Kind() != types.FieldVal {
					continue
				}
				if node, ok := fieldNode(s.Recv(), sel.Sel.Name); ok {
					b.recordFieldValue(node, n.Rhs[i])
				}
			}
		}
		return true
	})
}

// recordFieldValue resolves a value expression to a function node and
// records it under the field node when it is one.
func (b *cgBuilder) recordFieldValue(node string, value ast.Expr) {
	switch v := value.(type) {
	case *ast.FuncLit:
		if id, ok := b.litIDs[v]; ok {
			b.facts.Fields[node] = append(b.facts.Fields[node], id)
		}
	case *ast.Ident:
		if fn, ok := b.info.Uses[v].(*types.Func); ok {
			b.facts.Fields[node] = append(b.facts.Fields[node], funcObjID(fn))
		}
	case *ast.SelectorExpr:
		if fn, ok := b.info.Uses[v.Sel].(*types.Func); ok && !interfaceMethod(fn) {
			b.facts.Fields[node] = append(b.facts.Fields[node], funcObjID(fn))
		}
	}
}

// collectMethodsAndImpls records this package's named types: their
// declared methods (for iface: resolution) and which module-local
// interfaces they implement.
func (b *cgBuilder) collectMethodsAndImpls() {
	ifaces := interfaceUniverse(b.pkg)
	scope := b.pkg.Scope()
	for _, name := range scope.Names() {
		tn, ok := scope.Lookup(name).(*types.TypeName)
		if !ok || tn.IsAlias() {
			continue
		}
		named, ok := tn.Type().(*types.Named)
		if !ok || types.IsInterface(named) {
			continue
		}
		tid := typeObjID(named)
		for i := 0; i < named.NumMethods(); i++ {
			m := named.Method(i)
			if b.facts.Methods[tid] == nil {
				b.facts.Methods[tid] = make(map[string]string)
			}
			b.facts.Methods[tid][m.Name()] = funcObjID(m)
		}
		for _, in := range ifaces {
			it := in.Underlying().(*types.Interface)
			if types.Implements(named, it) || types.Implements(types.NewPointer(named), it) {
				b.facts.Impls = append(b.facts.Impls, [2]string{typeObjID(in), tid})
			}
		}
	}
	sort.Slice(b.facts.Impls, func(i, j int) bool {
		if b.facts.Impls[i][0] != b.facts.Impls[j][0] {
			return b.facts.Impls[i][0] < b.facts.Impls[j][0]
		}
		return b.facts.Impls[i][1] < b.facts.Impls[j][1]
	})
}

// interfaceUniverse collects the named interface types of every
// module-local package visible from pkg (pkg itself plus its transitive
// imports), the candidate set for implementation pairs.
func interfaceUniverse(pkg *types.Package) []*types.Named {
	seen := make(map[*types.Package]bool)
	var out []*types.Named
	var visit func(p *types.Package)
	visit = func(p *types.Package) {
		if p == nil || seen[p] {
			return
		}
		seen[p] = true
		if moduleLocal(p.Path()) {
			scope := p.Scope()
			for _, name := range scope.Names() {
				tn, ok := scope.Lookup(name).(*types.TypeName)
				if !ok || tn.IsAlias() {
					continue
				}
				if n, ok := tn.Type().(*types.Named); ok && types.IsInterface(n) {
					out = append(out, n)
				}
			}
		}
		for _, imp := range p.Imports() {
			visit(imp)
		}
	}
	visit(pkg)
	sort.Slice(out, func(i, j int) bool { return typeObjID(out[i]) < typeObjID(out[j]) })
	return out
}

// finish freezes the builder's edge sets into sorted slices and derives
// the package's entry points under spec.
func (b *cgBuilder) finish(spec *EntryPoints) {
	for id, set := range b.edges {
		callees := make([]string, 0, len(set))
		for c := range set {
			callees = append(callees, c)
		}
		sort.Strings(callees)
		b.facts.Funcs[id] = callees
	}
	for node := range b.facts.Fields {
		sort.Strings(b.facts.Fields[node])
		b.facts.Fields[node] = dedupSorted(b.facts.Fields[node])
	}
	if spec == nil {
		return
	}
	entries := make(map[string]bool)
	// Named entry functions.
	for id := range b.facts.Funcs {
		if strings.Contains(id, "$") || strings.Contains(id, ".(") {
			continue
		}
		pkg, name := funcPkg(id), id[strings.LastIndex(id, ".")+1:]
		for _, spec := range spec.Funcs {
			sp, sn := splitSpec(spec)
			if sn == name && pathSuffixMatch(pkg, sp) {
				entries[id] = true
			}
		}
	}
	// Every method of every type implementing a spec interface.
	for _, pair := range b.facts.Impls {
		ip, in := splitSpec(pair[0])
		for _, spec := range spec.Ifaces {
			sp, sn := splitSpec(spec)
			if sn == in && pathSuffixMatch(ip, sp) {
				for _, mid := range b.facts.Methods[pair[1]] {
					entries[mid] = true
				}
			}
		}
	}
	// Functions assigned into a spec callback struct's fields.
	for node, fns := range b.facts.Fields {
		rest := strings.TrimPrefix(node, "field:")
		lastDot := strings.LastIndex(rest, ".")
		if lastDot < 0 {
			continue
		}
		sp2, sn2 := splitSpec(rest[:lastDot])
		for _, spec := range spec.Structs {
			sp, sn := splitSpec(spec)
			if sn == sn2 && pathSuffixMatch(sp2, sp) {
				for _, fn := range fns {
					// Only functions this package defines are its entry
					// points; assigning a dependency's function marks it
					// too, since no other unit will.
					entries[fn] = true
				}
			}
		}
	}
	for id := range entries {
		b.facts.Entries = append(b.facts.Entries, id)
	}
	sort.Strings(b.facts.Entries)
}

// splitSpec splits "pkgSuffix.Name" at the final dot.
func splitSpec(s string) (pkg, name string) {
	i := strings.LastIndex(s, ".")
	if i < 0 {
		return "", s
	}
	return s[:i], s[i+1:]
}

// pathSuffixMatch reports whether path equals suffix or ends in
// "/"+suffix — the same matching DeterministicPkg uses, so the lint
// fixtures (whose package paths drop the module prefix) behave like the
// real tree.
func pathSuffixMatch(path, suffix string) bool {
	return path == suffix || strings.HasSuffix(path, "/"+suffix)
}

func dedupSorted(s []string) []string {
	out := s[:0]
	for i, v := range s {
		if i == 0 || v != s[i-1] {
			out = append(out, v)
		}
	}
	return out
}
