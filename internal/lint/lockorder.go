package lint

import (
	"fmt"
	"go/ast"
	"go/token"
	"go/types"
	"sort"
)

// LockOrder guards the parallel engines' store tier against deadlock by
// construction: the sharded and spill stores nest mutexes (a shard lock
// under the spill registry lock, stripes under the speculation memo),
// and two code paths that nest the same pair of lock classes in opposite
// orders can deadlock under the work-stealing scheduler. The analyzer
// abstracts every sync.Mutex/RWMutex acquisition to a lock class — the
// owning struct type plus field name (storeShard.mu, SpillStore.spillMu)
// — records the nesting order each function (and, one package deep, its
// callees) acquires them in, and reports every site participating in an
// inconsistent pair: class A taken under class B somewhere and B under A
// somewhere else. Acquiring two locks of the same class nested (two
// shards at once) is reported too: that needs a global order (e.g. by
// index) that a class-level analysis cannot verify. The escape is
// `//lint:lockorder-ok <reason>` naming the order invariant.
//
// The analysis is linear per function: defer'd unlocks hold to function
// end (matching the dominant lock/defer-unlock idiom), explicit unlocks
// release the most recent acquisition of that class, and calls to
// same-package functions propagate the callee's (transitive, in-package)
// acquisitions under the caller's held set.
var LockOrder = &Analyzer{
	Name:    "lockorder",
	Doc:     "flag inconsistent nested mutex acquisition orders across the store/engine lock classes in the deterministic closure",
	Run:     runLockOrder,
	Closure: true,
}

// lockEdge records one nested acquisition: outer held when inner was
// taken at pos.
type lockEdge struct {
	outer, inner string
	pos          token.Pos
}

// lockHeldCall records a call made while holding a lock, for
// interprocedural edge propagation within the package.
type lockHeldCall struct {
	held   string
	callee string
	pos    token.Pos
}

func runLockOrder(pass *Pass) error {
	var edges []lockEdge
	var heldCalls []lockHeldCall
	acquires := make(map[string]map[string]bool) // funcID -> classes
	calls := make(map[string]map[string]bool)    // funcID -> same-pkg callees

	for _, f := range pass.Files {
		if pass.isTestFile(f.Pos()) {
			continue
		}
		for _, decl := range f.Decls {
			fd, ok := decl.(*ast.FuncDecl)
			if !ok || fd.Body == nil {
				continue
			}
			obj, ok := pass.TypesInfo.Defs[fd.Name].(*types.Func)
			if !ok {
				continue
			}
			id := funcObjID(obj)
			if acquires[id] == nil {
				acquires[id] = make(map[string]bool)
				calls[id] = make(map[string]bool)
			}
			var held []string
			ast.Inspect(fd.Body, func(n ast.Node) bool {
				switch n := n.(type) {
				case *ast.DeferStmt:
					// A deferred unlock keeps the lock held to function
					// end; a deferred lock is not a thing. Skip.
					return false
				case *ast.CallExpr:
					sel, ok := n.Fun.(*ast.SelectorExpr)
					if !ok {
						// Direct call f(...) — record for propagation.
						if fn, ok := calleeFunc(pass, n.Fun); ok && fn.Pkg() == pass.Pkg {
							cid := funcObjID(fn)
							calls[id][cid] = true
							for _, h := range held {
								heldCalls = append(heldCalls, lockHeldCall{h, cid, n.Pos()})
							}
						}
						return true
					}
					switch lockMethodKind(pass, sel) {
					case "lock":
						class := lockClassOf(pass, sel.X)
						acquires[id][class] = true
						for _, h := range held {
							edges = append(edges, lockEdge{h, class, n.Pos()})
						}
						held = append(held, class)
					case "unlock":
						class := lockClassOf(pass, sel.X)
						for i := len(held) - 1; i >= 0; i-- {
							if held[i] == class {
								held = append(held[:i], held[i+1:]...)
								break
							}
						}
					default:
						if fn, ok := calleeFunc(pass, sel.Sel); ok && fn.Pkg() == pass.Pkg {
							cid := funcObjID(fn)
							calls[id][cid] = true
							for _, h := range held {
								heldCalls = append(heldCalls, lockHeldCall{h, cid, n.Pos()})
							}
						}
					}
				}
				return true
			})
		}
	}

	// Transitive in-package acquisitions: effAcquire[f] = own ∪ callees'.
	effAcquire := make(map[string]map[string]bool, len(acquires))
	for id, own := range acquires {
		eff := make(map[string]bool, len(own))
		for c := range own {
			eff[c] = true
		}
		effAcquire[id] = eff
	}
	for changed := true; changed; {
		changed = false
		for id, callees := range calls {
			for cid := range callees {
				for c := range effAcquire[cid] {
					if !effAcquire[id][c] {
						effAcquire[id][c] = true
						changed = true
					}
				}
			}
		}
	}
	for _, hc := range heldCalls {
		for c := range effAcquire[hc.callee] {
			edges = append(edges, lockEdge{hc.held, c, hc.pos})
		}
	}

	// Conflicts: a pair ordered both ways, or a self-nested class.
	ordered := make(map[[2]string]bool, len(edges))
	for _, e := range edges {
		ordered[[2]string{e.outer, e.inner}] = true
	}
	sort.Slice(edges, func(i, j int) bool {
		if edges[i].pos != edges[j].pos {
			return edges[i].pos < edges[j].pos
		}
		return edges[i].outer+"\x00"+edges[i].inner < edges[j].outer+"\x00"+edges[j].inner
	})
	reported := make(map[token.Pos]bool)
	for _, e := range edges {
		if reported[e.pos] {
			continue
		}
		var msg string
		switch {
		case e.outer == e.inner:
			msg = fmt.Sprintf("nested acquisition of two %s locks: a class-level analysis cannot verify a global order, so two goroutines interleaving these can deadlock; impose an index order and annotate //lint:lockorder-ok <reason>", e.outer)
		case ordered[[2]string{e.inner, e.outer}]:
			msg = fmt.Sprintf("inconsistent lock order: %s is acquired while holding %s here, but elsewhere %s is acquired while holding %s — under the parallel schedulers the two paths can deadlock; pick one order and annotate the invariant with //lint:lockorder-ok <reason>", e.inner, e.outer, e.outer, e.inner)
		default:
			continue
		}
		reported[e.pos] = true
		if pass.annotated(e.pos, "lockorder-ok") {
			continue
		}
		pass.ReportfClosure(e.pos, "%s", msg)
	}
	return nil
}

// lockMethodKind classifies a selector call as a mutex acquisition,
// release, or neither, by resolving the method to the sync package.
func lockMethodKind(pass *Pass, sel *ast.SelectorExpr) string {
	fn, ok := pass.TypesInfo.Uses[sel.Sel].(*types.Func)
	if !ok || fn.Pkg() == nil || fn.Pkg().Path() != "sync" {
		return ""
	}
	sig, ok := fn.Type().(*types.Signature)
	if !ok || sig.Recv() == nil {
		return ""
	}
	recv, _ := recvTypeName(sig.Recv().Type())
	if recv != "Mutex" && recv != "RWMutex" {
		return ""
	}
	switch sel.Sel.Name {
	case "Lock", "RLock":
		return "lock"
	case "Unlock", "RUnlock":
		return "unlock"
	}
	return ""
}

// lockClassOf abstracts the receiver expression of a mutex method to its
// class: the owning type plus field name for the common `owner.mu`
// shape, otherwise the expression's (dereferenced) type label — which
// covers locks reached through an embedded mutex or a bare variable.
func lockClassOf(pass *Pass, x ast.Expr) string {
	if sel, ok := x.(*ast.SelectorExpr); ok {
		if tv, ok := pass.TypesInfo.Types[sel.X]; ok {
			return lockTypeLabel(tv.Type) + "." + sel.Sel.Name
		}
	}
	if tv, ok := pass.TypesInfo.Types[x]; ok {
		return lockTypeLabel(tv.Type)
	}
	return "<unknown>"
}

// lockTypeLabel names a type for lock-class purposes, through pointers.
func lockTypeLabel(t types.Type) string {
	if p, ok := t.(*types.Pointer); ok {
		t = p.Elem()
	}
	if n, ok := t.(*types.Named); ok {
		return n.Obj().Name()
	}
	return typeLabel(t)
}

// calleeFunc resolves a call-position expression to the function object
// it names, unwrapping parens.
func calleeFunc(pass *Pass, e ast.Expr) (*types.Func, bool) {
	for {
		if p, ok := e.(*ast.ParenExpr); ok {
			e = p.X
			continue
		}
		break
	}
	id, ok := e.(*ast.Ident)
	if !ok {
		return nil, false
	}
	fn, ok := pass.TypesInfo.Uses[id].(*types.Func)
	if !ok || interfaceMethod(fn) {
		return nil, false
	}
	return fn, true
}
