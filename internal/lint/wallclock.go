package lint

import (
	"go/ast"
	"strconv"
)

// WallClock keeps wall-clock reads and pseudo-randomness out of the
// verdict/trace paths of the deterministic closure: a `time.Now` that
// feeds anything but the masked Duration counter, or any `math/rand`
// draw, makes two otherwise-identical runs diverge. Call sites are
// closure-scoped (a finding surfaces only when the enclosing function is
// reachable from an engine entry point); a banned import is
// package-scoped and surfaces when any function of the importing package
// is in the closure. Two escapes exist:
//
//   - the built-in allowlist below names the budget-enforcement types
//     whose clock reads are already outside the determinism guarantee
//     (explore's limiter and dpor's limits — their output surfaces only
//     as the masked Stats.Duration and the Limit verdict's cut point,
//     which the comparison suites treat as timing-dependent);
//   - `//lint:wallclock-ok <reason>` on the line for any new site.
var WallClock = &Analyzer{
	Name:    "wallclock",
	Doc:     "ban time.Now/time.Since/math/rand in the deterministic closure outside the masked limiter sites",
	Run:     runWallClock,
	Closure: true,
}

// wallclockBanned lists the time functions whose results leak the clock.
var wallclockBanned = map[string]bool{
	"Now":       true,
	"Since":     true,
	"Until":     true,
	"After":     true,
	"Tick":      true,
	"NewTimer":  true,
	"NewTicker": true,
	"AfterFunc": true,
}

// wallclockAllowedFuncs names the functions and method receivers whose
// clock use is pre-masked: the shared limiter/limits budget trackers and
// their constructors. A method counts if its receiver's type name is
// listed; a function if its own name is.
var wallclockAllowedFuncs = map[string]bool{
	"limiter":    true,
	"limits":     true,
	"newLimiter": true,
	"newLimits":  true,
}

// wallclockBannedImports are rejected wholesale in closure packages:
// there is no deterministic use of a PRNG on a verdict path.
var wallclockBannedImports = map[string]bool{
	"math/rand":    true,
	"math/rand/v2": true,
}

func runWallClock(pass *Pass) error {
	for _, f := range pass.Files {
		if pass.isTestFile(f.Pos()) {
			continue
		}
		for _, imp := range f.Imports {
			path, err := strconv.Unquote(imp.Path.Value)
			if err != nil {
				continue
			}
			if wallclockBannedImports[path] && !pass.annotated(imp.Pos(), "wallclock-ok") {
				// Import declarations enclose no function, so
				// ReportfClosure records this package-scoped: it fires if
				// any function of the package is on an engine path.
				pass.ReportfClosure(imp.Pos(), "import of %s in a package on a deterministic engine path: pseudo-randomness breaks run-to-run bit-identity; annotate //lint:wallclock-ok <reason> if the draws cannot reach a verdict, stat or trace", path)
			}
		}
		// Function literals inherit their enclosing declaration's
		// allowance, so the allowlist decision is per top-level decl: an
		// allowlisted limiter method is skipped wholesale, everything
		// else (including package-level var initializers) is walked.
		for _, decl := range f.Decls {
			if fd, ok := decl.(*ast.FuncDecl); ok && wallclockScopeAllowed(fd) {
				continue
			}
			ast.Inspect(decl, func(n ast.Node) bool {
				sel, ok := n.(*ast.SelectorExpr)
				if !ok {
					return true
				}
				obj := pass.TypesInfo.Uses[sel.Sel]
				if obj == nil || obj.Pkg() == nil || obj.Pkg().Path() != "time" {
					return true
				}
				if !wallclockBanned[sel.Sel.Name] {
					return true
				}
				if pass.annotated(sel.Pos(), "wallclock-ok") {
					return true
				}
				pass.ReportfClosure(sel.Pos(), "time.%s on a deterministic engine path: the clock may only feed the masked limiter/Duration sites; move the read behind the limiter or annotate //lint:wallclock-ok <reason>", sel.Sel.Name)
				return true
			})
		}
	}
	return nil
}

// wallclockScopeAllowed reports whether fd is on the built-in allowlist:
// a listed function name, or a method whose receiver type name is listed.
func wallclockScopeAllowed(fd *ast.FuncDecl) bool {
	if wallclockAllowedFuncs[fd.Name.Name] {
		return true
	}
	if fd.Recv == nil || len(fd.Recv.List) == 0 {
		return false
	}
	t := fd.Recv.List[0].Type
	if star, ok := t.(*ast.StarExpr); ok {
		t = star.X
	}
	if id, ok := t.(*ast.Ident); ok {
		return wallclockAllowedFuncs[id.Name]
	}
	return false
}
