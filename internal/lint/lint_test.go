// The analysistest-style suites: each analyzer runs over a fixture tree
// under testdata/ that reproduces the package layout it scopes to, with
// at least one true positive and one allowlisted/annotated negative.
package lint_test

import (
	"testing"

	"mpbasset/internal/lint"
	"mpbasset/internal/lint/linttest"
)

func TestMapOrder(t *testing.T) {
	linttest.Run(t, lint.MapOrder, "testdata/maporder")
}

func TestWallClock(t *testing.T) {
	linttest.Run(t, lint.WallClock, "testdata/wallclock")
}

func TestStatsMask(t *testing.T) {
	linttest.Run(t, lint.StatsMask, "testdata/statsmask")
}

func TestStatsMaskClean(t *testing.T) {
	linttest.Run(t, lint.StatsMask, "testdata/statsmask_ok")
}

func TestStoreContract(t *testing.T) {
	linttest.Run(t, lint.StoreContract, "testdata/storecontract")
}

func TestDeferredErr(t *testing.T) {
	linttest.Run(t, lint.DeferredErr, "testdata/deferrederr")
}

func TestPtrAddr(t *testing.T) {
	linttest.Run(t, lint.PtrAddr, "testdata/ptraddr")
}

func TestSelectOrder(t *testing.T) {
	linttest.Run(t, lint.SelectOrder, "testdata/selectorder")
}

func TestExhaustive(t *testing.T) {
	linttest.Run(t, lint.Exhaustive, "testdata/exhaustive")
}

func TestLockOrder(t *testing.T) {
	linttest.Run(t, lint.LockOrder, "testdata/lockorder")
}

func TestDocCheck(t *testing.T) {
	linttest.Run(t, lint.DocCheck, "testdata/doccheck")
}

// TestCallGraph proves the closure engine's cross-package edges with the
// maporder analyzer: a Store implementation reached only through the
// explore.Store interface, and a protocol callback assigned into a
// core.Protocol field from a package the engines never import.
func TestCallGraph(t *testing.T) {
	linttest.Run(t, lint.MapOrder, "testdata/callgraph")
}

// TestAll pins the suite roster: drivers (standalone, vettool, Makefile)
// all run All(), so a new analyzer only ships when it is registered.
func TestAll(t *testing.T) {
	want := []string{"maporder", "wallclock", "statsmask", "storecontract", "deferrederr", "ptraddr", "selectorder", "exhaustive", "lockorder", "doccheck"}
	got := lint.All()
	if len(got) != len(want) {
		t.Fatalf("All() has %d analyzers, want %d", len(got), len(want))
	}
	for i, a := range got {
		if a.Name != want[i] {
			t.Errorf("All()[%d] = %q, want %q", i, a.Name, want[i])
		}
		if a.Doc == "" || a.Run == nil {
			t.Errorf("analyzer %q missing Doc or Run", a.Name)
		}
	}
}
