package lint

import (
	"encoding/json"
	"fmt"
	"go/ast"
	"go/importer"
	"go/parser"
	"go/token"
	"go/types"
	"io"
	"os"
	"runtime"
)

// vetConfig mirrors the JSON unit description `go vet -vettool` hands the
// tool for every package it checks (the unitchecker protocol of
// golang.org/x/tools, reimplemented here on the standard library). Only
// the fields this driver consumes are declared; unknown fields are
// ignored by encoding/json.
type vetConfig struct {
	ID                        string
	Compiler                  string
	Dir                       string
	ImportPath                string
	GoVersion                 string
	GoFiles                   []string
	NonGoFiles                []string
	ImportMap                 map[string]string
	PackageFile               map[string]string
	Standard                  map[string]bool
	VetxOnly                  bool
	VetxOutput                string
	SucceedOnTypecheckFailure bool
}

// RunUnitchecker analyzes the single package unit described by the vet
// config file at cfgPath and returns the process exit code: 0 for a
// clean unit, 1 for a driver/typecheck failure, 2 when diagnostics were
// reported (matching x/tools' unitchecker so `go vet` renders the output
// identically). Diagnostics go to stderr as file:line:col lines.
func RunUnitchecker(w io.Writer, cfgPath string, analyzers []*Analyzer) int {
	data, err := os.ReadFile(cfgPath)
	if err != nil {
		fmt.Fprintf(w, "mplint: %v\n", err)
		return 1
	}
	var cfg vetConfig
	if err := json.Unmarshal(data, &cfg); err != nil {
		fmt.Fprintf(w, "mplint: parsing %s: %v\n", cfgPath, err)
		return 1
	}

	// The vet driver always expects the facts file; the suite keeps no
	// cross-package facts, so an empty one is complete.
	if cfg.VetxOutput != "" {
		if err := os.WriteFile(cfg.VetxOutput, nil, 0o666); err != nil {
			fmt.Fprintf(w, "mplint: %v\n", err)
			return 1
		}
	}
	if cfg.VetxOnly {
		return 0
	}

	fset := token.NewFileSet()
	var files []*ast.File
	for _, name := range cfg.GoFiles {
		f, err := parser.ParseFile(fset, name, nil, parser.ParseComments)
		if err != nil {
			if cfg.SucceedOnTypecheckFailure {
				return 0
			}
			fmt.Fprintf(w, "mplint: %v\n", err)
			return 1
		}
		files = append(files, f)
	}

	// Imports resolve through the compiler's export data, looked up via
	// the config's path → file maps exactly as the compiler itself would.
	compiler := cfg.Compiler
	if compiler == "" {
		compiler = "gc"
	}
	lookup := func(path string) (io.ReadCloser, error) {
		if mapped, ok := cfg.ImportMap[path]; ok {
			path = mapped
		}
		file, ok := cfg.PackageFile[path]
		if !ok {
			return nil, fmt.Errorf("no export data for %q", path)
		}
		return os.Open(file)
	}
	conf := types.Config{
		Importer:  importer.ForCompiler(fset, compiler, lookup),
		GoVersion: cfg.GoVersion,
		Sizes:     types.SizesFor(compiler, runtime.GOARCH),
	}
	info := newTypesInfo()
	pkg, err := conf.Check(cfg.ImportPath, fset, files, info)
	if err != nil {
		if cfg.SucceedOnTypecheckFailure {
			return 0
		}
		fmt.Fprintf(w, "mplint: typecheck %s: %v\n", cfg.ImportPath, err)
		return 1
	}

	diags, err := RunAnalyzers(analyzers, fset, files, pkg, info)
	if err != nil {
		fmt.Fprintf(w, "mplint: %v\n", err)
		return 1
	}
	if len(diags) == 0 {
		return 0
	}
	for _, d := range diags {
		fmt.Fprintf(w, "%s: %s [%s]\n", d.Pos, d.Message, d.Analyzer)
	}
	return 2
}
