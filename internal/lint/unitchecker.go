package lint

import (
	"encoding/json"
	"fmt"
	"go/ast"
	"go/importer"
	"go/parser"
	"go/token"
	"go/types"
	"io"
	"os"
	"runtime"
	"sort"
)

// vetConfig mirrors the JSON unit description `go vet -vettool` hands the
// tool for every package it checks (the unitchecker protocol of
// golang.org/x/tools, reimplemented here on the standard library). Only
// the fields this driver consumes are declared; unknown fields are
// ignored by encoding/json.
type vetConfig struct {
	ID                        string
	Compiler                  string
	Dir                       string
	ImportPath                string
	GoVersion                 string
	GoFiles                   []string
	NonGoFiles                []string
	ImportMap                 map[string]string
	PackageFile               map[string]string
	PackageVetx               map[string]string
	Standard                  map[string]bool
	VetxOnly                  bool
	VetxOutput                string
	SucceedOnTypecheckFailure bool
}

// RunUnitchecker analyzes the single package unit described by the vet
// config file at cfgPath and returns the process exit code: 0 for a
// clean unit, 1 for a driver/typecheck failure, 2 when diagnostics were
// reported (matching x/tools' unitchecker so `go vet` renders the output
// identically). Diagnostics go to stderr as file:line:col lines.
//
// The facts channel: PackageVetx maps each dependency's import path to
// the facts file that dependency's unit wrote, and VetxOutput is where
// this unit writes its own. Each unit re-exports its dependencies' facts
// alongside its own (a sorted JSON array of PackageFacts), so a unit
// sees its entire transitive dependency closure through its direct
// dependencies' files — that is what lets the detclosure pass resolve
// cross-package reachability from engine entry points under a driver
// that only ever shows it one package's source. spec selects the entry
// points; nil means DefaultEntryPoints.
//
// If MPLINT_SARIF_DIR names a directory, a unit with diagnostics also
// drops a SARIF fragment there (one file per unit), which `mplint
// -merge-sarif` later folds into one report; `go vet`'s result caching
// means unchanged units do not re-run, so the fragment set covers the
// units vet actually visited.
func RunUnitchecker(w io.Writer, cfgPath string, analyzers []*Analyzer, spec *EntryPoints) int {
	if spec == nil {
		spec = DefaultEntryPoints()
	}
	data, err := os.ReadFile(cfgPath)
	if err != nil {
		fmt.Fprintf(w, "mplint: %v\n", err)
		return 1
	}
	var cfg vetConfig
	if err := json.Unmarshal(data, &cfg); err != nil {
		fmt.Fprintf(w, "mplint: parsing %s: %v\n", cfgPath, err)
		return 1
	}

	// Fact-gathering-only units (stdlib, unmatched deps): the driver
	// still expects the facts file. These packages are outside the
	// module, so empty facts are complete for them.
	if cfg.VetxOnly {
		if cfg.VetxOutput != "" {
			if err := os.WriteFile(cfg.VetxOutput, []byte("[]"), 0o666); err != nil {
				fmt.Fprintf(w, "mplint: %v\n", err)
				return 1
			}
		}
		return 0
	}

	depFacts := readDepFacts(cfg.PackageVetx)

	fset := token.NewFileSet()
	var files []*ast.File
	for _, name := range cfg.GoFiles {
		f, err := parser.ParseFile(fset, name, nil, parser.ParseComments)
		if err != nil {
			if cfg.SucceedOnTypecheckFailure {
				return 0
			}
			fmt.Fprintf(w, "mplint: %v\n", err)
			return 1
		}
		files = append(files, f)
	}

	// Imports resolve through the compiler's export data, looked up via
	// the config's path → file maps exactly as the compiler itself would.
	compiler := cfg.Compiler
	if compiler == "" {
		compiler = "gc"
	}
	lookup := func(path string) (io.ReadCloser, error) {
		if mapped, ok := cfg.ImportMap[path]; ok {
			path = mapped
		}
		file, ok := cfg.PackageFile[path]
		if !ok {
			return nil, fmt.Errorf("no export data for %q", path)
		}
		return os.Open(file)
	}
	conf := types.Config{
		Importer:  importer.ForCompiler(fset, compiler, lookup),
		GoVersion: cfg.GoVersion,
		Sizes:     types.SizesFor(compiler, runtime.GOARCH),
	}
	info := newTypesInfo()
	pkg, err := conf.Check(cfg.ImportPath, fset, files, info)
	if err != nil {
		if cfg.SucceedOnTypecheckFailure {
			return 0
		}
		fmt.Fprintf(w, "mplint: typecheck %s: %v\n", cfg.ImportPath, err)
		return 1
	}

	diags, selfFacts, err := RunPackage(analyzers, fset, files, pkg, info, depFacts, spec)
	if err != nil {
		fmt.Fprintf(w, "mplint: %v\n", err)
		return 1
	}

	if cfg.VetxOutput != "" {
		if err := writeFacts(cfg.VetxOutput, append(depFacts, selfFacts)); err != nil {
			fmt.Fprintf(w, "mplint: %v\n", err)
			return 1
		}
	}
	if len(diags) == 0 {
		return 0
	}
	if dir := os.Getenv("MPLINT_SARIF_DIR"); dir != "" {
		writeSARIFFragment(dir, cfg.ImportPath, analyzers, diags)
	}
	for _, d := range diags {
		fmt.Fprintf(w, "%s: %s [%s]\n", d.Pos, d.Message, d.Analyzer)
	}
	return 2
}

// readDepFacts loads and merges the facts files of the unit's direct
// dependencies. Since every unit re-exports its own dependencies' facts,
// the merge covers the transitive closure. Missing or empty files (a
// stale cache, a non-module dep) degrade to no facts for that package —
// the closure just does not extend there.
func readDepFacts(packageVetx map[string]string) []*PackageFacts {
	paths := make([]string, 0, len(packageVetx))
	for p := range packageVetx {
		paths = append(paths, p)
	}
	sort.Strings(paths)
	byPath := make(map[string]*PackageFacts)
	var order []string
	for _, p := range paths {
		data, err := os.ReadFile(packageVetx[p])
		if err != nil || len(data) == 0 {
			continue
		}
		var facts []*PackageFacts
		if err := json.Unmarshal(data, &facts); err != nil {
			continue
		}
		for _, pf := range facts {
			if pf == nil || pf.Path == "" {
				continue
			}
			if _, ok := byPath[pf.Path]; !ok {
				byPath[pf.Path] = pf
				order = append(order, pf.Path)
			}
		}
	}
	sort.Strings(order)
	out := make([]*PackageFacts, 0, len(order))
	for _, p := range order {
		out = append(out, byPath[p])
	}
	return out
}

// writeFacts serializes a deterministic facts file: sorted by package
// path, deduplicated.
func writeFacts(path string, facts []*PackageFacts) error {
	byPath := make(map[string]*PackageFacts, len(facts))
	var order []string
	for _, pf := range facts {
		if pf == nil {
			continue
		}
		if _, ok := byPath[pf.Path]; !ok {
			byPath[pf.Path] = pf
			order = append(order, pf.Path)
		}
	}
	sort.Strings(order)
	out := make([]*PackageFacts, 0, len(order))
	for _, p := range order {
		out = append(out, byPath[p])
	}
	data, err := json.Marshal(out)
	if err != nil {
		return err
	}
	return os.WriteFile(path, data, 0o666)
}
