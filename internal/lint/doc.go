// Package lint is the project's static-analysis suite (mplint): five
// analyzers that enforce, at review time, the contracts the differential
// and fuzz suites (FuzzEngineAgreement, the spill/parallel matrices, the
// bench determinism gate) otherwise catch only after a nondeterminism or
// soundness bug has already shipped. Each analyzer guards one contract:
//
//   - maporder — the determinism contract. Verdicts, stats and traces
//     must be bit-identical across engines, workers, schedulers and store
//     tiers; a `range` over a map whose iteration order reaches any
//     output breaks that silently. Flagged in the deterministic packages
//     (internal/explore, eval, liveness, por, dpor) unless the loop is an
//     order-free shape (key collection for sorting, keyless counting) or
//     carries `//lint:nondet-ok <reason>`.
//
//   - wallclock — the same contract against the clock: time.Now/Since &
//     friends and math/rand are banned on engine paths, except inside the
//     limiter/limits budget trackers whose output is already masked
//     (Stats.Duration, the Limit verdict's timing-dependent cut point) or
//     under `//lint:wallclock-ok <reason>`.
//
//   - statsmask — the comparison-mask contract. Every explore.Stats
//     field must be classified in internal/eval/compare.go as either
//     compared (DeterministicStatsFields) or masked
//     (VolatileStatsFields); a field in neither list silently escapes
//     both the determinism guarantee and the mask — the exact bug shape
//     the SpillRuns/DiskProbes counters once papered over with
//     hand-maintained zeroing in four test files. No annotation escape:
//     the fix is to classify the field.
//
//   - storecontract — the visited-store probe contract. Store.Has is a
//     hint: wrappers may degrade it and concurrent inserts may race it,
//     so branching on it authoritatively is only sound where the
//     algorithm tolerates stale answers (the BFS queue proviso's level
//     snapshot, speculation memos). Everything else needs
//     `//lint:has-ok <reason>`.
//
//   - deferrederr — the deferred-close convention of the spill tier: a
//     function that returns error must not drop a deferred Close error
//     (`defer f.Close()`); route it through a named return via a closure,
//     or annotate `//lint:closeerr-ok <reason>`.
//
// Every suppression marker requires a reason; a bare annotation is itself
// reported, so `make lint` passing means every exception in the tree is
// explained at its site.
//
// The framework mirrors golang.org/x/tools/go/analysis (Analyzer, Pass,
// diagnostics) but is implemented on the standard library alone, keeping
// the module dependency-free and buildable offline; if the x/tools
// dependency ever lands, the analyzers port over mechanically. Drivers:
// Load (standalone, `go list` + source importer), RunUnitchecker (the
// `go vet -vettool` unit protocol against compiler export data), and
// cmd/mplint, which fronts both. Package linttest runs the
// analysistest-style fixture suites under testdata/.
package lint
