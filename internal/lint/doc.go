// Package lint is the project's static-analysis suite (mplint): nine
// analyzers that enforce, at review time, the contracts the differential
// and fuzz suites (FuzzEngineAgreement, the spill/parallel matrices, the
// bench determinism gate) otherwise catch only after a nondeterminism or
// soundness bug has already shipped.
//
// # The deterministic closure
//
// Most contracts only bind on code that runs under the model-checking
// engines. Early versions scoped them with a package allowlist, which
// both over-approximated (helpers in internal/explore that no engine
// reaches) and under-approximated (a protocol's Clone in
// internal/protocols runs under every engine, but lived outside the
// list). The suite now computes the real thing: BuildFacts extracts a
// per-package call-graph summary — direct calls, calls through named
// interfaces (iface: nodes, resolved against every in-module
// implementation recorded in the facts), and functions assigned into
// func-typed struct fields (field: nodes, the core.Protocol /
// core.Transition callback tables, including literals inside
// package-level table variables) — and EmitClosure resolves the
// transitive closure of the engine entry points over the merged facts
// of a package and its dependencies.
//
// DefaultEntryPoints declares the roots, matched by import-path suffix:
//
//   - functions: the search drivers (internal/explore BFS, DFS,
//     ParallelBFS, ParallelDFS, NDFS, ParallelNDFS), internal/dpor
//     Explore/ExploreWith/ExploreParallel/ExploreParallelWith,
//     internal/liveness.Oracle;
//   - interfaces: internal/explore.Store, internal/explore.Expander,
//     internal/core.LocalState — every method of every in-module
//     implementing type is an entry point and a dispatch target;
//   - callback structs: internal/core.Protocol, internal/core.Transition,
//     internal/liveness.Property, internal/explore.Options — a function
//     assigned into a func-typed field becomes an entry point of the
//     assigning package.
//
// ParseEntryPoints extends the roots from the -entrypoints flag
// (func:pkg.Name | iface:pkg.Name | struct:pkg.Name, bare items meaning
// func:), which both drivers accept and `go vet` forwards.
//
// # The analyzers
//
// Closure-scoped (fire only on functions the engines can reach):
//
//   - maporder — the determinism contract. Verdicts, stats and traces
//     must be bit-identical across engines, workers, schedulers and
//     store tiers; a `range` over a map whose iteration order reaches
//     any output breaks that silently. Order-free shapes (key collection
//     for sorting, keyless counting) are recognized; everything else
//     needs `//lint:nondet-ok <reason>`.
//
//   - wallclock — the same contract against the clock: time.Now/Since &
//     friends and math/rand are banned on engine paths, except inside
//     the limiter/limits budget trackers whose output is already masked,
//     or under `//lint:wallclock-ok <reason>`.
//
//   - ptraddr — the same contract against the allocator: %p (and %v on
//     pointer-to-scalar, chan or func values), uintptr(unsafe.Pointer)
//     conversions, and pointer-keyed maps leak heap addresses — values
//     that differ across runs and hosts — into output or branching, and
//     pointer-keyed maps additionally compare by identity where the
//     engines need value semantics. `//lint:ptraddr-ok <reason>`.
//
//   - selectorder — a select with two or more ready-capable cases picks
//     uniformly at random by language spec; on an engine path that is a
//     scheduling decision the determinism argument must account for.
//     `//lint:select-ok <reason>` records why the choice is
//     outcome-neutral.
//
//   - exhaustive — an expression switch over an in-module named constant
//     type (verdicts, proviso kinds, probe results) must handle every
//     declared constant; `default:` does not count. A new enum value
//     silently falling through is exactly how a soundness hole ships.
//     `//lint:exhaustive-ok <reason>`.
//
//   - lockorder — two sync.Mutex/RWMutex locks acquired in both orders
//     anywhere in a package (interprocedurally, following one level of
//     same-package calls made under a held lock) is a latent deadlock in
//     the parallel engines, as is nested acquisition of two locks of the
//     same class. `//lint:lockorder-ok <reason>`.
//
// Globally scoped:
//
//   - statsmask — every explore.Stats field must be classified in
//     internal/eval/compare.go as compared or masked; a field in neither
//     list escapes both the determinism guarantee and the mask. No
//     annotation escape: the fix is to classify the field.
//
//   - storecontract — Store.Has is a hint (wrappers degrade it,
//     concurrent inserts race it); authoritative branching on it is only
//     sound where the algorithm tolerates stale answers. Still scoped to
//     the deterministic packages by suffix. `//lint:has-ok <reason>`.
//
//   - deferrederr — a function returning error must not drop a deferred
//     Close error. `//lint:closeerr-ok <reason>`.
//
// Every suppression marker requires a reason; a bare annotation is
// itself reported, so `make lint` passing means every exception in the
// tree is explained at its site. Markers stack: the contiguous block of
// //lint: lines directly above a flagged line is searched, which is
// where ApplyFixes (-fix) inserts its idempotent TODO annotations.
//
// # How the closure crosses build-unit boundaries
//
// The two drivers share one mechanism. A closure-scoped analyzer calls
// Pass.ReportfClosure, which records a pending diagnostic (keyed by the
// enclosing function) into the package's facts instead of reporting it.
// The standalone driver (RunModule/RunPackages) holds every package's
// facts at once and resolves each package's closure against its
// transitive dependencies, deduplicating globally. The unitchecker
// driver (RunUnitchecker, the `go vet -vettool` protocol) serializes
// facts through vetx files — each unit re-exports its dependencies'
// facts plus its own — and emits, at each unit that declares entry
// points, the pendings its entries reach over the full view minus what
// the dependencies' own roots already covered over the dependencies'
// view. A driver-equality test pins both modes to identical finding
// sets over a real module.
//
// Known limitations: in vet mode a finding can occasionally print at two
// units when reachability to it materializes independently on parallel
// import paths (benign: `go vet` output, and a clean tree has nothing to
// duplicate); interface dispatch through interfaces outside the entry
// spec is only resolved at units that see both the call and the
// implementation's facts.
//
// # Adding a closure-aware analyzer
//
// Set Closure: true on the Analyzer, report through ReportfClosure, and
// register a suppression marker in suppressionMarker if the contract has
// an escape hatch. When Pass.facts is nil (the ad-hoc RunAnalyzers entry
// point without the facts pipeline), ReportfClosure degrades to an
// unconditional report — a conservative superset, never a silent skip.
//
// The framework mirrors golang.org/x/tools/go/analysis (Analyzer, Pass,
// diagnostics) but is implemented on the standard library alone, keeping
// the module dependency-free and buildable offline; if the x/tools
// dependency ever lands, the analyzers port over mechanically. Drivers:
// Load (standalone, `go list` + source typechecking in dependency
// order), RunUnitchecker (the vet unit protocol against compiler export
// data), and cmd/mplint, which fronts both and additionally emits SARIF
// 2.1.0 (-sarif standalone; MPLINT_SARIF_DIR per-unit fragments merged
// by -merge-sarif in vet mode). Package linttest runs the
// analysistest-style fixture suites under testdata/.
package lint
