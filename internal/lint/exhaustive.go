package lint

import (
	"go/ast"
	"go/constant"
	"go/types"
	"sort"
	"strings"
)

// Exhaustive guards the soundness of verdict plumbing: a switch over a
// closed constant set (explore.Verdict, Sched, the speculation memo's
// put results) that omits a value routes that value through the default
// path — or past the switch entirely — silently. In the deterministic
// closure, every expression switch whose tag is a module-local named
// type with a package-level constant set must either name every value of
// the set in its cases or carry `//lint:exhaustive-ok <reason>`. A
// default clause does not satisfy the analyzer: the point is that adding
// a new constant (a new verdict, a new scheduler) fails the lint run at
// every switch that has not decided what the new value means. Matching
// is by constant value, so aliases (SchedDefault = SchedWorkStealing)
// are covered by either name. Type switches and switches over
// non-module or single-constant types are out of scope.
var Exhaustive = &Analyzer{
	Name:    "exhaustive",
	Doc:     "require switches over closed module-local const sets in the deterministic closure to name every value or carry //lint:exhaustive-ok",
	Run:     runExhaustive,
	Closure: true,
}

func runExhaustive(pass *Pass) error {
	for _, f := range pass.Files {
		if pass.isTestFile(f.Pos()) {
			continue
		}
		ast.Inspect(f, func(n ast.Node) bool {
			sw, ok := n.(*ast.SwitchStmt)
			if !ok || sw.Tag == nil {
				return true
			}
			tv, ok := pass.TypesInfo.Types[sw.Tag]
			if !ok {
				return true
			}
			named, ok := tv.Type.(*types.Named)
			if !ok || named.Obj().Pkg() == nil {
				return true
			}
			if !moduleLocal(named.Obj().Pkg().Path()) {
				return true
			}
			if _, ok := named.Underlying().(*types.Basic); !ok {
				return true
			}
			set := constSet(named, named.Obj().Pkg() == pass.Pkg)
			if len(set) < 2 {
				return true
			}
			covered := make(map[string]bool)
			for _, stmt := range sw.Body.List {
				cc, ok := stmt.(*ast.CaseClause)
				if !ok {
					continue
				}
				for _, e := range cc.List {
					etv, ok := pass.TypesInfo.Types[e]
					if !ok || etv.Value == nil {
						continue
					}
					covered[etv.Value.ExactString()] = true
				}
			}
			var missing []string
			for val, names := range set {
				if !covered[val] {
					missing = append(missing, names[0])
				}
			}
			if len(missing) == 0 {
				return true
			}
			sort.Strings(missing)
			if pass.annotated(sw.Pos(), "exhaustive-ok") {
				return true
			}
			pass.ReportfClosure(sw.Pos(), "switch over %s does not handle %s: a value of a closed const set routed through default (or past the switch) is a silent soundness hole; name every value or annotate //lint:exhaustive-ok <reason>", typeLabel(named), strings.Join(missing, ", "))
			return true
		})
	}
	return nil
}

// constSet collects the package-level constants declared with exactly
// the named type, grouped by value (aliases share an entry). The map is
// value → constant names, names sorted for deterministic diagnostics.
// Outside the type's own package only exported constants count: a
// foreign switch could not name the unexported ones, and the vet
// driver's export data does not even carry them — so both drivers agree.
func constSet(named *types.Named, samePkg bool) map[string][]string {
	set := make(map[string][]string)
	scope := named.Obj().Pkg().Scope()
	for _, name := range scope.Names() {
		c, ok := scope.Lookup(name).(*types.Const)
		if !ok || !types.Identical(c.Type(), named) {
			continue
		}
		if !samePkg && !c.Exported() {
			continue
		}
		if c.Val().Kind() == constant.Unknown {
			continue
		}
		key := c.Val().ExactString()
		set[key] = append(set[key], c.Name())
	}
	for key := range set {
		sort.Strings(set[key])
	}
	return set
}
