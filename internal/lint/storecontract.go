package lint

import (
	"go/ast"
	"go/types"
)

// StoreContract polices the hint-only membership probe of the visited
// stores. `Has(key) bool` is documented as non-authoritative: a store may
// answer without recording (HasStore), a wrapper may degrade to a blanket
// "false" (syncStore over a plain Store), and the spill tier may answer
// from disk state that concurrent inserts are still moving. Branching on
// it to skip an insert, skip an expansion, or shape a verdict is only
// sound at the handful of sites whose surrounding algorithm tolerates
// both stale answers — the BFS queue proviso's level snapshot and the
// parallel engines' speculation memos. Every other call in a
// deterministic package is reported.
//
// Escapes: a method itself named Has (interface delegation is how the
// store wrappers compose), or `//lint:has-ok <reason>` citing why a stale
// or degraded answer stays sound at this site.
var StoreContract = &Analyzer{
	Name: "storecontract",
	Doc:  "flag authoritative use of the hint-only Store.Has probe outside the documented memo/proviso sites",
	Run:  runStoreContract,
}

func runStoreContract(pass *Pass) error {
	if !DeterministicPkg(pass.Pkg.Path()) {
		return nil
	}
	for _, f := range pass.Files {
		if pass.isTestFile(f.Pos()) {
			continue
		}
		for _, decl := range f.Decls {
			fd, ok := decl.(*ast.FuncDecl)
			if !ok {
				continue
			}
			if fd.Name.Name == "Has" {
				continue // delegation: a Has implementation may consult inner Has
			}
			ast.Inspect(fd, func(n ast.Node) bool {
				call, ok := n.(*ast.CallExpr)
				if !ok {
					return true
				}
				sel, ok := call.Fun.(*ast.SelectorExpr)
				if !ok || sel.Sel.Name != "Has" {
					return true
				}
				if !isHasProbe(pass, sel) {
					return true
				}
				if pass.annotated(call.Pos(), "has-ok") {
					return true
				}
				pass.Reportf(call.Pos(), "Store.Has is a hint-only membership probe (wrappers may degrade it, concurrent inserts may race it); do not use it authoritatively — use Seen, or annotate //lint:has-ok <reason> if stale answers stay sound here")
				return true
			})
		}
	}
	return nil
}

// isHasProbe reports whether sel resolves to a method Has(string) bool —
// the visited-store probe signature.
func isHasProbe(pass *Pass, sel *ast.SelectorExpr) bool {
	obj := pass.TypesInfo.Uses[sel.Sel]
	if obj == nil {
		return false
	}
	sig, ok := obj.Type().(*types.Signature)
	if !ok || sig.Recv() == nil {
		return false
	}
	if sig.Params().Len() != 1 || sig.Results().Len() != 1 {
		return false
	}
	p, okP := sig.Params().At(0).Type().(*types.Basic)
	r, okR := sig.Results().At(0).Type().(*types.Basic)
	return okP && okR && p.Kind() == types.String && r.Kind() == types.Bool
}
