package lint

import (
	"go/ast"
	"path/filepath"
	"strings"
)

// DocCheck enforces the documentation layer the package matrix depends on:
// every internal package must carry its contract in a doc.go package
// comment (which engines or stores it feeds, what determinism promise it
// makes), and the engine/store packages — internal/explore and
// internal/dpor, whose exported identifiers ARE the public matrix — must
// document every exported identifier. Twelve internal packages, six
// engines and four store tiers are navigable only if each package states
// its place; a package whose contract lives in a reviewer's memory is
// exactly how the README's store section fell behind NDFS and parallel
// DPOR.
//
// The package-comment check wants a file literally named doc.go: package
// comments attached to an arbitrary source file migrate or vanish when
// that file is split, and godoc readers (and this repo's satellite
// tooling) look for doc.go first. The identifier check accepts a doc
// comment on the declaration or its group; `//lint:doc-ok reason`
// suppresses it for identifiers that are deliberately self-explanatory.
// Test files, external _test package variants, testdata fixtures and
// package main are exempt.
var DocCheck = &Analyzer{
	Name: "doccheck",
	Doc:  "internal packages must have a doc.go package comment; exported engine/store identifiers must have doc comments",
	Run:  runDocCheck,
}

// engineStorePkg reports whether path names one of the engine/store
// packages held to the per-identifier documentation rule. Suffix matching
// for the same reason as deterministicPkgSuffixes: the linttest fixtures
// reproduce the layout without the module prefix.
func engineStorePkg(path string) bool {
	for _, suf := range []string{"internal/explore", "internal/dpor"} {
		if path == suf || strings.HasSuffix(path, "/"+suf) {
			return true
		}
	}
	return false
}

// exportedRecv reports whether a method receiver names an exported type
// (unwrapping pointers and type-parameter instantiations).
func exportedRecv(recv *ast.FieldList) bool {
	if len(recv.List) == 0 {
		return false
	}
	t := recv.List[0].Type
	for {
		switch x := t.(type) {
		case *ast.StarExpr:
			t = x.X
		case *ast.IndexExpr:
			t = x.X
		case *ast.IndexListExpr:
			t = x.X
		case *ast.Ident:
			return x.IsExported()
		default:
			return false
		}
	}
}

// internalPkg reports whether the import path has an "internal" segment —
// the scope of the doc.go rule.
func internalPkg(path string) bool {
	for _, seg := range strings.Split(path, "/") {
		if seg == "internal" {
			return true
		}
	}
	return false
}

func runDocCheck(pass *Pass) error {
	path := pass.Pkg.Path()
	if !internalPkg(path) || strings.Contains(path, "testdata") {
		return nil
	}
	if pass.Pkg.Name() == "main" || strings.HasSuffix(pass.Pkg.Name(), "_test") {
		return nil
	}

	// The doc.go rule: some file named doc.go must carry the package
	// comment. Report on the lexically-first non-test file's package
	// clause, the stable anchor a reader would look at first.
	var anchor *ast.File
	anchorName := ""
	hasDocGo := false
	for _, f := range pass.Files {
		if pass.isTestFile(f.Pos()) {
			continue
		}
		name := filepath.Base(pass.Fset.Position(f.Pos()).Filename)
		if anchor == nil || name < anchorName {
			anchor, anchorName = f, name
		}
		if name == "doc.go" && f.Doc != nil {
			hasDocGo = true
		}
	}
	if anchor == nil {
		return nil // external-test variants and empty units have no contract to anchor
	}
	if !hasDocGo {
		pass.Reportf(anchor.Name.Pos(), "internal package %s has no doc.go package comment: state the package's determinism contract and its place in the engine/store matrix", pass.Pkg.Name())
	}

	if !engineStorePkg(path) {
		return nil
	}
	for _, f := range pass.Files {
		if pass.isTestFile(f.Pos()) {
			continue
		}
		for _, decl := range f.Decls {
			switch d := decl.(type) {
			case *ast.FuncDecl:
				if !d.Name.IsExported() || pass.annotated(d.Pos(), "doc-ok") || d.Doc != nil {
					continue
				}
				kind := "function"
				if d.Recv != nil {
					// A method is API only if its receiver type is: an
					// exported Close on an unexported helper struct needs no
					// godoc entry.
					if !exportedRecv(d.Recv) {
						continue
					}
					kind = "method"
				}
				pass.Reportf(d.Name.Pos(), "exported %s %s of engine/store package %s has no doc comment", kind, d.Name.Name, pass.Pkg.Name())
			case *ast.GenDecl:
				for _, spec := range d.Specs {
					switch s := spec.(type) {
					case *ast.TypeSpec:
						if !s.Name.IsExported() || pass.annotated(s.Pos(), "doc-ok") || d.Doc != nil || s.Doc != nil {
							continue
						}
						pass.Reportf(s.Name.Pos(), "exported type %s of engine/store package %s has no doc comment", s.Name.Name, pass.Pkg.Name())
					case *ast.ValueSpec:
						if pass.annotated(s.Pos(), "doc-ok") || d.Doc != nil || s.Doc != nil {
							continue
						}
						for _, name := range s.Names {
							if !name.IsExported() {
								continue
							}
							pass.Reportf(name.Pos(), "exported identifier %s of engine/store package %s has no doc comment", name.Name, pass.Pkg.Name())
							break
						}
					}
				}
			}
		}
	}
	return nil
}
