package lint

import (
	"bytes"
	"encoding/json"
	"fmt"
	"go/ast"
	"go/importer"
	"go/parser"
	"go/token"
	"go/types"
	"io"
	"os/exec"
	"path/filepath"
)

// Package is one loaded, typechecked package ready for analysis.
type Package struct {
	Fset      *token.FileSet
	Files     []*ast.File
	Pkg       *types.Package
	TypesInfo *types.Info
}

// listedPkg is the subset of `go list -json` output the loader needs.
type listedPkg struct {
	ImportPath string
	Dir        string
	Name       string
	GoFiles    []string
}

// Load resolves patterns (./..., import paths) with `go list` from dir
// and typechecks every matched package from source. Dependencies are
// typechecked through the standard library's source importer, so loading
// works offline in a dependency-free module — the trade is speed, which
// is acceptable for a lint pass over one module. Test files are not
// loaded; the analyzers exempt them anyway.
func Load(dir string, patterns ...string) ([]*Package, error) {
	args := append([]string{"list", "-json=ImportPath,Dir,Name,GoFiles"}, patterns...)
	cmd := exec.Command("go", args...)
	cmd.Dir = dir
	var stdout, stderr bytes.Buffer
	cmd.Stdout = &stdout
	cmd.Stderr = &stderr
	if err := cmd.Run(); err != nil {
		return nil, fmt.Errorf("go list %v: %v\n%s", patterns, err, stderr.Bytes())
	}

	fset := token.NewFileSet()
	// One shared source importer: it memoizes the dependency packages it
	// typechecks, so the module's internal import graph is built once.
	imp := importer.ForCompiler(fset, "source", nil)

	var pkgs []*Package
	dec := json.NewDecoder(&stdout)
	for {
		var lp listedPkg
		if err := dec.Decode(&lp); err == io.EOF {
			break
		} else if err != nil {
			return nil, fmt.Errorf("go list output: %w", err)
		}
		if len(lp.GoFiles) == 0 {
			continue
		}
		var files []*ast.File
		for _, name := range lp.GoFiles {
			f, err := parser.ParseFile(fset, filepath.Join(lp.Dir, name), nil, parser.ParseComments)
			if err != nil {
				return nil, err
			}
			files = append(files, f)
		}
		info := newTypesInfo()
		conf := types.Config{Importer: imp}
		pkg, err := conf.Check(lp.ImportPath, fset, files, info)
		if err != nil {
			return nil, fmt.Errorf("typecheck %s: %w", lp.ImportPath, err)
		}
		pkgs = append(pkgs, &Package{Fset: fset, Files: files, Pkg: pkg, TypesInfo: info})
	}
	return pkgs, nil
}

func newTypesInfo() *types.Info {
	return &types.Info{
		Types:      make(map[ast.Expr]types.TypeAndValue),
		Defs:       make(map[*ast.Ident]types.Object),
		Uses:       make(map[*ast.Ident]types.Object),
		Implicits:  make(map[ast.Node]types.Object),
		Selections: make(map[*ast.SelectorExpr]*types.Selection),
		Scopes:     make(map[ast.Node]*types.Scope),
	}
}
