package lint

import (
	"bytes"
	"encoding/json"
	"fmt"
	"go/ast"
	"go/importer"
	"go/parser"
	"go/token"
	"go/types"
	"io"
	"os/exec"
	"path/filepath"
	"sort"
)

// Package is one loaded, typechecked package ready for analysis.
type Package struct {
	Fset      *token.FileSet
	Files     []*ast.File
	Pkg       *types.Package
	TypesInfo *types.Info
}

// listedPkg is the subset of `go list -json` output the loader needs.
type listedPkg struct {
	ImportPath string
	Dir        string
	Name       string
	GoFiles    []string
	Imports    []string
}

// moduleImporter serves imports from the set of packages Load has
// already typechecked and delegates everything else (in practice: the
// standard library) to the source importer. Serving intra-module imports
// ourselves keeps type identity consistent across the loaded set — the
// closure engine's types.Implements checks compare named types across
// packages — and makes Load independent of the process working
// directory, so the standalone driver can lint any module, not just the
// one it was started in.
type moduleImporter struct {
	loaded   map[string]*types.Package
	fallback types.ImporterFrom
}

func (m *moduleImporter) Import(path string) (*types.Package, error) {
	return m.ImportFrom(path, "", 0)
}

func (m *moduleImporter) ImportFrom(path, dir string, mode types.ImportMode) (*types.Package, error) {
	if p, ok := m.loaded[path]; ok {
		return p, nil
	}
	return m.fallback.ImportFrom(path, dir, mode)
}

// Load resolves patterns (./..., import paths) with `go list` from dir
// and typechecks every matched package from source, in dependency order
// so each package's intra-module imports are already in hand. Standard
// library dependencies go through the source importer, so loading works
// offline in a dependency-free module — the trade is speed, which is
// acceptable for a lint pass over one module. Test files are not loaded;
// the analyzers exempt them anyway.
func Load(dir string, patterns ...string) ([]*Package, error) {
	args := append([]string{"list", "-json=ImportPath,Dir,Name,GoFiles,Imports"}, patterns...)
	cmd := exec.Command("go", args...)
	cmd.Dir = dir
	var stdout, stderr bytes.Buffer
	cmd.Stdout = &stdout
	cmd.Stderr = &stderr
	if err := cmd.Run(); err != nil {
		return nil, fmt.Errorf("go list %v: %v\n%s", patterns, err, stderr.Bytes())
	}

	var listed []*listedPkg
	byPath := make(map[string]*listedPkg)
	dec := json.NewDecoder(&stdout)
	for {
		var lp listedPkg
		if err := dec.Decode(&lp); err == io.EOF {
			break
		} else if err != nil {
			return nil, fmt.Errorf("go list output: %w", err)
		}
		if len(lp.GoFiles) == 0 {
			continue
		}
		p := lp
		listed = append(listed, &p)
		byPath[p.ImportPath] = &p
	}

	// Topological order over the intra-set import edges: `go list` emits
	// alphabetically, which is not dependency order (cmd/* sorts before
	// the internal/* packages it imports).
	visited := make(map[string]bool, len(listed))
	var order []*listedPkg
	var visit func(lp *listedPkg)
	visit = func(lp *listedPkg) {
		if visited[lp.ImportPath] {
			return
		}
		visited[lp.ImportPath] = true
		for _, imp := range lp.Imports {
			if dep, ok := byPath[imp]; ok {
				visit(dep)
			}
		}
		order = append(order, lp)
	}
	for _, lp := range listed {
		visit(lp)
	}

	fset := token.NewFileSet()
	imp := &moduleImporter{
		loaded:   make(map[string]*types.Package, len(order)),
		fallback: importer.ForCompiler(fset, "source", nil).(types.ImporterFrom),
	}

	pkgByPath := make(map[string]*Package, len(order))
	for _, lp := range order {
		var files []*ast.File
		for _, name := range lp.GoFiles {
			f, err := parser.ParseFile(fset, filepath.Join(lp.Dir, name), nil, parser.ParseComments)
			if err != nil {
				return nil, err
			}
			files = append(files, f)
		}
		info := newTypesInfo()
		conf := types.Config{Importer: imp}
		pkg, err := conf.Check(lp.ImportPath, fset, files, info)
		if err != nil {
			return nil, fmt.Errorf("typecheck %s: %w", lp.ImportPath, err)
		}
		imp.loaded[lp.ImportPath] = pkg
		pkgByPath[lp.ImportPath] = &Package{Fset: fset, Files: files, Pkg: pkg, TypesInfo: info}
	}

	// Return in the stable `go list` order, not the topological one.
	pkgs := make([]*Package, 0, len(listed))
	for _, lp := range listed {
		pkgs = append(pkgs, pkgByPath[lp.ImportPath])
	}
	return pkgs, nil
}

// RunModule is the standalone driver's pipeline: load every package
// matched by patterns, build the call-graph facts of all of them, run
// the analyzer suite (closure-scoped findings accumulate as pending
// facts), then resolve the deterministic closure per package against the
// facts of its transitive dependencies and emit what it reaches. Because
// every loaded package's facts are in hand at once, the result is
// deduplicated globally — the in-process equivalent of the vetx facts
// channel the unitchecker driver uses.
func RunModule(dir string, patterns []string, analyzers []*Analyzer, spec *EntryPoints) ([]Diagnostic, error) {
	pkgs, err := Load(dir, patterns...)
	if err != nil {
		return nil, err
	}
	return RunPackages(analyzers, pkgs, spec)
}

// RunPackages runs the closure-aware pipeline over an already-loaded set
// of packages sharing one FileSet; the linttest fixture harness uses it
// directly with its hermetic importer.
func RunPackages(analyzers []*Analyzer, pkgs []*Package, spec *EntryPoints) ([]Diagnostic, error) {
	if spec == nil {
		spec = DefaultEntryPoints()
	}
	factsByPath := make(map[string]*PackageFacts, len(pkgs))
	indexByPath := make(map[string]*funcIndex, len(pkgs))
	for _, p := range pkgs {
		facts, index := BuildFacts(p.Fset, p.Files, p.Pkg, p.TypesInfo, spec)
		factsByPath[p.Pkg.Path()] = facts
		indexByPath[p.Pkg.Path()] = index
	}
	var diags []Diagnostic
	for _, p := range pkgs {
		ds, _, err := runPass(analyzers, p.Fset, p.Files, p.Pkg, p.TypesInfo,
			factsByPath[p.Pkg.Path()], indexByPath[p.Pkg.Path()])
		if err != nil {
			return nil, err
		}
		diags = append(diags, ds...)
	}
	// All pending facts are recorded; now resolve each package's closure
	// against its transitive dependencies (restricted to the loaded set —
	// `make lint` loads ./..., so that is the whole module).
	for _, p := range pkgs {
		var deps []*PackageFacts
		for _, path := range transitiveImports(p.Pkg) {
			if pf, ok := factsByPath[path]; ok {
				deps = append(deps, pf)
			}
		}
		diags = append(diags, EmitClosure(factsByPath[p.Pkg.Path()], deps)...)
	}
	return dedupDiags(diags), nil
}

// transitiveImports returns the import paths of pkg's transitive
// dependency closure, sorted.
func transitiveImports(pkg *types.Package) []string {
	seen := make(map[string]bool)
	var visit func(p *types.Package)
	visit = func(p *types.Package) {
		for _, imp := range p.Imports() {
			if !seen[imp.Path()] {
				seen[imp.Path()] = true
				visit(imp)
			}
		}
	}
	visit(pkg)
	out := make([]string, 0, len(seen))
	for p := range seen {
		out = append(out, p)
	}
	sort.Strings(out)
	return out
}

func newTypesInfo() *types.Info {
	return &types.Info{
		Types:      make(map[ast.Expr]types.TypeAndValue),
		Defs:       make(map[*ast.Ident]types.Object),
		Uses:       make(map[*ast.Ident]types.Object),
		Implicits:  make(map[ast.Node]types.Object),
		Selections: make(map[*ast.SelectorExpr]*types.Selection),
		Scopes:     make(map[ast.Node]*types.Scope),
	}
}
