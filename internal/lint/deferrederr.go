package lint

import (
	"go/ast"
	"go/types"
)

// DeferredErr enforces the deferred-close convention the spill tier
// established: a function that can fail and also defers a Close whose
// error it drops (`defer f.Close()`) silently swallows the failure mode
// that matters most for the disk-backed stores — a close that flushes or
// releases run files. Such functions must route the close error through a
// named error return:
//
//	func run() (err error) {
//		...
//		defer func() {
//			if cerr := f.Close(); err == nil {
//				err = cerr
//			}
//		}()
//
// The analyzer reports a plain `defer x.Close()` when Close returns an
// error and the enclosing function has an error result to route it into.
// Deliberate drops — an idempotent backstop close whose error another
// path already routes, a read-only file — are annotated
// `//lint:closeerr-ok <reason>`. Functions without an error result are
// not reported: they have nowhere to route the error, and wrapping them
// is a design change the analyzer cannot make for you.
var DeferredErr = &Analyzer{
	Name: "deferrederr",
	Doc:  "flag `defer x.Close()` that drops the close error in functions that return error; route it through a named return or annotate //lint:closeerr-ok",
	Run:  runDeferredErr,
}

func runDeferredErr(pass *Pass) error {
	for _, f := range pass.Files {
		if pass.isTestFile(f.Pos()) {
			continue
		}
		ast.Inspect(f, func(n ast.Node) bool {
			fn, body := enclosingFunc(n)
			if body == nil {
				return true
			}
			if !returnsError(pass, fn) {
				return true
			}
			ast.Inspect(body, func(m ast.Node) bool {
				if _, isLit := m.(*ast.FuncLit); isLit {
					return false // a nested literal is its own scope, visited by the outer walk
				}
				def, ok := m.(*ast.DeferStmt)
				if !ok {
					return true
				}
				sel, ok := def.Call.Fun.(*ast.SelectorExpr)
				if !ok || sel.Sel.Name != "Close" || !closeReturnsError(pass, sel) {
					return true
				}
				if pass.annotated(def.Pos(), "closeerr-ok") {
					return true
				}
				pass.Reportf(def.Pos(), "deferred Close drops its error in a function that returns error; route it through a named return (defer func() { if cerr := x.Close(); err == nil { err = cerr } }()) or annotate //lint:closeerr-ok <reason>")
				return true
			})
			return true
		})
	}
	return nil
}

// enclosingFunc returns the node's function signature-ish info when n is
// a function declaration or literal, else nils.
func enclosingFunc(n ast.Node) (ast.Node, *ast.BlockStmt) {
	switch n := n.(type) {
	case *ast.FuncDecl:
		return n, n.Body
	case *ast.FuncLit:
		return n, n.Body
	}
	return nil, nil
}

// returnsError reports whether the function node has at least one result
// of type error.
func returnsError(pass *Pass, fn ast.Node) bool {
	var ft *ast.FuncType
	switch fn := fn.(type) {
	case *ast.FuncDecl:
		ft = fn.Type
	case *ast.FuncLit:
		ft = fn.Type
	}
	if ft == nil || ft.Results == nil {
		return false
	}
	for _, field := range ft.Results.List {
		if tv, ok := pass.TypesInfo.Types[field.Type]; ok && types.Identical(tv.Type, errorType) {
			return true
		}
	}
	return false
}

// closeReturnsError reports whether sel resolves to a Close method (or
// function value) whose sole result is an error.
func closeReturnsError(pass *Pass, sel *ast.SelectorExpr) bool {
	obj := pass.TypesInfo.Uses[sel.Sel]
	if obj == nil {
		return false
	}
	sig, ok := obj.Type().(*types.Signature)
	if !ok {
		return false
	}
	return sig.Results().Len() == 1 && types.Identical(sig.Results().At(0).Type(), errorType)
}

var errorType = types.Universe.Lookup("error").Type()
