package explore

// BFS is an engine entry point reaching every helper except coldDrain.
func BFS(work, steal chan int, done chan struct{}) {
	race(work, steal)
	single(work)
	merged(work, steal)
	withDefault(work, done)
}

// flagged: two ready cases are picked pseudo-randomly.
func race(work, steal chan int) int {
	select { // want `select with 2 cases on a deterministic engine path`
	case v := <-work:
		return v
	case v := <-steal:
		return v
	}
}

// allowed: a single-case select is deterministic.
func single(work chan int) int {
	select {
	case v := <-work:
		return v
	}
}

// allowed: annotated with a reason.
func merged(work, steal chan int) int {
	//lint:select-ok both arms fold into a commutative merge; order cannot reach a verdict
	select {
	case v := <-work:
		return v
	case v := <-steal:
		return v
	}
}

// flagged: a default clause still makes the choice load-dependent.
func withDefault(work chan int, done chan struct{}) bool {
	select { // want `select with 2 cases on a deterministic engine path`
	case <-done:
		return true
	default:
		return false
	}
}

// unreached: identical to race, but outside the closure.
func coldDrain(a, b chan int) int {
	select {
	case v := <-a:
		return v
	case v := <-b:
		return v
	}
}
