package explore

// Store mirrors the visited-store shape: Seen records, Has only probes.
type Store struct{ m map[string]struct{} }

func (s *Store) Seen(key string) bool {
	if _, ok := s.m[key]; ok {
		return true
	}
	if s.m == nil {
		s.m = make(map[string]struct{})
	}
	s.m[key] = struct{}{}
	return false
}

func (s *Store) Has(key string) bool {
	_, ok := s.m[key]
	return ok
}

// wrapper degrades Has — exactly why callers must not trust it.
type wrapper struct{ inner *Store }

// allowed: a Has implementation delegating to an inner Has.
func (w *wrapper) Has(key string) bool {
	if w.inner == nil {
		return false
	}
	return w.inner.Has(key)
}

// flagged: branching on the hint to skip the authoritative insert.
func skipInsert(s *Store, key string) {
	if s.Has(key) { // want `hint-only membership probe`
		return
	}
	s.Seen(key)
}

// allowed: annotated memo site — staleness costs duplicated work only.
func speculate(s *Store, key string) bool {
	//lint:has-ok speculation memo: a stale answer re-explores a subtree, it never shapes a verdict
	return s.Has(key)
}

// not flagged: a different Has signature is not the store probe.
type bitset struct{}

func (bitset) Has(i int) bool { return i == 0 }

func probeBits(b bitset) bool { return b.Has(3) }
