package explore

// Verdict mirrors the real tree's closed verdict set.
type Verdict int

const (
	VerdictVerified Verdict = iota + 1
	VerdictViolated
	VerdictLimit
)

// Sched has an alias value: naming either constant covers the shared
// value.
type Sched int

const (
	SchedWorkStealing Sched = iota
	SchedSingleIndex
	SchedDefault = SchedWorkStealing
)

// BFS is an engine entry point reaching every helper except coldLabel.
func BFS(v Verdict, s Sched) {
	_ = partial(v)
	_ = full(v)
	_ = annotated(v)
	_ = aliased(s)
	_ = plainInt(int(v))
}

// flagged: VerdictLimit is routed through default silently.
func partial(v Verdict) string {
	switch v { // want `switch over explore.Verdict does not handle VerdictLimit`
	case VerdictVerified:
		return "verified"
	case VerdictViolated:
		return "violated"
	default:
		return "?"
	}
}

// allowed: every value named.
func full(v Verdict) string {
	switch v {
	case VerdictVerified:
		return "verified"
	case VerdictViolated:
		return "violated"
	case VerdictLimit:
		return "limit"
	}
	return "?"
}

// allowed: annotated with a reason.
func annotated(v Verdict) bool {
	//lint:exhaustive-ok only the violated verdict matters here; everything else is a pass-through
	switch v {
	case VerdictViolated:
		return true
	}
	return false
}

// allowed: SchedDefault aliases SchedWorkStealing, so naming the alias
// covers the value; matching is by constant value, not name.
func aliased(s Sched) bool {
	switch s {
	case SchedDefault:
		return true
	case SchedSingleIndex:
		return false
	}
	return false
}

// allowed: a switch over a plain int has no closed const set.
func plainInt(n int) bool {
	switch n {
	case 1:
		return true
	}
	return false
}

// unreached: identical to partial, but outside the closure.
func coldLabel(v Verdict) string {
	switch v {
	case VerdictVerified:
		return "verified"
	}
	return "?"
}
