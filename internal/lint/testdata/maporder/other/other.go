// Package other is outside the deterministic set: the same shape that is
// flagged in internal/explore passes untouched here.
package other

func appendValues(m map[string]int) []int {
	var out []int
	for _, v := range m {
		out = append(out, v)
	}
	return out
}
