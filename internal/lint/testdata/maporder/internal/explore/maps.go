package explore

import "sort"

// flagged: the iteration order reaches the returned slice.
func appendValues(m map[string]int) []int {
	var out []int
	for _, v := range m { // want `range over map`
		out = append(out, v)
	}
	return out
}

// flagged: key and value both bound, order reaches the output.
func pairs(m map[string]int) []string {
	var out []string
	for k, v := range m { // want `range over map`
		_ = v
		out = append(out, k)
	}
	return out
}

// allowed: the canonical sort-the-keys prelude.
func sortedKeys(m map[string]int) []string {
	var keys []string
	for k := range m {
		keys = append(keys, k)
	}
	sort.Strings(keys)
	return keys
}

// allowed: keyless counting observes no element.
func count(m map[string]int) int {
	n := 0
	for range m {
		n++
	}
	return n
}

// allowed: annotated with a reason.
func unionInto(dst, src map[string]bool) {
	//lint:nondet-ok order-free set union: insertion commutes
	for k := range src {
		dst[k] = true
	}
}

// an annotation without a reason suppresses nothing and is itself
// reported at the comment.
func unexplained(m map[string]int) {
	/* want `needs a reason` */ //lint:nondet-ok
	for k := range m {
		delete(m, k)
	}
}

// allowed: ranging over a slice is ordered.
func slices(s []int) int {
	t := 0
	for _, v := range s {
		t += v
	}
	return t
}
