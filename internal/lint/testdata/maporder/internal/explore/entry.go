package explore

// BFS is an engine entry point under the default spec
// (internal/explore.BFS): every site this fixture expects to be flagged
// must be reachable from here — maporder is closure-scoped, not
// package-scoped.
func BFS() {
	m := map[string]int{"a": 1}
	_ = appendValues(m)
	_ = pairs(m)
	_ = sortedKeys(m)
	_ = count(m)
	unionInto(map[string]bool{}, map[string]bool{})
	unexplained(m)
	_ = sortedPids(map[uint32]bool{1: true})
	_ = slices(nil)
}

// allowed: the key-collection prelude with a conversion — the appended
// value is a single-argument conversion of the key, the shape the real
// tree's pid collectors use.
func sortedPids(m map[uint32]bool) []int {
	var keys []int
	for k := range m {
		keys = append(keys, int(k))
	}
	return keys
}

// unreached: the same shape appendValues is flagged for, but no entry
// point reaches this function, so the closure leaves it alone.
func unreachedValues(m map[string]int) []int {
	var out []int
	for _, v := range m {
		out = append(out, v)
	}
	return out
}
