// Package sort is a minimal stand-in so the fixture's sort-the-keys
// idiom typechecks hermetically.
package sort

func Strings(s []string) {}
