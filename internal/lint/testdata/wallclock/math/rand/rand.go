// Package rand is a minimal stand-in for math/rand; the wallclock
// analyzer bans the import by path.
package rand

func Int() int { return 4 }
