package explore

import "time"

// BFS is an engine entry point under the default spec: the flagged
// clock reads are reachable from here, and the rand.go import finding is
// package-scoped — it fires because this package has functions in the
// closure.
func BFS() time.Duration {
	l := newLimiter(5)
	_ = l.timeExceeded()
	t := stamp()
	_ = age(t)
	_ = logStamp()
	_ = draw()
	return l.elapsed()
}

// unreached: a bare clock read no entry point reaches — closure scoping
// leaves it unflagged.
func coldStamp() time.Time {
	return time.Now()
}
