package explore

import "time"

// limiter mirrors the engines' budget tracker: its methods and
// constructor are on the built-in allowlist, because their clock reads
// surface only through the masked Duration counter and the Limit
// verdict's timing-dependent cut point.
type limiter struct {
	start    time.Time
	deadline time.Time
}

func newLimiter(budget time.Duration) *limiter {
	l := &limiter{start: time.Now()} // allowed: constructor on the allowlist
	l.deadline = l.start.Add(budget)
	return l
}

func (l *limiter) timeExceeded() bool {
	return time.Now().After(l.deadline) // allowed: limiter method
}

func (l *limiter) elapsed() time.Duration {
	poll := func() time.Duration { return time.Since(l.start) } // allowed: literal inherits the method's allowance
	return poll()
}

// flagged: a clock read on an engine path outside the limiter.
func stamp() time.Time {
	return time.Now() // want `time.Now on a deterministic engine path`
}

// flagged: Since leaks the clock the same way.
func age(t time.Time) time.Duration {
	return time.Since(t) // want `time.Since on a deterministic engine path`
}

// allowed: annotated with a reason.
func logStamp() time.Time {
	return time.Now() //lint:wallclock-ok progress logging only; never reaches a verdict, stat or trace
}
