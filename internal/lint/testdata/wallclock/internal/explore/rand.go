package explore

import "math/rand" // want `import of math/rand`

func draw() int { return rand.Int() }
