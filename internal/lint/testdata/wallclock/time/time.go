// Package time is a minimal stand-in for the standard library's time
// package: the wallclock analyzer matches by package path, so the fixture
// ships its own to stay hermetic.
package time

type Time struct{ ns int64 }

type Duration int64

func Now() Time { return Time{} }

func Since(t Time) Duration { return 0 }

func (t Time) Add(d Duration) Time { return t }

func (t Time) After(u Time) bool { return t.ns > u.ns }
