// Package other is outside the deterministic set: wall-clock reads are
// unconstrained here (CLIs report progress, benchmarks time themselves).
package other

import "time"

func stamp() time.Time { return time.Now() }
