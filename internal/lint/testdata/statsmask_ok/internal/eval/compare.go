package eval

import "internal/explore"

var _ = explore.Stats{}

var DeterministicStatsFields = []string{
	"States",
	"Events",
}

var VolatileStatsFields = []string{
	"Duration",
}
