// The negative fixture: every Stats field classified exactly once.
package explore

type Stats struct {
	States   int
	Events   int
	Duration int64
}
