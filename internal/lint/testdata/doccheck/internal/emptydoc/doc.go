package emptydoc // want `internal package emptydoc has no doc.go package comment`
