// Package explore is the fixture engine/store package: every exported
// identifier here must carry a doc comment.
package explore
