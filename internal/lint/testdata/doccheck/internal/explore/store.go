package explore

// Good is a documented store type.
type Good struct{}

type Bad struct{} // want `exported type Bad of engine/store package explore has no doc comment`

func Missing() {} // want `exported function Missing of engine/store package explore has no doc comment`

// Run is documented.
func Run() {}

func (Good) Probe() {} // want `exported method Probe of engine/store package explore has no doc comment`

func internalHelper() {}

var Budget = 64 //lint:doc-ok sized and explained by the constructor's doc comment

var Floor = 8 // want `exported identifier Floor of engine/store package explore has no doc comment`

var Probe2 = 1 /* want `needs a reason` */ //lint:doc-ok

// Grouped declarations are covered by the group doc.
const (
	KMax = 16
	KMin = 1
)
