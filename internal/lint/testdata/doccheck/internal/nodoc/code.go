package nodoc // want `internal package nodoc has no doc.go package comment`

func helper() {}
