// Package gooddoc states its contract here: pure helpers with no engine
// or store role, so only the doc.go rule applies.
package gooddoc
