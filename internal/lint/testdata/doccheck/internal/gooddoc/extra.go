package gooddoc

// Exported is documented, though gooddoc is not an engine/store package,
// so the identifier rule would not apply regardless.
func Exported() {}

func AlsoExported() {}
