package plain

// Not under internal/: the doc.go rule does not apply.
func Helper() {}
