// Package explore is a minimal stand-in for the real explore package:
// statsmask needs only the Stats struct.
package explore

type Stats struct {
	States   int
	Events   int
	Duration int64
	Mystery  int // added without classifying — the bug statsmask exists for
}
