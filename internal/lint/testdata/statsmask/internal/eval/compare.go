package eval

import "internal/explore"

var _ = explore.Stats{}

var DeterministicStatsFields = []string{ // want `explore.Stats field "Mystery" is neither compared`
	"States",
	"Events",
	"Bogus", // want `not a field of explore.Stats`
}

var VolatileStatsFields = []string{
	"Duration",
	"Events", // want `listed as both deterministic and volatile`
}
