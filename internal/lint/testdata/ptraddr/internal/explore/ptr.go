package explore

import (
	"fmt"
	"unsafe"
)

type node struct{ id int }

// BFS is an engine entry point: the closure reaches every helper below
// except coldPath.
func BFS() {
	n := &node{id: 1}
	_ = renderP(n)
	_ = renderV(n)
	_ = launder(n)
	_ = printAll(n)
	_ = keyed()
	_ = renderValue(n)
	_ = annotated(n)
}

// flagged: %p is the address itself.
func renderP(n *node) string {
	return fmt.Sprintf("node@%p", n) // want `%p formats a heap address`
}

// flagged: %v on a pointer to a scalar renders the address too.
func renderV(n *node) string {
	p := &n.id
	return fmt.Sprintf("id=%v", p) // want `renders \*int as its address`
}

// flagged: the canonical address-laundering conversion.
func launder(n *node) uintptr {
	return uintptr(unsafe.Pointer(n)) // want `turns a heap address into an ordinary integer`
}

// flagged: non-formatting print of a pointer-ish value.
func printAll(n *node) string {
	c := make(chan int)
	return fmt.Sprint(c) // want `renders chan int as its address`
}

// flagged: a map keyed by pointer identity.
func keyed() int {
	seen := map[*node]bool{} // want `map keyed by \*explore.node compares by pointer identity`
	return len(seen)
}

// allowed: %v on a pointer to a struct prints the dereferenced value.
func renderValue(n *node) string {
	return fmt.Sprintf("%v", n)
}

// allowed: annotated with a reason.
func annotated(n *node) string {
	//lint:ptraddr-ok debug-only rendering stripped before verdict comparison
	return fmt.Sprintf("%p", n)
}

// unreached: identical to renderP, but outside the closure.
func coldPath(n *node) string {
	return fmt.Sprintf("%p", n)
}
