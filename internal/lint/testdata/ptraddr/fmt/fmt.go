// Package fmt is a minimal stand-in for the standard library's fmt: the
// ptraddr analyzer resolves printing functions by package path and
// variadic signature, so the fixture ships its own to stay hermetic.
package fmt

func Sprintf(format string, a ...any) string { return format }

func Printf(format string, a ...any) (int, error) { return 0, nil }

func Errorf(format string, a ...any) error { return nil }

func Sprint(a ...any) string { return "" }

func Println(a ...any) (int, error) { return 0, nil }
