package core

// Protocol mirrors the real tree's callback struct: functions assigned
// into its func-typed fields run under the engines, so the default
// entry-point spec treats them as entry points of the assigning package.
type Protocol struct {
	Init      func()
	Invariant func() error
}
