// Package spill is NOT on the old five-package allowlist: its violation
// is only found because DiskStore implements explore.Store, which makes
// its methods engine entry points and interface-dispatch targets.
package spill

import "internal/explore"

type DiskStore struct {
	cache map[string]bool
}

var _ explore.Store = (*DiskStore)(nil)

func (d *DiskStore) Seen(key string) bool {
	return firstKey(d.cache) == key
}

func (d *DiskStore) Len() int { return len(d.cache) }

// flagged: reached from explore.BFS through the Store interface.
func firstKey(m map[string]bool) string {
	for k := range m { // want `range over map`
		return k
	}
	return ""
}
