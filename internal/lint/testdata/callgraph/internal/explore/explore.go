package explore

// Store mirrors the real engine's visited-store interface: under the
// default entry-point spec, every method of every type implementing it —
// in any package — is an engine entry point and an interface-dispatch
// target.
type Store interface {
	Seen(key string) bool
	Len() int
}

// BFS is an engine entry point that only ever sees Store's interface:
// the call graph resolves s.Seen through the recorded implementation
// pairs, so violations inside implementations in other packages are in
// the closure.
func BFS(s Store, keys []string) int {
	hits := 0
	for _, k := range keys {
		if s.Seen(k) {
			hits++
		}
	}
	return s.Len()
}
