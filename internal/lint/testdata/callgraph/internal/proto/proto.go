// Package proto stands in for internal/protocols: it never imports the
// engines, yet its callbacks run under them — assigning a function into
// core.Protocol's func-typed fields makes it an entry point of this
// package, including literals inside package-level protocol tables.
package proto

import "internal/core"

var table = core.Protocol{
	Init: func() { touch(map[int]int{1: 1}) },
}

// flagged: runs as a Protocol.Init callback under the engines.
func touch(m map[int]int) {
	for k, v := range m { // want `range over map`
		_ = k + v
	}
}

// unreached: not assigned into any callback struct and never called.
func coldTouch(m map[int]int) {
	for k := range m {
		delete(m, k)
	}
}
