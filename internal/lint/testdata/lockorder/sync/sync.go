// Package sync is a minimal stand-in for the standard library's sync:
// the lockorder analyzer resolves Lock/Unlock methods by package path
// and receiver type name, so the fixture ships its own to stay hermetic.
package sync

type Mutex struct{ state int32 }

func (m *Mutex) Lock()   {}
func (m *Mutex) Unlock() {}

type RWMutex struct{ state int32 }

func (m *RWMutex) Lock()    {}
func (m *RWMutex) Unlock()  {}
func (m *RWMutex) RLock()   {}
func (m *RWMutex) RUnlock() {}
