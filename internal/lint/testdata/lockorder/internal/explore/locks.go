package explore

import "sync"

type registry struct {
	mu     sync.Mutex
	shards []*shard
}

type shard struct {
	mu   sync.RWMutex
	seen map[string]bool
}

type memo struct {
	mu sync.Mutex
}

// BFS is an engine entry point reaching every helper except coldSwap.
func BFS(r *registry, s *shard, m *memo) {
	forward(r, s)
	backward(r, s)
	viaHelper(r, m)
	memoUnderShard(s, m)
	sequential(r)
	indexOrdered(r)
}

// One half of the conflict: shard.mu under registry.mu ...
func forward(r *registry, s *shard) {
	r.mu.Lock()
	defer r.mu.Unlock()
	s.mu.Lock() // want `inconsistent lock order: shard.mu is acquired while holding registry.mu`
	s.mu.Unlock()
}

// ... and the other half: registry.mu under shard.mu.
func backward(r *registry, s *shard) {
	s.mu.RLock()
	defer s.mu.RUnlock()
	r.mu.Lock() // want `inconsistent lock order: registry.mu is acquired while holding shard.mu`
	r.mu.Unlock()
}

// Interprocedural edge: lockMemo acquires memo.mu, so calling it under
// registry.mu orders memo.mu after registry.mu — consistent on its own
// (no reverse edge), so unflagged.
func viaHelper(r *registry, m *memo) {
	r.mu.Lock()
	defer r.mu.Unlock()
	lockMemo(m)
}

func lockMemo(m *memo) {
	m.mu.Lock()
	defer m.mu.Unlock()
}

// allowed: annotated with the order invariant.
func memoUnderShard(s *shard, m *memo) {
	m.mu.Lock()
	defer m.mu.Unlock()
	//lint:lockorder-ok memo.mu is always the outermost lock; shard locks never wrap it
	s.mu.Lock()
	s.mu.Unlock()
}

// allowed: sequential (non-nested) acquisition of the same class.
func sequential(r *registry) {
	for _, sh := range r.shards {
		sh.mu.Lock()
		sh.seen = nil
		sh.mu.Unlock()
	}
}

// flagged: two locks of the same class held at once need a global order
// the class-level analysis cannot verify.
func indexOrdered(r *registry) {
	a, b := r.shards[0], r.shards[1]
	a.mu.Lock()
	b.mu.Lock() // want `nested acquisition of two shard.mu locks`
	b.mu.Unlock()
	a.mu.Unlock()
}

// unreached: the same inversion as backward, but outside the closure.
func coldSwap(r *registry, s *shard) {
	s.mu.Lock()
	defer s.mu.Unlock()
	r.mu.Lock()
	r.mu.Unlock()
}
