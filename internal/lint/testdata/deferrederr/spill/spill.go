// Package spill exercises the deferred-close convention; deferrederr is
// module-wide, so any fixture path works.
package spill

type run struct{}

func (r *run) Close() error { return nil }

func open() (*run, error) { return &run{}, nil }

// flagged: the close error is dropped on a path that can report it.
func bad() error {
	r, err := open()
	if err != nil {
		return err
	}
	defer r.Close() // want `deferred Close drops its error`
	return nil
}

// allowed: the convention — a closure routes the error into the named
// return.
func good() (err error) {
	r, err := open()
	if err != nil {
		return err
	}
	defer func() {
		if cerr := r.Close(); err == nil {
			err = cerr
		}
	}()
	return nil
}

// allowed: annotated deliberate drop.
func backstop() error {
	r, err := open()
	if err != nil {
		return err
	}
	//lint:closeerr-ok idempotent backstop: the main path closes again and routes the error
	defer r.Close()
	return nil
}

// not flagged: without an error result there is nowhere to route it.
func fireAndForget() {
	r, _ := open()
	defer r.Close()
}
