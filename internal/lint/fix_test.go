package lint_test

import (
	"go/token"
	"os"
	"path/filepath"
	"strings"
	"testing"

	"mpbasset/internal/lint"
)

// lintTemp loads the one-package temp module and runs the full suite,
// returning the surviving diagnostics.
func lintTemp(t *testing.T, dir string) []lint.Diagnostic {
	t.Helper()
	pkgs, err := lint.Load(dir, "./...")
	if err != nil {
		t.Fatal(err)
	}
	diags, err := lint.RunPackages(lint.All(), pkgs, nil)
	if err != nil {
		t.Fatal(err)
	}
	return diags
}

// TestApplyFixesIdempotent pins the -fix contract: one run inserts one
// annotation that silences the finding, and a second run — whether over
// the re-linted (clean) tree or replaying the stale diagnostic list —
// inserts nothing and never stacks duplicate markers.
func TestApplyFixesIdempotent(t *testing.T) {
	dir := writeTempModule(t)
	src := filepath.Join(dir, "internal", "explore", "explore.go")

	diags := lintTemp(t, dir)
	if len(diags) != 1 || diags[0].Analyzer != "deferrederr" {
		t.Fatalf("diagnostics = %v, want one deferrederr finding", diags)
	}

	changed, skipped, err := lint.ApplyFixes(diags)
	if err != nil {
		t.Fatal(err)
	}
	if changed != 1 || len(skipped) != 0 {
		t.Fatalf("first ApplyFixes: changed=%d skipped=%v, want 1 and none", changed, skipped)
	}
	fixed, err := os.ReadFile(src)
	if err != nil {
		t.Fatal(err)
	}
	if n := strings.Count(string(fixed), "//lint:closeerr-ok"); n != 1 {
		t.Fatalf("marker inserted %d times, want 1:\n%s", n, fixed)
	}

	// The inserted TODO reason is non-empty, so the tree re-lints clean.
	if diags := lintTemp(t, dir); len(diags) != 0 {
		t.Fatalf("after -fix, diagnostics = %v, want none", diags)
	}

	// Replaying the stale (pre-fix) diagnostic list must be a no-op: the
	// flagged line moved down one, so the stale position now points at
	// the inserted annotation itself, which hasMarker recognizes.
	changed, skipped, err = lint.ApplyFixes(diags)
	if err != nil {
		t.Fatal(err)
	}
	if changed != 0 || len(skipped) != 0 {
		t.Fatalf("replayed ApplyFixes: changed=%d skipped=%v, want 0 and none", changed, skipped)
	}
	again, err := os.ReadFile(src)
	if err != nil {
		t.Fatal(err)
	}
	if string(again) != string(fixed) {
		t.Fatalf("second ApplyFixes changed the file:\n%s", again)
	}
}

// TestApplyFixesSkipsUnfixable pins the no-escape-hatch analyzers:
// statsmask findings have no suppression marker, so -fix must hand them
// back unresolved instead of silently dropping them.
func TestApplyFixesSkipsUnfixable(t *testing.T) {
	d := lint.Diagnostic{
		Pos:      token.Position{Filename: "stats.go", Line: 3},
		Analyzer: "statsmask",
		Message:  "stats divergence",
	}
	changed, skipped, err := lint.ApplyFixes([]lint.Diagnostic{d})
	if err != nil {
		t.Fatal(err)
	}
	if changed != 0 || len(skipped) != 1 || skipped[0].Analyzer != "statsmask" {
		t.Fatalf("changed=%d skipped=%v, want 0 and the statsmask finding", changed, skipped)
	}
}
