package lint_test

import (
	"bytes"
	"encoding/json"
	"os"
	"path/filepath"
	"strings"
	"testing"

	"mpbasset/internal/lint"
)

// violatingSource needs no imports, so it typechecks in both drivers
// without export data or a fake stdlib: a deferred Close dropping its
// error in a function that returns error. Run is documented and the temp
// module carries a doc.go (docSource) so doccheck stays quiet and the
// deferrederr finding is the only diagnostic.
const violatingSource = `package explore

type res struct{}

func (r *res) Close() error { return nil }

func acquire() (*res, error) { return &res{}, nil }

// Run acquires and leaks a close error.
func Run() error {
	r, err := acquire()
	if err != nil {
		return err
	}
	defer r.Close()
	return nil
}
`

// docSource is the temp module's doc.go, keeping doccheck satisfied.
const docSource = `// Package explore is a one-package fixture module for the driver tests.
package explore
`

// writeTempModule lays out a one-package module and returns its root.
func writeTempModule(t *testing.T) string {
	t.Helper()
	dir := t.TempDir()
	if err := os.WriteFile(filepath.Join(dir, "go.mod"), []byte("module example.com/tmp\n\ngo 1.24\n"), 0o644); err != nil {
		t.Fatal(err)
	}
	pkgDir := filepath.Join(dir, "internal", "explore")
	if err := os.MkdirAll(pkgDir, 0o755); err != nil {
		t.Fatal(err)
	}
	if err := os.WriteFile(filepath.Join(pkgDir, "explore.go"), []byte(violatingSource), 0o644); err != nil {
		t.Fatal(err)
	}
	if err := os.WriteFile(filepath.Join(pkgDir, "doc.go"), []byte(docSource), 0o644); err != nil {
		t.Fatal(err)
	}
	return dir
}

// TestLoadStandalone drives the `go list` + source-importer loader the
// standalone mplint binary uses.
func TestLoadStandalone(t *testing.T) {
	dir := writeTempModule(t)
	pkgs, err := lint.Load(dir, "./...")
	if err != nil {
		t.Fatal(err)
	}
	if len(pkgs) != 1 {
		t.Fatalf("loaded %d packages, want 1", len(pkgs))
	}
	diags, err := lint.RunAnalyzers(lint.All(), pkgs[0].Fset, pkgs[0].Files, pkgs[0].Pkg, pkgs[0].TypesInfo)
	if err != nil {
		t.Fatal(err)
	}
	if len(diags) != 1 || diags[0].Analyzer != "deferrederr" {
		t.Fatalf("diagnostics = %v, want one deferrederr finding", diags)
	}
}

// TestRunUnitchecker drives the vet-tool protocol directly: a config file
// describing one import-free unit must produce the same diagnostic, the
// facts file, and unitchecker's exit codes.
func TestRunUnitchecker(t *testing.T) {
	dir := t.TempDir()
	src := filepath.Join(dir, "explore.go")
	if err := os.WriteFile(src, []byte(violatingSource), 0o644); err != nil {
		t.Fatal(err)
	}
	docFile := filepath.Join(dir, "doc.go")
	if err := os.WriteFile(docFile, []byte(docSource), 0o644); err != nil {
		t.Fatal(err)
	}
	vetx := filepath.Join(dir, "out.vetx")
	cfg := map[string]any{
		"ID":         "example.com/tmp/internal/explore",
		"Compiler":   "gc",
		"ImportPath": "example.com/tmp/internal/explore",
		"GoVersion":  "go1.24",
		"GoFiles":    []string{src, docFile},
		"VetxOutput": vetx,
	}
	data, err := json.Marshal(cfg)
	if err != nil {
		t.Fatal(err)
	}
	cfgPath := filepath.Join(dir, "vet.cfg")
	if err := os.WriteFile(cfgPath, data, 0o644); err != nil {
		t.Fatal(err)
	}

	var out bytes.Buffer
	if exit := lint.RunUnitchecker(&out, cfgPath, lint.All(), nil); exit != 2 {
		t.Fatalf("exit = %d, want 2 (diagnostics); output:\n%s", exit, out.String())
	}
	if !strings.Contains(out.String(), "deferred Close drops its error") {
		t.Errorf("missing deferrederr diagnostic in output:\n%s", out.String())
	}
	if _, err := os.Stat(vetx); err != nil {
		t.Errorf("facts file not written: %v", err)
	}

	// VetxOnly units are fact-gathering passes: no analysis, exit 0.
	cfg["VetxOnly"] = true
	data, _ = json.Marshal(cfg)
	if err := os.WriteFile(cfgPath, data, 0o644); err != nil {
		t.Fatal(err)
	}
	out.Reset()
	if exit := lint.RunUnitchecker(&out, cfgPath, lint.All(), nil); exit != 0 || out.Len() != 0 {
		t.Fatalf("VetxOnly: exit = %d, output %q; want 0 and empty", exit, out.String())
	}
}
