package lint

import (
	"crypto/sha256"
	"encoding/json"
	"fmt"
	"os"
	"path/filepath"
	"sort"
	"strings"
)

// SARIF 2.1.0 output, so the findings land in code-review UIs (GitHub
// code scanning via upload-sarif) instead of only in a CI log. The
// structures declare just the slice of the schema this tool emits.

type sarifLog struct {
	Schema  string     `json:"$schema"`
	Version string     `json:"version"`
	Runs    []sarifRun `json:"runs"`
}

type sarifRun struct {
	Tool    sarifTool     `json:"tool"`
	Results []sarifResult `json:"results"`
}

type sarifTool struct {
	Driver sarifDriver `json:"driver"`
}

type sarifDriver struct {
	Name           string      `json:"name"`
	InformationURI string      `json:"informationUri,omitempty"`
	Rules          []sarifRule `json:"rules"`
}

type sarifRule struct {
	ID               string       `json:"id"`
	ShortDescription sarifMessage `json:"shortDescription"`
}

type sarifMessage struct {
	Text string `json:"text"`
}

type sarifResult struct {
	RuleID    string          `json:"ruleId"`
	Level     string          `json:"level"`
	Message   sarifMessage    `json:"message"`
	Locations []sarifLocation `json:"locations"`
}

type sarifLocation struct {
	PhysicalLocation sarifPhysicalLocation `json:"physicalLocation"`
}

type sarifPhysicalLocation struct {
	ArtifactLocation sarifArtifactLocation `json:"artifactLocation"`
	Region           sarifRegion           `json:"region"`
}

type sarifArtifactLocation struct {
	URI string `json:"uri"`
}

type sarifRegion struct {
	StartLine   int `json:"startLine"`
	StartColumn int `json:"startColumn,omitempty"`
}

// SARIF renders diagnostics as one SARIF 2.1.0 run of the mplint driver.
// File paths are emitted relative to root (when possible) with forward
// slashes, as the format expects repository-relative artifact URIs.
func SARIF(diags []Diagnostic, analyzers []*Analyzer, root string) ([]byte, error) {
	rules := make([]sarifRule, 0, len(analyzers))
	for _, a := range analyzers {
		rules = append(rules, sarifRule{ID: a.Name, ShortDescription: sarifMessage{Text: a.Doc}})
	}
	results := make([]sarifResult, 0, len(diags))
	for _, d := range diags {
		uri := d.Pos.Filename
		if root != "" {
			if rel, err := filepath.Rel(root, uri); err == nil && !strings.HasPrefix(rel, "..") {
				uri = rel
			}
		}
		results = append(results, sarifResult{
			RuleID:  d.Analyzer,
			Level:   "error",
			Message: sarifMessage{Text: d.Message},
			Locations: []sarifLocation{{PhysicalLocation: sarifPhysicalLocation{
				ArtifactLocation: sarifArtifactLocation{URI: filepath.ToSlash(uri)},
				Region:           sarifRegion{StartLine: d.Pos.Line, StartColumn: d.Pos.Column},
			}}},
		})
	}
	log := sarifLog{
		Schema:  "https://raw.githubusercontent.com/oasis-tcs/sarif-spec/master/Schemata/sarif-schema-2.1.0.json",
		Version: "2.1.0",
		Runs: []sarifRun{{
			Tool:    sarifTool{Driver: sarifDriver{Name: "mplint", Rules: rules}},
			Results: results,
		}},
	}
	return json.MarshalIndent(log, "", "  ")
}

// writeSARIFFragment drops one unit's findings into dir as a SARIF file
// named by the import path's hash (import paths contain separators).
// Best-effort: the vet driver must not fail a unit over reporting
// plumbing, so errors are swallowed — the text diagnostics still print.
func writeSARIFFragment(dir, importPath string, analyzers []*Analyzer, diags []Diagnostic) {
	data, err := SARIF(diags, analyzers, "")
	if err != nil {
		return
	}
	if err := os.MkdirAll(dir, 0o777); err != nil {
		return
	}
	name := fmt.Sprintf("%x.sarif", sha256.Sum256([]byte(importPath)))
	_ = os.WriteFile(filepath.Join(dir, name), data, 0o666)
}

// MergeSARIF folds every *.sarif fragment under dir into one SARIF log
// with a single run: rules unioned by ID, results concatenated and
// sorted by location. An empty or missing dir merges to a clean report.
func MergeSARIF(dir, root string) ([]byte, error) {
	entries, _ := os.ReadDir(dir)
	ruleByID := make(map[string]sarifRule)
	results := []sarifResult{} // non-nil: a clean merge must marshal as [], not null
	for _, e := range entries {
		if e.IsDir() || !strings.HasSuffix(e.Name(), ".sarif") {
			continue
		}
		data, err := os.ReadFile(filepath.Join(dir, e.Name()))
		if err != nil {
			return nil, err
		}
		var log sarifLog
		if err := json.Unmarshal(data, &log); err != nil {
			return nil, fmt.Errorf("%s: %w", e.Name(), err)
		}
		for _, run := range log.Runs {
			for _, r := range run.Tool.Driver.Rules {
				ruleByID[r.ID] = r
			}
			results = append(results, run.Results...)
		}
	}
	ids := make([]string, 0, len(ruleByID))
	for id := range ruleByID {
		ids = append(ids, id)
	}
	sort.Strings(ids)
	rules := make([]sarifRule, 0, len(ids))
	for _, id := range ids {
		rules = append(rules, ruleByID[id])
	}
	sort.Slice(results, func(i, j int) bool {
		a, b := results[i], results[j]
		al, bl := "", ""
		if len(a.Locations) > 0 {
			al = a.Locations[0].PhysicalLocation.ArtifactLocation.URI
		}
		if len(b.Locations) > 0 {
			bl = b.Locations[0].PhysicalLocation.ArtifactLocation.URI
		}
		if al != bl {
			return al < bl
		}
		var ar, br sarifRegion
		if len(a.Locations) > 0 {
			ar = a.Locations[0].PhysicalLocation.Region
		}
		if len(b.Locations) > 0 {
			br = b.Locations[0].PhysicalLocation.Region
		}
		if ar.StartLine != br.StartLine {
			return ar.StartLine < br.StartLine
		}
		if ar.StartColumn != br.StartColumn {
			return ar.StartColumn < br.StartColumn
		}
		return a.RuleID < b.RuleID
	})
	// Fragment URIs were written absolute (units know no repo root);
	// relativize here where possible.
	if root != "" {
		for i := range results {
			for j := range results[i].Locations {
				uri := results[i].Locations[j].PhysicalLocation.ArtifactLocation.URI
				if rel, err := filepath.Rel(root, filepath.FromSlash(uri)); err == nil && !strings.HasPrefix(rel, "..") {
					results[i].Locations[j].PhysicalLocation.ArtifactLocation.URI = filepath.ToSlash(rel)
				}
			}
		}
	}
	log := sarifLog{
		Schema:  "https://raw.githubusercontent.com/oasis-tcs/sarif-spec/master/Schemata/sarif-schema-2.1.0.json",
		Version: "2.1.0",
		Runs: []sarifRun{{
			Tool:    sarifTool{Driver: sarifDriver{Name: "mplint", Rules: rules}},
			Results: results,
		}},
	}
	return json.MarshalIndent(log, "", "  ")
}
