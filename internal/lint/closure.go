package lint

import (
	"fmt"
	"go/token"
	"sort"
	"strings"
)

// The detclosure pass: given the call-graph facts of a package and its
// transitive dependencies, compute which functions are reachable from
// the engine entry points and turn the reachable packages' pending
// diagnostics into real ones. Both drivers run it — the standalone
// driver over the facts of every loaded package at once, the vet-tool
// driver per unit over the facts carried up through vetx files.

// EntryPoints is the root-set specification of the deterministic
// closure. Each element is "pkgSuffix.Name"; package suffixes match like
// DeterministicPkg (exact or "/"-anchored suffix), so the spec works for
// the real tree (mpbasset/internal/explore) and the fixtures
// (internal/explore) alike.
type EntryPoints struct {
	// Funcs are named engine entry functions (explore.BFS, dpor.Explore).
	Funcs []string
	// Ifaces are engine-facing interfaces: every method of every type
	// implementing one is both a dispatch target and an entry point, so
	// Store/Expander implementations in any package are checked at their
	// defining unit.
	Ifaces []string
	// Structs are callback structs: any function assigned into one of
	// their func-typed fields (core.Protocol{Init: ...},
	// explore.Options.Canon = ...) runs under an engine and is an entry
	// point of the assigning package.
	Structs []string
}

// DefaultEntryPoints returns the engine root set: the six exploration
// entry functions, the liveness oracle and the DPOR drivers (sequential
// and speculative parallel); the store, expander and local-state
// interfaces; and the protocol/property/options callback structs through
// which user code is invoked by the engines.
func DefaultEntryPoints() *EntryPoints {
	return &EntryPoints{
		Funcs: []string{
			"internal/explore.BFS",
			"internal/explore.DFS",
			"internal/explore.ParallelBFS",
			"internal/explore.ParallelDFS",
			"internal/explore.NDFS",
			"internal/explore.ParallelNDFS",
			"internal/liveness.Oracle",
			"internal/dpor.Explore",
			"internal/dpor.ExploreWith",
			"internal/dpor.ExploreParallel",
			"internal/dpor.ExploreParallelWith",
		},
		Ifaces: []string{
			"internal/explore.Store",
			"internal/explore.Expander",
			"internal/core.LocalState",
		},
		Structs: []string{
			"internal/core.Protocol",
			"internal/core.Transition",
			"internal/liveness.Property",
			"internal/explore.Options",
		},
	}
}

// ParseEntryPoints extends the default spec with a comma-separated
// -entrypoints override. Each item is one of:
//
//	func:pkgSuffix.Name     a named entry function
//	iface:pkgSuffix.Name    an interface whose implementations are entries
//	struct:pkgSuffix.Name   a callback struct whose field functions are entries
//	pkgSuffix.Name          shorthand for func:
//
// so future subsystems opt into the closure without code changes.
func ParseEntryPoints(s string) (*EntryPoints, error) {
	spec := DefaultEntryPoints()
	if strings.TrimSpace(s) == "" {
		return spec, nil
	}
	for _, item := range strings.Split(s, ",") {
		item = strings.TrimSpace(item)
		if item == "" {
			continue
		}
		kind, rest, ok := strings.Cut(item, ":")
		if !ok {
			kind, rest = "func", item
		}
		if !strings.Contains(rest, ".") {
			return nil, fmt.Errorf("entrypoint %q: want pkgSuffix.Name", item)
		}
		switch kind {
		case "func":
			spec.Funcs = append(spec.Funcs, rest)
		case "iface":
			spec.Ifaces = append(spec.Ifaces, rest)
		case "struct":
			spec.Structs = append(spec.Structs, rest)
		default:
			return nil, fmt.Errorf("entrypoint %q: unknown kind %q (want func, iface or struct)", item, kind)
		}
	}
	return spec, nil
}

// cgView is the merged, resolvable view of a set of package facts.
type cgView struct {
	funcs map[string][]string // funcID -> callees (may include iface:/field: nodes)
	// ifaceTargets maps iface:pkg.I.M nodes to the concrete methods the
	// recorded implementation pairs resolve them to.
	ifaceTargets map[string][]string
	fields       map[string][]string
}

// newCGView merges facts and pre-resolves dynamic nodes.
func newCGView(facts []*PackageFacts) *cgView {
	v := &cgView{
		funcs:        make(map[string][]string),
		ifaceTargets: make(map[string][]string),
		fields:       make(map[string][]string),
	}
	impls := make(map[string][]string) // ifaceID -> typeIDs
	methods := make(map[string]map[string]string)
	for _, pf := range facts {
		for id, callees := range pf.Funcs {
			v.funcs[id] = append(v.funcs[id], callees...)
		}
		for _, pair := range pf.Impls {
			impls[pair[0]] = append(impls[pair[0]], pair[1])
		}
		for tid, ms := range pf.Methods {
			if methods[tid] == nil {
				methods[tid] = make(map[string]string)
			}
			for name, fid := range ms {
				methods[tid][name] = fid
			}
		}
		for node, fns := range pf.Fields {
			v.fields[node] = append(v.fields[node], fns...)
		}
	}
	// Resolve every iface:pkg.I.M node that any edge references.
	for _, callees := range v.funcs {
		for _, c := range callees {
			ifaceID, ok := strings.CutPrefix(c, "iface:")
			if !ok {
				continue
			}
			if _, done := v.ifaceTargets[c]; done {
				continue
			}
			i := strings.LastIndex(ifaceID, ".")
			if i < 0 {
				continue
			}
			iface, method := ifaceID[:i], ifaceID[i+1:]
			var targets []string
			for _, tid := range impls[iface] {
				if fid, ok := methods[tid][method]; ok {
					targets = append(targets, fid)
				}
			}
			sort.Strings(targets)
			v.ifaceTargets[c] = targets
		}
	}
	return v
}

// reach computes the function set reachable from roots over the merged
// graph, expanding iface: and field: nodes through their recorded
// targets.
func (v *cgView) reach(roots []string) map[string]bool {
	seen := make(map[string]bool)
	queue := append([]string(nil), roots...)
	for len(queue) > 0 {
		id := queue[0]
		queue = queue[1:]
		if seen[id] {
			continue
		}
		seen[id] = true
		var callees []string
		switch {
		case strings.HasPrefix(id, "iface:"):
			callees = v.ifaceTargets[id]
		case strings.HasPrefix(id, "field:"):
			callees = v.fields[id]
		default:
			callees = v.funcs[id]
		}
		queue = append(queue, callees...)
	}
	return seen
}

// Reach exposes reachability over a fact set for the driver tests: the
// function IDs reachable from roots, sorted.
func Reach(facts []*PackageFacts, roots []string) []string {
	seen := newCGView(facts).reach(roots)
	out := make([]string, 0, len(seen))
	for id := range seen {
		if !strings.HasPrefix(id, "iface:") && !strings.HasPrefix(id, "field:") {
			out = append(out, id)
		}
	}
	sort.Strings(out)
	return out
}

// EmitClosure turns pending diagnostics into real ones at self's unit.
//
// The facts channel flows bottom-up (dependencies are analyzed first),
// but reachability flows top-down from entry points defined in high
// packages. The reconciliation: every unit records its own findings as
// pending facts, and a unit that DEFINES entry points emits every
// pending finding — its own or a dependency's — that its entries reach
// over the full fact set (self + deps). To keep one finding from being
// emitted at several units, a unit subtracts what its dependencies'
// entry points reach over the dependencies' facts ALONE: that is
// exactly the view the deepest dependency unit had, i.e. what was
// already emitted below. (Reachability that only materializes through
// self's own facts — an implementation pair or callback assignment
// recorded here — was invisible below and is therefore not subtracted.)
// The standalone driver additionally deduplicates globally; under the
// vet driver a finding reachable from two unrelated roots in sibling
// units can in principle print twice, which is benign on the
// zero-diagnostic tree CI enforces.
func EmitClosure(self *PackageFacts, deps []*PackageFacts) []Diagnostic {
	if len(self.Entries) == 0 {
		return nil
	}
	all := append(append([]*PackageFacts(nil), deps...), self)
	view := newCGView(all)
	own := view.reach(self.Entries)
	var depRoots []string
	for _, d := range deps {
		depRoots = append(depRoots, d.Entries...)
	}
	covered := newCGView(deps).reach(depRoots)

	pkgIn := func(set map[string]bool, pkg string) bool {
		for id := range set {
			if funcPkg(id) == pkg {
				return true
			}
		}
		return false
	}

	var diags []Diagnostic
	for _, pf := range all {
		for _, p := range pf.Pending {
			emit := false
			if p.Func == "" {
				emit = pkgIn(own, p.Pkg) && !pkgIn(covered, p.Pkg)
			} else {
				emit = own[p.Func] && !covered[p.Func]
			}
			if emit {
				diags = append(diags, Diagnostic{
					Pos:      token.Position{Filename: p.File, Line: p.Line, Column: p.Col},
					Analyzer: p.Analyzer,
					Message:  p.Message,
				})
			}
		}
	}
	return dedupDiags(diags)
}

// dedupDiags sorts diagnostics by position and drops exact duplicates
// (same file, line, column, analyzer and message).
func dedupDiags(diags []Diagnostic) []Diagnostic {
	sort.Slice(diags, func(i, j int) bool {
		a, b := diags[i], diags[j]
		if a.Pos.Filename != b.Pos.Filename {
			return a.Pos.Filename < b.Pos.Filename
		}
		if a.Pos.Line != b.Pos.Line {
			return a.Pos.Line < b.Pos.Line
		}
		if a.Pos.Column != b.Pos.Column {
			return a.Pos.Column < b.Pos.Column
		}
		if a.Analyzer != b.Analyzer {
			return a.Analyzer < b.Analyzer
		}
		return a.Message < b.Message
	})
	out := diags[:0]
	for i, d := range diags {
		if i > 0 && d == diags[i-1] {
			continue
		}
		out = append(out, d)
	}
	return out
}
