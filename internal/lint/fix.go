package lint

import (
	"fmt"
	"os"
	"sort"
	"strings"
)

// suppressionMarker maps each analyzer to the //lint: marker that waives
// its contract. Analyzers absent here (statsmask) have no escape hatch:
// their findings are only resolved by fixing the code.
var suppressionMarker = map[string]string{
	"maporder":      "nondet-ok",
	"wallclock":     "wallclock-ok",
	"storecontract": "has-ok",
	"deferrederr":   "closeerr-ok",
	"ptraddr":       "ptraddr-ok",
	"selectorder":   "select-ok",
	"exhaustive":    "exhaustive-ok",
	"lockorder":     "lockorder-ok",
}

// fixReason is the placeholder inserted by -fix. It is a non-empty
// reason, so the annotation suppresses the finding immediately — the
// TODO makes the debt greppable until a human replaces it with the real
// justification.
const fixReason = "TODO(lint-fix): justify this exemption or fix the site"

// ApplyFixes inserts a suppression annotation above each diagnostic's
// line and reports how many files changed. The insertion is idempotent:
// a site whose line — or any comment line in the //lint: block
// immediately above it — already carries the marker is skipped, so
// running -fix twice (or over a tree where some findings were annotated
// by hand) never stacks duplicates. Diagnostics without a marker are
// returned in skipped for the caller to surface.
func ApplyFixes(diags []Diagnostic) (changed int, skipped []Diagnostic, err error) {
	byFile := make(map[string][]Diagnostic)
	for _, d := range diags {
		if suppressionMarker[d.Analyzer] == "" {
			skipped = append(skipped, d)
			continue
		}
		byFile[d.Pos.Filename] = append(byFile[d.Pos.Filename], d)
	}
	files := make([]string, 0, len(byFile))
	for f := range byFile {
		files = append(files, f)
	}
	sort.Strings(files)
	for _, file := range files {
		ds := byFile[file]
		// Bottom-up so earlier insertions do not shift later targets.
		sort.Slice(ds, func(i, j int) bool {
			if ds[i].Pos.Line != ds[j].Pos.Line {
				return ds[i].Pos.Line > ds[j].Pos.Line
			}
			return ds[i].Analyzer > ds[j].Analyzer
		})
		data, err := os.ReadFile(file)
		if err != nil {
			return changed, skipped, err
		}
		lines := strings.Split(string(data), "\n")
		wrote := false
		for _, d := range ds {
			idx := d.Pos.Line - 1 // 0-based index of the flagged line
			if idx < 0 || idx >= len(lines) {
				continue
			}
			marker := suppressionMarker[d.Analyzer]
			if hasMarker(lines, idx, marker) {
				continue
			}
			indent := lines[idx][:len(lines[idx])-len(strings.TrimLeft(lines[idx], " \t"))]
			comment := fmt.Sprintf("%s//lint:%s %s", indent, marker, fixReason)
			lines = append(lines[:idx], append([]string{comment}, lines[idx:]...)...)
			wrote = true
		}
		if wrote {
			if err := os.WriteFile(file, []byte(strings.Join(lines, "\n")), 0o666); err != nil {
				return changed, skipped, err
			}
			changed++
		}
	}
	return changed, skipped, nil
}

// hasMarker reports whether the flagged line idx already carries
// //lint:<marker> — inline, or anywhere in the contiguous block of
// //lint: comment lines immediately above it (which is where both -fix
// and the hand-written annotations sit).
func hasMarker(lines []string, idx int, marker string) bool {
	needle := "//lint:" + marker
	if strings.Contains(lines[idx], needle) {
		return true
	}
	for i := idx - 1; i >= 0; i-- {
		trimmed := strings.TrimSpace(lines[i])
		if !strings.HasPrefix(trimmed, "//lint:") {
			break
		}
		if strings.HasPrefix(trimmed, needle) {
			return true
		}
	}
	return false
}
