package lint_test

import (
	"fmt"
	"os"
	"os/exec"
	"path/filepath"
	"regexp"
	"sort"
	"strings"
	"testing"

	"mpbasset/internal/lint"
)

// closureModule is a real, compilable three-package module exercising
// both cross-package closure channels: interface dispatch (spill's
// DiskStore behind explore.Store) and callback fields (proto's literal
// inside a core.Protocol table). Unlike the testdata fixtures it uses
// full module import paths, so the genuine go toolchain can build it and
// `go vet -vettool` can drive the unitchecker protocol end to end.
var closureModule = map[string]string{
	"go.mod": "module example.com/cg\n\ngo 1.24\n",
	"internal/explore/explore.go": `package explore

type Store interface {
	Seen(key string) bool
	Len() int
}

func BFS(s Store, keys []string) int {
	hits := 0
	for _, k := range keys {
		if s.Seen(k) {
			hits++
		}
	}
	return s.Len()
}
`,
	"internal/core/core.go": `package core

type Protocol struct {
	Init      func()
	Invariant func() error
}
`,
	"internal/spill/spill.go": `package spill

import "example.com/cg/internal/explore"

type DiskStore struct{ cache map[string]bool }

var _ explore.Store = (*DiskStore)(nil)

func (d *DiskStore) Seen(key string) bool { return firstKey(d.cache) == key }

func (d *DiskStore) Len() int { return len(d.cache) }

func firstKey(m map[string]bool) string {
	for k := range m {
		return k
	}
	return ""
}

func coldKey(m map[string]bool) string {
	for k := range m {
		return k
	}
	return ""
}
`,
	"internal/proto/proto.go": `package proto

import "example.com/cg/internal/core"

var table = core.Protocol{
	Init: func() { touch(map[int]int{1: 1}) },
}

func touch(m map[int]int) {
	for k, v := range m {
		_ = k + v
	}
}
`,
}

func writeClosureModule(t *testing.T) string {
	t.Helper()
	dir := t.TempDir()
	for name, src := range closureModule {
		path := filepath.Join(dir, filepath.FromSlash(name))
		if err := os.MkdirAll(filepath.Dir(path), 0o755); err != nil {
			t.Fatal(err)
		}
		if err := os.WriteFile(path, []byte(src), 0o644); err != nil {
			t.Fatal(err)
		}
	}
	return dir
}

// normalize renders a finding as "relpath:line:col: message [analyzer]"
// with the module root stripped, so the two drivers' outputs compare.
func normalize(dir, file string, line, col int, rest string) string {
	if rel, err := filepath.Rel(dir, file); err == nil {
		file = filepath.ToSlash(rel)
	}
	return fmt.Sprintf("%s:%d:%d: %s", file, line, col, rest)
}

var vetDiagRE = regexp.MustCompile(`^(.+\.go):(\d+):(\d+): (.+)$`)

// TestDriversAgree is the driver-equality test: the standalone loader
// and the hand-rolled `go vet -vettool` protocol must compute the same
// closure and report the identical finding set over a real module —
// including findings that exist only because facts for interface
// implementations and callback tables flowed across package boundaries.
func TestDriversAgree(t *testing.T) {
	dir := writeClosureModule(t)

	diags, err := lint.RunModule(dir, []string{"./..."}, lint.All(), nil)
	if err != nil {
		t.Fatal(err)
	}
	standalone := make(map[string]bool)
	for _, d := range diags {
		standalone[normalize(dir, d.Pos.Filename, d.Pos.Line, d.Pos.Column,
			fmt.Sprintf("%s [%s]", d.Message, d.Analyzer))] = true
	}

	bin := filepath.Join(t.TempDir(), "mplint")
	build := exec.Command("go", "build", "-o", bin, "mpbasset/cmd/mplint")
	if out, err := build.CombinedOutput(); err != nil {
		t.Fatalf("building vettool: %v\n%s", err, out)
	}
	vet := exec.Command("go", "vet", "-vettool="+bin, "./...")
	vet.Dir = dir
	out, vetErr := vet.CombinedOutput()
	// go vet exits non-zero when the tool reports findings; only a run
	// with findings AND a zero exit (or no findings and a crash) lies.
	vetFindings := make(map[string]bool)
	for _, line := range strings.Split(string(out), "\n") {
		m := vetDiagRE.FindStringSubmatch(strings.TrimSpace(line))
		if m == nil {
			continue
		}
		var ln, col int
		fmt.Sscanf(m[2], "%d", &ln)
		fmt.Sscanf(m[3], "%d", &col)
		vetFindings[normalize(dir, m[1], ln, col, m[4])] = true
	}
	if len(vetFindings) > 0 && vetErr == nil {
		t.Errorf("go vet reported findings but exited 0:\n%s", out)
	}
	if len(vetFindings) == 0 && vetErr != nil {
		t.Fatalf("go vet failed without findings: %v\n%s", vetErr, out)
	}

	keys := func(m map[string]bool) []string {
		var s []string
		for k := range m {
			s = append(s, k)
		}
		sort.Strings(s)
		return s
	}
	if got, want := keys(vetFindings), keys(standalone); !equalStrings(got, want) {
		t.Errorf("drivers disagree:\nstandalone:\n  %s\nvet:\n  %s",
			strings.Join(want, "\n  "), strings.Join(got, "\n  "))
	}

	// The set must contain both cross-package findings and nothing for
	// the function outside the closure.
	assertFinding := func(substr string, want bool) {
		t.Helper()
		found := false
		for k := range standalone {
			if strings.Contains(k, substr) {
				found = true
			}
		}
		if found != want {
			t.Errorf("finding matching %q: present=%v, want %v\nall: %v",
				substr, found, want, keys(standalone))
		}
	}
	assertFinding("internal/spill/spill.go:14", true) // firstKey, via Store dispatch
	assertFinding("internal/proto/proto.go:10", true) // touch, via Protocol.Init callback
	assertFinding("internal/spill/spill.go:21", false)
	assertFinding("coldKey", false)
}

func equalStrings(a, b []string) bool {
	if len(a) != len(b) {
		return false
	}
	for i := range a {
		if a[i] != b[i] {
			return false
		}
	}
	return true
}

// TestReachInterfaceDispatch pins the closure engine itself: from the
// BFS entry point, reachability must cross the explore.Store interface
// into spill's unexported helper, and must not pull in coldKey.
func TestReachInterfaceDispatch(t *testing.T) {
	dir := writeClosureModule(t)
	pkgs, err := lint.Load(dir, "./...")
	if err != nil {
		t.Fatal(err)
	}
	var all []*lint.PackageFacts
	for _, p := range pkgs {
		facts, _ := lint.BuildFacts(p.Fset, p.Files, p.Pkg, p.TypesInfo, lint.DefaultEntryPoints())
		all = append(all, facts)
	}
	reach := lint.Reach(all, []string{"example.com/cg/internal/explore.BFS"})
	in := make(map[string]bool, len(reach))
	for _, id := range reach {
		in[id] = true
	}
	for id, want := range map[string]bool{
		"example.com/cg/internal/spill.(DiskStore).Seen": true,
		"example.com/cg/internal/spill.firstKey":         true,
		"example.com/cg/internal/spill.coldKey":          false,
		"example.com/cg/internal/proto.touch":            false,
	} {
		if in[id] != want {
			t.Errorf("Reach(BFS) includes %q = %v, want %v\nreach: %v", id, in[id], want, reach)
		}
	}
}
