package lint

import "strings"

// deterministicPkgSuffixes lists the import-path suffixes of the packages
// bound by the determinism contract: every run over the same protocol and
// options must produce bit-identical verdicts, stats and traces across
// engines, worker counts, schedulers and store tiers. The storecontract
// analyzer fires only inside these packages; maporder and wallclock,
// which once shared this allowlist, are now scoped to the interprocedural
// deterministic closure instead (see closure.go).
//
// Suffix matching (rather than exact paths) lets the analysistest fixtures
// under testdata/ reproduce the package layout without the module prefix.
var deterministicPkgSuffixes = []string{
	"internal/explore",
	"internal/eval",
	"internal/liveness",
	"internal/por",
	"internal/dpor",
}

// DeterministicPkg reports whether the import path names a package under
// the determinism contract.
func DeterministicPkg(path string) bool {
	for _, suf := range deterministicPkgSuffixes {
		if path == suf || strings.HasSuffix(path, "/"+suf) {
			return true
		}
	}
	return false
}

// evalPkg reports whether path names the eval package, the home of the
// canonical stats mask the statsmask analyzer cross-checks.
func evalPkg(path string) bool {
	return path == "internal/eval" || strings.HasSuffix(path, "/internal/eval")
}

// All returns the full analyzer suite in stable order: the five original
// contract checks, the four closure-riding analyzers added with the
// call-graph layer, then the documentation gate.
func All() []*Analyzer {
	return []*Analyzer{
		MapOrder,
		WallClock,
		StatsMask,
		StoreContract,
		DeferredErr,
		PtrAddr,
		SelectOrder,
		Exhaustive,
		LockOrder,
		DocCheck,
	}
}
