package lint

import (
	"go/ast"
	gotoken "go/token"
	"go/types"
	"strconv"
	"strings"
)

// StatsMask keeps the determinism-comparison mask in internal/eval in
// lockstep with explore.Stats. The eval package declares two lists —
// DeterministicStatsFields (compared bit-for-bit by the differential and
// bench gates) and VolatileStatsFields (masked before comparison:
// wall-clock, spill activity) — and every field of explore.Stats must
// appear in exactly one of them. Adding a Stats counter without
// classifying it is exactly the bug shape that let SpillRuns/DiskProbes
// drift be papered over by hand-maintained masking in four test files:
// the field silently escapes both the guarantee and the mask.
//
// The analyzer runs only on the eval package, where both the lists and
// the imported Stats type are visible; there is no annotation escape —
// the fix is always to classify the field.
var StatsMask = &Analyzer{
	Name: "statsmask",
	Doc:  "every explore.Stats field must be classified as compared (DeterministicStatsFields) or masked (VolatileStatsFields) in the eval package",
	Run:  runStatsMask,
}

func runStatsMask(pass *Pass) error {
	if !evalPkg(pass.Pkg.Path()) {
		return nil
	}

	// The Stats struct comes from the imported explore package.
	var stats *types.Struct
	for _, imp := range pass.Pkg.Imports() {
		if imp.Path() != "internal/explore" && !strings.HasSuffix(imp.Path(), "/internal/explore") {
			continue
		}
		obj := imp.Scope().Lookup("Stats")
		if obj == nil {
			continue
		}
		if st, ok := obj.Type().Underlying().(*types.Struct); ok {
			stats = st
		}
	}
	if stats == nil {
		return nil // eval without an explore import has no contract to check
	}

	lists := map[string]map[string]gotoken.Pos{}
	var anchor ast.Node
	for _, f := range pass.Files {
		if pass.isTestFile(f.Pos()) {
			continue
		}
		for _, decl := range f.Decls {
			gd, ok := decl.(*ast.GenDecl)
			if !ok {
				continue
			}
			for _, spec := range gd.Specs {
				vs, ok := spec.(*ast.ValueSpec)
				if !ok {
					continue
				}
				for i, name := range vs.Names {
					if name.Name != "DeterministicStatsFields" && name.Name != "VolatileStatsFields" {
						continue
					}
					if anchor == nil {
						anchor = name
					}
					if i >= len(vs.Values) {
						continue
					}
					lists[name.Name] = stringElems(vs.Values[i])
				}
			}
		}
	}

	det, detOK := lists["DeterministicStatsFields"]
	vol, volOK := lists["VolatileStatsFields"]
	if !detOK || !volOK {
		// Without the declarations the contract has no anchor at all.
		pos := pass.Files[0].Name.Pos()
		pass.Reportf(pos, "the eval package must declare DeterministicStatsFields and VolatileStatsFields classifying every explore.Stats field (found det=%v vol=%v)", detOK, volOK)
		return nil
	}

	fields := map[string]bool{}
	for i := 0; i < stats.NumFields(); i++ {
		fields[stats.Field(i).Name()] = true
	}
	for name, pos := range det {
		if !fields[name] {
			pass.Reportf(pos, "DeterministicStatsFields names %q, which is not a field of explore.Stats", name)
		}
		if other, dup := vol[name]; dup {
			pass.Reportf(other, "explore.Stats field %q is listed as both deterministic and volatile; pick one side of the contract", name)
		}
	}
	for name, pos := range vol {
		if !fields[name] {
			pass.Reportf(pos, "VolatileStatsFields names %q, which is not a field of explore.Stats", name)
		}
	}
	for i := 0; i < stats.NumFields(); i++ {
		name := stats.Field(i).Name()
		if _, ok := det[name]; ok {
			continue
		}
		if _, ok := vol[name]; ok {
			continue
		}
		pass.Reportf(anchor.Pos(), "explore.Stats field %q is neither compared (DeterministicStatsFields) nor masked (VolatileStatsFields): decide whether it is covered by the determinism guarantee and list it", name)
	}
	return nil
}

// stringElems extracts the string elements of a composite literal, keyed
// by value and anchored to each element's position.
func stringElems(expr ast.Expr) map[string]gotoken.Pos {
	out := map[string]gotoken.Pos{}
	cl, ok := expr.(*ast.CompositeLit)
	if !ok {
		return out
	}
	for _, el := range cl.Elts {
		lit, ok := el.(*ast.BasicLit)
		if !ok {
			continue
		}
		s, err := strconv.Unquote(lit.Value)
		if err != nil {
			continue
		}
		out[s] = lit.Pos()
	}
	return out
}
