package lint

import (
	"go/ast"
	"go/constant"
	"go/types"
)

// PtrAddr guards the determinism contract against pointer identity
// leaking into observable values. Heap addresses differ run to run (and
// worker to worker), so inside the deterministic closure any value
// derived from where an object lives — rather than what it holds — is a
// nondeterminism leak. Three shapes are reported:
//
//   - formatting a pointer's address into output: %p always, and a
//     pointer, channel, function or unsafe.Pointer argument under a
//     value verb (%v, %d, %x, %s) or a non-formatting fmt call, where
//     fmt prints the address;
//   - uintptr(unsafe.Pointer(...)): the address laundered into an
//     ordinary integer, ready to be compared, hashed or emitted;
//   - a map type keyed by a pointer, channel or unsafe.Pointer: lookup
//     and iteration key on object identity, so equal states hash apart.
//
// The escape is `//lint:ptraddr-ok <reason>` on the site.
var PtrAddr = &Analyzer{
	Name:    "ptraddr",
	Doc:     "flag pointer identity used as a value (%p and friends, uintptr(unsafe.Pointer), pointer map keys) in the deterministic closure",
	Run:     runPtrAddr,
	Closure: true,
}

func runPtrAddr(pass *Pass) error {
	for _, f := range pass.Files {
		ast.Inspect(f, func(n ast.Node) bool {
			if pass.isTestFile(f.Pos()) {
				return false
			}
			switch n := n.(type) {
			case *ast.CallExpr:
				pass.checkFmtCall(n)
				pass.checkUintptrConv(n)
			case *ast.MapType:
				tv, ok := pass.TypesInfo.Types[n]
				if !ok {
					return true
				}
				m, ok := tv.Type.Underlying().(*types.Map)
				if !ok || !addressKeyed(m.Key()) {
					return true
				}
				if pass.annotated(n.Pos(), "ptraddr-ok") {
					return true
				}
				pass.ReportfClosure(n.Pos(), "map keyed by %s compares by pointer identity: heap addresses differ run to run, so lookups and iteration key on object identity instead of state; key by a canonical value or annotate //lint:ptraddr-ok <reason>", typeLabel(m.Key()))
			}
			return true
		})
	}
	return nil
}

// checkFmtCall inspects a call of a fmt printing function for pointer
// arguments whose address would reach the output.
func (p *Pass) checkFmtCall(call *ast.CallExpr) {
	sel, ok := call.Fun.(*ast.SelectorExpr)
	if !ok {
		return
	}
	fn, ok := p.TypesInfo.Uses[sel.Sel].(*types.Func)
	if !ok || fn.Pkg() == nil || fn.Pkg().Path() != "fmt" {
		return
	}
	sig, ok := fn.Type().(*types.Signature)
	if !ok || !sig.Variadic() {
		return
	}
	name := fn.Name()
	if sig.Params().Len()-1 > len(call.Args) || call.Ellipsis.IsValid() {
		return
	}
	verbArgs := call.Args[sig.Params().Len()-1:]
	if len(name) > 1 && name[len(name)-1] == 'f' {
		// Formatting variant: the format string is the parameter before
		// the variadic tail; match verbs to arguments.
		fmtIdx := sig.Params().Len() - 2
		if fmtIdx < 0 || fmtIdx >= len(call.Args) {
			return
		}
		tv, ok := p.TypesInfo.Types[call.Args[fmtIdx]]
		if !ok || tv.Value == nil || tv.Value.Kind() != constant.String {
			return
		}
		p.checkFormatVerbs(call, constant.StringVal(tv.Value), verbArgs)
		return
	}
	// Print/Println/Sprint/...: every pointer-ish argument prints its
	// address.
	for _, arg := range verbArgs {
		tv, ok := p.TypesInfo.Types[arg]
		if !ok || !addressFormatted(tv.Type) {
			continue
		}
		if p.annotated(arg.Pos(), "ptraddr-ok") {
			continue
		}
		p.ReportfClosure(arg.Pos(), "fmt.%s renders %s as its address, which differs run to run; print the pointed-to value or annotate //lint:ptraddr-ok <reason>", name, typeLabel(tv.Type))
	}
}

// checkFormatVerbs walks format's verbs against args, reporting %p
// outright and value verbs applied to address-formatted types. Dynamic
// width (*), indexed arguments and unmatched arities end the scan —
// precision there belongs to go vet's printf analyzer, not this one.
func (p *Pass) checkFormatVerbs(call *ast.CallExpr, format string, args []ast.Expr) {
	argIdx := 0
	for i := 0; i < len(format); i++ {
		if format[i] != '%' {
			continue
		}
		i++
		// Flags, width, precision; bail on dynamic or indexed forms.
		for i < len(format) {
			c := format[i]
			if c == '*' || c == '[' {
				return
			}
			if c == '%' || (c >= 'a' && c <= 'z') || (c >= 'A' && c <= 'Z') {
				break
			}
			i++
		}
		if i >= len(format) {
			return
		}
		verb := format[i]
		if verb == '%' {
			continue
		}
		if argIdx >= len(args) {
			return
		}
		arg := args[argIdx]
		argIdx++
		switch verb {
		case 'p', 'P':
			if !p.annotated(arg.Pos(), "ptraddr-ok") {
				p.ReportfClosure(arg.Pos(), "%%p formats a heap address, which differs run to run on a deterministic engine path; derive a canonical identifier or annotate //lint:ptraddr-ok <reason>")
			}
		case 'v', 'd', 'x', 'X', 's', 'q':
			tv, ok := p.TypesInfo.Types[arg]
			if !ok || !addressFormatted(tv.Type) {
				continue
			}
			if !p.annotated(arg.Pos(), "ptraddr-ok") {
				p.ReportfClosure(arg.Pos(), "%%%c renders %s as its address, which differs run to run; print the pointed-to value or annotate //lint:ptraddr-ok <reason>", verb, typeLabel(tv.Type))
			}
		}
	}
}

// checkUintptrConv reports uintptr(x) where x is an unsafe.Pointer: the
// canonical address-laundering idiom.
func (p *Pass) checkUintptrConv(call *ast.CallExpr) {
	tv, ok := p.TypesInfo.Types[call.Fun]
	if !ok || !tv.IsType() || len(call.Args) != 1 {
		return
	}
	b, ok := tv.Type.Underlying().(*types.Basic)
	if !ok || b.Kind() != types.Uintptr {
		return
	}
	argTV, ok := p.TypesInfo.Types[call.Args[0]]
	if !ok {
		return
	}
	ab, ok := argTV.Type.Underlying().(*types.Basic)
	if !ok || ab.Kind() != types.UnsafePointer {
		return
	}
	if p.annotated(call.Pos(), "ptraddr-ok") {
		return
	}
	p.ReportfClosure(call.Pos(), "uintptr(unsafe.Pointer(...)) turns a heap address into an ordinary integer on a deterministic engine path; addresses differ run to run, so any comparison, hash or output derived from it diverges — annotate //lint:ptraddr-ok <reason> if it provably never escapes")
}

// addressFormatted reports whether fmt renders a value of type t as a
// memory address: pointers to scalar-ish values (fmt dereferences
// pointers to structs, arrays, slices and maps), channels, functions and
// unsafe.Pointer.
func addressFormatted(t types.Type) bool {
	switch u := t.Underlying().(type) {
	case *types.Pointer:
		switch u.Elem().Underlying().(type) {
		case *types.Struct, *types.Array, *types.Slice, *types.Map:
			return false
		}
		return true
	case *types.Chan, *types.Signature:
		return true
	case *types.Basic:
		return u.Kind() == types.UnsafePointer
	}
	return false
}

// addressKeyed reports whether a map key of type t compares by pointer
// identity.
func addressKeyed(t types.Type) bool {
	switch u := t.Underlying().(type) {
	case *types.Pointer, *types.Chan:
		return true
	case *types.Basic:
		return u.Kind() == types.UnsafePointer
	}
	return false
}
