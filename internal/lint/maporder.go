package lint

import (
	"go/ast"
	"go/types"
)

// MapOrder guards the determinism contract against Go's randomized map
// iteration order: anywhere in the deterministic closure (every function
// reachable from an engine entry point; see closure.go), any observable
// effect that depends on the order a `range` visits a map is a
// nondeterminism leak (verdicts, traces and stats must be bit-identical
// run to run). A range over a map is reported unless it is one of the
// recognized order-free shapes:
//
//   - `for range m` / `for k := range m` used only to collect the keys
//     into a slice (`keys = append(keys, k)` — or a single-argument
//     conversion of the key, `keys = append(keys, int(k))` — as the
//     entire body): the canonical sort-the-keys prelude;
//   - a keyless `for range m { ... }` (pure counting; no element is
//     observed);
//
// or the site carries `//lint:nondet-ok <reason>` explaining why the
// iteration order cannot reach an observable output.
var MapOrder = &Analyzer{
	Name:    "maporder",
	Doc:     "flag range over maps in the deterministic closure unless keys are sorted first or the site is annotated //lint:nondet-ok",
	Run:     runMapOrder,
	Closure: true,
}

func runMapOrder(pass *Pass) error {
	for _, f := range pass.Files {
		ast.Inspect(f, func(n ast.Node) bool {
			rng, ok := n.(*ast.RangeStmt)
			if !ok {
				return true
			}
			if pass.isTestFile(rng.Pos()) {
				return false
			}
			tv, ok := pass.TypesInfo.Types[rng.X]
			if !ok {
				return true
			}
			if _, isMap := tv.Type.Underlying().(*types.Map); !isMap {
				return true
			}
			if rng.Key == nil && rng.Value == nil {
				return true // pure counting: no element observed
			}
			if keyCollectionLoop(rng) {
				return true
			}
			if pass.annotated(rng.Pos(), "nondet-ok") {
				return true
			}
			pass.ReportfClosure(rng.Pos(), "range over map %s has nondeterministic iteration order on a deterministic engine path; collect and sort the keys first, or annotate //lint:nondet-ok <reason>", typeLabel(tv.Type))
			return true
		})
	}
	return nil
}

// keyCollectionLoop recognizes the sort-the-keys prelude: the loop binds
// only the key and its whole body is `keys = append(keys, k)` — the
// appended value may also be a single-argument conversion of the key,
// `append(keys, int(k))`.
func keyCollectionLoop(rng *ast.RangeStmt) bool {
	key, ok := rng.Key.(*ast.Ident)
	if !ok || key.Name == "_" || rng.Value != nil {
		return false
	}
	if len(rng.Body.List) != 1 {
		return false
	}
	asg, ok := rng.Body.List[0].(*ast.AssignStmt)
	if !ok || len(asg.Lhs) != 1 || len(asg.Rhs) != 1 {
		return false
	}
	call, ok := asg.Rhs[0].(*ast.CallExpr)
	if !ok || len(call.Args) != 2 {
		return false
	}
	fn, ok := call.Fun.(*ast.Ident)
	if !ok || fn.Name != "append" {
		return false
	}
	arg := call.Args[1]
	// Unwrap one conversion: T(k).
	if conv, ok := arg.(*ast.CallExpr); ok && len(conv.Args) == 1 {
		arg = conv.Args[0]
	}
	id, ok := arg.(*ast.Ident)
	return ok && id.Name == key.Name
}

// typeLabel renders t compactly for a diagnostic.
func typeLabel(t types.Type) string {
	return types.TypeString(t, func(p *types.Package) string { return p.Name() })
}
