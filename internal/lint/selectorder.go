package lint

import "go/ast"

// SelectOrder guards the determinism contract against the runtime's
// select statement: when more than one case is ready, Go picks one
// pseudo-randomly, so a multi-case select on an engine path is a
// scheduling coin-flip. Inside the deterministic closure every select
// with two or more cases (a default clause counts — default-vs-comm
// choice is load-dependent) must carry `//lint:select-ok <reason>`
// stating why the choice cannot reach a verdict, stat or trace — e.g.
// the cases are mutually exclusive by protocol, or every case folds into
// a commutative merge. Single-case selects are deterministic and exempt.
var SelectOrder = &Analyzer{
	Name:    "selectorder",
	Doc:     "require //lint:select-ok on multi-case select statements in the deterministic closure (case choice is runtime-nondeterministic)",
	Run:     runSelectOrder,
	Closure: true,
}

func runSelectOrder(pass *Pass) error {
	for _, f := range pass.Files {
		if pass.isTestFile(f.Pos()) {
			continue
		}
		ast.Inspect(f, func(n ast.Node) bool {
			sel, ok := n.(*ast.SelectStmt)
			if !ok {
				return true
			}
			if len(sel.Body.List) < 2 {
				return true
			}
			if pass.annotated(sel.Pos(), "select-ok") {
				return true
			}
			pass.ReportfClosure(sel.Pos(), "select with %d cases on a deterministic engine path: the runtime picks among ready cases pseudo-randomly; restructure to a deterministic order or annotate //lint:select-ok <reason>", len(sel.Body.List))
			return true
		})
	}
	return nil
}
