package linttest

import (
	"fmt"
	"go/ast"
	"go/parser"
	"go/token"
	"go/types"
	"os"
	"path/filepath"
	"regexp"
	"sort"
	"strings"
	"testing"

	"mpbasset/internal/lint"
)

// Run applies analyzer a to every package under root through the
// closure-aware pipeline and matches the diagnostics against the
// fixtures' want comments.
func Run(t *testing.T, a *lint.Analyzer, root string) {
	t.Helper()
	pkgs, fset := loadTree(t, root)
	diags, err := lint.RunPackages([]*lint.Analyzer{a}, pkgs, nil)
	if err != nil {
		t.Fatalf("fixture %s: %v", root, err)
	}
	var files []*ast.File
	for _, p := range pkgs {
		files = append(files, p.Files...)
	}
	checkExpectations(t, fset, files, diags)
}

// loadTree typechecks every package under root with the hermetic
// importer, returning them in dependency-safe (sorted) order on a shared
// FileSet.
func loadTree(t *testing.T, root string) ([]*lint.Package, *token.FileSet) {
	t.Helper()
	absRoot, err := filepath.Abs(root)
	if err != nil {
		t.Fatal(err)
	}
	imp := &fixtureImporter{
		root: absRoot,
		fset: token.NewFileSet(),
		pkgs: make(map[string]*loadedPkg),
	}

	var paths []string
	err = filepath.WalkDir(absRoot, func(path string, d os.DirEntry, err error) error {
		if err != nil || !d.IsDir() {
			return err
		}
		ents, err := os.ReadDir(path)
		if err != nil {
			return err
		}
		for _, e := range ents {
			if !e.IsDir() && strings.HasSuffix(e.Name(), ".go") {
				rel, err := filepath.Rel(absRoot, path)
				if err != nil {
					return err
				}
				paths = append(paths, filepath.ToSlash(rel))
				break
			}
		}
		return nil
	})
	if err != nil {
		t.Fatal(err)
	}
	sort.Strings(paths)
	if len(paths) == 0 {
		t.Fatalf("no fixture packages under %s", root)
	}

	var pkgs []*lint.Package
	for _, path := range paths {
		pkg, err := imp.load(path)
		if err != nil {
			t.Fatalf("fixture %s: %v", path, err)
		}
		pkgs = append(pkgs, &lint.Package{
			Fset:      imp.fset,
			Files:     pkg.files,
			Pkg:       pkg.pkg,
			TypesInfo: pkg.info,
		})
	}
	return pkgs, imp.fset
}

var wantRe = regexp.MustCompile("want `([^`]*)`")

// checkExpectations matches diagnostics against the files' want comments
// line by line.
func checkExpectations(t *testing.T, fset *token.FileSet, files []*ast.File, diags []lint.Diagnostic) {
	t.Helper()
	type key struct {
		file string
		line int
	}
	wants := make(map[key][]*regexp.Regexp)
	for _, f := range files {
		for _, cg := range f.Comments {
			for _, c := range cg.List {
				for _, m := range wantRe.FindAllStringSubmatch(c.Text, -1) {
					re, err := regexp.Compile(m[1])
					if err != nil {
						t.Fatalf("%s: bad want regexp %q: %v", fset.Position(c.Pos()), m[1], err)
					}
					posn := fset.Position(c.Pos())
					k := key{posn.Filename, posn.Line}
					wants[k] = append(wants[k], re)
				}
			}
		}
	}
	for _, d := range diags {
		k := key{d.Pos.Filename, d.Pos.Line}
		matched := false
		for i, re := range wants[k] {
			if re.MatchString(d.Message) {
				wants[k] = append(wants[k][:i], wants[k][i+1:]...)
				matched = true
				break
			}
		}
		if !matched {
			t.Errorf("unexpected diagnostic at %s: %s", d.Pos, d.Message)
		}
	}
	for k, res := range wants {
		for _, re := range res {
			t.Errorf("%s:%d: expected diagnostic matching %q, got none", k.file, k.line, re)
		}
	}
}

// loadedPkg is one typechecked fixture package.
type loadedPkg struct {
	pkg   *types.Package
	files []*ast.File
	info  *types.Info
}

// fixtureImporter typechecks fixture packages on demand, resolving every
// import inside the fixture root.
type fixtureImporter struct {
	root string
	fset *token.FileSet
	pkgs map[string]*loadedPkg
}

func (imp *fixtureImporter) Import(path string) (*types.Package, error) {
	if path == "unsafe" {
		return types.Unsafe, nil
	}
	p, err := imp.load(path)
	if err != nil {
		return nil, err
	}
	return p.pkg, nil
}

func (imp *fixtureImporter) load(path string) (*loadedPkg, error) {
	if p, ok := imp.pkgs[path]; ok {
		return p, nil
	}
	dir := filepath.Join(imp.root, filepath.FromSlash(path))
	ents, err := os.ReadDir(dir)
	if err != nil {
		return nil, fmt.Errorf("fixture import %q: %w", path, err)
	}
	var files []*ast.File
	var names []string
	for _, e := range ents {
		if e.IsDir() || !strings.HasSuffix(e.Name(), ".go") {
			continue
		}
		names = append(names, e.Name())
	}
	sort.Strings(names)
	for _, name := range names {
		f, err := parser.ParseFile(imp.fset, filepath.Join(dir, name), nil, parser.ParseComments)
		if err != nil {
			return nil, err
		}
		files = append(files, f)
	}
	info := &types.Info{
		Types:      make(map[ast.Expr]types.TypeAndValue),
		Defs:       make(map[*ast.Ident]types.Object),
		Uses:       make(map[*ast.Ident]types.Object),
		Implicits:  make(map[ast.Node]types.Object),
		Selections: make(map[*ast.SelectorExpr]*types.Selection),
		Scopes:     make(map[ast.Node]*types.Scope),
	}
	conf := types.Config{Importer: imp}
	pkg, err := conf.Check(path, imp.fset, files, info)
	if err != nil {
		return nil, fmt.Errorf("typecheck fixture %q: %w", path, err)
	}
	p := &loadedPkg{pkg: pkg, files: files, info: info}
	imp.pkgs[path] = p
	return p, nil
}
