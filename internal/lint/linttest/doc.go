// Package linttest runs an analyzer over a self-contained fixture tree
// and checks its diagnostics against `// want` expectations, in the
// spirit of golang.org/x/tools/go/analysis/analysistest (reimplemented on
// the standard library; see internal/lint for why the module carries its
// own framework).
//
// A fixture root is a directory tree whose sub-directories are packages:
// the import path of each package is its path relative to the root, so a
// fixture at testdata/maporder/internal/explore typechecks as package
// path "internal/explore" and matches the suite's entry-point and
// package scoping exactly like the real tree. Imports resolve inside the
// fixture tree only — a fixture that needs `time` declares its own
// minimal fake at <root>/time, keeping the tests hermetic and fast
// (`unsafe` is the one import served by the typechecker itself).
//
// The whole tree runs through the same closure-aware pipeline the
// drivers use (lint.RunPackages with the default entry points), so a
// fixture exercises reachability: a `func BFS()` in a fixture package
// named internal/explore is an engine entry point, and a violation in a
// helper is only reported if some entry point reaches it. Expectations
// are therefore matched globally over the tree, not per package.
//
// Expectations are comments of the form
//
//	for k := range m { // want `range over map`
//
// where the backquoted text is a regexp that must match a diagnostic
// reported on that line. Block comments work too (`/* want `re` */`),
// which is how a line that already carries a //lint: annotation states
// its expectation. Every diagnostic must be expected and every
// expectation must fire; mismatches fail the test with positions.
//
// The package itself makes no determinism claims — it is harness, not
// engine — but it is where the lint suite's claims about the engine/store
// matrix (including doccheck's documentation gate on that matrix) are
// themselves proven against known-answer fixtures.
package linttest
