package lint

import (
	"fmt"
	"go/ast"
	"go/token"
	"go/types"
	"strings"
)

// Analyzer is one static check: a name, a short contract statement, and a
// Run function over a typechecked package. The shape deliberately mirrors
// golang.org/x/tools/go/analysis.Analyzer so the suite can migrate to the
// upstream framework wholesale if the dependency ever becomes available;
// this module is kept dependency-free, so the driver layer (Load,
// RunUnitchecker, cmd/mplint) is implemented here on the standard library
// alone.
type Analyzer struct {
	Name string
	// Doc states the contract the analyzer guards and the escape hatch it
	// honors, in the style of go/analysis docs.
	Doc string
	Run func(*Pass) error
	// Closure marks an analyzer whose findings are scoped to the
	// deterministic closure: it reports through ReportfClosure, and a
	// finding only surfaces when the enclosing function is reachable from
	// an engine entry point (see closure.go). Non-closure analyzers fire
	// unconditionally within their own gates.
	Closure bool
}

// Pass carries one typechecked package through one analyzer.
type Pass struct {
	Analyzer  *Analyzer
	Fset      *token.FileSet
	Files     []*ast.File
	Pkg       *types.Package
	TypesInfo *types.Info

	report      func(Diagnostic)
	annotations map[string]map[int][]annotation // file -> line -> markers
	// facts/index are set by RunPackage; when nil (ad-hoc RunAnalyzers
	// use) closure-scoped reports degrade to unconditional ones.
	facts *PackageFacts
	index *funcIndex
}

// Diagnostic is one finding, positioned for editor jump.
type Diagnostic struct {
	Pos      token.Position
	Analyzer string
	Message  string
}

func (d Diagnostic) String() string {
	return fmt.Sprintf("%s: %s [%s]", d.Pos, d.Message, d.Analyzer)
}

// Reportf records a finding at pos.
func (p *Pass) Reportf(pos token.Pos, format string, args ...any) {
	p.report(Diagnostic{
		Pos:      p.Fset.Position(pos),
		Analyzer: p.Analyzer.Name,
		Message:  fmt.Sprintf(format, args...),
	})
}

// ReportfClosure records a closure-conditional finding at pos: it is
// held as a pending fact keyed by the enclosing function and only
// becomes a diagnostic when some unit's closure computation proves that
// function reachable from an engine entry point. A position outside any
// function (an import, a package-level declaration) becomes a
// package-scoped pending that fires when any function of the package is
// in the closure. Without closure context (ad-hoc RunAnalyzers use) the
// finding is reported unconditionally — a conservative superset.
func (p *Pass) ReportfClosure(pos token.Pos, format string, args ...any) {
	if p.facts == nil {
		p.Reportf(pos, format, args...)
		return
	}
	posn := p.Fset.Position(pos)
	p.facts.Pending = append(p.facts.Pending, PendingDiag{
		Func:     p.index.enclosing(pos),
		Pkg:      p.Pkg.Path(),
		Analyzer: p.Analyzer.Name,
		File:     posn.Filename,
		Line:     posn.Line,
		Col:      posn.Column,
		Message:  fmt.Sprintf(format, args...),
	})
}

// annotation is one parsed //lint:<marker> <reason> comment.
type annotation struct {
	marker string
	reason string
	pos    token.Pos
}

// annotationPrefix introduces every suppression comment the suite honors:
//
//	//lint:nondet-ok reordering is folded into a commutative sum
//
// The marker names the analyzer-specific contract being waived and the
// free-text reason is mandatory — an annotation without one is itself
// reported, so every suppression in the tree is explained at the site.
const annotationPrefix = "//lint:"

// scanAnnotations indexes every //lint: comment of every file by line.
func (p *Pass) scanAnnotations() {
	p.annotations = make(map[string]map[int][]annotation)
	for _, f := range p.Files {
		for _, cg := range f.Comments {
			for _, c := range cg.List {
				text := c.Text
				if !strings.HasPrefix(text, annotationPrefix) {
					continue
				}
				rest := strings.TrimPrefix(text, annotationPrefix)
				marker, reason, _ := strings.Cut(rest, " ")
				posn := p.Fset.Position(c.Pos())
				byLine := p.annotations[posn.Filename]
				if byLine == nil {
					byLine = make(map[int][]annotation)
					p.annotations[posn.Filename] = byLine
				}
				byLine[posn.Line] = append(byLine[posn.Line], annotation{
					marker: marker,
					reason: strings.TrimSpace(reason),
					pos:    c.Pos(),
				})
			}
		}
	}
}

// annotated reports whether the line of pos — or the contiguous block of
// annotation lines immediately above it, where standalone suppression
// comments stack when a site waives more than one contract — carries
// //lint:<marker>. A matching annotation with an empty reason suppresses
// nothing and is reported instead: the escape hatch requires an
// explanation.
func (p *Pass) annotated(pos token.Pos, marker string) bool {
	posn := p.Fset.Position(pos)
	byLine := p.annotations[posn.Filename]
	if byLine == nil {
		return false
	}
	check := func(line int) (found bool) {
		for _, a := range byLine[line] {
			if a.marker != marker {
				continue
			}
			if a.reason == "" {
				p.Reportf(a.pos, "//lint:%s needs a reason: state why this site is exempt from the %s contract", marker, p.Analyzer.Name)
				return true // suppress the site's own diagnostic; the empty-reason one stands
			}
			return true
		}
		return false
	}
	if check(posn.Line) {
		return true
	}
	for line := posn.Line - 1; line > 0 && len(byLine[line]) > 0; line-- {
		if check(line) {
			return true
		}
	}
	return false
}

// isTestFile reports whether the file holding pos is a _test.go file; the
// determinism contracts bind production code, not the test harnesses that
// probe it.
func (p *Pass) isTestFile(pos token.Pos) bool {
	return strings.HasSuffix(p.Fset.Position(pos).Filename, "_test.go")
}

// RunAnalyzers applies every analyzer to one typechecked package without
// closure context and returns the findings sorted by position.
// Closure-scoped analyzers report unconditionally here; the drivers use
// RunPackage, which gates them on reachability.
func RunAnalyzers(analyzers []*Analyzer, fset *token.FileSet, files []*ast.File, pkg *types.Package, info *types.Info) ([]Diagnostic, error) {
	diags, _, err := runPass(analyzers, fset, files, pkg, info, nil, nil)
	if err != nil {
		return nil, err
	}
	return dedupDiags(diags), nil
}

// RunPackage is the full per-unit pipeline both drivers share: build the
// package's call-graph facts under spec, run every analyzer (closure
// findings accumulate as pending facts), then emit whatever pendings —
// this package's and its dependencies', carried in depFacts — the
// package's own entry points prove reachable. It returns the unit's
// diagnostics and its facts for the channel (self last, after pendings
// are recorded).
func RunPackage(analyzers []*Analyzer, fset *token.FileSet, files []*ast.File, pkg *types.Package, info *types.Info, depFacts []*PackageFacts, spec *EntryPoints) ([]Diagnostic, *PackageFacts, error) {
	facts, index := BuildFacts(fset, files, pkg, info, spec)
	diags, _, err := runPass(analyzers, fset, files, pkg, info, facts, index)
	if err != nil {
		return nil, nil, err
	}
	diags = append(diags, EmitClosure(facts, depFacts)...)
	return dedupDiags(diags), facts, nil
}

// runPass runs the analyzers over one package, threading the optional
// closure context through each Pass.
func runPass(analyzers []*Analyzer, fset *token.FileSet, files []*ast.File, pkg *types.Package, info *types.Info, facts *PackageFacts, index *funcIndex) ([]Diagnostic, *PackageFacts, error) {
	var diags []Diagnostic
	for _, a := range analyzers {
		pass := &Pass{
			Analyzer:  a,
			Fset:      fset,
			Files:     files,
			Pkg:       pkg,
			TypesInfo: info,
			report:    func(d Diagnostic) { diags = append(diags, d) },
			facts:     facts,
			index:     index,
		}
		pass.scanAnnotations()
		if err := a.Run(pass); err != nil {
			return nil, nil, fmt.Errorf("%s: %w", a.Name, err)
		}
	}
	return diags, facts, nil
}
