package lint

import (
	"fmt"
	"go/ast"
	"go/token"
	"go/types"
	"sort"
	"strings"
)

// Analyzer is one static check: a name, a short contract statement, and a
// Run function over a typechecked package. The shape deliberately mirrors
// golang.org/x/tools/go/analysis.Analyzer so the suite can migrate to the
// upstream framework wholesale if the dependency ever becomes available;
// this module is kept dependency-free, so the driver layer (Load,
// RunUnitchecker, cmd/mplint) is implemented here on the standard library
// alone.
type Analyzer struct {
	Name string
	// Doc states the contract the analyzer guards and the escape hatch it
	// honors, in the style of go/analysis docs.
	Doc string
	Run func(*Pass) error
}

// Pass carries one typechecked package through one analyzer.
type Pass struct {
	Analyzer  *Analyzer
	Fset      *token.FileSet
	Files     []*ast.File
	Pkg       *types.Package
	TypesInfo *types.Info

	report      func(Diagnostic)
	annotations map[string]map[int][]annotation // file -> line -> markers
}

// Diagnostic is one finding, positioned for editor jump.
type Diagnostic struct {
	Pos      token.Position
	Analyzer string
	Message  string
}

func (d Diagnostic) String() string {
	return fmt.Sprintf("%s: %s [%s]", d.Pos, d.Message, d.Analyzer)
}

// Reportf records a finding at pos.
func (p *Pass) Reportf(pos token.Pos, format string, args ...any) {
	p.report(Diagnostic{
		Pos:      p.Fset.Position(pos),
		Analyzer: p.Analyzer.Name,
		Message:  fmt.Sprintf(format, args...),
	})
}

// annotation is one parsed //lint:<marker> <reason> comment.
type annotation struct {
	marker string
	reason string
	pos    token.Pos
}

// annotationPrefix introduces every suppression comment the suite honors:
//
//	//lint:nondet-ok reordering is folded into a commutative sum
//
// The marker names the analyzer-specific contract being waived and the
// free-text reason is mandatory — an annotation without one is itself
// reported, so every suppression in the tree is explained at the site.
const annotationPrefix = "//lint:"

// scanAnnotations indexes every //lint: comment of every file by line.
func (p *Pass) scanAnnotations() {
	p.annotations = make(map[string]map[int][]annotation)
	for _, f := range p.Files {
		for _, cg := range f.Comments {
			for _, c := range cg.List {
				text := c.Text
				if !strings.HasPrefix(text, annotationPrefix) {
					continue
				}
				rest := strings.TrimPrefix(text, annotationPrefix)
				marker, reason, _ := strings.Cut(rest, " ")
				posn := p.Fset.Position(c.Pos())
				byLine := p.annotations[posn.Filename]
				if byLine == nil {
					byLine = make(map[int][]annotation)
					p.annotations[posn.Filename] = byLine
				}
				byLine[posn.Line] = append(byLine[posn.Line], annotation{
					marker: marker,
					reason: strings.TrimSpace(reason),
					pos:    c.Pos(),
				})
			}
		}
	}
}

// annotated reports whether the line of pos — or the line immediately
// above it, where a standalone suppression comment sits — carries
// //lint:<marker>. A matching annotation with an empty reason suppresses
// nothing and is reported instead: the escape hatch requires an
// explanation.
func (p *Pass) annotated(pos token.Pos, marker string) bool {
	posn := p.Fset.Position(pos)
	byLine := p.annotations[posn.Filename]
	if byLine == nil {
		return false
	}
	for _, line := range []int{posn.Line, posn.Line - 1} {
		for _, a := range byLine[line] {
			if a.marker != marker {
				continue
			}
			if a.reason == "" {
				p.Reportf(a.pos, "//lint:%s needs a reason: state why this site is exempt from the %s contract", marker, p.Analyzer.Name)
				return true // suppress the site's own diagnostic; the empty-reason one stands
			}
			return true
		}
	}
	return false
}

// isTestFile reports whether the file holding pos is a _test.go file; the
// determinism contracts bind production code, not the test harnesses that
// probe it.
func (p *Pass) isTestFile(pos token.Pos) bool {
	return strings.HasSuffix(p.Fset.Position(pos).Filename, "_test.go")
}

// RunAnalyzers applies every analyzer to one typechecked package and
// returns the findings sorted by position.
func RunAnalyzers(analyzers []*Analyzer, fset *token.FileSet, files []*ast.File, pkg *types.Package, info *types.Info) ([]Diagnostic, error) {
	var diags []Diagnostic
	for _, a := range analyzers {
		pass := &Pass{
			Analyzer:  a,
			Fset:      fset,
			Files:     files,
			Pkg:       pkg,
			TypesInfo: info,
			report:    func(d Diagnostic) { diags = append(diags, d) },
		}
		pass.scanAnnotations()
		if err := a.Run(pass); err != nil {
			return nil, fmt.Errorf("%s: %w", a.Name, err)
		}
	}
	sort.Slice(diags, func(i, j int) bool {
		a, b := diags[i].Pos, diags[j].Pos
		if a.Filename != b.Filename {
			return a.Filename < b.Filename
		}
		if a.Line != b.Line {
			return a.Line < b.Line
		}
		if a.Column != b.Column {
			return a.Column < b.Column
		}
		return diags[i].Analyzer < diags[j].Analyzer
	})
	return diags, nil
}
