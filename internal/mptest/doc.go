// Package mptest generates small randomized message-passing protocols with
// honest POR annotations. The generator is the test bed for the soundness
// arguments of this repository: partial-order reduction, dynamic POR,
// transition refinement and symmetry reduction are all validated by
// comparing their results against unreduced searches over thousands of
// generated protocols (in addition to the bundled real protocols).
//
// Generated protocols are deterministic functions of their seed, bounded
// (every state-changing transition is gated on a round counter), and
// annotation-honest by construction: send specifications list exactly the
// messages a transition can emit, reply transitions only answer their
// senders, and ReadOnly transitions never touch local state. Protocols are
// generated with ValidateSends enabled, so any generator bug that breaks
// these claims fails the tests loudly.
//
// In the engine/store matrix, mptest supplies the differential workload:
// the fuzz and soundness suites run one generated protocol through every
// engine × reduction × store-tier cell and demand bit-identical results —
// except over the lossy bitstate tier, whose runs are coverage claims and
// are held only to their replay and monotonicity contracts (see
// explore.BitstateStore).
package mptest
