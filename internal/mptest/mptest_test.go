package mptest

import (
	"testing"

	"mpbasset/internal/explore"
)

func TestDeterministic(t *testing.T) {
	for seed := int64(0); seed < 20; seed++ {
		p1, err := Random(GenConfig{Seed: seed, Quorums: true})
		if err != nil {
			t.Fatal(err)
		}
		p2, err := Random(GenConfig{Seed: seed, Quorums: true})
		if err != nil {
			t.Fatal(err)
		}
		g1, err := explore.BuildGraph(p1, 100000)
		if err != nil {
			t.Fatal(err)
		}
		g2, err := explore.BuildGraph(p2, 100000)
		if err != nil {
			t.Fatal(err)
		}
		if diff := g1.Diff(g2); diff != "" {
			t.Fatalf("seed %d: generator not deterministic: %s", seed, diff)
		}
	}
}

func TestGeneratedProtocolsAreAnnotationHonest(t *testing.T) {
	// ValidateSends is on; a full search executes every reachable event,
	// so any dishonest Sends/IsReply/ReadOnly/UniquePerSender annotation
	// fails loudly.
	for seed := int64(0); seed < 200; seed++ {
		p, err := Random(GenConfig{Seed: seed, Quorums: true})
		if err != nil {
			t.Fatal(err)
		}
		if _, err := explore.DFS(p, explore.Options{}); err != nil {
			t.Errorf("seed %d: %v", seed, err)
		}
	}
}

func TestGeneratedProtocolsTerminate(t *testing.T) {
	for seed := int64(0); seed < 50; seed++ {
		p, err := Random(GenConfig{Seed: seed, Quorums: true})
		if err != nil {
			t.Fatal(err)
		}
		res, err := explore.DFS(p, explore.Options{MaxStates: 500000})
		if err != nil {
			t.Fatal(err)
		}
		if res.Verdict != explore.VerdictVerified {
			t.Errorf("seed %d: %s (generated protocols without thresholds must verify)", seed, res.Verdict)
		}
	}
}

func TestCyclicGeneration(t *testing.T) {
	p, err := Random(GenConfig{Seed: 1, Cycles: true})
	if err != nil {
		t.Fatal(err)
	}
	res, err := explore.DFS(p, explore.Options{})
	if err != nil {
		t.Fatal(err)
	}
	// The CYC token loop never deadlocks on its own but keeps the graph
	// cyclic; a stateful search must still terminate.
	if res.Verdict != explore.VerdictVerified {
		t.Fatalf("cyclic protocol: %s", res.Verdict)
	}
	if res.Stats.Revisits == 0 {
		t.Error("expected revisits on a cyclic state graph")
	}
}

func TestRingGeneration(t *testing.T) {
	for _, ring := range []int{3, 5} {
		p, err := Random(GenConfig{Seed: 2, Cycles: true, RingSize: ring, CyclePriority: 3})
		if err != nil {
			t.Fatal(err)
		}
		base, err := Random(GenConfig{Seed: 2})
		if err != nil {
			t.Fatal(err)
		}
		if p.N != base.N+ring {
			t.Errorf("ring %d: N = %d, want %d (ring processes appended)", ring, p.N, base.N+ring)
		}
		cyc := 0
		for _, tr := range p.Transitions {
			if tr.Name == "CYC" {
				cyc++
				if tr.Priority != 3 {
					t.Errorf("ring transition priority %d, want 3", tr.Priority)
				}
				if !tr.ReadOnly {
					t.Error("ring transitions must be ReadOnly")
				}
			}
		}
		if cyc != ring {
			t.Errorf("ring %d: %d CYC transitions, want %d", ring, cyc, ring)
		}
		res, err := explore.DFS(p, explore.Options{MaxStates: 500000})
		if err != nil {
			t.Fatal(err)
		}
		if res.Verdict != explore.VerdictVerified {
			t.Errorf("ring %d: %s (no threshold, must verify)", ring, res.Verdict)
		}
		if res.Stats.Revisits == 0 {
			t.Errorf("ring %d: expected revisits on a cyclic state graph", ring)
		}
	}
}

func TestIgnoringTrap(t *testing.T) {
	if _, err := IgnoringTrap(1); err == nil {
		t.Error("ring of 1 accepted")
	}
	for _, ring := range []int{2, 4} {
		p, err := IgnoringTrap(ring)
		if err != nil {
			t.Fatal(err)
		}
		if p.N != ring+1 {
			t.Errorf("ring %d: N = %d, want %d", ring, p.N, ring+1)
		}
		// Ground truth: the violation is reachable (one step away), and
		// the unreduced state graph is the ring × {pre, post violation}.
		res, err := explore.BFS(p, explore.Options{TrackTrace: true})
		if err != nil {
			t.Fatal(err)
		}
		if res.Verdict != explore.VerdictViolated {
			t.Fatalf("ring %d: %s, want CE", ring, res.Verdict)
		}
		if len(res.Trace) != 1 {
			t.Errorf("ring %d: shortest counterexample has %d steps, want 1", ring, len(res.Trace))
		}
		if _, err := explore.ReplayViolation(p, res.Trace, nil); err != nil {
			t.Errorf("ring %d: trace does not replay: %v", ring, err)
		}
	}
}

func TestThresholdInstallsInvariant(t *testing.T) {
	violated := 0
	for seed := int64(0); seed < 30; seed++ {
		p, err := Random(GenConfig{Seed: seed, Threshold: 1})
		if err != nil {
			t.Fatal(err)
		}
		res, err := explore.DFS(p, explore.Options{})
		if err != nil {
			t.Fatal(err)
		}
		if res.Verdict == explore.VerdictViolated {
			violated++
		}
	}
	if violated == 0 {
		t.Error("threshold 1 should be violated on some seeds (process 0 always has an EMIT)")
	}
}

// TestMaxRoundsDeepensTheGraph pins the MaxRounds knob: raising it must
// deepen the generated state graphs on aggregate (each process draws a
// larger round limit, though the perturbed RNG sequence means no per-seed
// monotonicity), and leaving it at the default (or below) must not perturb
// the RNG draw sequence — existing seeds keep generating the identical
// protocols.
func TestMaxRoundsDeepensTheGraph(t *testing.T) {
	deepened, sumBase, sumDeep := 0, 0, 0
	for seed := int64(0); seed < 10; seed++ {
		base, err := Random(GenConfig{Seed: seed, Quorums: true})
		if err != nil {
			t.Fatal(err)
		}
		same, err := Random(GenConfig{Seed: seed, Quorums: true, MaxRounds: 2})
		if err != nil {
			t.Fatal(err)
		}
		gBase, err := explore.BuildGraph(base, 100000)
		if err != nil {
			t.Fatal(err)
		}
		gSame, err := explore.BuildGraph(same, 100000)
		if err != nil {
			t.Fatal(err)
		}
		if diff := gBase.Diff(gSame); diff != "" {
			t.Fatalf("seed %d: MaxRounds=2 changed the generated protocol: %s", seed, diff)
		}
		deep, err := Random(GenConfig{Seed: seed, Quorums: true, MaxRounds: 5})
		if err != nil {
			t.Fatal(err)
		}
		rBase, err := explore.DFS(base, explore.Options{})
		if err != nil {
			t.Fatal(err)
		}
		rDeep, err := explore.DFS(deep, explore.Options{})
		if err != nil {
			t.Fatal(err)
		}
		sumBase += rBase.Stats.MaxDepth
		sumDeep += rDeep.Stats.MaxDepth
		if rDeep.Stats.MaxDepth > rBase.Stats.MaxDepth {
			deepened++
		}
	}
	if deepened == 0 || sumDeep <= sumBase {
		t.Errorf("MaxRounds=5 did not deepen the graphs across 10 seeds (deepened %d, total depth %d vs %d) — the knob is inert",
			deepened, sumDeep, sumBase)
	}
}
