// Package mptest generates small randomized message-passing protocols with
// honest POR annotations. The generator is the test bed for the soundness
// arguments of this repository: partial-order reduction, dynamic POR,
// transition refinement and symmetry reduction are all validated by
// comparing their results against unreduced searches over thousands of
// generated protocols (in addition to the bundled real protocols).
//
// Generated protocols are deterministic functions of their seed, bounded
// (every state-changing transition is gated on a round counter), and
// annotation-honest by construction: send specifications list exactly the
// messages a transition can emit, reply transitions only answer their
// senders, and ReadOnly transitions never touch local state. Protocols are
// generated with ValidateSends enabled, so any generator bug that breaks
// these claims fails the tests loudly.
package mptest

import (
	"fmt"
	"math/rand"
	"strconv"

	"mpbasset/internal/core"
)

// Local is the local state of every generated process: a bounded round
// counter.
type Local struct {
	Rounds int
}

// Key implements core.LocalState.
func (l *Local) Key() string { return strconv.Itoa(l.Rounds) }

// Clone implements core.LocalState.
func (l *Local) Clone() core.LocalState {
	c := *l
	return &c
}

// payload is a small integer payload.
type payload struct{ V int }

func (p payload) Key() string { return strconv.Itoa(p.V) }

// GenConfig controls the generator.
type GenConfig struct {
	// Seed drives all random choices; equal seeds give identical
	// protocols.
	Seed int64
	// MaxProcs bounds the process count (2..MaxProcs; default 4).
	MaxProcs int
	// Quorums allows quorum transitions (size 2) next to single-message
	// ones.
	Quorums bool
	// AnyQuorums additionally allows unrestricted subset (AnyQuorum)
	// transitions, guarded to small subsets to keep the powerset bounded.
	AnyQuorums bool
	// Cycles adds a ReadOnly reply loop between two processes, making the
	// state graph cyclic (exercises the DFS cycle proviso). Without it,
	// generated graphs are acyclic.
	Cycles bool
	// Threshold, if positive, installs an invariant "process 0 completed
	// fewer than Threshold rounds"; protocols whose process 0 can reach
	// it yield counterexamples. Zero installs no invariant.
	Threshold int
}

// Random generates a protocol from the configuration. The result is
// finalized and has ValidateSends set.
func Random(cfg GenConfig) (*core.Protocol, error) {
	maxProcs := cfg.MaxProcs
	if maxProcs < 2 {
		maxProcs = 4
	}
	rng := rand.New(rand.NewSource(cfg.Seed))
	n := 2 + rng.Intn(maxProcs-1)
	types := []string{"M0", "M1", "M2"}

	var ts []*core.Transition
	for proc := 0; proc < n; proc++ {
		limit := 1 + rng.Intn(2)
		ts = append(ts, emitTransition(rng, core.ProcessID(proc), n, limit, types))
		nConsume := 1 + rng.Intn(2)
		for k := 0; k < nConsume; k++ {
			ts = append(ts, consumeTransition(rng, core.ProcessID(proc), n, limit, types, k, cfg.Quorums))
		}
		if cfg.AnyQuorums && rng.Intn(2) == 0 {
			ts = append(ts, anySubsetTransition(rng, core.ProcessID(proc), limit, types))
		}
	}
	var initial []core.Message
	if cfg.Cycles {
		ts = append(ts, cycleTransitions(n)...)
		initial = append(initial, core.Message{From: 1, To: 0, Type: "CYC", Payload: payload{V: 0}})
	}

	p := &core.Protocol{
		Name:            fmt.Sprintf("random-%d", cfg.Seed),
		N:               n,
		InitialMessages: initial,
		Init: func() []core.LocalState {
			locals := make([]core.LocalState, n)
			for i := range locals {
				locals[i] = &Local{}
			}
			return locals
		},
		Transitions:   ts,
		ValidateSends: true,
	}
	if cfg.Threshold > 0 {
		thr := cfg.Threshold
		p.Invariant = func(s *core.State) error {
			if r := s.Local(0).(*Local).Rounds; r >= thr {
				return fmt.Errorf("process 0 reached %d rounds (threshold %d)", r, thr)
			}
			return nil
		}
		// The invariant reads process 0's rounds: its writers are the
		// visible transitions.
		for _, t := range p.Transitions {
			if t.Proc == 0 && !t.ReadOnly {
				t.Visible = true
			}
		}
	}
	if err := p.Finalize(); err != nil {
		return nil, err
	}
	return p, nil
}

// emitTransition builds a spontaneous sender: each round it broadcasts a
// fixed set of messages whose payload encodes the round (bounded rounds
// keep the state space finite).
func emitTransition(rng *rand.Rand, proc core.ProcessID, n, limit int, types []string) *core.Transition {
	kind := types[rng.Intn(len(types))]
	var recipients []core.ProcessID
	for q := 0; q < n; q++ {
		if core.ProcessID(q) != proc && rng.Intn(2) == 0 {
			recipients = append(recipients, core.ProcessID(q))
		}
	}
	if len(recipients) == 0 {
		recipients = []core.ProcessID{core.ProcessID((int(proc) + 1) % n)}
	}
	return &core.Transition{
		Name:     "EMIT",
		Proc:     proc,
		Priority: 2,
		Sends:    []core.SendSpec{{Type: kind, To: recipients}},
		LocalGuard: func(ls core.LocalState) bool {
			return ls.(*Local).Rounds < limit
		},
		Apply: func(c *core.Ctx) {
			l := c.Local.(*Local)
			l.Rounds++
			for _, r := range recipients {
				c.Send(r, kind, payload{V: l.Rounds})
			}
		},
	}
}

// consumeTransition builds a receiving transition: single-message or
// quorum, sometimes a pure reply (ReadOnly is never combined with the round
// increment, keeping annotations honest — and pure replies would loop, so
// ReadOnly consumers simply absorb).
func consumeTransition(rng *rand.Rand, proc core.ProcessID, n, limit int, types []string, k int, quorums bool) *core.Transition {
	kind := types[rng.Intn(len(types))]
	quorum := 1
	if quorums && n > 2 && rng.Intn(3) == 0 {
		quorum = 2
	}
	var peers []core.ProcessID
	if rng.Intn(2) == 0 {
		for q := 0; q < n; q++ {
			if core.ProcessID(q) != proc {
				peers = append(peers, core.ProcessID(q))
			}
		}
		rng.Shuffle(len(peers), func(i, j int) { peers[i], peers[j] = peers[j], peers[i] })
		size := quorum + rng.Intn(len(peers)-quorum+1)
		peers = append([]core.ProcessID(nil), peers[:size]...)
		for i := range peers {
			for j := i + 1; j < len(peers); j++ {
				if peers[j] < peers[i] {
					peers[i], peers[j] = peers[j], peers[i]
				}
			}
		}
	}
	t := &core.Transition{
		Name:     fmt.Sprintf("RECV%d_%s", k, kind),
		Proc:     proc,
		MsgType:  kind,
		Quorum:   quorum,
		Peers:    peers,
		Priority: 1,
		LocalGuard: func(ls core.LocalState) bool {
			return ls.(*Local).Rounds < limit
		},
	}
	switch rng.Intn(3) {
	case 0:
		// Reply to the sender(s).
		t.IsReply = true
		reply := types[rng.Intn(len(types))]
		t.Sends = []core.SendSpec{{Type: reply, ToSenders: true}}
		t.Apply = func(c *core.Ctx) {
			l := c.Local.(*Local)
			l.Rounds++
			for _, q := range c.Senders() {
				c.Send(q, reply, payload{V: l.Rounds})
			}
		}
	case 1:
		// Absorb and advance.
		t.Apply = func(c *core.Ctx) {
			c.Local.(*Local).Rounds++
		}
	default:
		// Forward to a fixed recipient.
		to := core.ProcessID((int(proc) + 1) % n)
		fwd := types[rng.Intn(len(types))]
		t.Sends = []core.SendSpec{{Type: fwd, To: []core.ProcessID{to}}}
		t.Apply = func(c *core.Ctx) {
			l := c.Local.(*Local)
			l.Rounds++
			c.Send(to, fwd, payload{V: l.Rounds})
		}
	}
	return t
}

// anySubsetTransition builds an AnyQuorum consumer: it absorbs any subset
// of at most two matching messages in one step (the guard bounds the
// powerset).
func anySubsetTransition(rng *rand.Rand, proc core.ProcessID, limit int, types []string) *core.Transition {
	kind := types[rng.Intn(len(types))]
	return &core.Transition{
		Name:    "ANY_" + kind,
		Proc:    proc,
		MsgType: kind,
		Quorum:  core.AnyQuorum,
		LocalGuard: func(ls core.LocalState) bool {
			return ls.(*Local).Rounds < limit
		},
		Guard: func(_ core.LocalState, msgs []core.Message) bool {
			return len(msgs) <= 2
		},
		Apply: func(c *core.Ctx) {
			c.Local.(*Local).Rounds++
		},
	}
}

// cycleTransitions builds a two-process ReadOnly token loop: process 0 and
// 1 bounce a CYC message forever, so the state graph contains a cycle.
func cycleTransitions(n int) []*core.Transition {
	mk := func(self, other core.ProcessID) *core.Transition {
		return &core.Transition{
			Name:     "CYC",
			Proc:     self,
			MsgType:  "CYC",
			Quorum:   1,
			Peers:    []core.ProcessID{other},
			IsReply:  true,
			ReadOnly: true,
			Priority: 0,
			Sends:    []core.SendSpec{{Type: "CYC", ToSenders: true}},
			Apply: func(c *core.Ctx) {
				c.Send(c.Msgs[0].From, "CYC", payload{V: 0})
			},
		}
	}
	return []*core.Transition{mk(0, 1), mk(1, 0)}
}
