package mptest

import (
	"fmt"
	//lint:wallclock-ok seeded PRNG: generated protocols are deterministic functions of their seed, never of the clock
	"math/rand"
	"strconv"

	"mpbasset/internal/core"
	"mpbasset/internal/liveness"
)

// Local is the local state of every generated process: a bounded round
// counter.
type Local struct {
	Rounds int
}

// Key implements core.LocalState.
func (l *Local) Key() string { return strconv.Itoa(l.Rounds) }

// Clone implements core.LocalState.
func (l *Local) Clone() core.LocalState {
	c := *l
	return &c
}

// payload is a small integer payload.
type payload struct{ V int }

func (p payload) Key() string { return strconv.Itoa(p.V) }

// GenConfig controls the generator.
type GenConfig struct {
	// Seed drives all random choices; equal seeds give identical
	// protocols.
	Seed int64
	// MaxProcs bounds the process count (2..MaxProcs; default 4).
	MaxProcs int
	// Quorums allows quorum transitions (size 2) next to single-message
	// ones.
	Quorums bool
	// AnyQuorums additionally allows unrestricted subset (AnyQuorum)
	// transitions, guarded to small subsets to keep the powerset bounded.
	AnyQuorums bool
	// Cycles adds a ReadOnly token loop, making the state graph cyclic
	// (exercises the engines' ignoring provisos). Without it, generated
	// graphs are acyclic.
	Cycles bool
	// RingSize sets the length of the token loop Cycles installs: 0 or 2
	// is the original two-process reply bounce, larger values build a
	// one-directional token ring over that many dedicated processes
	// (appended after the n random ones), producing cycles the search
	// crosses over several BFS levels.
	RingSize int
	// CyclePriority sets the Priority of the cycle transitions (default 0,
	// tried last by the POR seed heuristic). A priority above the
	// generated transitions' (2) makes the expander prefer the invisible
	// loop as its stubborn-set seed — the adversarial configuration under
	// which a reduced search without an ignoring proviso can defer visible
	// events forever.
	CyclePriority int
	// Threshold, if positive, installs an invariant "process 0 completed
	// fewer than Threshold rounds"; protocols whose process 0 can reach
	// it yield counterexamples. Zero installs no invariant.
	Threshold int
	// MaxRounds bounds each process's per-run round limit (each process
	// draws a limit in 1..MaxRounds; default 2). Larger values deepen the
	// state graph — long first-child spines with unexplored siblings
	// pending at every level — the skewed shape that stresses
	// ParallelDFS's deep-end sibling stealing, where shallow graphs mostly
	// exercise its breadth.
	MaxRounds int
}

// Random generates a protocol from the configuration. The result is
// finalized and has ValidateSends set.
func Random(cfg GenConfig) (*core.Protocol, error) {
	maxProcs := cfg.MaxProcs
	if maxProcs < 2 {
		maxProcs = 4
	}
	maxRounds := cfg.MaxRounds
	if maxRounds < 2 {
		maxRounds = 2
	}
	rng := rand.New(rand.NewSource(cfg.Seed))
	n := 2 + rng.Intn(maxProcs-1)
	types := []string{"M0", "M1", "M2"}

	var ts []*core.Transition
	for proc := 0; proc < n; proc++ {
		limit := 1 + rng.Intn(maxRounds)
		ts = append(ts, emitTransition(rng, core.ProcessID(proc), n, limit, types))
		nConsume := 1 + rng.Intn(2)
		for k := 0; k < nConsume; k++ {
			ts = append(ts, consumeTransition(rng, core.ProcessID(proc), n, limit, types, k, cfg.Quorums))
		}
		if cfg.AnyQuorums && rng.Intn(2) == 0 {
			ts = append(ts, anySubsetTransition(rng, core.ProcessID(proc), limit, types))
		}
	}
	var initial []core.Message
	procs := n
	if cfg.Cycles {
		if cfg.RingSize > 2 {
			// A dedicated one-directional token ring appended after the n
			// random processes: its cycles span RingSize BFS levels.
			ts = append(ts, ringTransitions(core.ProcessID(n), cfg.RingSize, cfg.CyclePriority)...)
			initial = append(initial, core.Message{
				From: core.ProcessID(n + cfg.RingSize - 1), To: core.ProcessID(n),
				Type: "CYC", Payload: payload{V: 0},
			})
			procs = n + cfg.RingSize
		} else {
			ts = append(ts, cycleTransitions(cfg.CyclePriority)...)
			initial = append(initial, core.Message{From: 1, To: 0, Type: "CYC", Payload: payload{V: 0}})
		}
	}

	p := &core.Protocol{
		Name:            fmt.Sprintf("random-%d", cfg.Seed),
		N:               procs,
		InitialMessages: initial,
		Init: func() []core.LocalState {
			locals := make([]core.LocalState, procs)
			for i := range locals {
				locals[i] = &Local{}
			}
			return locals
		},
		Transitions:   ts,
		ValidateSends: true,
	}
	if cfg.Threshold > 0 {
		thr := cfg.Threshold
		p.Invariant = func(s *core.State) error {
			if r := s.Local(0).(*Local).Rounds; r >= thr {
				return fmt.Errorf("process 0 reached %d rounds (threshold %d)", r, thr)
			}
			return nil
		}
		// The invariant reads process 0's rounds: its writers are the
		// visible transitions.
		for _, t := range p.Transitions {
			if t.Proc == 0 && !t.ReadOnly {
				t.Visible = true
			}
		}
	}
	if err := p.Finalize(); err != nil {
		return nil, err
	}
	return p, nil
}

// emitTransition builds a spontaneous sender: each round it broadcasts a
// fixed set of messages whose payload encodes the round (bounded rounds
// keep the state space finite).
func emitTransition(rng *rand.Rand, proc core.ProcessID, n, limit int, types []string) *core.Transition {
	kind := types[rng.Intn(len(types))]
	var recipients []core.ProcessID
	for q := 0; q < n; q++ {
		if core.ProcessID(q) != proc && rng.Intn(2) == 0 {
			recipients = append(recipients, core.ProcessID(q))
		}
	}
	if len(recipients) == 0 {
		recipients = []core.ProcessID{core.ProcessID((int(proc) + 1) % n)}
	}
	return &core.Transition{
		Name:     "EMIT",
		Proc:     proc,
		Priority: 2,
		Sends:    []core.SendSpec{{Type: kind, To: recipients}},
		LocalGuard: func(ls core.LocalState) bool {
			return ls.(*Local).Rounds < limit
		},
		Apply: func(c *core.Ctx) {
			l := c.Local.(*Local)
			l.Rounds++
			for _, r := range recipients {
				c.Send(r, kind, payload{V: l.Rounds})
			}
		},
	}
}

// consumeTransition builds a receiving transition: single-message or
// quorum, sometimes a pure reply (ReadOnly is never combined with the round
// increment, keeping annotations honest — and pure replies would loop, so
// ReadOnly consumers simply absorb).
func consumeTransition(rng *rand.Rand, proc core.ProcessID, n, limit int, types []string, k int, quorums bool) *core.Transition {
	kind := types[rng.Intn(len(types))]
	quorum := 1
	if quorums && n > 2 && rng.Intn(3) == 0 {
		quorum = 2
	}
	var peers []core.ProcessID
	if rng.Intn(2) == 0 {
		for q := 0; q < n; q++ {
			if core.ProcessID(q) != proc {
				peers = append(peers, core.ProcessID(q))
			}
		}
		rng.Shuffle(len(peers), func(i, j int) { peers[i], peers[j] = peers[j], peers[i] })
		size := quorum + rng.Intn(len(peers)-quorum+1)
		peers = append([]core.ProcessID(nil), peers[:size]...)
		for i := range peers {
			for j := i + 1; j < len(peers); j++ {
				if peers[j] < peers[i] {
					peers[i], peers[j] = peers[j], peers[i]
				}
			}
		}
	}
	t := &core.Transition{
		Name:     fmt.Sprintf("RECV%d_%s", k, kind),
		Proc:     proc,
		MsgType:  kind,
		Quorum:   quorum,
		Peers:    peers,
		Priority: 1,
		LocalGuard: func(ls core.LocalState) bool {
			return ls.(*Local).Rounds < limit
		},
	}
	switch rng.Intn(3) {
	case 0:
		// Reply to the sender(s).
		t.IsReply = true
		reply := types[rng.Intn(len(types))]
		t.Sends = []core.SendSpec{{Type: reply, ToSenders: true}}
		t.Apply = func(c *core.Ctx) {
			l := c.Local.(*Local)
			l.Rounds++
			for _, q := range c.Senders() {
				c.Send(q, reply, payload{V: l.Rounds})
			}
		}
	case 1:
		// Absorb and advance.
		t.Apply = func(c *core.Ctx) {
			c.Local.(*Local).Rounds++
		}
	default:
		// Forward to a fixed recipient.
		to := core.ProcessID((int(proc) + 1) % n)
		fwd := types[rng.Intn(len(types))]
		t.Sends = []core.SendSpec{{Type: fwd, To: []core.ProcessID{to}}}
		t.Apply = func(c *core.Ctx) {
			l := c.Local.(*Local)
			l.Rounds++
			c.Send(to, fwd, payload{V: l.Rounds})
		}
	}
	return t
}

// anySubsetTransition builds an AnyQuorum consumer: it absorbs any subset
// of at most two matching messages in one step (the guard bounds the
// powerset).
func anySubsetTransition(rng *rand.Rand, proc core.ProcessID, limit int, types []string) *core.Transition {
	kind := types[rng.Intn(len(types))]
	return &core.Transition{
		Name:    "ANY_" + kind,
		Proc:    proc,
		MsgType: kind,
		Quorum:  core.AnyQuorum,
		LocalGuard: func(ls core.LocalState) bool {
			return ls.(*Local).Rounds < limit
		},
		Guard: func(_ core.LocalState, msgs []core.Message) bool {
			return len(msgs) <= 2
		},
		Apply: func(c *core.Ctx) {
			c.Local.(*Local).Rounds++
		},
	}
}

// cycleTransitions builds a two-process ReadOnly token loop: process 0 and
// 1 bounce a CYC message forever, so the state graph contains a cycle.
func cycleTransitions(priority int) []*core.Transition {
	mk := func(self, other core.ProcessID) *core.Transition {
		return &core.Transition{
			Name:     "CYC",
			Proc:     self,
			MsgType:  "CYC",
			Quorum:   1,
			Peers:    []core.ProcessID{other},
			IsReply:  true,
			ReadOnly: true,
			Priority: priority,
			Sends:    []core.SendSpec{{Type: "CYC", ToSenders: true}},
			Apply: func(c *core.Ctx) {
				c.Send(c.Msgs[0].From, "CYC", payload{V: 0})
			},
		}
	}
	return []*core.Transition{mk(0, 1), mk(1, 0)}
}

// ringTransitions builds a one-directional ReadOnly token ring over size
// processes starting at first: each member consumes CYC from its
// predecessor and forwards it to its successor, so the state graph
// contains a cycle of length size.
func ringTransitions(first core.ProcessID, size, priority int) []*core.Transition {
	ts := make([]*core.Transition, size)
	for i := 0; i < size; i++ {
		self := first + core.ProcessID(i)
		prev := first + core.ProcessID((i+size-1)%size)
		next := first + core.ProcessID((i+1)%size)
		ts[i] = &core.Transition{
			Name:     "CYC",
			Proc:     self,
			MsgType:  "CYC",
			Quorum:   1,
			Peers:    []core.ProcessID{prev},
			ReadOnly: true,
			Priority: priority,
			Sends:    []core.SendSpec{{Type: "CYC", To: []core.ProcessID{next}}},
			Apply: func(c *core.Ctx) {
				c.Send(next, "CYC", payload{V: 0})
			},
		}
	}
	return ts
}

// IgnoringTrap returns the minimal deterministic cyclic protocol on which
// a reduced breadth-first search WITHOUT an ignoring proviso is unsound:
// ring (>= 2) processes carry an invisible, high-priority CYC token loop,
// and process 0 owns a single visible transition that violates the
// invariant. The POR expander always seeds its stubborn set at the token
// holder (priority 5 beats the violating transition's 0), the loop is
// independent of process 0, so every ample set is the lone enabled CYC
// event — a reduced BFS just chases the token around the ring, rediscovers
// visited states forever, and reports Verified although the violation is
// one step away. The DFS stack proviso and the BFS queue proviso both
// promote the expansion that closes the ring, finding the violation via
// the identical trace (ring-1 CYC hops, then the violating event).
func IgnoringTrap(ring int) (*core.Protocol, error) {
	if ring < 2 {
		return nil, fmt.Errorf("mptest: IgnoringTrap needs a ring of at least 2, got %d", ring)
	}
	ts := []*core.Transition{{
		Name:     "VIOLATE",
		Proc:     0,
		Priority: 0,
		Visible:  true,
		LocalGuard: func(ls core.LocalState) bool {
			return ls.(*Local).Rounds < 1
		},
		Apply: func(c *core.Ctx) {
			c.Local.(*Local).Rounds++
		},
	}}
	ts = append(ts, ringTransitions(1, ring, 5)...)
	p := &core.Protocol{
		Name: fmt.Sprintf("ignoring-trap-%d", ring),
		N:    1 + ring,
		InitialMessages: []core.Message{{
			From: core.ProcessID(ring), To: 1, Type: "CYC", Payload: payload{V: 0},
		}},
		Init: func() []core.LocalState {
			locals := make([]core.LocalState, 1+ring)
			for i := range locals {
				locals[i] = &Local{}
			}
			return locals
		},
		Transitions:   ts,
		ValidateSends: true,
		Invariant: func(s *core.State) error {
			if r := s.Local(0).(*Local).Rounds; r >= 1 {
				return fmt.Errorf("process 0 reached %d rounds (threshold 1)", r)
			}
			return nil
		},
	}
	if err := p.Finalize(); err != nil {
		return nil, err
	}
	return p, nil
}

// LivenessTrap returns the minimal deterministic cyclic protocol plus
// liveness property on which a reduced nested DFS WITHOUT the ignoring
// proviso is unsound — the liveness twin of IgnoringTrap, with the
// polarity flipped: for safety the proviso matters because reduction can
// postpone a bad STATE forever, for liveness because reduction can omit
// the accepting CYCLE entirely.
//
// The model is IgnoringTrap's: ring (>= 2) processes carry an invisible,
// high-priority CYC token loop, and process 0 owns a single visible
// PROGRESS transition that bumps its round counter from 0 to 1 (there is
// no invariant — the property under check is the liveness property). The
// property accepts states where process 0 has progressed, so a
// counterexample is a (reachable) cycle on which process 0 keeps its
// round forever — the full graph has one: fire PROGRESS, then loop the
// ring token at rounds 1, and NDFS reports it. A proviso-less reduced
// search never sees it: the expander always picks the lone CYC event
// (priority 5 beats PROGRESS's 0), so the reduced graph is just the bare
// rounds-0 token loop, which contains no accepting state at all — the
// reduction has ignored PROGRESS forever and wrongly reports the property
// live. The stack proviso promotes the expansion that closes the ring,
// restoring the accepting region.
func LivenessTrap(ring int) (*core.Protocol, *liveness.Property, error) {
	if ring < 2 {
		return nil, nil, fmt.Errorf("mptest: LivenessTrap needs a ring of at least 2, got %d", ring)
	}
	ts := []*core.Transition{{
		Name:     "PROGRESS",
		Proc:     0,
		Priority: 0,
		Visible:  true,
		LocalGuard: func(ls core.LocalState) bool {
			return ls.(*Local).Rounds < 1
		},
		Apply: func(c *core.Ctx) {
			c.Local.(*Local).Rounds++
		},
	}}
	ts = append(ts, ringTransitions(1, ring, 5)...)
	p := &core.Protocol{
		Name: fmt.Sprintf("liveness-trap-%d", ring),
		N:    1 + ring,
		InitialMessages: []core.Message{{
			From: core.ProcessID(ring), To: 1, Type: "CYC", Payload: payload{V: 0},
		}},
		Init: func() []core.LocalState {
			locals := make([]core.LocalState, 1+ring)
			for i := range locals {
				locals[i] = &Local{}
			}
			return locals
		},
		Transitions:   ts,
		ValidateSends: true,
	}
	if err := p.Finalize(); err != nil {
		return nil, nil, err
	}
	prop := &liveness.Property{
		Name:  "never-progresses",
		Reads: []core.ProcessID{0},
		Accept: func(s *core.State) bool {
			return s.Local(0).(*Local).Rounds >= 1
		},
	}
	return p, prop, nil
}
