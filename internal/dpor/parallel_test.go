package dpor_test

import (
	"reflect"
	"strings"
	"testing"
	"time"

	"mpbasset/internal/core"
	"mpbasset/internal/dpor"
	"mpbasset/internal/eval"
	"mpbasset/internal/explore"
	"mpbasset/internal/mptest"
	"mpbasset/internal/protocols/multicast"
	"mpbasset/internal/protocols/paxos"
	"mpbasset/internal/protocols/storage"
)

// parallelWorkerCounts is the worker matrix the acceptance criteria pin:
// ExploreParallel must be bit-identical to Explore for every entry, with
// sleep sets on and off.
var parallelWorkerCounts = []int{1, 2, 4, 8}

// assertBitIdentical runs sequential and parallel DPOR under cfg and fails
// on any divergence in verdict, violation, deterministic statistics or
// counterexample trace. The volatile Stats fields (Duration, speculation
// counters) are masked through the same eval helper the differential and
// fuzz suites use everywhere else.
//
// Oversized models are bounded by MaxStates, never MaxDuration: a state cap
// truncates the committed walk at an exact, deterministic point, so even a
// VerdictLimit run must be bit-identical — whereas a wall-clock cap cuts
// each run wherever the scheduler happened to be, and the residual stats
// would diverge spuriously.
func assertBitIdentical(t *testing.T, p *core.Protocol, cfg dpor.Config) {
	t.Helper()
	opts := explore.Options{MaxStates: 300000}
	seq, err := dpor.ExploreWith(p, opts, cfg)
	if err != nil {
		t.Fatalf("%s sequential (sleep=%v): %v", p.Name, cfg.SleepSets, err)
	}
	for _, w := range parallelWorkerCounts {
		popts := opts
		popts.Workers = w
		par, err := dpor.ExploreParallelWith(p, popts, cfg)
		if err != nil {
			t.Fatalf("%s parallel w=%d (sleep=%v): %v", p.Name, w, cfg.SleepSets, err)
		}
		if par.Verdict != seq.Verdict {
			t.Errorf("%s w=%d sleep=%v: verdict %s, sequential %s", p.Name, w, cfg.SleepSets, par.Verdict, seq.Verdict)
			continue
		}
		if !eval.StatsEqualModuloVolatile(par.Stats, seq.Stats) {
			ms, mp := seq.Stats, par.Stats
			eval.MaskVolatileStats(&ms)
			eval.MaskVolatileStats(&mp)
			t.Errorf("%s w=%d sleep=%v: stats diverge:\nparallel   %+v\nsequential %+v", p.Name, w, cfg.SleepSets, mp, ms)
		}
		seqViol, parViol := "", ""
		if seq.Violation != nil {
			seqViol = seq.Violation.Error()
		}
		if par.Violation != nil {
			parViol = par.Violation.Error()
		}
		if parViol != seqViol {
			t.Errorf("%s w=%d sleep=%v: violation %q, sequential %q", p.Name, w, cfg.SleepSets, parViol, seqViol)
		}
		if !reflect.DeepEqual(par.Trace, seq.Trace) {
			t.Errorf("%s w=%d sleep=%v: trace diverges (%d steps vs %d)", p.Name, w, cfg.SleepSets, len(par.Trace), len(seq.Trace))
		}
	}
}

func TestParallelDPORMatchesSequentialOnRandomProtocols(t *testing.T) {
	for seed := int64(0); seed < 40; seed++ {
		for _, thr := range []int{0, 2} {
			p, err := mptest.Random(mptest.GenConfig{Seed: seed, Threshold: thr})
			if err != nil {
				t.Fatal(err)
			}
			assertBitIdentical(t, p, dpor.Config{SleepSets: true})
			assertBitIdentical(t, p, dpor.Config{})
		}
	}
}

func TestParallelDPOROnBundledSingleModels(t *testing.T) {
	if testing.Short() {
		t.Skip("bundled parallel-DPOR sweep is slow")
	}
	px, err := paxos.New(paxos.Config{Proposers: 1, Acceptors: 3, Learners: 1, Model: paxos.ModelSingle})
	if err != nil {
		t.Fatal(err)
	}
	mc, err := multicast.New(multicast.Config{HonestReceivers: 2, HonestInitiators: 1, ByzantineInitiators: 1, Model: multicast.ModelSingle})
	if err != nil {
		t.Fatal(err)
	}
	st, err := storage.New(storage.Config{Objects: 3, Readers: 1, Model: storage.ModelSingle, Writes: 1})
	if err != nil {
		t.Fatal(err)
	}
	for _, p := range []*core.Protocol{px, mc, st} {
		assertBitIdentical(t, p, dpor.Config{SleepSets: true})
		assertBitIdentical(t, p, dpor.Config{})
	}
}

// TestParallelDPORCounterexample pins the violating path: on the paper's
// deliberately wrong storage specification, every worker count must report
// the exact sequential counterexample, and the trace must replay — key
// cross-checks included — to a state that genuinely violates the
// invariant.
func TestParallelDPORCounterexample(t *testing.T) {
	p, err := storage.New(storage.Config{Objects: 3, Readers: 2, WrongRegularity: true, Model: storage.ModelSingle})
	if err != nil {
		t.Fatal(err)
	}
	assertBitIdentical(t, p, dpor.Config{SleepSets: true})
	res, err := dpor.Explore(p, explore.Options{MaxDuration: time.Minute})
	if err != nil {
		t.Fatal(err)
	}
	if res.Verdict != explore.VerdictViolated || len(res.Trace) == 0 {
		t.Fatalf("expected a violation with a trace, got %s (trace %d)", res.Verdict, len(res.Trace))
	}
	if _, err := explore.ReplayViolation(p, res.Trace, nil); err != nil {
		t.Fatalf("genuine DPOR trace rejected: %v", err)
	}
}

// TestDPORTraceReplayVerifiesStateKeys is the corrupted-trace regression
// test mirroring explore's TestReplayVerifiesStateKeys: DPOR steps now
// record the post-step state key, so a mangled DPOR trace must be caught
// by explore.Replay's canon cross-check instead of slipping through with
// nothing to verify.
func TestDPORTraceReplayVerifiesStateKeys(t *testing.T) {
	p, err := storage.New(storage.Config{Objects: 3, Readers: 2, WrongRegularity: true, Model: storage.ModelSingle})
	if err != nil {
		t.Fatal(err)
	}
	res, err := dpor.Explore(p, explore.Options{MaxDuration: time.Minute})
	if err != nil {
		t.Fatal(err)
	}
	if res.Verdict != explore.VerdictViolated || len(res.Trace) == 0 {
		t.Fatalf("expected a violation with a trace, got %s (trace %d)", res.Verdict, len(res.Trace))
	}
	for _, step := range res.Trace {
		if step.StateKey == "" {
			t.Fatal("DPOR trace step with empty StateKey — the replay cross-check has nothing to verify")
		}
	}
	for _, corrupt := range []int{0, len(res.Trace) - 1} {
		mangled := append([]explore.Step(nil), res.Trace...)
		mangled[corrupt].StateKey = "bogus|" + mangled[corrupt].StateKey
		_, err := explore.Replay(p, mangled, nil)
		if err == nil {
			t.Fatalf("corrupted DPOR trace step %d accepted", corrupt)
		}
		if !strings.Contains(err.Error(), "state key mismatch") {
			t.Errorf("corrupted step %d: error %q, want a state key mismatch", corrupt, err)
		}
	}
}

func TestParallelDPORRejectsQuorumModels(t *testing.T) {
	p, err := paxos.New(paxos.Config{Proposers: 1, Acceptors: 3, Learners: 1, Model: paxos.ModelQuorum})
	if err != nil {
		t.Fatal(err)
	}
	_, err = dpor.ExploreParallel(p, explore.Options{Workers: 2})
	if err == nil {
		t.Fatal("parallel DPOR must reject quorum models (as Basset does)")
	}
	if !strings.Contains(err.Error(), "-model single") {
		t.Errorf("quorum rejection %q does not name the -model single spelling", err)
	}
}

// TestParallelDPORSpeculates sanity-checks that the machinery actually
// runs: on a model with real concurrency and enough workers, at least one
// run should build speculative records. The counters are volatile, so the
// assertion is existential (over several attempts), not exact.
func TestParallelDPORSpeculates(t *testing.T) {
	p, err := storage.New(storage.Config{Objects: 3, Readers: 1, Model: storage.ModelSingle, Writes: 1})
	if err != nil {
		t.Fatal(err)
	}
	for attempt := 0; attempt < 5; attempt++ {
		res, err := dpor.ExploreParallel(p, explore.Options{Workers: 4, MaxDuration: time.Minute})
		if err != nil {
			t.Fatal(err)
		}
		if res.Stats.SpeculatedVisits > 0 {
			return
		}
	}
	t.Error("no run built a single speculative record — the worker pool appears dead")
}
