package dpor

import (
	"sync"
	"sync/atomic"

	"mpbasset/internal/core"
)

// Tuning constants of the speculative scheduler behind ExploreParallel.
// They bound memory and per-steal work, not correctness: the commit walk is
// sequential DPOR verbatim, so results are bit-identical whatever their
// values. The numbers mirror internal/explore's ParallelDFS, whose steal
// discipline this engine copies.
const (
	// specMemoCap bounds the number of not-yet-consumed speculative
	// expansion records; speculators back off when the table is full.
	specMemoCap = 1 << 13
	// specQueueCap bounds the steal queue; overflow drops the oldest
	// (shallowest-discovered) targets, which the walk reaches last.
	specQueueCap = 4096
	// specStealBudget is the number of states one stolen backtrack point
	// may expand before the thief reports back and steals afresh.
	specStealBudget = 128
	// specStealDepth is the default bound on how many events below a
	// stolen backtrack point a worker speculates
	// (explore.Options.StealDepth overrides it).
	specStealDepth = 8
)

// specTarget is one steal target: a pending backtrack point — an event
// scheduled at a stack frame the commit walk has not returned to yet. The
// subtree below it is a self-contained re-exploration, which is what makes
// DPOR backtrack points embarrassingly parallel.
type specTarget struct {
	src *core.State
	ev  core.Event
}

// specSucc is one successor of a speculatively expanded state: the reached
// state, its key, the keys of the messages the event sent (the bag
// difference recordExecution needs for the vector clocks; a set — its order
// follows Bag.Each and may differ from the inline computation's) and the
// memoized invariant-check result. err defers an Execute failure to the
// exact commit step where sequential DPOR would have failed.
type specSucc struct {
	st   *core.State
	key  string
	sent []string
	verr error
	err  error
}

// specRecord is the expansion record of one state: its enabled events and
// one specSucc per enabled event, in enabled order. Every field is a pure
// function of the state alone — Enabled, Execute, CheckInvariant and
// sentKeys are deterministic and read-only — which is what makes records
// safe to precompute out of order and substitute into the commit walk. All
// path-dependent DPOR structure (vector clocks, races, backtrack and sleep
// sets) is re-derived by the walk itself, so stale speculation cannot
// exist: a record is never wrong, only possibly missing.
type specRecord struct {
	enabled []core.Event
	succs   []specSucc
}

// specBuild computes a state's expansion record: all enabled events and
// their executed, invariant-checked successors. Execute failures are
// recorded per successor (not aborting the record) because DPOR commits
// events one at a time — the walk may schedule a healthy sibling first.
func specBuild(p *core.Protocol, s *core.State) *specRecord {
	rec := &specRecord{enabled: p.Enabled(s)}
	rec.succs = make([]specSucc, len(rec.enabled))
	for i, ev := range rec.enabled {
		ns, err := p.Execute(s, ev)
		if err != nil {
			rec.succs[i] = specSucc{err: err}
			continue
		}
		rec.succs[i] = specSucc{
			st:   ns,
			key:  ns.Key(),
			sent: sentKeys(s, ns, ev),
			verr: p.CheckInvariant(ns),
		}
	}
	return rec
}

// specPut is the outcome of a memo insert.
type specPut int

const (
	specStored specPut = iota
	specDup            // another speculator already recorded the key
	specFull           // the table is at capacity; the thief backs off
)

// specStripe is one lock-striped shard of a specMemo.
type specStripe struct {
	mu sync.Mutex
	m  map[string]*specRecord
}

// specMemo is the striped table of speculative expansion records, keyed by
// state key. Speculators insert, the commit walk consumes; entries live
// until the walk first pushes their state (or the search ends). The
// capacity bound keeps runaway speculation from holding unbounded state.
type specMemo struct {
	stripes [64]specStripe
	count   atomic.Int64
}

func (m *specMemo) stripe(key string) *specStripe {
	// FNV-1a over the key; only the stripe balance depends on it.
	h := uint32(2166136261)
	for i := 0; i < len(key); i++ {
		h = (h ^ uint32(key[i])) * 16777619
	}
	return &m.stripes[h&63]
}

// full reports whether the table is at capacity. Thieves check it before
// paying for an expansion; put re-checks, so a stale answer only costs (or
// saves) one speculative build.
func (m *specMemo) full() bool { return m.count.Load() >= specMemoCap }

func (m *specMemo) put(key string, rec *specRecord) specPut {
	if m.full() {
		return specFull
	}
	st := m.stripe(key)
	st.mu.Lock()
	defer st.mu.Unlock()
	if st.m == nil {
		st.m = make(map[string]*specRecord)
	}
	if _, ok := st.m[key]; ok {
		return specDup
	}
	st.m[key] = rec
	m.count.Add(1)
	return specStored
}

func (m *specMemo) has(key string) bool {
	st := m.stripe(key)
	st.mu.Lock()
	defer st.mu.Unlock()
	_, ok := st.m[key]
	return ok
}

// take removes and returns the record for key, or nil.
func (m *specMemo) take(key string) *specRecord {
	st := m.stripe(key)
	st.mu.Lock()
	defer st.mu.Unlock()
	rec, ok := st.m[key]
	if !ok {
		return nil
	}
	delete(st.m, key)
	m.count.Add(-1)
	return rec
}

// specQueue is the steal queue: the commit walk publishes every backtrack
// point it schedules at a not-yet-finished frame, idle speculators pop from
// the deep end — the most recently discovered points first, which sit at
// the depths the walk is currently working and are therefore the least
// likely to have been consumed by the time their records are built.
type specQueue struct {
	mu     sync.Mutex
	cond   sync.Cond
	items  []specTarget
	closed bool
}

func newSpecQueue() *specQueue {
	q := &specQueue{}
	q.cond.L = &q.mu
	return q
}

// publish appends one steal target. Overflow drops the oldest targets.
func (q *specQueue) publish(t specTarget) {
	q.mu.Lock()
	if q.closed {
		q.mu.Unlock()
		return
	}
	q.items = append(q.items, t)
	if over := len(q.items) - specQueueCap; over > 0 {
		q.items = append(q.items[:0], q.items[over:]...)
	}
	q.mu.Unlock()
	q.cond.Broadcast()
}

// pop blocks for the next target from the deep end; false means the queue
// was closed and drained.
func (q *specQueue) pop() (specTarget, bool) {
	q.mu.Lock()
	defer q.mu.Unlock()
	for len(q.items) == 0 && !q.closed {
		q.cond.Wait()
	}
	if len(q.items) == 0 {
		return specTarget{}, false
	}
	t := q.items[len(q.items)-1]
	q.items[len(q.items)-1] = specTarget{}
	q.items = q.items[:len(q.items)-1]
	return t, true
}

func (q *specQueue) close() {
	q.mu.Lock()
	q.closed = true
	q.items = nil
	q.mu.Unlock()
	q.cond.Broadcast()
}
