package dpor

import (
	"testing"
	"time"

	"mpbasset/internal/core"
	"mpbasset/internal/explore"
	"mpbasset/internal/protocols/storage"
)

// BenchmarkDPOR compares the stateless baselines on the single-message
// storage model: full stateless search, DPOR without sleep sets, and DPOR
// with sleep sets (the configuration Table I's first column uses).
func BenchmarkDPOR(b *testing.B) {
	cases := []struct {
		name string
		run  func(b *testing.B)
	}{
		{"stateless-full", func(b *testing.B) {
			p := mustStorage(b)
			res, err := explore.StatelessDFS(p, explore.Options{MaxDuration: 15 * time.Second})
			if err != nil {
				b.Fatal(err)
			}
			b.ReportMetric(float64(res.Stats.States), "states")
		}},
		{"dpor-plain", func(b *testing.B) {
			p := mustStorage(b)
			res, err := ExploreWith(p, explore.Options{MaxDuration: 15 * time.Second}, Config{})
			if err != nil {
				b.Fatal(err)
			}
			b.ReportMetric(float64(res.Stats.States), "states")
		}},
		{"dpor-sleep", func(b *testing.B) {
			p := mustStorage(b)
			res, err := ExploreWith(p, explore.Options{MaxDuration: 15 * time.Second}, Config{SleepSets: true})
			if err != nil {
				b.Fatal(err)
			}
			b.ReportMetric(float64(res.Stats.States), "states")
		}},
	}
	for _, tc := range cases {
		tc := tc
		b.Run(tc.name, func(b *testing.B) {
			for i := 0; i < b.N; i++ {
				tc.run(b)
			}
		})
	}
}

func mustStorage(b *testing.B) *core.Protocol {
	b.Helper()
	p, err := storage.New(storage.Config{Objects: 3, Readers: 1, Model: storage.ModelSingle, Writes: 1})
	if err != nil {
		b.Fatal(err)
	}
	return p
}
