// Package dpor implements dynamic partial-order reduction in the style of
// Flanagan and Godefroid (POPL 2005), the algorithm the paper uses for its
// single-message baselines (Table I, "No quorum (DPOR)").
//
// DPOR computes reduced expansion sets on the fly: the search starts each
// state with a single scheduled event and, whenever an executed event races
// with an earlier one on the stack (dependent, not ordered by
// happens-before, and co-enabled), schedules the racing event as a
// backtrack point at the earlier state. Happens-before is tracked with
// vector clocks over program order and send→consume edges.
//
// As in the paper (§III-A), DPOR requires stateless search — it is unsound
// with a visited-state set — so states are revisited along different paths
// and the reported state count is node visits, matching how Table I counts
// the Basset/DPOR column. And as in Basset, quorum transitions are not
// supported: Explore rejects protocols that declare any (Table I, fn. 2).
package dpor

import (
	"fmt"

	"mpbasset/internal/core"
	"mpbasset/internal/explore"
	"mpbasset/internal/por"
)

// Config tunes the DPOR engine beyond the generic search options.
type Config struct {
	// SleepSets enables Godefroid-style sleep sets on top of the
	// backtrack sets: once an event's subtree is fully explored, sibling
	// subtrees skip it until a dependent event wakes it, pruning
	// re-exploration of equivalent orders. Explore enables them by
	// default; the validation suite checks both modes.
	SleepSets bool
}

// Explore runs the DPOR-reduced stateless search on a single-message
// protocol, with sleep sets enabled. The Store, Canon and Expander options
// are ignored (DPOR drives its own expansion); limits and trace options
// apply.
func Explore(p *core.Protocol, opts explore.Options) (*explore.Result, error) {
	return ExploreWith(p, opts, Config{SleepSets: true})
}

// ExploreWith is Explore with explicit engine configuration.
func ExploreWith(p *core.Protocol, opts explore.Options, cfg Config) (*explore.Result, error) {
	if err := p.Finalize(); err != nil {
		return nil, err
	}
	for _, t := range p.Transitions {
		if t.Quorum > 1 || t.Quorum == core.AnyQuorum {
			return nil, fmt.Errorf("dpor: transition %s is a quorum transition; DPOR supports single-message models only", t)
		}
	}
	a, err := por.NewAnalysis(p)
	if err != nil {
		return nil, err
	}
	e := &engine{p: p, a: a, opts: opts, cfg: cfg}
	return e.run()
}

// DeadlockStates runs the DPOR search and returns the distinct terminal
// (deadlock) state keys it reaches. It exists for validation: dynamic POR
// must preserve every deadlock state of the full search.
func DeadlockStates(p *core.Protocol) (map[string]bool, error) {
	if err := p.Finalize(); err != nil {
		return nil, err
	}
	a, err := por.NewAnalysis(p)
	if err != nil {
		return nil, err
	}
	seen := make(map[string]bool)
	e := &engine{p: p, a: a, onTerminal: func(s *core.State) { seen[s.Key()] = true }}
	if _, err := e.run(); err != nil {
		return nil, err
	}
	return seen, nil
}

// frame is one entry of the stateless DFS stack.
type frame struct {
	state   *core.State
	enabled []core.Event
	keys    map[string]int // event key -> index into enabled
	// backtrack holds event keys scheduled for exploration at this state;
	// done holds those already explored; sleep holds events whose traces
	// are already covered by fully-explored siblings.
	backtrack map[string]bool
	done      map[string]bool
	sleep     map[string]core.Event
	// Fields describing the event taken FROM this frame (set when a child
	// is pushed):
	executed core.Event
	clock    []int    // vector clock of the executed event
	sent     []string // message keys the executed event sent
}

type engine struct {
	p          *core.Protocol
	a          *por.Analysis
	opts       explore.Options
	cfg        Config
	onTerminal func(*core.State)
	stack      []frame
	// sendClocks maps a message key to the stack of vector clocks of its
	// (possibly repeated) send events along the current path.
	sendClocks map[string][][]int
	res        explore.Result
}

func (e *engine) run() (*explore.Result, error) {
	lim := newLimits(e.opts)
	defer func() { e.res.Stats.Duration = lim.elapsed() }()
	e.sendClocks = make(map[string][][]int)

	init, err := e.p.InitialState()
	if err != nil {
		return nil, err
	}
	if verr := e.p.CheckInvariant(init); verr != nil {
		e.res.Stats.States = 1
		e.res.Verdict = explore.VerdictViolated
		e.res.Violation = verr
		return &e.res, nil
	}
	e.push(init)

	for len(e.stack) > 0 {
		if lim.exceeded(&e.res.Stats) {
			e.res.Verdict = explore.VerdictLimit
			return &e.res, nil
		}
		f := &e.stack[len(e.stack)-1]
		key, ok := e.nextEvent(f)
		if !ok {
			e.pop()
			continue
		}
		f.done[key] = true
		ev := f.enabled[f.keys[key]]
		ns, err := e.p.Execute(f.state, ev)
		if err != nil {
			return nil, err
		}
		e.res.Stats.Events++
		e.updateRaces(ev)
		e.recordExecution(ev, ns)
		if verr := e.p.CheckInvariant(ns); verr != nil {
			e.res.Stats.States++
			e.res.Verdict = explore.VerdictViolated
			e.res.Violation = verr
			e.res.Trace = e.trace()
			return &e.res, nil
		}
		e.push(ns)
		e.backtrackDisabled(ev)
		e.raceCheckPending()
	}
	e.res.Verdict = explore.VerdictVerified
	return &e.res, nil
}

// raceCheckPending race-checks *structurally pending* deliveries of the new
// top state — every (transition, message) pair matching on type and peers,
// whether or not its guard currently holds. Classic Flanagan–Godefroid
// checks only executed events, which suffices when pending deliveries stay
// enabled until delivered; with guarded transitions a delivery can be
// disabled on the explored branch yet enabled on the reordered one and
// would otherwise never be scheduled (the deadlock-preservation tests
// demonstrate this on generated protocols).
//
// The check is incremental: deliveries of messages just sent are checked
// against the whole stack; older pending deliveries were checked at
// earlier pushes against everything below, so they only need the newest
// frame.
func (e *engine) raceCheckPending() {
	if len(e.stack) < 2 {
		return
	}
	parentIdx := len(e.stack) - 2
	parent := &e.stack[parentIdx]
	newKeys := make(map[string]bool, len(parent.sent))
	for _, k := range parent.sent {
		newKeys[k] = true
	}
	ns := e.stack[len(e.stack)-1].state
	for _, t := range e.p.Transitions {
		if t.Quorum != 1 {
			continue
		}
		_, bySender := ns.Msgs.MatchingBySender(t.Proc, t.MsgType, t.Peers)
		//lint:nondet-ok race updates commute: each event's backtrack insertions depend only on (event, parent), not on the order senders are visited
		for _, msgs := range bySender {
			for _, m := range msgs {
				u := core.Event{T: t, Msgs: []core.Message{m}}
				if newKeys[m.Key()] {
					e.updateRacesFrom(u, parentIdx)
				} else {
					e.updateRacesAt(u, parentIdx)
				}
			}
		}
	}
}

// backtrackDisabled handles a subtlety of guarded message-passing models
// that plain Flanagan–Godefroid does not face: executing ev can *disable* a
// co-enabled event u of the same process (a guard turns false, or u's
// message is consumed). u then never executes downstream, so the usual
// execution-triggered race detection would never schedule it — losing the
// u-first interleavings (and their deadlock states). Scheduling u at ev's
// pre-state restores them. Cross-process events cannot be disabled (their
// messages and local guards are untouched), so the scan is process-local.
func (e *engine) backtrackDisabled(ev core.Event) {
	if len(e.stack) < 2 {
		return
	}
	parent := &e.stack[len(e.stack)-2]
	child := &e.stack[len(e.stack)-1]
	evKey := ev.Key()
	for _, u := range parent.enabled {
		if u.T.Proc != ev.T.Proc {
			continue
		}
		k := u.Key()
		if k == evKey {
			continue
		}
		if _, still := child.keys[k]; !still {
			parent.backtrack[k] = true
		}
	}
}

// push enters a new state: computes its enabled events and seeds the
// backtrack set with a single event (highest transition priority, then
// enumeration order) — the defining move of DPOR.
func (e *engine) push(s *core.State) {
	e.res.Stats.States++
	enabled := e.p.Enabled(s)
	f := frame{
		state:     s,
		enabled:   enabled,
		keys:      make(map[string]int, len(enabled)),
		backtrack: make(map[string]bool, 1),
		done:      make(map[string]bool, 1),
		sleep:     make(map[string]core.Event),
	}
	for i, ev := range enabled {
		f.keys[ev.Key()] = i
	}
	// Inherit the sleep set: events whose traces are covered stay asleep
	// unless the edge just taken is dependent with them (a dependent step
	// creates genuinely new orders).
	if e.cfg.SleepSets && len(e.stack) > 0 {
		parent := &e.stack[len(e.stack)-1]
		if parent.clock != nil {
			//lint:nondet-ok filtered map-to-map copy: per-key decisions are independent, so the resulting sleep set is order-free
			for k, u := range parent.sleep {
				if !e.a.Dependent(u.T.Index(), parent.executed.T.Index()) {
					f.sleep[k] = u
				}
			}
		}
	}
	if len(enabled) == 0 {
		e.res.Stats.Deadlocks++
		if e.onTerminal != nil {
			e.onTerminal(s)
		}
	} else {
		best := -1
		for i, ev := range enabled {
			if _, asleep := f.sleep[ev.Key()]; asleep {
				continue
			}
			if best < 0 || ev.T.Priority > enabled[best].T.Priority {
				best = i
			}
		}
		if best >= 0 {
			f.backtrack[enabled[best].Key()] = true
		}
	}
	e.stack = append(e.stack, f)
	if len(e.stack) > e.res.Stats.MaxDepth {
		e.res.Stats.MaxDepth = len(e.stack)
	}
}

func (e *engine) pop() {
	f := &e.stack[len(e.stack)-1]
	e.unrecordExecution(f)
	e.stack = e.stack[:len(e.stack)-1]
	if len(e.stack) > 0 {
		parent := &e.stack[len(e.stack)-1]
		// The just-finished edge's traces are covered: its siblings may
		// skip it until a dependent step wakes it.
		if e.cfg.SleepSets && parent.clock != nil {
			parent.sleep[parent.executed.Key()] = parent.executed
		}
		// The parent's executed-event bookkeeping is cleared so the next
		// sibling records fresh clocks.
		e.unrecordExecution(parent)
	}
}

// nextEvent picks the next scheduled, unexplored, non-sleeping event of f
// in the deterministic enabled order.
func (e *engine) nextEvent(f *frame) (string, bool) {
	for _, ev := range f.enabled {
		k := ev.Key()
		if f.backtrack[k] && !f.done[k] {
			if _, asleep := f.sleep[k]; asleep {
				continue
			}
			return k, true
		}
	}
	return "", false
}

// trace reconstructs the current path as a counterexample.
func (e *engine) trace() []explore.Step {
	var steps []explore.Step
	for i := 0; i < len(e.stack); i++ {
		f := &e.stack[i]
		if f.clock != nil {
			steps = append(steps, explore.Step{Event: f.executed})
		}
	}
	return steps
}
