package dpor

import (
	"fmt"

	"mpbasset/internal/core"
	"mpbasset/internal/explore"
	"mpbasset/internal/por"
)

// Config tunes the DPOR engine beyond the generic search options.
type Config struct {
	// SleepSets enables Godefroid-style sleep sets on top of the
	// backtrack sets: once an event's subtree is fully explored, sibling
	// subtrees skip it until a dependent event wakes it, pruning
	// re-exploration of equivalent orders. Explore enables them by
	// default; the validation suite checks both modes.
	SleepSets bool
}

// Explore runs the DPOR-reduced stateless search on a single-message
// protocol, with sleep sets enabled. The Store, Canon and Expander options
// are ignored (DPOR drives its own expansion); limits and trace options
// apply.
func Explore(p *core.Protocol, opts explore.Options) (*explore.Result, error) {
	return ExploreWith(p, opts, Config{SleepSets: true})
}

// ExploreWith is Explore with explicit engine configuration.
func ExploreWith(p *core.Protocol, opts explore.Options, cfg Config) (*explore.Result, error) {
	a, err := analyze(p)
	if err != nil {
		return nil, err
	}
	e := &engine{p: p, a: a, opts: opts, cfg: cfg}
	return e.run()
}

// analyze finalizes and validates the protocol for DPOR — rejecting quorum
// transitions, which DPOR cannot reduce soundly — and builds the
// dependence analysis. Shared by the sequential and parallel entry points.
func analyze(p *core.Protocol) (*por.Analysis, error) {
	if err := p.Finalize(); err != nil {
		return nil, err
	}
	for _, t := range p.Transitions {
		if t.Quorum > 1 || t.Quorum == core.AnyQuorum {
			return nil, fmt.Errorf("dpor: transition %s is a quorum transition; DPOR supports single-message models only (rebuild the protocol in the single-message style — mpcheck's -model single)", t)
		}
	}
	return por.NewAnalysis(p)
}

// DeadlockStates runs the DPOR search and returns the distinct terminal
// (deadlock) state keys it reaches. It exists for validation: dynamic POR
// must preserve every deadlock state of the full search.
func DeadlockStates(p *core.Protocol) (map[string]bool, error) {
	if err := p.Finalize(); err != nil {
		return nil, err
	}
	a, err := por.NewAnalysis(p)
	if err != nil {
		return nil, err
	}
	seen := make(map[string]bool)
	e := &engine{p: p, a: a, onTerminal: func(s *core.State) { seen[s.Key()] = true }}
	if _, err := e.run(); err != nil {
		return nil, err
	}
	return seen, nil
}

// frame is one entry of the stateless DFS stack.
type frame struct {
	state   *core.State
	enabled []core.Event
	keys    map[string]int // event key -> index into enabled
	// backtrack holds event keys scheduled for exploration at this state;
	// done holds those already explored; sleep holds events whose traces
	// are already covered by fully-explored siblings.
	backtrack map[string]bool
	done      map[string]bool
	sleep     map[string]core.Event
	// Fields describing the event taken FROM this frame (set when a child
	// is pushed):
	executed core.Event
	clock    []int    // vector clock of the executed event
	sent     []string // message keys the executed event sent
	// rec is the speculative expansion record this frame's state was pushed
	// with, when ExploreParallel's workers got there first; nil under
	// sequential search and on memo misses. Its succs are indexed parallel
	// to enabled.
	rec *specRecord
}

type engine struct {
	p          *core.Protocol
	a          *por.Analysis
	opts       explore.Options
	cfg        Config
	onTerminal func(*core.State)
	stack      []frame
	// sendClocks maps a message key to the stack of vector clocks of its
	// (possibly repeated) send events along the current path.
	sendClocks map[string][][]int
	res        explore.Result
	// Speculation hooks, set only by ExploreParallel: memo is the table of
	// worker-built expansion records push consumes; publish announces a
	// newly scheduled backtrack point as a steal target; specHits counts
	// consumed records (surfaced as the volatile Stats.SpeculationHits).
	memo     *specMemo
	publish  func(specTarget)
	specHits int
}

func (e *engine) run() (*explore.Result, error) {
	lim := newLimits(e.opts)
	defer func() { e.res.Stats.Duration = lim.elapsed() }()
	e.sendClocks = make(map[string][][]int)

	init, err := e.p.InitialState()
	if err != nil {
		return nil, err
	}
	if verr := e.p.CheckInvariant(init); verr != nil {
		e.res.Stats.States = 1
		e.res.Verdict = explore.VerdictViolated
		e.res.Violation = verr
		return &e.res, nil
	}
	e.push(init)

	for len(e.stack) > 0 {
		if lim.exceeded(&e.res.Stats) {
			e.res.Verdict = explore.VerdictLimit
			return &e.res, nil
		}
		f := &e.stack[len(e.stack)-1]
		key, ok := e.nextEvent(f)
		if !ok {
			e.pop()
			continue
		}
		f.done[key] = true
		idx := f.keys[key]
		ev := f.enabled[idx]
		// A frame pushed with a speculative record replays the memoized
		// successor — Execute result, sent-message keys and invariant check
		// are pure functions of (state, event), so the record equals what
		// the inline computation below would produce. (Sole caveat: the
		// sent keys follow Bag.Each's unspecified iteration order, so the
		// record's slice may be a permutation of the inline one — harmless,
		// since every consumer of frame.sent folds it into a set.)
		var ns *core.State
		var sent []string
		var verr error
		fromRec := false
		if f.rec != nil {
			sc := &f.rec.succs[idx]
			if sc.err != nil {
				return nil, sc.err
			}
			ns, sent, verr, fromRec = sc.st, sc.sent, sc.verr, true
		} else {
			var err error
			ns, err = e.p.Execute(f.state, ev)
			if err != nil {
				return nil, err
			}
		}
		e.res.Stats.Events++
		e.updateRaces(ev)
		if !fromRec {
			sent = sentKeys(f.state, ns, ev)
		}
		e.recordExecution(ev, sent)
		if !fromRec {
			verr = e.p.CheckInvariant(ns)
		}
		if verr != nil {
			e.res.Stats.States++
			e.res.Verdict = explore.VerdictViolated
			e.res.Violation = verr
			e.res.Trace = e.trace(ns)
			return &e.res, nil
		}
		e.push(ns)
		e.backtrackDisabled(ev)
		e.raceCheckPending()
	}
	e.res.Verdict = explore.VerdictVerified
	return &e.res, nil
}

// raceCheckPending race-checks *structurally pending* deliveries of the new
// top state — every (transition, message) pair matching on type and peers,
// whether or not its guard currently holds. Classic Flanagan–Godefroid
// checks only executed events, which suffices when pending deliveries stay
// enabled until delivered; with guarded transitions a delivery can be
// disabled on the explored branch yet enabled on the reordered one and
// would otherwise never be scheduled (the deadlock-preservation tests
// demonstrate this on generated protocols).
//
// The check is incremental: deliveries of messages just sent are checked
// against the whole stack; older pending deliveries were checked at
// earlier pushes against everything below, so they only need the newest
// frame.
func (e *engine) raceCheckPending() {
	if len(e.stack) < 2 {
		return
	}
	parentIdx := len(e.stack) - 2
	parent := &e.stack[parentIdx]
	newKeys := make(map[string]bool, len(parent.sent))
	for _, k := range parent.sent {
		newKeys[k] = true
	}
	ns := e.stack[len(e.stack)-1].state
	for _, t := range e.p.Transitions {
		if t.Quorum != 1 {
			continue
		}
		_, bySender := ns.Msgs.MatchingBySender(t.Proc, t.MsgType, t.Peers)
		//lint:nondet-ok race updates commute: each event's backtrack insertions depend only on (event, parent), not on the order senders are visited
		for _, msgs := range bySender {
			for _, m := range msgs {
				u := core.Event{T: t, Msgs: []core.Message{m}}
				if newKeys[m.Key()] {
					e.updateRacesFrom(u, parentIdx)
				} else {
					e.updateRacesAt(u, parentIdx)
				}
			}
		}
	}
}

// backtrackDisabled handles a subtlety of guarded message-passing models
// that plain Flanagan–Godefroid does not face: executing ev can *disable* a
// co-enabled event u of the same process (a guard turns false, or u's
// message is consumed). u then never executes downstream, so the usual
// execution-triggered race detection would never schedule it — losing the
// u-first interleavings (and their deadlock states). Scheduling u at ev's
// pre-state restores them. Cross-process events cannot be disabled (their
// messages and local guards are untouched), so the scan is process-local.
func (e *engine) backtrackDisabled(ev core.Event) {
	if len(e.stack) < 2 {
		return
	}
	parent := &e.stack[len(e.stack)-2]
	child := &e.stack[len(e.stack)-1]
	evKey := ev.Key()
	for _, u := range parent.enabled {
		if u.T.Proc != ev.T.Proc {
			continue
		}
		k := u.Key()
		if k == evKey {
			continue
		}
		if _, still := child.keys[k]; !still {
			e.addBacktrack(parent, k)
		}
	}
}

// push enters a new state: computes its enabled events — consuming a
// speculative expansion record when a parallel worker got there first —
// and seeds the backtrack set with a single event (highest transition
// priority, then enumeration order) — the defining move of DPOR.
func (e *engine) push(s *core.State) {
	e.res.Stats.States++
	var rec *specRecord
	if e.memo != nil {
		if rec = e.memo.take(s.Key()); rec != nil {
			e.specHits++
		}
	}
	var enabled []core.Event
	if rec != nil {
		enabled = rec.enabled
	} else {
		enabled = e.p.Enabled(s)
	}
	f := frame{
		state:     s,
		enabled:   enabled,
		keys:      make(map[string]int, len(enabled)),
		backtrack: make(map[string]bool, 1),
		done:      make(map[string]bool, 1),
		sleep:     make(map[string]core.Event),
		rec:       rec,
	}
	for i, ev := range enabled {
		f.keys[ev.Key()] = i
	}
	// Inherit the sleep set: events whose traces are covered stay asleep
	// unless the edge just taken is dependent with them (a dependent step
	// creates genuinely new orders).
	if e.cfg.SleepSets && len(e.stack) > 0 {
		parent := &e.stack[len(e.stack)-1]
		if parent.clock != nil {
			//lint:nondet-ok filtered map-to-map copy: per-key decisions are independent, so the resulting sleep set is order-free
			for k, u := range parent.sleep {
				if !e.a.Dependent(u.T.Index(), parent.executed.T.Index()) {
					f.sleep[k] = u
				}
			}
		}
	}
	if len(enabled) == 0 {
		e.res.Stats.Deadlocks++
		if e.onTerminal != nil {
			e.onTerminal(s)
		}
	} else {
		best := -1
		for i, ev := range enabled {
			if _, asleep := f.sleep[ev.Key()]; asleep {
				continue
			}
			if best < 0 || ev.T.Priority > enabled[best].T.Priority {
				best = i
			}
		}
		if best >= 0 {
			f.backtrack[enabled[best].Key()] = true
		}
	}
	e.stack = append(e.stack, f)
	if len(e.stack) > e.res.Stats.MaxDepth {
		e.res.Stats.MaxDepth = len(e.stack)
	}
}

func (e *engine) pop() {
	f := &e.stack[len(e.stack)-1]
	e.unrecordExecution(f)
	e.stack = e.stack[:len(e.stack)-1]
	if len(e.stack) > 0 {
		parent := &e.stack[len(e.stack)-1]
		// The just-finished edge's traces are covered: its siblings may
		// skip it until a dependent step wakes it.
		if e.cfg.SleepSets && parent.clock != nil {
			parent.sleep[parent.executed.Key()] = parent.executed
		}
		// The parent's executed-event bookkeeping is cleared so the next
		// sibling records fresh clocks.
		e.unrecordExecution(parent)
	}
}

// addBacktrack schedules event key k for exploration at frame g. Under
// ExploreParallel, a point that is genuinely new and not yet explored is
// also published as a steal target — it is the root of a subtree the
// commit walk will re-explore once it returns to g, which a speculative
// worker can expand in the meantime. (The seed event push schedules is not
// published: the walk executes it on its very next iteration.)
func (e *engine) addBacktrack(g *frame, k string) {
	if g.backtrack[k] {
		return
	}
	g.backtrack[k] = true
	if e.publish != nil && !g.done[k] {
		e.publish(specTarget{src: g.state, ev: g.enabled[g.keys[k]]})
	}
}

// nextEvent picks the next scheduled, unexplored, non-sleeping event of f
// in the deterministic enabled order.
func (e *engine) nextEvent(f *frame) (string, bool) {
	for _, ev := range f.enabled {
		k := ev.Key()
		if f.backtrack[k] && !f.done[k] {
			if _, asleep := f.sleep[k]; asleep {
				continue
			}
			return k, true
		}
	}
	return "", false
}

// trace reconstructs the current path as a counterexample. final is the
// violating state the last executed event reached (it is never pushed, so
// it is not on the stack). Each step carries the key of the state its
// event reached — stack[i+1]'s state for inner steps, final for the last —
// so explore.Replay's canon cross-check can verify DPOR traces the same
// way it verifies stateful-engine traces.
func (e *engine) trace(final *core.State) []explore.Step {
	var steps []explore.Step
	for i := 0; i < len(e.stack); i++ {
		f := &e.stack[i]
		if f.clock == nil {
			continue
		}
		key := ""
		if i+1 < len(e.stack) {
			key = e.stack[i+1].state.Key()
		} else if final != nil {
			key = final.Key()
		}
		steps = append(steps, explore.Step{Event: f.executed, StateKey: key})
	}
	return steps
}
