// Package dpor implements dynamic partial-order reduction in the style of
// Flanagan and Godefroid (POPL 2005), the algorithm the paper uses for its
// single-message baselines (Table I, "No quorum (DPOR)").
//
// DPOR computes reduced expansion sets on the fly: the search starts each
// state with a single scheduled event and, whenever an executed event races
// with an earlier one on the stack (dependent, not ordered by
// happens-before, and co-enabled), schedules the racing event as a
// backtrack point at the earlier state. Happens-before is tracked with
// vector clocks over program order and send→consume edges.
//
// As in the paper (§III-A), DPOR requires stateless search — it is unsound
// with a visited-state set — so states are revisited along different paths
// and the reported state count is node visits, matching how Table I counts
// the Basset/DPOR column. And as in Basset, quorum transitions are not
// supported: Explore rejects protocols that declare any (Table I, fn. 2).
//
// # Speculation and commit
//
// ExploreParallel splits the work the way the repo's other parallel
// engines do: a single commit walk runs sequential DPOR verbatim, and a
// pool of speculative workers runs ahead of it. The walk publishes every
// backtrack point it schedules at a frame it has not returned to yet;
// workers claim the deepest-published points and precompute pure expansion
// records — enabled events, executed successors, invariant checks and
// sent-message keys, all deterministic functions of a state alone — which
// the walk consumes in place of its inline computation when it reaches the
// same states. Everything path-dependent (vector clocks, race detection,
// backtrack and sleep sets) stays inside the walk, so a record can be
// missing but never wrong, and verdicts, deterministic statistics and
// counterexample traces are bit-identical to Explore for any worker count.
//
// In the store matrix (see package explore's doc), DPOR occupies the
// no-store column: statelessness is not an implementation detail but the
// soundness argument itself, which is why the facade rejects every
// visited-store option — exact, spill, lossy bitstate and collapse
// compression alike — when SearchDPOR is selected.
package dpor
