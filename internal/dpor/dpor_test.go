package dpor

import (
	"testing"
	"time"

	"mpbasset/internal/core"
	"mpbasset/internal/explore"
	"mpbasset/internal/mptest"
	"mpbasset/internal/protocols/multicast"
	"mpbasset/internal/protocols/paxos"
	"mpbasset/internal/protocols/storage"
)

// compare runs full stateless search and DPOR on the same protocol and
// checks the DPOR guarantees: identical verdicts and identical
// deadlock-state sets (here: counts of distinct terminal states, obtained
// from a stateful full search since stateless runs count revisits), with
// DPOR never visiting more nodes than the full stateless search.
func compare(t *testing.T, p *core.Protocol) {
	t.Helper()
	full, err := explore.StatelessDFS(p, explore.Options{MaxDuration: time.Minute})
	if err != nil {
		t.Fatalf("%s stateless: %v", p.Name, err)
	}
	red, err := Explore(p, explore.Options{MaxDuration: time.Minute})
	if err != nil {
		t.Fatalf("%s dpor: %v", p.Name, err)
	}
	if full.Verdict == explore.VerdictLimit {
		// The unreduced stateless baseline timed out (revisit explosion —
		// the very thing Table I shows); nothing to compare against.
		return
	}
	if full.Verdict != red.Verdict {
		t.Errorf("%s: verdict mismatch: stateless %s, DPOR %s", p.Name, full.Verdict, red.Verdict)
	}
	if full.Verdict != explore.VerdictVerified {
		// Counterexample searches stop at the first bug; node counts and
		// deadlock sets are incomparable across exploration orders.
		return
	}
	if red.Stats.States > full.Stats.States {
		t.Errorf("%s: DPOR visited more nodes (%d) than full stateless (%d)", p.Name, red.Stats.States, full.Stats.States)
	}
	// Deadlock preservation: compare distinct terminal states against a
	// stateful reference.
	ref, err := explore.DFS(p, explore.Options{MaxDuration: time.Minute})
	if err != nil {
		t.Fatal(err)
	}
	dist, err := DeadlockStates(p)
	if err != nil {
		t.Fatal(err)
	}
	if len(dist) != ref.Stats.Deadlocks {
		t.Errorf("%s: DPOR reached %d distinct deadlock states, reference has %d", p.Name, len(dist), ref.Stats.Deadlocks)
	}
}

func TestDPORMatchesStatelessOnRandomProtocols(t *testing.T) {
	for seed := int64(0); seed < 120; seed++ {
		for _, thr := range []int{0, 2} {
			p, err := mptest.Random(mptest.GenConfig{Seed: seed, Threshold: thr})
			if err != nil {
				t.Fatal(err)
			}
			compare(t, p)
		}
	}
}

func TestDPORRejectsQuorumModels(t *testing.T) {
	p, err := paxos.New(paxos.Config{Proposers: 1, Acceptors: 3, Learners: 1, Model: paxos.ModelQuorum})
	if err != nil {
		t.Fatal(err)
	}
	if _, err := Explore(p, explore.Options{}); err == nil {
		t.Fatal("DPOR must reject quorum models (as Basset does)")
	}
}

func TestDPOROnBundledSingleModels(t *testing.T) {
	if testing.Short() {
		t.Skip("bundled DPOR sweep is slow")
	}
	px, err := paxos.New(paxos.Config{Proposers: 1, Acceptors: 3, Learners: 1, Model: paxos.ModelSingle})
	if err != nil {
		t.Fatal(err)
	}
	compare(t, px)
	fp, err := paxos.New(paxos.Config{Proposers: 2, Acceptors: 3, Learners: 1, Model: paxos.ModelSingle, Faulty: true})
	if err != nil {
		t.Fatal(err)
	}
	compare(t, fp)
	mc, err := multicast.New(multicast.Config{HonestReceivers: 2, HonestInitiators: 1, ByzantineInitiators: 1, Model: multicast.ModelSingle})
	if err != nil {
		t.Fatal(err)
	}
	compare(t, mc)
	st, err := storage.New(storage.Config{Objects: 3, Readers: 1, Model: storage.ModelSingle, Writes: 1})
	if err != nil {
		t.Fatal(err)
	}
	compare(t, st)
}

func TestDPORReducesWork(t *testing.T) {
	// On genuinely concurrent protocols DPOR should visit strictly fewer
	// nodes than full stateless search; assert it on a bundled model where
	// the effect is unambiguous.
	p, err := storage.New(storage.Config{Objects: 3, Readers: 1, Model: storage.ModelSingle, Writes: 1})
	if err != nil {
		t.Fatal(err)
	}
	full, err := explore.StatelessDFS(p, explore.Options{MaxDuration: time.Minute})
	if err != nil {
		t.Fatal(err)
	}
	red, err := Explore(p, explore.Options{MaxDuration: time.Minute})
	if err != nil {
		t.Fatal(err)
	}
	if red.Stats.States >= full.Stats.States {
		t.Errorf("DPOR visited %d nodes, full stateless %d — no reduction", red.Stats.States, full.Stats.States)
	}
}

func TestSleepSetsPreserveResults(t *testing.T) {
	// Sleep sets must not change verdicts or lose deadlock states, only
	// reduce node visits.
	for seed := int64(0); seed < 80; seed++ {
		p, err := mptest.Random(mptest.GenConfig{Seed: seed, Threshold: 2})
		if err != nil {
			t.Fatal(err)
		}
		with, err := ExploreWith(p, explore.Options{MaxDuration: time.Minute}, Config{SleepSets: true})
		if err != nil {
			t.Fatal(err)
		}
		without, err := ExploreWith(p, explore.Options{MaxDuration: time.Minute}, Config{})
		if err != nil {
			t.Fatal(err)
		}
		if with.Verdict != without.Verdict {
			t.Errorf("seed %d: verdict %s (sleep) vs %s (plain)", seed, with.Verdict, without.Verdict)
		}
		if with.Verdict == explore.VerdictVerified && with.Stats.States > without.Stats.States {
			t.Errorf("seed %d: sleep sets increased nodes %d > %d", seed, with.Stats.States, without.Stats.States)
		}
	}
}

func TestSleepSetsReduceVisits(t *testing.T) {
	p, err := storage.New(storage.Config{Objects: 3, Readers: 1, Model: storage.ModelSingle, Writes: 1})
	if err != nil {
		t.Fatal(err)
	}
	with, err := ExploreWith(p, explore.Options{MaxDuration: time.Minute}, Config{SleepSets: true})
	if err != nil {
		t.Fatal(err)
	}
	without, err := ExploreWith(p, explore.Options{MaxDuration: time.Minute}, Config{})
	if err != nil {
		t.Fatal(err)
	}
	if with.Stats.States >= without.Stats.States {
		t.Errorf("sleep sets gave no reduction: %d vs %d", with.Stats.States, without.Stats.States)
	}
}
