package dpor

import (
	"runtime"
	"sync"
	"sync/atomic"

	"mpbasset/internal/core"
	"mpbasset/internal/explore"
)

// ExploreParallel runs the DPOR-reduced stateless search with a worker
// pool, sleep sets enabled: Options.Workers speculative workers (0 or
// negative means runtime.GOMAXPROCS(0)) claim pending backtrack points —
// events the commit walk has scheduled at stack frames it has not returned
// to yet — and expand the subtrees below them ahead of time, while a single
// commit walk replays sequential DPOR verbatim. Verdicts, statistics
// (except the volatile Duration/speculation counters) and counterexample
// traces are bit-identical to Explore for any worker count.
//
// Work sharing: every backtrack point the walk schedules at a
// not-yet-finished frame — race-triggered points from updateRaces, and
// disabled-event points from backtrackDisabled — is published as a steal
// target. An idle worker pops the most recently published point, executes
// it against its (immutable) source state and explores up to
// Options.StealDepth events below it (bounded batch per steal), memoizing
// one expansion record per state: the enabled events and, per event, the
// executed successor, its invariant-check result and the message keys it
// sent. Records are pure functions of the state (see specRecord), so they
// can be computed in any order by any worker.
//
// Deterministic commit: the walk is sequential DPOR verbatim — same stack,
// same backtrack/sleep/vector-clock bookkeeping, same limit checks —
// except that pushing a state first consults the memo table and an
// execution whose frame holds a record reuses the memoized successor
// instead of re-executing. Because a record equals what the inline
// computation would produce, the committed Verdict, Stats and Trace are
// bit-identical to Explore. All path-dependent DPOR structure (clocks,
// races, backtrack and sleep sets) is re-derived by the walk itself, so
// speculation can never be stale in a way that changes results — a record
// is never wrong, only possibly missing.
//
// Soundness requires the same read-only contract as the other parallel
// engines: the protocol's Enabled/Execute/CheckInvariant must be safe for
// concurrent use and must not mutate shared state.
func ExploreParallel(p *core.Protocol, opts explore.Options) (*explore.Result, error) {
	return ExploreParallelWith(p, opts, Config{SleepSets: true})
}

// ExploreParallelWith is ExploreParallel with explicit engine
// configuration.
func ExploreParallelWith(p *core.Protocol, opts explore.Options, cfg Config) (*explore.Result, error) {
	a, err := analyze(p)
	if err != nil {
		return nil, err
	}
	e := &engine{p: p, a: a, opts: opts, cfg: cfg}

	var (
		memo       specMemo
		queue      = newSpecQueue()
		stop       atomic.Bool
		wg         sync.WaitGroup
		specVisits atomic.Int64
	)
	workers := opts.Workers
	if workers <= 0 {
		workers = runtime.GOMAXPROCS(0)
	}
	depthBudget := opts.StealDepth
	if depthBudget <= 0 {
		depthBudget = specStealDepth
	}
	wg.Add(workers)
	for w := 0; w < workers; w++ {
		go func() {
			defer wg.Done()
			speculate(p, &memo, queue, &stop, &specVisits, depthBudget)
		}()
	}

	e.memo = &memo
	e.publish = queue.publish
	res, runErr := e.run()
	stop.Store(true)
	queue.close()
	wg.Wait()
	if res != nil {
		res.Stats.SpeculatedVisits = int(specVisits.Load())
		res.Stats.SpeculationHits = e.specHits
	}
	return res, runErr
}

// speculate is one worker's loop: pop a backtrack point, execute it, and
// memoize expansion records for the subtree below it, depth-first, until
// the per-steal budget, the depth bound, the memo capacity or shutdown
// stops it. An Execute failure on the stolen edge just drops the target —
// the walk surfaces the error itself if it ever commits that edge.
func speculate(p *core.Protocol, memo *specMemo, queue *specQueue, stop *atomic.Bool, visits *atomic.Int64, depthBudget int) {
	type specNode struct {
		st    *core.State
		key   string
		depth int
	}
	nodes := make([]specNode, 0, 64)
	for {
		tgt, ok := queue.pop()
		if !ok {
			return
		}
		ns, err := p.Execute(tgt.src, tgt.ev)
		if err != nil {
			continue
		}
		nodes = append(nodes[:0], specNode{st: ns, key: ns.Key()})
		budget := specStealBudget
		for len(nodes) > 0 && budget > 0 && !stop.Load() && !memo.full() {
			n := nodes[len(nodes)-1]
			nodes = nodes[:len(nodes)-1]
			if memo.has(n.key) {
				continue
			}
			rec := specBuild(p, n.st)
			switch memo.put(n.key, rec) {
			case specStored:
				visits.Add(1)
			case specDup:
				continue
			case specFull:
				nodes = nodes[:0]
				continue
			}
			budget--
			if n.depth+1 > depthBudget {
				continue
			}
			for i := len(rec.succs) - 1; i >= 0; i-- {
				sc := &rec.succs[i]
				if sc.err != nil || sc.verr != nil {
					continue
				}
				nodes = append(nodes, specNode{st: sc.st, key: sc.key, depth: n.depth + 1})
			}
		}
	}
}
