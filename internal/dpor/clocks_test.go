package dpor

import (
	"reflect"
	"testing"

	"mpbasset/internal/core"
	"mpbasset/internal/protocols/storage"
)

func TestJoin(t *testing.T) {
	dst := []int{1, 5, 0}
	join(dst, []int{3, 2, 0})
	if want := []int{3, 5, 0}; !reflect.DeepEqual(dst, want) {
		t.Fatalf("join = %v, want %v", dst, want)
	}
}

func TestHappensBefore(t *testing.T) {
	// Event by process 1 with clock [0,2,0]: anything that has seen its
	// second component (>= 2) is causally after it.
	clock := []int{0, 2, 0}
	if !happensBefore(clock, 1, []int{0, 2, 5}) {
		t.Error("observer with component 2 must be causally after")
	}
	if happensBefore(clock, 1, []int{9, 1, 9}) {
		t.Error("observer with component 1 must not be causally after")
	}
}

func TestSentKeysComputesBagDifference(t *testing.T) {
	p := mustStorageT(t)
	s, err := p.InitialState()
	if err != nil {
		t.Fatal(err)
	}
	ev := p.Enabled(s)[0] // W_START: sends WRITE to every object
	ns, err := p.Execute(s, ev)
	if err != nil {
		t.Fatal(err)
	}
	keys := sentKeys(s, ns, ev)
	if len(keys) != 3 {
		t.Fatalf("sentKeys = %v, want 3 WRITE messages", keys)
	}
}

func mustStorageT(t *testing.T) *core.Protocol {
	t.Helper()
	p, err := storage.New(storage.Config{Objects: 3, Readers: 1, Model: storage.ModelSingle, Writes: 1})
	if err != nil {
		t.Fatal(err)
	}
	return p
}
