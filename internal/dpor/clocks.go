package dpor

import (
	"time"

	"mpbasset/internal/core"
	"mpbasset/internal/explore"
)

// recordExecution stores the bookkeeping of the event just taken from the
// top frame: its vector clock (program order joined with the clocks of the
// send events of its consumed messages) and sent, the keys of the messages
// it sent (the caller derives them with sentKeys from the bag difference
// to the successor state, or replays them from a speculative record).
func (e *engine) recordExecution(ev core.Event, sent []string) {
	f := &e.stack[len(e.stack)-1]
	n := e.p.N
	clock := make([]int, n)
	// Program order: the last event of the same process on the path.
	for d := len(e.stack) - 2; d >= 0; d-- {
		g := &e.stack[d]
		if g.clock != nil && g.executed.T.Proc == ev.T.Proc {
			copy(clock, g.clock)
			break
		}
	}
	// Send→consume edges.
	for _, m := range ev.Msgs {
		if cs := e.sendClocks[m.Key()]; len(cs) > 0 {
			join(clock, cs[len(cs)-1])
		}
	}
	clock[ev.T.Proc]++
	f.executed = ev
	f.clock = clock
	f.sent = sent
	for _, k := range f.sent {
		e.sendClocks[k] = append(e.sendClocks[k], clock)
	}
}

// unrecordExecution undoes recordExecution when backtracking past f.
func (e *engine) unrecordExecution(f *frame) {
	if f.clock == nil {
		return
	}
	for _, k := range f.sent {
		cs := e.sendClocks[k]
		if len(cs) <= 1 {
			delete(e.sendClocks, k)
		} else {
			e.sendClocks[k] = cs[:len(cs)-1]
		}
	}
	f.executed = core.Event{}
	f.clock = nil
	f.sent = nil
}

// sentKeys computes the keys of the messages ev added to the bag: the
// successor's bag minus (the predecessor's bag minus the consumed set).
func sentKeys(prev, next *core.State, ev core.Event) []string {
	var out []string
	consumed := make(map[string]int, len(ev.Msgs))
	for _, m := range ev.Msgs {
		consumed[m.Key()]++
	}
	next.Msgs.Each(func(m core.Message, n int) {
		k := m.Key()
		before := prev.Msgs.Count(m) - consumed[k]
		if n > before {
			out = append(out, k)
		}
	})
	return out
}

// updateRaces is the heart of DPOR: after deciding to execute ev from the
// top frame, find the latest earlier event ed that is dependent with ev
// and races with it, and schedule a backtrack point at ed's state — ev
// itself if it was already enabled there, otherwise (conservatively)
// everything enabled there. Deeper races surface recursively once the
// reordering is explored, as in Flanagan–Godefroid.
//
// The race check deliberately ignores the receiver's program order: two
// deliveries to one process race whenever the later one's messages were
// already available (its sends not causally after the earlier event) —
// availability, not receive order, decides whether the schedule could have
// been flipped.
func (e *engine) updateRaces(ev core.Event) {
	e.updateRacesFrom(ev, len(e.stack)-2)
}

// updateRacesFrom scans frames from..0 (newest first) for the latest event
// racing with ev and schedules a backtrack point there.
func (e *engine) updateRacesFrom(ev core.Event, from int) {
	avail := e.availClock(ev)
	for d := from; d >= 0; d-- {
		if e.raceAt(ev, avail, d) != raceContinue {
			return
		}
	}
}

// updateRacesAt checks ev against the single frame at index d.
func (e *engine) updateRacesAt(ev core.Event, d int) {
	e.raceAt(ev, e.availClock(ev), d)
}

type raceOutcome int

const (
	raceContinue raceOutcome = iota // independent: keep scanning earlier
	raceOrdered                     // causally ordered: earlier frames were handled before
	raceFound                       // backtrack point added
)

func (e *engine) raceAt(ev core.Event, avail []int, d int) raceOutcome {
	g := &e.stack[d]
	if g.clock == nil {
		return raceContinue
	}
	ed := g.executed
	if !e.a.Dependent(ed.T.Index(), ev.T.Index()) {
		return raceContinue
	}
	if happensBefore(g.clock, ed.T.Proc, avail) {
		// ed is causally before ev's inputs: no race here, but an
		// earlier event may still race with ev.
		return raceContinue
	}
	if _, ok := g.keys[ev.Key()]; ok {
		e.addBacktrack(g, ev.Key())
		return raceFound
	}
	// ev was not executable at d (guard or quorum not yet satisfiable
	// there): conservatively schedule everything enabled, as in
	// Flanagan–Godefroid's "add all enabled processes" fallback. (A
	// restriction to ev-dependent events looks tempting but loses
	// interleavings — the generated-protocol validation suite catches it.)
	//lint:nondet-ok order-free set union: every key is inserted and insertion commutes; the publish order speculative workers see varies with it, but records are pure, so only scheduling — never results — is affected
	for k := range g.keys {
		e.addBacktrack(g, k)
	}
	return raceFound
}

// availClock is the point in causal time at which ev's inputs became
// available: the join of the send clocks of its consumed messages (the
// zero clock for spontaneous events, which are always "available").
func (e *engine) availClock(ev core.Event) []int {
	clock := make([]int, e.p.N)
	for _, m := range ev.Msgs {
		if cs := e.sendClocks[m.Key()]; len(cs) > 0 {
			join(clock, cs[len(cs)-1])
		}
	}
	return clock
}

func join(dst, src []int) {
	for i, v := range src {
		if v > dst[i] {
			dst[i] = v
		}
	}
}

// happensBefore reports whether the event with the given clock, executed
// by proc, happens-before an event with clock other.
func happensBefore(clock []int, proc core.ProcessID, other []int) bool {
	return other[proc] >= clock[proc]
}

// limits bundles the stop conditions.
type limits struct {
	opts     explore.Options
	start    time.Time
	deadline time.Time
	polls    int
}

func newLimits(opts explore.Options) *limits {
	l := &limits{opts: opts, start: time.Now()}
	if opts.MaxDuration > 0 {
		l.deadline = l.start.Add(opts.MaxDuration)
	}
	return l
}

func (l *limits) exceeded(st *explore.Stats) bool {
	if l.opts.MaxStates > 0 && st.States >= l.opts.MaxStates {
		return true
	}
	if l.opts.MaxDepth > 0 && st.MaxDepth >= l.opts.MaxDepth {
		return true
	}
	if !l.deadline.IsZero() {
		l.polls++
		if l.polls&1023 == 0 && time.Now().After(l.deadline) {
			return true
		}
	}
	return false
}

func (l *limits) elapsed() time.Duration { return time.Since(l.start) }
