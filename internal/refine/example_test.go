package refine_test

import (
	"fmt"
	"log"

	"mpbasset/internal/explore"
	"mpbasset/internal/protocols/paxos"
	"mpbasset/internal/refine"
)

// Example demonstrates Theorem 2 operationally: refining the Paxos model
// multiplies transitions but leaves the state graph — and hence every
// unreduced search — exactly unchanged.
func Example() {
	p, err := paxos.New(paxos.Config{Proposers: 2, Acceptors: 3, Learners: 1})
	if err != nil {
		log.Fatal(err)
	}
	for _, strat := range refine.Strategies() {
		sp, err := refine.Split(p, strat)
		if err != nil {
			log.Fatal(err)
		}
		res, err := explore.DFS(sp, explore.Options{})
		if err != nil {
			log.Fatal(err)
		}
		fmt.Printf("%-14s transitions=%-2d states=%d\n", strat, len(sp.Transitions), res.Stats.States)
	}
	// Output:
	// unsplit        transitions=11 states=25555
	// reply-split    transitions=14 states=25555
	// quorum-split   transitions=17 states=25555
	// combined-split transitions=20 states=25555
}
