// Package refine implements transition refinement (§III): rewriting a
// protocol's transition set without changing its state graph, so that
// partial-order reduction sees finer-grained independence.
//
// Quorum-split (Definition 3) replaces an exact quorum transition t with
// one transition per quorum-sized subset Q of its potential senders; the
// split transition behaves exactly like t but consumes messages only from
// the processes in Q. Reply-split applies the same construction to reply
// transitions (Definition 4), whose sends go only back to the senders of
// the consumed messages — after the split, the static analysis knows the
// refined transition can feed only its named peers.
//
// Theorem 2 (a quorum-split is a transition refinement, i.e. the state
// graph is unchanged) is validated by this package's tests through explicit
// state-graph equality on the bundled protocols and on randomized ones.
//
// In the engine/store matrix, refinement is a front-end transform: it
// rewrites the protocol before any engine runs, composes with every store
// tier (the state graph, hence the set of canonical keys, is unchanged by
// construction), and pays off inside package por, where split transitions
// declare narrower peers and the precomputed dependence relation becomes
// sparser. The transform is deterministic — same protocol in, same
// transition set out — so refined runs are under the same bit-identity
// contract as unrefined ones.
package refine
