package refine

import (
	"fmt"

	"mpbasset/internal/core"
)

// Strategy selects which transitions are split, matching the three refined
// model families of the paper's Table II.
type Strategy int

const (
	// None leaves the protocol unchanged (the "unsplit" column).
	None Strategy = iota
	// Reply splits reply transitions only (reply-split).
	Reply
	// Quorum splits non-reply exact quorum transitions (quorum ≥ 2) only
	// (quorum-split).
	Quorum
	// Combined applies both splits (combined-split).
	Combined
)

// String names the strategy as in the paper's Table II.
func (s Strategy) String() string {
	switch s {
	case None:
		return "unsplit"
	case Reply:
		return "reply-split"
	case Quorum:
		return "quorum-split"
	case Combined:
		return "combined-split"
	default:
		return fmt.Sprintf("Strategy(%d)", int(s))
	}
}

// Strategies lists all strategies in the paper's column order.
func Strategies() []Strategy { return []Strategy{None, Reply, Quorum, Combined} }

// Split returns a refined copy of p according to the strategy. The input
// protocol is not modified. With Strategy None, a plain clone is returned.
//
// A transition is split only when the split changes anything: it must have
// strictly more potential senders than its quorum size. Transitions with
// nil Peers are split over all N processes (the paper's conservative
// assumption when the sender set cannot be narrowed).
func Split(p *core.Protocol, strat Strategy) (*core.Protocol, error) {
	if err := p.Finalize(); err != nil {
		return nil, err
	}
	np := p.Clone()
	if strat == None {
		if err := np.Finalize(); err != nil {
			return nil, err
		}
		return np, nil
	}
	var out []*core.Transition
	for _, t := range np.Transitions {
		if !eligible(t, strat) {
			out = append(out, t)
			continue
		}
		universe := t.Peers
		if universe == nil {
			universe = make([]core.ProcessID, np.N)
			for i := range universe {
				universe[i] = core.ProcessID(i)
			}
		}
		for _, combo := range Combinations(universe, t.Quorum) {
			tc := *t
			tc.Name = t.Name + core.PeerSuffix(combo)
			tc.Peers = combo
			out = append(out, &tc)
		}
	}
	np.Transitions = out
	np.Name = p.Name + "+" + strat.String()
	if err := np.Finalize(); err != nil {
		return nil, err
	}
	return np, nil
}

// eligible reports whether t is split under the strategy and whether the
// split is non-trivial (more potential senders than the quorum needs; the
// paper observes that quorum-split "makes no difference if the quorum
// contains all receivers").
func eligible(t *core.Transition, strat Strategy) bool {
	if t.Quorum < 1 {
		return false
	}
	if t.Peers != nil && len(t.Peers) <= t.Quorum {
		return false
	}
	switch strat {
	case Reply:
		return t.IsReply
	case Quorum:
		return !t.IsReply && t.Quorum >= 2
	case Combined:
		return t.IsReply || t.Quorum >= 2
	default:
		return false
	}
}

// Combinations enumerates all size-k subsets of ids, preserving order
// within each subset, in lexicographic order of positions. It returns nil
// when k exceeds len(ids).
func Combinations(ids []core.ProcessID, k int) [][]core.ProcessID {
	if k < 0 || k > len(ids) {
		return nil
	}
	var (
		out  [][]core.ProcessID
		pick = make([]core.ProcessID, k)
		rec  func(start, depth int)
	)
	rec = func(start, depth int) {
		if depth == k {
			combo := make([]core.ProcessID, k)
			copy(combo, pick)
			out = append(out, combo)
			return
		}
		for i := start; i <= len(ids)-(k-depth); i++ {
			pick[depth] = ids[i]
			rec(i+1, depth+1)
		}
	}
	rec(0, 0)
	return out
}
