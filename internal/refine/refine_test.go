package refine

import (
	"strings"
	"testing"
	"time"

	"mpbasset/internal/core"
	"mpbasset/internal/explore"
	"mpbasset/internal/mptest"
	"mpbasset/internal/protocols/multicast"
	"mpbasset/internal/protocols/paxos"
	"mpbasset/internal/protocols/storage"
)

// assertRefinement checks the paper's Theorem 2 on a concrete protocol:
// the split system generates exactly the same state graph (Definition 1).
func assertRefinement(t *testing.T, p *core.Protocol, strat Strategy, maxStates int) {
	t.Helper()
	g1, err := explore.BuildGraph(p, maxStates)
	if err != nil {
		t.Fatalf("%s: base graph: %v", p.Name, err)
	}
	sp, err := Split(p, strat)
	if err != nil {
		t.Fatalf("%s: split: %v", p.Name, err)
	}
	g2, err := explore.BuildGraph(sp, maxStates)
	if err != nil {
		t.Fatalf("%s: split graph: %v", sp.Name, err)
	}
	if diff := g1.Diff(g2); diff != "" {
		t.Errorf("%s / %s: state graphs differ (Theorem 2 violated): %s", p.Name, strat, diff)
	}
}

func TestTheorem2OnRandomProtocols(t *testing.T) {
	for seed := int64(0); seed < 120; seed++ {
		p, err := mptest.Random(mptest.GenConfig{Seed: seed, Quorums: true})
		if err != nil {
			t.Fatal(err)
		}
		for _, strat := range []Strategy{Reply, Quorum, Combined} {
			assertRefinement(t, p, strat, 200000)
		}
	}
}

func TestTheorem2OnBundledProtocols(t *testing.T) {
	if testing.Short() {
		t.Skip("graph equality on bundled protocols is slow")
	}
	type tc struct {
		name string
		p    *core.Protocol
		err  error
		max  int
	}
	px, pxErr := paxos.New(paxos.Config{Proposers: 2, Acceptors: 3, Learners: 1})
	mc, mcErr := multicast.New(multicast.Config{HonestReceivers: 3, HonestInitiators: 1, ByzantineReceivers: 1, ByzantineInitiators: 1})
	// One write keeps the full graph (invariants ignored) tractable.
	st, stErr := storage.New(storage.Config{Objects: 3, Readers: 2, Writes: 1, WrongRegularity: true})
	cases := []tc{
		{"paxos", px, pxErr, 100000},
		{"multicast", mc, mcErr, 100000},
		{"storage", st, stErr, 100000},
	}
	for _, c := range cases {
		if c.err != nil {
			t.Fatal(c.err)
		}
		// Graph equality needs the invariant disabled (BuildGraph explores
		// everything) — it ignores invariants by construction.
		for _, strat := range []Strategy{Reply, Quorum, Combined} {
			assertRefinement(t, c.p, strat, c.max)
		}
	}
}

func TestSplitVerdictsAgree(t *testing.T) {
	// Beyond graph equality: verdicts of searches over split models must
	// match the unsplit model (Theorem 1).
	for seed := int64(0); seed < 60; seed++ {
		p, err := mptest.Random(mptest.GenConfig{Seed: seed, Quorums: true, Threshold: 1})
		if err != nil {
			t.Fatal(err)
		}
		base, err := explore.DFS(p, explore.Options{MaxDuration: time.Minute})
		if err != nil {
			t.Fatal(err)
		}
		for _, strat := range Strategies() {
			sp, err := Split(p, strat)
			if err != nil {
				t.Fatal(err)
			}
			res, err := explore.DFS(sp, explore.Options{MaxDuration: time.Minute})
			if err != nil {
				t.Fatal(err)
			}
			if res.Verdict != base.Verdict {
				t.Errorf("seed %d %s: verdict %s, want %s", seed, strat, res.Verdict, base.Verdict)
			}
			if res.Stats.States != base.Stats.States {
				t.Errorf("seed %d %s: %d states, want %d (same state graph)", seed, strat, res.Stats.States, base.Stats.States)
			}
		}
	}
}

func TestSplitMechanics(t *testing.T) {
	p, err := paxos.New(paxos.Config{Proposers: 2, Acceptors: 3, Learners: 1})
	if err != nil {
		t.Fatal(err)
	}
	base := len(p.Transitions) // 2 proposers x2 + 3 acceptors x2 + 1 learner = 11

	qs, err := Split(p, Quorum)
	if err != nil {
		t.Fatal(err)
	}
	// Quorum-split: two proposer READ_REPL (C(3,2)=3 each) and one learner
	// ACCEPT (3): 11 - 3 + 9 = 17.
	if got := len(qs.Transitions); got != base+6 {
		t.Errorf("quorum-split transitions = %d, want %d", got, base+6)
	}
	rs, err := Split(p, Reply)
	if err != nil {
		t.Fatal(err)
	}
	// Reply-split: three acceptor READ transitions split per proposer:
	// 11 - 3 + 6 = 14.
	if got := len(rs.Transitions); got != base+3 {
		t.Errorf("reply-split transitions = %d, want %d", got, base+3)
	}
	cs, err := Split(p, Combined)
	if err != nil {
		t.Fatal(err)
	}
	if got := len(cs.Transitions); got != base+9 {
		t.Errorf("combined-split transitions = %d, want %d", got, base+9)
	}
	// Names follow the paper's msgType__ convention.
	found := false
	for _, tr := range cs.Transitions {
		if strings.Contains(tr.Name, "__") {
			found = true
			if tr.Peers == nil {
				t.Errorf("split transition %s has no peer restriction", tr)
			}
		}
	}
	if !found {
		t.Error("no split transitions generated")
	}
	// None with Strategy None.
	ns, err := Split(p, None)
	if err != nil {
		t.Fatal(err)
	}
	if len(ns.Transitions) != base {
		t.Errorf("unsplit clone changed transition count: %d", len(ns.Transitions))
	}
}

func TestSplitSkipsDegenerateQuorums(t *testing.T) {
	// Multicast (2,1,0,1): threshold equals the number of receivers, so
	// quorum-split must be a no-op (the paper's observation for this
	// setting).
	p, err := multicast.New(multicast.Config{HonestReceivers: 2, HonestInitiators: 1, ByzantineInitiators: 1})
	if err != nil {
		t.Fatal(err)
	}
	qs, err := Split(p, Quorum)
	if err != nil {
		t.Fatal(err)
	}
	if len(qs.Transitions) != len(p.Transitions) {
		t.Errorf("quorum-split changed transition count %d -> %d on a degenerate setting",
			len(p.Transitions), len(qs.Transitions))
	}
}

func TestCombinations(t *testing.T) {
	ids := []core.ProcessID{1, 2, 3, 4}
	combos := Combinations(ids, 2)
	if len(combos) != 6 {
		t.Fatalf("C(4,2) = %d, want 6", len(combos))
	}
	if Combinations(ids, 5) != nil {
		t.Fatal("k > n must yield nil")
	}
	if got := Combinations(ids, 4); len(got) != 1 || len(got[0]) != 4 {
		t.Fatalf("C(4,4) wrong: %v", got)
	}
	if got := Combinations(ids, 0); len(got) != 1 || len(got[0]) != 0 {
		t.Fatalf("C(4,0) should be one empty combination, got %v", got)
	}
}

func TestStrategyStrings(t *testing.T) {
	want := map[Strategy]string{None: "unsplit", Reply: "reply-split", Quorum: "quorum-split", Combined: "combined-split"}
	for s, w := range want {
		if s.String() != w {
			t.Errorf("%d.String() = %q, want %q", s, s.String(), w)
		}
	}
}
