package symmetry

import (
	"fmt"
	"sort"
	"strings"

	"mpbasset/internal/core"
)

// Remapper is implemented by local states and payloads that embed process
// IDs. Remap must return a value of the same concrete type with every
// embedded ID replaced by f(ID), leaving the receiver unmodified.
type Remapper interface {
	Remap(f func(core.ProcessID) core.ProcessID) any
}

// Canonicalizer maps states to canonical keys modulo role-preserving
// process permutations.
type Canonicalizer struct {
	n     int
	roles [][]core.ProcessID
	perms [][]core.ProcessID // all role-preserving permutations (as maps old->new indexed by old)
}

// New builds a canonicalizer for a system of n processes with the given
// roles. Every process must belong to exactly one role (singleton roles may
// be omitted — missing processes are treated as fixed). Roles with k
// members contribute k! permutations; keep roles small (≤ 5 or so).
func New(n int, roles [][]core.ProcessID) (*Canonicalizer, error) {
	seen := make(map[core.ProcessID]bool)
	for _, role := range roles {
		for _, p := range role {
			if p < 0 || int(p) >= n {
				return nil, fmt.Errorf("symmetry: process %d out of range [0,%d)", p, n)
			}
			if seen[p] {
				return nil, fmt.Errorf("symmetry: process %d appears in two roles", p)
			}
			seen[p] = true
		}
	}
	c := &Canonicalizer{n: n, roles: roles}
	c.perms = c.buildPerms()
	return c, nil
}

// NumPermutations returns the size of the symmetry group considered.
func (c *Canonicalizer) NumPermutations() int { return len(c.perms) }

// buildPerms enumerates the product of per-role permutations.
func (c *Canonicalizer) buildPerms() [][]core.ProcessID {
	identity := make([]core.ProcessID, c.n)
	for i := range identity {
		identity[i] = core.ProcessID(i)
	}
	perms := [][]core.ProcessID{identity}
	for _, role := range c.roles {
		if len(role) < 2 {
			continue
		}
		rolePerms := permutations(role)
		var next [][]core.ProcessID
		for _, base := range perms {
			for _, rp := range rolePerms {
				p := append([]core.ProcessID(nil), base...)
				for i, from := range role {
					p[from] = rp[i]
				}
				next = append(next, p)
			}
		}
		perms = next
	}
	return perms
}

// permutations enumerates all orderings of ids.
func permutations(ids []core.ProcessID) [][]core.ProcessID {
	if len(ids) == 1 {
		return [][]core.ProcessID{{ids[0]}}
	}
	var out [][]core.ProcessID
	for i := range ids {
		rest := make([]core.ProcessID, 0, len(ids)-1)
		rest = append(rest, ids[:i]...)
		rest = append(rest, ids[i+1:]...)
		for _, sub := range permutations(rest) {
			out = append(out, append([]core.ProcessID{ids[i]}, sub...))
		}
	}
	return out
}

// Canon returns the canonical key of s: the minimum encoding over the
// symmetry group. Use it as explore.Options.Canon.
func (c *Canonicalizer) Canon(s *core.State) string {
	best := ""
	for _, perm := range c.perms {
		k := c.encode(s, perm)
		if best == "" || k < best {
			best = k
		}
	}
	return best
}

// encode renders s under the permutation perm (old ID -> new ID).
func (c *Canonicalizer) encode(s *core.State, perm []core.ProcessID) string {
	f := func(p core.ProcessID) core.ProcessID { return perm[p] }
	// Locals: position i of the encoding holds the local state of the
	// process mapped TO i (i.e. the inverse image), with embedded IDs
	// remapped.
	inv := make([]core.ProcessID, c.n)
	for from, to := range perm {
		inv[to] = core.ProcessID(from)
	}
	var sb strings.Builder
	for i := 0; i < c.n; i++ {
		if i > 0 {
			sb.WriteByte('|')
		}
		l := s.Locals[inv[i]]
		if r, ok := l.(Remapper); ok {
			l = r.Remap(f).(core.LocalState)
		}
		sb.WriteString(l.Key())
	}
	sb.WriteByte('#')
	keys := make([]string, 0, s.Msgs.Distinct())
	counts := make(map[string]int)
	s.Msgs.Each(func(m core.Message, n int) {
		nm := core.Message{From: f(m.From), To: f(m.To), Type: m.Type, Payload: m.Payload}
		if r, ok := m.Payload.(Remapper); ok {
			nm.Payload = r.Remap(f).(core.Payload)
		}
		k := nm.Key()
		if counts[k] == 0 {
			keys = append(keys, k)
		}
		counts[k] += n
	})
	sort.Strings(keys)
	for _, k := range keys {
		sb.WriteByte(';')
		sb.WriteString(k)
		if counts[k] > 1 {
			fmt.Fprintf(&sb, "*%d", counts[k])
		}
	}
	return sb.String()
}
