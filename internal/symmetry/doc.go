// Package symmetry implements role-based symmetry reduction, the
// orthogonal technique the paper cites as combinable with its reductions
// (§VI, referencing the authors' prior work on role-based symmetry of
// fault-tolerant protocols): processes playing the same role — Paxos
// acceptors, storage base objects, honest multicast receivers — are
// interchangeable, so states that differ only by a permutation of
// same-role processes are identified.
//
// The reduction plugs into the searches as a canonicalization hook
// (explore.Options.Canon): the visited-set key of a state is the
// lexicographically least encoding over all role-preserving permutations.
// Local states and payloads that embed process IDs must implement Remapper
// so the permutation can be applied consistently; ID-free values need not
// do anything.
//
// In the engine/store matrix, symmetry occupies the same Canon slot as
// collapse compression (explore.Collapser), so the facade rejects the two
// together: both rewrite the visited-set key, and composing them would
// intern orbit representatives under run-local IDs that no longer expand
// to the state the engine actually visited. The canonicalizer is a pure
// function of the state, so symmetric runs keep the bit-identity contract
// across engines and worker counts; any exact store tier (including
// spill) works unchanged, since stores only ever see the canonical key.
package symmetry
