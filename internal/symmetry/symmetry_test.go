package symmetry

import (
	"testing"
	"time"

	"mpbasset/internal/core"
	"mpbasset/internal/explore"
	"mpbasset/internal/protocols/multicast"
	"mpbasset/internal/protocols/paxos"
	"mpbasset/internal/protocols/storage"
)

func TestPermutationCount(t *testing.T) {
	c, err := New(6, [][]core.ProcessID{{0, 1, 2}, {3, 4}})
	if err != nil {
		t.Fatal(err)
	}
	if got := c.NumPermutations(); got != 12 { // 3! * 2!
		t.Fatalf("permutations = %d, want 12", got)
	}
}

func TestNewRejections(t *testing.T) {
	if _, err := New(2, [][]core.ProcessID{{0, 5}}); err == nil {
		t.Fatal("out-of-range process accepted")
	}
	if _, err := New(3, [][]core.ProcessID{{0, 1}, {1, 2}}); err == nil {
		t.Fatal("overlapping roles accepted")
	}
}

func TestCanonIdentifiesSymmetricStates(t *testing.T) {
	// Two Paxos states that differ only by swapping two acceptors must
	// canonicalize identically. Build them by driving the protocol down
	// two symmetric paths: acceptor 2 answers before acceptor 3, and vice
	// versa.
	cfg := paxos.Config{Proposers: 1, Acceptors: 3, Learners: 1}
	p, err := paxos.New(cfg)
	if err != nil {
		t.Fatal(err)
	}
	canon, err := New(p.N, cfg.Roles())
	if err != nil {
		t.Fatal(err)
	}
	s0, err := p.InitialState()
	if err != nil {
		t.Fatal(err)
	}
	// PROPOSE, then one acceptor READ.
	s1, err := p.Execute(s0, p.Enabled(s0)[0])
	if err != nil {
		t.Fatal(err)
	}
	var viaA2, viaA3 *core.State
	for _, ev := range p.Enabled(s1) {
		ns, err := p.Execute(s1, ev)
		if err != nil {
			t.Fatal(err)
		}
		switch ev.T.Proc {
		case cfg.AcceptorID(1):
			viaA2 = ns
		case cfg.AcceptorID(2):
			viaA3 = ns
		}
	}
	if viaA2 == nil || viaA3 == nil {
		t.Fatal("expected READ events at acceptors 1 and 2")
	}
	if viaA2.Key() == viaA3.Key() {
		t.Fatal("plain keys should differ (different acceptors moved)")
	}
	if canon.Canon(viaA2) != canon.Canon(viaA3) {
		t.Fatal("canonical keys should coincide for role-symmetric states")
	}
}

// runWithAndWithout compares a plain search against a symmetry-reduced one.
func runWithAndWithout(t *testing.T, p *core.Protocol, roles [][]core.ProcessID, groupSize int) {
	t.Helper()
	plain, err := explore.DFS(p, explore.Options{MaxDuration: time.Minute})
	if err != nil {
		t.Fatal(err)
	}
	canon, err := New(p.N, roles)
	if err != nil {
		t.Fatal(err)
	}
	sym, err := explore.DFS(p, explore.Options{Canon: canon.Canon, MaxDuration: time.Minute})
	if err != nil {
		t.Fatal(err)
	}
	if plain.Verdict != sym.Verdict {
		t.Errorf("%s: verdict %s (plain) vs %s (symmetry)", p.Name, plain.Verdict, sym.Verdict)
	}
	if sym.Stats.States >= plain.Stats.States {
		t.Errorf("%s: symmetry did not reduce states: %d vs %d", p.Name, sym.Stats.States, plain.Stats.States)
	}
	// The orbit inequality: reduction is bounded by the group size.
	if sym.Stats.States*groupSize < plain.Stats.States {
		t.Errorf("%s: reduction exceeds group size %d: %d vs %d (unsound canonicalization?)",
			p.Name, groupSize, sym.Stats.States, plain.Stats.States)
	}
}

func TestSymmetryOnPaxos(t *testing.T) {
	cfg := paxos.Config{Proposers: 2, Acceptors: 3, Learners: 1}
	p, err := paxos.New(cfg)
	if err != nil {
		t.Fatal(err)
	}
	runWithAndWithout(t, p, cfg.Roles(), 6)
}

func TestSymmetryOnFaultyPaxosStillFindsBug(t *testing.T) {
	cfg := paxos.Config{Proposers: 2, Acceptors: 3, Learners: 1, Faulty: true}
	p, err := paxos.New(cfg)
	if err != nil {
		t.Fatal(err)
	}
	canon, err := New(p.N, cfg.Roles())
	if err != nil {
		t.Fatal(err)
	}
	res, err := explore.DFS(p, explore.Options{Canon: canon.Canon})
	if err != nil {
		t.Fatal(err)
	}
	if res.Verdict != explore.VerdictViolated {
		t.Fatalf("verdict = %s, want CE", res.Verdict)
	}
}

func TestSymmetryOnMulticast(t *testing.T) {
	// Honest receivers within one equivocation group are symmetric;
	// certificates embed receiver IDs and must be remapped (commitPayload
	// implements Remapper). The wrong-agreement setting keeps its CE.
	cfg := multicast.Config{HonestReceivers: 3, HonestInitiators: 1, ByzantineReceivers: 1, ByzantineInitiators: 1}
	p, err := multicast.New(cfg)
	if err != nil {
		t.Fatal(err)
	}
	groupSize := 1
	for _, role := range cfg.Roles() {
		f := 1
		for i := 2; i <= len(role); i++ {
			f *= i
		}
		groupSize *= f
	}
	runWithAndWithout(t, p, cfg.Roles(), groupSize)

	wrong, err := multicast.New(multicast.Config{HonestReceivers: 2, HonestInitiators: 1, ByzantineReceivers: 2, ByzantineInitiators: 1})
	if err != nil {
		t.Fatal(err)
	}
	wcfg := multicast.Config{HonestReceivers: 2, HonestInitiators: 1, ByzantineReceivers: 2, ByzantineInitiators: 1}
	canon, err := New(wrong.N, wcfg.Roles())
	if err != nil {
		t.Fatal(err)
	}
	res, err := explore.DFS(wrong, explore.Options{Canon: canon.Canon})
	if err != nil {
		t.Fatal(err)
	}
	if res.Verdict != explore.VerdictViolated {
		t.Fatalf("wrong-agreement CE lost under symmetry: %s", res.Verdict)
	}
}

func TestSymmetryOnStorage(t *testing.T) {
	cfg := storage.Config{Objects: 3, Readers: 2, WrongRegularity: true}
	p, err := storage.New(cfg)
	if err != nil {
		t.Fatal(err)
	}
	// Note: readers are symmetric only if their read IDs do not encode
	// the reader index; ours do, so only objects form a role here.
	roles := [][]core.ProcessID{cfg.ObjectIDs()}
	runWithAndWithout(t, p, roles, 6)
}
