package symmetry_test

import (
	"fmt"
	"log"

	"mpbasset/internal/explore"
	"mpbasset/internal/protocols/paxos"
	"mpbasset/internal/symmetry"
)

// Example shows role-based symmetry reduction on Paxos: the three
// acceptors are interchangeable, collapsing orbits of up to 3! states.
func Example() {
	cfg := paxos.Config{Proposers: 2, Acceptors: 3, Learners: 1}
	p, err := paxos.New(cfg)
	if err != nil {
		log.Fatal(err)
	}
	plain, err := explore.DFS(p, explore.Options{})
	if err != nil {
		log.Fatal(err)
	}
	canon, err := symmetry.New(p.N, cfg.Roles())
	if err != nil {
		log.Fatal(err)
	}
	sym, err := explore.DFS(p, explore.Options{Canon: canon.Canon})
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("group=%d permutations\n", canon.NumPermutations())
	fmt.Printf("plain:    %s, %d states\n", plain.Verdict, plain.Stats.States)
	fmt.Printf("symmetry: %s, %d states\n", sym.Verdict, sym.Stats.States)
	// Output:
	// group=6 permutations
	// plain:    Verified, 25555 states
	// symmetry: Verified, 4693 states
}
