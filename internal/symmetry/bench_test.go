package symmetry

import (
	"testing"

	"mpbasset/internal/explore"
	"mpbasset/internal/protocols/paxos"
)

// BenchmarkCanon measures the per-state canonicalization cost (the price
// paid for the orbit collapse: |group| encodings per state).
func BenchmarkCanon(b *testing.B) {
	cfg := paxos.Config{Proposers: 2, Acceptors: 3, Learners: 1}
	p, err := paxos.New(cfg)
	if err != nil {
		b.Fatal(err)
	}
	canon, err := New(p.N, cfg.Roles())
	if err != nil {
		b.Fatal(err)
	}
	s, err := p.InitialState()
	if err != nil {
		b.Fatal(err)
	}
	// Advance a few steps so the state is non-trivial.
	for i := 0; i < 4; i++ {
		events := p.Enabled(s)
		if len(events) == 0 {
			break
		}
		if s, err = p.Execute(s, events[0]); err != nil {
			b.Fatal(err)
		}
	}
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		_ = canon.Canon(s)
	}
}

// BenchmarkSymmetrySearch measures the end-to-end trade: fewer states at a
// higher per-state cost.
func BenchmarkSymmetrySearch(b *testing.B) {
	cfg := paxos.Config{Proposers: 2, Acceptors: 3, Learners: 1}
	for _, on := range []bool{false, true} {
		name := "off"
		if on {
			name = "on"
		}
		b.Run(name, func(b *testing.B) {
			for i := 0; i < b.N; i++ {
				p, err := paxos.New(cfg)
				if err != nil {
					b.Fatal(err)
				}
				opts := explore.Options{}
				if on {
					canon, err := New(p.N, cfg.Roles())
					if err != nil {
						b.Fatal(err)
					}
					opts.Canon = canon.Canon
				}
				res, err := explore.DFS(p, opts)
				if err != nil {
					b.Fatal(err)
				}
				b.ReportMetric(float64(res.Stats.States), "states")
			}
		})
	}
}
