package paxos

import (
	"mpbasset/internal/core"
	"mpbasset/internal/liveness"
)

// Decides returns the Paxos liveness property "some value is eventually
// decided": a counterexample is an execution on which no learner ever
// decides — in the bounded model either an infinite ballot interleaving or
// (the classic FLP-style outcome) a run that halts with every learner
// still undecided, reported as a stutter lasso. With Property.WeakFair the
// counterexamples are restricted to weakly fair schedules. The Config must
// be the one the checked protocol was built from.
func Decides(c Config) *liveness.Property {
	cc := c.withDefaults()
	learners := cc.LearnerIDs()
	return liveness.Eventually("some learner decides", learners, func(s *core.State) bool {
		for _, id := range learners {
			if s.Local(id).(*learnerState).Decided != 0 {
				return true
			}
		}
		return false
	})
}
