package paxos

import (
	"strconv"
	"strings"

	"mpbasset/internal/core"
)

// Message type names, matching the paper's phase naming (§II, fn. 1).
const (
	MsgRead     = "READ"      // phase 1a: proposer -> acceptors
	MsgReadRepl = "READ_REPL" // phase 1b: acceptor -> proposer
	MsgWrite    = "WRITE"     // phase 2a: proposer -> acceptors
	MsgAccept   = "ACCEPT"    // phase 2b: acceptor -> learners
)

// readPayload is the phase-1a content: the ballot being opened.
type readPayload struct {
	Ballot int
}

func (p readPayload) Key() string { return "b" + strconv.Itoa(p.Ballot) }

// readReplPayload is the phase-1b content: the answered ballot plus the
// acceptor's last accepted proposal (0,0 if none).
type readReplPayload struct {
	Ballot    int
	AccBallot int
	AccVal    int
}

func (p readReplPayload) Key() string {
	var sb strings.Builder
	sb.WriteByte('b')
	sb.WriteString(strconv.Itoa(p.Ballot))
	sb.WriteByte('a')
	sb.WriteString(strconv.Itoa(p.AccBallot))
	sb.WriteByte('v')
	sb.WriteString(strconv.Itoa(p.AccVal))
	return sb.String()
}

// writePayload is the phase-2a content: ballot and proposed value.
type writePayload struct {
	Ballot int
	Val    int
}

func (p writePayload) Key() string {
	return "b" + strconv.Itoa(p.Ballot) + "v" + strconv.Itoa(p.Val)
}

// acceptPayload is the phase-2b content: the accepted proposal.
type acceptPayload struct {
	Ballot int
	Val    int
}

func (p acceptPayload) Key() string {
	return "b" + strconv.Itoa(p.Ballot) + "v" + strconv.Itoa(p.Val)
}

var (
	_ core.Payload = readPayload{}
	_ core.Payload = readReplPayload{}
	_ core.Payload = writePayload{}
	_ core.Payload = acceptPayload{}
)
