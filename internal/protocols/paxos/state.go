package paxos

import (
	"sort"
	"strconv"
	"strings"

	"mpbasset/internal/core"
)

// Proposer phases.
const (
	phaseIdle = iota
	phaseReading
	phaseWriting
	phaseDone
)

// proposerState is the local state of a proposer. The counting fields
// (Cnt, HighestB, HighestV) are used only by the single-message model's
// simulated quorum collection (the paper's Figure 3) and stay zero in the
// quorum model, so both models share one type.
type proposerState struct {
	Phase    int
	Ballot   int // current ballot; 0 before the first PROPOSE
	Rounds   int // ballots started so far
	Cnt      int // single-message model: READ_REPL messages counted
	HighestB int // single-message model: highest AccBallot seen
	HighestV int // single-message model: value of HighestB
}

func (s *proposerState) Key() string {
	var sb strings.Builder
	sb.WriteString("P")
	sb.WriteString(strconv.Itoa(s.Phase))
	sb.WriteByte(',')
	sb.WriteString(strconv.Itoa(s.Ballot))
	sb.WriteByte(',')
	sb.WriteString(strconv.Itoa(s.Rounds))
	sb.WriteByte(',')
	sb.WriteString(strconv.Itoa(s.Cnt))
	sb.WriteByte(',')
	sb.WriteString(strconv.Itoa(s.HighestB))
	sb.WriteByte(',')
	sb.WriteString(strconv.Itoa(s.HighestV))
	return sb.String()
}

func (s *proposerState) Clone() core.LocalState {
	c := *s
	return &c
}

// proposal is a (ballot, value) pair.
type proposal struct {
	Ballot int
	Val    int
}

// acceptorState is the local state of an acceptor. History records every
// proposal the acceptor has ever accepted — the history variable over which
// the chosen-value part of the consensus invariant is stated.
type acceptorState struct {
	Promised  int
	AccBallot int
	AccVal    int
	History   []proposal // sorted by (Ballot, Val), no duplicates
}

func (s *acceptorState) Key() string {
	var sb strings.Builder
	sb.WriteString("A")
	sb.WriteString(strconv.Itoa(s.Promised))
	sb.WriteByte(',')
	sb.WriteString(strconv.Itoa(s.AccBallot))
	sb.WriteByte(',')
	sb.WriteString(strconv.Itoa(s.AccVal))
	sb.WriteByte('[')
	for i, pr := range s.History {
		if i > 0 {
			sb.WriteByte(' ')
		}
		sb.WriteString(strconv.Itoa(pr.Ballot))
		sb.WriteByte(':')
		sb.WriteString(strconv.Itoa(pr.Val))
	}
	sb.WriteByte(']')
	return sb.String()
}

func (s *acceptorState) Clone() core.LocalState {
	c := *s
	c.History = append([]proposal(nil), s.History...)
	return &c
}

// record adds pr to the history set, keeping it sorted and duplicate-free.
func (s *acceptorState) record(pr proposal) {
	i := sort.Search(len(s.History), func(i int) bool {
		h := s.History[i]
		return h.Ballot > pr.Ballot || (h.Ballot == pr.Ballot && h.Val >= pr.Val)
	})
	if i < len(s.History) && s.History[i] == pr {
		return
	}
	s.History = append(s.History, proposal{})
	copy(s.History[i+1:], s.History[i:])
	s.History[i] = pr
}

// learnerState is the local state of a learner. Counts is used only by the
// single-message model: ACCEPT tallies per proposal.
type learnerState struct {
	Decided       int // 0 = undecided
	DecidedBallot int
	Counts        map[proposal]int
	Cnt           int // faulty single-message model: raw ACCEPT count
}

func (s *learnerState) Key() string {
	var sb strings.Builder
	sb.WriteString("L")
	sb.WriteString(strconv.Itoa(s.Decided))
	sb.WriteByte(',')
	sb.WriteString(strconv.Itoa(s.DecidedBallot))
	sb.WriteByte(',')
	sb.WriteString(strconv.Itoa(s.Cnt))
	if len(s.Counts) > 0 {
		props := make([]proposal, 0, len(s.Counts))
		for pr := range s.Counts {
			props = append(props, pr)
		}
		sort.Slice(props, func(i, j int) bool {
			if props[i].Ballot != props[j].Ballot {
				return props[i].Ballot < props[j].Ballot
			}
			return props[i].Val < props[j].Val
		})
		sb.WriteByte('[')
		for i, pr := range props {
			if i > 0 {
				sb.WriteByte(' ')
			}
			sb.WriteString(strconv.Itoa(pr.Ballot))
			sb.WriteByte(':')
			sb.WriteString(strconv.Itoa(pr.Val))
			sb.WriteByte('=')
			sb.WriteString(strconv.Itoa(s.Counts[pr]))
		}
		sb.WriteByte(']')
	}
	return sb.String()
}

func (s *learnerState) Clone() core.LocalState {
	c := *s
	if s.Counts != nil {
		c.Counts = make(map[proposal]int, len(s.Counts))
		//lint:nondet-ok map-to-map copy: insertion order of the clone is unobservable
		for k, v := range s.Counts {
			c.Counts[k] = v
		}
	}
	return &c
}

var (
	_ core.LocalState = (*proposerState)(nil)
	_ core.LocalState = (*acceptorState)(nil)
	_ core.LocalState = (*learnerState)(nil)
)
