package paxos

import (
	"fmt"
	"strconv"

	"mpbasset/internal/core"
)

// Model selects between the paper's two modeling styles.
type Model int

const (
	// ModelQuorum uses quorum transitions (the paper's Figure 2).
	ModelQuorum Model = iota + 1
	// ModelSingle simulates quorum collection with counting
	// single-message transitions (the paper's Figure 3).
	ModelSingle
)

// String names the model as in the paper's tables.
func (m Model) String() string {
	switch m {
	case ModelQuorum:
		return "quorum"
	case ModelSingle:
		return "single"
	default:
		return fmt.Sprintf("Model(%d)", int(m))
	}
}

// Config is a Paxos protocol setting, the paper's (P,A,L) triple plus
// modeling choices.
type Config struct {
	Proposers int
	Acceptors int
	Learners  int
	// Model selects quorum vs single-message modeling; default ModelQuorum.
	Model Model
	// Faulty makes learners decide without comparing ballots and values
	// (the paper's "Faulty Paxos" debugging target).
	Faulty bool
	// MaxBallots bounds the number of ballots each proposer starts;
	// default 1 (the smallest meaningful instance).
	MaxBallots int
}

func (c *Config) withDefaults() Config {
	cc := *c
	if cc.Model == 0 {
		cc.Model = ModelQuorum
	}
	if cc.MaxBallots == 0 {
		cc.MaxBallots = 1
	}
	return cc
}

// Setting renders the configuration as the paper writes it, e.g. "(2,3,1)".
func (c Config) Setting() string {
	return fmt.Sprintf("(%d,%d,%d)", c.Proposers, c.Acceptors, c.Learners)
}

// Process index helpers.

// ProposerID returns the process ID of the i-th proposer.
func (c Config) ProposerID(i int) core.ProcessID { return core.ProcessID(i) }

// AcceptorID returns the process ID of the i-th acceptor.
func (c Config) AcceptorID(i int) core.ProcessID { return core.ProcessID(c.Proposers + i) }

// LearnerID returns the process ID of the i-th learner.
func (c Config) LearnerID(i int) core.ProcessID {
	return core.ProcessID(c.Proposers + c.Acceptors + i)
}

// AcceptorIDs returns all acceptor process IDs.
func (c Config) AcceptorIDs() []core.ProcessID {
	ids := make([]core.ProcessID, c.Acceptors)
	for i := range ids {
		ids[i] = c.AcceptorID(i)
	}
	return ids
}

// ProposerIDs returns all proposer process IDs.
func (c Config) ProposerIDs() []core.ProcessID {
	ids := make([]core.ProcessID, c.Proposers)
	for i := range ids {
		ids[i] = c.ProposerID(i)
	}
	return ids
}

// LearnerIDs returns all learner process IDs.
func (c Config) LearnerIDs() []core.ProcessID {
	ids := make([]core.ProcessID, c.Learners)
	for i := range ids {
		ids[i] = c.LearnerID(i)
	}
	return ids
}

// Majority returns the quorum size used by proposers and learners.
func (c Config) Majority() int { return c.Acceptors/2 + 1 }

// Roles groups the processes into symmetry roles (proposers are not
// symmetric — they propose distinct values — but acceptors and learners
// are). Used by package symmetry.
func (c Config) Roles() [][]core.ProcessID {
	roles := [][]core.ProcessID{c.AcceptorIDs(), c.LearnerIDs()}
	for _, p := range c.ProposerIDs() {
		roles = append(roles, []core.ProcessID{p})
	}
	return roles
}

// New builds the Paxos protocol model for the given setting.
func New(cfg Config) (*core.Protocol, error) {
	c := cfg.withDefaults()
	if c.Proposers < 1 || c.Acceptors < 1 || c.Learners < 0 {
		return nil, fmt.Errorf("paxos: invalid setting %s", c.Setting())
	}
	if c.MaxBallots < 1 {
		return nil, fmt.Errorf("paxos: MaxBallots must be at least 1, got %d", c.MaxBallots)
	}
	n := c.Proposers + c.Acceptors + c.Learners
	maj := c.Majority()
	acceptors := c.AcceptorIDs()
	proposers := c.ProposerIDs()
	learners := c.LearnerIDs()

	var ts []*core.Transition
	for i := 0; i < c.Proposers; i++ {
		ts = append(ts, proposerTransitions(c, i, maj, acceptors)...)
	}
	for i := 0; i < c.Acceptors; i++ {
		ts = append(ts, acceptorTransitions(c, i, proposers, learners)...)
	}
	for i := 0; i < c.Learners; i++ {
		ts = append(ts, learnerTransitions(c, i, maj, acceptors)...)
	}

	name := "Paxos"
	if c.Faulty {
		name = "FaultyPaxos"
	}
	p := &core.Protocol{
		Name: fmt.Sprintf("%s%s/%s", name, c.Setting(), c.Model),
		N:    n,
		Init: func() []core.LocalState {
			locals := make([]core.LocalState, n)
			for i := 0; i < c.Proposers; i++ {
				locals[c.ProposerID(i)] = &proposerState{Phase: phaseIdle}
			}
			for i := 0; i < c.Acceptors; i++ {
				locals[c.AcceptorID(i)] = &acceptorState{}
			}
			for i := 0; i < c.Learners; i++ {
				locals[c.LearnerID(i)] = &learnerState{}
			}
			return locals
		},
		Transitions: ts,
		Invariant:   consensusInvariant(c),
	}
	if err := p.Finalize(); err != nil {
		return nil, err
	}
	return p, nil
}

// ballotOf returns the ballot number proposer i uses in its r-th round
// (r counted from 1): globally unique and increasing per proposer.
func ballotOf(c Config, i, r int) int { return i + 1 + (r-1)*c.Proposers }

// valueOf returns the value proposer i proposes.
func valueOf(i int) int { return i + 1 }

func proposerTransitions(c Config, i, maj int, acceptors []core.ProcessID) []*core.Transition {
	self := c.ProposerID(i)
	propose := &core.Transition{
		Name:     "PROPOSE",
		Proc:     self,
		Priority: 3, // starts a new instance (opposite transaction heuristic)
		Sends:    []core.SendSpec{{Type: MsgRead, To: acceptors}},
		// A proposer may start a (higher) ballot at any moment — the
		// asynchronous model's rendering of a timeout — until its ballot
		// budget is exhausted. An abandoned phase leaves its messages
		// unanswered.
		LocalGuard: func(ls core.LocalState) bool {
			return ls.(*proposerState).Rounds < c.MaxBallots
		},
		Apply: func(ctx *core.Ctx) {
			s := ctx.Local.(*proposerState)
			s.Rounds++
			s.Ballot = ballotOf(c, i, s.Rounds)
			s.Phase = phaseReading
			s.Cnt = 0
			s.HighestB = 0
			s.HighestV = 0
			for _, a := range acceptors {
				ctx.Send(a, MsgRead, readPayload{Ballot: s.Ballot})
			}
		},
	}

	var collect *core.Transition
	switch c.Model {
	case ModelQuorum:
		// The paper's Figure 2: consume READ_REPL from a majority of
		// acceptors in one step.
		collect = &core.Transition{
			Name:     MsgReadRepl,
			Proc:     self,
			MsgType:  MsgReadRepl,
			Quorum:   maj,
			Peers:    acceptors,
			Priority: 2,
			// Each acceptor replies at most once per ballot, and with a
			// single ballot per proposer at most once overall.
			UniquePerSender: c.MaxBallots == 1,
			Sends:           []core.SendSpec{{Type: MsgWrite, To: acceptors}},
			LocalGuard: func(ls core.LocalState) bool {
				return ls.(*proposerState).Phase == phaseReading
			},
			Guard: func(ls core.LocalState, msgs []core.Message) bool {
				s := ls.(*proposerState)
				for _, m := range msgs {
					if m.Payload.(readReplPayload).Ballot != s.Ballot {
						return false
					}
				}
				return true
			},
			Apply: func(ctx *core.Ctx) {
				s := ctx.Local.(*proposerState)
				v := valueOf(i)
				hb := 0
				for _, m := range ctx.Msgs {
					pl := m.Payload.(readReplPayload)
					if pl.AccBallot > hb {
						hb = pl.AccBallot
						v = pl.AccVal
					}
				}
				s.Phase = phaseWriting
				for _, a := range acceptors {
					ctx.Send(a, MsgWrite, writePayload{Ballot: s.Ballot, Val: v})
				}
			},
		}
	case ModelSingle:
		// The paper's Figure 3: count messages one at a time.
		collect = &core.Transition{
			Name:            MsgReadRepl,
			Proc:            self,
			MsgType:         MsgReadRepl,
			Quorum:          1,
			Peers:           acceptors,
			Priority:        2,
			UniquePerSender: c.MaxBallots == 1,
			Sends:           []core.SendSpec{{Type: MsgWrite, To: acceptors}},
			LocalGuard: func(ls core.LocalState) bool {
				return ls.(*proposerState).Phase == phaseReading
			},
			Guard: func(ls core.LocalState, msgs []core.Message) bool {
				s := ls.(*proposerState)
				return msgs[0].Payload.(readReplPayload).Ballot == s.Ballot
			},
			Apply: func(ctx *core.Ctx) {
				s := ctx.Local.(*proposerState)
				pl := ctx.Msgs[0].Payload.(readReplPayload)
				s.Cnt++
				if pl.AccBallot > s.HighestB {
					s.HighestB = pl.AccBallot
					s.HighestV = pl.AccVal
				}
				if s.Cnt >= maj {
					v := valueOf(i)
					if s.HighestB > 0 {
						v = s.HighestV
					}
					s.Cnt = 0
					s.HighestB = 0
					s.HighestV = 0
					s.Phase = phaseWriting
					for _, a := range acceptors {
						ctx.Send(a, MsgWrite, writePayload{Ballot: s.Ballot, Val: v})
					}
				}
			},
		}
	default:
		panic("paxos: unknown model " + strconv.Itoa(int(c.Model)))
	}
	return []*core.Transition{propose, collect}
}

func acceptorTransitions(c Config, i int, proposers, learners []core.ProcessID) []*core.Transition {
	self := c.AcceptorID(i)
	read := &core.Transition{
		Name:            MsgRead,
		Proc:            self,
		MsgType:         MsgRead,
		Quorum:          1,
		Peers:           proposers,
		Priority:        2,
		IsReply:         true,
		UniquePerSender: c.MaxBallots == 1,
		Sends:           []core.SendSpec{{Type: MsgReadRepl, ToSenders: true}},
		Apply: func(ctx *core.Ctx) {
			s := ctx.Local.(*acceptorState)
			m := ctx.Msgs[0]
			b := m.Payload.(readPayload).Ballot
			if b > s.Promised {
				s.Promised = b
				ctx.Send(m.From, MsgReadRepl, readReplPayload{
					Ballot:    b,
					AccBallot: s.AccBallot,
					AccVal:    s.AccVal,
				})
			}
		},
	}
	write := &core.Transition{
		Name:            MsgWrite,
		Proc:            self,
		MsgType:         MsgWrite,
		Quorum:          1,
		Peers:           proposers,
		Priority:        1,
		UniquePerSender: c.MaxBallots == 1,
		Visible:         true, // extends the acceptance history the invariant reads
		Sends:           []core.SendSpec{{Type: MsgAccept, To: learners}},
		Apply: func(ctx *core.Ctx) {
			s := ctx.Local.(*acceptorState)
			pl := ctx.Msgs[0].Payload.(writePayload)
			if pl.Ballot >= s.Promised {
				s.Promised = pl.Ballot
				s.AccBallot = pl.Ballot
				s.AccVal = pl.Val
				s.record(proposal{Ballot: pl.Ballot, Val: pl.Val})
				for _, l := range learners {
					ctx.Send(l, MsgAccept, acceptPayload{Ballot: pl.Ballot, Val: pl.Val})
				}
			}
		},
	}
	return []*core.Transition{read, write}
}

func learnerTransitions(c Config, i, maj int, acceptors []core.ProcessID) []*core.Transition {
	self := c.LearnerID(i)
	t := &core.Transition{
		Name:     MsgAccept,
		Proc:     self,
		MsgType:  MsgAccept,
		Priority: 0, // terminates an instance
		Visible:  true,
		Peers:    acceptors,
	}
	switch {
	case c.Model == ModelQuorum && !c.Faulty:
		t.Quorum = maj
		t.LocalGuard = func(ls core.LocalState) bool {
			return ls.(*learnerState).Decided == 0
		}
		t.Guard = func(_ core.LocalState, msgs []core.Message) bool {
			first := msgs[0].Payload.(acceptPayload)
			for _, m := range msgs[1:] {
				if m.Payload.(acceptPayload) != first {
					return false
				}
			}
			return true
		}
		t.Apply = func(ctx *core.Ctx) {
			s := ctx.Local.(*learnerState)
			pl := ctx.Msgs[0].Payload.(acceptPayload)
			s.Decided = pl.Val
			s.DecidedBallot = pl.Ballot
		}
	case c.Model == ModelQuorum && c.Faulty:
		// Faulty Paxos: decide on any majority without comparing contents.
		t.Quorum = maj
		t.LocalGuard = func(ls core.LocalState) bool {
			return ls.(*learnerState).Decided == 0
		}
		t.Apply = func(ctx *core.Ctx) {
			s := ctx.Local.(*learnerState)
			pl := ctx.Msgs[0].Payload.(acceptPayload)
			s.Decided = pl.Val
			s.DecidedBallot = pl.Ballot
		}
	case c.Model == ModelSingle && !c.Faulty:
		t.Quorum = 1
		t.LocalGuard = func(ls core.LocalState) bool {
			return ls.(*learnerState).Decided == 0
		}
		t.Apply = func(ctx *core.Ctx) {
			s := ctx.Local.(*learnerState)
			pl := ctx.Msgs[0].Payload.(acceptPayload)
			pr := proposal{Ballot: pl.Ballot, Val: pl.Val}
			if s.Counts == nil {
				s.Counts = make(map[proposal]int)
			}
			s.Counts[pr]++
			if s.Counts[pr] >= maj {
				s.Decided = pr.Val
				s.DecidedBallot = pr.Ballot
				s.Counts = nil
			}
		}
	default: // ModelSingle && Faulty
		t.Quorum = 1
		t.LocalGuard = func(ls core.LocalState) bool {
			return ls.(*learnerState).Decided == 0
		}
		t.Apply = func(ctx *core.Ctx) {
			s := ctx.Local.(*learnerState)
			pl := ctx.Msgs[0].Payload.(acceptPayload)
			s.Cnt++
			if s.Cnt >= maj {
				s.Decided = pl.Val
				s.DecidedBallot = pl.Ballot
				s.Cnt = 0
			}
		}
	}
	return []*core.Transition{t}
}

// consensusInvariant builds the Consensus property for the setting: at most
// one chosen value, decided values are chosen, and learners agree.
func consensusInvariant(c Config) core.Invariant {
	return func(s *core.State) error {
		// Chosen values: proposals accepted by a majority of acceptors
		// (over history).
		counts := make(map[proposal]int)
		for i := 0; i < c.Acceptors; i++ {
			as := s.Local(c.AcceptorID(i)).(*acceptorState)
			for _, pr := range as.History {
				counts[pr]++
			}
		}
		maj := c.Majority()
		chosen := make(map[int]proposal)
		for pr, n := range counts {
			if n >= maj {
				chosen[pr.Val] = pr
			}
		}
		if len(chosen) > 1 {
			return fmt.Errorf("consensus violated: %d distinct values chosen", len(chosen))
		}
		prev := 0
		for i := 0; i < c.Learners; i++ {
			ls := s.Local(c.LearnerID(i)).(*learnerState)
			if ls.Decided == 0 {
				continue
			}
			if _, ok := chosen[ls.Decided]; !ok {
				return fmt.Errorf("consensus violated: learner %d decided %d, which was never chosen", i, ls.Decided)
			}
			if prev != 0 && ls.Decided != prev {
				return fmt.Errorf("consensus violated: learners decided %d and %d", prev, ls.Decided)
			}
			prev = ls.Decided
		}
		return nil
	}
}
