// Package paxos models single-decree Paxos (Lamport, "The Part-Time
// Parliament") in the MP computation model, following the paper's §II
// running example: proposers, acceptors and learners exchanging READ
// (phase 1a), READ_REPL (1b), WRITE (2a) and ACCEPT (2b) messages.
//
// Two models are provided, mirroring the paper's Figures 2 and 3:
//
//   - the quorum model, where a proposer consumes a majority of READ_REPL
//     messages in one quorum transition (and a learner a majority of
//     ACCEPTs), and
//   - the single-message model, where the same logic is "simulated" by
//     counting transitions that consume one message at a time — the model
//     style the paper shows inflates the state space (§II-C).
//
// The Faulty variant reproduces the paper's "Faulty Paxos" debugging
// target: learners decide on any majority of ACCEPT messages without
// comparing ballots and values, which breaks consensus.
//
// A setting (P,A,L) instantiates P proposers (IDs 0..P-1), A acceptors
// (IDs P..P+A-1) and L learners (IDs P+A..P+A+L-1). Proposer i proposes
// value i+1 with ballot i+1 (+P per extra round when MaxBallots > 1), so
// ballots are globally unique.
//
// The Consensus invariant checked is the conjunction of
//
//	(1) at most one value is chosen — a value is chosen when a majority of
//	    acceptors have ever accepted it under one ballot (history
//	    variables record past acceptances);
//	(2) every decided learner value is a chosen value;
//	(3) no two learners decide differently.
package paxos
