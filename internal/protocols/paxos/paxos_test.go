package paxos

import (
	"strings"
	"testing"
	"time"

	"mpbasset/internal/core"
	"mpbasset/internal/explore"
	"mpbasset/internal/por"
)

func mustNew(t *testing.T, cfg Config) *core.Protocol {
	t.Helper()
	p, err := New(cfg)
	if err != nil {
		t.Fatal(err)
	}
	p.ValidateSends = true
	return p
}

func check(t *testing.T, p *core.Protocol) *explore.Result {
	t.Helper()
	exp, err := por.NewExpander(p)
	if err != nil {
		t.Fatal(err)
	}
	res, err := explore.DFS(p, explore.Options{Expander: exp, TrackTrace: true, MaxDuration: 2 * time.Minute})
	if err != nil {
		t.Fatal(err)
	}
	return res
}

func TestVerdicts(t *testing.T) {
	cases := []struct {
		cfg  Config
		want explore.Verdict
	}{
		{Config{Proposers: 2, Acceptors: 3, Learners: 1}, explore.VerdictVerified},
		{Config{Proposers: 2, Acceptors: 3, Learners: 1, Model: ModelSingle}, explore.VerdictVerified},
		{Config{Proposers: 2, Acceptors: 3, Learners: 1, Faulty: true}, explore.VerdictViolated},
		{Config{Proposers: 2, Acceptors: 3, Learners: 1, Faulty: true, Model: ModelSingle}, explore.VerdictViolated},
		{Config{Proposers: 1, Acceptors: 3, Learners: 1}, explore.VerdictVerified},
		{Config{Proposers: 1, Acceptors: 3, Learners: 1, Faulty: true}, explore.VerdictVerified}, // no contention: mixed quorums impossible
		{Config{Proposers: 2, Acceptors: 3, Learners: 2}, explore.VerdictVerified},
		{Config{Proposers: 2, Acceptors: 3, Learners: 0}, explore.VerdictVerified},
		{Config{Proposers: 1, Acceptors: 3, Learners: 1, MaxBallots: 2}, explore.VerdictVerified},
		{Config{Proposers: 1, Acceptors: 5, Learners: 1}, explore.VerdictVerified},
	}
	for _, tc := range cases {
		p := mustNew(t, tc.cfg)
		res := check(t, p)
		if res.Verdict != tc.want {
			t.Errorf("%s: verdict %s, want %s (%v)", p.Name, res.Verdict, tc.want, res.Violation)
		}
	}
}

func TestQuorumModelSmallerThanSingle(t *testing.T) {
	// The paper's §II-C claim: simulating quorum transitions with
	// counting single-message transitions inflates the state space.
	q, err := explore.DFS(mustNew(t, Config{Proposers: 2, Acceptors: 3, Learners: 1}), explore.Options{})
	if err != nil {
		t.Fatal(err)
	}
	s, err := explore.DFS(mustNew(t, Config{Proposers: 2, Acceptors: 3, Learners: 1, Model: ModelSingle}), explore.Options{})
	if err != nil {
		t.Fatal(err)
	}
	if q.Stats.States >= s.Stats.States {
		t.Errorf("quorum model (%d states) not smaller than single-message model (%d states)",
			q.Stats.States, s.Stats.States)
	}
	// And clearly so: the paper reports multiples, not percents.
	if 2*q.Stats.States > s.Stats.States {
		t.Errorf("inflation below 2x: %d vs %d", q.Stats.States, s.Stats.States)
	}
}

func TestFaultyCounterexampleReplays(t *testing.T) {
	p := mustNew(t, Config{Proposers: 2, Acceptors: 3, Learners: 1, Faulty: true})
	res := check(t, p)
	if res.Verdict != explore.VerdictViolated {
		t.Fatalf("verdict %s, want CE", res.Verdict)
	}
	if _, err := explore.ReplayViolation(p, res.Trace, nil); err != nil {
		t.Fatalf("counterexample does not replay to a consensus violation: %v", err)
	}
	if !strings.Contains(res.Violation.Error(), "consensus violated") {
		t.Fatalf("unexpected violation message: %v", res.Violation)
	}
}

// walkTerminals runs an unreduced BFS and calls f on every deadlock state.
func walkTerminals(t *testing.T, p *core.Protocol, f func(*core.State)) {
	t.Helper()
	init, err := p.InitialState()
	if err != nil {
		t.Fatal(err)
	}
	seen := map[string]bool{init.Key(): true}
	queue := []*core.State{init}
	for len(queue) > 0 {
		s := queue[0]
		queue = queue[1:]
		events := p.Enabled(s)
		if len(events) == 0 {
			f(s)
			continue
		}
		for _, ev := range events {
			ns, err := p.Execute(s, ev)
			if err != nil {
				t.Fatal(err)
			}
			if !seen[ns.Key()] {
				seen[ns.Key()] = true
				queue = append(queue, ns)
			}
		}
	}
}

// decidedSets collects the set of learner-decision vectors reachable at
// termination.
func decidedSets(t *testing.T, p *core.Protocol, cfg Config) map[string]bool {
	t.Helper()
	out := make(map[string]bool)
	walkTerminals(t, p, func(s *core.State) {
		key := ""
		for i := 0; i < cfg.Learners; i++ {
			ls := s.Local(cfg.LearnerID(i)).(*learnerState)
			key += "," + itoa(ls.Decided)
		}
		out[key] = true
	})
	return out
}

func itoa(v int) string {
	if v == 0 {
		return "0"
	}
	digits := ""
	for v > 0 {
		digits = string(rune('0'+v%10)) + digits
		v /= 10
	}
	return digits
}

func TestQuorumAndSingleModelsReachSameOutcomes(t *testing.T) {
	// Protocol-level cross-validation: both modeling styles must allow
	// exactly the same sets of final learner decisions.
	cfg := Config{Proposers: 2, Acceptors: 3, Learners: 1}
	q := decidedSets(t, mustNew(t, cfg), cfg)
	cfgS := cfg
	cfgS.Model = ModelSingle
	s := decidedSets(t, mustNew(t, cfgS), cfgS)
	if len(q) == 0 || len(s) == 0 {
		t.Fatal("no terminal decision sets found")
	}
	for k := range q {
		if !s[k] {
			t.Errorf("outcome %q reachable in quorum model only", k)
		}
	}
	for k := range s {
		if !q[k] {
			t.Errorf("outcome %q reachable in single-message model only", k)
		}
	}
	// In (2,3,1) every terminal state is decided: the highest ballot
	// always completes (acceptors always answer it), so the learner
	// always ends with a matching quorum. Both proposers' values must be
	// decidable, though — contention resolves either way.
	if len(q) < 2 {
		t.Errorf("expected both proposers' values among outcomes, got %v", q)
	}
	if q[",0"] {
		t.Errorf("unexpected undecided terminal state (the highest ballot always completes)")
	}
}

func TestBallotsUnique(t *testing.T) {
	c := Config{Proposers: 3, MaxBallots: 3}
	seen := map[int]bool{}
	for i := 0; i < c.Proposers; i++ {
		for r := 1; r <= c.MaxBallots; r++ {
			b := ballotOf(c, i, r)
			if b <= 0 || seen[b] {
				t.Fatalf("ballot %d (proposer %d round %d) not unique and positive", b, i, r)
			}
			seen[b] = true
		}
	}
}

func TestConfigHelpers(t *testing.T) {
	c := Config{Proposers: 2, Acceptors: 3, Learners: 1}
	if c.Setting() != "(2,3,1)" {
		t.Errorf("Setting = %s", c.Setting())
	}
	if c.Majority() != 2 {
		t.Errorf("Majority = %d", c.Majority())
	}
	if c.AcceptorID(0) != 2 || c.LearnerID(0) != 5 {
		t.Error("process layout wrong")
	}
	if got := len(c.Roles()); got != 4 { // acceptors, learners, 2x proposer
		t.Errorf("roles = %d, want 4", got)
	}
}

func TestNewRejectsBadConfigs(t *testing.T) {
	if _, err := New(Config{Proposers: 0, Acceptors: 3}); err == nil {
		t.Error("zero proposers accepted")
	}
	if _, err := New(Config{Proposers: 1, Acceptors: 0}); err == nil {
		t.Error("zero acceptors accepted")
	}
	if _, err := New(Config{Proposers: 1, Acceptors: 3, MaxBallots: -1}); err == nil {
		t.Error("negative ballots accepted")
	}
}

func TestAcceptorIgnoresStaleBallots(t *testing.T) {
	// Drive by hand: acceptor promises ballot 2, then a stale READ with
	// ballot 1 must be consumed without a reply.
	cfg := Config{Proposers: 2, Acceptors: 1, Learners: 0}
	p := mustNew(t, cfg)
	s, err := p.InitialState()
	if err != nil {
		t.Fatal(err)
	}
	// Propose from both proposers (ballots 1 and 2).
	for _, idx := range []int{0, 1} {
		for _, ev := range p.Enabled(s) {
			if ev.T.Proc == cfg.ProposerID(idx) {
				if s, err = p.Execute(s, ev); err != nil {
					t.Fatal(err)
				}
				break
			}
		}
	}
	// Deliver proposer 1's READ (ballot 2) first.
	acc := cfg.AcceptorID(0)
	deliver := func(from core.ProcessID) {
		t.Helper()
		for _, ev := range p.Enabled(s) {
			if ev.T.Proc == acc && len(ev.Msgs) == 1 && ev.Msgs[0].From == from {
				if s, err = p.Execute(s, ev); err != nil {
					t.Fatal(err)
				}
				return
			}
		}
		t.Fatalf("no READ event from %d", from)
	}
	deliver(cfg.ProposerID(1))
	if got := s.Local(acc).(*acceptorState).Promised; got != 2 {
		t.Fatalf("promised = %d, want 2", got)
	}
	before := s.Msgs.Len()
	deliver(cfg.ProposerID(0))
	// The stale READ was consumed and nothing was sent.
	if s.Msgs.Len() != before-1 {
		t.Fatalf("stale READ should be dropped silently: bag %d -> %d", before, s.Msgs.Len())
	}
	if got := s.Local(acc).(*acceptorState).Promised; got != 2 {
		t.Fatalf("stale READ changed promise to %d", got)
	}
}

func TestAcceptorHistoryRecordsAcceptances(t *testing.T) {
	st := &acceptorState{}
	st.record(proposal{Ballot: 2, Val: 7})
	st.record(proposal{Ballot: 1, Val: 5})
	st.record(proposal{Ballot: 2, Val: 7}) // duplicate
	if len(st.History) != 2 {
		t.Fatalf("history = %v", st.History)
	}
	if st.History[0].Ballot != 1 || st.History[1].Ballot != 2 {
		t.Fatalf("history not sorted: %v", st.History)
	}
	// Clone isolation.
	c := st.Clone().(*acceptorState)
	c.record(proposal{Ballot: 3, Val: 9})
	if len(st.History) != 2 {
		t.Fatal("clone aliases history")
	}
}
