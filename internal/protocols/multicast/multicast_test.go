package multicast

import (
	"strings"
	"testing"
	"time"

	"mpbasset/internal/core"
	"mpbasset/internal/explore"
	"mpbasset/internal/por"
)

func mustNew(t *testing.T, cfg Config) *core.Protocol {
	t.Helper()
	p, err := New(cfg)
	if err != nil {
		t.Fatal(err)
	}
	p.ValidateSends = true
	return p
}

func check(t *testing.T, p *core.Protocol) *explore.Result {
	t.Helper()
	exp, err := por.NewExpander(p)
	if err != nil {
		t.Fatal(err)
	}
	res, err := explore.DFS(p, explore.Options{Expander: exp, TrackTrace: true, MaxDuration: 2 * time.Minute})
	if err != nil {
		t.Fatal(err)
	}
	return res
}

func TestVerdictsMatchPaperSettings(t *testing.T) {
	cases := []struct {
		cfg  Config
		want explore.Verdict
	}{
		// Table I / II settings.
		{Config{HonestReceivers: 3, HonestInitiators: 0, ByzantineReceivers: 1, ByzantineInitiators: 1}, explore.VerdictVerified},
		{Config{HonestReceivers: 2, HonestInitiators: 1, ByzantineReceivers: 0, ByzantineInitiators: 1}, explore.VerdictVerified},
		{Config{HonestReceivers: 2, HonestInitiators: 1, ByzantineReceivers: 2, ByzantineInitiators: 1}, explore.VerdictViolated},
		{Config{HonestReceivers: 3, HonestInitiators: 1, ByzantineReceivers: 1, ByzantineInitiators: 1}, explore.VerdictVerified},
		// Single-message variants.
		{Config{HonestReceivers: 3, HonestInitiators: 0, ByzantineReceivers: 1, ByzantineInitiators: 1, Model: ModelSingle}, explore.VerdictVerified},
		{Config{HonestReceivers: 2, HonestInitiators: 1, ByzantineReceivers: 2, ByzantineInitiators: 1, Model: ModelSingle}, explore.VerdictViolated},
		// Honest-only worlds are always safe.
		{Config{HonestReceivers: 3, HonestInitiators: 2}, explore.VerdictVerified},
	}
	for _, tc := range cases {
		p := mustNew(t, tc.cfg)
		res := check(t, p)
		if res.Verdict != tc.want {
			t.Errorf("%s: verdict %s, want %s (%v)", p.Name, res.Verdict, tc.want, res.Violation)
		}
	}
}

func TestThreshold(t *testing.T) {
	cases := []struct {
		cfg  Config
		want int
	}{
		{Config{HonestReceivers: 3, ByzantineReceivers: 1, Tolerance: 1}, 3}, // ceil((4+1+1)/2)
		{Config{HonestReceivers: 2, Tolerance: 1}, 2},                        // ceil((2+1+1)/2)
		{Config{HonestReceivers: 4, ByzantineReceivers: 2, Tolerance: 2}, 5}, // ceil((6+2+1)/2)
	}
	for _, tc := range cases {
		if got := tc.cfg.Threshold(); got != tc.want {
			t.Errorf("%s tolerance %d: threshold %d, want %d", tc.cfg.Setting(), tc.cfg.Tolerance, got, tc.want)
		}
	}
}

func TestQuorumIntersectionGuaranteesAgreement(t *testing.T) {
	// With at most Tolerance Byzantine receivers, two certificates of
	// threshold size must share an honest receiver — agreement holds for
	// every attack in the model. Checked for a spread of safe settings.
	for _, cfg := range []Config{
		{HonestReceivers: 3, ByzantineReceivers: 1, ByzantineInitiators: 1},
		{HonestReceivers: 4, ByzantineReceivers: 1, ByzantineInitiators: 1},
	} {
		res := check(t, mustNew(t, cfg))
		if res.Verdict != explore.VerdictVerified {
			t.Errorf("%s: %s (%v)", cfg.Setting(), res.Verdict, res.Violation)
		}
	}
}

func TestEquivocationCounterexampleReplays(t *testing.T) {
	cfg := Config{HonestReceivers: 2, HonestInitiators: 1, ByzantineReceivers: 2, ByzantineInitiators: 1}
	p := mustNew(t, cfg)
	res, err := explore.BFS(p, explore.Options{TrackTrace: true})
	if err != nil {
		t.Fatal(err)
	}
	if res.Verdict != explore.VerdictViolated {
		t.Fatalf("verdict %s, want CE", res.Verdict)
	}
	if _, err := explore.ReplayViolation(p, res.Trace, nil); err != nil {
		t.Fatalf("counterexample does not replay to an agreement violation: %v", err)
	}
	if !strings.Contains(res.Violation.Error(), "agreement violated") {
		t.Fatalf("violation message: %v", res.Violation)
	}
}

func TestHonestReceiverEchoesOnlyFirstValue(t *testing.T) {
	// Drive by hand: after echoing value A for an initiator, a second
	// INIT from the same initiator must not produce another signature.
	cfg := Config{HonestReceivers: 1, HonestInitiators: 1, ByzantineReceivers: 1}
	p := mustNew(t, cfg)
	s, err := p.InitialState()
	if err != nil {
		t.Fatal(err)
	}
	// MCAST, then the honest receiver echoes.
	for steps := 0; steps < 2; steps++ {
		evs := p.Enabled(s)
		if len(evs) == 0 {
			t.Fatal("protocol stalled")
		}
		if s, err = p.Execute(s, evs[0]); err != nil {
			t.Fatal(err)
		}
	}
	rs := s.Local(cfg.HonestReceiverID(0)).(*receiverState)
	if len(rs.Echoed) != 1 {
		t.Fatalf("echoed map = %v, want one entry", rs.Echoed)
	}
}

func TestProcessLayoutAndRoles(t *testing.T) {
	cfg := Config{HonestReceivers: 2, HonestInitiators: 1, ByzantineReceivers: 1, ByzantineInitiators: 1}
	if cfg.HonestReceiverID(1) != 1 || cfg.ByzantineReceiverID(0) != 2 ||
		cfg.HonestInitiatorID(0) != 3 || cfg.ByzantineInitiatorID(0) != 4 {
		t.Fatal("process layout wrong")
	}
	roles := cfg.Roles()
	// With a Byzantine initiator present the honest receivers split into
	// the two equivocation groups: groupA, groupB, byz receivers, and two
	// singleton initiators.
	if len(roles) != 5 {
		t.Fatalf("roles = %d, want 5", len(roles))
	}
	if cfg.Setting() != "(2,1,1,1)" {
		t.Fatalf("Setting = %s", cfg.Setting())
	}
}

func TestNewRejectsBadConfigs(t *testing.T) {
	if _, err := New(Config{}); err == nil {
		t.Error("empty config accepted")
	}
	// Threshold exceeding the receiver count is unsatisfiable.
	if _, err := New(Config{HonestReceivers: 1, HonestInitiators: 1, Tolerance: 3}); err == nil {
		t.Error("unsatisfiable threshold accepted")
	}
}

func TestCertificatesAreUnforgeable(t *testing.T) {
	// Every COMMIT in any reachable state must carry a certificate of at
	// least threshold size whose signers are receivers — commits are
	// constructed only by collect transitions from real echo quorums.
	cfg := Config{HonestReceivers: 3, HonestInitiators: 0, ByzantineReceivers: 1, ByzantineInitiators: 1}
	p := mustNew(t, cfg)
	thr := cfg.Threshold()
	init, err := p.InitialState()
	if err != nil {
		t.Fatal(err)
	}
	seen := map[string]bool{init.Key(): true}
	queue := []*core.State{init}
	for len(queue) > 0 {
		s := queue[0]
		queue = queue[1:]
		s.Msgs.Each(func(m core.Message, _ int) {
			if m.Type != MsgCommit {
				return
			}
			pl := m.Payload.(commitPayload)
			if len(pl.Cert) < thr {
				t.Fatalf("forged commit with %d signers: %s", len(pl.Cert), m)
			}
			for _, q := range pl.Cert {
				if int(q) >= cfg.Receivers() {
					t.Fatalf("commit signed by non-receiver %d", q)
				}
			}
		})
		for _, ev := range p.Enabled(s) {
			ns, err := p.Execute(s, ev)
			if err != nil {
				t.Fatal(err)
			}
			if !seen[ns.Key()] {
				seen[ns.Key()] = true
				queue = append(queue, ns)
			}
		}
	}
}

func TestNegativeToleranceRejected(t *testing.T) {
	if _, err := New(Config{HonestReceivers: 3, HonestInitiators: 1, Tolerance: -1}); err == nil {
		t.Fatal("negative tolerance accepted")
	}
}
