package multicast

import (
	"sort"

	"mpbasset/internal/core"
)

// honestReceivers returns the IDs of all honest receivers (commit
// recipients). Byzantine receivers' reaction to commits cannot influence
// any honest process — their message-generating behaviour is fully captured
// by the attack-strategy transitions — so commits are delivered to honest
// receivers only (modeling economy; the paper likewise models Byzantine
// processes by hand-crafted attack strategies).
func honestReceivers(c Config) []core.ProcessID {
	ids := make([]core.ProcessID, c.HonestReceivers)
	for i := range ids {
		ids[i] = c.HonestReceiverID(i)
	}
	return ids
}

// byzGroups splits the honest receivers into the two target groups of a
// Byzantine initiator's equivocation (first half gets value A, second half
// value B); Byzantine receivers cooperate and receive both values.
func byzGroups(c Config) (groupA, groupB []core.ProcessID) {
	hr := honestReceivers(c)
	half := (len(hr) + 1) / 2
	return hr[:half], hr[half:]
}

func isHonestInitiator(c Config, p core.ProcessID) bool {
	for i := 0; i < c.HonestInitiators; i++ {
		if c.HonestInitiatorID(i) == p {
			return true
		}
	}
	return false
}

// honestEchoSends enumerates the echo types an honest receiver can emit:
// one per value any initiator may legitimately show it.
func honestEchoSends(c Config) []core.SendSpec {
	var specs []core.SendSpec
	for i := 0; i < c.HonestInitiators; i++ {
		specs = append(specs, core.SendSpec{Type: EchoType(honestValue(i)), ToSenders: true})
	}
	for i := 0; i < c.ByzantineInitiators; i++ {
		specs = append(specs,
			core.SendSpec{Type: EchoType(byzValueA(i)), ToSenders: true},
			core.SendSpec{Type: EchoType(byzValueB(i)), ToSenders: true})
	}
	return specs
}

// byzEchoSends enumerates the echo types of the Byzantine receiver
// strategy: invalid confirmations toward honest initiators, genuine
// signatures on both values toward Byzantine initiators.
func byzEchoSends(c Config) []core.SendSpec {
	var specs []core.SendSpec
	for i := 0; i < c.HonestInitiators; i++ {
		specs = append(specs, core.SendSpec{Type: EchoType(invalidEcho(honestValue(i))), ToSenders: true})
	}
	for i := 0; i < c.ByzantineInitiators; i++ {
		specs = append(specs,
			core.SendSpec{Type: EchoType(byzValueA(i)), ToSenders: true},
			core.SendSpec{Type: EchoType(byzValueB(i)), ToSenders: true})
	}
	return specs
}

func honestReceiverTransitions(c Config, i int) []*core.Transition {
	self := c.HonestReceiverID(i)
	initiators := c.InitiatorIDs()
	thr := c.Threshold()
	echo := &core.Transition{
		Name:     "ECHO_" + MsgInit,
		Proc:     self,
		MsgType:  MsgInit,
		Quorum:   1,
		Peers:    initiators,
		Priority: 2,
		IsReply:  true,
		// Every initiator sends an honest receiver at most one INIT (a
		// Byzantine initiator puts each honest receiver in exactly one
		// target group).
		UniquePerSender: true,
		Sends:           honestEchoSends(c),
		Apply: func(ctx *core.Ctx) {
			s := ctx.Local.(*receiverState)
			m := ctx.Msgs[0]
			v := m.Payload.(initPayload).Val
			if _, ok := s.Echoed[m.From]; ok {
				return // echo only the first message per initiator
			}
			s.Echoed[m.From] = v
			ctx.Send(m.From, EchoType(v), echoPayload{Val: v})
		},
	}
	deliver := &core.Transition{
		Name:     "DELIVER_" + MsgCommit,
		Proc:     self,
		MsgType:  MsgCommit,
		Quorum:   1,
		Peers:    initiators,
		Priority: 0, // terminates an instance
		Visible:  true,
		// A Byzantine initiator may commit both of its values to the same
		// receiver.
		UniquePerSender: c.ByzantineInitiators == 0,
		Apply: func(ctx *core.Ctx) {
			s := ctx.Local.(*receiverState)
			m := ctx.Msgs[0]
			pl := m.Payload.(commitPayload)
			if len(pl.Cert) < thr {
				return // invalid certificate
			}
			if _, ok := s.Delivered[m.From]; ok {
				return // deliver at most once per initiator
			}
			s.Delivered[m.From] = pl.Val
		},
	}
	return []*core.Transition{echo, deliver}
}

func byzantineReceiverTransitions(c Config, i int) []*core.Transition {
	self := c.ByzantineReceiverID(i)
	initiators := c.InitiatorIDs()
	echo := &core.Transition{
		Name:     "BYZ_ECHO_" + MsgInit,
		Proc:     self,
		MsgType:  MsgInit,
		Quorum:   1,
		Peers:    initiators,
		Priority: 2,
		IsReply:  true,
		// Confirming costs the attacker nothing and changes no local
		// state (it signs anything it is shown).
		ReadOnly: true,
		// A Byzantine initiator sends this accomplice both of its values.
		UniquePerSender: c.ByzantineInitiators == 0,
		Sends:           byzEchoSends(c),
		Apply: func(ctx *core.Ctx) {
			m := ctx.Msgs[0]
			v := m.Payload.(initPayload).Val
			if isHonestInitiator(c, m.From) {
				// Attack strategy: invalid confirmation to honest
				// initiators.
				ctx.Send(m.From, EchoType(invalidEcho(v)), echoPayload{Val: invalidEcho(v)})
				return
			}
			// Cooperate with the Byzantine initiator: confirm both of its
			// messages.
			ctx.Send(m.From, EchoType(v), echoPayload{Val: v})
		},
	}
	return []*core.Transition{echo}
}

func honestInitiatorTransitions(c Config, i int) []*core.Transition {
	self := c.HonestInitiatorID(i)
	receivers := c.ReceiverIDs()
	commitTo := honestReceivers(c)
	thr := c.Threshold()
	v := honestValue(i)
	start := &core.Transition{
		Name:     "MCAST",
		Proc:     self,
		Priority: 3, // starts a new instance
		Sends:    []core.SendSpec{{Type: MsgInit, To: receivers}},
		LocalGuard: func(ls core.LocalState) bool {
			return !ls.(*initiatorState).Sent
		},
		Apply: func(ctx *core.Ctx) {
			s := ctx.Local.(*initiatorState)
			s.Sent = true
			for _, r := range receivers {
				ctx.Send(r, MsgInit, initPayload{Val: v})
			}
		},
	}
	collect := collectTransition(c, self, MsgEcho+"_COLLECT", v, receivers, commitTo, thr, false)
	return []*core.Transition{start, collect}
}

func byzantineInitiatorTransitions(c Config, i int) []*core.Transition {
	self := c.ByzantineInitiatorID(i)
	receivers := c.ReceiverIDs()
	commitTo := honestReceivers(c)
	thr := c.Threshold()
	vA, vB := byzValueA(i), byzValueB(i)
	groupA, groupB := byzGroups(c)
	start := &core.Transition{
		Name:     "BYZ_MCAST",
		Proc:     self,
		Priority: 3,
		Sends:    []core.SendSpec{{Type: MsgInit, To: receivers}},
		LocalGuard: func(ls core.LocalState) bool {
			return !ls.(*initiatorState).Sent
		},
		Apply: func(ctx *core.Ctx) {
			s := ctx.Local.(*initiatorState)
			s.Sent = true
			// Equivocate: value A to one group, value B to the other,
			// both to the cooperating Byzantine receivers.
			for _, r := range groupA {
				ctx.Send(r, MsgInit, initPayload{Val: vA})
			}
			for _, r := range groupB {
				ctx.Send(r, MsgInit, initPayload{Val: vB})
			}
			for j := 0; j < c.ByzantineReceivers; j++ {
				br := c.ByzantineReceiverID(j)
				ctx.Send(br, MsgInit, initPayload{Val: vA})
				ctx.Send(br, MsgInit, initPayload{Val: vB})
			}
		},
	}
	collectA := collectTransition(c, self, MsgEcho+"_COLLECT_A", vA, receivers, commitTo, thr, false)
	collectB := collectTransition(c, self, MsgEcho+"_COLLECT_B", vB, receivers, commitTo, thr, true)
	return []*core.Transition{start, collectA, collectB}
}

// collectTransition builds the echo-collection transition for value v at
// initiator self: the quorum version consumes thr echoes at once, the
// single-message version counts them and accumulates the certificate (the
// paper's Figure 3 style). slotB selects the second collection slot of a
// Byzantine initiator's local state.
func collectTransition(c Config, self core.ProcessID, name string, v int, receivers, commitTo []core.ProcessID, thr int, slotB bool) *core.Transition {
	t := &core.Transition{
		Name:     name,
		Proc:     self,
		MsgType:  EchoType(v),
		Peers:    receivers,
		Priority: 1,
		// A receiver signs a given value at most once, honest or not.
		UniquePerSender: true,
		Sends:           []core.SendSpec{{Type: MsgCommit, To: commitTo}},
		LocalGuard: func(ls core.LocalState) bool {
			s := ls.(*initiatorState)
			return s.Sent && !committed(s, slotB)
		},
	}
	switch c.Model {
	case ModelQuorum:
		t.Quorum = thr
		t.Guard = func(_ core.LocalState, msgs []core.Message) bool {
			for _, m := range msgs {
				if m.Payload.(echoPayload).Val != v {
					return false
				}
			}
			return true
		}
		t.Apply = func(ctx *core.Ctx) {
			s := ctx.Local.(*initiatorState)
			setCommitted(s, slotB)
			cert := newCert(core.Senders(ctx.Msgs))
			for _, r := range commitTo {
				ctx.Send(r, MsgCommit, commitPayload{Val: v, Cert: cert})
			}
		}
	case ModelSingle:
		t.Quorum = 1
		t.Guard = func(_ core.LocalState, msgs []core.Message) bool {
			return msgs[0].Payload.(echoPayload).Val == v
		}
		t.Apply = func(ctx *core.Ctx) {
			s := ctx.Local.(*initiatorState)
			from := ctx.Msgs[0].From
			cert := certSlot(s, slotB)
			for _, q := range *cert {
				if q == from {
					return // defensive: ignore duplicate signers
				}
			}
			*cert = append(*cert, from)
			sort.Slice(*cert, func(x, y int) bool { return (*cert)[x] < (*cert)[y] })
			if count(s, slotB) >= thr {
				setCommitted(s, slotB)
				sent := newCert(*cert)
				*cert = nil
				for _, r := range commitTo {
					ctx.Send(r, MsgCommit, commitPayload{Val: v, Cert: sent})
				}
			}
		}
	}
	return t
}

func committed(s *initiatorState, slotB bool) bool {
	if slotB {
		return s.CommittedB
	}
	return s.CommittedA
}

func setCommitted(s *initiatorState, slotB bool) {
	if slotB {
		s.CommittedB = true
	} else {
		s.CommittedA = true
	}
}

func certSlot(s *initiatorState, slotB bool) *[]core.ProcessID {
	if slotB {
		return &s.CertB
	}
	return &s.CertA
}

func count(s *initiatorState, slotB bool) int {
	return len(*certSlot(s, slotB))
}
