package multicast

import (
	"mpbasset/internal/core"
	"mpbasset/internal/liveness"
)

// Delivers returns the echo-multicast liveness property "every honest
// initiator's value is eventually delivered by every honest receiver": a
// counterexample is an execution on which some honest receiver never
// delivers some honest initiator's multicast (Byzantine initiators are
// exempt — they may never initiate at all). A run that halts short of full
// delivery is reported as a stutter lasso. The Config must be the one the
// checked protocol was built from.
func Delivers(c Config) *liveness.Property {
	cc := c.withDefaults()
	receivers := make([]core.ProcessID, cc.HonestReceivers)
	for i := range receivers {
		receivers[i] = cc.HonestReceiverID(i)
	}
	initiators := make([]core.ProcessID, cc.HonestInitiators)
	for i := range initiators {
		initiators[i] = cc.HonestInitiatorID(i)
	}
	return liveness.Eventually("honest receivers deliver", receivers, func(s *core.State) bool {
		for _, r := range receivers {
			rs := s.Local(r).(*receiverState)
			for _, ini := range initiators {
				if _, ok := rs.Delivered[ini]; !ok {
					return false
				}
			}
		}
		return true
	})
}
