// Package multicast models Reiter's Echo Multicast (the consistent
// multicast of Rampart, "Secure Agreement Protocols"), the paper's
// Byzantine evaluation target.
//
// An initiator sends its message to all receivers; each honest receiver
// echoes (signs) the first message it sees from that initiator; once the
// initiator collects echoes from ⌈(n+f+1)/2⌉ distinct receivers it sends a
// commit carrying the echo certificate, and receivers deliver a commit
// with a valid certificate. Agreement — no two honest receivers deliver
// different messages from one initiator — follows from quorum
// intersection: two certificates of that size share at least f+1
// receivers, hence at least one honest receiver, and an honest receiver
// echoes only one message per initiator.
//
// Byzantine behaviour follows the paper's attack strategies (§V-A):
//
//   - a Byzantine initiator "attempts to violate the agreement property by
//     sending different messages to each of two groups of honest
//     receivers" and collects echo quorums for both;
//   - a Byzantine receiver "sends invalid confirmations to an honest
//     initiator and cooperates with a Byzantine initiator by confirming
//     (signing) both of its messages".
//
// Signatures are abstracted into unforgeable certificates: commit messages
// can only be constructed by collect transitions from genuinely received
// echoes, and certificates list the distinct echoing receivers.
//
// The "wrong agreement" settings exceed the threshold assumption (more
// Byzantine receivers than the protocol tolerates), and the model checker
// finds the agreement counterexample.
//
// In the engine/store matrix, the package is pure workload: it builds
// core.Protocol values and never touches engines or stores, so every
// engine, reduction and store tier runs it unchanged. Its transitions are
// deterministic functions of the state (the determinism contract's
// precondition), its quorum transitions exercise the paper's
// quorum-semantics comparison, and its Eventually-style delivery property
// is the bundled liveness workload for the NDFS engines.
package multicast
