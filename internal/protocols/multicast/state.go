package multicast

import (
	"sort"
	"strconv"
	"strings"

	"mpbasset/internal/core"
)

// initPayload is the content of an INIT message.
type initPayload struct {
	Val int
}

func (p initPayload) Key() string { return "v" + strconv.Itoa(p.Val) }

// echoPayload is the content of an ECHO message (an abstract signature on
// the value: the signer is the message's From field).
type echoPayload struct {
	Val int
}

func (p echoPayload) Key() string { return "v" + strconv.Itoa(p.Val) }

// commitPayload is the content of a COMMIT message: the value plus the
// echo certificate (the distinct receivers whose echoes back it).
type commitPayload struct {
	Val  int
	Cert []core.ProcessID // sorted, distinct
}

func (p commitPayload) Key() string {
	var sb strings.Builder
	sb.WriteByte('v')
	sb.WriteString(strconv.Itoa(p.Val))
	sb.WriteByte('c')
	for i, q := range p.Cert {
		if i > 0 {
			sb.WriteByte('.')
		}
		sb.WriteString(strconv.Itoa(int(q)))
	}
	return sb.String()
}

// Remap implements the symmetry package's Remapper: certificates embed
// receiver IDs, which must follow role permutations for canonicalization
// to be sound.
func (p commitPayload) Remap(f func(core.ProcessID) core.ProcessID) any {
	cert := make([]core.ProcessID, len(p.Cert))
	for i, q := range p.Cert {
		cert[i] = f(q)
	}
	return commitPayload{Val: p.Val, Cert: newCert(cert)}
}

// newCert builds a sorted certificate from the senders of an echo quorum.
func newCert(senders []core.ProcessID) []core.ProcessID {
	cert := append([]core.ProcessID(nil), senders...)
	sort.Slice(cert, func(i, j int) bool { return cert[i] < cert[j] })
	return cert
}

// receiverState is the local state of a receiver (honest or Byzantine):
// which initiators it echoed for and what it delivered per initiator.
type receiverState struct {
	Echoed    map[core.ProcessID]int // initiator -> echoed value
	Delivered map[core.ProcessID]int // initiator -> delivered value
}

func newReceiverState() *receiverState {
	return &receiverState{
		Echoed:    make(map[core.ProcessID]int),
		Delivered: make(map[core.ProcessID]int),
	}
}

func (s *receiverState) Key() string {
	var sb strings.Builder
	sb.WriteByte('R')
	appendPidMap(&sb, s.Echoed)
	sb.WriteByte('/')
	appendPidMap(&sb, s.Delivered)
	return sb.String()
}

func appendPidMap(sb *strings.Builder, m map[core.ProcessID]int) {
	keys := make([]int, 0, len(m))
	for k := range m {
		keys = append(keys, int(k))
	}
	sort.Ints(keys)
	sb.WriteByte('[')
	for i, k := range keys {
		if i > 0 {
			sb.WriteByte(' ')
		}
		sb.WriteString(strconv.Itoa(k))
		sb.WriteByte(':')
		sb.WriteString(strconv.Itoa(m[core.ProcessID(k)]))
	}
	sb.WriteByte(']')
}

func (s *receiverState) Clone() core.LocalState {
	c := newReceiverState()
	//lint:nondet-ok map-to-map copy: insertion order of the clone is unobservable
	for k, v := range s.Echoed {
		c.Echoed[k] = v
	}
	//lint:nondet-ok map-to-map copy: insertion order of the clone is unobservable
	for k, v := range s.Delivered {
		c.Delivered[k] = v
	}
	return c
}

// initiatorState is the local state of an initiator. A Byzantine initiator
// runs two collections, one per attack value; an honest one uses only the
// first slot. CertA/CertB accumulate signers in the single-message
// (counting) model and stay empty in the quorum model.
type initiatorState struct {
	Sent       bool
	CommittedA bool
	CommittedB bool
	CertA      []core.ProcessID // sorted, distinct
	CertB      []core.ProcessID // sorted, distinct
}

func newInitiatorState() *initiatorState { return &initiatorState{} }

func (s *initiatorState) Key() string {
	var sb strings.Builder
	sb.WriteByte('I')
	if s.Sent {
		sb.WriteByte('s')
	}
	if s.CommittedA {
		sb.WriteByte('a')
	}
	if s.CommittedB {
		sb.WriteByte('b')
	}
	appendPids(&sb, s.CertA)
	appendPids(&sb, s.CertB)
	return sb.String()
}

func appendPids(sb *strings.Builder, ids []core.ProcessID) {
	sb.WriteByte('[')
	for i, q := range ids {
		if i > 0 {
			sb.WriteByte(' ')
		}
		sb.WriteString(strconv.Itoa(int(q)))
	}
	sb.WriteByte(']')
}

func (s *initiatorState) Clone() core.LocalState {
	c := *s
	c.CertA = append([]core.ProcessID(nil), s.CertA...)
	c.CertB = append([]core.ProcessID(nil), s.CertB...)
	return &c
}

var (
	_ core.LocalState = (*receiverState)(nil)
	_ core.LocalState = (*initiatorState)(nil)
	_ core.Payload    = initPayload{}
	_ core.Payload    = echoPayload{}
	_ core.Payload    = commitPayload{}
)
