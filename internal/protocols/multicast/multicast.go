package multicast

import (
	"fmt"
	"strconv"

	"mpbasset/internal/core"
)

// Model selects quorum vs single-message (counting) modeling of the echo
// collection.
type Model int

const (
	// ModelQuorum collects an echo quorum in one transition.
	ModelQuorum Model = iota + 1
	// ModelSingle counts echoes one message at a time.
	ModelSingle
)

// String names the model.
func (m Model) String() string {
	if m == ModelSingle {
		return "single"
	}
	return "quorum"
}

// Config is an Echo Multicast setting, the paper's (HR,HI,BR,BI) tuple.
type Config struct {
	HonestReceivers     int
	HonestInitiators    int
	ByzantineReceivers  int
	ByzantineInitiators int
	// Tolerance is the number of Byzantine receivers the protocol is
	// configured to tolerate (f); default 1. A setting with
	// ByzantineReceivers > Tolerance exceeds the threshold assumption —
	// the paper's "wrong agreement" experiments.
	Tolerance int
	// Model selects quorum vs single-message modeling; default quorum.
	Model Model
}

func (c *Config) withDefaults() Config {
	cc := *c
	if cc.Model == 0 {
		cc.Model = ModelQuorum
	}
	if cc.Tolerance == 0 {
		cc.Tolerance = 1
	}
	return cc
}

// Setting renders the configuration as the paper writes it, e.g.
// "(3,0,1,1)".
func (c Config) Setting() string {
	return fmt.Sprintf("(%d,%d,%d,%d)", c.HonestReceivers, c.HonestInitiators, c.ByzantineReceivers, c.ByzantineInitiators)
}

// Receivers returns the total number of receivers (n).
func (c Config) Receivers() int { return c.HonestReceivers + c.ByzantineReceivers }

// Threshold returns the echo-quorum size ⌈(n+f+1)/2⌉.
func (c Config) Threshold() int { return (c.Receivers() + c.Tolerance + 2) / 2 }

// Process layout: honest receivers, Byzantine receivers, honest initiators,
// Byzantine initiators.

// HonestReceiverID returns the process ID of the i-th honest receiver.
func (c Config) HonestReceiverID(i int) core.ProcessID { return core.ProcessID(i) }

// ByzantineReceiverID returns the process ID of the i-th Byzantine receiver.
func (c Config) ByzantineReceiverID(i int) core.ProcessID {
	return core.ProcessID(c.HonestReceivers + i)
}

// HonestInitiatorID returns the process ID of the i-th honest initiator.
func (c Config) HonestInitiatorID(i int) core.ProcessID {
	return core.ProcessID(c.Receivers() + i)
}

// ByzantineInitiatorID returns the process ID of the i-th Byzantine
// initiator.
func (c Config) ByzantineInitiatorID(i int) core.ProcessID {
	return core.ProcessID(c.Receivers() + c.HonestInitiators + i)
}

// ReceiverIDs returns all receiver process IDs (honest then Byzantine).
func (c Config) ReceiverIDs() []core.ProcessID {
	ids := make([]core.ProcessID, 0, c.Receivers())
	for i := 0; i < c.HonestReceivers; i++ {
		ids = append(ids, c.HonestReceiverID(i))
	}
	for i := 0; i < c.ByzantineReceivers; i++ {
		ids = append(ids, c.ByzantineReceiverID(i))
	}
	return ids
}

// InitiatorIDs returns all initiator process IDs (honest then Byzantine).
func (c Config) InitiatorIDs() []core.ProcessID {
	ids := make([]core.ProcessID, 0, c.HonestInitiators+c.ByzantineInitiators)
	for i := 0; i < c.HonestInitiators; i++ {
		ids = append(ids, c.HonestInitiatorID(i))
	}
	for i := 0; i < c.ByzantineInitiators; i++ {
		ids = append(ids, c.ByzantineInitiatorID(i))
	}
	return ids
}

// Roles groups symmetric processes for package symmetry. Byzantine
// receivers are interchangeable (they all cooperate identically), and so
// are honest receivers — except that a Byzantine initiator's equivocation
// splits the honest receivers into two target groups, which breaks the
// symmetry between groups: with Byzantine initiators present, each
// equivocation group is its own role. Initiators propose distinct values
// and always stand alone.
func (c Config) Roles() [][]core.ProcessID {
	var hrRoles [][]core.ProcessID
	if c.ByzantineInitiators > 0 {
		groupA, groupB := byzGroups(c)
		hrRoles = append(hrRoles, groupA, groupB)
	} else {
		hrRoles = append(hrRoles, honestReceivers(c))
	}
	var br []core.ProcessID
	for i := 0; i < c.ByzantineReceivers; i++ {
		br = append(br, c.ByzantineReceiverID(i))
	}
	roles := [][]core.ProcessID{}
	for _, r := range hrRoles {
		if len(r) > 0 {
			roles = append(roles, r)
		}
	}
	if len(br) > 0 {
		roles = append(roles, br)
	}
	for _, id := range c.InitiatorIDs() {
		roles = append(roles, []core.ProcessID{id})
	}
	return roles
}

// Message types. Echo messages are typed per value: an echo is an
// abstract signature over one specific value (in Rampart the echo covers
// the message digest), so a signature for value v is a different kind of
// message than one for value w — and each receiver signs a given value at
// most once, the per-sender uniqueness the static POR exploits.
const (
	MsgInit   = "INIT"   // initiator -> receivers: {Val}
	MsgEcho   = "ECHO"   // receiver  -> initiator: typed EchoType(v)
	MsgCommit = "COMMIT" // initiator -> receivers: {Val, Cert}
)

// EchoType returns the message type of an echo (signature) for value v.
func EchoType(v int) string { return MsgEcho + "#" + strconv.Itoa(v) }

// Values: honest initiator i multicasts 100+i; Byzantine initiator i uses
// the pair (200+2i, 201+2i); a Byzantine receiver's invalid confirmation to
// an honest initiator is the initiator's value plus 1000.
func honestValue(i int) int { return 100 + i }
func byzValueA(i int) int   { return 200 + 2*i }
func byzValueB(i int) int   { return 201 + 2*i }
func invalidEcho(v int) int { return v + 1000 }

// New builds the Echo Multicast model for the given setting.
func New(cfg Config) (*core.Protocol, error) {
	c := cfg.withDefaults()
	if cfg.Tolerance < 0 || c.HonestReceivers < 0 || c.ByzantineReceivers < 0 ||
		c.HonestInitiators < 0 || c.ByzantineInitiators < 0 {
		return nil, fmt.Errorf("multicast: negative counts in setting %s (tolerance %d)", c.Setting(), cfg.Tolerance)
	}
	if c.Receivers() < 1 || c.HonestInitiators+c.ByzantineInitiators < 1 {
		return nil, fmt.Errorf("multicast: invalid setting %s", c.Setting())
	}
	if c.Threshold() > c.Receivers() {
		return nil, fmt.Errorf("multicast: threshold %d exceeds %d receivers in setting %s", c.Threshold(), c.Receivers(), c.Setting())
	}
	n := c.Receivers() + c.HonestInitiators + c.ByzantineInitiators

	var ts []*core.Transition
	for i := 0; i < c.HonestReceivers; i++ {
		ts = append(ts, honestReceiverTransitions(c, i)...)
	}
	for i := 0; i < c.ByzantineReceivers; i++ {
		ts = append(ts, byzantineReceiverTransitions(c, i)...)
	}
	for i := 0; i < c.HonestInitiators; i++ {
		ts = append(ts, honestInitiatorTransitions(c, i)...)
	}
	for i := 0; i < c.ByzantineInitiators; i++ {
		ts = append(ts, byzantineInitiatorTransitions(c, i)...)
	}

	p := &core.Protocol{
		Name: fmt.Sprintf("EchoMulticast%s/%s", c.Setting(), c.Model),
		N:    n,
		Init: func() []core.LocalState {
			locals := make([]core.LocalState, n)
			for i := 0; i < c.HonestReceivers; i++ {
				locals[c.HonestReceiverID(i)] = newReceiverState()
			}
			for i := 0; i < c.ByzantineReceivers; i++ {
				locals[c.ByzantineReceiverID(i)] = newReceiverState()
			}
			for i := 0; i < c.HonestInitiators; i++ {
				locals[c.HonestInitiatorID(i)] = newInitiatorState()
			}
			for i := 0; i < c.ByzantineInitiators; i++ {
				locals[c.ByzantineInitiatorID(i)] = newInitiatorState()
			}
			return locals
		},
		Transitions: ts,
		Invariant:   agreementInvariant(c),
	}
	if err := p.Finalize(); err != nil {
		return nil, err
	}
	return p, nil
}

// agreementInvariant: no two honest receivers deliver different values for
// the same initiator.
func agreementInvariant(c Config) core.Invariant {
	return func(s *core.State) error {
		for _, init := range c.InitiatorIDs() {
			prev := 0
			prevAt := -1
			for i := 0; i < c.HonestReceivers; i++ {
				rs := s.Local(c.HonestReceiverID(i)).(*receiverState)
				v, ok := rs.Delivered[init]
				if !ok {
					continue
				}
				if prev != 0 && v != prev {
					return fmt.Errorf("agreement violated: honest receivers %d and %d delivered %d and %d from initiator %d", prevAt, i, prev, v, init)
				}
				prev = v
				prevAt = i
			}
		}
		return nil
	}
}
