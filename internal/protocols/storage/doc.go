// Package storage models a message-based regular storage protocol in the
// style of Attiya, Bar-Noy and Dolev ("Sharing Memory Robustly in
// Message-Passing Systems"), the paper's third evaluation target: a single
// writer and R readers accessing B crash-prone base objects, with majority
// quorums for both writes and reads.
//
// A write sends timestamped values to every base object and completes on a
// majority of acknowledgements; a read probes every object and returns the
// highest-timestamped value from a majority of replies.
//
// Regularity is specified with observer snapshots (GlobalReads, the
// mechanism the paper's appendix footnote 7 allows for specifications):
// each read records the writer's last completed timestamp at its start
// (SnapStart) and at its completion (SnapEnd). The correct property demands
// result ≥ SnapStart — a read not preceded by a concurrent write returns at
// least the last completed value. The paper's deliberately "wrong
// regularity" variant demands result ≥ SnapEnd: a read completing after a
// write must return that write even if the two were concurrent, which a
// regular register does not guarantee — the model checker finds the
// counterexample.
//
// In the engine/store matrix, the package is pure workload, like its
// sibling multicast: deterministic core.Protocol values that every
// engine, reduction and store tier runs unchanged. Its larger settings
// are the repo's store-tier stress cases — the (3,1) regular-storage
// model is the worked example for spill, collapse-compressed and lossy
// bitstate runs in the README and the eval store-tier table.
package storage
