package storage

import (
	"mpbasset/internal/core"
	"mpbasset/internal/liveness"
)

// ReadsComplete returns the regular-storage liveness property "every read
// eventually completes": a counterexample is an execution on which some
// reader never finishes its ReadsPerReader reads — in the bounded model a
// run that halts with a read still outstanding, reported as a stutter
// lasso. The Config must be the one the checked protocol was built from.
func ReadsComplete(c Config) *liveness.Property {
	cc := c.withDefaults()
	readers := cc.ReaderIDs()
	return liveness.Eventually("every read completes", readers, func(s *core.State) bool {
		for _, id := range readers {
			if s.Local(id).(*readerState).Done < cc.ReadsPerReader {
				return false
			}
		}
		return true
	})
}
