package storage

import (
	"fmt"

	"mpbasset/internal/core"
)

// Model selects quorum vs single-message (counting) modeling.
type Model int

const (
	// ModelQuorum collects acknowledgements/replies in quorum transitions.
	ModelQuorum Model = iota + 1
	// ModelSingle counts them one message at a time.
	ModelSingle
)

// String names the model.
func (m Model) String() string {
	if m == ModelSingle {
		return "single"
	}
	return "quorum"
}

// Config is a storage setting: the paper's (B,R) pair plus workload and
// modeling knobs.
type Config struct {
	// Objects is the number of base objects (B).
	Objects int
	// Readers is the number of reader processes (R).
	Readers int
	// Writes is the number of sequential writes the writer performs
	// (default 2, so reads can be concurrent with an ongoing write while a
	// completed one exists).
	Writes int
	// ReadsPerReader is the number of sequential reads per reader
	// (default 1).
	ReadsPerReader int
	// Model selects quorum vs single-message modeling; default quorum.
	Model Model
	// WrongRegularity checks the paper's deliberately wrong specification
	// instead of regularity.
	WrongRegularity bool
}

func (c *Config) withDefaults() Config {
	cc := *c
	if cc.Model == 0 {
		cc.Model = ModelQuorum
	}
	if cc.Writes == 0 {
		cc.Writes = 2
	}
	if cc.ReadsPerReader == 0 {
		cc.ReadsPerReader = 1
	}
	return cc
}

// Setting renders the configuration as the paper writes it, e.g. "(3,1)".
func (c Config) Setting() string { return fmt.Sprintf("(%d,%d)", c.Objects, c.Readers) }

// WriterID returns the writer's process ID (the protocol is single-writer).
func (c Config) WriterID() core.ProcessID { return 0 }

// ObjectID returns the process ID of the i-th base object.
func (c Config) ObjectID(i int) core.ProcessID { return core.ProcessID(1 + i) }

// ReaderID returns the process ID of the i-th reader.
func (c Config) ReaderID(i int) core.ProcessID { return core.ProcessID(1 + c.Objects + i) }

// ObjectIDs returns all base-object process IDs.
func (c Config) ObjectIDs() []core.ProcessID {
	ids := make([]core.ProcessID, c.Objects)
	for i := range ids {
		ids[i] = c.ObjectID(i)
	}
	return ids
}

// ReaderIDs returns all reader process IDs.
func (c Config) ReaderIDs() []core.ProcessID {
	ids := make([]core.ProcessID, c.Readers)
	for i := range ids {
		ids[i] = c.ReaderID(i)
	}
	return ids
}

// Majority returns the quorum size over base objects.
func (c Config) Majority() int { return c.Objects/2 + 1 }

// Roles groups processes into symmetry roles: base objects are
// interchangeable, readers are interchangeable, the writer is alone.
func (c Config) Roles() [][]core.ProcessID {
	return [][]core.ProcessID{{c.WriterID()}, c.ObjectIDs(), c.ReaderIDs()}
}

// Message types.
const (
	MsgWrite = "WRITE" // writer  -> objects: {TS, Val}
	MsgAck   = "ACK"   // object  -> writer:  {TS}
	MsgRead  = "READ"  // reader  -> objects: {RID}
	MsgVal   = "VAL"   // object  -> reader:  {RID, TS, Val}
)

// New builds the regular-storage protocol model for the given setting.
func New(cfg Config) (*core.Protocol, error) {
	c := cfg.withDefaults()
	if c.Objects < 1 || c.Readers < 0 {
		return nil, fmt.Errorf("storage: invalid setting %s", c.Setting())
	}
	if c.Writes < 1 || c.ReadsPerReader < 1 {
		return nil, fmt.Errorf("storage: Writes and ReadsPerReader must be positive")
	}
	n := 1 + c.Objects + c.Readers
	objects := c.ObjectIDs()
	readers := c.ReaderIDs()
	writer := c.WriterID()

	ts := writerTransitions(c, objects)
	for i := 0; i < c.Objects; i++ {
		ts = append(ts, objectTransitions(c, i, writer, readers)...)
	}
	for i := 0; i < c.Readers; i++ {
		ts = append(ts, readerTransitions(c, i, objects)...)
	}

	name := "RegularStorage"
	if c.WrongRegularity {
		name = "WrongRegularityStorage"
	}
	p := &core.Protocol{
		Name: fmt.Sprintf("%s%s/%s", name, c.Setting(), c.Model),
		N:    n,
		Init: func() []core.LocalState {
			locals := make([]core.LocalState, n)
			locals[writer] = &writerState{}
			for i := 0; i < c.Objects; i++ {
				locals[c.ObjectID(i)] = &objectState{}
			}
			for i := 0; i < c.Readers; i++ {
				locals[c.ReaderID(i)] = &readerState{}
			}
			return locals
		},
		Transitions: ts,
		Invariant:   regularityInvariant(c),
	}
	if err := p.Finalize(); err != nil {
		return nil, err
	}
	return p, nil
}

// valueOf returns the value written with timestamp ts.
func valueOf(ts int) int { return 10 * ts }

func writerTransitions(c Config, objects []core.ProcessID) []*core.Transition {
	writer := c.WriterID()
	maj := c.Majority()
	start := &core.Transition{
		Name:     "W_START",
		Proc:     writer,
		Priority: 3, // starts a new write instance
		Sends:    []core.SendSpec{{Type: MsgWrite, To: objects}},
		LocalGuard: func(ls core.LocalState) bool {
			s := ls.(*writerState)
			return !s.Writing && s.Done < c.Writes
		},
		Apply: func(ctx *core.Ctx) {
			s := ctx.Local.(*writerState)
			s.TS++
			s.Writing = true
			for _, o := range objects {
				ctx.Send(o, MsgWrite, writePayload{TS: s.TS, Val: valueOf(s.TS)})
			}
		},
	}

	collect := &core.Transition{
		Name:     MsgAck,
		Proc:     writer,
		MsgType:  MsgAck,
		Peers:    objects,
		Priority: 1,
		// Each object acknowledges a timestamp once; with a single write
		// no two acknowledgements from one object can be pending together.
		UniquePerSender: c.Writes == 1,
		LocalGuard: func(ls core.LocalState) bool {
			return ls.(*writerState).Writing
		},
	}
	switch c.Model {
	case ModelQuorum:
		collect.Quorum = maj
		collect.Guard = func(ls core.LocalState, msgs []core.Message) bool {
			s := ls.(*writerState)
			for _, m := range msgs {
				if m.Payload.(ackPayload).TS != s.TS {
					return false
				}
			}
			return true
		}
		collect.Apply = func(ctx *core.Ctx) {
			s := ctx.Local.(*writerState)
			s.Writing = false
			s.Done++
			s.Completed = s.TS
		}
	case ModelSingle:
		collect.Quorum = 1
		collect.Guard = func(ls core.LocalState, msgs []core.Message) bool {
			return msgs[0].Payload.(ackPayload).TS == ls.(*writerState).TS
		}
		collect.Apply = func(ctx *core.Ctx) {
			s := ctx.Local.(*writerState)
			s.Cnt++
			if s.Cnt >= maj {
				s.Cnt = 0
				s.Writing = false
				s.Done++
				s.Completed = s.TS
			}
		}
	}
	return []*core.Transition{start, collect}
}

func objectTransitions(c Config, i int, writer core.ProcessID, readers []core.ProcessID) []*core.Transition {
	self := c.ObjectID(i)
	write := &core.Transition{
		Name:            MsgWrite,
		Proc:            self,
		MsgType:         MsgWrite,
		Quorum:          1,
		Peers:           []core.ProcessID{writer},
		Priority:        2,
		IsReply:         true,
		UniquePerSender: c.Writes == 1,
		Sends:           []core.SendSpec{{Type: MsgAck, ToSenders: true}},
		Apply: func(ctx *core.Ctx) {
			s := ctx.Local.(*objectState)
			pl := ctx.Msgs[0].Payload.(writePayload)
			if pl.TS > s.TS {
				s.TS = pl.TS
				s.Val = pl.Val
			}
			ctx.Send(ctx.Msgs[0].From, MsgAck, ackPayload{TS: pl.TS})
		},
	}
	var read *core.Transition
	if len(readers) > 0 {
		read = &core.Transition{
			Name:     MsgRead,
			Proc:     self,
			MsgType:  MsgRead,
			Quorum:   1,
			Peers:    readers,
			Priority: 2,
			IsReply:  true,
			// Answering a probe does not change the object: probes of
			// different readers commute (the paper's isWrite=false).
			ReadOnly:        true,
			UniquePerSender: c.ReadsPerReader == 1,
			Sends:           []core.SendSpec{{Type: MsgVal, ToSenders: true}},
			Apply: func(ctx *core.Ctx) {
				s := ctx.Local.(*objectState)
				pl := ctx.Msgs[0].Payload.(readPayload)
				ctx.Send(ctx.Msgs[0].From, MsgVal, valPayload{RID: pl.RID, TS: s.TS, Val: s.Val})
			},
		}
		return []*core.Transition{write, read}
	}
	return []*core.Transition{write}
}

func readerTransitions(c Config, i int, objects []core.ProcessID) []*core.Transition {
	self := c.ReaderID(i)
	writer := c.WriterID()
	maj := c.Majority()
	start := &core.Transition{
		Name:        "R_START",
		Proc:        self,
		Priority:    3, // starts a new read instance
		Sends:       []core.SendSpec{{Type: MsgRead, To: objects}},
		GlobalReads: []core.ProcessID{writer}, // observer snapshot (spec only)
		LocalGuard: func(ls core.LocalState) bool {
			s := ls.(*readerState)
			return !s.Reading && s.Done < c.ReadsPerReader
		},
		Apply: func(ctx *core.Ctx) {
			s := ctx.Local.(*readerState)
			s.Reading = true
			s.RID = 1000*(i+1) + s.Done + 1
			s.SnapStart = ctx.Global(writer).(*writerState).Completed
			for _, o := range objects {
				ctx.Send(o, MsgRead, readPayload{RID: s.RID})
			}
		},
	}

	collect := &core.Transition{
		Name:            MsgVal,
		Proc:            self,
		MsgType:         MsgVal,
		Peers:           objects,
		Priority:        0, // completes an instance
		Visible:         true,
		UniquePerSender: c.ReadsPerReader == 1,
		GlobalReads:     []core.ProcessID{writer}, // completion snapshot (spec only)
		LocalGuard: func(ls core.LocalState) bool {
			return ls.(*readerState).Reading
		},
	}
	switch c.Model {
	case ModelQuorum:
		collect.Quorum = maj
		collect.Guard = func(ls core.LocalState, msgs []core.Message) bool {
			s := ls.(*readerState)
			for _, m := range msgs {
				if m.Payload.(valPayload).RID != s.RID {
					return false
				}
			}
			return true
		}
		collect.Apply = func(ctx *core.Ctx) {
			s := ctx.Local.(*readerState)
			best := valPayload{}
			for _, m := range ctx.Msgs {
				pl := m.Payload.(valPayload)
				if pl.TS > best.TS {
					best = pl
				}
			}
			s.complete(best, ctx.Global(writer).(*writerState).Completed)
		}
	case ModelSingle:
		collect.Quorum = 1
		collect.Guard = func(ls core.LocalState, msgs []core.Message) bool {
			return msgs[0].Payload.(valPayload).RID == ls.(*readerState).RID
		}
		collect.Apply = func(ctx *core.Ctx) {
			s := ctx.Local.(*readerState)
			pl := ctx.Msgs[0].Payload.(valPayload)
			s.Cnt++
			if pl.TS > s.BestTS {
				s.BestTS = pl.TS
				s.BestVal = pl.Val
			}
			if s.Cnt >= maj {
				best := valPayload{TS: s.BestTS, Val: s.BestVal}
				s.Cnt = 0
				s.BestTS = 0
				s.BestVal = 0
				s.complete(best, ctx.Global(writer).(*writerState).Completed)
			}
		}
	}
	return []*core.Transition{start, collect}
}

// regularityInvariant checks every completed read against the selected
// specification.
func regularityInvariant(c Config) core.Invariant {
	return func(s *core.State) error {
		for i := 0; i < c.Readers; i++ {
			rs := s.Local(c.ReaderID(i)).(*readerState)
			for _, r := range rs.Results {
				if c.WrongRegularity {
					// The paper's wrong spec: a read completing after a
					// write completed must return it, even if concurrent.
					if r.TS < r.SnapEnd {
						return fmt.Errorf("wrong regularity violated: reader %d returned ts %d although write ts %d had completed before the read returned", i, r.TS, r.SnapEnd)
					}
					continue
				}
				if r.TS < r.SnapStart {
					return fmt.Errorf("regularity violated: reader %d returned ts %d older than last completed write ts %d at read start", i, r.TS, r.SnapStart)
				}
			}
		}
		return nil
	}
}
