package storage

import (
	"strconv"
	"strings"

	"mpbasset/internal/core"
)

// writePayload is the content of a WRITE message.
type writePayload struct {
	TS  int
	Val int
}

func (p writePayload) Key() string {
	return "t" + strconv.Itoa(p.TS) + "v" + strconv.Itoa(p.Val)
}

// ackPayload is the content of an ACK message.
type ackPayload struct {
	TS int
}

func (p ackPayload) Key() string { return "t" + strconv.Itoa(p.TS) }

// readPayload is the content of a READ probe.
type readPayload struct {
	RID int
}

func (p readPayload) Key() string { return "r" + strconv.Itoa(p.RID) }

// valPayload is the content of a VAL reply.
type valPayload struct {
	RID int
	TS  int
	Val int
}

func (p valPayload) Key() string {
	return "r" + strconv.Itoa(p.RID) + "t" + strconv.Itoa(p.TS) + "v" + strconv.Itoa(p.Val)
}

// writerState is the single writer's local state.
type writerState struct {
	Writing   bool
	TS        int // timestamp of the current/last write
	Done      int // completed writes
	Completed int // timestamp of the last completed write
	Cnt       int // single-message model: acknowledgements counted
}

func (s *writerState) Key() string {
	var sb strings.Builder
	sb.WriteByte('W')
	if s.Writing {
		sb.WriteByte('w')
	}
	sb.WriteString(strconv.Itoa(s.TS))
	sb.WriteByte(',')
	sb.WriteString(strconv.Itoa(s.Done))
	sb.WriteByte(',')
	sb.WriteString(strconv.Itoa(s.Completed))
	sb.WriteByte(',')
	sb.WriteString(strconv.Itoa(s.Cnt))
	return sb.String()
}

func (s *writerState) Clone() core.LocalState {
	c := *s
	return &c
}

// objectState is a base object's stored value.
type objectState struct {
	TS  int
	Val int
}

func (s *objectState) Key() string {
	return "O" + strconv.Itoa(s.TS) + "," + strconv.Itoa(s.Val)
}

func (s *objectState) Clone() core.LocalState {
	c := *s
	return &c
}

// readResult records one completed read with its observer snapshots.
type readResult struct {
	TS        int // timestamp of the returned value
	SnapStart int // writer.Completed when the read started
	SnapEnd   int // writer.Completed when the read completed
}

// readerState is a reader's local state.
type readerState struct {
	Reading   bool
	RID       int
	Done      int
	SnapStart int
	Cnt       int // single-message model: replies counted
	BestTS    int // single-message model: best reply so far
	BestVal   int
	Results   []readResult
}

func (s *readerState) Key() string {
	var sb strings.Builder
	sb.WriteByte('R')
	if s.Reading {
		sb.WriteByte('r')
	}
	sb.WriteString(strconv.Itoa(s.RID))
	sb.WriteByte(',')
	sb.WriteString(strconv.Itoa(s.Done))
	sb.WriteByte(',')
	sb.WriteString(strconv.Itoa(s.SnapStart))
	sb.WriteByte(',')
	sb.WriteString(strconv.Itoa(s.Cnt))
	sb.WriteByte(',')
	sb.WriteString(strconv.Itoa(s.BestTS))
	sb.WriteByte('[')
	for i, r := range s.Results {
		if i > 0 {
			sb.WriteByte(' ')
		}
		sb.WriteString(strconv.Itoa(r.TS))
		sb.WriteByte(':')
		sb.WriteString(strconv.Itoa(r.SnapStart))
		sb.WriteByte(':')
		sb.WriteString(strconv.Itoa(r.SnapEnd))
	}
	sb.WriteByte(']')
	return sb.String()
}

func (s *readerState) Clone() core.LocalState {
	c := *s
	c.Results = append([]readResult(nil), s.Results...)
	return &c
}

// complete records a finished read.
func (s *readerState) complete(best valPayload, completedNow int) {
	s.Results = append(s.Results, readResult{TS: best.TS, SnapStart: s.SnapStart, SnapEnd: completedNow})
	s.Reading = false
	s.Done++
	s.SnapStart = 0
}

var (
	_ core.LocalState = (*writerState)(nil)
	_ core.LocalState = (*objectState)(nil)
	_ core.LocalState = (*readerState)(nil)
	_ core.Payload    = writePayload{}
	_ core.Payload    = ackPayload{}
	_ core.Payload    = readPayload{}
	_ core.Payload    = valPayload{}
)
