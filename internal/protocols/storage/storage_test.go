package storage

import (
	"strings"
	"testing"
	"time"

	"mpbasset/internal/core"
	"mpbasset/internal/explore"
	"mpbasset/internal/por"
)

func mustNew(t *testing.T, cfg Config) *core.Protocol {
	t.Helper()
	p, err := New(cfg)
	if err != nil {
		t.Fatal(err)
	}
	p.ValidateSends = true
	return p
}

func check(t *testing.T, p *core.Protocol) *explore.Result {
	t.Helper()
	exp, err := por.NewExpander(p)
	if err != nil {
		t.Fatal(err)
	}
	res, err := explore.DFS(p, explore.Options{Expander: exp, TrackTrace: true, MaxDuration: 3 * time.Minute})
	if err != nil {
		t.Fatal(err)
	}
	return res
}

func TestVerdicts(t *testing.T) {
	cases := []struct {
		cfg  Config
		want explore.Verdict
	}{
		{Config{Objects: 3, Readers: 1}, explore.VerdictVerified},
		{Config{Objects: 3, Readers: 1, Model: ModelSingle}, explore.VerdictVerified},
		{Config{Objects: 3, Readers: 2, WrongRegularity: true}, explore.VerdictViolated},
		{Config{Objects: 3, Readers: 2, WrongRegularity: true, Model: ModelSingle}, explore.VerdictViolated},
		{Config{Objects: 3, Readers: 1, WrongRegularity: true}, explore.VerdictViolated},
		{Config{Objects: 5, Readers: 1, Writes: 1}, explore.VerdictVerified},
		{Config{Objects: 3, Readers: 0}, explore.VerdictVerified}, // write-only world
		{Config{Objects: 1, Readers: 1}, explore.VerdictVerified}, // degenerate single object
	}
	for _, tc := range cases {
		p := mustNew(t, tc.cfg)
		res := check(t, p)
		if res.Verdict != tc.want {
			t.Errorf("%s: verdict %s, want %s (%v)", p.Name, res.Verdict, tc.want, res.Violation)
		}
	}
}

func TestQuorumModelSmallerThanSingle(t *testing.T) {
	q, err := explore.DFS(mustNew(t, Config{Objects: 3, Readers: 1}), explore.Options{})
	if err != nil {
		t.Fatal(err)
	}
	s, err := explore.DFS(mustNew(t, Config{Objects: 3, Readers: 1, Model: ModelSingle}), explore.Options{})
	if err != nil {
		t.Fatal(err)
	}
	if 2*q.Stats.States > s.Stats.States {
		t.Errorf("quorum model %d states vs single %d — expected clear inflation", q.Stats.States, s.Stats.States)
	}
}

func TestWrongRegularityCounterexampleReplays(t *testing.T) {
	p := mustNew(t, Config{Objects: 3, Readers: 2, WrongRegularity: true})
	res, err := explore.BFS(p, explore.Options{TrackTrace: true})
	if err != nil {
		t.Fatal(err)
	}
	if res.Verdict != explore.VerdictViolated {
		t.Fatalf("verdict %s, want CE", res.Verdict)
	}
	if _, err := explore.ReplayViolation(p, res.Trace, nil); err != nil {
		t.Fatalf("counterexample does not replay to a violation: %v", err)
	}
	if !strings.Contains(res.Violation.Error(), "wrong regularity violated") {
		t.Fatalf("violation message: %v", res.Violation)
	}
}

func TestReadsReturnOnlyWrittenTimestamps(t *testing.T) {
	// Sweep all reachable terminal states: every completed read returned
	// a timestamp in [0, Writes] and never one below its start snapshot.
	cfg := Config{Objects: 3, Readers: 1}
	p := mustNew(t, cfg)
	init, err := p.InitialState()
	if err != nil {
		t.Fatal(err)
	}
	seen := map[string]bool{init.Key(): true}
	queue := []*core.State{init}
	checked := 0
	for len(queue) > 0 {
		s := queue[0]
		queue = queue[1:]
		for i := 0; i < cfg.Readers; i++ {
			rs := s.Local(cfg.ReaderID(i)).(*readerState)
			for _, r := range rs.Results {
				checked++
				if r.TS < 0 || r.TS > 2 { // Writes defaults to 2
					t.Fatalf("read returned unwritten timestamp %d", r.TS)
				}
				if r.TS < r.SnapStart {
					t.Fatalf("regularity broken in sweep: ts %d < snap %d", r.TS, r.SnapStart)
				}
			}
		}
		for _, ev := range p.Enabled(s) {
			ns, err := p.Execute(s, ev)
			if err != nil {
				t.Fatal(err)
			}
			if !seen[ns.Key()] {
				seen[ns.Key()] = true
				queue = append(queue, ns)
			}
		}
	}
	if checked == 0 {
		t.Fatal("sweep saw no completed reads")
	}
}

func TestObjectReadTransitionIsReadOnly(t *testing.T) {
	// The base object's probe handler is annotated ReadOnly — the key
	// enabling reply-split's reduction. ValidateSends enforces it during
	// every test run; here, double-check the annotation is present.
	p := mustNew(t, Config{Objects: 2, Readers: 2})
	found := false
	for _, tr := range p.Transitions {
		if tr.MsgType == MsgRead && tr.Quorum == 1 {
			found = true
			if !tr.ReadOnly || !tr.IsReply {
				t.Errorf("object READ transition %s must be ReadOnly and IsReply", tr)
			}
		}
	}
	if !found {
		t.Fatal("no object READ transition found")
	}
}

func TestConfigHelpers(t *testing.T) {
	c := Config{Objects: 3, Readers: 2}
	if c.Setting() != "(3,2)" || c.Majority() != 2 {
		t.Fatalf("helpers wrong: %s %d", c.Setting(), c.Majority())
	}
	if c.WriterID() != 0 || c.ObjectID(0) != 1 || c.ReaderID(0) != 4 {
		t.Fatal("layout wrong")
	}
	if len(c.Roles()) != 3 {
		t.Fatalf("roles = %d", len(c.Roles()))
	}
}

func TestNewRejectsBadConfigs(t *testing.T) {
	if _, err := New(Config{Objects: 0, Readers: 1}); err == nil {
		t.Error("zero objects accepted")
	}
	if _, err := New(Config{Objects: 3, Readers: -1}); err == nil {
		t.Error("negative readers accepted")
	}
	if _, err := New(Config{Objects: 3, Readers: 1, Writes: -2}); err == nil {
		t.Error("negative writes accepted")
	}
}

func TestSnapshotSemantics(t *testing.T) {
	// Drive one interleaving by hand and check the observer snapshots:
	// write completes, then a read starts — SnapStart must equal the
	// completed timestamp.
	cfg := Config{Objects: 1, Readers: 1, Writes: 1}
	p := mustNew(t, cfg)
	s, err := p.InitialState()
	if err != nil {
		t.Fatal(err)
	}
	pick := func(name string) {
		t.Helper()
		for _, ev := range p.Enabled(s) {
			if ev.T.Name == name {
				if s, err = p.Execute(s, ev); err != nil {
					t.Fatal(err)
				}
				return
			}
		}
		t.Fatalf("event %s not enabled; have %v", name, p.Enabled(s))
	}
	pick("W_START")
	pick(MsgWrite) // object stores and acks
	pick(MsgAck)   // write completes
	pick("R_START")
	rs := s.Local(cfg.ReaderID(0)).(*readerState)
	if rs.SnapStart != 1 {
		t.Fatalf("SnapStart = %d, want 1 (write completed before read)", rs.SnapStart)
	}
	pick(MsgRead) // object replies
	pick(MsgVal)  // read completes
	rs = s.Local(cfg.ReaderID(0)).(*readerState)
	if len(rs.Results) != 1 || rs.Results[0].TS != 1 {
		t.Fatalf("read result = %+v, want ts 1", rs.Results)
	}
}
