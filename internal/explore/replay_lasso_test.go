package explore

import (
	"strings"
	"testing"

	"mpbasset/internal/core"
	"mpbasset/internal/liveness"
	"mpbasset/internal/mptest"
	"mpbasset/internal/protocols/storage"
)

// realLasso produces a genuine accepting-cycle lasso: the liveness trap's
// ring cycle at rounds >= 1.
func realLasso(t *testing.T) (*core.Protocol, *liveness.Property, *Result) {
	t.Helper()
	p, prop, err := mptest.LivenessTrap(3)
	if err != nil {
		t.Fatal(err)
	}
	res, err := NDFS(p, Options{Property: prop})
	if err != nil {
		t.Fatal(err)
	}
	if res.Verdict != VerdictViolated || res.Stutter || res.CycleLen < 1 {
		t.Fatalf("want a real-cycle CE, got %s (cycle %d, stutter %v)", res.Verdict, res.CycleLen, res.Stutter)
	}
	return p, prop, res
}

// stutterLasso produces a genuine stutter lasso: single-reader storage
// with an unreachable goal, so the run that completes all reads deadlocks
// in an accepting state.
func stutterLasso(t *testing.T) (*core.Protocol, *liveness.Property, *Result) {
	t.Helper()
	p, err := storage.New(storage.Config{Objects: 1, Readers: 1})
	if err != nil {
		t.Fatal(err)
	}
	prop := liveness.Eventually("unreachable goal", nil, func(*core.State) bool { return false })
	res, err := NDFS(p, Options{Property: prop})
	if err != nil {
		t.Fatal(err)
	}
	if res.Verdict != VerdictViolated || !res.Stutter || res.CycleLen != 0 {
		t.Fatalf("want a stutter CE, got %s (cycle %d, stutter %v)", res.Verdict, res.CycleLen, res.Stutter)
	}
	return p, prop, res
}

// TestReplayLassoAcceptsGenuineCertificates checks the positive direction
// for both lasso shapes, including that the returned loop state is the
// stem's final state.
func TestReplayLassoAcceptsGenuineCertificates(t *testing.T) {
	p, prop, res := realLasso(t)
	loop, err := ReplayLasso(p, prop, res.Trace, res.CycleLen, res.Stutter, nil)
	if err != nil {
		t.Fatalf("genuine real-cycle lasso rejected: %v", err)
	}
	stem := res.Trace[:len(res.Trace)-res.CycleLen]
	if len(stem) > 0 && loop.Key() != stem[len(stem)-1].StateKey {
		t.Errorf("loop state %q, want the stem's final state %q", loop.Key(), stem[len(stem)-1].StateKey)
	}

	sp, sprop, sres := stutterLasso(t)
	sloop, err := ReplayLasso(sp, sprop, sres.Trace, 0, true, nil)
	if err != nil {
		t.Fatalf("genuine stutter lasso rejected: %v", err)
	}
	if len(sp.Enabled(sloop)) != 0 {
		t.Error("stutter loop state is not deadlocked")
	}
}

// TestReplayLassoRejectsCorruptedCertificates mangles every part of a
// genuine certificate — stem states, cycle states, the loop point, the
// cycle length, the stutter flag, the acceptance claim — and checks each
// corruption is rejected with a diagnostic, never silently accepted.
func TestReplayLassoRejectsCorruptedCertificates(t *testing.T) {
	p, prop, res := realLasso(t)
	stemLen := len(res.Trace) - res.CycleLen
	corrupt := func(i int) []Step {
		mangled := append([]Step(nil), res.Trace...)
		mangled[i].StateKey = "bogus|" + mangled[i].StateKey
		return mangled
	}

	// A corrupted stem state (canonicalization-bug stand-in).
	if _, err := ReplayLasso(p, prop, corrupt(0), res.CycleLen, false, nil); err == nil || !strings.Contains(err.Error(), "state key mismatch") {
		t.Errorf("corrupted stem: %v, want a state key mismatch", err)
	}
	// A corrupted cycle state.
	if _, err := ReplayLasso(p, prop, corrupt(len(res.Trace)-1), res.CycleLen, false, nil); err == nil || !strings.Contains(err.Error(), "state key mismatch") {
		t.Errorf("corrupted cycle: %v, want a state key mismatch", err)
	}
	// A shifted loop point: the same steps with the wrong stem/cycle split
	// must fail the closure check in both directions.
	for _, delta := range []int{-1, 1} {
		cl := res.CycleLen + delta
		if cl < 1 || cl > len(res.Trace) {
			continue
		}
		if _, err := ReplayLasso(p, prop, res.Trace, cl, false, nil); err == nil || !strings.Contains(err.Error(), "does not close") {
			t.Errorf("cycle length %+d: %v, want a closure failure", delta, err)
		}
	}
	// Degenerate cycle lengths.
	if _, err := ReplayLasso(p, prop, res.Trace, 0, false, nil); err == nil {
		t.Error("cycleLen 0 without stutter accepted")
	}
	if _, err := ReplayLasso(p, prop, res.Trace, len(res.Trace)+1, false, nil); err == nil {
		t.Error("cycleLen beyond the trace accepted")
	}
	// A real cycle passed off as a stutter lasso: the claimed loop state is
	// not deadlocked.
	if _, err := ReplayLasso(p, prop, res.Trace[:stemLen], 0, true, nil); err == nil || !strings.Contains(err.Error(), "deadlock") {
		t.Errorf("live state as stutter lasso: %v, want a deadlock check failure", err)
	}
	// A stutter flag with a nonzero cycle length is malformed.
	if _, err := ReplayLasso(p, prop, res.Trace, res.CycleLen, true, nil); err == nil {
		t.Error("stutter with nonzero cycleLen accepted")
	}
	// Nil property.
	if _, err := ReplayLasso(p, nil, res.Trace, res.CycleLen, false, nil); err == nil {
		t.Error("nil property accepted")
	}
	// A forged acceptance claim: under the inverted predicate the cycle
	// contains no accepting state.
	inverted := &liveness.Property{Name: "inverted", Accept: func(s *core.State) bool { return !prop.Accept(s) }}
	if _, err := ReplayLasso(p, inverted, res.Trace, res.CycleLen, false, nil); err == nil || !strings.Contains(err.Error(), "no accepting state") {
		t.Errorf("non-accepting cycle: %v, want an acceptance failure", err)
	}
}

// TestReplayLassoRejectsUnfairCycle checks the weak-fairness validation:
// the trap's rounds-0 ring cycle keeps process 0's PROGRESS transition
// enabled in every state without ever executing it, so it is a valid
// unfair counterexample but must be rejected as a fair one.
func TestReplayLassoRejectsUnfairCycle(t *testing.T) {
	p, _, err := mptest.LivenessTrap(3)
	if err != nil {
		t.Fatal(err)
	}
	progress := liveness.Eventually("process 0 progresses", []core.ProcessID{0}, func(s *core.State) bool {
		return s.Local(0).(*mptest.Local).Rounds >= 1
	})
	res, err := NDFS(p, Options{Property: progress})
	if err != nil {
		t.Fatal(err)
	}
	if res.Verdict != VerdictViolated || res.Stutter {
		t.Fatalf("want the unfair ring cycle as CE, got %s (stutter %v)", res.Verdict, res.Stutter)
	}
	if _, err := ReplayLasso(p, progress, res.Trace, res.CycleLen, false, nil); err != nil {
		t.Fatalf("unfair cycle rejected without fairness: %v", err)
	}
	fair := *progress
	fair.WeakFair = true
	if _, err := ReplayLasso(p, &fair, res.Trace, res.CycleLen, false, nil); err == nil || !strings.Contains(err.Error(), "not weakly fair") {
		t.Errorf("unfair cycle as fair CE: %v, want a fairness failure", err)
	}
}

// TestReplayLassoStutterRejectsNonAccepting pins the stutter acceptance
// check: the deadlocked run claimed against a property whose goal that
// run reaches must be rejected.
func TestReplayLassoStutterRejectsNonAccepting(t *testing.T) {
	sp, _, sres := stutterLasso(t)
	done := storage.ReadsComplete(storage.Config{Objects: 1, Readers: 1})
	if _, err := ReplayLasso(sp, done, sres.Trace, 0, true, nil); err == nil || !strings.Contains(err.Error(), "non-accepting") {
		t.Errorf("completed run as reads-complete CE: %v, want an acceptance failure", err)
	}
}
