package explore

import (
	"hash/fnv"
	"sync"
	"sync/atomic"
)

// shardCount is the number of mutex stripes of a ShardedStore. A power of
// two well above typical core counts keeps contention negligible without
// wasting memory on empty maps.
const shardCount = 256

// storeShard is one stripe: a mutex plus the map of that stripe's keys.
// Only one of exact/hashed is populated, matching the store's mode.
type storeShard struct {
	mu     sync.Mutex
	exact  map[string]struct{}
	hashed map[[16]byte]struct{}
}

// ShardedStore is a concurrent visited-state set: the key space is
// partitioned over mutex-striped shards selected by key hash, so Seen is
// linearizable per key and goroutines hammering distinct stripes do not
// contend. It wraps both storage modes of the sequential stores behind the
// Store interface: exact full-key storage (NewShardedExactStore, the
// ExactStore analogue) and 128-bit FNV-1a fingerprints
// (NewShardedHashStore, the HashStore analogue).
//
// ParallelBFS requires a concurrency-safe store and uses a ShardedStore by
// default; the sequential engines accept one too (it is merely slower than
// the unsynchronized stores there).
type ShardedStore struct {
	exact  bool
	count  atomic.Int64
	shards [shardCount]storeShard
}

// NewShardedExactStore returns an empty concurrent store keeping full
// canonical keys: collision-free, memory-hungry.
func NewShardedExactStore() *ShardedStore { return &ShardedStore{exact: true} }

// NewShardedHashStore returns an empty concurrent store keeping 128-bit
// FNV-1a fingerprints instead of full keys, trading a negligible collision
// probability for a large memory saving on multi-million-state runs.
func NewShardedHashStore() *ShardedStore { return &ShardedStore{} }

// fingerprint is the 128-bit FNV-1a sum used both to pick the stripe and,
// in hashed mode, as the stored key.
func fingerprint(key string) [16]byte {
	h := fnv.New128a()
	h.Write([]byte(key))
	var k [16]byte
	h.Sum(k[:0])
	return k
}

// Seen implements Store. It records key and reports whether it was already
// present; for each distinct key exactly one call returns false, however
// many goroutines race on it.
func (s *ShardedStore) Seen(key string) bool {
	fp := fingerprint(key)
	sh := &s.shards[fp[0]]
	sh.mu.Lock()
	var dup bool
	if s.exact {
		if sh.exact == nil {
			sh.exact = make(map[string]struct{})
		}
		if _, dup = sh.exact[key]; !dup {
			sh.exact[key] = struct{}{}
		}
	} else {
		if sh.hashed == nil {
			sh.hashed = make(map[[16]byte]struct{})
		}
		if _, dup = sh.hashed[fp]; !dup {
			sh.hashed[fp] = struct{}{}
		}
	}
	sh.mu.Unlock()
	if !dup {
		s.count.Add(1)
	}
	return dup
}

// Len implements Store.
func (s *ShardedStore) Len() int { return int(s.count.Load()) }

var _ Store = (*ShardedStore)(nil)

// syncStore serializes an arbitrary Store behind one mutex — the fallback
// ParallelBFS uses when handed a store that is not a ShardedStore, keeping
// any Store correct under concurrency at the price of contention.
type syncStore struct {
	mu    sync.Mutex
	inner Store
}

func (s *syncStore) Seen(key string) bool {
	s.mu.Lock()
	defer s.mu.Unlock()
	return s.inner.Seen(key)
}

func (s *syncStore) Len() int {
	s.mu.Lock()
	defer s.mu.Unlock()
	return s.inner.Len()
}

// concurrentStore returns a store safe for concurrent Seen calls: the
// configured store if it is already a ShardedStore, a fresh sharded exact
// store when none is configured (mirroring the sequential ExactStore
// default), or the configured store wrapped behind a single mutex.
func (o *Options) concurrentStore() Store {
	switch st := o.Store.(type) {
	case nil:
		return NewShardedExactStore()
	case *ShardedStore:
		return st
	default:
		return &syncStore{inner: st}
	}
}
