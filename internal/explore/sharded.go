package explore

import (
	"sync"
	"sync/atomic"
)

// shardCount is the number of mutex stripes of a ShardedStore. A power of
// two well above typical core counts keeps contention negligible without
// wasting memory on empty maps.
const shardCount = 256

// storeShard is one stripe: a mutex plus the map of that stripe's keys.
// Only one of exact/hashed is populated, matching the store's mode.
type storeShard struct {
	mu     sync.Mutex
	exact  map[string]struct{}
	hashed map[[16]byte]struct{}
}

// insertLocked records one key in the stripe (which must be locked) and
// reports whether it was already present.
func (sh *storeShard) insertLocked(exact bool, key string, fp [16]byte) bool {
	if exact {
		if sh.exact == nil {
			sh.exact = make(map[string]struct{})
		}
		if _, dup := sh.exact[key]; dup {
			return true
		}
		sh.exact[key] = struct{}{}
		return false
	}
	if sh.hashed == nil {
		sh.hashed = make(map[[16]byte]struct{})
	}
	if _, dup := sh.hashed[fp]; dup {
		return true
	}
	sh.hashed[fp] = struct{}{}
	return false
}

// ShardedStore is a concurrent visited-state set: the key space is
// partitioned over mutex-striped shards selected by key hash, so Seen is
// linearizable per key and goroutines hammering distinct stripes do not
// contend. It wraps both storage modes of the sequential stores behind the
// Store interface: exact full-key storage (NewShardedExactStore, the
// ExactStore analogue) and 128-bit FNV-1a fingerprints
// (NewShardedHashStore, the HashStore analogue).
//
// ShardedStore also implements BatchStore: SeenBatch groups its keys by
// stripe and takes each stripe lock once per batch instead of once per
// key, which is what ParallelBFS's workers use to amortize lock traffic.
//
// ParallelBFS requires a concurrency-safe store and uses a ShardedStore by
// default; the sequential engines accept one too (it is merely slower than
// the unsynchronized stores there).
type ShardedStore struct {
	exact  bool
	count  atomic.Int64
	shards [shardCount]storeShard
}

// NewShardedExactStore returns an empty concurrent store keeping full
// canonical keys: collision-free, memory-hungry.
func NewShardedExactStore() *ShardedStore { return &ShardedStore{exact: true} }

// NewShardedHashStore returns an empty concurrent store keeping 128-bit
// FNV-1a fingerprints instead of full keys, trading a negligible collision
// probability for a large memory saving on multi-million-state runs.
func NewShardedHashStore() *ShardedStore { return &ShardedStore{} }

// Seen implements Store. It records key and reports whether it was already
// present; for each distinct key exactly one call returns false, however
// many goroutines race on it.
func (s *ShardedStore) Seen(key string) bool {
	fp := fingerprint(key)
	sh := &s.shards[fp[15]]
	sh.mu.Lock()
	dup := sh.insertLocked(s.exact, key, fp)
	sh.mu.Unlock()
	if !dup {
		s.count.Add(1)
	}
	return dup
}

// SeenBatch implements BatchStore: it records every key and returns one
// "was already present" answer per key, taking each involved stripe lock
// once for the whole batch. Keys are committed in index order within each
// stripe, so a key duplicated inside one batch reports false exactly at its
// first occurrence, and the exactly-one-false guarantee of Seen holds
// across any mix of racing SeenBatch and Seen callers.
func (s *ShardedStore) SeenBatch(keys []string) []bool {
	n := len(keys)
	if n == 0 {
		return nil
	}
	if n == 1 {
		return []bool{s.Seen(keys[0])}
	}
	dups := make([]bool, n)
	fps := make([][16]byte, n)
	done := make([]bool, n)
	for i, k := range keys {
		fps[i] = fingerprint(k)
	}
	var added int64
	// Batches are small (a worker's successor buffer), so the stripe
	// grouping is a forward scan per distinct stripe rather than an
	// allocated index.
	for i := 0; i < n; i++ {
		if done[i] {
			continue
		}
		stripe := fps[i][15]
		sh := &s.shards[stripe]
		sh.mu.Lock()
		for j := i; j < n; j++ {
			if done[j] || fps[j][15] != stripe {
				continue
			}
			done[j] = true
			dups[j] = sh.insertLocked(s.exact, keys[j], fps[j])
			if !dups[j] {
				added++
			}
		}
		sh.mu.Unlock()
	}
	if added > 0 {
		s.count.Add(added)
	}
	return dups
}

// Has implements HasStore: a non-mutating membership probe, linearizable
// per key like Seen.
func (s *ShardedStore) Has(key string) bool {
	fp := fingerprint(key)
	sh := &s.shards[fp[15]]
	sh.mu.Lock()
	defer sh.mu.Unlock()
	if s.exact {
		_, ok := sh.exact[key]
		return ok
	}
	_, ok := sh.hashed[fp]
	return ok
}

// Len implements Store.
func (s *ShardedStore) Len() int { return int(s.count.Load()) }

// ConcurrencySafe implements ConcurrentStore.
func (s *ShardedStore) ConcurrencySafe() {}

var (
	_ BatchStore      = (*ShardedStore)(nil)
	_ HasStore        = (*ShardedStore)(nil)
	_ ConcurrentStore = (*ShardedStore)(nil)
)

// syncStore serializes an arbitrary Store behind one mutex — the fallback
// ParallelBFS uses when handed a store that is not a ShardedStore, keeping
// any Store correct under concurrency at the price of contention. Its
// SeenBatch takes the mutex once per batch, so even the fallback benefits
// from batching.
type syncStore struct {
	mu    sync.Mutex
	inner Store
}

func (s *syncStore) Seen(key string) bool {
	s.mu.Lock()
	defer s.mu.Unlock()
	return s.inner.Seen(key)
}

func (s *syncStore) SeenBatch(keys []string) []bool {
	dups := make([]bool, len(keys))
	s.mu.Lock()
	defer s.mu.Unlock()
	for i, k := range keys {
		dups[i] = s.inner.Seen(k)
	}
	return dups
}

func (s *syncStore) Len() int {
	s.mu.Lock()
	defer s.mu.Unlock()
	return s.inner.Len()
}

// Has reports membership when the inner store can answer it, and false
// otherwise. The "unknown reads as not seen" degradation is safe because
// the only caller is ParallelDFS's speculation probe, which treats the
// answer as a work-skipping hint — never as proviso or verdict input.
func (s *syncStore) Has(key string) bool {
	hs, ok := s.inner.(HasStore)
	if !ok {
		return false
	}
	s.mu.Lock()
	defer s.mu.Unlock()
	return hs.Has(key)
}

var _ BatchStore = (*syncStore)(nil)

// concurrentStore returns a store safe for concurrent Seen/SeenBatch calls:
// the configured store if it declares itself concurrency-safe (ShardedStore,
// SpillStore, or any caller-supplied ConcurrentStore), a fresh sharded
// exact store when none is configured (mirroring the sequential ExactStore
// default), or the configured store wrapped behind a single mutex.
func (o *Options) concurrentStore() Store {
	switch st := o.Store.(type) {
	case nil:
		return NewShardedExactStore()
	case ConcurrentStore:
		return st
	default:
		return &syncStore{inner: st}
	}
}
