// Differential tests of ParallelDFS against sequential DFS: the engine's
// guarantee is bit-identical verdicts, statistics and counterexample traces
// for any worker count and steal depth, over the in-memory and spill-backed
// stores, unreduced and SPOR-reduced — including runs cut by MaxStates or
// MaxDepth, whose outcome depends on the exact visit order.
package explore_test

import (
	"strconv"
	"testing"
	"time"

	"mpbasset/internal/explore"
	"mpbasset/internal/mptest"
	"mpbasset/internal/por"
)

// requireSameResult asserts got is bit-identical to want: verdict, stats
// (Duration and spill activity masked), and the full trace.
func requireSameResult(t *testing.T, label string, got, want *explore.Result) {
	t.Helper()
	if got.Verdict != want.Verdict {
		t.Errorf("%s: verdict %s, sequential DFS %s", label, got.Verdict, want.Verdict)
		return
	}
	if gs, ws := maskSpill(got.Stats), maskSpill(want.Stats); gs != ws {
		t.Errorf("%s: stats %+v, sequential DFS %+v", label, gs, ws)
	}
	if len(got.Trace) != len(want.Trace) {
		t.Errorf("%s: trace length %d, sequential DFS %d", label, len(got.Trace), len(want.Trace))
		return
	}
	for i := range got.Trace {
		if got.Trace[i].StateKey != want.Trace[i].StateKey ||
			got.Trace[i].Event.Key() != want.Trace[i].Event.Key() {
			t.Errorf("%s: trace step %d = %+v, sequential DFS %+v", label, i, got.Trace[i], want.Trace[i])
			return
		}
	}
}

// TestParallelDFSDifferentialOnSuiteModels is the tentpole's acceptance
// check: for every suite protocol, worker count in {1,2,4,8}, store
// (in-memory fingerprint vs spill with a tiny budget) and reduction
// (unreduced vs SPOR), ParallelDFS must be bit-identical to sequential DFS
// over the in-memory store.
func TestParallelDFSDifferentialOnSuiteModels(t *testing.T) {
	for name, p := range suiteModels(t) {
		// The trap stops a step or two in; a one-entry hot tier makes even
		// it spill (mirroring the BFS-family spill differential).
		budget := int64(512)
		if name == "ignoring-trap-4" {
			budget = 1
		}
		for _, reducedSearch := range []bool{false, true} {
			xo := explore.Options{MaxStates: 4000, MaxDuration: time.Minute}
			label := name + "/unreduced"
			if reducedSearch {
				exp, err := por.NewExpander(p)
				if err != nil {
					t.Fatal(err)
				}
				xo.Expander = exp
				label = name + "/spor"
			}
			seq := xo
			seq.Store = explore.NewHashStore()
			want, err := explore.DFS(p, seq)
			if err != nil {
				t.Fatal(err)
			}
			for _, workers := range []int{1, 2, 4, 8} {
				for _, store := range []string{"mem", "spill"} {
					t.Run(label+"/"+store+"/w"+strconv.Itoa(workers), func(t *testing.T) {
						run := xo
						run.Workers = workers
						if store == "spill" {
							run.Store = tinySpill(t, budget)
						} else {
							run.Store = explore.NewHashStore()
						}
						got, err := explore.ParallelDFS(p, run)
						if err != nil {
							t.Fatal(err)
						}
						requireSameResult(t, label, got, want)
						if store == "spill" && got.Stats.SpillRuns == 0 {
							t.Error("tiny budget never spilled — the run does not exercise the disk tier")
						}
						if got.Verdict == explore.VerdictViolated {
							if _, err := explore.ReplayViolation(p, got.Trace, nil); err != nil {
								t.Errorf("counterexample does not replay: %v", err)
							}
						}
					})
				}
			}
		}
	}
}

// TestParallelDFSLimitedRunsMatchSequential pins the hard case: a MaxStates
// or MaxDepth bound cuts the search mid-walk, so the limited result is a
// pure function of the visit order — which ParallelDFS must reproduce
// exactly whatever the workers were doing.
func TestParallelDFSLimitedRunsMatchSequential(t *testing.T) {
	p, err := mptest.Random(mptest.GenConfig{Seed: 7, MaxProcs: 3, Quorums: true, Cycles: true, Threshold: 1, RingSize: 3, CyclePriority: 3})
	if err != nil {
		t.Fatal(err)
	}
	for _, bound := range []explore.Options{
		{MaxStates: 10},
		{MaxStates: 57},
		{MaxDepth: 3},
		{MaxDepth: 7, MaxStates: 200},
	} {
		want, err := explore.DFS(p, bound)
		if err != nil {
			t.Fatal(err)
		}
		for _, workers := range []int{1, 4, 8} {
			run := bound
			run.Workers = workers
			got, err := explore.ParallelDFS(p, run)
			if err != nil {
				t.Fatal(err)
			}
			requireSameResult(t, "limited", got, want)
		}
	}
}

// TestParallelDFSStealDepthNeverChangesResults sweeps the steal-depth knob:
// it tunes speculation only, so every value must commit the identical
// result.
func TestParallelDFSStealDepthNeverChangesResults(t *testing.T) {
	p, err := mptest.IgnoringTrap(5)
	if err != nil {
		t.Fatal(err)
	}
	exp, err := por.NewExpander(p)
	if err != nil {
		t.Fatal(err)
	}
	xo := explore.Options{Expander: exp}
	want, err := explore.DFS(p, xo)
	if err != nil {
		t.Fatal(err)
	}
	if want.Verdict != explore.VerdictViolated || want.Stats.ProvisoExpansions != 1 {
		t.Fatalf("trap reference: verdict %s, proviso %d — the model no longer traps", want.Verdict, want.Stats.ProvisoExpansions)
	}
	for _, depth := range []int{1, 2, 8, 64} {
		run := xo
		run.Workers = 4
		run.StealDepth = depth
		got, err := explore.ParallelDFS(p, run)
		if err != nil {
			t.Fatal(err)
		}
		requireSameResult(t, "steal-depth", got, want)
	}
}

// TestParallelDFSDeterministicRepeats runs the same 8-worker search
// repeatedly: every run must commit the bit-identical result, whatever the
// speculation interleaving did.
func TestParallelDFSDeterministicRepeats(t *testing.T) {
	p, err := mptest.Random(mptest.GenConfig{Seed: 11, MaxProcs: 3, Quorums: true, AnyQuorums: true, Cycles: true, Threshold: 2, RingSize: 4, CyclePriority: 3})
	if err != nil {
		t.Fatal(err)
	}
	exp, err := por.NewExpander(p)
	if err != nil {
		t.Fatal(err)
	}
	var base *explore.Result
	for i := 0; i < 10; i++ {
		res, err := explore.ParallelDFS(p, explore.Options{Expander: exp, Workers: 8, MaxStates: 4000})
		if err != nil {
			t.Fatal(err)
		}
		if base == nil {
			base = res
			continue
		}
		requireSameResult(t, "repeat", res, base)
	}
}

// TestParallelDFSDefaultWorkers exercises the Workers<=0 default
// (GOMAXPROCS) path against sequential DFS on a model with deadlocks and a
// violation.
func TestParallelDFSDefaultWorkers(t *testing.T) {
	p, err := mptest.Random(mptest.GenConfig{Seed: 3, MaxProcs: 3, Quorums: true, Threshold: 1})
	if err != nil {
		t.Fatal(err)
	}
	want, err := explore.DFS(p, explore.Options{})
	if err != nil {
		t.Fatal(err)
	}
	got, err := explore.ParallelDFS(p, explore.Options{})
	if err != nil {
		t.Fatal(err)
	}
	requireSameResult(t, "default-workers", got, want)
}

// TestParallelDFSSyncStoreFallback hands ParallelDFS a non-concurrent
// caller store: the engine must serialize it behind a mutex (probing
// included) and still commit the sequential result.
func TestParallelDFSSyncStoreFallback(t *testing.T) {
	p, err := mptest.IgnoringTrap(4)
	if err != nil {
		t.Fatal(err)
	}
	exp, err := por.NewExpander(p)
	if err != nil {
		t.Fatal(err)
	}
	want, err := explore.DFS(p, explore.Options{Expander: exp, Store: explore.NewExactStore()})
	if err != nil {
		t.Fatal(err)
	}
	got, err := explore.ParallelDFS(p, explore.Options{Expander: exp, Store: explore.NewExactStore(), Workers: 4})
	if err != nil {
		t.Fatal(err)
	}
	requireSameResult(t, "sync-store", got, want)
}
