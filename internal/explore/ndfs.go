package explore

import (
	"fmt"
	"sync"
	"sync/atomic"

	"mpbasset/internal/core"
	"mpbasset/internal/liveness"
)

// redSuffix marks a product key as red-visited in the shared store; the
// NUL framing keeps red marks disjoint from blue marks and from every
// protocol state key, so one store (in-memory, sharded or spill) holds
// both colors of one search.
const redSuffix = "\x00r"

// nSucc is one successor edge of the Büchi product: the executed event
// (zero for the implicit stutter step of a deadlocked state), the reached
// protocol state with its canonical key, and the reached fairness-monitor
// copy with the resulting product key.
type nSucc struct {
	ev      core.Event
	st      *core.State
	skey    string // canonical protocol-state key (what traces record)
	copy    int    // fairness-monitor copy of the reached product state
	pkey    string // product key: liveness.ProductKey(skey, copy)
	stutter bool   // implicit self-loop step of a deadlocked state
}

// nRecord is the expansion record of one product state: everything the
// blue search needs to replay the expansion exactly as the sequential
// engine computes it. Like pdRecord, records are pure functions of the
// product state, which is what makes ParallelNDFS's out-of-order
// speculation sound.
type nRecord struct {
	// src is the state the record was built from; the proviso promotion
	// re-executes the full enabled set against it (orbit-consistent under
	// a canonicalizing Canon).
	src      *core.State
	copy     int
	deadlock bool
	reduced  bool
	// enabled is the full enabled-event set, retained only for reduced
	// expansions so the stack proviso can promote them without
	// recomputing Enabled.
	enabled []core.Event
	succs   []nSucc
	// err is a deferred Execute failure, surfaced when (and only when)
	// the blue walk actually expands the state.
	err error
}

// nBuild computes a product state's expansion record: the full enabled
// set, the expander's chosen subset, the executed successors with their
// fairness-monitor copies — and, for deadlocked states, the stutter
// self-loop successor.
func nBuild(p *core.Protocol, prop *liveness.Property, s *core.State, copy int, exp Expander, canon func(*core.State) string, prov Proviso) *nRecord {
	rec := &nRecord{src: s, copy: copy}
	accepting := copy == 0 && prop.Accept(s)
	enabled := p.Enabled(s)
	if len(enabled) == 0 {
		rec.deadlock = true
		ncopy := prop.Next(copy, p.N, accepting, -1, func(int) bool { return false })
		skey := canon(s)
		rec.succs = []nSucc{{st: s, skey: skey, copy: ncopy, pkey: liveness.ProductKey(skey, ncopy), stutter: true}}
		return rec
	}
	chosen := exp.Expand(s, enabled, prov)
	rec.reduced = len(chosen) < len(enabled)
	if rec.reduced {
		rec.enabled = enabled
	}
	succs, err := nExecAll(p, prop, s, copy, accepting, enabled, chosen, canon)
	if err != nil {
		rec.err = err
		return rec
	}
	rec.succs = succs
	return rec
}

// nExecAll executes events against the product state (s, copy): each event
// is run through the protocol and through the fairness monitor. enabled is
// the full enabled set of s (the monitor reads enabledness from the source
// state); events is the subset actually executed.
func nExecAll(p *core.Protocol, prop *liveness.Property, s *core.State, copy int, accepting bool, enabled, events []core.Event, canon func(*core.State) string) ([]nSucc, error) {
	var mask []bool
	if prop.WeakFair {
		mask = liveness.EnabledProcs(p.N, enabled)
	}
	enabledProc := func(q int) bool { return mask[q] }
	succs := make([]nSucc, 0, len(events))
	for _, ev := range events {
		ns, err := p.Execute(s, ev)
		if err != nil {
			return nil, err
		}
		ncopy := prop.Next(copy, p.N, accepting, int(ev.T.Proc), enabledProc)
		skey := canon(ns)
		succs = append(succs, nSucc{ev: ev, st: ns, skey: skey, copy: ncopy, pkey: liveness.ProductKey(skey, ncopy)})
	}
	return succs, nil
}

// nSuccKeys collects the product keys of succs into buf.
func nSuccKeys(buf []string, succs []nSucc) []string {
	buf = buf[:0]
	for i := range succs {
		buf = append(buf, succs[i].pkey)
	}
	return buf
}

// nFrame is one frame of the blue (outer) search stack.
type nFrame struct {
	skey      string
	pkey      string
	copy      int
	via       core.Event
	stutter   bool // via is the implicit stutter step of a deadlocked state
	accepting bool
	succs     []nSucc
	next      int
}

// nTarget is one ParallelNDFS steal target: an unexplored pending sibling
// of a live blue frame.
type nTarget struct {
	st   *core.State
	copy int
	pkey string
}

// nSpec is ParallelNDFS's speculation hookup into the shared ndfs core; a
// nil nSpec runs the engine sequentially.
type nSpec struct {
	// take consumes the speculative expansion record for a product key.
	take func(pkey string) *nRecord
	// publish offers a new frame's pending siblings (succs[1:]) as steal
	// targets.
	publish func(succs []nSucc)
	// close stops the speculators and joins them; ndfs defers it so the
	// workers are gone before the engine's own deferred bookkeeping runs.
	close func()
}

// NDFS checks a Büchi liveness property (Options.Property) with the
// classic nested depth-first search: the blue (outer) DFS explores the
// product of the state graph with the property's fairness monitor, and at
// the post-order retreat from each accepting product state launches a red
// (inner) DFS that reports a violation iff it can close a cycle back onto
// the blue search stack — an accepting (and, with WeakFair, weakly fair)
// cycle. Deadlocked states carry an implicit stutter self-loop, so
// executions that halt in an accepting state are counterexamples too.
// Counterexamples are lassos: Result.Trace holds stem + cycle,
// Result.CycleLen/Stutter describe the cycle, and ReplayLasso re-validates
// the whole certificate.
//
// NDFS cooperates with reducing expanders exactly like DFS: the blue
// search enforces the stack ignoring proviso (C3) on the product, and the
// red search replays the blue search's post-proviso event choices (a
// per-state memo), so both sweeps traverse the identical reduced graph and
// static POR stays sound for cycle detection. With Property.WeakFair the
// expander is ignored and the full graph is explored: the fairness
// monitor observes every transition, so C2 admits no reduction.
//
// The search runs over any Store tier — in-memory, sharded or spill — by
// multiplexing blue and red visit marks into the one store under distinct
// key suffixes. The safety invariant is NOT checked; run a safety search
// separately.
func NDFS(p *core.Protocol, opts Options) (*Result, error) {
	if err := ndfsCheckOpts(opts); err != nil {
		return nil, err
	}
	return ndfs(p, opts, opts.store(), nil)
}

func ndfsCheckOpts(opts Options) error {
	if opts.Property == nil || opts.Property.Accept == nil {
		return fmt.Errorf("explore: the NDFS engines require Options.Property with an Accept predicate")
	}
	return nil
}

// ndfs is the engine core shared by NDFS and ParallelNDFS: the blue/red
// nested search, with speculative expansion records taken from spec when
// one is attached. The commit path is identical either way, so the two
// entry points produce bit-identical verdicts, statistics and lassos.
func ndfs(p *core.Protocol, opts Options, store Store, spec *nSpec) (result *Result, err error) {
	var (
		prop    = opts.Property
		res     Result
		canon   = opts.canon()
		exp     = opts.expander()
		lim     = newLimiter(opts)
		stack   []nFrame
		sinfo   = &dfsStack{onStack: make(map[string]bool)}
		limited bool
		timeUp  bool
		keyBuf  []string
	)
	if prop.WeakFair {
		// C2 under fairness: the monitor copy advances on every executed
		// event, so every transition is visible in the product and no
		// ample set smaller than the full enabled set is sound. Check the
		// full graph instead of silently unsound reduction.
		exp = FullExpander{}
	}
	_, full := exp.(FullExpander)
	reducing := !full
	// succMemo records the blue search's post-proviso event choice per
	// expanded product state, so the red search replays the identical
	// reduced graph (nil entries mark deadlocked states; the red sweep
	// synthesizes the same stutter step).
	var succMemo map[string][]core.Event
	if reducing {
		succMemo = make(map[string][]core.Event)
	}
	defer func() {
		res.Stats.Duration = lim.elapsed()
		captureStoreStats(store, &res.Stats)
		if serr := storeErr(store); serr != nil && err == nil {
			result, err = nil, serr
		}
	}()
	if spec != nil {
		// Runs first (LIFO): the speculators are joined before the stats
		// defer above reads the store.
		defer spec.close()
	}
	init, err := p.InitialState()
	if err != nil {
		return nil, err
	}

	// expand replays one product state's expansion in commit order:
	// memoized record when a speculator got there first, inline
	// computation otherwise, then the stack proviso and the expansion
	// statistics — deterministically in either case.
	expand := func(s *core.State, pkey string, copy int, accepting bool) ([]nSucc, error) {
		var rec *nRecord
		if spec != nil {
			rec = spec.take(pkey)
		}
		if rec == nil {
			rec = nBuild(p, prop, s, copy, exp, canon, sinfo)
		}
		if rec.err != nil {
			return nil, rec.err
		}
		if rec.deadlock {
			res.Stats.Deadlocks++
			if reducing {
				succMemo[pkey] = nil
			}
			return rec.succs, nil
		}
		succs := rec.succs
		reduced := rec.reduced
		if reduced {
			keyBuf = nSuccKeys(keyBuf, succs)
			if sinfo.Ignoring(keyBuf) {
				// Stack proviso (C3) on the product: a reduced expansion
				// must not close a cycle on the blue stack, or the
				// deferred events could be ignored forever around it.
				reduced = false
				res.Stats.ProvisoExpansions++
				promoted, err := nExecAll(p, prop, rec.src, rec.copy, accepting, rec.enabled, rec.enabled, canon)
				if err != nil {
					return nil, err
				}
				succs = promoted
			}
		}
		if reduced {
			res.Stats.ReducedExpansions++
		} else {
			res.Stats.FullExpansions++
		}
		if reducing {
			evs := make([]core.Event, len(succs))
			for i := range succs {
				evs[i] = succs[i].ev
			}
			succMemo[pkey] = evs
		}
		return succs, nil
	}

	push := func(sc nSucc) error {
		sinfo.onStack[sc.pkey] = true
		accepting := sc.copy == 0 && prop.Accept(sc.st)
		succs, err := expand(sc.st, sc.pkey, sc.copy, accepting)
		if err != nil {
			return err
		}
		stack = append(stack, nFrame{
			skey: sc.skey, pkey: sc.pkey, copy: sc.copy,
			via: sc.ev, stutter: sc.stutter, accepting: accepting, succs: succs,
		})
		if spec != nil && len(succs) > 1 {
			spec.publish(succs)
		}
		return nil
	}

	// redExpand recomputes a blue-visited product state's successors for
	// the red sweep. Reducing runs replay the blue search's memoized event
	// choice so red and blue traverse the same reduced graph; a missing
	// memo entry means the blue search never expanded the state (a depth
	// or state limit cut it) and the red sweep treats it as a leaf — the
	// run reports VerdictLimit in that case anyway.
	redExpand := func(s *core.State, skey, pkey string, copy int) ([]nSucc, error) {
		accepting := copy == 0 && prop.Accept(s)
		if reducing {
			evs, ok := succMemo[pkey]
			if !ok {
				return nil, nil
			}
			if len(evs) == 0 {
				ncopy := prop.Next(copy, p.N, accepting, -1, func(int) bool { return false })
				return []nSucc{{st: s, skey: skey, copy: ncopy, pkey: liveness.ProductKey(skey, ncopy), stutter: true}}, nil
			}
			return nExecAll(p, prop, s, copy, accepting, evs, evs, canon)
		}
		enabled := p.Enabled(s)
		if len(enabled) == 0 {
			ncopy := prop.Next(copy, p.N, accepting, -1, func(int) bool { return false })
			return []nSucc{{st: s, skey: skey, copy: ncopy, pkey: liveness.ProductKey(skey, ncopy), stutter: true}}, nil
		}
		return nExecAll(p, prop, s, copy, accepting, enabled, enabled, canon)
	}

	type redFrame struct {
		via   nSucc
		succs []nSucc
		next  int
	}
	// redSearch runs the nested (red) DFS from the accepting seed frame on
	// top of the blue stack. It starts from the seed's own (post-proviso)
	// successors and reports a hit when some red edge closes back onto the
	// blue stack: target →(stack)→ seed →(red path)→ target is an
	// accepting cycle. Red marks share the store under redSuffix; red
	// never un-marks, which is sound because red searches run in
	// post-order of accepting states (the classic nested-DFS argument).
	redSearch := func(seed *nFrame) (hitIdx int, redPath []nSucc, hit bool, rerr error) {
		rstack := []redFrame{{succs: seed.succs}}
		for len(rstack) > 0 {
			if lim.timeExceeded() {
				timeUp = true
				return
			}
			f := &rstack[len(rstack)-1]
			if f.next >= len(f.succs) {
				rstack = rstack[:len(rstack)-1]
				continue
			}
			sc := f.succs[f.next]
			f.next++
			res.Stats.Events++
			if sinfo.OnStack(sc.pkey) {
				for i := range stack {
					if stack[i].pkey == sc.pkey {
						hitIdx = i
						break
					}
				}
				for _, rf := range rstack[1:] {
					redPath = append(redPath, rf.via)
				}
				redPath = append(redPath, sc)
				hit = true
				return
			}
			if store.Seen(sc.pkey + redSuffix) {
				res.Stats.Revisits++
				continue
			}
			res.Stats.RedStates++
			succs, err := redExpand(sc.st, sc.skey, sc.pkey, sc.copy)
			if err != nil {
				rerr = err
				return
			}
			rstack = append(rstack, redFrame{via: sc, succs: succs})
		}
		return
	}

	// violation assembles the lasso result: the stem walks the blue stack
	// up to the cycle-closing target, the cycle walks the rest of the
	// stack and the red path back to the target. Stutter steps carry no
	// event and do not change the protocol state, so they are elided from
	// the trace; a cycle made of stutter steps alone is reported as the
	// deadlock self-loop (CycleLen 0, Stutter true).
	violation := func(hitIdx int, redPath []nSucc) {
		var steps []Step
		for _, fr := range stack[1 : hitIdx+1] {
			if fr.stutter {
				continue
			}
			steps = append(steps, Step{Event: fr.via, StateKey: fr.skey})
		}
		stemLen := len(steps)
		stutterCycle := false
		addCycleStep := func(ev core.Event, skey string, stutter bool) {
			if stutter {
				stutterCycle = true
				return
			}
			steps = append(steps, Step{Event: ev, StateKey: skey})
		}
		for _, fr := range stack[hitIdx+1:] {
			addCycleStep(fr.via, fr.skey, fr.stutter)
		}
		for _, sc := range redPath {
			addCycleStep(sc.ev, sc.skey, sc.stutter)
		}
		res.Verdict = VerdictViolated
		res.Trace = steps
		res.CycleLen = len(steps) - stemLen
		res.Stutter = stutterCycle
		cycle := fmt.Sprintf("%d-step accepting cycle", res.CycleLen)
		if stutterCycle {
			cycle = "deadlocked accepting state (stutter cycle)"
		}
		res.Violation = fmt.Errorf("liveness violation of %q: %d-step stem to a %s", prop.Name, stemLen, cycle)
	}

	ikey := canon(init)
	ipkey := liveness.ProductKey(ikey, 0)
	store.Seen(ipkey)
	res.Stats.States = 1
	if err := push(nSucc{st: init, skey: ikey, copy: 0, pkey: ipkey}); err != nil {
		return nil, err
	}

	for len(stack) > 0 {
		f := &stack[len(stack)-1]
		if f.next >= len(f.succs) {
			if f.accepting {
				hitIdx, redPath, hit, rerr := redSearch(f)
				if rerr != nil {
					return nil, rerr
				}
				if hit {
					violation(hitIdx, redPath)
					return &res, nil
				}
				if timeUp {
					limited = true
					break
				}
			}
			delete(sinfo.onStack, f.pkey)
			stack = stack[:len(stack)-1]
			continue
		}
		sc := f.succs[f.next]
		f.next++
		res.Stats.Events++
		if store.Seen(sc.pkey) {
			res.Stats.Revisits++
			continue
		}
		res.Stats.States++
		// sc sits one event below the frame on top of the stack — the same
		// depth convention as the safety engines, counted on the product.
		if len(stack) > res.Stats.MaxDepth {
			res.Stats.MaxDepth = len(stack)
		}
		if lim.statesExceeded(res.Stats.States) || lim.timeExceeded() {
			limited = true
			break
		}
		if lim.depthExceeded(len(stack)) {
			limited = true
			continue
		}
		if err := push(sc); err != nil {
			return nil, err
		}
	}

	if limited {
		res.Verdict = VerdictLimit
	} else {
		res.Verdict = VerdictVerified
	}
	return &res, nil
}

// ParallelNDFS runs NDFS with ParallelDFS's speculative-workers +
// sequential-commit-walk architecture: Options.Workers speculators
// (default runtime.GOMAXPROCS(0)) steal unexplored blue sibling subtrees
// from the deep end of the blue stack and precompute product expansion
// records, while the single blue/red commit walk replays the exact
// sequential NDFS order — verdicts, statistics (minus Duration and the
// spill counters) and lasso traces are bit-identical to NDFS for any
// worker count, on any store. The red sweep is untouched by speculation:
// it recomputes successors on the commit goroutine alone, so its marks and
// order are sequential by construction.
//
// The soundness contract matches ParallelDFS: Enabled/Execute, the Accept
// predicate, the Canon function and the Expander must be pure and safe for
// concurrent use, and the store must tolerate concurrent Has probes during
// Seen inserts (Options.concurrentStore wraps non-concurrent stores).
func ParallelNDFS(p *core.Protocol, opts Options) (*Result, error) {
	if err := ndfsCheckOpts(opts); err != nil {
		return nil, err
	}
	var (
		prop  = opts.Property
		store = opts.concurrentStore()
		canon = opts.canon()
		exp   = opts.expander()
		memo  specMemo[nRecord]
		queue = newSpecQueue[nTarget]()
		stop  atomic.Bool
		wg    sync.WaitGroup
		probe func(string) bool
	)
	if prop.WeakFair {
		exp = FullExpander{} // same C2-under-fairness rule as the commit walk
	}
	if hs, ok := store.(HasStore); ok {
		probe = hs.Has
	}
	depthBudget := opts.stealDepth()
	workers := opts.workers()
	wg.Add(workers)
	for w := 0; w < workers; w++ {
		go func() {
			defer wg.Done()
			type specNode struct {
				st    *core.State
				copy  int
				pkey  string
				depth int
			}
			nodes := make([]specNode, 0, 64)
			for {
				tgt, ok := queue.pop()
				if !ok {
					return
				}
				nodes = append(nodes[:0], specNode{st: tgt.st, copy: tgt.copy, pkey: tgt.pkey})
				budget := pdStealBudget
				for len(nodes) > 0 && budget > 0 && !stop.Load() && !memo.full() {
					n := nodes[len(nodes)-1]
					nodes = nodes[:len(nodes)-1]
					if memo.has(n.pkey) || (probe != nil && probe(n.pkey)) {
						continue
					}
					rec := nBuild(p, prop, n.st, n.copy, exp, canon, noProviso{})
					switch memo.put(n.pkey, rec) {
					case pdStored:
						// fresh entry: fall through to expand it below
					case pdDup:
						continue
					case pdFull:
						nodes = nodes[:0]
						continue
					}
					budget--
					if rec.err != nil || n.depth+1 > depthBudget {
						continue
					}
					for i := len(rec.succs) - 1; i >= 0; i-- {
						sc := &rec.succs[i]
						nodes = append(nodes, specNode{st: sc.st, copy: sc.copy, pkey: sc.pkey, depth: n.depth + 1})
					}
				}
			}
		}()
	}
	spec := &nSpec{
		take: memo.take,
		publish: func(succs []nSucc) {
			// Pending siblings (everything after the child the walk enters
			// next), in reverse sibling order so the earliest sibling sits
			// at the queue's deep end.
			tgts := make([]nTarget, 0, len(succs)-1)
			for i := len(succs) - 1; i >= 1; i-- {
				sc := &succs[i]
				tgts = append(tgts, nTarget{st: sc.st, copy: sc.copy, pkey: sc.pkey})
			}
			queue.publish(tgts)
		},
		close: func() {
			stop.Store(true)
			queue.close()
			wg.Wait()
		},
	}
	return ndfs(p, opts, store, spec)
}
