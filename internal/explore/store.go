package explore

import "hash/fnv"

// Store is the visited-state set of a stateful search.
type Store interface {
	// Seen records key and reports whether it was already present.
	Seen(key string) bool
	// Len returns the number of distinct keys recorded.
	Len() int
}

// ExactStore keeps full canonical keys: collision-free, memory-hungry.
// The zero value is ready to use.
type ExactStore struct {
	m map[string]struct{}
}

// NewExactStore returns an empty exact store.
func NewExactStore() *ExactStore { return &ExactStore{} }

// Seen implements Store.
func (s *ExactStore) Seen(key string) bool {
	if s.m == nil {
		s.m = make(map[string]struct{})
	}
	if _, ok := s.m[key]; ok {
		return true
	}
	s.m[key] = struct{}{}
	return false
}

// Len implements Store.
func (s *ExactStore) Len() int { return len(s.m) }

// HashStore keeps 128-bit FNV-1a fingerprints instead of full keys,
// trading a negligible collision probability for a large memory saving on
// multi-million-state runs (the paper's larger table rows). The zero value
// is ready to use.
type HashStore struct {
	m map[[16]byte]struct{}
}

// NewHashStore returns an empty hashed store.
func NewHashStore() *HashStore { return &HashStore{} }

// Seen implements Store.
func (s *HashStore) Seen(key string) bool {
	if s.m == nil {
		s.m = make(map[[16]byte]struct{})
	}
	h := fnv.New128a()
	h.Write([]byte(key))
	var k [16]byte
	h.Sum(k[:0])
	if _, ok := s.m[k]; ok {
		return true
	}
	s.m[k] = struct{}{}
	return false
}

// Len implements Store.
func (s *HashStore) Len() int { return len(s.m) }

var (
	_ Store = (*ExactStore)(nil)
	_ Store = (*HashStore)(nil)
)
