package explore

import (
	"encoding/binary"
	"math/bits"
)

// Store is the visited-state set of a stateful search.
type Store interface {
	// Seen records key and reports whether it was already present.
	Seen(key string) bool
	// Len returns the number of distinct keys recorded.
	Len() int
}

// BatchStore is a Store with a batched insert fast path. SeenBatch records
// every key and reports, per key, whether it was already present — with the
// same exactly-one-false-per-distinct-key guarantee as Seen, including for
// duplicates within a single batch (the first occurrence reports false).
// Concurrent stores use batching to amortize their per-key locking:
// ShardedStore takes each stripe lock once per batch instead of once per
// key.
type BatchStore interface {
	Store
	// SeenBatch records keys and returns one "was already present" answer
	// per key, index-aligned with keys.
	SeenBatch(keys []string) []bool
}

// HasStore is a Store with a non-mutating membership probe. The sequential
// BFS engine needs it for the queue variant of the ignoring proviso (C3):
// deciding whether a reduced expansion discovered anything new must not
// itself record the probed keys. All stores of this package implement it;
// for a caller-supplied store without Has the proviso degrades
// conservatively (every reduced expansion is promoted to a full one —
// sound, merely unreduced).
type HasStore interface {
	Store
	// Has reports whether key was already recorded, without recording it.
	Has(key string) bool
}

// ConcurrentStore marks a Store whose methods are safe for concurrent
// callers. ParallelBFS uses a marked store directly; an unmarked
// caller-supplied store is serialized behind a mutex instead (see
// Options.concurrentStore). ShardedStore and SpillStore are marked.
type ConcurrentStore interface {
	Store
	// ConcurrencySafe is a marker method with no behavior.
	ConcurrencySafe()
}

// SpillReporter is implemented by stores with a disk tier (SpillStore).
// The engines copy its counters into Stats when a search ends, so spill
// activity shows up next to the search statistics.
type SpillReporter interface {
	// SpillStats reports run files written (merges included), total bytes
	// written to disk, and membership probes that consulted the disk
	// tier.
	SpillStats() (runs int, spilledBytes, diskProbes int64)
}

// captureStoreStats copies store-side counters into st once a search ends:
// spill counters when the store has a disk tier, and fill/omission figures
// when the store is lossy. A no-op for exact in-memory stores.
func captureStoreStats(store Store, st *Stats) {
	if sr, ok := store.(SpillReporter); ok {
		st.SpillRuns, st.SpillBytes, st.DiskProbes = sr.SpillStats()
	}
	if br, ok := store.(BitstateReporter); ok {
		st.BitstateFill, st.BitstateOmission = br.BitstateStats()
	}
}

// FailableStore is implemented by stores whose membership probes can fail
// after the fact — probes have no error return, so a failing tier (a
// SpillStore disk read) answers "not present" and records the failure for
// Err. The engines check Err once the search ends and turn a recorded
// failure into a search error: a probe that silently under-reports
// membership could otherwise cost termination on cyclic graphs.
// Caller-supplied stores with deferred failure modes get the same
// treatment by implementing this interface.
type FailableStore interface {
	Store
	// Err returns the first deferred probe failure, or nil.
	Err() error
}

// storeErr surfaces a deferred store failure once a search has finished;
// in-memory stores never fail.
func storeErr(store Store) error {
	if s, ok := store.(FailableStore); ok {
		return s.Err()
	}
	return nil
}

// seenBatch flushes keys through the store's batched fast path when it has
// one, and degenerates to a per-key loop otherwise.
func seenBatch(store Store, keys []string) []bool {
	if bs, ok := store.(BatchStore); ok {
		return bs.SeenBatch(keys)
	}
	dups := make([]bool, len(keys))
	for i, k := range keys {
		dups[i] = store.Seen(k)
	}
	return dups
}

// 128-bit FNV-1a constants (matching hash/fnv): the offset basis and the
// prime 2^88 + 0x13b.
const (
	fnvOffset128Hi = 0x6c62272e07bb0142
	fnvOffset128Lo = 0x62b821756295c58d
	fnvPrime128Lo  = 0x13b
	fnvPrime128Hi  = 24 // the prime's high part is 1 << (64 + 24)
)

// fingerprint is the 128-bit FNV-1a sum of key, bit-identical to
// hash/fnv's New128a but allocation-free: the stdlib hasher escapes to the
// heap on every call, which dominated the profile of HashStore.Seen (one
// hasher per visited-set probe). Both sequential stores and the sharded
// concurrent store share this helper; ShardedStore additionally selects
// its stripe from the last byte — FNV-1a mixes low-order bits first, so
// the low byte is well distributed even for keys that differ only near
// the end (state keys share long structural prefixes), while the high
// byte would collapse them onto a few stripes.
func fingerprint(key string) [16]byte {
	hi, lo := uint64(fnvOffset128Hi), uint64(fnvOffset128Lo)
	for i := 0; i < len(key); i++ {
		lo ^= uint64(key[i])
		// Multiply the 128-bit state by the prime modulo 2^128.
		carry, plo := bits.Mul64(fnvPrime128Lo, lo)
		hi = carry + lo<<fnvPrime128Hi + fnvPrime128Lo*hi
		lo = plo
	}
	var k [16]byte
	binary.BigEndian.PutUint64(k[:8], hi)
	binary.BigEndian.PutUint64(k[8:], lo)
	return k
}

// ExactStore keeps full canonical keys: collision-free, memory-hungry.
// The zero value is ready to use.
type ExactStore struct {
	m map[string]struct{}
}

// NewExactStore returns an empty exact store.
func NewExactStore() *ExactStore { return &ExactStore{} }

// Seen implements Store.
func (s *ExactStore) Seen(key string) bool {
	if s.m == nil {
		s.m = make(map[string]struct{})
	}
	if _, ok := s.m[key]; ok {
		return true
	}
	s.m[key] = struct{}{}
	return false
}

// Has implements HasStore.
func (s *ExactStore) Has(key string) bool {
	_, ok := s.m[key]
	return ok
}

// Len implements Store.
func (s *ExactStore) Len() int { return len(s.m) }

// HashStore keeps 128-bit FNV-1a fingerprints instead of full keys,
// trading a negligible collision probability for a large memory saving on
// multi-million-state runs (the paper's larger table rows). The zero value
// is ready to use.
type HashStore struct {
	m map[[16]byte]struct{}
}

// NewHashStore returns an empty hashed store.
func NewHashStore() *HashStore { return &HashStore{} }

// Seen implements Store.
func (s *HashStore) Seen(key string) bool {
	if s.m == nil {
		s.m = make(map[[16]byte]struct{})
	}
	k := fingerprint(key)
	if _, ok := s.m[k]; ok {
		return true
	}
	s.m[k] = struct{}{}
	return false
}

// Has implements HasStore.
func (s *HashStore) Has(key string) bool {
	_, ok := s.m[fingerprint(key)]
	return ok
}

// Len implements Store.
func (s *HashStore) Len() int { return len(s.m) }

var (
	_ HasStore = (*ExactStore)(nil)
	_ HasStore = (*HashStore)(nil)
)
