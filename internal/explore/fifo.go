package explore

// fifo is the BFS work queue: a slice with a head index instead of the
// idiomatic-but-leaky queue = queue[1:]. Re-slicing keeps every popped
// element reachable through the backing array until the next append
// reallocation, so a long BFS run retains (and the GC must repeatedly
// scan) nearly every dequeued state of the run. fifo zeroes each slot on
// pop, releasing the state for collection immediately, and compacts the
// backing slice once the dead prefix dominates, keeping the retained
// capacity proportional to the live queue's high-water mark rather than
// to the whole run. TestFIFOBoundedRetention is the regression guard.
type fifo[T any] struct {
	buf  []T
	head int
}

// fifoCompactMin is the dead-prefix length below which compaction is not
// worth the copy.
const fifoCompactMin = 1024

func (q *fifo[T]) push(v T) { q.buf = append(q.buf, v) }

func (q *fifo[T]) pop() T {
	var zero T
	v := q.buf[q.head]
	q.buf[q.head] = zero // release the reference for the GC
	q.head++
	if q.head >= fifoCompactMin && q.head*2 >= len(q.buf) {
		n := copy(q.buf, q.buf[q.head:])
		clear(q.buf[n:]) // the copied-from tail still holds references
		q.buf = q.buf[:n]
		q.head = 0
	}
	return v
}

func (q *fifo[T]) len() int { return len(q.buf) - q.head }

// reset empties the queue, dropping all references.
func (q *fifo[T]) reset() {
	clear(q.buf)
	q.buf = q.buf[:0]
	q.head = 0
}

// retained reports the capacity currently pinned by the backing array —
// exposed for the bounded-retention regression test and benchmark.
func (q *fifo[T]) retained() int { return cap(q.buf) }
