package explore

import (
	"mpbasset/internal/core"
)

// noProviso is the Proviso of searches that need no ignoring discipline
// (stateless search, whose depth bound guarantees termination and which
// never claims Verified on a cut run).
type noProviso struct{}

func (noProviso) OnStack(string) bool    { return false }
func (noProviso) Ignoring([]string) bool { return false }

type parentLink struct {
	parent string
	ev     core.Event
}

// bfsProviso is the queue variant of the ignoring proviso (C3) shared by
// the BFS engines: a reduced expansion of a node may be kept only if it
// discovers at least one state that was not yet visited when the node's
// level began. Otherwise the reduced expansion enqueues nothing new, the
// deferred events would never be retried on a cycle, and the engine
// promotes the expansion to a full one.
//
// Membership in the level-start snapshot is computed without copying the
// store: a key is in the snapshot iff the store already holds it AND it
// was not first inserted during the current level (the fresh set). The
// sequential engine maintains fresh incrementally in FIFO order;
// ParallelBFS derives the same predicate after its level barrier from the
// per-successor insert outcomes — both evaluate the identical,
// order-independent "visited before this level began" test, which is what
// keeps parallel verdicts bit-identical to sequential ones.
type bfsProviso struct {
	has   HasStore // nil when the store cannot answer membership
	fresh map[string]struct{}
	level int
}

// newBFSProviso builds the proviso for store. Tracking is only armed when
// a reducing expander is present; unreduced searches skip the per-state
// bookkeeping entirely.
func newBFSProviso(store Store, exp Expander) *bfsProviso {
	if _, full := exp.(FullExpander); full {
		return nil
	}
	b := &bfsProviso{fresh: make(map[string]struct{})}
	b.has, _ = store.(HasStore)
	return b
}

// OnStack implements Proviso: BFS has no stack.
func (b *bfsProviso) OnStack(string) bool { return false }

// Ignoring implements Proviso: true iff every successor was already
// visited when the current level began. An unknown membership (store
// without Has) counts as visited, conservatively promoting the expansion.
func (b *bfsProviso) Ignoring(succKeys []string) bool {
	for _, k := range succKeys {
		if b.has == nil {
			continue
		}
		//lint:has-ok documented proviso site: the level-snapshot test only needs membership of states visited before this level, and newBFSProviso leaves has nil (conservative full promotion) for stores that cannot answer exactly
		if !b.has.Has(k) {
			return false
		}
		if _, fresh := b.fresh[k]; fresh {
			return false
		}
	}
	return true
}

// advance resets the fresh set when the search crosses into a new level.
func (b *bfsProviso) advance(depth int) {
	if depth != b.level {
		b.level = depth
		clear(b.fresh)
	}
}

// markNew records a key first inserted during the current level.
func (b *bfsProviso) markNew(key string) { b.fresh[key] = struct{}{} }

// succKeys collects the canonical keys of succs into buf.
func succKeys(buf []string, succs []dfsSucc) []string {
	buf = buf[:0]
	for i := range succs {
		buf = append(buf, succs[i].key)
	}
	return buf
}

// BFS runs a stateful breadth-first search. Counterexamples are
// shortest-path when TrackTrace is set. BFS enforces the queue variant of
// the ignoring proviso (C3): a reduced expansion whose successors were all
// visited before its level began is promoted to a full expansion (counted
// in Stats.ProvisoExpansions), keeping partial-order reduction sound on
// cyclic state graphs — the BFS counterpart of the DFS stack proviso.
func BFS(p *core.Protocol, opts Options) (result *Result, err error) {
	init, err := p.InitialState()
	if err != nil {
		return nil, err
	}
	var (
		res     Result
		store   = opts.store()
		canon   = opts.canon()
		exp     = opts.expander()
		prov    = newBFSProviso(store, exp)
		lim     = newLimiter(opts)
		limited bool
		keyBuf  []string
	)
	defer func() {
		res.Stats.Duration = lim.elapsed()
		captureStoreStats(store, &res.Stats)
		if serr := storeErr(store); serr != nil && err == nil {
			result, err = nil, serr
		}
	}()

	type node struct {
		st    *core.State
		key   string
		depth int
	}
	var parents map[string]parentLink
	if opts.TrackTrace {
		parents = make(map[string]parentLink)
	}
	trace := func(key string) []Step { return traceFrom(parents, key) }

	ikey := canon(init)
	store.Seen(ikey)
	res.Stats.States = 1
	if verr := p.CheckInvariant(init); verr != nil {
		res.Verdict = VerdictViolated
		res.Violation = verr
		return &res, nil
	}
	var queue fifo[node]
	queue.push(node{st: init, key: ikey})

	for queue.len() > 0 {
		n := queue.pop()
		if n.depth > res.Stats.MaxDepth {
			res.Stats.MaxDepth = n.depth
		}
		if prov != nil {
			prov.advance(n.depth)
		}
		if lim.depthExceeded(n.depth) {
			limited = true
			continue
		}
		enabled := p.Enabled(n.st)
		if len(enabled) == 0 {
			res.Stats.Deadlocks++
			continue
		}
		var chosen []core.Event
		if prov != nil {
			chosen = exp.Expand(n.st, enabled, prov)
		} else {
			chosen = enabled
		}
		reduced := len(chosen) < len(enabled)
		succs, err := execAll(p, n.st, chosen, canon)
		if err != nil {
			return nil, err
		}
		if reduced {
			keyBuf = succKeys(keyBuf, succs)
			if prov.Ignoring(keyBuf) {
				// Queue proviso (C3): the reduced expansion rediscovered
				// only states visited before this level — its deferred
				// events could be ignored forever around a cycle, so the
				// state is re-expanded fully.
				reduced = false
				res.Stats.ProvisoExpansions++
				if succs, err = execAll(p, n.st, enabled, canon); err != nil {
					return nil, err
				}
			}
		}
		if reduced {
			res.Stats.ReducedExpansions++
		} else {
			res.Stats.FullExpansions++
		}
		for i := range succs {
			sc := &succs[i]
			res.Stats.Events++
			if store.Seen(sc.key) {
				res.Stats.Revisits++
				continue
			}
			if prov != nil {
				prov.markNew(sc.key)
			}
			res.Stats.States++
			if parents != nil {
				parents[sc.key] = parentLink{parent: n.key, ev: sc.ev}
			}
			if verr := p.CheckInvariant(sc.st); verr != nil {
				res.Verdict = VerdictViolated
				res.Violation = verr
				res.Trace = trace(sc.key)
				return &res, nil
			}
			if lim.statesExceeded(res.Stats.States) || lim.timeExceeded() {
				limited = true
				queue.reset()
				break
			}
			queue.push(node{st: sc.st, key: sc.key, depth: n.depth + 1})
		}
	}

	if limited {
		res.Verdict = VerdictLimit
	} else {
		res.Verdict = VerdictVerified
	}
	return &res, nil
}
