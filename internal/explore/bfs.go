package explore

import (
	"mpbasset/internal/core"
)

type noStack struct{}

func (noStack) OnStack(string) bool { return false }

type parentLink struct {
	parent string
	ev     core.Event
}

// BFS runs a stateful breadth-first search. Counterexamples are
// shortest-path when TrackTrace is set. BFS has no stack, so the cycle
// proviso degenerates: combining BFS with a reducing expander is sound only
// on acyclic state graphs (which all bundled protocol models are); prefer
// DFS otherwise.
func BFS(p *core.Protocol, opts Options) (*Result, error) {
	init, err := p.InitialState()
	if err != nil {
		return nil, err
	}
	var (
		res     Result
		store   = opts.store()
		canon   = opts.canon()
		exp     = opts.expander()
		lim     = newLimiter(opts)
		limited bool
	)
	defer func() { res.Stats.Duration = lim.elapsed() }()

	type node struct {
		st    *core.State
		key   string
		depth int
	}
	var parents map[string]parentLink
	if opts.TrackTrace {
		parents = make(map[string]parentLink)
	}
	trace := func(key string) []Step { return traceFrom(parents, key) }

	ikey := canon(init)
	store.Seen(ikey)
	res.Stats.States = 1
	if verr := p.CheckInvariant(init); verr != nil {
		res.Verdict = VerdictViolated
		res.Violation = verr
		return &res, nil
	}
	var queue fifo[node]
	queue.push(node{st: init, key: ikey})

	for queue.len() > 0 {
		n := queue.pop()
		if n.depth > res.Stats.MaxDepth {
			res.Stats.MaxDepth = n.depth
		}
		if lim.depthExceeded(n.depth) {
			limited = true
			continue
		}
		enabled := p.Enabled(n.st)
		if len(enabled) == 0 {
			res.Stats.Deadlocks++
			continue
		}
		chosen := exp.Expand(n.st, enabled, noStack{})
		if len(chosen) < len(enabled) {
			res.Stats.ReducedExpansions++
		} else {
			res.Stats.FullExpansions++
		}
		for _, ev := range chosen {
			ns, err := p.Execute(n.st, ev)
			if err != nil {
				return nil, err
			}
			res.Stats.Events++
			key := canon(ns)
			if store.Seen(key) {
				res.Stats.Revisits++
				continue
			}
			res.Stats.States++
			if parents != nil {
				parents[key] = parentLink{parent: n.key, ev: ev}
			}
			if verr := p.CheckInvariant(ns); verr != nil {
				res.Verdict = VerdictViolated
				res.Violation = verr
				res.Trace = trace(key)
				return &res, nil
			}
			if lim.statesExceeded(res.Stats.States) || lim.timeExceeded() {
				limited = true
				queue.reset()
				break
			}
			queue.push(node{st: ns, key: key, depth: n.depth + 1})
		}
	}

	if limited {
		res.Verdict = VerdictLimit
	} else {
		res.Verdict = VerdictVerified
	}
	return &res, nil
}
