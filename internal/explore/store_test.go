package explore

import (
	"fmt"
	"hash/fnv"
	"math/rand"
	"strings"
	"testing"
)

// TestFingerprintMatchesStdlibFNV pins the hand-inlined 128-bit FNV-1a to
// the stdlib implementation it replaces: any divergence would silently
// change every hashed store's key space.
func TestFingerprintMatchesStdlibFNV(t *testing.T) {
	rng := rand.New(rand.NewSource(42))
	keys := []string{"", "a", "ab", "proc0:val1|proc1:val2|bag{m1,m2}", strings.Repeat("x", 4096)}
	for i := 0; i < 500; i++ {
		b := make([]byte, rng.Intn(64))
		for j := range b {
			b[j] = byte(rng.Intn(256))
		}
		keys = append(keys, string(b))
	}
	for _, key := range keys {
		h := fnv.New128a()
		h.Write([]byte(key))
		var want [16]byte
		h.Sum(want[:0])
		if got := fingerprint(key); got != want {
			t.Fatalf("fingerprint(%q) = %x, stdlib FNV-128a %x", key, got, want)
		}
	}
}

// TestStoreSeenAllocs is the allocs/op guard for the visited-set hot path:
// probing an already-present key must not allocate in any store — the
// stdlib hasher HashStore used to build per call escaped to the heap on
// every probe.
func TestStoreSeenAllocs(t *testing.T) {
	keys := make([]string, 64)
	for i := range keys {
		keys[i] = fmt.Sprintf("proc%d:val%d|bag{m%d}", i%4, i, i%7)
	}
	stores := []struct {
		name  string
		store Store
	}{
		{"HashStore", NewHashStore()},
		{"ExactStore", NewExactStore()},
		{"ShardedHash", NewShardedHashStore()},
		{"ShardedExact", NewShardedExactStore()},
	}
	for _, st := range stores {
		t.Run(st.name, func(t *testing.T) {
			for _, k := range keys {
				st.store.Seen(k)
			}
			var i int
			allocs := testing.AllocsPerRun(200, func() {
				st.store.Seen(keys[i%len(keys)])
				i++
			})
			if allocs != 0 {
				t.Errorf("Seen on present keys allocates %.1f objects/op, want 0", allocs)
			}
		})
	}
}

// BenchmarkFingerprint guards the allocation-free claim and the raw
// throughput of the shared fingerprint helper.
func BenchmarkFingerprint(b *testing.B) {
	key := "proc0:val17|proc1:val3|proc2:val9|bag{READ_REPL:0>2,ACK:1>0}"
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		_ = fingerprint(key)
	}
}

// BenchmarkStoreSeenHot measures the steady-state (key already present)
// visited-set probe across the stores; allocs/op must be zero.
func BenchmarkStoreSeenHot(b *testing.B) {
	keys := make([]string, 1<<12)
	for i := range keys {
		keys[i] = fmt.Sprintf("proc%d:val%d|bag{m%d}", i%4, i, i%97)
	}
	stores := []struct {
		name string
		mk   func() Store
	}{
		{"hash", func() Store { return NewHashStore() }},
		{"sharded-hash", func() Store { return NewShardedHashStore() }},
	}
	for _, st := range stores {
		b.Run(st.name, func(b *testing.B) {
			store := st.mk()
			for _, k := range keys {
				store.Seen(k)
			}
			b.ReportAllocs()
			b.ResetTimer()
			for i := 0; i < b.N; i++ {
				store.Seen(keys[i%len(keys)])
			}
		})
	}
}
