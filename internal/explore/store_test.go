package explore

import (
	"fmt"
	"hash/fnv"
	"math/rand"
	"strings"
	"testing"
)

// TestFingerprintMatchesStdlibFNV pins the hand-inlined 128-bit FNV-1a to
// the stdlib implementation it replaces: any divergence would silently
// change every hashed store's key space.
func TestFingerprintMatchesStdlibFNV(t *testing.T) {
	rng := rand.New(rand.NewSource(42))
	keys := []string{"", "a", "ab", "proc0:val1|proc1:val2|bag{m1,m2}", strings.Repeat("x", 4096)}
	for i := 0; i < 500; i++ {
		b := make([]byte, rng.Intn(64))
		for j := range b {
			b[j] = byte(rng.Intn(256))
		}
		keys = append(keys, string(b))
	}
	for _, key := range keys {
		h := fnv.New128a()
		h.Write([]byte(key))
		var want [16]byte
		h.Sum(want[:0])
		if got := fingerprint(key); got != want {
			t.Fatalf("fingerprint(%q) = %x, stdlib FNV-128a %x", key, got, want)
		}
	}
}

// FuzzFingerprint128 pins the allocation-free 128-bit FNV-1a against
// hash/fnv on arbitrary canonical keys — the fuzzing counterpart of
// TestFingerprintMatchesStdlibFNV. Every hashed store (HashStore,
// ShardedStore, SpillStore, disk runs included) shares this function, so
// a divergence would silently split their key spaces.
func FuzzFingerprint128(f *testing.F) {
	f.Add([]byte(nil))
	f.Add([]byte(""))
	f.Add([]byte("a"))
	f.Add([]byte("proc0:val1|proc1:val2|bag{m1,m2}"))
	f.Add([]byte(strings.Repeat("x", 4096)))
	f.Add([]byte{0x00, 0xff, 0x80, 0x7f})
	f.Fuzz(func(t *testing.T, data []byte) {
		h := fnv.New128a()
		h.Write(data)
		var want [16]byte
		h.Sum(want[:0])
		if got := fingerprint(string(data)); got != want {
			t.Fatalf("fingerprint(%x) = %x, stdlib FNV-128a %x", data, got, want)
		}
	})
}

// TestFingerprintCollisionBehavior documents what a 128-bit fingerprint
// collision would do to each store mode. The fingerprint stores
// (HashStore, and SpillStore's tiers) retain only the fingerprint, so two
// distinct keys with equal fingerprints would be conflated — simulated
// here by pre-seeding the stores with the victim's fingerprint under a
// phantom "other" key. The exact stores (ExactStore, ShardedStore in
// exact mode — the ExactStates option) key on the full canonical string:
// no fingerprint ever decides membership on their path, so they are
// immune by construction, not merely by probability.
func TestFingerprintCollisionBehavior(t *testing.T) {
	const victim = "proc0:val1|proc1:val2|bag{m1}"

	// HashStore: membership is decided by the fingerprint alone.
	hs := NewHashStore()
	hs.m = map[[16]byte]struct{}{fingerprint(victim): {}}
	if !hs.Seen(victim) {
		t.Error("HashStore: a colliding fingerprint must conflate the victim (dup expected)")
	}

	// SpillStore: both tiers hold bare fingerprints. Seed the hot tier
	// with the colliding fingerprint, spill it to disk, and the victim
	// must still be conflated by the disk probe.
	sp, err := NewSpillStore(SpillConfig{BudgetBytes: 1, Dir: t.TempDir()})
	if err != nil {
		t.Fatal(err)
	}
	defer sp.Close()
	if sp.seenFP(fingerprint(victim)) {
		t.Fatal("phantom colliding insert reported dup")
	}
	if runs, _, _ := sp.SpillStats(); runs == 0 {
		t.Fatal("one-entry budget did not spill — the disk tier is not exercised")
	}
	if !sp.Seen(victim) {
		t.Error("SpillStore: a colliding fingerprint on disk must conflate the victim (dup expected)")
	}

	// ExactStore: the full key is the map key; a would-be collision is
	// invisible because no fingerprint participates in membership.
	es := NewExactStore()
	es.Seen("some-other-key-entirely")
	if es.Seen(victim) {
		t.Error("ExactStore: distinct key reported dup")
	}
	if _, ok := es.m[victim]; !ok {
		t.Error("ExactStore does not retain the full canonical key")
	}

	// ShardedStore in exact mode: the fingerprint only selects the
	// stripe; membership is still decided on the full key.
	se := NewShardedExactStore()
	se.Seen("some-other-key-entirely")
	if se.Seen(victim) {
		t.Error("exact ShardedStore: distinct key reported dup")
	}
}

// TestStoreSeenAllocs is the allocs/op guard for the visited-set hot path:
// probing an already-present key must not allocate in any store — the
// stdlib hasher HashStore used to build per call escaped to the heap on
// every probe.
func TestStoreSeenAllocs(t *testing.T) {
	keys := make([]string, 64)
	for i := range keys {
		keys[i] = fmt.Sprintf("proc%d:val%d|bag{m%d}", i%4, i, i%7)
	}
	stores := []struct {
		name  string
		store Store
	}{
		{"HashStore", NewHashStore()},
		{"ExactStore", NewExactStore()},
		{"ShardedHash", NewShardedHashStore()},
		{"ShardedExact", NewShardedExactStore()},
	}
	for _, st := range stores {
		t.Run(st.name, func(t *testing.T) {
			for _, k := range keys {
				st.store.Seen(k)
			}
			var i int
			allocs := testing.AllocsPerRun(200, func() {
				st.store.Seen(keys[i%len(keys)])
				i++
			})
			if allocs != 0 {
				t.Errorf("Seen on present keys allocates %.1f objects/op, want 0", allocs)
			}
		})
	}
}

// BenchmarkFingerprint guards the allocation-free claim and the raw
// throughput of the shared fingerprint helper.
func BenchmarkFingerprint(b *testing.B) {
	key := "proc0:val17|proc1:val3|proc2:val9|bag{READ_REPL:0>2,ACK:1>0}"
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		_ = fingerprint(key)
	}
}

// BenchmarkStoreSeenHot measures the steady-state (key already present)
// visited-set probe across the stores; allocs/op must be zero.
func BenchmarkStoreSeenHot(b *testing.B) {
	keys := make([]string, 1<<12)
	for i := range keys {
		keys[i] = fmt.Sprintf("proc%d:val%d|bag{m%d}", i%4, i, i%97)
	}
	stores := []struct {
		name string
		mk   func() Store
	}{
		{"hash", func() Store { return NewHashStore() }},
		{"sharded-hash", func() Store { return NewShardedHashStore() }},
	}
	for _, st := range stores {
		b.Run(st.name, func(b *testing.B) {
			store := st.mk()
			for _, k := range keys {
				store.Seen(k)
			}
			b.ReportAllocs()
			b.ResetTimer()
			for i := 0; i < b.N; i++ {
				store.Seen(keys[i%len(keys)])
			}
		})
	}
}
