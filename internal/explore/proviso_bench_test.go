package explore

import (
	"testing"

	"mpbasset/internal/core"
	"mpbasset/internal/mptest"
)

// BenchmarkQueueProviso measures the queue-proviso overhead of the BFS
// engines on cyclic models: the per-level fresh-set bookkeeping plus the
// promoted re-expansions, comparing unreduced search (no proviso
// bookkeeping at all), reduced search (proviso armed and firing), and the
// 8-worker parallel engine's post-barrier evaluation. Part of the CI
// bench-smoke pass, so the proviso path cannot rot.
func BenchmarkQueueProviso(b *testing.B) {
	models := []struct {
		name string
		cfg  mptest.GenConfig
	}{
		{"bounce", mptest.GenConfig{Seed: 11, Quorums: true, Cycles: true, CyclePriority: 3}},
		{"ring4", mptest.GenConfig{Seed: 11, Quorums: true, Cycles: true, RingSize: 4, CyclePriority: 3}},
	}
	for _, m := range models {
		p, err := mptest.Random(m.cfg)
		if err != nil {
			b.Fatal(err)
		}
		runs := []struct {
			name string
			opts Options
			run  func(*core.Protocol, Options) (*Result, error)
		}{
			{"BFS-unreduced", Options{}, BFS},
			{"BFS-reduced", Options{Expander: loopExpander{}}, BFS},
			{"ParallelBFS-8-reduced", Options{Expander: loopExpander{}, Workers: 8}, ParallelBFS},
		}
		for _, r := range runs {
			b.Run(m.name+"/"+r.name, func(b *testing.B) {
				b.ReportAllocs()
				var proviso int
				for i := 0; i < b.N; i++ {
					res, err := r.run(p, r.opts)
					if err != nil {
						b.Fatal(err)
					}
					if res.Verdict != VerdictVerified {
						b.Fatalf("verdict %s", res.Verdict)
					}
					proviso = res.Stats.ProvisoExpansions
				}
				b.ReportMetric(float64(proviso), "proviso-expansions")
			})
		}
	}
}
