package explore

import (
	"fmt"
	"io"
	"sort"
	"strings"

	"mpbasset/internal/core"
)

// RenderTrace writes an annotated counterexample: for every step, the
// executed event, the local-state change of the executing process, and the
// messages added to or removed from the bag. It replays the trace, so it
// also re-validates it (an invalid trace yields an error).
//
// Example output for a storage race:
//
//  1. 0/W_START
//     local 0: W0,0,0,0 -> Ww1,0,0,0
//     +sent: 0>1:WRITE{t1v10}, 0>2:WRITE{t1v10}, 0>3:WRITE{t1v10}
func RenderTrace(w io.Writer, p *core.Protocol, trace []Step) error {
	s, err := p.InitialState()
	if err != nil {
		return err
	}
	for i, step := range trace {
		ns, err := p.Execute(s, step.Event)
		if err != nil {
			return fmt.Errorf("render step %d (%s): %w", i+1, step.Event, err)
		}
		fmt.Fprintf(w, "%3d. %s\n", i+1, step.Event)
		proc := step.Event.T.Proc
		before, after := s.Local(proc).Key(), ns.Local(proc).Key()
		if before != after {
			fmt.Fprintf(w, "      local %d: %s -> %s\n", proc, before, after)
		}
		added, removed := bagDiff(s.Msgs, ns.Msgs)
		if len(removed) > 0 {
			fmt.Fprintf(w, "      -consumed: %s\n", strings.Join(removed, ", "))
		}
		if len(added) > 0 {
			fmt.Fprintf(w, "      +sent: %s\n", strings.Join(added, ", "))
		}
		s = ns
	}
	if verr := p.CheckInvariant(s); verr != nil {
		fmt.Fprintf(w, "  => violation: %v\n", verr)
	}
	return nil
}

// bagDiff returns the message keys added to and removed from the bag,
// sorted, with multiplicities rendered as repeats.
func bagDiff(before, after *core.Bag) (added, removed []string) {
	counts := make(map[string]int)
	keyOf := make(map[string]core.Message)
	before.Each(func(m core.Message, n int) {
		counts[m.Key()] -= n
		keyOf[m.Key()] = m
	})
	after.Each(func(m core.Message, n int) {
		counts[m.Key()] += n
		keyOf[m.Key()] = m
	})
	//lint:nondet-ok diff accumulation commutes; added and removed are sorted below
	for k, d := range counts {
		for i := 0; i < d; i++ {
			added = append(added, k)
		}
		for i := 0; i < -d; i++ {
			removed = append(removed, k)
		}
	}
	sort.Strings(added)
	sort.Strings(removed)
	return added, removed
}
