package explore

import (
	"mpbasset/internal/core"
)

type dfsSucc struct {
	ev  core.Event
	st  *core.State
	key string
}

type dfsFrame struct {
	key   string
	via   core.Event // event that led into this frame (zero for the root)
	succs []dfsSucc
	next  int
}

type dfsStack struct {
	onStack map[string]bool
}

func (d *dfsStack) OnStack(key string) bool { return d.onStack[key] }

// Ignoring implements Proviso with the DFS stack discipline: a reduced
// expansion must be promoted to a full one when some successor is on the
// current search stack, i.e. the reduced expansion would close a cycle on
// which its deferred events could be ignored forever.
func (d *dfsStack) Ignoring(succKeys []string) bool {
	for _, k := range succKeys {
		if d.onStack[k] {
			return true
		}
	}
	return false
}

// DFS runs a stateful depth-first search: every distinct state is visited
// once, the invariant is checked on each visit, and the search stops at the
// first violation with a counterexample trace (the paper's "first bug"
// debugging mode) or when the state space is exhausted.
//
// DFS cooperates with reducing expanders: when a reduced expansion would
// close a cycle back onto the search stack, the state is re-expanded fully
// (the stack variant of the ignoring proviso C3, counted in
// Stats.ProvisoExpansions), keeping POR sound on cyclic state graphs. The
// BFS engines enforce the same proviso with a queue discipline instead.
func DFS(p *core.Protocol, opts Options) (result *Result, err error) {
	init, err := p.InitialState()
	if err != nil {
		return nil, err
	}
	var (
		res     Result
		store   = opts.store()
		canon   = opts.canon()
		exp     = opts.expander()
		lim     = newLimiter(opts)
		stack   []dfsFrame
		sinfo   = &dfsStack{onStack: make(map[string]bool)}
		limited bool
		keyBuf  []string
	)
	defer func() {
		res.Stats.Duration = lim.elapsed()
		captureStoreStats(store, &res.Stats)
		if serr := storeErr(store); serr != nil && err == nil {
			result, err = nil, serr
		}
	}()

	expand := func(s *core.State) ([]dfsSucc, error) {
		enabled := p.Enabled(s)
		if len(enabled) == 0 {
			res.Stats.Deadlocks++
			return nil, nil
		}
		chosen := exp.Expand(s, enabled, sinfo)
		reduced := len(chosen) < len(enabled)
		succs, err := execAll(p, s, chosen, canon)
		if err != nil {
			return nil, err
		}
		if reduced {
			keyBuf = succKeys(keyBuf, succs)
			if sinfo.Ignoring(keyBuf) {
				// Stack proviso (C3): a reduced expansion must not close a
				// cycle on the stack, or the deferred events could be
				// ignored forever.
				reduced = false
				res.Stats.ProvisoExpansions++
				if succs, err = execAll(p, s, enabled, canon); err != nil {
					return nil, err
				}
			}
		}
		if reduced {
			res.Stats.ReducedExpansions++
		} else {
			res.Stats.FullExpansions++
		}
		return succs, nil
	}

	push := func(s *core.State, key string, via core.Event) error {
		sinfo.onStack[key] = true
		succs, err := expand(s)
		if err != nil {
			return err
		}
		stack = append(stack, dfsFrame{key: key, via: via, succs: succs})
		return nil
	}

	trace := func(last *dfsSucc) []Step {
		var steps []Step
		for _, f := range stack[1:] {
			steps = append(steps, Step{Event: f.via, StateKey: f.key})
		}
		if last != nil {
			steps = append(steps, Step{Event: last.ev, StateKey: last.key})
		}
		return steps
	}

	ikey := canon(init)
	store.Seen(ikey)
	res.Stats.States = 1
	if verr := p.CheckInvariant(init); verr != nil {
		res.Verdict = VerdictViolated
		res.Violation = verr
		return &res, nil
	}
	if err := push(init, ikey, core.Event{}); err != nil {
		return nil, err
	}

	for len(stack) > 0 {
		f := &stack[len(stack)-1]
		if f.next >= len(f.succs) {
			delete(sinfo.onStack, f.key)
			stack = stack[:len(stack)-1]
			continue
		}
		sc := f.succs[f.next]
		f.next++
		res.Stats.Events++
		if store.Seen(sc.key) {
			res.Stats.Revisits++
			continue
		}
		res.Stats.States++
		// sc sits one event below the frame on top of the stack, i.e. at
		// depth len(stack) counting the root as 0 — the same convention
		// BFS uses for Stats.MaxDepth and the MaxDepth limit.
		if len(stack) > res.Stats.MaxDepth {
			res.Stats.MaxDepth = len(stack)
		}
		if verr := p.CheckInvariant(sc.st); verr != nil {
			res.Verdict = VerdictViolated
			res.Violation = verr
			res.Trace = trace(&sc)
			return &res, nil
		}
		if lim.statesExceeded(res.Stats.States) || lim.timeExceeded() {
			limited = true
			break
		}
		if lim.depthExceeded(len(stack)) {
			limited = true
			continue
		}
		if err := push(sc.st, sc.key, sc.ev); err != nil {
			return nil, err
		}
	}

	if limited {
		res.Verdict = VerdictLimit
	} else {
		res.Verdict = VerdictVerified
	}
	return &res, nil
}

func execAll(p *core.Protocol, s *core.State, events []core.Event, canon func(*core.State) string) ([]dfsSucc, error) {
	succs := make([]dfsSucc, 0, len(events))
	for _, ev := range events {
		ns, err := p.Execute(s, ev)
		if err != nil {
			return nil, err
		}
		succs = append(succs, dfsSucc{ev: ev, st: ns, key: canon(ns)})
	}
	return succs, nil
}
