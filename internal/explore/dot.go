package explore

import (
	"fmt"
	"io"
	"sort"
	"strings"
)

// WriteDOT renders the state graph in Graphviz DOT format: nodes are
// canonical state keys (abbreviated), the initial state is marked, and
// terminal (deadlock) states are drawn as double circles. Useful for
// inspecting small models:
//
//	g, _ := explore.BuildGraph(p, 10000)
//	g.WriteDOT(os.Stdout)
func (g *Graph) WriteDOT(w io.Writer) error {
	var sb strings.Builder
	sb.WriteString("digraph states {\n")
	sb.WriteString("  rankdir=TB;\n  node [shape=circle, fontsize=9];\n")

	// Stable node numbering: lexicographic over keys.
	keys := make([]string, 0, len(g.Nodes))
	for k := range g.Nodes {
		keys = append(keys, k)
	}
	sort.Strings(keys)
	id := make(map[string]int, len(keys))
	for i, k := range keys {
		id[k] = i
	}
	for _, k := range keys {
		attrs := fmt.Sprintf("label=%q, tooltip=%q", abbreviate(k, 24), k)
		if k == g.Initial {
			attrs += ", style=bold, color=blue"
		}
		if len(g.Edges[k]) == 0 {
			attrs += ", shape=doublecircle"
		}
		fmt.Fprintf(&sb, "  n%d [%s];\n", id[k], attrs)
	}
	for _, from := range keys {
		tos := make([]string, 0, len(g.Edges[from]))
		for to := range g.Edges[from] {
			tos = append(tos, to)
		}
		sort.Strings(tos)
		for _, to := range tos {
			fmt.Fprintf(&sb, "  n%d -> n%d;\n", id[from], id[to])
		}
	}
	sb.WriteString("}\n")
	_, err := io.WriteString(w, sb.String())
	return err
}

// WriteTraceDOT renders a counterexample as a linear DOT chain annotated
// with the executed events, for sharing bug traces.
func WriteTraceDOT(w io.Writer, initial string, trace []Step) error {
	var sb strings.Builder
	sb.WriteString("digraph trace {\n  rankdir=TB;\n  node [shape=box, fontsize=9];\n")
	fmt.Fprintf(&sb, "  s0 [label=%q, style=bold, color=blue];\n", abbreviate(initial, 28))
	for i, st := range trace {
		attrs := fmt.Sprintf("label=%q, tooltip=%q", abbreviate(st.StateKey, 28), st.StateKey)
		if i == len(trace)-1 {
			attrs += ", color=red, style=bold"
		}
		fmt.Fprintf(&sb, "  s%d [%s];\n", i+1, attrs)
		fmt.Fprintf(&sb, "  s%d -> s%d [label=%q];\n", i, i+1, st.Event.String())
	}
	sb.WriteString("}\n")
	_, err := io.WriteString(w, sb.String())
	return err
}

func abbreviate(s string, n int) string {
	if len(s) <= n {
		return s
	}
	return s[:n-1] + "…"
}

// TerminalStates returns the keys of deadlock states, sorted — handy for
// diffing outcomes across models.
func (g *Graph) TerminalStates() []string {
	var out []string
	//lint:nondet-ok filtered key collection; out is sorted before return
	for k := range g.Nodes {
		if len(g.Edges[k]) == 0 {
			out = append(out, k)
		}
	}
	sort.Strings(out)
	return out
}
