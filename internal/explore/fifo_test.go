package explore

import "testing"

// TestFIFOOrder checks plain FIFO semantics across compaction boundaries.
func TestFIFOOrder(t *testing.T) {
	var q fifo[int]
	next := 0 // next value to push
	want := 0 // next value expected from pop
	for round := 0; round < 200; round++ {
		for i := 0; i < 100; i++ {
			q.push(next)
			next++
		}
		for i := 0; i < 80; i++ {
			if got := q.pop(); got != want {
				t.Fatalf("pop = %d, want %d", got, want)
			}
			want++
		}
	}
	for q.len() > 0 {
		if got := q.pop(); got != want {
			t.Fatalf("drain pop = %d, want %d", got, want)
		}
		want++
	}
	if want != next {
		t.Fatalf("popped %d values, pushed %d", want, next)
	}
	q.reset()
	if q.len() != 0 {
		t.Fatalf("len after reset = %d", q.len())
	}
}

// TestFIFOBoundedRetention is the regression guard for the BFS queue
// memory leak: popping with queue = queue[1:] pinned every node of the run
// in the backing array. The fifo must keep the retained capacity
// proportional to the live high-water mark (here ≤ 512 live items) even
// after streaming a million items through, rather than to the total
// pushed.
func TestFIFOBoundedRetention(t *testing.T) {
	var q fifo[*int]
	const (
		total   = 1 << 20
		maxLive = 512
	)
	pushed, popped := 0, 0
	for pushed < total {
		for q.len() < maxLive && pushed < total {
			v := pushed
			q.push(&v)
			pushed++
		}
		for q.len() > maxLive/2 {
			if got := q.pop(); *got != popped {
				t.Fatalf("pop = %d, want %d", *got, popped)
			}
			popped++
		}
	}
	for q.len() > 0 {
		if got := q.pop(); *got != popped {
			t.Fatalf("drain pop = %d, want %d", *got, popped)
		}
		popped++
	}
	if popped != total {
		t.Fatalf("popped %d items, pushed %d", popped, total)
	}
	// The old queue would retain ~total slots here. Allow generous slack
	// for append's growth factor and the compaction threshold.
	if limit := 8 * (maxLive + fifoCompactMin); q.retained() > limit {
		t.Errorf("backing array retains %d slots after streaming %d items with ≤%d live, want ≤ %d",
			q.retained(), total, maxLive, limit)
	}
}

// BenchmarkFIFOStream streams items through a bounded-occupancy queue, the
// BFS access pattern; the retained metric reports the backing capacity the
// queue pins at the end (the leaky queue[1:] pattern retains b.N slots).
func BenchmarkFIFOStream(b *testing.B) {
	var q fifo[int]
	for i := 0; i < b.N; i++ {
		q.push(i)
		if q.len() > 256 {
			q.pop()
		}
	}
	b.ReportMetric(float64(q.retained()), "retained")
}
