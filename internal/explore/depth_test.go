// Cross-engine depth-limit semantics: Options.MaxDepth counts events from
// the initial state (root = 0), states at depth MaxDepth are visited but
// not expanded, and Stats.MaxDepth reports the deepest visited depth. On
// protocols whose states are reached by a unique path, every engine must
// cut the identical slice; on general graphs the BFS engines must still
// agree with each other exactly.
package explore_test

import (
	"fmt"
	"strconv"
	"testing"

	"mpbasset/internal/core"
	"mpbasset/internal/explore"
)

// tick is a bounded counter local state: the chain protocol below steps it
// 0 → chainLen, so the state at counter value d is at depth exactly d and
// is reached by exactly one path — BFS and DFS depths coincide.
type tick struct{ v, limit int }

func (c *tick) Key() string { return strconv.Itoa(c.v) }
func (c *tick) Clone() core.LocalState {
	d := *c
	return &d
}

// chainProtocol is a single process ticking a counter chainLen times: a
// path graph with chainLen+1 states and a deadlock at the end.
func chainProtocol(chainLen int) *core.Protocol {
	return &core.Protocol{
		Name: fmt.Sprintf("chain-%d", chainLen),
		N:    1,
		Init: func() []core.LocalState {
			return []core.LocalState{&tick{limit: chainLen}}
		},
		Transitions: []*core.Transition{{
			Name:       "TICK",
			Proc:       0,
			Quorum:     0,
			LocalGuard: func(l core.LocalState) bool { return l.(*tick).v < l.(*tick).limit },
			Apply:      func(c *core.Ctx) { c.Local.(*tick).v++ },
		}},
	}
}

// TestDepthLimitCrossEngine is the table-driven depth-limit test: on the
// unique-path chain every engine must agree exactly on verdict, States and
// MaxDepth for every bound.
func TestDepthLimitCrossEngine(t *testing.T) {
	const chainLen = 12
	engines := []struct {
		name string
		run  func(opts explore.Options) (*explore.Result, error)
	}{
		{"BFS", func(opts explore.Options) (*explore.Result, error) {
			return explore.BFS(chainProtocol(chainLen), opts)
		}},
		{"DFS", func(opts explore.Options) (*explore.Result, error) {
			return explore.DFS(chainProtocol(chainLen), opts)
		}},
		{"ParallelBFS", func(opts explore.Options) (*explore.Result, error) {
			opts.Workers = 4
			return explore.ParallelBFS(chainProtocol(chainLen), opts)
		}},
	}
	cases := []struct {
		maxDepth     int
		wantVerdict  explore.Verdict
		wantStates   int
		wantMaxDepth int
	}{
		// Unlimited: the whole chain, deepest state at chainLen.
		{0, explore.VerdictVerified, chainLen + 1, chainLen},
		// Bound beyond the graph: nothing cut.
		{chainLen + 5, explore.VerdictVerified, chainLen + 1, chainLen},
		// Bound at the deepest state: it is visited but not expanded, and
		// since it has no successors nothing is lost — still, the engine
		// must report the cut.
		{chainLen, explore.VerdictLimit, chainLen + 1, chainLen},
		// Proper cuts: states at depth ≤ k visited, nothing deeper.
		{chainLen - 1, explore.VerdictLimit, chainLen, chainLen - 1},
		{3, explore.VerdictLimit, 4, 3},
		{1, explore.VerdictLimit, 2, 1},
	}
	for _, eng := range engines {
		for _, tc := range cases {
			t.Run(fmt.Sprintf("%s/maxDepth-%d", eng.name, tc.maxDepth), func(t *testing.T) {
				res, err := eng.run(explore.Options{MaxDepth: tc.maxDepth})
				if err != nil {
					t.Fatal(err)
				}
				if res.Verdict != tc.wantVerdict {
					t.Errorf("verdict = %s, want %s", res.Verdict, tc.wantVerdict)
				}
				if res.Stats.States != tc.wantStates {
					t.Errorf("states = %d, want %d", res.Stats.States, tc.wantStates)
				}
				if res.Stats.MaxDepth != tc.wantMaxDepth {
					t.Errorf("maxDepth = %d, want %d", res.Stats.MaxDepth, tc.wantMaxDepth)
				}
			})
		}
	}
}

// TestDepthLimitBFSEnginesAgreeOnBundledProtocols checks that sequential
// and parallel BFS agree bit-for-bit under depth limits on real protocols
// (DFS is excluded here: on shared-state graphs its first-visit depths are
// path dependent, see Options.MaxDepth).
func TestDepthLimitBFSEnginesAgreeOnBundledProtocols(t *testing.T) {
	for _, pc := range protoCases() {
		t.Run(pc.name, func(t *testing.T) {
			p, _ := buildProto(t, pc)
			for _, maxDepth := range []int{1, 2, 4, 7} {
				xo := explore.Options{MaxDepth: maxDepth, TrackTrace: true}
				seq, err := explore.BFS(p, xo)
				if err != nil {
					t.Fatal(err)
				}
				for _, workers := range []int{1, 4} {
					pxo := xo
					pxo.Workers = workers
					par, err := explore.ParallelBFS(p, pxo)
					if err != nil {
						t.Fatal(err)
					}
					if par.Verdict != seq.Verdict || !statsEqual(par.Stats, seq.Stats) {
						t.Errorf("maxDepth=%d workers=%d: %s %+v, sequential %s %+v",
							maxDepth, workers, par.Verdict, par.Stats, seq.Verdict, seq.Stats)
					}
				}
			}
		})
	}
}
