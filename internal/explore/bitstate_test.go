package explore_test

import (
	"fmt"
	"testing"

	"mpbasset/internal/core"
	"mpbasset/internal/explore"
	"mpbasset/internal/mptest"
)

// TestBitstateStoreBasics pins the Store contract on the lossy store at a
// size where collisions are effectively impossible: Seen admits each
// distinct key exactly once, Has probes without recording, Len counts
// admitted keys, and SeenBatch sees in-batch duplicates on their second
// occurrence like the exact stores do.
func TestBitstateStoreBasics(t *testing.T) {
	b := explore.NewBitstateStore(1<<20, 3)
	if b.Has("a") {
		t.Fatal("Has on an empty store")
	}
	if b.Seen("a") {
		t.Fatal("first Seen(a) reported present")
	}
	if !b.Seen("a") || !b.Has("a") {
		t.Fatal("second Seen(a) / Has(a) reported absent")
	}
	if got := b.SeenBatch([]string{"b", "a", "b"}); got[0] || !got[1] || !got[2] {
		t.Fatalf("SeenBatch(b,a,b) = %v, want [false true true]", got)
	}
	if b.Len() != 2 {
		t.Fatalf("Len = %d, want 2 (a and b)", b.Len())
	}
	fill, omission := b.BitstateStats()
	if fill <= 0 || fill >= 1 {
		t.Fatalf("fill = %v, want within (0,1)", fill)
	}
	if omission <= 0 || omission >= fill {
		t.Fatalf("omission = %v, want within (0, fill=%v) for k=3", omission, fill)
	}
}

// TestBitstateStoreSizing pins the constructor's clamping: budgets round
// down to a power of two of bits with a 512-bit floor, and non-positive
// arguments select the defaults.
func TestBitstateStoreSizing(t *testing.T) {
	// 1 byte is far below the floor: 512 bits. Saturate it and check the
	// fill denominator via the reported ratio.
	b := explore.NewBitstateStore(1, 1)
	for i := 0; i < 10000; i++ {
		b.Seen(fmt.Sprintf("key-%d", i))
	}
	fill, omission := b.BitstateStats()
	if fill < 0.9 || fill > 1 {
		t.Fatalf("fill = %v after saturating a floor-sized store, want near 1", fill)
	}
	if omission != fill {
		t.Fatalf("omission = %v, want fill %v for k=1", omission, fill)
	}
	// Admissions are bounded by the bit count: each admitted key set at
	// least one of the 512 bits.
	if b.Len() > 512 {
		t.Fatalf("Len = %d admitted keys exceeds the 512-bit floor array", b.Len())
	}
}

// lossyModel is a generated protocol whose exact state space comfortably
// exceeds the 512-bit floor array, so a floor-sized bitstate store MUST
// omit states (each admitted state sets at least one bit — pigeonhole).
func lossyModel(t *testing.T) *core.Protocol {
	t.Helper()
	p, err := mptest.Random(mptest.GenConfig{
		Seed:       9,
		MaxProcs:   4,
		Quorums:    true,
		AnyQuorums: true,
		Cycles:     true,
		RingSize:   5,
		MaxRounds:  4,
	})
	if err != nil {
		t.Fatal(err)
	}
	return p
}

// TestBitstateOmissionAccounting is the provable-omission case: the exact
// state space exceeds the floor-sized bit array, so the lossy run must
// visit strictly fewer states, and the omission must be visible in the
// reported fill/omission stats the engine copies into Stats.
func TestBitstateOmissionAccounting(t *testing.T) {
	p := lossyModel(t)
	exact, err := explore.DFS(p, explore.Options{Store: explore.NewExactStore()})
	if err != nil {
		t.Fatal(err)
	}
	if exact.Verdict != explore.VerdictVerified {
		t.Fatalf("exact verdict %s, want Verified (the model has no invariant)", exact.Verdict)
	}
	if exact.Stats.States <= 512 {
		t.Fatalf("exact space has %d states; the test needs > 512 to force omission", exact.Stats.States)
	}
	res, err := explore.DFS(p, explore.Options{Store: explore.NewBitstateStore(64, 3)})
	if err != nil {
		t.Fatal(err)
	}
	if res.Stats.States >= exact.Stats.States {
		t.Fatalf("lossy run visited %d states, exact %d: a 512-bit array cannot hold them all",
			res.Stats.States, exact.Stats.States)
	}
	if res.Stats.States > 512 {
		t.Fatalf("lossy run admitted %d states into a 512-bit array", res.Stats.States)
	}
	if res.Stats.BitstateFill <= 0.5 {
		t.Fatalf("fill = %v after saturating omission, want high", res.Stats.BitstateFill)
	}
	if res.Stats.BitstateOmission <= 0 {
		t.Fatalf("omission estimate = %v with %d provably omitted states",
			res.Stats.BitstateOmission, exact.Stats.States-res.Stats.States)
	}
	// The exact run, by contrast, must report no bitstate activity.
	if exact.Stats.BitstateFill != 0 || exact.Stats.BitstateOmission != 0 {
		t.Fatalf("exact run reports bitstate stats %v/%v", exact.Stats.BitstateFill, exact.Stats.BitstateOmission)
	}
}

// TestBitstateSequentialDeterminism pins that a sequential lossy run is
// reproducible: same store size, same probe count, same schedule — same
// omissions, bit-identical results including the coverage stats. (The
// parallel engines make no such promise; their visit order moves the
// collisions, which is why the bitstate stats are classified volatile.)
func TestBitstateSequentialDeterminism(t *testing.T) {
	p := lossyModel(t)
	run := func() *explore.Result {
		res, err := explore.DFS(p, explore.Options{Store: explore.NewBitstateStore(64, 3)})
		if err != nil {
			t.Fatal(err)
		}
		return res
	}
	a, b := run(), run()
	sa, sb := a.Stats, b.Stats
	sa.Duration, sb.Duration = 0, 0
	if a.Verdict != b.Verdict || sa != sb {
		t.Fatalf("two identical sequential lossy runs diverge:\n  %s %+v\n  %s %+v",
			a.Verdict, sa, b.Verdict, sb)
	}
}
