package explore

import (
	"testing"

	"mpbasset/internal/core"
	"mpbasset/internal/mptest"
)

// loopExpander is a deterministic reducing expander independent of package
// por (which explore cannot import): whenever an event of a ReadOnly
// transition is enabled it explores only those, deferring everything else.
// On mptest.IgnoringTrap this reproduces exactly the stubborn-set choice
// that defeats proviso-less reduced BFS: the invisible token loop is
// ReadOnly, the violating transition is not.
type loopExpander struct{}

func (loopExpander) Expand(_ *core.State, enabled []core.Event, _ Proviso) []core.Event {
	var loop []core.Event
	for _, ev := range enabled {
		if ev.T.ReadOnly {
			loop = append(loop, ev)
		}
	}
	if len(loop) == 0 {
		return enabled
	}
	return loop
}

// hasless hides the Has method of a Store, modeling a caller-supplied
// store without the non-mutating membership probe.
type hasless struct{ inner Store }

func (h hasless) Seen(key string) bool { return h.inner.Seen(key) }
func (h hasless) Len() int             { return h.inner.Len() }

// TestBFSQueueProvisoFindsTrapViolation drives the engine-level proviso
// without package por: the reduced BFS engines must promote the expansion
// that closes the token ring and reach the violation, identically in the
// sequential and parallel engines.
func TestBFSQueueProvisoFindsTrapViolation(t *testing.T) {
	for _, ring := range []int{2, 4} {
		p, err := mptest.IgnoringTrap(ring)
		if err != nil {
			t.Fatal(err)
		}
		xo := Options{Expander: loopExpander{}, TrackTrace: true}
		seq, err := BFS(p, xo)
		if err != nil {
			t.Fatal(err)
		}
		if seq.Verdict != VerdictViolated {
			t.Fatalf("ring %d: BFS verdict %s, want CE", ring, seq.Verdict)
		}
		if seq.Stats.ProvisoExpansions != 1 {
			t.Errorf("ring %d: ProvisoExpansions = %d, want 1", ring, seq.Stats.ProvisoExpansions)
		}
		if _, err := ReplayViolation(p, seq.Trace, nil); err != nil {
			t.Errorf("ring %d: trace does not replay: %v", ring, err)
		}
		for _, workers := range []int{1, 2, 8} {
			pxo := xo
			pxo.Workers = workers
			par, err := ParallelBFS(p, pxo)
			if err != nil {
				t.Fatal(err)
			}
			if par.Verdict != seq.Verdict || !statsEqualProviso(par.Stats, seq.Stats) {
				t.Errorf("ring %d workers %d: %s %+v, sequential %s %+v",
					ring, workers, par.Verdict, par.Stats, seq.Verdict, seq.Stats)
			}
			for i := range par.Trace {
				if par.Trace[i].StateKey != seq.Trace[i].StateKey {
					t.Errorf("ring %d workers %d: trace step %d differs", ring, workers, i)
					break
				}
			}
		}
	}
}

func statsEqualProviso(a, b Stats) bool {
	a.Duration, b.Duration = 0, 0
	return a == b
}

// TestBFSQueueProvisoHaslessStoreDegradesConservatively pins the fallback
// for stores without the Has probe: the sequential BFS engine cannot
// evaluate the level-start snapshot, so it must promote every reduced
// expansion (sound, merely unreduced) — and in particular still find the
// trap violation. ParallelBFS could evaluate the snapshot without a probe,
// but must mirror the degradation so its results stay bit-identical to
// sequential BFS on such stores too.
func TestBFSQueueProvisoHaslessStoreDegradesConservatively(t *testing.T) {
	p, err := mptest.IgnoringTrap(3)
	if err != nil {
		t.Fatal(err)
	}
	res, err := BFS(p, Options{Expander: loopExpander{}, Store: hasless{inner: NewExactStore()}, TrackTrace: true})
	if err != nil {
		t.Fatal(err)
	}
	if res.Verdict != VerdictViolated {
		t.Fatalf("verdict %s, want CE (conservative degradation must stay sound)", res.Verdict)
	}
	if res.Stats.ReducedExpansions != 0 {
		t.Errorf("ReducedExpansions = %d, want 0 (unknown membership promotes every reduced expansion)",
			res.Stats.ReducedExpansions)
	}
	if res.Stats.ProvisoExpansions == 0 {
		t.Error("ProvisoExpansions = 0, want > 0 (each promotion must be counted)")
	}
	for _, workers := range []int{1, 2, 8} {
		par, err := ParallelBFS(p, Options{
			Expander: loopExpander{}, Store: hasless{inner: NewExactStore()},
			TrackTrace: true, Workers: workers,
		})
		if err != nil {
			t.Fatal(err)
		}
		if par.Verdict != res.Verdict || !statsEqualProviso(par.Stats, res.Stats) || len(par.Trace) != len(res.Trace) {
			t.Errorf("workers %d: %s %+v (trace %d), sequential %s %+v (trace %d)",
				workers, par.Verdict, par.Stats, len(par.Trace), res.Verdict, res.Stats, len(res.Trace))
		}
	}
}

// TestBFSProvisoSnapshotSemantics unit-tests bfsProviso's level-start
// snapshot: only states visited before the current level began count as
// "already visited"; keys first inserted during the level (the fresh set)
// do not, and crossing into the next level re-admits them.
func TestBFSProvisoSnapshotSemantics(t *testing.T) {
	store := NewExactStore()
	prov := newBFSProviso(store, loopExpander{})
	if prov == nil {
		t.Fatal("reducing expander must arm the proviso")
	}
	store.Seen("a") // visited at level 0

	prov.advance(1)
	store.Seen("b") // first inserted during level 1
	prov.markNew("b")

	if !prov.Ignoring([]string{"a"}) {
		t.Error(`Ignoring(["a"]) = false, want true: "a" predates the level`)
	}
	if prov.Ignoring([]string{"a", "b"}) {
		t.Error(`Ignoring(["a","b"]) = true, want false: "b" is fresh this level (still enqueued)`)
	}
	if prov.Ignoring([]string{"c"}) {
		t.Error(`Ignoring(["c"]) = true, want false: "c" is unvisited`)
	}

	prov.advance(2) // next level: "b" now predates it
	if !prov.Ignoring([]string{"a", "b"}) {
		t.Error(`after advancing a level, Ignoring(["a","b"]) = false, want true`)
	}

	// FullExpander disables the bookkeeping entirely.
	if p := newBFSProviso(store, FullExpander{}); p != nil {
		t.Error("FullExpander must not arm the proviso")
	}
}
