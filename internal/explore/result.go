package explore

import (
	"fmt"
	"strings"
	"time"

	"mpbasset/internal/core"
)

// Verdict is the outcome of a search.
type Verdict int

const (
	// VerdictVerified means the full (possibly reduced) state space was
	// explored and no state violated the invariant.
	VerdictVerified Verdict = iota + 1
	// VerdictViolated means a violating state was found; the search
	// stopped at the first counterexample, as in the paper's debugging
	// experiments.
	VerdictViolated
	// VerdictLimit means a state, depth or time limit stopped the search
	// before exhaustion (the analogue of the paper's 48 h timeouts).
	VerdictLimit
)

// String returns the verdict in the paper's table vocabulary.
func (v Verdict) String() string {
	switch v {
	case VerdictVerified:
		return "Verified"
	case VerdictViolated:
		return "CE"
	case VerdictLimit:
		return "Limit"
	default:
		return fmt.Sprintf("Verdict(%d)", int(v))
	}
}

// Step is one edge of a counterexample path.
type Step struct {
	// Event is the executed event.
	Event core.Event
	// StateKey is the canonical key of the state reached by the event.
	StateKey string
}

// Stats aggregates search effort. For stateful searches, States counts the
// distinct states this run visited — the initial state plus every state
// the run newly inserted into the visited store — matching how the paper's
// Tables I/II count states per column. A caller-supplied pre-populated
// (shared or cross-run) store therefore never inflates States or trips
// MaxStates early; its hits surface as Revisits instead. For stateless
// searches States counts visited nodes, including revisits. MaxDepth is
// the depth, in events from the initial state (root = 0), of the deepest
// state the run visited, under each engine's own visit order (BFS engines
// visit states at shortest-path depth; DFS at first-search-path depth).
//
// RedStates counts the distinct product states the nested (red) searches
// of the NDFS liveness engines visited; it is always zero for the safety
// engines. Like every counter except Duration and the spill counters it is
// covered by the determinism guarantee: sequential NDFS and ParallelNDFS
// report identical values for any worker count.
//
// ProvisoExpansions counts the expansions the ignoring proviso (C3)
// promoted from reduced to full: DFS promotes when a reduced expansion
// would close a cycle onto the search stack, the BFS engines when a
// reduced expansion yields only states already visited at the start of the
// node's level. Each such expansion is also counted in FullExpansions
// (never in ReducedExpansions); the counter is deterministic for every
// engine, worker count and scheduler.
//
// SpillRuns, SpillBytes and DiskProbes report the disk tier's activity
// when the search ran over a SpillStore (always zero otherwise): sorted
// run files written (merges included), bytes written to disk, and
// membership probes that consulted the disk tier. They describe storage
// effort, not the explored state space: like Duration — and unlike every
// other counter — they are NOT covered by the engines' determinism
// guarantee (in parallel runs the insert timing moves the spill points),
// and the differential test suites mask them when comparing runs.
//
// SpeculatedVisits and SpeculationHits report the speculation layer's
// activity in dpor.ExploreParallel (always zero elsewhere): expansion
// records the workers built, and records the commit walk consumed. They
// describe scheduling luck, not the explored state space — both depend on
// worker timing — so, like the spill counters, they are volatile and
// masked before any determinism comparison.
//
// BitstateFill and BitstateOmission report a lossy store's coverage when
// the search ran over a BitstateStore (always zero otherwise): the bit
// array's fill ratio in [0,1] and the fill^k estimate of the probability
// that a fresh state was wrongly treated as visited. They qualify the
// run's coverage claim rather than describe the explored space, and under
// the parallel engines the visit order moves which states collide — so
// both are volatile and masked like the spill counters.
type Stats struct {
	States            int
	Revisits          int
	Events            int
	Deadlocks         int
	MaxDepth          int
	RedStates         int
	FullExpansions    int
	ReducedExpansions int
	ProvisoExpansions int
	SpillRuns         int
	SpillBytes        int64
	DiskProbes        int64
	SpeculatedVisits  int
	SpeculationHits   int
	BitstateFill      float64
	BitstateOmission  float64
	Duration          time.Duration
}

// Result is the outcome of a search run.
type Result struct {
	Verdict Verdict
	// Violation describes the property violation when Verdict is
	// VerdictViolated: the invariant violation for the safety engines, the
	// accepting-cycle summary for the liveness (NDFS) engines.
	Violation error
	// Trace is the counterexample path from the initial state to the
	// violating state (empty when the initial state itself violates, or
	// when trace tracking was disabled). For liveness violations the trace
	// is a lasso: a stem of len(Trace)-CycleLen steps followed by a cycle
	// of CycleLen steps that returns to the state the stem ends in.
	Trace []Step
	// CycleLen is the length of the lasso's cycle for liveness violations
	// (the final CycleLen steps of Trace); zero for safety violations and
	// for stutter lassos (see Stutter).
	CycleLen int
	// Stutter reports that the liveness counterexample's cycle is the
	// implicit stutter self-loop of a deadlocked accepting state: the stem
	// (all of Trace) ends in a state with no enabled events where the
	// property's acceptance predicate holds forever.
	Stutter bool
	Stats   Stats
}

// TraceString renders the counterexample, one step per line.
func (r *Result) TraceString() string {
	if len(r.Trace) == 0 {
		return "(empty trace)"
	}
	var sb strings.Builder
	for i, st := range r.Trace {
		fmt.Fprintf(&sb, "%3d. %s\n", i+1, st.Event)
	}
	return sb.String()
}
