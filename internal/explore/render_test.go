package explore

import (
	"strings"
	"testing"

	"mpbasset/internal/core"
)

// eventForTest fabricates a single-message event for tr with a message
// that was never sent — useful for negative replay tests.
func eventForTest(tr *core.Transition) core.Event {
	return core.Event{T: tr, Msgs: []core.Message{{From: 0, To: tr.Proc, Type: tr.MsgType}}}
}

func TestRenderTrace(t *testing.T) {
	p := chain(t, 3, 2)
	res, err := DFS(p, Options{TrackTrace: true})
	if err != nil {
		t.Fatal(err)
	}
	if res.Verdict != VerdictViolated {
		t.Fatal("expected CE")
	}
	var sb strings.Builder
	if err := RenderTrace(&sb, p, res.Trace); err != nil {
		t.Fatal(err)
	}
	out := sb.String()
	for _, want := range []string{"EMIT", "+sent:", "-consumed:", "local ", "=> violation:"} {
		if !strings.Contains(out, want) {
			t.Errorf("rendered trace misses %q:\n%s", want, out)
		}
	}
}

func TestRenderTraceRejectsBogusTrace(t *testing.T) {
	p := chain(t, 2, 0)
	res, err := DFS(p, Options{})
	if err != nil {
		t.Fatal(err)
	}
	_ = res
	// A trace whose first event needs a message that is not pending.
	var tok Step
	for _, tr := range p.Transitions {
		if tr.Name == "TOK" {
			tok = Step{Event: eventForTest(tr)}
		}
	}
	var sb strings.Builder
	if err := RenderTrace(&sb, p, []Step{tok}); err == nil {
		t.Fatal("bogus trace rendered without error")
	}
}

func TestReplayViolationRejectsSatisfyingTrace(t *testing.T) {
	p := chain(t, 3, 0) // no invariant: nothing violates
	res, err := DFS(p, Options{})
	if err != nil {
		t.Fatal(err)
	}
	if res.Verdict != VerdictVerified {
		t.Fatal("setup: expected verified")
	}
	// Empty trace ends in the initial state, which satisfies everything.
	if _, err := ReplayViolation(p, nil, nil); err == nil {
		t.Fatal("ReplayViolation accepted a satisfying end state")
	}
}
