package explore

import (
	"errors"
	"strings"
	"testing"
	"time"

	"mpbasset/internal/core"
	"mpbasset/internal/mptest"
)

// chain builds a 1-deadlock protocol: proc 0 emits K tokens one by one to
// proc 1, which absorbs them; the invariant (optional) fails when proc 1
// absorbed `failAt` tokens.
func chain(t *testing.T, k, failAt int) *core.Protocol {
	t.Helper()
	p := &core.Protocol{
		Name: "chain",
		N:    2,
		Init: func() []core.LocalState {
			return []core.LocalState{&mptest.Local{}, &mptest.Local{}}
		},
		Transitions: []*core.Transition{
			{
				Name:     "EMIT",
				Proc:     0,
				Priority: 1,
				Sends:    []core.SendSpec{{Type: "TOK", To: []core.ProcessID{1}}},
				LocalGuard: func(ls core.LocalState) bool {
					return ls.(*mptest.Local).Rounds < k
				},
				Apply: func(c *core.Ctx) {
					l := c.Local.(*mptest.Local)
					l.Rounds++
					c.Send(1, "TOK", core.NoPayload{})
				},
			},
			{
				Name:    "TOK",
				Proc:    1,
				MsgType: "TOK",
				Quorum:  1,
				Peers:   []core.ProcessID{0},
				Apply: func(c *core.Ctx) {
					c.Local.(*mptest.Local).Rounds++
				},
			},
		},
		ValidateSends: true,
	}
	if failAt > 0 {
		p.Invariant = func(s *core.State) error {
			if s.Local(1).(*mptest.Local).Rounds >= failAt {
				return errors.New("absorbed too many tokens")
			}
			return nil
		}
	}
	if err := p.Finalize(); err != nil {
		t.Fatal(err)
	}
	return p
}

func TestEnginesAgreeOnChain(t *testing.T) {
	p := chain(t, 3, 0)
	dfs, err := DFS(p, Options{})
	if err != nil {
		t.Fatal(err)
	}
	bfs, err := BFS(p, Options{})
	if err != nil {
		t.Fatal(err)
	}
	sl, err := StatelessDFS(p, Options{})
	if err != nil {
		t.Fatal(err)
	}
	if dfs.Verdict != VerdictVerified || bfs.Verdict != VerdictVerified || sl.Verdict != VerdictVerified {
		t.Fatalf("verdicts: dfs=%s bfs=%s stateless=%s", dfs.Verdict, bfs.Verdict, sl.Verdict)
	}
	if dfs.Stats.States != bfs.Stats.States {
		t.Errorf("stateful engines disagree on states: dfs=%d bfs=%d", dfs.Stats.States, bfs.Stats.States)
	}
	if dfs.Stats.Deadlocks != 1 || bfs.Stats.Deadlocks != 1 {
		t.Errorf("deadlocks: dfs=%d bfs=%d, want 1", dfs.Stats.Deadlocks, bfs.Stats.Deadlocks)
	}
	// The chain's state graph is a DAG with sharing; stateless search
	// revisits, so it sees at least as many nodes.
	if sl.Stats.States < dfs.Stats.States {
		t.Errorf("stateless visited fewer nodes (%d) than distinct states (%d)", sl.Stats.States, dfs.Stats.States)
	}
}

func TestEnginesAgreeOnRandomProtocols(t *testing.T) {
	for seed := int64(0); seed < 80; seed++ {
		p, err := mptest.Random(mptest.GenConfig{Seed: seed, Quorums: true, Threshold: 2})
		if err != nil {
			t.Fatal(err)
		}
		dfs, err := DFS(p, Options{MaxDuration: time.Minute})
		if err != nil {
			t.Fatal(err)
		}
		bfs, err := BFS(p, Options{MaxDuration: time.Minute})
		if err != nil {
			t.Fatal(err)
		}
		if dfs.Verdict != bfs.Verdict {
			t.Errorf("seed %d: dfs=%s bfs=%s", seed, dfs.Verdict, bfs.Verdict)
		}
		if dfs.Verdict == VerdictVerified && dfs.Stats.States != bfs.Stats.States {
			t.Errorf("seed %d: dfs states=%d bfs states=%d", seed, dfs.Stats.States, bfs.Stats.States)
		}
	}
}

func TestCounterexampleTraceReplays(t *testing.T) {
	p := chain(t, 3, 2)
	for name, search := range map[string]func(*core.Protocol, Options) (*Result, error){
		"dfs":       DFS,
		"bfs":       BFS,
		"stateless": StatelessDFS,
	} {
		opts := Options{TrackTrace: true}
		res, err := search(p, opts)
		if err != nil {
			t.Fatalf("%s: %v", name, err)
		}
		if res.Verdict != VerdictViolated {
			t.Fatalf("%s: verdict %s, want CE", name, res.Verdict)
		}
		if len(res.Trace) == 0 {
			t.Fatalf("%s: empty counterexample", name)
		}
		// Replay the trace from the initial state; it must end in a
		// violating state.
		s, err := p.InitialState()
		if err != nil {
			t.Fatal(err)
		}
		for i, step := range res.Trace {
			s, err = p.Execute(s, step.Event)
			if err != nil {
				t.Fatalf("%s: step %d (%s) does not replay: %v", name, i, step.Event, err)
			}
		}
		if p.CheckInvariant(s) == nil {
			t.Errorf("%s: replayed trace ends in a non-violating state", name)
		}
		if !strings.Contains(res.TraceString(), "TOK") {
			t.Errorf("%s: trace rendering misses events:\n%s", name, res.TraceString())
		}
	}
}

func TestBFSShortestCounterexample(t *testing.T) {
	p := chain(t, 3, 1)
	res, err := BFS(p, Options{TrackTrace: true})
	if err != nil {
		t.Fatal(err)
	}
	// Shortest violation: EMIT, TOK.
	if len(res.Trace) != 2 {
		t.Fatalf("BFS counterexample length = %d, want 2 (shortest)", len(res.Trace))
	}
}

func TestLimits(t *testing.T) {
	p := chain(t, 50, 0)
	res, err := DFS(p, Options{MaxStates: 10})
	if err != nil {
		t.Fatal(err)
	}
	if res.Verdict != VerdictLimit {
		t.Fatalf("verdict = %s, want Limit", res.Verdict)
	}
	res, err = BFS(p, Options{MaxDepth: 3})
	if err != nil {
		t.Fatal(err)
	}
	if res.Verdict != VerdictLimit {
		t.Fatalf("BFS depth-limited verdict = %s, want Limit", res.Verdict)
	}
	res, err = StatelessDFS(p, Options{MaxStates: 5})
	if err != nil {
		t.Fatal(err)
	}
	if res.Verdict != VerdictLimit {
		t.Fatalf("stateless verdict = %s, want Limit", res.Verdict)
	}
}

func TestStores(t *testing.T) {
	for name, s := range map[string]Store{"exact": NewExactStore(), "hash": NewHashStore()} {
		if s.Seen("a") {
			t.Fatalf("%s: fresh store claims to have seen a key", name)
		}
		if !s.Seen("a") || s.Seen("b") || s.Len() != 2 {
			t.Fatalf("%s: store bookkeeping wrong (len=%d)", name, s.Len())
		}
	}
}

func TestHashStoreMatchesExactOnRealRun(t *testing.T) {
	p := chain(t, 6, 0)
	exact, err := DFS(p, Options{Store: NewExactStore()})
	if err != nil {
		t.Fatal(err)
	}
	hashed, err := DFS(p, Options{Store: NewHashStore()})
	if err != nil {
		t.Fatal(err)
	}
	if exact.Stats.States != hashed.Stats.States {
		t.Fatalf("stores disagree: exact=%d hashed=%d", exact.Stats.States, hashed.Stats.States)
	}
}

func TestBuildGraph(t *testing.T) {
	p := chain(t, 2, 0)
	g, err := BuildGraph(p, 0)
	if err != nil {
		t.Fatal(err)
	}
	ref, err := DFS(p, Options{})
	if err != nil {
		t.Fatal(err)
	}
	if len(g.Nodes) != ref.Stats.States {
		t.Fatalf("graph nodes=%d, DFS states=%d", len(g.Nodes), ref.Stats.States)
	}
	if g.NumEdges() == 0 {
		t.Fatal("no edges")
	}
	if !g.Equal(g) {
		t.Fatal("graph not equal to itself")
	}
	// Limit enforcement.
	if _, err := BuildGraph(p, 1); err == nil {
		t.Fatal("BuildGraph must fail when exceeding the state cap")
	}
}

func TestGraphDiff(t *testing.T) {
	p1 := chain(t, 2, 0)
	p2 := chain(t, 3, 0)
	g1, err := BuildGraph(p1, 0)
	if err != nil {
		t.Fatal(err)
	}
	g2, err := BuildGraph(p2, 0)
	if err != nil {
		t.Fatal(err)
	}
	if g1.Diff(g2) == "" {
		t.Fatal("different graphs reported equal")
	}
}

func TestVerdictString(t *testing.T) {
	if VerdictVerified.String() != "Verified" || VerdictViolated.String() != "CE" || VerdictLimit.String() != "Limit" {
		t.Fatal("verdict strings diverge from the paper's vocabulary")
	}
}

func TestViolatedInitialState(t *testing.T) {
	p := chain(t, 1, 0)
	p.Invariant = func(*core.State) error { return errors.New("always") }
	for name, search := range map[string]func(*core.Protocol, Options) (*Result, error){
		"dfs": DFS, "bfs": BFS, "stateless": StatelessDFS,
	} {
		res, err := search(p, Options{})
		if err != nil {
			t.Fatal(err)
		}
		if res.Verdict != VerdictViolated || len(res.Trace) != 0 {
			t.Errorf("%s: initial violation not reported correctly (%s, trace %d)", name, res.Verdict, len(res.Trace))
		}
	}
}
