package explore

import (
	"mpbasset/internal/core"
)

// defaultStatelessDepth bounds stateless searches when the caller gives no
// MaxDepth, guaranteeing termination even on cyclic graphs.
const defaultStatelessDepth = 1 << 20

// StatelessDFS explores every path from the initial state without a
// visited set — the search mode dynamic POR requires (§III-A: "DPOR can
// only support stateless search"). States reached along different paths are
// visited again, so Stats.States counts node visits, matching how the
// paper's Table I reports states for the Basset/DPOR column.
//
// The expander hook applies here too; package dpor drives its own,
// backtrack-set based engine instead.
func StatelessDFS(p *core.Protocol, opts Options) (*Result, error) {
	init, err := p.InitialState()
	if err != nil {
		return nil, err
	}
	var (
		res     Result
		canon   = opts.canon()
		exp     = opts.expander()
		lim     = newLimiter(opts)
		limited bool
	)
	if lim.maxDepth == 0 {
		lim.maxDepth = defaultStatelessDepth
	}
	defer func() { res.Stats.Duration = lim.elapsed() }()

	type frame struct {
		key   string
		via   core.Event
		succs []dfsSucc
		next  int
	}
	var stack []frame
	sinfo := noProviso{}

	push := func(s *core.State, key string, via core.Event) error {
		res.Stats.States++
		enabled := p.Enabled(s)
		var succs []dfsSucc
		if len(enabled) == 0 {
			res.Stats.Deadlocks++
		} else {
			chosen := exp.Expand(s, enabled, sinfo)
			if len(chosen) < len(enabled) {
				res.Stats.ReducedExpansions++
			} else {
				res.Stats.FullExpansions++
			}
			var err error
			if succs, err = execAll(p, s, chosen, canon); err != nil {
				return err
			}
		}
		stack = append(stack, frame{key: key, via: via, succs: succs})
		if len(stack) > res.Stats.MaxDepth {
			res.Stats.MaxDepth = len(stack)
		}
		return nil
	}

	trace := func(last *dfsSucc) []Step {
		var steps []Step
		for _, f := range stack[1:] {
			steps = append(steps, Step{Event: f.via, StateKey: f.key})
		}
		if last != nil {
			steps = append(steps, Step{Event: last.ev, StateKey: last.key})
		}
		return steps
	}

	ikey := canon(init)
	if verr := p.CheckInvariant(init); verr != nil {
		res.Stats.States = 1
		res.Verdict = VerdictViolated
		res.Violation = verr
		return &res, nil
	}
	if err := push(init, ikey, core.Event{}); err != nil {
		return nil, err
	}

	for len(stack) > 0 {
		f := &stack[len(stack)-1]
		if f.next >= len(f.succs) {
			stack = stack[:len(stack)-1]
			continue
		}
		sc := f.succs[f.next]
		f.next++
		res.Stats.Events++
		if verr := p.CheckInvariant(sc.st); verr != nil {
			res.Stats.States++
			res.Verdict = VerdictViolated
			res.Violation = verr
			res.Trace = trace(&sc)
			return &res, nil
		}
		if lim.statesExceeded(res.Stats.States) || lim.timeExceeded() {
			limited = true
			break
		}
		if lim.depthExceeded(len(stack)) {
			limited = true
			res.Stats.States++
			continue
		}
		if err := push(sc.st, sc.key, sc.ev); err != nil {
			return nil, err
		}
	}

	if limited {
		res.Verdict = VerdictLimit
	} else {
		res.Verdict = VerdictVerified
	}
	return &res, nil
}
