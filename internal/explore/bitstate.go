package explore

import (
	"encoding/binary"
	"math"
	"sync"
)

// BitstateStore is an explicitly lossy visited store: Spin-style
// bitstate/hash-compaction. Each state is reduced to k independent bit
// positions in a fixed-size bit array (double hashing over the same
// 128-bit fingerprint the exact stores use); a state is "seen" iff all k
// bits are set. The store never grows — memory is exactly the budget
// chosen up front — but two distinct states may collide on all k probes,
// in which case the second is silently treated as visited and its subtree
// is never explored.
//
// That makes a bitstate run a coverage claim, not a verdict: a reported
// violation is real (the counterexample trace replays like any other), but
// "no violation" only means none was found in the states actually visited.
// The facade therefore rejects Lossy for DPOR and stateless modes (whose
// soundness arguments assume the visited set is exact), and the
// differential suites (FuzzEngineAgreement) never compare lossy results
// against exact runs for bit-identity. Sequential engines over a
// BitstateStore are still deterministic — same budget, same k, same
// schedule, same omissions — but parallel engines' visit order changes
// which colliding state wins, so lossy stats are classified volatile
// (eval.VolatileStatsFields).
//
// BitstateStats reports the fill ratio (set bits / total bits) and the
// standard omission estimate fill^k: the probability that a fresh state
// finds all k of its probe bits already set. Both are surfaced in Stats
// and the mpcheck report so a sweep can be judged — a fill near 1 means
// the array saturated and the state count is a floor, not a census.
//
// All operations take an internal mutex, so the store is safe for the
// parallel engines (ConcurrencySafe reports true) and still cheap
// sequentially.
type BitstateStore struct {
	mu      sync.Mutex
	words   []uint64
	mask    uint64 // len(words)*64 - 1; bit count is a power of two
	k       int
	n       int   // states admitted (Seen returned false)
	setBits int64 // bits currently set, for the fill ratio
}

// Compile-time checks: BitstateStore participates in the store matrix as a
// batched, concurrency-safe store with its own stats reporter.
var (
	_ Store            = (*BitstateStore)(nil)
	_ BatchStore       = (*BitstateStore)(nil)
	_ HasStore         = (*BitstateStore)(nil)
	_ ConcurrentStore  = (*BitstateStore)(nil)
	_ BitstateReporter = (*BitstateStore)(nil)
)

// BitstateReporter is implemented by lossy stores that can estimate their
// own unreliability. Engines copy the numbers into Stats.BitstateFill and
// Stats.BitstateOmission at the end of a run (see captureStoreStats).
type BitstateReporter interface {
	// BitstateStats returns the fill ratio of the bit array in [0,1] and
	// the estimated probability that a new distinct state is wrongly
	// reported as visited (fill^k).
	BitstateStats() (fill, omission float64)
}

// Default sizing: 64 MiB of bits when no budget is given, 3 probes per
// state (Spin's classic default region), and a floor so a degenerate
// budget still yields a working array.
const (
	defaultBitstateBytes = 64 << 20
	defaultBitstateK     = 3
	minBitstateWords     = 8 // 512 bits
	maxBitstateK         = 16
)

// NewBitstateStore builds a bitstate store with at most budgetBytes of bit
// array (rounded down to a power of two of bits; minimum 64 bytes) and k
// hash probes per state. budgetBytes <= 0 selects a 64 MiB default; k <= 0
// selects 3. More probes lower the omission probability at low fill but
// saturate the array k times faster.
func NewBitstateStore(budgetBytes int64, k int) *BitstateStore {
	if budgetBytes <= 0 {
		budgetBytes = defaultBitstateBytes
	}
	if k <= 0 {
		k = defaultBitstateK
	}
	if k > maxBitstateK {
		k = maxBitstateK
	}
	words := uint64(budgetBytes / 8)
	// Round down to a power of two so probe indices reduce with a mask.
	for words&(words-1) != 0 {
		words &= words - 1
	}
	if words < minBitstateWords {
		words = minBitstateWords
	}
	return &BitstateStore{
		words: make([]uint64, words),
		mask:  words*64 - 1,
		k:     k,
	}
}

// probe returns the bit index of the i-th hash probe for fingerprint
// (h1, h2): classic double hashing, with h2 forced odd so every probe
// sequence walks the full power-of-two array.
func probe(h1, h2 uint64, i int, mask uint64) uint64 {
	return (h1 + uint64(i)*h2) & mask
}

// mix64 is the 64-bit murmur3/splitmix finalizer: a bijective avalanche
// that spreads every input bit over the whole word. The raw FNV-128 words
// are poor probe indices on their own — similar keys leave the high word's
// low bits nearly constant, and the probe mask keeps only low bits — so
// both halves are finalized before probing.
func mix64(x uint64) uint64 {
	x ^= x >> 33
	x *= 0xff51afd7ed558ccd
	x ^= x >> 33
	x *= 0xc4ceb9fe1a85ec53
	x ^= x >> 33
	return x
}

func (b *BitstateStore) hashes(key string) (h1, h2 uint64) {
	fp := fingerprint(key)
	h1 = mix64(binary.BigEndian.Uint64(fp[:8]))
	h2 = mix64(binary.BigEndian.Uint64(fp[8:])) | 1
	return h1, h2
}

// seenLocked reports whether all k probe bits for (h1, h2) are set,
// setting any that are not. Callers hold b.mu.
func (b *BitstateStore) seenLocked(h1, h2 uint64) bool {
	seen := true
	for i := 0; i < b.k; i++ {
		idx := probe(h1, h2, i, b.mask)
		word, bit := idx/64, uint64(1)<<(idx%64)
		if b.words[word]&bit == 0 {
			seen = false
			b.words[word] |= bit
			b.setBits++
		}
	}
	if !seen {
		b.n++
	}
	return seen
}

// Seen reports whether key's probe bits were all already set, marking them
// as a side effect. A false return admits the state; a true return may be
// a hash collision with up to k earlier states — the lossy case.
func (b *BitstateStore) Seen(key string) bool {
	h1, h2 := b.hashes(key)
	b.mu.Lock()
	defer b.mu.Unlock()
	return b.seenLocked(h1, h2)
}

// SeenBatch marks every key and reports per-key seen-ness under a single
// lock acquisition. Duplicates within the batch are seen on their second
// occurrence, matching the exact stores' batch semantics.
func (b *BitstateStore) SeenBatch(keys []string) []bool {
	seen := make([]bool, len(keys))
	b.mu.Lock()
	defer b.mu.Unlock()
	for i, key := range keys {
		h1, h2 := b.hashes(key)
		seen[i] = b.seenLocked(h1, h2)
	}
	return seen
}

// Has reports whether key's probe bits are all set, without modifying the
// array (the BFS queue proviso uses this).
func (b *BitstateStore) Has(key string) bool {
	h1, h2 := b.hashes(key)
	b.mu.Lock()
	defer b.mu.Unlock()
	for i := 0; i < b.k; i++ {
		idx := probe(h1, h2, i, b.mask)
		if b.words[idx/64]&(uint64(1)<<(idx%64)) == 0 {
			return false
		}
	}
	return true
}

// Len returns the number of states admitted (Seen returned false). Unlike
// the exact stores this undercounts the reachable set by exactly the
// omitted states.
func (b *BitstateStore) Len() int {
	b.mu.Lock()
	defer b.mu.Unlock()
	return b.n
}

// ConcurrencySafe marks the store as usable by the parallel engines; all
// operations serialize on an internal mutex.
func (b *BitstateStore) ConcurrencySafe() {}

// BitstateStats returns the current fill ratio and the fill^k omission
// estimate. Safe to call at any point during or after a run.
func (b *BitstateStore) BitstateStats() (fill, omission float64) {
	b.mu.Lock()
	defer b.mu.Unlock()
	fill = float64(b.setBits) / float64(uint64(len(b.words))*64)
	return fill, math.Pow(fill, float64(b.k))
}
