package explore

import (
	"sync"
	"sync/atomic"
)

// Tuning constants of the speculative DFS scheduler, shared by ParallelDFS
// and ParallelNDFS. They bound memory, not correctness: results are
// bit-identical to the sequential engines whatever their values.
const (
	// pdMemoCap bounds the number of not-yet-consumed speculative expansion
	// records; speculators back off when the table is full.
	pdMemoCap = 1 << 13
	// pdQueueCap bounds the steal queue; when it overflows, the shallowest
	// (oldest) targets are dropped — they are the furthest from being
	// committed, so dropping them loses the least useful speculation.
	pdQueueCap = 4096
	// pdStealBudget is the number of states one stolen subtree may expand
	// before the thief reports back and steals afresh.
	pdStealBudget = 128
)

// pdPut is the outcome of a memo insert.
type pdPut int

const (
	pdStored pdPut = iota
	pdDup          // another speculator already recorded the key
	pdFull         // the table is at capacity; the thief backs off
)

// specStripe is one lock-striped shard of a specMemo.
type specStripe[R any] struct {
	mu sync.Mutex
	m  map[string]*R
}

// specMemo is the striped table of speculative expansion records, keyed by
// canonical state key (ParallelDFS) or product key (ParallelNDFS).
// Speculators insert, the commit walk consumes; entries live until the
// walk first discovers their state (or the search ends). The capacity
// bound keeps runaway speculation from holding unbounded state.
type specMemo[R any] struct {
	stripes [64]specStripe[R]
	count   atomic.Int64
}

func (m *specMemo[R]) stripe(key string) *specStripe[R] {
	return &m.stripes[fingerprint(key)[15]&63]
}

// full reports whether the table is at capacity. Thieves check it before
// paying for an expansion; put re-checks, so the answer being stale only
// costs (or saves) one speculative build.
func (m *specMemo[R]) full() bool { return m.count.Load() >= pdMemoCap }

func (m *specMemo[R]) put(key string, rec *R) pdPut {
	if m.full() {
		return pdFull
	}
	st := m.stripe(key)
	st.mu.Lock()
	defer st.mu.Unlock()
	if st.m == nil {
		st.m = make(map[string]*R)
	}
	if _, ok := st.m[key]; ok {
		return pdDup
	}
	st.m[key] = rec
	m.count.Add(1)
	return pdStored
}

func (m *specMemo[R]) has(key string) bool {
	st := m.stripe(key)
	st.mu.Lock()
	defer st.mu.Unlock()
	_, ok := st.m[key]
	return ok
}

// take removes and returns the record for key, or nil.
func (m *specMemo[R]) take(key string) *R {
	st := m.stripe(key)
	st.mu.Lock()
	defer st.mu.Unlock()
	rec, ok := st.m[key]
	if !ok {
		return nil
	}
	delete(st.m, key)
	m.count.Add(-1)
	return rec
}

// specQueue is the steal queue: the commit walk publishes each new frame's
// pending siblings, idle speculators pop from the deep end (the most
// recently pushed — deepest — frame's siblings first, in sibling order).
// Those are the subtrees the walk will enter soonest, so their records are
// the least likely to go stale.
type specQueue[T any] struct {
	mu     sync.Mutex
	cond   sync.Cond
	items  []T
	closed bool
}

func newSpecQueue[T any]() *specQueue[T] {
	q := &specQueue[T]{}
	q.cond.L = &q.mu
	return q
}

// publish appends targets (callers pass a frame's pending siblings in
// reverse sibling order, so the earliest sibling is popped first). Overflow
// drops the shallowest targets.
func (q *specQueue[T]) publish(ts []T) {
	if len(ts) == 0 {
		return
	}
	q.mu.Lock()
	if q.closed {
		q.mu.Unlock()
		return
	}
	q.items = append(q.items, ts...)
	if over := len(q.items) - pdQueueCap; over > 0 {
		q.items = append(q.items[:0], q.items[over:]...)
	}
	q.mu.Unlock()
	q.cond.Broadcast()
}

// pop blocks for the next target from the deep end; false means the queue
// was closed and drained.
func (q *specQueue[T]) pop() (T, bool) {
	q.mu.Lock()
	defer q.mu.Unlock()
	for len(q.items) == 0 && !q.closed {
		q.cond.Wait()
	}
	var zero T
	if len(q.items) == 0 {
		return zero, false
	}
	t := q.items[len(q.items)-1]
	q.items[len(q.items)-1] = zero
	q.items = q.items[:len(q.items)-1]
	return t, true
}

func (q *specQueue[T]) close() {
	q.mu.Lock()
	q.closed = true
	q.items = nil
	q.mu.Unlock()
	q.cond.Broadcast()
}
