package explore

import (
	"fmt"

	"mpbasset/internal/core"
)

// Replay re-executes a counterexample trace from the protocol's initial
// state and returns the final state. Each step is verified two ways: the
// recorded event must apply, and the canonical key of the replayed state
// must equal the step's recorded StateKey — so a trace whose states were
// mangled (or produced under a canonicalization bug) is rejected rather
// than silently accepted. canon must be the Options.Canon the search ran
// with (nil for the default core.(*State).Key), since traces record
// canonical keys. This is the guarantee that reported traces are real
// executions, used by the test suites and by tools that post-process
// counterexamples.
func Replay(p *core.Protocol, trace []Step, canon func(*core.State) string) (*core.State, error) {
	if canon == nil {
		canon = func(s *core.State) string { return s.Key() }
	}
	s, err := p.InitialState()
	if err != nil {
		return nil, err
	}
	for i, step := range trace {
		ns, err := p.Execute(s, step.Event)
		if err != nil {
			return nil, fmt.Errorf("replay step %d (%s): %w", i+1, step.Event, err)
		}
		if key := canon(ns); key != step.StateKey {
			return nil, fmt.Errorf("replay step %d (%s): state key mismatch: replayed %q, recorded %q",
				i+1, step.Event, key, step.StateKey)
		}
		s = ns
	}
	return s, nil
}

// ReplayViolation replays the trace and additionally checks that the final
// state violates the protocol's invariant, returning the violation.
func ReplayViolation(p *core.Protocol, trace []Step, canon func(*core.State) string) (*core.State, error) {
	s, err := Replay(p, trace, canon)
	if err != nil {
		return nil, err
	}
	if verr := p.CheckInvariant(s); verr == nil {
		return nil, fmt.Errorf("replayed trace ends in a state that satisfies the invariant")
	}
	return s, nil
}
