package explore

import (
	"fmt"

	"mpbasset/internal/core"
)

// Replay re-executes a counterexample trace from the protocol's initial
// state and returns the final state. It fails if any step does not apply —
// the guarantee that reported traces are real executions, used by the test
// suites and by tools that post-process counterexamples.
func Replay(p *core.Protocol, trace []Step) (*core.State, error) {
	s, err := p.InitialState()
	if err != nil {
		return nil, err
	}
	for i, step := range trace {
		ns, err := p.Execute(s, step.Event)
		if err != nil {
			return nil, fmt.Errorf("replay step %d (%s): %w", i+1, step.Event, err)
		}
		s = ns
	}
	return s, nil
}

// ReplayViolation replays the trace and additionally checks that the final
// state violates the protocol's invariant, returning the violation.
func ReplayViolation(p *core.Protocol, trace []Step) (*core.State, error) {
	s, err := Replay(p, trace)
	if err != nil {
		return nil, err
	}
	if verr := p.CheckInvariant(s); verr == nil {
		return nil, fmt.Errorf("replayed trace ends in a state that satisfies the invariant")
	}
	return s, nil
}
