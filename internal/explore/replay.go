package explore

import (
	"fmt"

	"mpbasset/internal/core"
	"mpbasset/internal/liveness"
)

// Replay re-executes a counterexample trace from the protocol's initial
// state and returns the final state. Each step is verified two ways: the
// recorded event must apply, and the canonical key of the replayed state
// must equal the step's recorded StateKey — so a trace whose states were
// mangled (or produced under a canonicalization bug) is rejected rather
// than silently accepted. canon must be the Options.Canon the search ran
// with (nil for the default core.(*State).Key), since traces record
// canonical keys. This is the guarantee that reported traces are real
// executions, used by the test suites and by tools that post-process
// counterexamples.
func Replay(p *core.Protocol, trace []Step, canon func(*core.State) string) (*core.State, error) {
	if canon == nil {
		canon = func(s *core.State) string { return s.Key() }
	}
	s, err := p.InitialState()
	if err != nil {
		return nil, err
	}
	return replayFrom(p, s, trace, canon, 0)
}

// replayFrom re-executes steps from s, cross-checking each replayed state
// key; offset numbers the steps in error messages (for lasso replays the
// cycle's steps keep their position in the full trace).
func replayFrom(p *core.Protocol, s *core.State, steps []Step, canon func(*core.State) string, offset int) (*core.State, error) {
	for i, step := range steps {
		ns, err := p.Execute(s, step.Event)
		if err != nil {
			return nil, fmt.Errorf("replay step %d (%s): %w", offset+i+1, step.Event, err)
		}
		if key := canon(ns); key != step.StateKey {
			return nil, fmt.Errorf("replay step %d (%s): state key mismatch: replayed %q, recorded %q",
				offset+i+1, step.Event, key, step.StateKey)
		}
		s = ns
	}
	return s, nil
}

// ReplayViolation replays the trace and additionally checks that the final
// state violates the protocol's invariant, returning the violation.
func ReplayViolation(p *core.Protocol, trace []Step, canon func(*core.State) string) (*core.State, error) {
	s, err := Replay(p, trace, canon)
	if err != nil {
		return nil, err
	}
	if verr := p.CheckInvariant(s); verr == nil {
		return nil, fmt.Errorf("replayed trace ends in a state that satisfies the invariant")
	}
	return s, nil
}

// ReplayLasso replays and validates a liveness counterexample as reported
// by the NDFS engines: trace is stem + cycle, with the final cycleLen
// steps forming the cycle (stutter means the cycle is the implicit
// self-loop of a deadlocked state and cycleLen is 0). Every step is
// re-executed with the same key cross-checks as Replay, and the lasso
// certificate is verified end to end:
//
//   - the cycle closes: the state after the full trace equals the state
//     after the stem (by canonical key);
//   - the cycle is accepting: some cycle state satisfies prop.Accept (for
//     a stutter lasso, the stem's final state does);
//   - a stutter lasso's final state is actually deadlocked;
//   - with prop.WeakFair, the cycle is weakly fair: every process either
//     executes some cycle event or is disabled in some cycle state.
//
// It returns the loop state (the state the cycle starts and ends in), so
// a corrupted stem, cycle, loop point or acceptance claim is rejected
// rather than silently accepted — the lasso analogue of ReplayViolation.
func ReplayLasso(p *core.Protocol, prop *liveness.Property, trace []Step, cycleLen int, stutter bool, canon func(*core.State) string) (*core.State, error) {
	if prop == nil || prop.Accept == nil {
		return nil, fmt.Errorf("replay lasso: nil property")
	}
	if canon == nil {
		canon = func(s *core.State) string { return s.Key() }
	}
	if stutter && cycleLen != 0 {
		return nil, fmt.Errorf("replay lasso: stutter lasso with cycle length %d (want 0)", cycleLen)
	}
	if !stutter && cycleLen < 1 {
		return nil, fmt.Errorf("replay lasso: cycle length %d, but a non-stutter lasso needs a cycle", cycleLen)
	}
	if cycleLen > len(trace) {
		return nil, fmt.Errorf("replay lasso: cycle length %d exceeds trace length %d", cycleLen, len(trace))
	}
	stem := trace[:len(trace)-cycleLen]
	cycle := trace[len(trace)-cycleLen:]
	loop, err := Replay(p, stem, canon)
	if err != nil {
		return nil, err
	}
	if stutter {
		if enabled := p.Enabled(loop); len(enabled) != 0 {
			return nil, fmt.Errorf("replay lasso: stutter lasso ends in a state with %d enabled events (want deadlock)", len(enabled))
		}
		if !prop.Accept(loop) {
			return nil, fmt.Errorf("replay lasso: stutter lasso ends in a non-accepting state")
		}
		return loop, nil
	}
	var (
		s         = loop
		accepting = false
		moved     = make([]bool, p.N)
		disabled  = make([]bool, p.N)
	)
	// The cycle's states are the states reached by its steps; since the
	// cycle closes back on loop, that set includes loop itself (as the
	// final state). Fairness reads enabledness from each state on the
	// cycle and the events executed along it.
	for i, step := range cycle {
		if prop.WeakFair {
			mask := liveness.EnabledProcs(p.N, p.Enabled(s))
			for q := range mask {
				if !mask[q] {
					disabled[q] = true
				}
			}
		}
		ns, rerr := replayFrom(p, s, cycle[i:i+1], canon, len(stem)+i)
		if rerr != nil {
			return nil, rerr
		}
		moved[step.Event.T.Proc] = true
		if prop.Accept(ns) {
			accepting = true
		}
		s = ns
	}
	if key := canon(s); key != canon(loop) {
		return nil, fmt.Errorf("replay lasso: cycle does not close: loop state %q, state after cycle %q", canon(loop), key)
	}
	if !accepting {
		return nil, fmt.Errorf("replay lasso: no accepting state on the cycle")
	}
	if prop.WeakFair {
		for q := 0; q < p.N; q++ {
			if !moved[q] && !disabled[q] {
				return nil, fmt.Errorf("replay lasso: cycle is not weakly fair: process %d is enabled throughout but never executes", q)
			}
		}
	}
	return loop, nil
}
