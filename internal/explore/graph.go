package explore

import (
	"fmt"
	"sort"

	"mpbasset/internal/core"
)

// Graph is an explicit state graph (S, S0, Δ) — nodes are canonical state
// keys, edges are state pairs with transition identities erased, exactly as
// in the paper's Definition 1: two transition systems are refinements of
// one another iff they generate the same state graph. Package refine's
// Theorem 2 tests compare graphs built from unsplit and split protocols.
type Graph struct {
	Initial string
	Nodes   map[string]struct{}
	Edges   map[string]map[string]struct{}
}

// NumEdges returns the number of distinct (s, s') pairs.
func (g *Graph) NumEdges() int {
	n := 0
	//lint:nondet-ok commutative sum: the total is independent of visit order
	for _, to := range g.Edges {
		n += len(to)
	}
	return n
}

// Equal reports whether both graphs have the same initial state, node set
// and edge set.
func (g *Graph) Equal(h *Graph) bool { return g.Diff(h) == "" }

// Diff returns a description of the first difference between the graphs,
// or "" when they are equal. Intended for test failure messages.
func (g *Graph) Diff(h *Graph) string {
	if g.Initial != h.Initial {
		return fmt.Sprintf("initial states differ: %q vs %q", g.Initial, h.Initial)
	}
	if len(g.Nodes) != len(h.Nodes) {
		return fmt.Sprintf("node counts differ: %d vs %d", len(g.Nodes), len(h.Nodes))
	}
	// Witnesses are reported smallest-first so a failing comparison prints
	// the same message run after run.
	nodes := make([]string, 0, len(g.Nodes))
	for n := range g.Nodes {
		nodes = append(nodes, n)
	}
	sort.Strings(nodes)
	for _, n := range nodes {
		if _, ok := h.Nodes[n]; !ok {
			return fmt.Sprintf("node only in first graph: %q", n)
		}
	}
	if ge, he := g.NumEdges(), h.NumEdges(); ge != he {
		return fmt.Sprintf("edge counts differ: %d vs %d", ge, he)
	}
	froms := make([]string, 0, len(g.Edges))
	for from := range g.Edges {
		froms = append(froms, from)
	}
	sort.Strings(froms)
	for _, from := range froms {
		hTo := h.Edges[from]
		tos := make([]string, 0, len(g.Edges[from]))
		for to := range g.Edges[from] {
			tos = append(tos, to)
		}
		sort.Strings(tos)
		for _, to := range tos {
			if _, ok := hTo[to]; !ok {
				return fmt.Sprintf("edge only in first graph: %q -> %q", from, to)
			}
		}
	}
	return ""
}

// BuildGraph exhaustively explores p (unreduced BFS) and returns its state
// graph. maxStates guards against runaway models; 0 means unlimited. An
// error is returned if the limit is hit, because a truncated graph must
// never be used for equality checking.
func BuildGraph(p *core.Protocol, maxStates int) (*Graph, error) {
	init, err := p.InitialState()
	if err != nil {
		return nil, err
	}
	g := &Graph{
		Initial: init.Key(),
		Nodes:   make(map[string]struct{}),
		Edges:   make(map[string]map[string]struct{}),
	}
	g.Nodes[g.Initial] = struct{}{}
	queue := []*core.State{init}
	for len(queue) > 0 {
		s := queue[0]
		queue = queue[1:]
		from := s.Key()
		for _, ev := range p.Enabled(s) {
			ns, err := p.Execute(s, ev)
			if err != nil {
				return nil, err
			}
			to := ns.Key()
			if g.Edges[from] == nil {
				g.Edges[from] = make(map[string]struct{})
			}
			g.Edges[from][to] = struct{}{}
			if _, seen := g.Nodes[to]; !seen {
				g.Nodes[to] = struct{}{}
				if maxStates > 0 && len(g.Nodes) > maxStates {
					return nil, fmt.Errorf("state graph of %s exceeds %d states", p.Name, maxStates)
				}
				queue = append(queue, ns)
			}
		}
	}
	return g, nil
}
