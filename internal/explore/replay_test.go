package explore

import (
	"strings"
	"testing"

	"mpbasset/internal/mptest"
)

func TestReplayVerifiesStateKeys(t *testing.T) {
	trap, err := mptest.IgnoringTrap(3)
	if err != nil {
		t.Fatal(err)
	}
	// The reduced trace walks the token ring before violating, giving a
	// multi-step counterexample: [CYC, CYC, VIOLATE].
	res, err := BFS(trap, Options{Expander: loopExpander{}, TrackTrace: true})
	if err != nil {
		t.Fatal(err)
	}
	if res.Verdict != VerdictViolated || len(res.Trace) != 3 {
		t.Fatalf("expected a 3-step violation trace, got %s (trace %d)", res.Verdict, len(res.Trace))
	}

	// The genuine trace replays, key checks included.
	if _, err := ReplayViolation(trap, res.Trace, nil); err != nil {
		t.Fatalf("genuine trace rejected: %v", err)
	}

	// A corrupted StateKey — e.g. produced by a canonicalization bug — is
	// caught, including on the final step.
	for _, corrupt := range []int{0, len(res.Trace) - 1} {
		mangled := append([]Step(nil), res.Trace...)
		mangled[corrupt].StateKey = "bogus|" + mangled[corrupt].StateKey
		_, err := Replay(trap, mangled, nil)
		if err == nil {
			t.Fatalf("corrupted step %d accepted", corrupt)
		}
		if !strings.Contains(err.Error(), "state key mismatch") {
			t.Errorf("corrupted step %d: error %q, want a state key mismatch", corrupt, err)
		}
	}

	// An applicable event leading to the wrong state is caught by the key
	// check even though execution succeeds: the final VIOLATE step applies
	// from the initial state too, but reaches a state with the token in
	// the wrong position.
	misplaced := []Step{res.Trace[len(res.Trace)-1]}
	if _, err := Replay(trap, misplaced, nil); err == nil || !strings.Contains(err.Error(), "state key mismatch") {
		t.Errorf("misplaced final step: error %v, want a state key mismatch", err)
	}

	// A non-applicable event still errors as before: dropping the first
	// hop leaves a CYC consumption whose message is not in flight.
	if _, err := Replay(trap, res.Trace[1:], nil); err == nil || strings.Contains(err.Error(), "state key mismatch") {
		t.Errorf("front-truncated trace: error %v, want an execution error", err)
	}
}
