// Differential tests of the frontier-parallel BFS engine: for every
// bundled protocol and every reduction combination, ParallelBFS must
// report results identical to sequential BFS for any worker count, and
// must agree with DFS on violation reachability. The tests run under
// go test -race in CI, which also exercises the engine's synchronization.
package explore_test

import (
	"errors"
	"strings"
	"testing"
	"time"

	"mpbasset/internal/cli"
	"mpbasset/internal/core"
	"mpbasset/internal/eval"
	"mpbasset/internal/explore"
	"mpbasset/internal/por"
	"mpbasset/internal/refine"
	"mpbasset/internal/symmetry"
)

// protoCase is one bundled-protocol instance, sized so the full matrix
// stays fast under the race detector while still covering both verified
// and violating models.
type protoCase struct {
	name     string
	protocol string
	setting  string
	wrong    bool
}

func protoCases() []protoCase {
	return []protoCase{
		{"Paxos_221", "paxos", "2,2,1", false},
		{"FaultyPaxos_221", "faulty-paxos", "2,2,1", false},
		{"Multicast_3011", "multicast", "3,0,1,1", false},
		{"Multicast_2121", "multicast", "2,1,2,1", false},
		{"Storage_21", "storage", "2,1", false},
		{"Storage_22_wrong", "storage", "2,2", true},
	}
}

// reduction is one of the reduction combinations of the differential
// matrix. build returns the (possibly refined) protocol plus the search
// options carrying the expander/canon hooks.
type reduction struct {
	name  string
	build func(t *testing.T, pc protoCase) (*core.Protocol, explore.Options)
}

func buildProto(t *testing.T, pc protoCase) (*core.Protocol, [][]core.ProcessID) {
	t.Helper()
	p, roles, err := cli.BuildProtocol(pc.protocol, pc.setting, "", pc.wrong)
	if err != nil {
		t.Fatal(err)
	}
	return p, roles
}

func withSPOR(t *testing.T, p *core.Protocol, xo explore.Options) explore.Options {
	t.Helper()
	exp, err := por.NewExpander(p)
	if err != nil {
		t.Fatal(err)
	}
	xo.Expander = exp
	return xo
}

func reductions() []reduction {
	return []reduction{
		{"Full", func(t *testing.T, pc protoCase) (*core.Protocol, explore.Options) {
			p, _ := buildProto(t, pc)
			return p, explore.Options{}
		}},
		{"SPOR", func(t *testing.T, pc protoCase) (*core.Protocol, explore.Options) {
			p, _ := buildProto(t, pc)
			return p, withSPOR(t, p, explore.Options{})
		}},
		{"SPOR_Symmetry", func(t *testing.T, pc protoCase) (*core.Protocol, explore.Options) {
			p, roles := buildProto(t, pc)
			canon, err := symmetry.New(p.N, roles)
			if err != nil {
				t.Fatal(err)
			}
			return p, withSPOR(t, p, explore.Options{Canon: canon.Canon})
		}},
		{"Refined", func(t *testing.T, pc protoCase) (*core.Protocol, explore.Options) {
			p, _ := buildProto(t, pc)
			sp, err := refine.Split(p, refine.Combined)
			if err != nil {
				t.Fatal(err)
			}
			return sp, withSPOR(t, sp, explore.Options{})
		}},
	}
}

// statsEqual compares every field covered by the determinism guarantee
// (eval.VolatileStatsFields — wall-clock and spill activity — masked).
func statsEqual(a, b explore.Stats) bool {
	return eval.StatsEqualModuloVolatile(a, b)
}

// stepEqual compares trace steps by event identity and reached state key
// (core.Event holds slices and is not directly comparable).
func stepEqual(a, b explore.Step) bool {
	return a.StateKey == b.StateKey && a.Event.Key() == b.Event.Key()
}

// parallelConfig is one scheduler configuration of the differential
// matrix: worker count plus the work-stealing/batching knobs.
type parallelConfig struct {
	name    string
	workers int
	sched   explore.Sched
	chunk   int
	batch   int
}

// parallelConfigs covers both schedulers and the edge settings of the
// chunking/batching knobs: adaptive defaults, chunk and batch forced to 1
// (maximum stealing and per-key inserts), and awkward odd sizes.
func parallelConfigs() []parallelConfig {
	return []parallelConfig{
		{"workers-1", 1, explore.SchedWorkStealing, 0, 0},
		{"workers-2", 2, explore.SchedWorkStealing, 0, 0},
		{"workers-8", 8, explore.SchedWorkStealing, 0, 0},
		{"workers-8-chunk1-batch1", 8, explore.SchedWorkStealing, 1, 1},
		{"workers-3-chunk5-batch3", 3, explore.SchedWorkStealing, 5, 3},
		{"workers-8-single-index", 8, explore.SchedSingleIndex, 0, 0},
	}
}

// TestParallelBFSMatchesSequentialBFS is the differential suite: for every
// bundled protocol, reduction combination and scheduler configuration
// (work-stealing with assorted chunk/batch settings and the single-index
// baseline), ParallelBFS must report the identical verdict, statistics and
// counterexample trace as sequential BFS.
func TestParallelBFSMatchesSequentialBFS(t *testing.T) {
	for _, pc := range protoCases() {
		for _, red := range reductions() {
			t.Run(pc.name+"/"+red.name, func(t *testing.T) {
				p, xo := red.build(t, pc)
				xo.TrackTrace = true
				xo.MaxDuration = 2 * time.Minute
				seq, err := explore.BFS(p, xo)
				if err != nil {
					t.Fatal(err)
				}
				for _, cfg := range parallelConfigs() {
					pxo := xo
					pxo.Workers = cfg.workers
					pxo.Sched = cfg.sched
					pxo.ChunkSize = cfg.chunk
					pxo.BatchSize = cfg.batch
					par, err := explore.ParallelBFS(p, pxo)
					if err != nil {
						t.Fatalf("%s: %v", cfg.name, err)
					}
					if par.Verdict != seq.Verdict {
						t.Errorf("%s: verdict %s, sequential %s", cfg.name, par.Verdict, seq.Verdict)
					}
					if par.Stats.States != seq.Stats.States {
						t.Errorf("%s: states %d, sequential %d", cfg.name, par.Stats.States, seq.Stats.States)
					}
					if !statsEqual(par.Stats, seq.Stats) {
						t.Errorf("%s: stats %+v, sequential %+v", cfg.name, par.Stats, seq.Stats)
					}
					if (par.Violation != nil) != (seq.Violation != nil) {
						t.Errorf("%s: violation %v, sequential %v", cfg.name, par.Violation, seq.Violation)
					}
					if len(par.Trace) != len(seq.Trace) {
						t.Errorf("%s: trace length %d, sequential %d", cfg.name, len(par.Trace), len(seq.Trace))
					} else {
						for i := range par.Trace {
							if !stepEqual(par.Trace[i], seq.Trace[i]) {
								t.Errorf("%s: trace step %d = %+v, sequential %+v", cfg.name, i, par.Trace[i], seq.Trace[i])
								break
							}
						}
					}
					if par.Verdict == explore.VerdictViolated {
						if _, err := explore.ReplayViolation(p, par.Trace, xo.Canon); err != nil {
							t.Errorf("%s: counterexample does not replay: %v", cfg.name, err)
						}
					}
				}
			})
		}
	}
}

// TestParallelBFSViolationReachabilityMatchesDFS cross-checks the engines:
// ParallelBFS must find a violation exactly when DFS does, for every
// protocol and reduction combination.
func TestParallelBFSViolationReachabilityMatchesDFS(t *testing.T) {
	for _, pc := range protoCases() {
		for _, red := range reductions() {
			t.Run(pc.name+"/"+red.name, func(t *testing.T) {
				p, xo := red.build(t, pc)
				xo.MaxDuration = 2 * time.Minute
				dfs, err := explore.DFS(p, xo)
				if err != nil {
					t.Fatal(err)
				}
				pxo := xo
				pxo.Workers = 4
				par, err := explore.ParallelBFS(p, pxo)
				if err != nil {
					t.Fatal(err)
				}
				if dfsViolated, parViolated := dfs.Verdict == explore.VerdictViolated, par.Verdict == explore.VerdictViolated; dfsViolated != parViolated {
					t.Errorf("violation reachability: DFS %v (%s), ParallelBFS %v (%s)",
						dfsViolated, dfs.Verdict, parViolated, par.Verdict)
				}
			})
		}
	}
}

// TestParallelBFSPaperPaxos is the acceptance check on the paper's Paxos
// instance (2,3,1): ≥4 workers must explore the SPOR-reduced model to the
// same state count and verdict as sequential BFS.
func TestParallelBFSPaperPaxos(t *testing.T) {
	if testing.Short() {
		t.Skip("paper-scale Paxos skipped in -short mode")
	}
	p, _, err := cli.BuildProtocol("paxos", "2,3,1", "", false)
	if err != nil {
		t.Fatal(err)
	}
	xo := withSPOR(t, p, explore.Options{MaxDuration: 5 * time.Minute})
	seq, err := explore.BFS(p, xo)
	if err != nil {
		t.Fatal(err)
	}
	xo.Workers = 4
	xo.Store = explore.NewShardedHashStore()
	par, err := explore.ParallelBFS(p, xo)
	if err != nil {
		t.Fatal(err)
	}
	if par.Verdict != seq.Verdict || par.Stats.States != seq.Stats.States {
		t.Errorf("parallel: %s %d states; sequential: %s %d states",
			par.Verdict, par.Stats.States, seq.Verdict, seq.Stats.States)
	}
	if seq.Verdict != explore.VerdictVerified {
		t.Errorf("Paxos (2,3,1) should verify, got %s", seq.Verdict)
	}
}

// TestParallelBFSDeterministic runs the same search repeatedly with the
// maximum worker count and demands bit-identical results — the per-level
// deterministic merge must hide all scheduling nondeterminism.
func TestParallelBFSDeterministic(t *testing.T) {
	p, _, err := cli.BuildProtocol("storage", "2,2", "", true)
	if err != nil {
		t.Fatal(err)
	}
	var base *explore.Result
	for i := 0; i < 5; i++ {
		res, err := explore.ParallelBFS(p, explore.Options{Workers: 8, TrackTrace: true})
		if err != nil {
			t.Fatal(err)
		}
		if base == nil {
			base = res
			continue
		}
		if res.Verdict != base.Verdict || !statsEqual(res.Stats, base.Stats) || len(res.Trace) != len(base.Trace) {
			t.Fatalf("run %d differs: %s %+v (trace %d) vs %s %+v (trace %d)",
				i, res.Verdict, res.Stats, len(res.Trace), base.Verdict, base.Stats, len(base.Trace))
		}
		for j := range res.Trace {
			if !stepEqual(res.Trace[j], base.Trace[j]) {
				t.Fatalf("run %d: trace step %d differs", i, j)
			}
		}
	}
}

// TestParallelBFSMaxStates checks the limiter semantics in parallel mode:
// the result must be marked limited, the reported state count must equal
// the bound exactly (the merge commits states in sequential order and
// stops at the bound), and the backing store may overshoot by at most the
// successors of one frontier.
func TestParallelBFSMaxStates(t *testing.T) {
	p, _, err := cli.BuildProtocol("paxos", "2,3,1", "", false)
	if err != nil {
		t.Fatal(err)
	}
	const bound = 1000
	store := explore.NewShardedExactStore()
	res, err := explore.ParallelBFS(p, explore.Options{Workers: 8, MaxStates: bound, Store: store})
	if err != nil {
		t.Fatal(err)
	}
	if res.Verdict != explore.VerdictLimit {
		t.Errorf("verdict = %s, want Limit", res.Verdict)
	}
	if res.Stats.States != bound {
		t.Errorf("states = %d, want exactly %d", res.Stats.States, bound)
	}
	// Sequential BFS under the same bound must agree on everything.
	seq, err := explore.BFS(p, explore.Options{MaxStates: bound})
	if err != nil {
		t.Fatal(err)
	}
	if seq.Verdict != res.Verdict || !statsEqual(seq.Stats, res.Stats) {
		t.Errorf("parallel limited stats %+v, sequential %+v", res.Stats, seq.Stats)
	}
	// The store may hold states beyond the bound (inserted by workers whose
	// level was cut short by the limit) but only up to one frontier's worth:
	// far less than the full 25k+ state space.
	if store.Len() < bound {
		t.Errorf("store holds %d states, fewer than the %d reported", store.Len(), bound)
	}
	if store.Len() > 10*bound {
		t.Errorf("store holds %d states, more than one frontier beyond the bound of %d", store.Len(), bound)
	}
}

// TestParallelBFSMaxDuration checks that a tiny time budget marks the
// result limited rather than verified.
func TestParallelBFSMaxDuration(t *testing.T) {
	p, _, err := cli.BuildProtocol("paxos", "2,3,1", "", false)
	if err != nil {
		t.Fatal(err)
	}
	res, err := explore.ParallelBFS(p, explore.Options{Workers: 4, MaxDuration: time.Millisecond})
	if err != nil {
		t.Fatal(err)
	}
	if res.Verdict != explore.VerdictLimit {
		t.Errorf("verdict = %s, want Limit", res.Verdict)
	}
}

// TestParallelBFSTraceReplay is the counterexample regression test: a
// violation found in parallel must carry a trace that replays from the
// initial state to a violating state, and the trace must be the sequential
// engine's, step for step.
func TestParallelBFSTraceReplay(t *testing.T) {
	for _, pc := range []protoCase{
		{"FaultyPaxos_221", "faulty-paxos", "2,2,1", false},
		{"Storage_22_wrong", "storage", "2,2", true},
		{"Multicast_2121", "multicast", "2,1,2,1", false},
	} {
		t.Run(pc.name, func(t *testing.T) {
			p, _ := buildProto(t, pc)
			res, err := explore.ParallelBFS(p, explore.Options{Workers: 8, TrackTrace: true})
			if err != nil {
				t.Fatal(err)
			}
			if res.Verdict != explore.VerdictViolated {
				t.Fatalf("verdict = %s, want CE", res.Verdict)
			}
			if len(res.Trace) == 0 {
				t.Fatal("violated verdict with empty trace")
			}
			st, err := explore.ReplayViolation(p, res.Trace, nil)
			if err != nil {
				t.Fatalf("counterexample does not replay: %v", err)
			}
			if st == nil {
				t.Fatal("replay returned no state")
			}
			seq, err := explore.BFS(p, explore.Options{TrackTrace: true})
			if err != nil {
				t.Fatal(err)
			}
			if len(seq.Trace) != len(res.Trace) {
				t.Fatalf("trace length %d, sequential %d", len(res.Trace), len(seq.Trace))
			}
			for i := range res.Trace {
				if !stepEqual(res.Trace[i], seq.Trace[i]) {
					t.Errorf("trace step %d = %+v, sequential %+v", i, res.Trace[i], seq.Trace[i])
				}
			}
		})
	}
}

// TestPrePopulatedStoreAgreement pins the States semantics across all
// three stateful engines: Stats.States counts states discovered by the
// run, so a caller-supplied store already holding the whole state space
// must yield States == 1 (just the root), all successors as revisits, and
// must not trip MaxStates early — identically in BFS, DFS and ParallelBFS.
func TestPrePopulatedStoreAgreement(t *testing.T) {
	for _, pc := range []protoCase{
		{"Storage_21", "storage", "2,1", false},
		{"Paxos_221", "paxos", "2,2,1", false},
	} {
		t.Run(pc.name, func(t *testing.T) {
			p, _ := buildProto(t, pc)
			warm := func(st explore.Store) {
				if _, err := explore.BFS(p, explore.Options{Store: st}); err != nil {
					t.Fatal(err)
				}
			}
			type engine struct {
				name  string
				store explore.Store
				run   func(explore.Options) (*explore.Result, error)
			}
			engines := []engine{
				{"BFS", explore.NewExactStore(), func(xo explore.Options) (*explore.Result, error) { return explore.BFS(p, xo) }},
				{"DFS", explore.NewExactStore(), func(xo explore.Options) (*explore.Result, error) { return explore.DFS(p, xo) }},
				{"ParallelBFS", explore.NewShardedExactStore(), func(xo explore.Options) (*explore.Result, error) {
					xo.Workers = 4
					return explore.ParallelBFS(p, xo)
				}},
			}
			var results []*explore.Result
			for _, eng := range engines {
				warm(eng.store)
				full := eng.store.Len()
				// MaxStates below the full space: a run that counted the
				// pre-populated store would report VerdictLimit here.
				res, err := eng.run(explore.Options{Store: eng.store, MaxStates: full / 2})
				if err != nil {
					t.Fatalf("%s: %v", eng.name, err)
				}
				if res.Stats.States != 1 {
					t.Errorf("%s: states = %d, want 1 (all states pre-populated)", eng.name, res.Stats.States)
				}
				if res.Verdict != explore.VerdictVerified {
					t.Errorf("%s: verdict = %s, want Verified (pre-populated store must not trip MaxStates)", eng.name, res.Verdict)
				}
				if res.Stats.Revisits == 0 {
					t.Errorf("%s: no revisits reported against a fully warmed store", eng.name)
				}
				results = append(results, res)
			}
			for i := 1; i < len(results); i++ {
				if !statsEqual(results[i].Stats, results[0].Stats) {
					t.Errorf("%s stats %+v differ from %s stats %+v against identical warmed stores",
						engines[i].name, results[i].Stats, engines[0].name, results[0].Stats)
				}
			}
		})
	}
}

// TestParallelBFSWorkerValidation covers defaulted and clamped worker
// counts: zero/negative fall back to GOMAXPROCS, and a pool larger than
// the frontier must not deadlock or misbehave.
func TestParallelBFSWorkerValidation(t *testing.T) {
	p, _, err := cli.BuildProtocol("multicast", "3,0,1,1", "", false)
	if err != nil {
		t.Fatal(err)
	}
	seq, err := explore.BFS(p, explore.Options{})
	if err != nil {
		t.Fatal(err)
	}
	for _, workers := range []int{0, -1, 1, 64} {
		res, err := explore.ParallelBFS(p, explore.Options{Workers: workers})
		if err != nil {
			t.Fatalf("workers=%d: %v", workers, err)
		}
		if res.Verdict != seq.Verdict || res.Stats.States != seq.Stats.States {
			t.Errorf("workers=%d: %s %d states, sequential %s %d",
				workers, res.Verdict, res.Stats.States, seq.Verdict, seq.Stats.States)
		}
	}
}

// TestParallelBFSInitialViolation covers the degenerate counterexample at
// the initial state: the parallel engine must report it before spawning
// any workers, with an empty trace like the sequential engine.
func TestParallelBFSInitialViolation(t *testing.T) {
	p, _ := buildProto(t, protoCase{"", "storage", "2,1", false})
	bad := *p
	bad.Invariant = func(*core.State) error { return errors.New("violated in the initial state") }
	res, err := explore.ParallelBFS(&bad, explore.Options{Workers: 4, TrackTrace: true})
	if err != nil {
		t.Fatal(err)
	}
	if res.Verdict != explore.VerdictViolated {
		t.Fatalf("verdict = %s, want CE", res.Verdict)
	}
	if len(res.Trace) != 0 {
		t.Errorf("trace length %d, want empty (initial state violates)", len(res.Trace))
	}
	if res.Violation == nil || !strings.Contains(res.Violation.Error(), "initial") {
		t.Errorf("violation = %v", res.Violation)
	}
}
