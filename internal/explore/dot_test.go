package explore

import (
	"strings"
	"testing"
)

func TestWriteDOT(t *testing.T) {
	p := chain(t, 2, 0)
	g, err := BuildGraph(p, 0)
	if err != nil {
		t.Fatal(err)
	}
	var sb strings.Builder
	if err := g.WriteDOT(&sb); err != nil {
		t.Fatal(err)
	}
	out := sb.String()
	if !strings.HasPrefix(out, "digraph states {") || !strings.HasSuffix(strings.TrimSpace(out), "}") {
		t.Fatalf("not a DOT document:\n%s", out)
	}
	if strings.Count(out, "->") != g.NumEdges() {
		t.Errorf("edge lines %d != graph edges %d", strings.Count(out, "->"), g.NumEdges())
	}
	if !strings.Contains(out, "doublecircle") {
		t.Error("terminal states not marked")
	}
	if !strings.Contains(out, "color=blue") {
		t.Error("initial state not marked")
	}
}

func TestWriteTraceDOT(t *testing.T) {
	p := chain(t, 3, 2)
	res, err := DFS(p, Options{TrackTrace: true})
	if err != nil {
		t.Fatal(err)
	}
	if res.Verdict != VerdictViolated {
		t.Fatal("expected CE")
	}
	init, err := p.InitialState()
	if err != nil {
		t.Fatal(err)
	}
	var sb strings.Builder
	if err := WriteTraceDOT(&sb, init.Key(), res.Trace); err != nil {
		t.Fatal(err)
	}
	out := sb.String()
	if strings.Count(out, "->") != len(res.Trace) {
		t.Errorf("trace edges %d != steps %d", strings.Count(out, "->"), len(res.Trace))
	}
	if !strings.Contains(out, "color=red") {
		t.Error("violating state not marked")
	}
}

func TestTerminalStates(t *testing.T) {
	p := chain(t, 2, 0)
	g, err := BuildGraph(p, 0)
	if err != nil {
		t.Fatal(err)
	}
	terms := g.TerminalStates()
	if len(terms) != 1 {
		t.Fatalf("terminals = %v, want exactly one", terms)
	}
	if len(g.Edges[terms[0]]) != 0 {
		t.Fatal("terminal state has outgoing edges")
	}
}

func TestAbbreviate(t *testing.T) {
	if abbreviate("short", 10) != "short" {
		t.Error("short strings must pass through")
	}
	if got := abbreviate("0123456789abcdef", 8); len(got) > 10 { // ellipsis is multi-byte
		t.Errorf("abbreviation too long: %q", got)
	}
}
