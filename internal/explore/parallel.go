package explore

import (
	"math"
	"sync"
	"sync/atomic"

	"mpbasset/internal/core"
)

// traceFrom walks parent links back to the root and returns the forward
// counterexample path. A nil parents map (trace tracking disabled) yields
// nil.
func traceFrom(parents map[string]parentLink, key string) []Step {
	if parents == nil {
		return nil
	}
	var rev []Step
	for key != "" {
		pl, ok := parents[key]
		if !ok {
			break
		}
		rev = append(rev, Step{Event: pl.ev, StateKey: key})
		key = pl.parent
	}
	steps := make([]Step, len(rev))
	for i := range rev {
		steps[i] = rev[len(rev)-1-i]
	}
	return steps
}

// pNode is one frontier entry of the parallel search.
type pNode struct {
	st  *core.State
	key string
}

// pSucc is one successor computed by a worker: the executed event, the
// reached state and its canonical key, whether this instance won the
// visited-set insertion race, and — for the winner only — the state's
// invariant-check result.
type pSucc struct {
	st     *core.State
	key    string
	ev     core.Event
	wasNew bool
	verr   error
}

// pOutcome is the expansion record of one frontier node, written by exactly
// one worker and read only after the level's WaitGroup barrier.
// provisoFull marks a node whose reduced expansion the queue proviso
// promoted to a full one after the barrier.
type pOutcome struct {
	processed   bool // false when a deadline stop dropped the node
	deadlock    bool
	reduced     bool
	provisoFull bool
	succs       []pSucc
}

// claimSpan is one worker's remaining range [next, end) of the frontier,
// packed next<<32|end into a single atomic word so chunk claims and steals
// are lone CAS operations. The trailing padding keeps adjacent workers'
// spans on separate cache lines.
type claimSpan struct {
	v atomic.Uint64
	_ [56]byte
}

func packSpan(next, end int) uint64 { return uint64(next)<<32 | uint64(end) }

func (s *claimSpan) load() (next, end int) {
	v := s.v.Load()
	return int(v >> 32), int(v & math.MaxUint32)
}

// claim takes up to chunk nodes from the front of the span.
func (s *claimSpan) claim(chunk int) (lo, hi int, ok bool) {
	for {
		v := s.v.Load()
		next, end := int(v>>32), int(v&math.MaxUint32)
		if next >= end {
			return 0, 0, false
		}
		hi = next + chunk
		if hi > end {
			hi = end
		}
		if s.v.CompareAndSwap(v, packSpan(hi, end)) {
			return next, hi, true
		}
	}
}

// stealHalf takes the upper half (rounded up) of the span, leaving the
// lower half to the owner. A one-node span is taken whole.
func (s *claimSpan) stealHalf() (lo, hi int, ok bool) {
	for {
		v := s.v.Load()
		next, end := int(v>>32), int(v&math.MaxUint32)
		if next >= end {
			return 0, 0, false
		}
		mid := next + (end-next)/2
		if s.v.CompareAndSwap(v, packSpan(next, mid)) {
			return mid, end, true
		}
	}
}

// ParallelBFS runs the stateful breadth-first search of BFS with a worker
// pool: each frontier (BFS level) is expanded by Options.Workers goroutines
// (default runtime.GOMAXPROCS(0)) sharing a concurrent visited-state store
// (a ShardedStore unless Options.Store supplies one; other stores are
// serialized behind a mutex). Workers do the expensive, order-independent
// work — Enabled, Expand, Execute, canonicalization, visited-set insertion
// and invariant checks — while a deterministic sequential merge replays the
// level in frontier order to commit statistics, parent links and verdicts.
//
// Scheduling: under the default SchedWorkStealing, the frontier is
// partitioned into per-worker contiguous spans; workers claim chunks of
// their own span (Options.ChunkSize, adaptive by default) and, when their
// span drains, steal the upper half of the most-loaded worker's remaining
// span — so a few expensive nodes cannot leave the rest of the pool idle.
// Visited-set inserts are buffered per worker (Options.BatchSize) and
// flushed through the store's batched path (BatchStore.SeenBatch), taking
// each stripe lock once per batch instead of once per successor.
// Options.Sched = SchedSingleIndex selects the original scheduler (one
// shared atomic index, per-key inserts), kept as a benchmark baseline.
//
// Determinism: because the merge commits results in the exact order the
// sequential engine would have produced them, ParallelBFS returns
// bit-identical Verdict, Stats (except Duration) and Trace shape to BFS for
// any worker count and either scheduler, including runs stopped by
// MaxStates — with one caveat: under a canonicalizing Options.Canon the
// Violation error value may be reported by any member of the violating
// state's symmetry orbit. Only MaxDuration-limited runs are inherently
// nondeterministic (for them the partially expanded frontier is merged and
// the result marked limited). When a level is cut short by a violation or
// MaxStates, states already inserted by other workers stay in the store
// but are not reported, so the store may transiently exceed MaxStates by
// at most one frontier's successors.
//
// Soundness requires every hook to be safe for concurrent read-only use:
// the protocol's Enabled/Execute/CheckInvariant, the Canon function and the
// Expander must not mutate shared state (true of core.Protocol, package
// symmetry's canonicalizers and package por's expander, which only read
// their precomputed analyses). Like sequential BFS, the engine enforces
// the queue variant of the ignoring proviso (C3), so combining it with a
// reducing expander is sound on cyclic state graphs too: after each
// level's barrier, any reduced expansion whose successors were all visited
// before the level began is promoted to a full expansion
// (Stats.ProvisoExpansions). The proviso is evaluated against the
// visited-set snapshot committed at level start — a successor is "already
// visited" exactly when no phase-one insert of its key won — never against
// the live concurrent store, so the decision is independent of worker
// interleaving and identical to the sequential engine's.
func ParallelBFS(p *core.Protocol, opts Options) (result *Result, err error) {
	init, err := p.InitialState()
	if err != nil {
		return nil, err
	}
	var (
		res     Result
		store   = opts.concurrentStore()
		canon   = opts.canon()
		exp     = opts.expander()
		lim     = newLimiter(opts)
		limited bool
	)
	defer func() {
		res.Stats.Duration = lim.elapsed()
		captureStoreStats(store, &res.Stats)
		if serr := storeErr(store); serr != nil && err == nil {
			result, err = nil, serr
		}
	}()

	var parents map[string]parentLink
	if opts.TrackTrace {
		parents = make(map[string]parentLink)
	}

	// The queue proviso normally needs no membership probe here (the
	// level-start snapshot is derived from insert outcomes), but the
	// sequential engine does need one and, on a caller-supplied store
	// without Has, degrades by promoting every reduced expansion. Mirror
	// that degradation so the bit-identical guarantee holds for any store.
	conservativeProviso := false
	if opts.Store != nil {
		_, hasProbe := opts.Store.(HasStore)
		conservativeProviso = !hasProbe
	}

	ikey := canon(init)
	store.Seen(ikey)
	res.Stats.States = 1
	if verr := p.CheckInvariant(init); verr != nil {
		res.Verdict = VerdictViolated
		res.Violation = verr
		return &res, nil
	}

	frontier := []pNode{{st: init, key: ikey}}
	var stop atomic.Bool // deadline passed or a worker failed

	// expandNode computes one frontier node's successors into out: the
	// expander-chosen events are executed and canonicalized, but
	// visited-set membership (wasNew) is filled in by the scheduler's
	// insert strategy (batched or per-key).
	expandNode := func(n pNode, out *pOutcome) error {
		enabled := p.Enabled(n.st)
		if len(enabled) == 0 {
			out.deadlock = true
			out.processed = true
			return nil
		}
		chosen := exp.Expand(n.st, enabled, noProviso{})
		out.reduced = len(chosen) < len(enabled)
		out.succs = make([]pSucc, len(chosen))
		for k, ev := range chosen {
			ns, err := p.Execute(n.st, ev)
			if err != nil {
				return err
			}
			out.succs[k] = pSucc{st: ns, key: canon(ns), ev: ev}
		}
		out.processed = true
		return nil
	}

	for depth := 0; len(frontier) > 0; depth++ {
		if depth > res.Stats.MaxDepth {
			res.Stats.MaxDepth = depth
		}
		if lim.depthExceeded(depth) {
			limited = true
			break
		}

		// Parallel phase: expand every frontier node into its disjoint
		// outcome slot.
		outcomes := make([]pOutcome, len(frontier))
		workers := opts.workers()
		if workers > len(frontier) {
			workers = len(frontier)
		}
		var wg sync.WaitGroup
		errs := make([]error, workers)
		wg.Add(workers)

		if opts.Sched == SchedSingleIndex {
			var next atomic.Int64
			for w := 0; w < workers; w++ {
				go func(w int) {
					defer wg.Done()
					for {
						i := int(next.Add(1)) - 1
						if i >= len(frontier) || stop.Load() {
							return
						}
						if i&31 == 31 && lim.deadlinePassed() {
							stop.Store(true)
							return
						}
						if err := expandNode(frontier[i], &outcomes[i]); err != nil {
							errs[w] = err
							stop.Store(true)
							return
						}
						out := &outcomes[i]
						for j := range out.succs {
							sc := &out.succs[j]
							if !store.Seen(sc.key) {
								sc.wasNew = true
								sc.verr = p.CheckInvariant(sc.st)
							}
						}
					}
				}(w)
			}
		} else {
			spans := make([]claimSpan, workers)
			for w := range spans {
				spans[w].v.Store(packSpan(w*len(frontier)/workers, (w+1)*len(frontier)/workers))
			}
			chunk := opts.chunkSize(len(frontier), workers)
			batch := opts.batchSize()
			for w := 0; w < workers; w++ {
				go func(w int) {
					defer wg.Done()
					var (
						pendKeys  = make([]string, 0, batch)
						pendSuccs = make([]*pSucc, 0, batch)
						processed int
					)
					flush := func() {
						if len(pendKeys) == 0 {
							return
						}
						for k, dup := range seenBatch(store, pendKeys) {
							if !dup {
								sc := pendSuccs[k]
								sc.wasNew = true
								sc.verr = p.CheckInvariant(sc.st)
							}
						}
						pendKeys = pendKeys[:0]
						pendSuccs = pendSuccs[:0]
					}
					// The deferred flush keeps the invariant "processed
					// outcome ⇒ final wasNew/verr" on every exit path.
					defer flush()
					process := func(lo, hi int) bool {
						for i := lo; i < hi; i++ {
							if stop.Load() {
								return false
							}
							processed++
							if processed&31 == 0 && lim.deadlinePassed() {
								stop.Store(true)
								return false
							}
							if err := expandNode(frontier[i], &outcomes[i]); err != nil {
								errs[w] = err
								stop.Store(true)
								return false
							}
							out := &outcomes[i]
							for j := range out.succs {
								pendKeys = append(pendKeys, out.succs[j].key)
								pendSuccs = append(pendSuccs, &out.succs[j])
								if len(pendKeys) >= batch {
									flush()
								}
							}
						}
						return true
					}
					for {
						lo, hi, ok := spans[w].claim(chunk)
						if !ok {
							// Own span drained: steal the upper half of the
							// most-loaded span and make it the new own span
							// (so other idle workers can steal from it in
							// turn). No victim with work left means the
							// level is done claiming.
							victim, best := -1, 0
							for v := range spans {
								if v == w {
									continue
								}
								if next, end := spans[v].load(); end-next > best {
									best, victim = end-next, v
								}
							}
							if victim < 0 {
								return
							}
							slo, shi, stolen := spans[victim].stealHalf()
							if !stolen {
								continue // lost the race; rescan
							}
							spans[w].v.Store(packSpan(slo, shi))
							continue
						}
						if !process(lo, hi) {
							return
						}
					}
				}(w)
			}
		}
		wg.Wait()
		for _, werr := range errs {
			if werr != nil {
				return nil, werr
			}
		}

		// Queue proviso (C3): a reduced expansion that rediscovered only
		// states visited before this level began would defer its remaining
		// events forever around a cycle; promote it to a full expansion.
		// "Visited before the level began" is derived from the phase-one
		// insert outcomes — a key is outside the level-start snapshot iff
		// some successor instance won its insert (wasNew) — so the verdict
		// is order-independent and bit-identical to sequential BFS for any
		// worker count, scheduler and insert path. Promoted nodes are
		// re-expanded sequentially in frontier order: their phase-one
		// successors were all duplicates, so re-inserting cannot disturb
		// other outcomes, and the deferred events' states must be committed
		// in deterministic order anyway.
		anyReduced := false
		for i := range outcomes {
			if outcomes[i].processed && outcomes[i].reduced {
				anyReduced = true
				break
			}
		}
		if anyReduced {
			var fresh map[string]struct{}
			if !conservativeProviso {
				fresh = make(map[string]struct{})
				for i := range outcomes {
					if !outcomes[i].processed {
						continue
					}
					for j := range outcomes[i].succs {
						if sc := &outcomes[i].succs[j]; sc.wasNew {
							fresh[sc.key] = struct{}{}
						}
					}
				}
			}
			for i := range outcomes {
				out := &outcomes[i]
				if !out.processed || !out.reduced {
					continue
				}
				// conservativeProviso mirrors the sequential engine's
				// degradation for stores without a Has probe: promote
				// every reduced expansion (see bfsProviso.Ignoring),
				// keeping the two engines bit-identical there too.
				ignoring := true
				if !conservativeProviso {
					for j := range out.succs {
						if _, ok := fresh[out.succs[j].key]; ok {
							ignoring = false
							break
						}
					}
				}
				if !ignoring {
					continue
				}
				out.reduced = false
				out.provisoFull = true
				enabled := p.Enabled(frontier[i].st)
				out.succs = make([]pSucc, len(enabled))
				for k, ev := range enabled {
					ns, err := p.Execute(frontier[i].st, ev)
					if err != nil {
						return nil, err
					}
					sc := &out.succs[k]
					*sc = pSucc{st: ns, key: canon(ns), ev: ev}
					if !store.Seen(sc.key) {
						sc.wasNew = true
						sc.verr = p.CheckInvariant(sc.st)
					}
				}
			}
		}

		// Deterministic merge: commit the level in frontier order, exactly
		// as the sequential engine would have. newVerr maps each key first
		// inserted this level to its invariant result; entries are deleted
		// as the in-order walk claims them, so the discovering parent (and
		// the violating successor, if any) is the first occurrence in
		// sequential order regardless of which worker won the insert race.
		newVerr := make(map[string]error)
		for i := range outcomes {
			if !outcomes[i].processed {
				continue
			}
			for j := range outcomes[i].succs {
				if sc := &outcomes[i].succs[j]; sc.wasNew {
					newVerr[sc.key] = sc.verr
				}
			}
		}
		nextFrontier := make([]pNode, 0, len(newVerr))
	merge:
		for i := range outcomes {
			out := &outcomes[i]
			if !out.processed {
				continue
			}
			if out.deadlock {
				res.Stats.Deadlocks++
				continue
			}
			if out.reduced {
				res.Stats.ReducedExpansions++
			} else {
				res.Stats.FullExpansions++
				if out.provisoFull {
					res.Stats.ProvisoExpansions++
				}
			}
			for j := range out.succs {
				sc := &out.succs[j]
				res.Stats.Events++
				verr, isNew := newVerr[sc.key]
				if !isNew {
					res.Stats.Revisits++
					continue
				}
				delete(newVerr, sc.key)
				res.Stats.States++
				if parents != nil {
					parents[sc.key] = parentLink{parent: frontier[i].key, ev: sc.ev}
				}
				if verr != nil {
					res.Verdict = VerdictViolated
					res.Violation = verr
					res.Trace = traceFrom(parents, sc.key)
					return &res, nil
				}
				if lim.statesExceeded(res.Stats.States) || lim.timeExceeded() {
					limited = true
					break merge
				}
				nextFrontier = append(nextFrontier, pNode{st: sc.st, key: sc.key})
			}
		}
		if stop.Load() {
			limited = true
		}
		if limited {
			break
		}
		frontier = nextFrontier
	}

	if limited {
		res.Verdict = VerdictLimit
	} else {
		res.Verdict = VerdictVerified
	}
	return &res, nil
}
