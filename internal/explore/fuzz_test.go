// FuzzEngineAgreement is the cross-engine differential fuzz harness: fuzz
// inputs decode into a generated protocol (an mptest.GenConfig — ring
// size, cycle priority, fault/quorum knobs — or the ignoring trap), and
// every stateful engine must agree on it, over in-memory and spill-to-disk
// stores alike. Any divergence in verdict, state count, statistics or
// replayed trace fails the input. The BFS family (BFS, ParallelBFS under
// both schedulers) is held bit-identical to sequential BFS; the parallel
// DFS family (ParallelDFS at several worker counts and steal depths) is
// held bit-identical to sequential DFS, unreduced and SPOR-reduced alike.
// The seed corpus covers IgnoringTrap and the soundness-matrix
// configurations of por/proviso_test.go, so plain `go test` exercises them
// deterministically; `go test -fuzz FuzzEngineAgreement` explores the
// configuration space beyond the seeds (the `make fuzz` / CI smoke entry
// point).
//
// The harness additionally has a liveness mode (the livenessMode
// parameter): the input decodes into a protocol plus a Büchi property (a
// rounds-threshold eventually-goal, or the liveness trap's own property),
// the explicit Tarjan oracle of package liveness fixes the ground-truth
// verdict, and the NDFS family — sequential and ParallelNDFS at several
// worker counts, over in-memory and spill stores, unreduced and
// SPOR-reduced — must reach that verdict with every configuration
// bit-identical (stats, lasso trace, cycle shape) to the sequential NDFS
// reference of its reduction mode, and every reported lasso must replay.
// The fair parameter turns on weak fairness, exercising the copies
// monitor.
//
// The safety mode also runs a lossy-coverage leg: DFS and BFS over a
// deliberately tiny BitstateStore, whose hash collisions silently omit
// states. A lossy "no violation" is a coverage claim, not a verdict, so
// this is the one leg the harness deliberately does NOT hold to
// bit-identity — it asserts only the contracts a lossy run does make: any
// violation it reports is real (the trace replays), it never "finds" a
// violation in a space the exact reference verified, it never visits more
// states than the exact reference, and omissions are visible in the
// reported fill ratio.
//
// A third mode (the dporMode parameter, which takes precedence) targets the
// stateless dynamic-POR engine: the input decodes into a generated
// single-message model (quorum, cycle and trap knobs forced off — DPOR
// rejects quorum transitions and assumes acyclic state graphs), and
// dpor.ExploreParallel at 1, 2 and 4 workers must be bit-identical —
// verdict, statistics modulo the volatile speculation counters, violation
// and trace — to sequential dpor.Explore, with sleep sets on and off. The
// seed corpus mirrors the DPOR validation suite's generator configurations.
package explore_test

import (
	"testing"

	"mpbasset/internal/core"
	"mpbasset/internal/dpor"
	"mpbasset/internal/eval"
	"mpbasset/internal/explore"
	"mpbasset/internal/liveness"
	"mpbasset/internal/mptest"
	"mpbasset/internal/por"
)

// fuzzMaxStates bounds one fuzz execution; inputs whose unreduced state
// space exceeds it are skipped as uninteresting (the bound must never be
// hit mid-comparison, since a limited run's statistics depend on visit
// order).
const fuzzMaxStates = 5000

// fuzzEngines is the BFS-side engine matrix of the harness: sequential BFS
// and DFS plus ParallelBFS at 1 and 4 workers under both schedulers.
// Sequential BFS doubles as the reference when run over the in-memory
// store.
func fuzzEngines() []diffEngine {
	parallel := func(workers int, sched explore.Sched) func(*core.Protocol, explore.Options) (*explore.Result, error) {
		return func(p *core.Protocol, xo explore.Options) (*explore.Result, error) {
			xo.Workers = workers
			xo.Sched = sched
			return explore.ParallelBFS(p, xo)
		}
	}
	return []diffEngine{
		{"BFS", explore.BFS, true},
		{"DFS", explore.DFS, false},
		{"ParallelBFS-1", parallel(1, explore.SchedWorkStealing), true},
		{"ParallelBFS-4", parallel(4, explore.SchedWorkStealing), true},
		{"ParallelBFS-4-single-index", parallel(4, explore.SchedSingleIndex), true},
	}
}

// fuzzDFSEngines is the DFS-side matrix: ParallelDFS at 1 and 4 workers
// (plus a shallow steal depth, which stresses re-stealing), each held
// bit-identical — stats and trace — to the sequential DFS reference.
func fuzzDFSEngines() []diffEngine {
	pdfs := func(workers, stealDepth int) func(*core.Protocol, explore.Options) (*explore.Result, error) {
		return func(p *core.Protocol, xo explore.Options) (*explore.Result, error) {
			xo.Workers = workers
			xo.StealDepth = stealDepth
			return explore.ParallelDFS(p, xo)
		}
	}
	return []diffEngine{
		{"ParallelDFS-1", pdfs(1, 0), true},
		{"ParallelDFS-4", pdfs(4, 0), true},
		{"ParallelDFS-4-steal-1", pdfs(4, 1), true},
	}
}

// decodeFuzzProtocol maps raw fuzz arguments onto a bounded protocol:
// either the ignoring trap (ring 2..6) or a generated protocol whose
// knobs are clamped to the generator's meaningful ranges.
func decodeFuzzProtocol(seed int64, procs, ring, prio, threshold, rounds uint8, quorums, anyQuorums, cycles, trap bool) (*core.Protocol, error) {
	if trap {
		return mptest.IgnoringTrap(2 + int(ring%5))
	}
	return mptest.Random(mptest.GenConfig{
		Seed:          seed,
		MaxProcs:      2 + int(procs%3), // 2..4 processes
		Quorums:       quorums,
		AnyQuorums:    anyQuorums,
		Cycles:        cycles,
		RingSize:      int(ring % 6), // 0, 2..5 (1 behaves as the 2-bounce)
		CyclePriority: int(prio % 6), // benign 0 through adversarial 5
		Threshold:     int(threshold % 3),
		MaxRounds:     2 + int(rounds%3), // 2 (the default) .. 4 (deep spines)
	})
}

// decodeFuzzLiveness maps raw fuzz arguments onto a (protocol, property)
// pair for the liveness mode: the liveness trap with its own property, or
// a generated protocol with a rounds-threshold eventually-goal on process
// 0 (already instrumented for the property). fair turns on weak fairness.
func decodeFuzzLiveness(seed int64, procs, ring, prio, threshold, rounds uint8, quorums, anyQuorums, cycles, trap, fair bool) (*core.Protocol, *liveness.Property, error) {
	var (
		p    *core.Protocol
		prop *liveness.Property
		err  error
	)
	if trap {
		p, prop, err = mptest.LivenessTrap(2 + int(ring%5))
	} else {
		p, err = decodeFuzzProtocol(seed, procs, ring, prio, threshold, rounds, quorums, anyQuorums, cycles, false)
		if err == nil {
			goal := 1 + int(threshold%2)
			prop = liveness.Eventually("rounds reach goal", []core.ProcessID{0}, func(s *core.State) bool {
				return s.Local(0).(*mptest.Local).Rounds >= goal
			})
		}
	}
	if err != nil {
		return nil, nil, err
	}
	prop.WeakFair = fair
	p, err = liveness.Instrument(p, prop)
	if err != nil {
		return nil, nil, err
	}
	return p, prop, nil
}

// fuzzNDFSEngines is the liveness-mode matrix: ParallelNDFS at 1 and 4
// workers plus a shallow steal depth, each held bit-identical to the
// sequential NDFS reference of its reduction mode.
func fuzzNDFSEngines() []diffEngine {
	pndfs := func(workers, stealDepth int) func(*core.Protocol, explore.Options) (*explore.Result, error) {
		return func(p *core.Protocol, xo explore.Options) (*explore.Result, error) {
			xo.Workers = workers
			xo.StealDepth = stealDepth
			return explore.ParallelNDFS(p, xo)
		}
	}
	return []diffEngine{
		{"NDFS", explore.NDFS, true},
		{"ParallelNDFS-1", pndfs(1, 0), true},
		{"ParallelNDFS-4", pndfs(4, 0), true},
		{"ParallelNDFS-4-steal-1", pndfs(4, 1), true},
	}
}

// fuzzLivenessCheck is the liveness-mode body of the harness: oracle
// ground truth, then the NDFS matrix over stores and reductions held to
// the oracle's verdict and to per-mode bit-identity, with every lasso
// replayed.
func fuzzLivenessCheck(t *testing.T, p *core.Protocol, prop *liveness.Property) {
	ores, err := liveness.Oracle(p, prop, fuzzMaxStates)
	if err != nil {
		t.Fatal(err)
	}
	if ores.Limited {
		t.Skip("product exceeds the fuzz budget")
	}
	want := explore.VerdictVerified
	if ores.Violated {
		want = explore.VerdictViolated
	}
	exp, err := por.NewExpander(p)
	if err != nil {
		t.Fatal(err)
	}
	modes := []struct {
		name string
		exp  explore.Expander
	}{{"unreduced", nil}}
	if !prop.WeakFair {
		// Under weak fairness the NDFS engines force full expansion, so the
		// reduced mode would duplicate the unreduced one.
		modes = append(modes, struct {
			name string
			exp  explore.Expander
		}{"spor", exp})
	}
	for _, mode := range modes {
		refOpts := explore.Options{Property: prop, Expander: mode.exp, Store: explore.NewHashStore()}
		ref, err := explore.NDFS(p, refOpts)
		if err != nil {
			t.Fatalf("%s: %v", mode.name, err)
		}
		if ref.Verdict != want {
			t.Errorf("%s: sequential NDFS verdict %s, oracle %s (%d product states, %d accepting)",
				mode.name, ref.Verdict, want, ores.States, ores.AcceptingStates)
			continue
		}
		if ref.Verdict == explore.VerdictViolated {
			if _, err := explore.ReplayLasso(p, prop, ref.Trace, ref.CycleLen, ref.Stutter, nil); err != nil {
				t.Errorf("%s: lasso does not replay: %v", mode.name, err)
			}
		}
		for _, eng := range fuzzNDFSEngines() {
			for _, store := range []struct {
				name  string
				store func() explore.Store
			}{
				{"mem", func() explore.Store { return explore.NewHashStore() }},
				{"spill", func() explore.Store { return tinySpill(t, 512) }},
			} {
				run := explore.Options{Property: prop, Expander: mode.exp, Store: store.store()}
				res, err := eng.run(p, run)
				if err != nil {
					t.Fatalf("%s/%s/%s: %v", mode.name, eng.name, store.name, err)
				}
				label := mode.name + "/" + eng.name + "/" + store.name
				if res.Verdict != ref.Verdict || res.CycleLen != ref.CycleLen || res.Stutter != ref.Stutter {
					t.Errorf("%s: verdict/cycle (%s, %d, %v), reference (%s, %d, %v)",
						label, res.Verdict, res.CycleLen, res.Stutter, ref.Verdict, ref.CycleLen, ref.Stutter)
					continue
				}
				if rs, ws := maskSpill(res.Stats), maskSpill(ref.Stats); rs != ws {
					t.Errorf("%s: stats %+v, reference %+v", label, rs, ws)
				}
				if len(res.Trace) != len(ref.Trace) {
					t.Errorf("%s: trace length %d, reference %d", label, len(res.Trace), len(ref.Trace))
					continue
				}
				for i := range res.Trace {
					if res.Trace[i].StateKey != ref.Trace[i].StateKey ||
						res.Trace[i].Event.Key() != ref.Trace[i].Event.Key() {
						t.Errorf("%s: trace step %d diverges", label, i)
						break
					}
				}
			}
		}
	}
}

// fuzzDPORCheck is the dporMode body of the harness: on a generated
// single-message model, sequential DPOR fixes the reference per sleep-set
// mode and the speculative parallel engine at 1, 2 and 4 workers is held
// bit-identical to it — verdict, statistics modulo the volatile speculation
// counters, violation message and counterexample trace — with every
// violation replayed.
func fuzzDPORCheck(t *testing.T, p *core.Protocol) {
	for _, sleep := range []bool{true, false} {
		cfg := dpor.Config{SleepSets: sleep}
		opts := explore.Options{MaxStates: fuzzMaxStates}
		ref, err := dpor.ExploreWith(p, opts, cfg)
		if err != nil {
			t.Fatalf("sequential DPOR (sleep=%v): %v", sleep, err)
		}
		if ref.Verdict == explore.VerdictLimit {
			t.Skip("state space exceeds the fuzz budget")
		}
		if ref.Verdict == explore.VerdictViolated {
			if _, err := explore.ReplayViolation(p, ref.Trace, nil); err != nil {
				t.Errorf("sleep=%v: sequential DPOR counterexample does not replay: %v", sleep, err)
			}
		}
		for _, w := range []int{1, 2, 4} {
			popts := opts
			popts.Workers = w
			res, err := dpor.ExploreParallelWith(p, popts, cfg)
			if err != nil {
				t.Fatalf("parallel DPOR w=%d (sleep=%v): %v", w, sleep, err)
			}
			if res.Verdict != ref.Verdict {
				t.Errorf("dpor w=%d sleep=%v: verdict %s, sequential %s", w, sleep, res.Verdict, ref.Verdict)
				continue
			}
			if !eval.StatsEqualModuloVolatile(res.Stats, ref.Stats) {
				rs, ws := res.Stats, ref.Stats
				eval.MaskVolatileStats(&rs)
				eval.MaskVolatileStats(&ws)
				t.Errorf("dpor w=%d sleep=%v: stats %+v, sequential %+v", w, sleep, rs, ws)
			}
			refViol, resViol := "", ""
			if ref.Violation != nil {
				refViol = ref.Violation.Error()
			}
			if res.Violation != nil {
				resViol = res.Violation.Error()
			}
			if resViol != refViol {
				t.Errorf("dpor w=%d sleep=%v: violation %q, sequential %q", w, sleep, resViol, refViol)
			}
			if len(res.Trace) != len(ref.Trace) {
				t.Errorf("dpor w=%d sleep=%v: trace length %d, sequential %d", w, sleep, len(res.Trace), len(ref.Trace))
				continue
			}
			for i := range res.Trace {
				if res.Trace[i].StateKey != ref.Trace[i].StateKey ||
					res.Trace[i].Event.Key() != ref.Trace[i].Event.Key() {
					t.Errorf("dpor w=%d sleep=%v: trace step %d diverges", w, sleep, i)
					break
				}
			}
		}
	}
}

// fuzzLossyCheck is the lossy-coverage leg of the safety mode: sequential
// DFS and BFS over a deliberately tiny bitstate store (512 bits after the
// constructor's floor, so hash collisions — omitted states — are forced on
// all but the smallest inputs). Lossy results are coverage claims, not
// verdicts, so nothing here is compared for bit-identity against the exact
// engines; the leg pins the contracts a lossy run does make instead. ref
// is the exact unreduced BFS reference (never VerdictLimit — the caller
// skips those inputs).
func fuzzLossyCheck(t *testing.T, p *core.Protocol, ref *explore.Result) {
	for _, eng := range []diffEngine{
		{"DFS", explore.DFS, false},
		{"BFS", explore.BFS, false},
	} {
		xo := explore.Options{TrackTrace: true, MaxStates: fuzzMaxStates}
		xo.Store = explore.NewBitstateStore(64, 3)
		res, err := eng.run(p, xo)
		if err != nil {
			t.Fatalf("lossy/%s: %v", eng.name, err)
		}
		if res.Stats.BitstateFill <= 0 || res.Stats.BitstateFill > 1 {
			t.Errorf("lossy/%s: fill %v outside (0,1] after a non-empty run", eng.name, res.Stats.BitstateFill)
		}
		if res.Verdict == explore.VerdictViolated {
			// A lossy violation is real — omission can hide states, never
			// invent them — so its trace must replay...
			if _, err := explore.ReplayViolation(p, res.Trace, nil); err != nil {
				t.Errorf("lossy/%s: counterexample does not replay: %v", eng.name, err)
			}
			// ...and a space the exact reference verified has none to find.
			if ref.Verdict == explore.VerdictVerified {
				t.Errorf("lossy/%s: violation reported in a space the exact reference verified", eng.name)
			}
		}
		if ref.Verdict == explore.VerdictVerified {
			// With no violation to stop at, the lossy run sees a subset of
			// the exact space: omission only shrinks it. (A violated
			// reference stops early, so no bound holds there.)
			if res.Stats.States > ref.Stats.States {
				t.Errorf("lossy/%s: %d states exceeds the exact reference's %d", eng.name, res.Stats.States, ref.Stats.States)
			}
			// Every omitted state is a collision, and collisions need set
			// bits.
			if res.Stats.States < ref.Stats.States && res.Stats.BitstateOmission <= 0 {
				t.Errorf("lossy/%s: %d states omitted but omission estimate is %v", eng.name,
					ref.Stats.States-res.Stats.States, res.Stats.BitstateOmission)
			}
		}
	}
}

func FuzzEngineAgreement(f *testing.F) {
	// Seed corpus: an acyclic quorum protocol, the cyclic soundness-matrix
	// configurations (two-process bounce and longer rings at benign and
	// adversarial cycle priorities, with and without violations), a
	// violating deep-cycle seed, two deep-round seeds (long first-child
	// spines, the ParallelDFS steal stress), and the ignoring trap at
	// rings 2 and 4.
	f.Add(int64(0), uint8(2), uint8(0), uint8(0), uint8(0), uint8(0), true, false, false, false, false, false, false)
	f.Add(int64(0), uint8(2), uint8(0), uint8(0), uint8(1), uint8(0), true, false, true, false, false, false, false)
	f.Add(int64(5), uint8(2), uint8(0), uint8(3), uint8(1), uint8(0), true, false, true, false, false, false, false)
	f.Add(int64(3), uint8(2), uint8(3), uint8(3), uint8(1), uint8(0), true, false, true, false, false, false, false)
	f.Add(int64(9), uint8(2), uint8(4), uint8(3), uint8(2), uint8(0), true, true, true, false, false, false, false)
	f.Add(int64(1), uint8(2), uint8(3), uint8(3), uint8(2), uint8(0), true, false, true, false, false, false, false)
	f.Add(int64(4), uint8(1), uint8(0), uint8(0), uint8(0), uint8(2), true, false, false, false, false, false, false)
	f.Add(int64(7), uint8(2), uint8(3), uint8(3), uint8(1), uint8(2), true, false, true, false, false, false, false)
	f.Add(int64(0), uint8(0), uint8(0), uint8(0), uint8(0), uint8(0), false, false, false, true, false, false, false)
	f.Add(int64(0), uint8(0), uint8(2), uint8(0), uint8(0), uint8(0), false, false, false, true, false, false, false)

	// Liveness-mode seeds: the liveness trap at rings 2 and 4 (the proviso
	// regression, where proviso-free reduction hides the accepting cycle),
	// cyclic generated models at the adversarial cycle priority with a
	// real-cycle counterexample, an acyclic quorum model whose runs halt
	// short of the goal (stutter lassos), a verified-side model, and two
	// weakly fair variants (the copies monitor over both polarities).
	f.Add(int64(0), uint8(0), uint8(0), uint8(0), uint8(0), uint8(0), false, false, false, true, true, false, false)
	f.Add(int64(0), uint8(0), uint8(2), uint8(0), uint8(0), uint8(0), false, false, false, true, true, false, false)
	f.Add(int64(1), uint8(2), uint8(3), uint8(3), uint8(1), uint8(0), true, false, true, false, true, false, false)
	f.Add(int64(3), uint8(2), uint8(3), uint8(3), uint8(0), uint8(0), true, false, true, false, true, false, false)
	f.Add(int64(0), uint8(2), uint8(0), uint8(0), uint8(1), uint8(0), true, false, false, false, true, false, false)
	f.Add(int64(4), uint8(1), uint8(0), uint8(0), uint8(0), uint8(2), true, false, false, false, true, false, false)
	f.Add(int64(0), uint8(0), uint8(0), uint8(0), uint8(0), uint8(0), false, false, false, true, true, true, false)
	f.Add(int64(1), uint8(2), uint8(3), uint8(3), uint8(1), uint8(0), true, false, true, false, true, true, false)

	// DPOR-mode seeds, mirroring the validation suite's generator
	// configurations (internal/dpor's differential tests): small rings at
	// thresholds 0..2 and a deep-round spine, all single-message.
	f.Add(int64(0), uint8(0), uint8(0), uint8(0), uint8(0), uint8(0), false, false, false, false, false, false, true)
	f.Add(int64(3), uint8(1), uint8(0), uint8(0), uint8(2), uint8(0), false, false, false, false, false, false, true)
	f.Add(int64(9), uint8(2), uint8(0), uint8(0), uint8(1), uint8(0), false, false, false, false, false, false, true)
	f.Add(int64(17), uint8(2), uint8(0), uint8(0), uint8(2), uint8(2), false, false, false, false, false, false, true)

	f.Fuzz(func(t *testing.T, seed int64, procs, ring, prio, threshold, rounds uint8, quorums, anyQuorums, cycles, trap, livenessMode, fair, dporMode bool) {
		if dporMode {
			// Single-message only: quorum transitions are rejected by the
			// engine and cyclic state graphs break the stateless search, so
			// those knobs (and the traps) are forced off.
			p, err := decodeFuzzProtocol(seed, procs, ring, prio, threshold, rounds, false, false, false, false)
			if err != nil {
				t.Fatalf("generator rejected a clamped config: %v", err)
			}
			fuzzDPORCheck(t, p)
			return
		}
		if livenessMode {
			p, prop, err := decodeFuzzLiveness(seed, procs, ring, prio, threshold, rounds, quorums, anyQuorums, cycles, trap, fair)
			if err != nil {
				t.Fatalf("generator rejected a clamped config: %v", err)
			}
			fuzzLivenessCheck(t, p, prop)
			return
		}
		p, err := decodeFuzzProtocol(seed, procs, ring, prio, threshold, rounds, quorums, anyQuorums, cycles, trap)
		if err != nil {
			t.Fatalf("generator rejected a clamped config: %v", err)
		}
		xo := explore.Options{TrackTrace: true, MaxStates: fuzzMaxStates}

		// References: sequential unreduced BFS and DFS over the in-memory
		// store, one per engine family.
		memRef := xo
		memRef.Store = explore.NewHashStore()
		ref, err := explore.BFS(p, memRef)
		if err != nil {
			t.Fatal(err)
		}
		if ref.Verdict == explore.VerdictLimit {
			t.Skip("state space exceeds the fuzz budget")
		}
		dfsMemRef := xo
		dfsMemRef.Store = explore.NewHashStore()
		dfsRef, err := explore.DFS(p, dfsMemRef)
		if err != nil {
			t.Fatal(err)
		}

		// Lossy-coverage leg: no bit-identity, only the coverage-claim
		// contracts (see fuzzLossyCheck).
		fuzzLossyCheck(t, p, ref)

		check := func(label string, eng diffEngine, reduced *por.Expander, want *explore.Result) {
			for _, spillStore := range []struct {
				name  string
				store func() explore.Store
			}{
				{"mem", func() explore.Store { return explore.NewHashStore() }},
				{"spill", func() explore.Store { return tinySpill(t, 512) }},
			} {
				run := xo
				run.Store = spillStore.store()
				if reduced != nil {
					run.Expander = reduced
				}
				res, err := eng.run(p, run)
				if err != nil {
					t.Fatalf("%s/%s/%s: %v", label, eng.name, spillStore.name, err)
				}
				// Soundness first: every engine, store and reduction must
				// reach the reference verdict.
				if res.Verdict != ref.Verdict {
					t.Errorf("%s/%s/%s: verdict %s, reference %s", label, eng.name, spillStore.name, res.Verdict, ref.Verdict)
					continue
				}
				if res.Verdict == explore.VerdictViolated {
					if _, err := explore.ReplayViolation(p, res.Trace, nil); err != nil {
						t.Errorf("%s/%s/%s: counterexample does not replay: %v", label, eng.name, spillStore.name, err)
					}
				}
				if want == nil {
					continue // reduced DFS explores its own reduced graph
				}
				// Bit-identity against the family reference. Sequential
				// DFS is non-strict vs the BFS reference: it visits the
				// identical unreduced state space but at first-path depths
				// (and stops at a different first violation), so it is
				// compared on verified runs with MaxDepth masked. Strict
				// engines (ParallelBFS vs BFS, ParallelDFS vs DFS) must
				// match their reference's stats and trace exactly.
				rs, ws := maskSpill(res.Stats), maskSpill(want.Stats)
				if !eng.strict {
					if res.Verdict != explore.VerdictVerified {
						continue
					}
					rs.MaxDepth, ws.MaxDepth = 0, 0
				}
				if rs != ws {
					t.Errorf("%s/%s/%s: stats %+v, want %+v", label, eng.name, spillStore.name, rs, ws)
				}
				if eng.strict {
					if len(res.Trace) != len(want.Trace) {
						t.Errorf("%s/%s/%s: trace length %d, want %d", label, eng.name, spillStore.name, len(res.Trace), len(want.Trace))
						continue
					}
					for i := range res.Trace {
						if res.Trace[i].StateKey != want.Trace[i].StateKey ||
							res.Trace[i].Event.Key() != want.Trace[i].Event.Key() {
							t.Errorf("%s/%s/%s: trace step %d diverges", label, eng.name, spillStore.name, i)
							break
						}
					}
				}
			}
		}

		// Unreduced: every engine over both stores against its family
		// reference.
		for _, eng := range fuzzEngines() {
			check("unreduced", eng, nil, ref)
		}
		for _, eng := range fuzzDFSEngines() {
			check("unreduced", eng, nil, dfsRef)
		}

		// SPOR-reduced: the BFS family must be bit-identical to the
		// reduced sequential BFS reference and the parallel DFS family to
		// the reduced sequential DFS reference (the two references explore
		// different reduced graphs — queue vs stack proviso); sequential
		// reduced DFS itself is held to verdict agreement and trace replay
		// only.
		exp, err := por.NewExpander(p)
		if err != nil {
			t.Fatal(err)
		}
		redRef := xo
		redRef.Store = explore.NewHashStore()
		redRef.Expander = exp
		red, err := explore.BFS(p, redRef)
		if err != nil {
			t.Fatal(err)
		}
		if red.Verdict != ref.Verdict {
			t.Errorf("reduced BFS verdict %s, unreduced %s (POR unsound on this input)", red.Verdict, ref.Verdict)
		}
		dfsRedRef := xo
		dfsRedRef.Store = explore.NewHashStore()
		dfsRedRef.Expander = exp
		dfsRed, err := explore.DFS(p, dfsRedRef)
		if err != nil {
			t.Fatal(err)
		}
		if dfsRed.Verdict != ref.Verdict {
			t.Errorf("reduced DFS verdict %s, unreduced %s (stack proviso unsound on this input)", dfsRed.Verdict, ref.Verdict)
		}
		for _, eng := range fuzzEngines() {
			want := red
			if !eng.strict {
				want = nil
			}
			check("spor", eng, exp, want)
		}
		for _, eng := range fuzzDFSEngines() {
			check("spor", eng, exp, dfsRed)
		}
	})
}
