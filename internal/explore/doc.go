// Package explore provides the explicit-state search engines of the model
// checker: stateful DFS and BFS over canonical state keys, a stateless DFS
// (the search mode required by dynamic POR, §III-A), invariant checking
// with counterexample traces, deadlock detection, and a full state-graph
// builder used to validate transition refinement (Theorem 2: refined and
// unrefined systems generate the same state graph).
//
// Searches are parameterized by an Expander, the hook through which
// partial-order reduction restricts the explored events of a state. The
// stateful DFS engine implements the cycle proviso (ample condition C3):
// whenever a reduced expansion would close a cycle on the search stack, the
// state is fully expanded.
package explore
