// Package explore provides the explicit-state search engines of the model
// checker: stateful DFS and BFS over canonical state keys, a stateless DFS
// (the search mode required by dynamic POR, §III-A), a deterministic
// parallel engine for each stateful search order (frontier-parallel BFS
// and speculative parallel DFS), nested DFS for Büchi liveness properties
// (NDFS, with its deterministic parallel twin ParallelNDFS), invariant
// checking with counterexample traces, deadlock detection, and a full
// state-graph builder used to validate transition refinement (Theorem 2:
// refined and unrefined systems generate the same state graph).
//
// Searches are parameterized by an Expander, the hook through which
// partial-order reduction restricts the explored events of a state. Every
// stateful engine enforces the ignoring proviso (ample condition C3) with
// the discipline matching its search order, exposed through the Proviso
// hook and reported as Stats.ProvisoExpansions: the DFS engines fully
// expand a state whenever a reduced expansion would close a cycle on the
// search stack (the stack proviso), while BFS and ParallelBFS fully expand
// a state whenever a reduced expansion yields only states already visited
// before the state's level began (the queue proviso). Either way a
// reducing expander is sound on cyclic state graphs.
//
// ParallelBFS scales the stateful BFS across a worker pool
// (Options.Workers): each frontier is expanded concurrently against a
// sharded, mutex-striped visited-state store (ShardedStore, in exact-key
// and 128-bit-fingerprint modes), and a deterministic in-order merge
// commits each level so verdicts, statistics and counterexample traces are
// bit-identical to the sequential BFS for any worker count — the queue
// proviso included, which is evaluated after the level barrier against the
// level-start visited snapshot rather than the live concurrent store.
//
// ParallelDFS scales the stateful DFS the same way along the other search
// order: workers steal unexplored sibling subtrees from the deep end of
// the search stack and speculatively memoize their expansions, while a
// single commit walk replays the exact sequential DFS order (stack proviso
// included), so results are bit-identical to DFS for any worker count and
// steal depth.
//
// NDFS lifts the stateful DFS to liveness checking (Options.Property): a
// blue search explores the product of the state graph and the property
// monitor, and at each post-order retreat from an accepting product state
// a red search hunts for a cycle through it; a hit is reported as a
// replayable lasso counterexample (stem + accepting cycle, or a stutter
// lasso into a deadlocked accepting state). The stack ignoring proviso
// doubles as the cycle-awareness the nested search needs, so a reducing
// expander remains sound; weak fairness (Property.WeakFair) forces full
// expansion, since the fairness monitor observes every transition.
// ParallelNDFS parallelizes the blue search with the ParallelDFS
// speculation machinery and keeps the red searches on the commit walk, so
// verdicts, statistics and lasso traces are bit-identical to NDFS for any
// worker count and steal depth; both engines are differentially tested
// against the explicit Büchi-product + Tarjan-SCC oracle in package
// liveness.
//
// Both parallel engines inherit their soundness conditions from the hooks
// they parallelize: the protocol's Enabled/Execute/CheckInvariant, the
// Canon function and the Expander must be stateless or read-only (true of
// everything in this repository).
//
// # The store matrix
//
// Every stateful engine takes its visited set through the Store interface,
// and the tiers trade memory against exactness:
//
//   - ExactStore keeps full canonical keys — the reference tier, and the
//     only one whose Len is a census by construction;
//   - HashStore keeps 128-bit fingerprints (collisions are possible in
//     principle, vanishingly rare in practice, and flagged nowhere — it is
//     the default because at 16 bytes/state the differential suites have
//     never produced a collision);
//   - ShardedStore / ShardedHashStore stripe either of the above across
//     mutexes for the parallel engines;
//   - SpillStore bounds resident memory and overflows to sorted runs on
//     disk (SpillReporter surfaces the traffic in Stats);
//   - BitstateStore is the deliberately lossy tier: Spin-style bitstate
//     hashing in a fixed budget, where a run's "no violation" is a
//     coverage claim qualified by Stats.BitstateFill/BitstateOmission, and
//     which the facade therefore refuses to combine with DPOR, stateless
//     search or liveness properties.
//
// Orthogonally, the Canon hook rewrites the key the store sees: package
// symmetry canonicalizes orbits, and Collapser (collapse compression, in
// the sense of Spin's COLLAPSE mode) interns per-process components so a
// key costs a few bytes instead of the full state encoding. Compressed
// keys are run-internal names — injective within a run, meaningless
// outside it — so counterexample traces are expanded back
// (Collapser.ExpandTrace) before they are reported or replayed, and the
// two Canon users cannot be stacked.
//
// Neighbouring packages place themselves in this matrix in their own
// docs: por (static reduction feeding the Expander hook), dpor (stateless
// dynamic reduction, incompatible with every store tier), liveness
// (exact-store-only products), eval (the benchmark cells that sweep the
// matrix), and symmetry/refine (the orthogonal reductions).
package explore
