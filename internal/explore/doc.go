// Package explore provides the explicit-state search engines of the model
// checker: stateful DFS and BFS over canonical state keys, a stateless DFS
// (the search mode required by dynamic POR, §III-A), a frontier-parallel
// BFS, invariant checking with counterexample traces, deadlock detection,
// and a full state-graph builder used to validate transition refinement
// (Theorem 2: refined and unrefined systems generate the same state graph).
//
// Searches are parameterized by an Expander, the hook through which
// partial-order reduction restricts the explored events of a state. The
// stateful DFS engine implements the cycle proviso (ample condition C3):
// whenever a reduced expansion would close a cycle on the search stack, the
// state is fully expanded.
//
// ParallelBFS scales the stateful BFS across a worker pool
// (Options.Workers): each frontier is expanded concurrently against a
// sharded, mutex-striped visited-state store (ShardedStore, in exact-key
// and 128-bit-fingerprint modes), and a deterministic in-order merge
// commits each level so verdicts, statistics and counterexample traces are
// bit-identical to the sequential BFS for any worker count. Its soundness
// conditions are those of the hooks it parallelizes: the protocol's
// Enabled/Execute/CheckInvariant, the Canon function and the Expander must
// be stateless or read-only (true of everything in this repository), and —
// as for any BFS, which has no stack for the cycle proviso — combining it
// with a reducing expander is sound only on acyclic state graphs.
package explore
