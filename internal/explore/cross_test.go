package explore

import (
	"testing"
	"time"

	"mpbasset/internal/core"
	"mpbasset/internal/mptest"
)

// TestStatefulAndStatelessAgreeOnTerminals cross-checks the engines on
// randomized acyclic protocols: stateless search must find exactly the
// deadlock states the stateful search stores (counting distinct ones).
func TestStatefulAndStatelessAgreeOnTerminals(t *testing.T) {
	for seed := int64(0); seed < 60; seed++ {
		p, err := mptest.Random(mptest.GenConfig{Seed: seed, Quorums: true})
		if err != nil {
			t.Fatal(err)
		}
		stateful, err := DFS(p, Options{MaxDuration: time.Minute})
		if err != nil {
			t.Fatal(err)
		}
		// Enumerate distinct terminals reached statelessly.
		terms := map[string]bool{}
		if err := walkStateless(p, func(s *core.State, terminal bool) {
			if terminal {
				terms[s.Key()] = true
			}
		}); err != nil {
			t.Fatal(err)
		}
		if len(terms) != stateful.Stats.Deadlocks {
			t.Errorf("seed %d: stateless found %d distinct terminals, stateful %d",
				seed, len(terms), stateful.Stats.Deadlocks)
		}
	}
}

// walkStateless exhaustively walks every path (no visited set), calling f
// on every visited state.
func walkStateless(p *core.Protocol, f func(*core.State, bool)) error {
	init, err := p.InitialState()
	if err != nil {
		return err
	}
	var rec func(s *core.State) error
	rec = func(s *core.State) error {
		events := p.Enabled(s)
		f(s, len(events) == 0)
		for _, ev := range events {
			ns, err := p.Execute(s, ev)
			if err != nil {
				return err
			}
			if err := rec(ns); err != nil {
				return err
			}
		}
		return nil
	}
	return rec(init)
}

// TestParallelAndSequentialBFSAgreeOnRandomProtocols cross-checks the
// parallel engine beyond the bundled models: on randomized protocols the
// frontier-parallel search must reproduce the sequential BFS verdict,
// statistics and deadlock census for several worker counts.
func TestParallelAndSequentialBFSAgreeOnRandomProtocols(t *testing.T) {
	for seed := int64(0); seed < 40; seed++ {
		p, err := mptest.Random(mptest.GenConfig{Seed: seed, Quorums: true})
		if err != nil {
			t.Fatal(err)
		}
		seq, err := BFS(p, Options{MaxDuration: time.Minute, TrackTrace: true})
		if err != nil {
			t.Fatal(err)
		}
		for _, workers := range []int{1, 3} {
			par, err := ParallelBFS(p, Options{MaxDuration: time.Minute, TrackTrace: true, Workers: workers})
			if err != nil {
				t.Fatal(err)
			}
			if par.Verdict != seq.Verdict {
				t.Errorf("seed %d workers %d: verdict %s, sequential %s", seed, workers, par.Verdict, seq.Verdict)
			}
			ps, ss := par.Stats, seq.Stats
			ps.Duration, ss.Duration = 0, 0
			if ps != ss {
				t.Errorf("seed %d workers %d: stats %+v, sequential %+v", seed, workers, ps, ss)
			}
			if len(par.Trace) != len(seq.Trace) {
				t.Errorf("seed %d workers %d: trace length %d, sequential %d", seed, workers, len(par.Trace), len(seq.Trace))
			}
		}
	}
}

// TestExecuteDeterministic asserts that executing the same event from the
// same state always produces the same successor key — the foundation of
// stateful search.
func TestExecuteDeterministic(t *testing.T) {
	for seed := int64(0); seed < 40; seed++ {
		p, err := mptest.Random(mptest.GenConfig{Seed: seed, Quorums: true})
		if err != nil {
			t.Fatal(err)
		}
		s, err := p.InitialState()
		if err != nil {
			t.Fatal(err)
		}
		for depth := 0; depth < 6; depth++ {
			events := p.Enabled(s)
			if len(events) == 0 {
				break
			}
			a, err := p.Execute(s, events[0])
			if err != nil {
				t.Fatal(err)
			}
			b, err := p.Execute(s, events[0])
			if err != nil {
				t.Fatal(err)
			}
			if a.Key() != b.Key() {
				t.Fatalf("seed %d depth %d: nondeterministic execution:\n%s\n%s", seed, depth, a.Key(), b.Key())
			}
			// Enabled enumeration is order-stable too.
			again := p.Enabled(s)
			if len(again) != len(events) || again[0].Key() != events[0].Key() {
				t.Fatalf("seed %d depth %d: enabled enumeration unstable", seed, depth)
			}
			s = a
		}
	}
}
