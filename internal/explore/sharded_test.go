package explore

import (
	"fmt"
	"math/rand"
	"sync"
	"sync/atomic"
	"testing"
)

// TestShardedStoreExactlyOneInsert is the property test of the concurrent
// store: N goroutines hammering Seen with overlapping random key sequences
// must observe exactly one false (first insertion) per distinct key, and
// Len must equal the distinct count — in both storage modes.
func TestShardedStoreExactlyOneInsert(t *testing.T) {
	const (
		goroutines = 16
		distinct   = 2000
		opsEach    = 8000
	)
	modes := []struct {
		name string
		mk   func() *ShardedStore
	}{
		{"exact", NewShardedExactStore},
		{"hashed", NewShardedHashStore},
	}
	for _, mode := range modes {
		t.Run(mode.name, func(t *testing.T) {
			keys := make([]string, distinct)
			for i := range keys {
				keys[i] = fmt.Sprintf("state-key-%d", i)
			}
			store := mode.mk()
			inserts := make([]int32, distinct) // per-key count of false returns
			var wg sync.WaitGroup
			wg.Add(goroutines)
			for g := 0; g < goroutines; g++ {
				go func(g int) {
					defer wg.Done()
					rng := rand.New(rand.NewSource(int64(g)))
					// Every goroutine touches every key at least once (a
					// shuffled full pass) plus random overlapping extras.
					order := rng.Perm(distinct)
					for _, i := range order {
						if !store.Seen(keys[i]) {
							atomic.AddInt32(&inserts[i], 1)
						}
					}
					for n := 0; n < opsEach-distinct; n++ {
						i := rng.Intn(distinct)
						if !store.Seen(keys[i]) {
							atomic.AddInt32(&inserts[i], 1)
						}
					}
				}(g)
			}
			wg.Wait()
			for i, n := range inserts {
				if n != 1 {
					t.Fatalf("key %d inserted %d times, want exactly 1", i, n)
				}
			}
			if store.Len() != distinct {
				t.Errorf("Len() = %d, want %d", store.Len(), distinct)
			}
		})
	}
}

// TestShardedStoreMatchesSequentialStores drives the sharded store with
// the same single-threaded key sequence as the unsynchronized stores and
// demands identical Seen results and lengths.
func TestShardedStoreMatchesSequentialStores(t *testing.T) {
	rng := rand.New(rand.NewSource(7))
	exact := NewExactStore()
	hashed := NewHashStore()
	shExact := NewShardedExactStore()
	shHashed := NewShardedHashStore()
	for n := 0; n < 20000; n++ {
		key := fmt.Sprintf("k-%d", rng.Intn(5000))
		want := exact.Seen(key)
		if got := hashed.Seen(key); got != want {
			t.Fatalf("op %d: HashStore.Seen(%q) = %v, ExactStore %v", n, key, got, want)
		}
		if got := shExact.Seen(key); got != want {
			t.Fatalf("op %d: sharded exact Seen(%q) = %v, ExactStore %v", n, key, got, want)
		}
		if got := shHashed.Seen(key); got != want {
			t.Fatalf("op %d: sharded hashed Seen(%q) = %v, ExactStore %v", n, key, got, want)
		}
	}
	if shExact.Len() != exact.Len() || shHashed.Len() != exact.Len() {
		t.Errorf("lengths diverge: exact=%d shardedExact=%d shardedHashed=%d",
			exact.Len(), shExact.Len(), shHashed.Len())
	}
}

// TestSeenBatchMatchesSeen drives SeenBatch single-threaded against a
// reference per-key store, with batches that straddle stripes and repeat
// keys inside one batch: answers must be index-aligned and identical to
// calling Seen in sequence, in both storage modes.
func TestSeenBatchMatchesSeen(t *testing.T) {
	modes := []struct {
		name string
		mk   func() *ShardedStore
	}{
		{"exact", NewShardedExactStore},
		{"hashed", NewShardedHashStore},
	}
	for _, mode := range modes {
		t.Run(mode.name, func(t *testing.T) {
			rng := rand.New(rand.NewSource(11))
			batched := mode.mk()
			ref := NewExactStore()
			refSeen := 0
			for op := 0; op < 3000; op++ {
				batch := make([]string, rng.Intn(9)) // includes empty batches
				for i := range batch {
					batch[i] = fmt.Sprintf("key-%d", rng.Intn(400))
				}
				if rng.Intn(4) == 0 && len(batch) >= 2 {
					batch[len(batch)-1] = batch[0] // force an intra-batch duplicate
				}
				dups := batched.SeenBatch(batch)
				if len(dups) != len(batch) {
					t.Fatalf("op %d: %d answers for %d keys", op, len(dups), len(batch))
				}
				for i, key := range batch {
					want := ref.Seen(key)
					if !want {
						refSeen++
					}
					if dups[i] != want {
						t.Fatalf("op %d key %d (%q): SeenBatch = %v, sequential Seen = %v", op, i, key, dups[i], want)
					}
				}
			}
			if batched.Len() != refSeen {
				t.Errorf("Len() = %d, want %d", batched.Len(), refSeen)
			}
		})
	}
}

// TestSeenBatchExactlyOneInsert is the concurrency property test of the
// batched fast path: goroutines racing batched and unbatched inserts of
// overlapping key sequences (with intra-batch duplicates) must observe
// exactly one false per distinct key, across both storage modes. Run under
// go test -race in CI, this also exercises the stripe-grouped locking.
func TestSeenBatchExactlyOneInsert(t *testing.T) {
	const (
		goroutines = 16
		distinct   = 2000
	)
	modes := []struct {
		name string
		mk   func() *ShardedStore
	}{
		{"exact", NewShardedExactStore},
		{"hashed", NewShardedHashStore},
	}
	for _, mode := range modes {
		t.Run(mode.name, func(t *testing.T) {
			keys := make([]string, distinct)
			for i := range keys {
				keys[i] = fmt.Sprintf("state-key-%d", i)
			}
			store := mode.mk()
			inserts := make([]int32, distinct) // per-key count of false answers
			credit := func(idx []int, dups []bool) {
				for k, d := range dups {
					if !d {
						atomic.AddInt32(&inserts[idx[k]], 1)
					}
				}
			}
			var wg sync.WaitGroup
			wg.Add(goroutines)
			for g := 0; g < goroutines; g++ {
				go func(g int) {
					defer wg.Done()
					rng := rand.New(rand.NewSource(int64(g)))
					order := rng.Perm(distinct) // full pass: every key at least once
					if g%2 == 0 {
						// Unbatched racer.
						for _, i := range order {
							if !store.Seen(keys[i]) {
								atomic.AddInt32(&inserts[i], 1)
							}
						}
						return
					}
					// Batched racer: random batch sizes, occasional
					// intra-batch duplicates.
					for pos := 0; pos < len(order); {
						n := 1 + rng.Intn(48)
						if pos+n > len(order) {
							n = len(order) - pos
						}
						idx := append([]int(nil), order[pos:pos+n]...)
						pos += n
						if rng.Intn(3) == 0 {
							idx = append(idx, idx[rng.Intn(len(idx))])
						}
						batch := make([]string, len(idx))
						for k, i := range idx {
							batch[k] = keys[i]
						}
						credit(idx, store.SeenBatch(batch))
					}
				}(g)
			}
			wg.Wait()
			for i, n := range inserts {
				if n != 1 {
					t.Fatalf("key %d inserted %d times, want exactly 1", i, n)
				}
			}
			if store.Len() != distinct {
				t.Errorf("Len() = %d, want %d", store.Len(), distinct)
			}
		})
	}
}

// TestConcurrentStoreFallback checks the store selection of the parallel
// engine: nil yields a fresh sharded exact store, a ShardedStore passes
// through, and anything else is serialized behind a mutex (and remains
// correct when hammered concurrently).
func TestConcurrentStoreFallback(t *testing.T) {
	var o Options
	if _, ok := o.concurrentStore().(*ShardedStore); !ok {
		t.Errorf("nil Store: want a ShardedStore, got %T", o.concurrentStore())
	}
	sharded := NewShardedHashStore()
	o.Store = sharded
	if got := o.concurrentStore(); got != Store(sharded) {
		t.Errorf("ShardedStore must pass through, got %T", got)
	}
	o.Store = NewHashStore()
	wrapped := o.concurrentStore()
	if _, ok := wrapped.(*syncStore); !ok {
		t.Fatalf("plain store: want a syncStore wrapper, got %T", wrapped)
	}
	const distinct = 500
	var wg sync.WaitGroup
	var inserts atomic.Int32
	for g := 0; g < 8; g++ {
		wg.Add(1)
		go func(g int) {
			defer wg.Done()
			rng := rand.New(rand.NewSource(int64(g)))
			for _, i := range rng.Perm(distinct) {
				if !wrapped.Seen(fmt.Sprintf("k-%d", i)) {
					inserts.Add(1)
				}
			}
		}(g)
	}
	wg.Wait()
	if inserts.Load() != distinct || wrapped.Len() != distinct {
		t.Errorf("inserts=%d Len=%d, want %d", inserts.Load(), wrapped.Len(), distinct)
	}
}
