package explore

import (
	"fmt"
	"math/rand"
	"sync"
	"sync/atomic"
	"testing"
)

// TestShardedStoreExactlyOneInsert is the property test of the concurrent
// store: N goroutines hammering Seen with overlapping random key sequences
// must observe exactly one false (first insertion) per distinct key, and
// Len must equal the distinct count — in both storage modes.
func TestShardedStoreExactlyOneInsert(t *testing.T) {
	const (
		goroutines = 16
		distinct   = 2000
		opsEach    = 8000
	)
	modes := []struct {
		name string
		mk   func() *ShardedStore
	}{
		{"exact", NewShardedExactStore},
		{"hashed", NewShardedHashStore},
	}
	for _, mode := range modes {
		t.Run(mode.name, func(t *testing.T) {
			keys := make([]string, distinct)
			for i := range keys {
				keys[i] = fmt.Sprintf("state-key-%d", i)
			}
			store := mode.mk()
			inserts := make([]int32, distinct) // per-key count of false returns
			var wg sync.WaitGroup
			wg.Add(goroutines)
			for g := 0; g < goroutines; g++ {
				go func(g int) {
					defer wg.Done()
					rng := rand.New(rand.NewSource(int64(g)))
					// Every goroutine touches every key at least once (a
					// shuffled full pass) plus random overlapping extras.
					order := rng.Perm(distinct)
					for _, i := range order {
						if !store.Seen(keys[i]) {
							atomic.AddInt32(&inserts[i], 1)
						}
					}
					for n := 0; n < opsEach-distinct; n++ {
						i := rng.Intn(distinct)
						if !store.Seen(keys[i]) {
							atomic.AddInt32(&inserts[i], 1)
						}
					}
				}(g)
			}
			wg.Wait()
			for i, n := range inserts {
				if n != 1 {
					t.Fatalf("key %d inserted %d times, want exactly 1", i, n)
				}
			}
			if store.Len() != distinct {
				t.Errorf("Len() = %d, want %d", store.Len(), distinct)
			}
		})
	}
}

// TestShardedStoreMatchesSequentialStores drives the sharded store with
// the same single-threaded key sequence as the unsynchronized stores and
// demands identical Seen results and lengths.
func TestShardedStoreMatchesSequentialStores(t *testing.T) {
	rng := rand.New(rand.NewSource(7))
	exact := NewExactStore()
	hashed := NewHashStore()
	shExact := NewShardedExactStore()
	shHashed := NewShardedHashStore()
	for n := 0; n < 20000; n++ {
		key := fmt.Sprintf("k-%d", rng.Intn(5000))
		want := exact.Seen(key)
		if got := hashed.Seen(key); got != want {
			t.Fatalf("op %d: HashStore.Seen(%q) = %v, ExactStore %v", n, key, got, want)
		}
		if got := shExact.Seen(key); got != want {
			t.Fatalf("op %d: sharded exact Seen(%q) = %v, ExactStore %v", n, key, got, want)
		}
		if got := shHashed.Seen(key); got != want {
			t.Fatalf("op %d: sharded hashed Seen(%q) = %v, ExactStore %v", n, key, got, want)
		}
	}
	if shExact.Len() != exact.Len() || shHashed.Len() != exact.Len() {
		t.Errorf("lengths diverge: exact=%d shardedExact=%d shardedHashed=%d",
			exact.Len(), shExact.Len(), shHashed.Len())
	}
}

// TestConcurrentStoreFallback checks the store selection of the parallel
// engine: nil yields a fresh sharded exact store, a ShardedStore passes
// through, and anything else is serialized behind a mutex (and remains
// correct when hammered concurrently).
func TestConcurrentStoreFallback(t *testing.T) {
	var o Options
	if _, ok := o.concurrentStore().(*ShardedStore); !ok {
		t.Errorf("nil Store: want a ShardedStore, got %T", o.concurrentStore())
	}
	sharded := NewShardedHashStore()
	o.Store = sharded
	if got := o.concurrentStore(); got != Store(sharded) {
		t.Errorf("ShardedStore must pass through, got %T", got)
	}
	o.Store = NewHashStore()
	wrapped := o.concurrentStore()
	if _, ok := wrapped.(*syncStore); !ok {
		t.Fatalf("plain store: want a syncStore wrapper, got %T", wrapped)
	}
	const distinct = 500
	var wg sync.WaitGroup
	var inserts atomic.Int32
	for g := 0; g < 8; g++ {
		wg.Add(1)
		go func(g int) {
			defer wg.Done()
			rng := rand.New(rand.NewSource(int64(g)))
			for _, i := range rng.Perm(distinct) {
				if !wrapped.Seen(fmt.Sprintf("k-%d", i)) {
					inserts.Add(1)
				}
			}
		}(g)
	}
	wg.Wait()
	if inserts.Load() != distinct || wrapped.Len() != distinct {
		t.Errorf("inserts=%d Len=%d, want %d", inserts.Load(), wrapped.Len(), distinct)
	}
}
