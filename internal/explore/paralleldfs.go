package explore

import (
	"sync"
	"sync/atomic"

	"mpbasset/internal/core"
)

// pdSucc is one successor of a speculatively expanded state: the executed
// event, the reached state and its canonical key, plus — when a speculator
// already ran the invariant on it — the memoized check result.
type pdSucc struct {
	ev      core.Event
	st      *core.State
	key     string
	verr    error
	checked bool
}

// pdRecord is the expansion record of one state: everything the commit walk
// needs to replay the state's expansion exactly as sequential DFS would
// compute it. Records are pure functions of the state (Enabled, Expand,
// Execute and canonicalization are deterministic and read-only), which is
// what makes them safe to precompute out of order.
type pdRecord struct {
	// src is the state the record was built from. The proviso promotion
	// re-executes the full enabled set against it, never against another
	// instance of the same canonical key, so a record stays internally
	// consistent even under a canonicalizing Canon (symmetry orbits).
	src      *core.State
	deadlock bool
	reduced  bool
	// enabled is the full enabled-event set, retained only for reduced
	// expansions so the stack proviso can promote them without recomputing
	// Enabled.
	enabled []core.Event
	succs   []pdSucc
	// err is a deferred Execute failure; it is surfaced when (and only
	// when) the commit walk actually expands the state, exactly where
	// sequential DFS would have failed.
	err error
}

// pdBuild computes a state's expansion record: enabled events, the
// expander's chosen subset, and the executed successors. When withInv is
// set (speculative builds), the invariant is pre-checked on successors the
// probe does not already report as visited; the commit walk checks the rest
// lazily, like sequential DFS.
func pdBuild(p *core.Protocol, s *core.State, exp Expander, canon func(*core.State) string, prov Proviso, withInv bool, probe func(string) bool) *pdRecord {
	rec := &pdRecord{src: s}
	enabled := p.Enabled(s)
	if len(enabled) == 0 {
		rec.deadlock = true
		return rec
	}
	chosen := exp.Expand(s, enabled, prov)
	rec.reduced = len(chosen) < len(enabled)
	if rec.reduced {
		rec.enabled = enabled
	}
	succs, err := pdExecAll(p, s, chosen, canon)
	if err != nil {
		rec.err = err
		return rec
	}
	rec.succs = succs
	if withInv {
		for i := range rec.succs {
			sc := &rec.succs[i]
			if probe != nil && probe(sc.key) {
				continue // already committed: only a revisit can follow
			}
			sc.verr = p.CheckInvariant(sc.st)
			sc.checked = true
		}
	}
	return rec
}

// pdExecAll executes events against s and canonicalizes the results.
func pdExecAll(p *core.Protocol, s *core.State, events []core.Event, canon func(*core.State) string) ([]pdSucc, error) {
	succs := make([]pdSucc, 0, len(events))
	for _, ev := range events {
		ns, err := p.Execute(s, ev)
		if err != nil {
			return nil, err
		}
		succs = append(succs, pdSucc{ev: ev, st: ns, key: canon(ns)})
	}
	return succs, nil
}

// pdSuccKeys collects the canonical keys of succs into buf.
func pdSuccKeys(buf []string, succs []pdSucc) []string {
	buf = buf[:0]
	for i := range succs {
		buf = append(buf, succs[i].key)
	}
	return buf
}

// pdTarget is one steal target: an unexplored sibling still pending on the
// commit stack, i.e. the root of a subtree sequential DFS has not entered
// yet. The memo table and steal queue themselves are the generic
// specMemo/specQueue (see spec.go), shared with ParallelNDFS.
type pdTarget struct {
	st  *core.State
	key string
}

// pdFrame is one frame of the commit stack (the ParallelDFS analogue of
// dfsFrame).
type pdFrame struct {
	key   string
	via   core.Event
	succs []pdSucc
	next  int
}

// ParallelDFS runs the stateful depth-first search of DFS with a worker
// pool: Options.Workers speculative workers (default runtime.GOMAXPROCS(0))
// steal unexplored sibling subtrees from the deep end of the search stack
// and expand them ahead of time, while a single commit walk replays the
// exact sequential DFS order — so verdicts, statistics and counterexample
// traces are bit-identical to DFS for any worker count.
//
// Work sharing: whenever the commit walk pushes a frame, the frame's
// pending siblings — subtree roots the walk has not entered yet — are
// published as steal targets, deepest frame first. An idle worker pops a
// target and explores its subtree depth-first for up to Options.StealDepth
// events below the stolen root (bounded batch per steal), memoizing one
// expansion record per state: enabled events, the expander's chosen subset,
// executed successors and pre-checked invariants. Records are pure
// functions of the state, so they can be computed in any order by any
// worker. Speculation probes the visited store (HasStore, non-mutating) to
// skip states the walk already committed; the probe is only ever a hint —
// a stale answer wastes work, never changes results.
//
// Deterministic commit: the walk is sequential DFS verbatim — same stack,
// same visit order, same limiter checks — except that expanding a state
// first consults the memo table and only computes inline on a miss. Because
// a record equals what the inline computation would produce, the committed
// Verdict, Stats (except Duration and the spill counters) and Trace are
// bit-identical to DFS for any worker count, on any store. Under a
// canonicalizing Options.Canon the same caveat as ParallelBFS applies: the
// Violation error value (and trace event labels) may come from any member
// of a state's symmetry orbit, since a record may have been built from a
// different orbit representative.
//
// Proviso: the stack variant of the ignoring proviso (C3) stays entirely
// inside the commit walk, whose stack IS the sequential search stack:
// Proviso.OnStack and Ignoring are answered from it alone, never from
// speculative state. A stolen subtree's root remains pinned on that stack —
// it is a pending sibling of a live frame until its turn commits — so
// reduced expansions are promoted exactly when sequential DFS would promote
// them (Stats.ProvisoExpansions). Speculators hand the expander an inert
// proviso, which is sound because an Expander's chosen set must not depend
// on the hook (see Proviso); promotion re-executes the full enabled set
// from the record's own source state during commit.
//
// Soundness requires the same read-only contract as ParallelBFS: the
// protocol's Enabled/Execute/CheckInvariant, the Canon function and the
// Expander must be safe for concurrent use and must not mutate shared
// state. The store must additionally tolerate concurrent Has probes during
// Seen inserts; Options.concurrentStore guarantees that by wrapping
// non-concurrent stores behind a mutex.
func ParallelDFS(p *core.Protocol, opts Options) (result *Result, err error) {
	init, err := p.InitialState()
	if err != nil {
		return nil, err
	}
	var (
		res     Result
		store   = opts.concurrentStore()
		canon   = opts.canon()
		exp     = opts.expander()
		lim     = newLimiter(opts)
		stack   []pdFrame
		sinfo   = &dfsStack{onStack: make(map[string]bool)}
		limited bool
		keyBuf  []string
	)
	defer func() {
		res.Stats.Duration = lim.elapsed()
		captureStoreStats(store, &res.Stats)
		if serr := storeErr(store); serr != nil && err == nil {
			result, err = nil, serr
		}
	}()

	ikey := canon(init)
	store.Seen(ikey)
	res.Stats.States = 1
	if verr := p.CheckInvariant(init); verr != nil {
		res.Verdict = VerdictViolated
		res.Violation = verr
		return &res, nil
	}

	// Speculation plumbing: the memo table, the steal queue, and a
	// non-mutating store probe (nil when the store cannot answer — the
	// speculators then dedupe through the memo table alone).
	var (
		memo  specMemo[pdRecord]
		queue = newSpecQueue[pdTarget]()
		stop  atomic.Bool
		wg    sync.WaitGroup
		probe func(string) bool
	)
	if hs, ok := store.(HasStore); ok {
		probe = hs.Has
	}
	depthBudget := opts.stealDepth()
	workers := opts.workers()
	wg.Add(workers)
	for w := 0; w < workers; w++ {
		go func() {
			defer wg.Done()
			type specNode struct {
				st    *core.State
				key   string
				depth int
			}
			nodes := make([]specNode, 0, 64)
			for {
				tgt, ok := queue.pop()
				if !ok {
					return
				}
				nodes = append(nodes[:0], specNode{st: tgt.st, key: tgt.key})
				budget := pdStealBudget
				for len(nodes) > 0 && budget > 0 && !stop.Load() && !memo.full() {
					n := nodes[len(nodes)-1]
					nodes = nodes[:len(nodes)-1]
					if memo.has(n.key) || (probe != nil && probe(n.key)) {
						continue
					}
					rec := pdBuild(p, n.st, exp, canon, noProviso{}, true, probe)
					switch memo.put(n.key, rec) {
					case pdStored:
						// fresh entry: fall through to expand it below
					case pdDup:
						continue
					case pdFull:
						nodes = nodes[:0]
						continue
					}
					budget--
					if rec.err != nil || rec.deadlock || n.depth+1 > depthBudget {
						continue
					}
					for i := len(rec.succs) - 1; i >= 0; i-- {
						sc := &rec.succs[i]
						nodes = append(nodes, specNode{st: sc.st, key: sc.key, depth: n.depth + 1})
					}
				}
			}
		}()
	}
	defer func() {
		stop.Store(true)
		queue.close()
		wg.Wait()
	}()

	// expand replays one state's expansion in commit order: memoized record
	// when a speculator got there first, inline computation otherwise, then
	// the stack proviso and the expansion statistics — all exactly as
	// sequential DFS computes them.
	expand := func(s *core.State, key string) ([]pdSucc, error) {
		rec := memo.take(key)
		if rec == nil {
			rec = pdBuild(p, s, exp, canon, sinfo, false, nil)
		}
		if rec.err != nil {
			return nil, rec.err
		}
		if rec.deadlock {
			res.Stats.Deadlocks++
			return nil, nil
		}
		succs := rec.succs
		reduced := rec.reduced
		if reduced {
			keyBuf = pdSuccKeys(keyBuf, succs)
			if sinfo.Ignoring(keyBuf) {
				// Stack proviso (C3): a reduced expansion must not close a
				// cycle on the stack, or the deferred events could be
				// ignored forever. Re-execute from the record's own source
				// state, which stays orbit-consistent under symmetry.
				reduced = false
				res.Stats.ProvisoExpansions++
				full, err := pdExecAll(p, rec.src, rec.enabled, canon)
				if err != nil {
					return nil, err
				}
				succs = full
			}
		}
		if reduced {
			res.Stats.ReducedExpansions++
		} else {
			res.Stats.FullExpansions++
		}
		return succs, nil
	}

	push := func(s *core.State, key string, via core.Event) error {
		sinfo.onStack[key] = true
		succs, err := expand(s, key)
		if err != nil {
			return err
		}
		stack = append(stack, pdFrame{key: key, via: via, succs: succs})
		if len(succs) > 1 {
			// Publish the pending siblings (everything after the child the
			// walk enters next) as steal targets, in reverse sibling order
			// so the earliest sibling sits at the queue's deep end.
			tgts := make([]pdTarget, 0, len(succs)-1)
			for i := len(succs) - 1; i >= 1; i-- {
				tgts = append(tgts, pdTarget{st: succs[i].st, key: succs[i].key})
			}
			queue.publish(tgts)
		}
		return nil
	}

	trace := func(last *pdSucc) []Step {
		var steps []Step
		for _, f := range stack[1:] {
			steps = append(steps, Step{Event: f.via, StateKey: f.key})
		}
		if last != nil {
			steps = append(steps, Step{Event: last.ev, StateKey: last.key})
		}
		return steps
	}

	if err := push(init, ikey, core.Event{}); err != nil {
		return nil, err
	}

	for len(stack) > 0 {
		f := &stack[len(stack)-1]
		if f.next >= len(f.succs) {
			delete(sinfo.onStack, f.key)
			stack = stack[:len(stack)-1]
			continue
		}
		sc := f.succs[f.next]
		f.next++
		res.Stats.Events++
		if store.Seen(sc.key) {
			res.Stats.Revisits++
			continue
		}
		res.Stats.States++
		// sc sits one event below the frame on top of the stack, i.e. at
		// depth len(stack) counting the root as 0 — the same convention
		// DFS and the BFS engines use for Stats.MaxDepth.
		if len(stack) > res.Stats.MaxDepth {
			res.Stats.MaxDepth = len(stack)
		}
		verr := sc.verr
		if !sc.checked {
			verr = p.CheckInvariant(sc.st)
		}
		if verr != nil {
			res.Verdict = VerdictViolated
			res.Violation = verr
			res.Trace = trace(&sc)
			return &res, nil
		}
		if lim.statesExceeded(res.Stats.States) || lim.timeExceeded() {
			limited = true
			break
		}
		if lim.depthExceeded(len(stack)) {
			limited = true
			continue
		}
		if err := push(sc.st, sc.key, sc.ev); err != nil {
			return nil, err
		}
	}

	if limited {
		res.Verdict = VerdictLimit
	} else {
		res.Verdict = VerdictVerified
	}
	return &res, nil
}
