// Differential tests of the spill-to-disk store against the in-memory
// stores over the bundled protocol suite. These live in the external test
// package so they can drive the POR expander (package por imports
// explore); the white-box store tests stay in spill_test.go.
package explore_test

import (
	"testing"
	"time"

	"mpbasset/internal/core"
	"mpbasset/internal/eval"
	"mpbasset/internal/explore"
	"mpbasset/internal/mptest"
	"mpbasset/internal/por"
	"mpbasset/internal/protocols/multicast"
	"mpbasset/internal/protocols/paxos"
	"mpbasset/internal/protocols/storage"
)

// tinySpill returns a SpillStore whose hot tier holds only a few entries
// (or, with budget 1, a single one), so even small state spaces force
// multiple spills and merges.
func tinySpill(t testing.TB, budget int64) *explore.SpillStore {
	t.Helper()
	s, err := explore.NewSpillStore(explore.SpillConfig{BudgetBytes: budget, Dir: t.TempDir(), MergeRuns: 4})
	if err != nil {
		t.Fatal(err)
	}
	t.Cleanup(func() {
		if err := s.Close(); err != nil {
			t.Errorf("SpillStore.Close: %v", err)
		}
	})
	return s
}

// maskSpill zeroes the Stats fields excluded from the bit-identical
// guarantee — eval.VolatileStatsFields is the canonical list (Duration
// plus the spill-activity counters; the compared runs differ exactly in
// whether a disk tier exists).
func maskSpill(st explore.Stats) explore.Stats {
	eval.MaskVolatileStats(&st)
	return st
}

// diffEngine is one engine configuration of the differential matrix.
// strict marks engines whose stats and traces are bit-identical to their
// family's sequential reference (sequential BFS for the BFS engines,
// sequential DFS for ParallelDFS); sequential DFS itself explores the same
// states at engine-specific depths and is held to looser comparisons.
type diffEngine struct {
	name   string
	run    func(*core.Protocol, explore.Options) (*explore.Result, error)
	strict bool
}

func diffEngines() []diffEngine {
	parallel := func(workers int, sched explore.Sched, batch int) func(*core.Protocol, explore.Options) (*explore.Result, error) {
		return func(p *core.Protocol, xo explore.Options) (*explore.Result, error) {
			xo.Workers = workers
			xo.Sched = sched
			xo.BatchSize = batch
			return explore.ParallelBFS(p, xo)
		}
	}
	pdfs := func(workers int) func(*core.Protocol, explore.Options) (*explore.Result, error) {
		return func(p *core.Protocol, xo explore.Options) (*explore.Result, error) {
			xo.Workers = workers
			return explore.ParallelDFS(p, xo)
		}
	}
	return []diffEngine{
		{"BFS", explore.BFS, true},
		{"DFS", explore.DFS, false},
		{"ParallelBFS-1", parallel(1, explore.SchedWorkStealing, 0), true},
		{"ParallelBFS-2", parallel(2, explore.SchedWorkStealing, 0), true},
		{"ParallelBFS-8", parallel(8, explore.SchedWorkStealing, 0), true},
		{"ParallelBFS-8-single-index", parallel(8, explore.SchedSingleIndex, 0), true},
		{"ParallelDFS-1", pdfs(1), true},
		{"ParallelDFS-2", pdfs(2), true},
		{"ParallelDFS-8", pdfs(8), true},
	}
}

// suiteModels are the bundled protocols the differential guarantee is
// checked on — the models the paper's tables measure (test-sized
// settings), plus the ignoring-proviso trap. MaxStates caps on both sides
// of each comparison keep the unreduced state spaces test-sized without
// breaking bit-identity.
func suiteModels(t *testing.T) map[string]*core.Protocol {
	t.Helper()
	models := map[string]*core.Protocol{}
	add := func(name string, p *core.Protocol, err error) {
		if err != nil {
			t.Fatal(err)
		}
		models[name] = p
	}
	px, err := paxos.New(paxos.Config{Proposers: 2, Acceptors: 3, Learners: 1})
	add("paxos-231", px, err)
	fx, err := paxos.New(paxos.Config{Proposers: 2, Acceptors: 3, Learners: 1, Faulty: true})
	add("faulty-paxos-231", fx, err)
	mc, err := multicast.New(multicast.Config{HonestReceivers: 2, HonestInitiators: 1, ByzantineInitiators: 1})
	add("multicast-2101", mc, err)
	st, err := storage.New(storage.Config{Objects: 3, Readers: 1})
	add("storage-31", st, err)
	ws, err := storage.New(storage.Config{Objects: 3, Readers: 2, WrongRegularity: true})
	add("storage-32-wrong", ws, err)
	trap, err := mptest.IgnoringTrap(4)
	add("ignoring-trap-4", trap, err)
	return models
}

// TestSpillStoreDifferentialOnSuiteModels is the spill tier's acceptance
// check on the bundled models: for every suite protocol and every engine
// (BFS, DFS, ParallelBFS at 1/2/8 workers under both schedulers,
// ParallelDFS at 1/2/8 workers), a run over a SpillStore with an
// artificially tiny budget (forcing multiple spills and merges) must be
// bit-identical — verdict, statistics (spill activity masked) and trace —
// to the same engine over the in-memory fingerprint store, both unreduced
// and SPOR-reduced.
func TestSpillStoreDifferentialOnSuiteModels(t *testing.T) {
	for name, p := range suiteModels(t) {
		// Small models (the trap stops a step or two in) get a one-entry
		// hot tier so that even they spill; the budget is identical on
		// both sides of nothing — only the spill arm has one — so it
		// cannot affect the comparison.
		budget := int64(1024)
		if name == "ignoring-trap-4" {
			budget = 1
		}
		for _, reducedSearch := range []bool{false, true} {
			xo := explore.Options{TrackTrace: true, MaxStates: 4000, MaxDuration: time.Minute}
			label := name + "/unreduced"
			if reducedSearch {
				exp, err := por.NewExpander(p)
				if err != nil {
					t.Fatal(err)
				}
				xo.Expander = exp
				label = name + "/spor"
			}
			for _, eng := range diffEngines() {
				t.Run(label+"/"+eng.name, func(t *testing.T) {
					mem := xo
					mem.Store = explore.NewHashStore()
					want, err := eng.run(p, mem)
					if err != nil {
						t.Fatal(err)
					}
					sp := xo
					sp.Store = tinySpill(t, budget)
					got, err := eng.run(p, sp)
					if err != nil {
						t.Fatal(err)
					}
					if got.Verdict != want.Verdict {
						t.Errorf("verdict %s over spill, %s in memory", got.Verdict, want.Verdict)
					}
					if gs, ws := maskSpill(got.Stats), maskSpill(want.Stats); gs != ws {
						t.Errorf("stats %+v over spill, %+v in memory", gs, ws)
					}
					if got.Stats.SpillRuns == 0 {
						t.Error("tiny budget never spilled — the differential run does not exercise the disk tier")
					}
					if len(got.Trace) != len(want.Trace) {
						t.Fatalf("trace length %d over spill, %d in memory", len(got.Trace), len(want.Trace))
					}
					for i := range got.Trace {
						if got.Trace[i].StateKey != want.Trace[i].StateKey ||
							got.Trace[i].Event.Key() != want.Trace[i].Event.Key() {
							t.Fatalf("trace step %d: %+v over spill, %+v in memory", i, got.Trace[i], want.Trace[i])
						}
					}
					if got.Verdict == explore.VerdictViolated {
						if _, err := explore.ReplayViolation(p, got.Trace, nil); err != nil {
							t.Errorf("spill-backed counterexample does not replay: %v", err)
						}
					}
				})
			}
		}
	}
}
