// Differential tests of the NDFS liveness engines against the
// liveness.Oracle reference (explicit Büchi-product BFS + Tarjan SCC): on
// every suite model and property, every NDFS configuration — sequential
// and parallel at several worker counts, over in-memory and spill stores,
// unreduced and SPOR — must agree with the oracle's verdict, the members
// of each reduction mode must be bit-identical to their sequential
// reference, and every reported lasso must replay as a genuine accepting
// (and fair, when requested) cycle.
package explore_test

import (
	"testing"
	"time"

	"mpbasset/internal/core"
	"mpbasset/internal/explore"
	"mpbasset/internal/liveness"
	"mpbasset/internal/mptest"
	"mpbasset/internal/por"
	"mpbasset/internal/protocols/multicast"
	"mpbasset/internal/protocols/paxos"
	"mpbasset/internal/protocols/storage"
)

// oracleMaxStates bounds the explicit product the reference oracle builds;
// runs that exceed it are skipped rather than half-checked.
const oracleMaxStates = 400_000

// livenessModel is one (protocol, property) cell of the liveness suite.
// The protocol is already instrumented for the property (visibility marks
// for C2), so the unreduced runs, the SPOR runs and the oracle all explore
// the same graph. full selects the full engine × store matrix; the larger
// models run a trimmed matrix (spilling a 25k-state product through a
// 512-byte budget takes ~10s per run, and the full matrix does it twelve
// times — the small models cover that plane exhaustively instead).
type livenessModel struct {
	name string
	p    *core.Protocol
	prop *liveness.Property
	full bool
}

// livenessSuite pairs the bundled suite models with their canonical
// liveness properties (all verified — the bounded instances do reach their
// goals), plus three violated models covering both lasso shapes: the
// liveness trap and a cyclic generated model (real accepting cycles) and a
// single-reader storage model with an unreachable goal (a stutter lasso at
// the run's final deadlock).
func livenessSuite(t *testing.T) []livenessModel {
	t.Helper()
	var suite []livenessModel
	add := func(name string, full bool, p *core.Protocol, prop *liveness.Property, err error) {
		t.Helper()
		if err != nil {
			t.Fatal(err)
		}
		ip, err := liveness.Instrument(p, prop)
		if err != nil {
			t.Fatal(err)
		}
		suite = append(suite, livenessModel{name: name, p: ip, prop: prop, full: full})
	}
	pxCfg := paxos.Config{Proposers: 2, Acceptors: 3, Learners: 1}
	px, err := paxos.New(pxCfg)
	add("paxos-231", false, px, paxos.Decides(pxCfg), err)
	fxCfg := paxos.Config{Proposers: 2, Acceptors: 3, Learners: 1, Faulty: true}
	fx, err := paxos.New(fxCfg)
	add("faulty-paxos-231", false, fx, paxos.Decides(fxCfg), err)
	mcCfg := multicast.Config{HonestReceivers: 2, HonestInitiators: 1, ByzantineInitiators: 1}
	mc, err := multicast.New(mcCfg)
	add("multicast-2101", true, mc, multicast.Delivers(mcCfg), err)
	stCfg := storage.Config{Objects: 3, Readers: 1}
	st, err := storage.New(stCfg)
	add("storage-31", false, st, storage.ReadsComplete(stCfg), err)
	trap, trapProp, err := mptest.LivenessTrap(4)
	add("liveness-trap-4", true, trap, trapProp, err)
	s1Cfg := storage.Config{Objects: 1, Readers: 1}
	s1, err := storage.New(s1Cfg)
	add("storage-11-stuck", true, s1, liveness.Eventually("unreachable goal", nil,
		func(*core.State) bool { return false }), err)
	cyc, err := mptest.Random(mptest.GenConfig{Seed: 1, Quorums: true, Cycles: true, RingSize: 3, CyclePriority: 3})
	add("random-cyclic-1", true, cyc, liveness.Eventually("rounds reach 2", []core.ProcessID{0},
		func(s *core.State) bool { return s.Local(0).(*mptest.Local).Rounds >= 2 }), err)
	return suite
}

// ndfsEngine is one NDFS engine configuration of the differential matrix.
type ndfsEngine struct {
	name string
	run  func(*core.Protocol, explore.Options) (*explore.Result, error)
}

func ndfsEngines() []ndfsEngine {
	pndfs := func(workers, stealDepth int) func(*core.Protocol, explore.Options) (*explore.Result, error) {
		return func(p *core.Protocol, xo explore.Options) (*explore.Result, error) {
			xo.Workers = workers
			xo.StealDepth = stealDepth
			return explore.ParallelNDFS(p, xo)
		}
	}
	return []ndfsEngine{
		{"NDFS", explore.NDFS},
		{"ParallelNDFS-1", pndfs(1, 0)},
		{"ParallelNDFS-2", pndfs(2, 0)},
		{"ParallelNDFS-4", pndfs(4, 0)},
		{"ParallelNDFS-8", pndfs(8, 0)},
		{"ParallelNDFS-4-steal-1", pndfs(4, 1)},
	}
}

// checkLasso validates a violated result's lasso certificate end to end.
func checkLasso(t *testing.T, label string, p *core.Protocol, prop *liveness.Property, res *explore.Result) {
	t.Helper()
	if _, err := explore.ReplayLasso(p, prop, res.Trace, res.CycleLen, res.Stutter, nil); err != nil {
		t.Errorf("%s: lasso does not replay: %v", label, err)
	}
}

// sameLasso compares two results of the same reduction mode bit-for-bit:
// verdict, lasso shape, trace steps, violation message and every
// deterministic statistic (spill counters and Duration masked).
func sameLasso(t *testing.T, label string, res, ref *explore.Result) {
	t.Helper()
	if res.Verdict != ref.Verdict || res.CycleLen != ref.CycleLen || res.Stutter != ref.Stutter {
		t.Errorf("%s: verdict/cycle (%s, %d, %v), reference (%s, %d, %v)",
			label, res.Verdict, res.CycleLen, res.Stutter, ref.Verdict, ref.CycleLen, ref.Stutter)
		return
	}
	if rs, fs := maskSpill(res.Stats), maskSpill(ref.Stats); rs != fs {
		t.Errorf("%s: stats %+v, reference %+v", label, rs, fs)
	}
	if (res.Violation == nil) != (ref.Violation == nil) {
		t.Errorf("%s: violation %v, reference %v", label, res.Violation, ref.Violation)
	} else if res.Violation != nil && res.Violation.Error() != ref.Violation.Error() {
		t.Errorf("%s: violation %q, reference %q", label, res.Violation, ref.Violation)
	}
	if len(res.Trace) != len(ref.Trace) {
		t.Errorf("%s: trace length %d, reference %d", label, len(res.Trace), len(ref.Trace))
		return
	}
	for i := range res.Trace {
		if res.Trace[i].StateKey != ref.Trace[i].StateKey || res.Trace[i].Event.Key() != ref.Trace[i].Event.Key() {
			t.Errorf("%s: trace step %d = %+v, reference %+v", label, i, res.Trace[i], ref.Trace[i])
			return
		}
	}
}

// TestNDFSOracleDifferentialOnSuiteModels is the tentpole acceptance test:
// on every suite model × property, the Tarjan oracle fixes the ground
// truth, and every NDFS configuration — sequential and parallel, mem and
// spill stores, unreduced and SPOR — must report the oracle's verdict,
// stay bit-identical within its reduction mode, and produce replayable
// lassos on violations.
func TestNDFSOracleDifferentialOnSuiteModels(t *testing.T) {
	for _, m := range livenessSuite(t) {
		m := m
		t.Run(m.name, func(t *testing.T) {
			ores, err := liveness.Oracle(m.p, m.prop, oracleMaxStates)
			if err != nil {
				t.Fatal(err)
			}
			if ores.Limited {
				t.Skipf("oracle limited at %d product states", ores.States)
			}
			want := explore.VerdictVerified
			if ores.Violated {
				want = explore.VerdictViolated
			}
			exp, err := por.NewExpander(m.p)
			if err != nil {
				t.Fatal(err)
			}
			modes := []struct {
				name string
				exp  explore.Expander
			}{
				{"unreduced", nil},
				{"spor", exp},
			}
			for _, mode := range modes {
				ref, err := explore.NDFS(m.p, explore.Options{Expander: mode.exp, Property: m.prop})
				if err != nil {
					t.Fatalf("%s: %v", mode.name, err)
				}
				if ref.Verdict != want {
					t.Fatalf("%s: sequential NDFS verdict %s, oracle %s (states %d, accepting %d)",
						mode.name, ref.Verdict, want, ores.States, ores.AcceptingStates)
				}
				if ref.Verdict == explore.VerdictViolated {
					checkLasso(t, m.name+"/"+mode.name, m.p, m.prop, ref)
				}
				type cell struct {
					eng   ndfsEngine
					store string
				}
				all := ndfsEngines()
				var cells []cell
				if m.full {
					for _, eng := range all {
						cells = append(cells, cell{eng, "mem"}, cell{eng, "spill"})
					}
				} else {
					// Trimmed matrix for the larger models: one spill run
					// (sequential, larger budget to bound merge churn) and
					// the parallel engines over the in-memory store; the full
					// plane is covered on the small models above.
					cells = []cell{
						{all[0], "spill"}, // NDFS
						{all[3], "mem"},   // ParallelNDFS-4
						{all[4], "mem"},   // ParallelNDFS-8
						{all[5], "mem"},   // ParallelNDFS-4-steal-1
					}
				}
				for _, c := range cells {
					xo := explore.Options{Expander: mode.exp, Property: m.prop}
					if c.store == "spill" {
						budget := int64(512)
						if !m.full {
							budget = 64 << 10
						}
						xo.Store = tinySpill(t, budget)
					}
					res, err := c.eng.run(m.p, xo)
					if err != nil {
						t.Fatalf("%s/%s/%s: %v", mode.name, c.eng.name, c.store, err)
					}
					sameLasso(t, m.name+"/"+mode.name+"/"+c.eng.name+"/"+c.store, res, ref)
				}
			}
		})
	}
}

// TestLivenessTrapNDFSFindsWhatProvisoFreeReductionMisses pins the
// liveness trap end to end on the engine side (the por package holds the
// proviso-free reference): SPOR NDFS must report the accepting cycle, with
// the stack proviso firing exactly once (promoting the expansion that
// closes the ring), and the unreduced run and oracle must agree.
func TestLivenessTrapNDFSFindsWhatProvisoFreeReductionMisses(t *testing.T) {
	for _, ring := range []int{2, 3, 5} {
		p, prop, err := mptest.LivenessTrap(ring)
		if err != nil {
			t.Fatal(err)
		}
		ores, err := liveness.Oracle(p, prop, oracleMaxStates)
		if err != nil {
			t.Fatal(err)
		}
		if ores.Limited || !ores.Violated {
			t.Fatalf("ring %d: oracle violated=%v limited=%v, want a violation (the accepting ring cycle)",
				ring, ores.Violated, ores.Limited)
		}
		exp, err := por.NewExpander(p)
		if err != nil {
			t.Fatal(err)
		}
		spor, err := explore.NDFS(p, explore.Options{Expander: exp, Property: prop})
		if err != nil {
			t.Fatal(err)
		}
		if spor.Verdict != explore.VerdictViolated {
			t.Fatalf("ring %d: SPOR NDFS verdict %s, want CE", ring, spor.Verdict)
		}
		if spor.Stats.ProvisoExpansions == 0 {
			t.Errorf("ring %d: SPOR NDFS never fired the stack proviso — the trap is not exercising it", ring)
		}
		if spor.Stutter || spor.CycleLen == 0 {
			t.Errorf("ring %d: cycle (len %d, stutter %v), want a real ring cycle", ring, spor.CycleLen, spor.Stutter)
		}
		checkLasso(t, "spor", p, prop, spor)
		unred, err := explore.NDFS(p, explore.Options{Property: prop})
		if err != nil {
			t.Fatal(err)
		}
		if unred.Verdict != explore.VerdictViolated {
			t.Fatalf("ring %d: unreduced NDFS verdict %s, want CE", ring, unred.Verdict)
		}
		checkLasso(t, "unreduced", p, prop, unred)
	}
}

// TestNDFSWeakFairnessFlipsVerdict exercises the fairness monitor with a
// property whose only counterexample cycle is unfair: on the liveness-trap
// model, "process 0 eventually progresses" is violated by the rounds-0
// token loop — but on that loop PROGRESS is continuously enabled and never
// fires, so under weak fairness the property holds. The oracle (whose
// fairness encoding is an independent implementation of the same copies
// construction) must flip the same way.
func TestNDFSWeakFairnessFlipsVerdict(t *testing.T) {
	for _, ring := range []int{2, 4} {
		p, _, err := mptest.LivenessTrap(ring)
		if err != nil {
			t.Fatal(err)
		}
		progress := func(fair bool) *liveness.Property {
			prop := liveness.Eventually("process 0 progresses", []core.ProcessID{0}, func(s *core.State) bool {
				return s.Local(0).(*mptest.Local).Rounds >= 1
			})
			prop.WeakFair = fair
			return prop
		}
		for _, tc := range []struct {
			fair bool
			want explore.Verdict
		}{
			{false, explore.VerdictViolated},
			{true, explore.VerdictVerified},
		} {
			prop := progress(tc.fair)
			ores, err := liveness.Oracle(p, prop, oracleMaxStates)
			if err != nil {
				t.Fatal(err)
			}
			if ores.Limited || ores.Violated != (tc.want == explore.VerdictViolated) {
				t.Errorf("ring %d fair=%v: oracle violated=%v limited=%v, want violated=%v",
					ring, tc.fair, ores.Violated, ores.Limited, tc.want == explore.VerdictViolated)
			}
			ref, err := explore.NDFS(p, explore.Options{Property: prop})
			if err != nil {
				t.Fatal(err)
			}
			if ref.Verdict != tc.want {
				t.Errorf("ring %d fair=%v: NDFS verdict %s, want %s", ring, tc.fair, ref.Verdict, tc.want)
				continue
			}
			if ref.Verdict == explore.VerdictViolated {
				checkLasso(t, "fairness-flip", p, prop, ref)
			}
			for _, eng := range ndfsEngines()[1:] {
				res, err := eng.run(p, explore.Options{Property: prop})
				if err != nil {
					t.Fatal(err)
				}
				sameLasso(t, eng.name, res, ref)
			}
		}
	}
}

// TestNDFSDeterministicRepeats pins ParallelNDFS determinism directly:
// repeated 8-worker runs over both verdict polarities must be
// bit-identical every time.
func TestNDFSDeterministicRepeats(t *testing.T) {
	trap, trapProp, err := mptest.LivenessTrap(4)
	if err != nil {
		t.Fatal(err)
	}
	stCfg := storage.Config{Objects: 3, Readers: 1}
	st, err := storage.New(stCfg)
	if err != nil {
		t.Fatal(err)
	}
	for _, m := range []livenessModel{
		{name: "liveness-trap-4", p: trap, prop: trapProp},
		{name: "storage-31", p: st, prop: storage.ReadsComplete(stCfg)},
	} {
		var base *explore.Result
		for i := 0; i < 8; i++ {
			res, err := explore.ParallelNDFS(m.p, explore.Options{Property: m.prop, Workers: 8})
			if err != nil {
				t.Fatal(err)
			}
			if base == nil {
				base = res
				continue
			}
			sameLasso(t, m.name, res, base)
		}
	}
}

// TestNDFSLimits checks the limit plumbing: a state bound and a time bound
// must surface as VerdictLimit, and depth-cut runs must not crash the red
// sweep's memo-miss path.
func TestNDFSLimits(t *testing.T) {
	cfg := paxos.Config{Proposers: 2, Acceptors: 3, Learners: 1}
	p, err := paxos.New(cfg)
	if err != nil {
		t.Fatal(err)
	}
	prop := paxos.Decides(cfg)
	res, err := explore.NDFS(p, explore.Options{Property: prop, MaxStates: 100})
	if err != nil {
		t.Fatal(err)
	}
	if res.Verdict != explore.VerdictLimit {
		t.Errorf("MaxStates: verdict %s, want Limit", res.Verdict)
	}
	if res.Stats.States != 100 {
		t.Errorf("MaxStates: explored %d states, want exactly 100", res.Stats.States)
	}
	res, err = explore.NDFS(p, explore.Options{Property: prop, MaxDuration: time.Nanosecond})
	if err != nil {
		t.Fatal(err)
	}
	if res.Verdict == explore.VerdictVerified && res.Stats.Duration > time.Second {
		t.Errorf("MaxDuration: verdict %s after %v", res.Verdict, res.Stats.Duration)
	}
	exp, err := por.NewExpander(p)
	if err != nil {
		t.Fatal(err)
	}
	for _, depth := range []int{1, 3, 7} {
		res, err := explore.NDFS(p, explore.Options{Property: prop, Expander: exp, MaxDepth: depth})
		if err != nil {
			t.Fatal(err)
		}
		if res.Verdict == explore.VerdictVerified {
			t.Errorf("MaxDepth %d: verdict %s, want Limit or CE", depth, res.Verdict)
		}
	}
}

// TestNDFSRequiresProperty pins the option validation of both engines.
func TestNDFSRequiresProperty(t *testing.T) {
	p, _, err := mptest.LivenessTrap(2)
	if err != nil {
		t.Fatal(err)
	}
	if _, err := explore.NDFS(p, explore.Options{}); err == nil {
		t.Error("NDFS without Property: want error")
	}
	if _, err := explore.ParallelNDFS(p, explore.Options{Workers: 2}); err == nil {
		t.Error("ParallelNDFS without Property: want error")
	}
}
