package explore_test

import (
	"testing"

	"mpbasset/internal/core"
	"mpbasset/internal/explore"
	"mpbasset/internal/mptest"
)

// collapseModels returns a verified cyclic quorum model and a violating
// one (Threshold installs a reachable invariant), so the transparency
// tests cover both verdicts and a real counterexample trace.
func collapseModels(t *testing.T) (verified, violating *core.Protocol) {
	t.Helper()
	ok, err := mptest.Random(mptest.GenConfig{Seed: 9, MaxProcs: 4, Quorums: true, Cycles: true, RingSize: 4})
	if err != nil {
		t.Fatal(err)
	}
	bad, err := mptest.Random(mptest.GenConfig{Seed: 5, MaxProcs: 4, Quorums: true, Cycles: true, Threshold: 1})
	if err != nil {
		t.Fatal(err)
	}
	return ok, bad
}

// TestCollapserTransparency pins collapse compression's core contract: the
// compressed canon is injective, so a search over it explores exactly the
// uncompressed search's state space — verdict and every deterministic
// statistic identical — over DFS and BFS alike.
func TestCollapserTransparency(t *testing.T) {
	verified, violating := collapseModels(t)
	engines := []struct {
		name string
		run  func(*core.Protocol, explore.Options) (*explore.Result, error)
	}{
		{"DFS", explore.DFS},
		{"BFS", explore.BFS},
	}
	for _, p := range []*core.Protocol{verified, violating} {
		for _, eng := range engines {
			plain, err := eng.run(p, explore.Options{TrackTrace: true, Store: explore.NewHashStore()})
			if err != nil {
				t.Fatal(err)
			}
			compressed, err := eng.run(p, explore.Options{
				TrackTrace: true,
				Store:      explore.NewHashStore(),
				Canon:      explore.NewCollapser().Canon,
			})
			if err != nil {
				t.Fatal(err)
			}
			ps, cs := plain.Stats, compressed.Stats
			ps.Duration, cs.Duration = 0, 0
			if plain.Verdict != compressed.Verdict || ps != cs {
				t.Errorf("%s/%s: compressed (%s, %+v), uncompressed (%s, %+v)",
					p.Name, eng.name, compressed.Verdict, cs, plain.Verdict, ps)
			}
			if len(plain.Trace) != len(compressed.Trace) {
				t.Errorf("%s/%s: compressed trace length %d, uncompressed %d",
					p.Name, eng.name, len(compressed.Trace), len(plain.Trace))
			}
		}
	}
}

// TestCollapserExpandRoundTrip pins Expand as the exact inverse of Canon:
// for every state of a search, expanding the compressed key reconstructs
// the state's full canonical key.
func TestCollapserExpandRoundTrip(t *testing.T) {
	verified, _ := collapseModels(t)
	coll := explore.NewCollapser()
	init, err := verified.InitialState()
	if err != nil {
		t.Fatal(err)
	}
	// Walk a few hundred states breadth-first, checking the round trip on
	// each.
	frontier := []*core.State{init}
	seen := map[string]bool{init.Key(): true}
	for len(frontier) > 0 && len(seen) < 500 {
		s := frontier[0]
		frontier = frontier[1:]
		compressed := coll.Canon(s)
		full, err := coll.Expand(compressed)
		if err != nil {
			t.Fatalf("Expand(%q): %v", compressed, err)
		}
		if full != s.Key() {
			t.Fatalf("Expand(Canon(s)) = %q, want %q", full, s.Key())
		}
		for _, ev := range verified.Enabled(s) {
			succ, err := verified.Execute(s, ev)
			if err != nil {
				t.Fatal(err)
			}
			if !seen[succ.Key()] {
				seen[succ.Key()] = true
				frontier = append(frontier, succ)
			}
		}
	}
	if coll.Components() == 0 {
		t.Fatal("no components interned")
	}
}

// TestCollapserTraceExpansion pins the decompression path the facade and
// mpcheck run on every counterexample: a trace recorded under the
// compressed canon carries intern-table IDs, ExpandTrace rewrites them to
// full canonical keys, and the expanded trace replays with a nil canon.
func TestCollapserTraceExpansion(t *testing.T) {
	_, violating := collapseModels(t)
	coll := explore.NewCollapser()
	res, err := explore.DFS(violating, explore.Options{
		TrackTrace: true,
		Store:      explore.NewHashStore(),
		Canon:      coll.Canon,
	})
	if err != nil {
		t.Fatal(err)
	}
	if res.Verdict != explore.VerdictViolated {
		t.Fatalf("verdict %s, want CE (the Threshold model violates)", res.Verdict)
	}
	if len(res.Trace) == 0 {
		t.Fatal("no trace recorded")
	}
	// Before expansion the keys are compressed and must NOT replay with a
	// nil canon (replay cross-checks recorded keys against s.Key()).
	if _, err := explore.ReplayViolation(violating, res.Trace, nil); err == nil {
		t.Fatal("compressed trace replayed against full keys — trace keys are not compressed?")
	}
	if err := coll.ExpandTrace(res.Trace); err != nil {
		t.Fatal(err)
	}
	if _, err := explore.ReplayViolation(violating, res.Trace, nil); err != nil {
		t.Fatalf("expanded trace does not replay: %v", err)
	}
}

// TestCollapserParallel pins that the compressed canon is safe under the
// speculative parallel engines and changes nothing the determinism
// guarantee covers: ParallelDFS over a collapser matches sequential DFS
// over its own collapser on verdicts and deterministic stats for any
// worker count. (Compressed trace keys are first-seen-order intern IDs and
// so are NOT comparable across worker counts — that is exactly why the
// facade expands them.)
func TestCollapserParallel(t *testing.T) {
	verified, violating := collapseModels(t)
	for _, p := range []*core.Protocol{verified, violating} {
		ref, err := explore.DFS(p, explore.Options{Store: explore.NewHashStore(), Canon: explore.NewCollapser().Canon})
		if err != nil {
			t.Fatal(err)
		}
		for _, workers := range []int{1, 4} {
			res, err := explore.ParallelDFS(p, explore.Options{
				Workers: workers,
				Store:   explore.NewShardedHashStore(),
				Canon:   explore.NewCollapser().Canon,
			})
			if err != nil {
				t.Fatal(err)
			}
			rs, ws := res.Stats, ref.Stats
			rs.Duration, ws.Duration = 0, 0
			if res.Verdict != ref.Verdict || rs != ws {
				t.Errorf("%s/workers=%d: (%s, %+v), sequential (%s, %+v)",
					p.Name, workers, res.Verdict, rs, ref.Verdict, ws)
			}
		}
	}
}

// TestCollapserExpandErrors pins Expand's rejection of keys the collapser
// did not produce: compressed keys are run-internal names, not a portable
// encoding.
func TestCollapserExpandErrors(t *testing.T) {
	coll := explore.NewCollapser()
	for _, key := range []string{"", "0.1", "x#0", "0#x", "7#0", "0#7"} {
		if _, err := coll.Expand(key); err == nil {
			t.Errorf("Expand(%q) on an empty collapser succeeded", key)
		}
	}
}
