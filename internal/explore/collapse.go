package explore

import (
	"fmt"
	"strconv"
	"strings"
	"sync"

	"mpbasset/internal/core"
)

// Collapser is Spin-style COLLAPSE state compression as a canonicalizer: a
// shared intern table that dedupes the components of a global state — each
// process's local-state key and the message-bag key — across all states of
// a run, so the string a state contributes to the visited store, the
// fingerprint hash and the search stack shrinks from the full canonical
// key to a handful of decimal component IDs ("3.0.7#12" instead of the
// concatenated local and bag encodings). Protocol states share almost all
// of their components with their neighbors (one process moves, the bag
// gains or loses one message), so the table stays small while the per-state
// key shrinks by the average component length.
//
// The mapping is injective per Collapser instance: component IDs are
// assigned per intern table (one table per process slot, one for bags), so
// two states map to the same compressed key iff their full canonical keys
// are equal. A search over Options.Canon = c.Canon therefore explores
// exactly the states, events and verdicts of the uncompressed search — the
// determinism guarantee for verdicts and every counter is untouched. What
// DOES change is the key strings themselves: IDs are assigned in
// first-seen order, so compressed keys are run-internal names (and, under
// the parallel engines, not reproducible across worker counts). Trace
// consumers that need real canonical keys decompress them with Expand —
// the mpbasset facade does this on every returned trace, restoring
// bit-identical traces across worker counts.
//
// Canon is safe for concurrent use (the parallel engines' workers
// canonicalize speculatively); lookups of already-interned components take
// a read lock only. Use one Collapser per run: sharing one across runs is
// sound (the mapping stays injective) but lets the table grow without
// bound.
type Collapser struct {
	mu     sync.RWMutex
	locals []internTable // one table per process slot, grown on demand
	bags   internTable
}

// internTable assigns dense uint32 IDs to component keys in first-seen
// order and remembers the reverse mapping for Expand.
type internTable struct {
	ids  map[string]uint32
	keys []string
}

func (t *internTable) lookup(key string) (uint32, bool) {
	id, ok := t.ids[key]
	return id, ok
}

func (t *internTable) intern(key string) uint32 {
	if id, ok := t.ids[key]; ok {
		return id
	}
	if t.ids == nil {
		t.ids = make(map[string]uint32)
	}
	id := uint32(len(t.keys))
	t.ids[key] = id
	t.keys = append(t.keys, key)
	return id
}

// NewCollapser returns an empty intern table. The number of process slots
// is learned from the first state canonicalized.
func NewCollapser() *Collapser { return &Collapser{} }

// Canon maps s to its compressed canonical key: the per-slot component IDs
// of the local states joined by '.', then '#', then the bag component ID —
// printable, short, and injective with respect to s.Key(). Install it as
// Options.Canon.
func (c *Collapser) Canon(s *core.State) string {
	localKeys, bagKey := s.ComponentKeys()
	ids := make([]uint32, len(localKeys)+1)
	if !c.lookupAll(localKeys, bagKey, ids) {
		c.internAll(localKeys, bagKey, ids)
	}
	var sb strings.Builder
	sb.Grow(4 * len(ids))
	for i, id := range ids[:len(ids)-1] {
		if i > 0 {
			sb.WriteByte('.')
		}
		sb.WriteString(strconv.FormatUint(uint64(id), 10))
	}
	sb.WriteByte('#')
	sb.WriteString(strconv.FormatUint(uint64(ids[len(ids)-1]), 10))
	return sb.String()
}

// lookupAll resolves every component under the read lock; it reports false
// as soon as one component is missing (the slow path interns under the
// write lock).
func (c *Collapser) lookupAll(localKeys []string, bagKey string, ids []uint32) bool {
	c.mu.RLock()
	defer c.mu.RUnlock()
	if len(c.locals) < len(localKeys) {
		return false
	}
	for i, k := range localKeys {
		id, ok := c.locals[i].lookup(k)
		if !ok {
			return false
		}
		ids[i] = id
	}
	id, ok := c.bags.lookup(bagKey)
	if !ok {
		return false
	}
	ids[len(ids)-1] = id
	return true
}

func (c *Collapser) internAll(localKeys []string, bagKey string, ids []uint32) {
	c.mu.Lock()
	defer c.mu.Unlock()
	for len(c.locals) < len(localKeys) {
		c.locals = append(c.locals, internTable{})
	}
	for i, k := range localKeys {
		ids[i] = c.locals[i].intern(k)
	}
	ids[len(ids)-1] = c.bags.intern(bagKey)
}

// Expand decompresses a key produced by Canon back into the state's full
// canonical encoding (core.(*State).Key()). It fails on keys this
// Collapser did not produce — a compressed key is a run-internal name, not
// a portable encoding.
func (c *Collapser) Expand(key string) (string, error) {
	localPart, bagPart, ok := strings.Cut(key, "#")
	if !ok {
		return "", fmt.Errorf("collapse: %q is not a compressed state key (no '#')", key)
	}
	c.mu.RLock()
	defer c.mu.RUnlock()
	var sb strings.Builder
	for i, part := range strings.Split(localPart, ".") {
		id, err := strconv.ParseUint(part, 10, 32)
		if err != nil {
			return "", fmt.Errorf("collapse: bad component ID %q in %q", part, key)
		}
		if i >= len(c.locals) || id >= uint64(len(c.locals[i].keys)) {
			return "", fmt.Errorf("collapse: unknown local component %d.%d in %q", i, id, key)
		}
		if i > 0 {
			sb.WriteByte('|')
		}
		sb.WriteString(c.locals[i].keys[id])
	}
	sb.WriteByte('#')
	id, err := strconv.ParseUint(bagPart, 10, 32)
	if err != nil {
		return "", fmt.Errorf("collapse: bad bag component ID %q in %q", bagPart, key)
	}
	if id >= uint64(len(c.bags.keys)) {
		return "", fmt.Errorf("collapse: unknown bag component %d in %q", id, key)
	}
	sb.WriteString(c.bags.keys[id])
	return sb.String(), nil
}

// ExpandTrace decompresses every StateKey of a recorded trace in place,
// turning the run-internal compressed keys into the full canonical keys
// every trace consumer (Replay with a nil canon, DOT rendering, the
// differential suites) expects.
func (c *Collapser) ExpandTrace(trace []Step) error {
	for i := range trace {
		full, err := c.Expand(trace[i].StateKey)
		if err != nil {
			return err
		}
		trace[i].StateKey = full
	}
	return nil
}

// Components returns the number of distinct components interned so far
// (local states across all slots, plus bags) — the size of the shared
// table a compressed run pays for its shortened keys.
func (c *Collapser) Components() int {
	c.mu.RLock()
	defer c.mu.RUnlock()
	n := len(c.bags.keys)
	for i := range c.locals {
		n += len(c.locals[i].keys)
	}
	return n
}
