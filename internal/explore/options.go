package explore

import (
	"runtime"
	"time"

	"mpbasset/internal/core"
)

// StackInfo exposes the search stack to expanders: the static POR needs it
// for the cycle proviso, and diagnostic expanders may inspect it. Searches
// without a stack (BFS) report nothing on it.
type StackInfo interface {
	// OnStack reports whether the state with the given canonical key is on
	// the current search stack.
	OnStack(key string) bool
}

// Expander selects the events to explore from a state. A nil Expander (or
// the FullExpander) yields unreduced search; package por provides the
// stubborn-set expander.
//
// Contract: the returned slice must be a subset of enabled. Returning a
// slice of the same length as enabled counts as a full expansion.
type Expander interface {
	Expand(s *core.State, enabled []core.Event, stack StackInfo) []core.Event
}

// FullExpander explores every enabled event (no reduction).
type FullExpander struct{}

// Expand implements Expander.
func (FullExpander) Expand(_ *core.State, enabled []core.Event, _ StackInfo) []core.Event {
	return enabled
}

// Options configures a search.
type Options struct {
	// Expander restricts expansion (POR); nil means full expansion.
	Expander Expander
	// Store is the visited set; nil means a fresh ExactStore. Ignored by
	// stateless search.
	Store Store
	// Canon maps a state to the key used for visited-set membership and
	// stack identity. Nil means core.(*State).Key. Package symmetry
	// provides canonicalizing implementations.
	Canon func(*core.State) string
	// MaxStates stops the search after this many distinct states
	// (stateless: visited nodes); 0 means unlimited.
	MaxStates int
	// MaxDepth bounds the search depth; 0 means unlimited (stateless
	// search defaults to 1 << 20 to guarantee termination on cyclic
	// graphs).
	MaxDepth int
	// MaxDuration stops the search after the given wall-clock time;
	// 0 means unlimited.
	MaxDuration time.Duration
	// TrackTrace records parent links so BFS can reconstruct
	// counterexamples (DFS reconstructs from its stack for free).
	TrackTrace bool
	// Workers is the size of ParallelBFS's worker pool; 0 or negative
	// means runtime.GOMAXPROCS(0). Ignored by the sequential engines.
	Workers int
}

func (o *Options) store() Store {
	if o.Store != nil {
		return o.Store
	}
	return NewExactStore()
}

func (o *Options) canon() func(*core.State) string {
	if o.Canon != nil {
		return o.Canon
	}
	return func(s *core.State) string { return s.Key() }
}

func (o *Options) workers() int {
	if o.Workers > 0 {
		return o.Workers
	}
	return runtime.GOMAXPROCS(0)
}

func (o *Options) expander() Expander {
	if o.Expander != nil {
		return o.Expander
	}
	return FullExpander{}
}

// limiter tracks the stop conditions shared by the engines.
type limiter struct {
	maxStates int
	maxDepth  int
	deadline  time.Time
	start     time.Time
	checked   int
}

func newLimiter(o Options) *limiter {
	l := &limiter{maxStates: o.MaxStates, maxDepth: o.MaxDepth, start: time.Now()}
	if o.MaxDuration > 0 {
		l.deadline = l.start.Add(o.MaxDuration)
	}
	return l
}

func (l *limiter) statesExceeded(n int) bool {
	return l.maxStates > 0 && n >= l.maxStates
}

func (l *limiter) depthExceeded(d int) bool {
	return l.maxDepth > 0 && d >= l.maxDepth
}

// timeExceeded polls the clock once every 1024 calls to stay cheap.
func (l *limiter) timeExceeded() bool {
	if l.deadline.IsZero() {
		return false
	}
	l.checked++
	if l.checked&1023 != 0 {
		return false
	}
	return time.Now().After(l.deadline)
}

// deadlinePassed checks the deadline against the clock directly, without
// the stride counter — safe for concurrent use by ParallelBFS workers
// (which amortize the clock read themselves).
func (l *limiter) deadlinePassed() bool {
	return !l.deadline.IsZero() && time.Now().After(l.deadline)
}

func (l *limiter) elapsed() time.Duration { return time.Since(l.start) }
