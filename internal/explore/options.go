package explore

import (
	"runtime"
	"time"

	"mpbasset/internal/core"
	"mpbasset/internal/liveness"
)

// Proviso is the ignoring-proviso (C3) hook of a search engine: the
// engine-specific test deciding whether a reduced expansion may be kept or
// must be promoted to a full one so that deferred events cannot be ignored
// forever around a cycle. Each stateful engine supplies its own
// implementation — DFS the classic stack discipline (a reduced expansion
// must not close a cycle onto the search stack), the BFS engines the queue
// proviso (a reduced expansion must discover at least one state that was
// not yet visited when the node's level began). The proviso decision is
// the engine's: it executes the chosen events, queries the hook with the
// successor keys and re-expands fully when the hook reports ignoring.
//
// The hook is also passed to Expander.Expand, but strictly for diagnostics
// (logging, assertions): the event set an expander returns must be a pure
// function of the state and its enabled events, never of the hook's
// answers. Engines hand different implementations to Expand — DFS its live
// stack, ParallelBFS workers an inert one, since no snapshot-consistent
// answer exists mid-level — so conditioning the selection on the hook
// would both lose the bit-identical sequential/parallel guarantee and
// confuse the engine-side proviso accounting.
type Proviso interface {
	// OnStack reports whether the state with the given canonical key is on
	// the current search stack. Engines without a stack (BFS) report false.
	OnStack(key string) bool
	// Ignoring reports whether a reduced expansion that yields exactly the
	// states with the given canonical keys could defer its remaining
	// events forever, in which case the engine re-expands the state fully.
	// DFS: some successor is on the search stack (the reduced expansion
	// would close a cycle). BFS: every successor was already visited when
	// the expanded node's level began (the reduced expansion enqueues
	// nothing new, so the deferred events would never be retried).
	Ignoring(succKeys []string) bool
}

// Expander selects the events to explore from a state. A nil Expander (or
// the FullExpander) yields unreduced search; package por provides the
// stubborn-set expander.
//
// Contract: the returned slice must be a subset of enabled, and must be a
// deterministic function of s and enabled alone — prov is informational
// (see Proviso). Returning a slice of the same length as enabled counts as
// a full expansion.
type Expander interface {
	Expand(s *core.State, enabled []core.Event, prov Proviso) []core.Event
}

// FullExpander explores every enabled event (no reduction).
type FullExpander struct{}

// Expand implements Expander.
func (FullExpander) Expand(_ *core.State, enabled []core.Event, _ Proviso) []core.Event {
	return enabled
}

// Sched selects how ParallelBFS workers claim frontier nodes within a
// level. Both schedulers feed the same deterministic merge, so results are
// bit-identical across schedulers; they differ only in throughput.
type Sched int

const (
	// SchedWorkStealing (the default) partitions each frontier into
	// per-worker contiguous spans: workers claim chunks of their own span
	// (size adaptive to len(frontier)/workers unless ChunkSize overrides
	// it) and, when idle, steal the upper half of the most-loaded worker's
	// remaining span. Visited-set inserts are flushed through the store's
	// batched fast path (see Options.BatchSize). This is the fastest
	// scheduler on skewed frontiers, where nodes differ widely in
	// expansion cost.
	SchedWorkStealing Sched = iota
	// SchedSingleIndex is the original scheduler: workers claim one node
	// at a time from a single shared atomic index and insert visited keys
	// one by one. Kept as the comparison baseline for benchmarks; the
	// shared index and per-key stripe locks make it slower on skewed
	// frontiers and at high worker counts.
	SchedSingleIndex
)

// Options configures a search.
type Options struct {
	// Expander restricts expansion (POR); nil means full expansion.
	Expander Expander
	// Property is the Büchi liveness property the NDFS engines (NDFS,
	// ParallelNDFS) check; they require it and every other engine ignores
	// it. The safety invariant is NOT checked by the liveness engines —
	// run a safety search separately. When Property.WeakFair is set the
	// NDFS engines ignore Expander and explore the full graph: the
	// fairness monitor observes every transition, so no transition is
	// invisible in the product and the ample-set condition C2 admits no
	// reduction.
	Property *liveness.Property
	// Store is the visited set; nil means a fresh ExactStore. Ignored by
	// stateless search.
	Store Store
	// Canon maps a state to the key used for visited-set membership and
	// stack identity. Nil means core.(*State).Key. Package symmetry
	// provides canonicalizing implementations.
	Canon func(*core.State) string
	// MaxStates stops the search after this many distinct states
	// discovered by the run (stateless: visited nodes); 0 means
	// unlimited.
	MaxStates int
	// MaxDepth bounds the search depth, measured in events from the
	// initial state (the initial state is depth 0): states at depth
	// MaxDepth are still visited and invariant-checked, but not expanded,
	// and the run reports VerdictLimit when the bound actually cut
	// something. All engines share this convention. Note that the depth
	// at which a state is first visited is engine-specific: BFS and
	// ParallelBFS visit every state at its shortest-path depth, while DFS
	// visits it at the depth of the first search path that reaches it, so
	// a depth-limited DFS may cut a different (never shallower-reaching)
	// slice of the state space. 0 means unlimited (stateless search
	// defaults to 1 << 20 to guarantee termination on cyclic graphs).
	MaxDepth int
	// MaxDuration stops the search after the given wall-clock time;
	// 0 means unlimited.
	MaxDuration time.Duration
	// TrackTrace records parent links so BFS can reconstruct
	// counterexamples (DFS reconstructs from its stack for free).
	TrackTrace bool
	// Workers is the size of ParallelBFS's worker pool; 0 or negative
	// means runtime.GOMAXPROCS(0). Ignored by the sequential engines.
	Workers int
	// Sched selects ParallelBFS's intra-level scheduler; the zero value
	// is SchedWorkStealing. Ignored by the sequential engines.
	Sched Sched
	// ChunkSize fixes the number of frontier nodes a work-stealing worker
	// claims per grab; 0 or negative means adaptive
	// (len(frontier)/(workers*8), clamped to [1, 1024]). Ignored by
	// SchedSingleIndex and the sequential engines.
	ChunkSize int
	// BatchSize is the number of successor keys a work-stealing worker
	// buffers before flushing them through the store's batched insert
	// path (BatchStore.SeenBatch); 0 or negative means the default of 64.
	// 1 degenerates to per-key inserts. Ignored by SchedSingleIndex and
	// the sequential engines.
	BatchSize int
	// StealDepth bounds one stolen subtree's speculation in ParallelDFS: a
	// worker that steals a pending sibling explores at most this many
	// events below the stolen root before reporting back and stealing
	// afresh. Deeper speculation risks staleness (the commit walk may
	// already have visited the subtree's states via another path), shallower
	// speculation re-steals more often; neither ever changes results, only
	// throughput. 0 or negative means the default of 8. Ignored by every
	// other engine.
	StealDepth int
}

func (o *Options) store() Store {
	if o.Store != nil {
		return o.Store
	}
	return NewExactStore()
}

func (o *Options) canon() func(*core.State) string {
	if o.Canon != nil {
		return o.Canon
	}
	return func(s *core.State) string { return s.Key() }
}

func (o *Options) workers() int {
	if o.Workers > 0 {
		return o.Workers
	}
	return runtime.GOMAXPROCS(0)
}

// chunkSize resolves the work-stealing claim granularity for a frontier of
// the given size expanded by the given worker count.
func (o *Options) chunkSize(frontier, workers int) int {
	if o.ChunkSize > 0 {
		return o.ChunkSize
	}
	chunk := frontier / (workers * 8)
	if chunk < 1 {
		return 1
	}
	if chunk > 1024 {
		return 1024
	}
	return chunk
}

// batchSize resolves the successor-key buffer size of a work-stealing
// worker.
func (o *Options) batchSize() int {
	if o.BatchSize > 0 {
		return o.BatchSize
	}
	return 64
}

// stealDepth resolves ParallelDFS's per-steal speculation depth budget.
func (o *Options) stealDepth() int {
	if o.StealDepth > 0 {
		return o.StealDepth
	}
	return 8
}

func (o *Options) expander() Expander {
	if o.Expander != nil {
		return o.Expander
	}
	return FullExpander{}
}

// limiter tracks the stop conditions shared by the engines.
type limiter struct {
	maxStates int
	maxDepth  int
	deadline  time.Time
	start     time.Time
	checked   int
}

func newLimiter(o Options) *limiter {
	l := &limiter{maxStates: o.MaxStates, maxDepth: o.MaxDepth, start: time.Now()}
	if o.MaxDuration > 0 {
		l.deadline = l.start.Add(o.MaxDuration)
	}
	return l
}

func (l *limiter) statesExceeded(n int) bool {
	return l.maxStates > 0 && n >= l.maxStates
}

func (l *limiter) depthExceeded(d int) bool {
	return l.maxDepth > 0 && d >= l.maxDepth
}

// timeExceeded polls the clock once every 1024 calls to stay cheap.
func (l *limiter) timeExceeded() bool {
	if l.deadline.IsZero() {
		return false
	}
	l.checked++
	if l.checked&1023 != 0 {
		return false
	}
	return time.Now().After(l.deadline)
}

// deadlinePassed checks the deadline against the clock directly, without
// the stride counter — safe for concurrent use by ParallelBFS workers
// (which amortize the clock read themselves).
func (l *limiter) deadlinePassed() bool {
	return !l.deadline.IsZero() && time.Now().After(l.deadline)
}

func (l *limiter) elapsed() time.Duration { return time.Since(l.start) }
