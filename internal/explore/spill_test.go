package explore

import (
	"fmt"
	"os"
	"path/filepath"
	"sync"
	"sync/atomic"
	"testing"

	"mpbasset/internal/core"
	"mpbasset/internal/mptest"
)

// tinySpillStore returns a SpillStore whose hot tier holds only a handful
// of entries, so even small state spaces force multiple spills (and, past
// mergeRuns, merges).
func tinySpillStore(t testing.TB) *SpillStore {
	t.Helper()
	s, err := NewSpillStore(SpillConfig{BudgetBytes: 4 * hotEntryBytes, Dir: t.TempDir()})
	if err != nil {
		t.Fatal(err)
	}
	t.Cleanup(func() {
		if err := s.Close(); err != nil {
			t.Errorf("SpillStore.Close: %v", err)
		}
	})
	return s
}

func spillKeys(n int) []string {
	keys := make([]string, n)
	for i := range keys {
		keys[i] = fmt.Sprintf("proc%d:val%d|bag{m%d}", i%4, i, i%97)
	}
	return keys
}

// TestSpillStoreMatchesHashStore drives both fingerprint stores with the
// identical key stream (fresh keys interleaved with duplicates) and
// requires answer-for-answer agreement, across enough keys to force many
// spills and at least one merge.
func TestSpillStoreMatchesHashStore(t *testing.T) {
	spill := tinySpillStore(t)
	ref := NewHashStore()
	keys := spillKeys(2000)
	for i, k := range keys {
		if got, want := spill.Seen(k), ref.Seen(k); got != want {
			t.Fatalf("key %d fresh: spill Seen=%v, hash Seen=%v", i, got, want)
		}
		// Revisit an earlier key every other step: its answer must be a
		// duplicate in both stores, whichever tier holds it by now.
		if i%2 == 1 {
			old := keys[i/2]
			if got, want := spill.Seen(old), ref.Seen(old); got != want {
				t.Fatalf("key %d revisit %q: spill Seen=%v, hash Seen=%v", i, old, got, want)
			}
		}
		if spill.Len() != ref.Len() {
			t.Fatalf("key %d: spill Len=%d, hash Len=%d", i, spill.Len(), ref.Len())
		}
	}
	for i, k := range keys {
		if !spill.Has(k) {
			t.Fatalf("Has(%d) = false after insert", i)
		}
	}
	if spill.Has("never-inserted") {
		t.Error("Has reports a never-inserted key")
	}
	runs, bytes, probes := spill.SpillStats()
	if runs == 0 || bytes == 0 {
		t.Errorf("spill never fired: runs=%d bytes=%d (budget %d entries over %d keys)",
			runs, bytes, spill.budgetEntries, len(keys))
	}
	if probes == 0 {
		t.Error("no probe ever consulted the disk tier")
	}
	if err := spill.Err(); err != nil {
		t.Errorf("probe error: %v", err)
	}
}

// TestSpillStoreSeenBatch checks the batched path: intra-batch duplicates
// report false exactly at their first occurrence, answers match the
// per-key path, and batches spanning both tiers stay correct.
func TestSpillStoreSeenBatch(t *testing.T) {
	spill := tinySpillStore(t)
	ref := NewHashStore()
	keys := spillKeys(600)
	for lo := 0; lo < len(keys); lo += 40 {
		hi := lo + 40
		// Each batch: 40 fresh keys, 10 re-sends of earlier ones, plus an
		// intra-batch duplicate pair.
		batch := append([]string(nil), keys[lo:hi]...)
		for j := 0; j < 10 && j < lo; j++ {
			batch = append(batch, keys[j*3%lo])
		}
		batch = append(batch, keys[lo], keys[lo])
		got := spill.SeenBatch(batch)
		for i, k := range batch {
			if want := ref.Seen(k); got[i] != want {
				t.Fatalf("batch at %d, key %d (%q): spill=%v, ref=%v", lo, i, k, got[i], want)
			}
		}
		if spill.Len() != ref.Len() {
			t.Fatalf("batch at %d: spill Len=%d, ref Len=%d", lo, spill.Len(), ref.Len())
		}
	}
}

// TestSpillStoreMergeCompactsRuns fills the store far enough that the run
// count crosses the merge threshold, then checks that the disk tier was
// compacted to a single file and that membership survived the merge.
func TestSpillStoreMergeCompactsRuns(t *testing.T) {
	dir := t.TempDir()
	s, err := NewSpillStore(SpillConfig{BudgetBytes: 2 * hotEntryBytes, Dir: dir, MergeRuns: 4})
	if err != nil {
		t.Fatal(err)
	}
	defer s.Close()
	keys := spillKeys(200)
	for _, k := range keys {
		s.Seen(k)
	}
	if got := len(*s.runs.Load()); got >= 4 {
		t.Errorf("disk tier holds %d runs, want fewer than the merge threshold 4", got)
	}
	for i, k := range keys {
		if !s.Has(k) {
			t.Fatalf("key %d lost across merges", i)
		}
	}
	if s.Len() != len(keys) {
		t.Errorf("Len=%d, want %d", s.Len(), len(keys))
	}
	// Retired run files are unlinked from the directory even though their
	// handles stay open for in-flight probes.
	files, err := filepath.Glob(filepath.Join(dir, "run-*.fp"))
	if err != nil {
		t.Fatal(err)
	}
	if len(files) != len(*s.runs.Load()) {
		t.Errorf("%d run files on disk, %d registered", len(files), len(*s.runs.Load()))
	}
	if err := s.Close(); err != nil {
		t.Fatal(err)
	}
	files, _ = filepath.Glob(filepath.Join(dir, "run-*.fp"))
	if len(files) != 0 {
		t.Errorf("Close left %d run files behind: %v", len(files), files)
	}
	if _, err := os.Stat(dir); err != nil {
		t.Errorf("Close removed the caller-supplied dir: %v", err)
	}
}

// TestSpillStoreConcurrentExactlyOneFalse is the linearizability property
// test: goroutines hammer a racing mix of Seen and SeenBatch over an
// overlapping key space while spills and merges run underneath; for every
// distinct key exactly one answer across all goroutines must be false.
func TestSpillStoreConcurrentExactlyOneFalse(t *testing.T) {
	const (
		goroutines = 8
		keySpace   = 1500
	)
	s, err := NewSpillStore(SpillConfig{BudgetBytes: 8 * hotEntryBytes, Dir: t.TempDir(), MergeRuns: 3})
	if err != nil {
		t.Fatal(err)
	}
	defer s.Close()
	keys := spillKeys(keySpace)
	wins := make([]atomic.Int32, keySpace)
	var wg sync.WaitGroup
	for g := 0; g < goroutines; g++ {
		wg.Add(1)
		go func(g int) {
			defer wg.Done()
			if g%2 == 0 {
				for i := 0; i < keySpace; i++ {
					idx := (i*7 + g*13) % keySpace
					if !s.Seen(keys[idx]) {
						wins[idx].Add(1)
					}
				}
				return
			}
			batch := make([]string, 0, 32)
			idxs := make([]int, 0, 32)
			flush := func() {
				for i, dup := range s.SeenBatch(batch) {
					if !dup {
						wins[idxs[i]].Add(1)
					}
				}
				batch, idxs = batch[:0], idxs[:0]
			}
			for i := 0; i < keySpace; i++ {
				idx := (i*11 + g*17) % keySpace
				batch = append(batch, keys[idx])
				idxs = append(idxs, idx)
				if len(batch) == cap(batch) {
					flush()
				}
			}
			flush()
		}(g)
	}
	wg.Wait()
	for i := range wins {
		if got := wins[i].Load(); got != 1 {
			t.Errorf("key %d reported fresh %d times, want exactly 1", i, got)
		}
	}
	if s.Len() != keySpace {
		t.Errorf("Len=%d, want %d", s.Len(), keySpace)
	}
	if err := s.Err(); err != nil {
		t.Errorf("probe error: %v", err)
	}
}

// TestSpillBackedTraceReplays is the spill replay regression: a trace
// recorded under a budget so tight that the run spills on every insert
// (the whole visited set lives on disk mid-search) must replay with every
// state key verified — exactly like an in-memory trace — and the
// corrupted-trace rejection path must still fire on it.
func TestSpillBackedTraceReplays(t *testing.T) {
	// Two violating models: a generated cyclic protocol (violation two
	// levels deep), and the ignoring trap under the reducing expander,
	// whose counterexample walks the full token ring — six levels of
	// spill-backed frontier before the violating event.
	random, err := mptest.Random(mptest.GenConfig{Seed: 1, Quorums: true, Cycles: true, RingSize: 3, CyclePriority: 3, Threshold: 2})
	if err != nil {
		t.Fatal(err)
	}
	trap, err := mptest.IgnoringTrap(6)
	if err != nil {
		t.Fatal(err)
	}
	cases := []struct {
		name string
		p    *core.Protocol
		xo   Options
	}{
		{"random-cyclic", random, Options{TrackTrace: true}},
		{"ignoring-trap-6-reduced", trap, Options{TrackTrace: true, Expander: loopExpander{}}},
	}
	for _, tc := range cases {
		t.Run(tc.name, func(t *testing.T) {
			mem := tc.xo
			mem.Store = NewHashStore()
			ref, err := BFS(tc.p, mem)
			if err != nil {
				t.Fatal(err)
			}
			if ref.Verdict != VerdictViolated {
				t.Fatalf("reference run verdict %s, want CE", ref.Verdict)
			}
			spill, err := NewSpillStore(SpillConfig{BudgetBytes: 1, Dir: t.TempDir(), MergeRuns: 3})
			if err != nil {
				t.Fatal(err)
			}
			defer spill.Close()
			sp := tc.xo
			sp.Store = spill
			res, err := BFS(tc.p, sp)
			if err != nil {
				t.Fatal(err)
			}
			if res.Stats.SpillRuns == 0 {
				t.Fatal("run never spilled — the regression does not cover the disk tier")
			}
			if res.Verdict != VerdictViolated || len(res.Trace) != len(ref.Trace) {
				t.Fatalf("spill-backed run: %s with %d steps, in-memory %s with %d",
					res.Verdict, len(res.Trace), ref.Verdict, len(ref.Trace))
			}
			for i := range res.Trace {
				if res.Trace[i].StateKey != ref.Trace[i].StateKey || res.Trace[i].Event.Key() != ref.Trace[i].Event.Key() {
					t.Fatalf("trace step %d: %+v over spill, %+v in memory", i, res.Trace[i], ref.Trace[i])
				}
			}
			if _, err := ReplayViolation(tc.p, res.Trace, nil); err != nil {
				t.Fatalf("spill-backed counterexample does not replay: %v", err)
			}
			// The rejection path: a mangled state key in a spill-recorded
			// trace is caught like any other.
			mangled := append([]Step(nil), res.Trace...)
			mangled[len(mangled)-1].StateKey = "bogus|" + mangled[len(mangled)-1].StateKey
			if _, err := Replay(tc.p, mangled, nil); err == nil {
				t.Error("corrupted spill-backed trace accepted")
			}
		})
	}
}

// TestSpillStoreConfig covers the constructor's validation and directory
// handling.
func TestSpillStoreConfig(t *testing.T) {
	if _, err := NewSpillStore(SpillConfig{}); err == nil {
		t.Error("zero budget accepted")
	}
	if _, err := NewSpillStore(SpillConfig{BudgetBytes: -5}); err == nil {
		t.Error("negative budget accepted")
	}
	s, err := NewSpillStore(SpillConfig{BudgetBytes: 1})
	if err != nil {
		t.Fatal(err)
	}
	if s.budgetEntries != 1 {
		t.Errorf("sub-entry budget resolves to %d entries, want 1", s.budgetEntries)
	}
	dir := s.dir
	if _, err := os.Stat(dir); err != nil {
		t.Fatalf("temp spill dir missing: %v", err)
	}
	for _, k := range spillKeys(40) {
		s.Seen(k)
	}
	if err := s.Close(); err != nil {
		t.Fatal(err)
	}
	if _, err := os.Stat(dir); !os.IsNotExist(err) {
		t.Errorf("Close kept the store-created temp dir %s", dir)
	}
	if err := s.Close(); err != nil {
		t.Errorf("second Close: %v", err)
	}
}
