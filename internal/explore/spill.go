package explore

import (
	"bufio"
	"bytes"
	"fmt"
	"io"
	"math/bits"
	"os"
	"path/filepath"
	"slices"
	"sync"
	"sync/atomic"
)

// hotEntryBytes is the budget-accounting cost of one hot-tier entry: a
// 16-byte fingerprint plus amortized Go map overhead (bucket headers,
// load-factor slack, the hash seed). Deliberately coarse — the budget
// bounds the hot tier's order of magnitude, not its exact footprint.
const hotEntryBytes = 64

// defaultMergeRuns is the on-disk run count past which a SpillStore
// compacts all runs into one (SpillConfig.MergeRuns overrides it). Each
// probe that misses the hot tier consults every run's bloom summary, so
// unbounded run counts would degrade negative probes linearly.
const defaultMergeRuns = 8

// SpillConfig configures a SpillStore.
type SpillConfig struct {
	// BudgetBytes bounds the in-memory hot tier (approximately — entries
	// are accounted at a fixed hotEntryBytes each). When an insert pushes
	// the hot tier past the budget, its fingerprints are flushed to a
	// sorted immutable run file on disk. Must be positive.
	BudgetBytes int64
	// Dir is the directory for run files. Empty means a fresh temporary
	// directory, removed by Close; a caller-supplied directory is kept,
	// only the run files created in it are removed.
	Dir string
	// MergeRuns is the run count at which the store compacts every disk
	// run into a single one; 0 means defaultMergeRuns.
	MergeRuns int
}

// spillBloom is a run's in-memory membership summary: a power-of-two
// bitset probed at four positions sliced directly from the 128-bit FNV
// fingerprint (the fingerprint is already a high-quality hash, so no
// rehashing is needed). It answers "definitely absent" for most keys a
// run does not hold, keeping negative probes off the disk.
type spillBloom struct {
	words []uint64
	mask  uint32
}

func newSpillBloom(n int) spillBloom {
	// ~12 bits per entry with four probes keeps false positives well
	// under 1%.
	bitsWanted := uint64(n) * 12
	if bitsWanted < 64 {
		bitsWanted = 64
	}
	size := uint64(1) << bits.Len64(bitsWanted-1)
	return spillBloom{words: make([]uint64, size/64), mask: uint32(size - 1)}
}

func (b *spillBloom) probes(fp [16]byte) [4]uint32 {
	return [4]uint32{
		uint32(fp[0])<<24 | uint32(fp[1])<<16 | uint32(fp[2])<<8 | uint32(fp[3]),
		uint32(fp[4])<<24 | uint32(fp[5])<<16 | uint32(fp[6])<<8 | uint32(fp[7]),
		uint32(fp[8])<<24 | uint32(fp[9])<<16 | uint32(fp[10])<<8 | uint32(fp[11]),
		uint32(fp[12])<<24 | uint32(fp[13])<<16 | uint32(fp[14])<<8 | uint32(fp[15]),
	}
}

func (b *spillBloom) add(fp [16]byte) {
	for _, p := range b.probes(fp) {
		i := p & b.mask
		b.words[i/64] |= 1 << (i % 64)
	}
}

func (b *spillBloom) mayContain(fp [16]byte) bool {
	for _, p := range b.probes(fp) {
		i := p & b.mask
		if b.words[i/64]&(1<<(i%64)) == 0 {
			return false
		}
	}
	return true
}

// spillRun is one immutable sorted run of 16-byte fingerprints on disk,
// with its in-memory bloom summary and key range for cheap rejection.
// The file handle is used via ReadAt only, which is safe for concurrent
// probes.
type spillRun struct {
	f           *os.File
	path        string
	n           int
	bloom       spillBloom
	first, last [16]byte
}

// contains binary-searches the run for fp after the bloom and range
// pre-filters.
func (r *spillRun) contains(fp [16]byte) (bool, error) {
	if bytes.Compare(fp[:], r.first[:]) < 0 || bytes.Compare(fp[:], r.last[:]) > 0 {
		return false, nil
	}
	if !r.bloom.mayContain(fp) {
		return false, nil
	}
	lo, hi := 0, r.n
	var buf [16]byte
	for lo < hi {
		mid := int(uint(lo+hi) >> 1)
		if _, err := r.f.ReadAt(buf[:], int64(mid)*16); err != nil {
			return false, fmt.Errorf("spill run %s: %w", r.path, err)
		}
		switch bytes.Compare(buf[:], fp[:]) {
		case 0:
			return true, nil
		case -1:
			lo = mid + 1
		default:
			hi = mid
		}
	}
	return false, nil
}

// spillShard is one hot-tier stripe: a mutex plus that stripe's
// fingerprints.
type spillShard struct {
	mu sync.Mutex
	m  map[[16]byte]struct{}
}

// SpillStore is a two-tier visited-state store for state spaces that
// exceed RAM: a sharded in-memory hot tier of 128-bit FNV-1a fingerprints
// (the same fingerprint path as HashStore/ShardedStore) backed by sorted
// immutable runs of fingerprints on disk. When an insert pushes the hot
// tier past SpillConfig.BudgetBytes, its fingerprints are sorted and
// flushed to a new run file, and membership probes answer from the hot
// tier first and then the disk runs (per-run bloom summaries keep
// negative probes cheap; hits binary-search the file). When the run count
// passes SpillConfig.MergeRuns, all runs are compacted into one.
//
// SpillStore implements Store, BatchStore and HasStore, so every stateful
// engine — BFS, DFS and ParallelBFS under both schedulers, batched and
// per-key insert paths, proviso logic included — runs over it unchanged,
// with verdicts, search statistics and traces bit-identical to the
// in-memory fingerprint stores; only the spill-activity fields of Stats
// (SpillRuns, SpillBytes, DiskProbes) differ from an in-memory run. It is
// safe for concurrent use (it satisfies ConcurrentStore): per-key
// linearizability holds because a fingerprint is never absent from both
// tiers — a spill registers the new run before deleting the flushed
// entries from the hot tier, and both the hot check and the disk probe of
// an insert happen under the key's stripe lock.
//
// Like the other fingerprint stores, SpillStore trades a negligible
// collision probability for memory; exact-mode (full-key) storage does
// not spill. Close releases the run files (and the store's temporary
// directory, if it created one); it must not race with probes.
type SpillStore struct {
	budgetEntries int64
	mergeRuns     int
	dir           string
	ownDir        bool

	count       atomic.Int64 // distinct fingerprints recorded (Len)
	hotCount    atomic.Int64 // fingerprints currently in the hot tier
	diskProbes  atomic.Int64
	runsWritten atomic.Int64
	spillBytes  atomic.Int64

	runs atomic.Pointer[[]*spillRun]

	// spillMu serializes spills, merges and Close. Probes never take it:
	// they read the runs pointer. probeErr records the first disk-read
	// failure (probes have no error return; the search surfaces it via
	// Err).
	spillMu   sync.Mutex
	nextRunID int
	closed    bool

	probeErr atomic.Pointer[error]

	shards [shardCount]spillShard
}

// NewSpillStore returns an empty two-tier store spilling to cfg.Dir when
// the hot tier exceeds cfg.BudgetBytes.
func NewSpillStore(cfg SpillConfig) (*SpillStore, error) {
	if cfg.BudgetBytes <= 0 {
		return nil, fmt.Errorf("explore: SpillStore needs a positive memory budget, got %d", cfg.BudgetBytes)
	}
	s := &SpillStore{
		budgetEntries: cfg.BudgetBytes / hotEntryBytes,
		mergeRuns:     cfg.MergeRuns,
		dir:           cfg.Dir,
	}
	if s.budgetEntries < 1 {
		s.budgetEntries = 1
	}
	if s.mergeRuns <= 1 {
		s.mergeRuns = defaultMergeRuns
	}
	if s.dir == "" {
		dir, err := os.MkdirTemp("", "mpbasset-spill-*")
		if err != nil {
			return nil, fmt.Errorf("explore: SpillStore temp dir: %w", err)
		}
		s.dir, s.ownDir = dir, true
	} else if err := os.MkdirAll(s.dir, 0o755); err != nil {
		return nil, fmt.Errorf("explore: SpillStore dir: %w", err)
	}
	empty := []*spillRun{}
	s.runs.Store(&empty)
	return s, nil
}

// onDisk probes the disk tier for fp. Counted once per probe, not per
// run.
func (s *SpillStore) onDisk(fp [16]byte) bool {
	runs := *s.runs.Load()
	if len(runs) == 0 {
		return false
	}
	s.diskProbes.Add(1)
	for _, r := range runs {
		hit, err := r.contains(fp)
		if err != nil {
			s.recordProbeErr(err)
			return false
		}
		if hit {
			return true
		}
	}
	return false
}

func (s *SpillStore) recordProbeErr(err error) {
	s.probeErr.CompareAndSwap(nil, &err)
}

// Err returns the first disk-read error a probe encountered, if any.
// Membership probes have no error return; a failing read makes the
// affected probe answer "not present" (at worst re-exploring a state),
// and the error is surfaced here for the search's owner to check.
func (s *SpillStore) Err() error {
	if p := s.probeErr.Load(); p != nil {
		return *p
	}
	return nil
}

// seenFP records fp and reports whether it was already present in either
// tier. Both the hot check and the disk probe run under the stripe lock,
// which (together with register-before-delete in spill) guarantees the
// exactly-one-false-per-distinct-key contract under concurrency.
func (s *SpillStore) seenFP(fp [16]byte) bool {
	sh := &s.shards[fp[15]]
	sh.mu.Lock()
	if _, dup := sh.m[fp]; dup {
		sh.mu.Unlock()
		return true
	}
	if s.onDisk(fp) {
		sh.mu.Unlock()
		return true
	}
	if sh.m == nil {
		sh.m = make(map[[16]byte]struct{})
	}
	sh.m[fp] = struct{}{}
	sh.mu.Unlock()
	s.count.Add(1)
	if s.hotCount.Add(1) >= s.budgetEntries {
		s.maybeSpill()
	}
	return false
}

// Seen implements Store.
func (s *SpillStore) Seen(key string) bool { return s.seenFP(fingerprint(key)) }

// SeenBatch implements BatchStore: keys are grouped by stripe and each
// stripe lock is taken once per batch, mirroring ShardedStore.SeenBatch.
// Within a stripe, keys commit in index order, so an intra-batch
// duplicate reports false exactly at its first occurrence.
func (s *SpillStore) SeenBatch(keys []string) []bool {
	n := len(keys)
	if n == 0 {
		return nil
	}
	if n == 1 {
		return []bool{s.Seen(keys[0])}
	}
	dups := make([]bool, n)
	fps := make([][16]byte, n)
	done := make([]bool, n)
	for i, k := range keys {
		fps[i] = fingerprint(k)
	}
	var added int64
	for i := 0; i < n; i++ {
		if done[i] {
			continue
		}
		stripe := fps[i][15]
		sh := &s.shards[stripe]
		sh.mu.Lock()
		for j := i; j < n; j++ {
			if done[j] || fps[j][15] != stripe {
				continue
			}
			done[j] = true
			fp := fps[j]
			if _, dup := sh.m[fp]; dup {
				dups[j] = true
				continue
			}
			if s.onDisk(fp) {
				dups[j] = true
				continue
			}
			if sh.m == nil {
				sh.m = make(map[[16]byte]struct{})
			}
			sh.m[fp] = struct{}{}
			added++
		}
		sh.mu.Unlock()
	}
	if added > 0 {
		s.count.Add(added)
		if s.hotCount.Add(added) >= s.budgetEntries {
			s.maybeSpill()
		}
	}
	return dups
}

// Has implements HasStore: a non-mutating membership probe over both
// tiers, linearizable per key like Seen.
func (s *SpillStore) Has(key string) bool {
	fp := fingerprint(key)
	sh := &s.shards[fp[15]]
	sh.mu.Lock()
	defer sh.mu.Unlock()
	if _, ok := sh.m[fp]; ok {
		return true
	}
	return s.onDisk(fp)
}

// Len implements Store.
func (s *SpillStore) Len() int { return int(s.count.Load()) }

// ConcurrencySafe implements ConcurrentStore.
func (s *SpillStore) ConcurrencySafe() {}

// SpillStats implements SpillReporter: run files written (merges
// included), bytes written to disk, and probes that consulted the disk
// tier.
func (s *SpillStore) SpillStats() (runs int, spilledBytes, diskProbes int64) {
	return int(s.runsWritten.Load()), s.spillBytes.Load(), s.diskProbes.Load()
}

// maybeSpill flushes the hot tier if it is (still) over budget. TryLock:
// if another goroutine is already spilling, the budget is transiently
// exceeded by at most that spill's backlog and this caller moves on.
func (s *SpillStore) maybeSpill() {
	if !s.spillMu.TryLock() {
		return
	}
	defer s.spillMu.Unlock()
	if s.closed || s.hotCount.Load() < s.budgetEntries {
		return
	}
	if err := s.spillLocked(); err != nil {
		s.recordProbeErr(err)
	}
}

// spillLocked flushes every hot fingerprint to a new sorted run. Order
// matters for correctness: collect (copy, stripe by stripe) → write and
// register the run → only then delete the collected entries from the hot
// tier, so no fingerprint is ever absent from both tiers.
func (s *SpillStore) spillLocked() error {
	var all [][16]byte
	var spans [shardCount][2]int
	for i := range s.shards {
		sh := &s.shards[i]
		sh.mu.Lock()
		start := len(all)
		for fp := range sh.m {
			all = append(all, fp)
		}
		sh.mu.Unlock()
		spans[i] = [2]int{start, len(all)}
	}
	if len(all) == 0 {
		return nil
	}
	sorted := make([][16]byte, len(all))
	copy(sorted, all)
	slices.SortFunc(sorted, func(a, b [16]byte) int { return bytes.Compare(a[:], b[:]) })

	run, err := s.writeRunLocked(sorted)
	if err != nil {
		return err
	}
	old := *s.runs.Load()
	next := make([]*spillRun, len(old), len(old)+1)
	copy(next, old)
	next = append(next, run)
	s.runs.Store(&next)

	// The run is visible to probes; now the flushed entries can leave the
	// hot tier. Entries inserted after the per-stripe collection above
	// stay (they are not in the run).
	for i := range s.shards {
		lo, hi := spans[i][0], spans[i][1]
		if lo == hi {
			continue
		}
		sh := &s.shards[i]
		sh.mu.Lock()
		for _, fp := range all[lo:hi] {
			delete(sh.m, fp)
		}
		sh.mu.Unlock()
	}
	s.hotCount.Add(int64(-len(all)))

	if len(next) >= s.mergeRuns {
		return s.mergeLocked(next)
	}
	return nil
}

// writeRunLocked writes sorted fingerprints as a new run file and returns
// the registered-ready run.
func (s *SpillStore) writeRunLocked(sorted [][16]byte) (*spillRun, error) {
	s.nextRunID++
	path := filepath.Join(s.dir, fmt.Sprintf("run-%06d.fp", s.nextRunID))
	f, err := os.OpenFile(path, os.O_RDWR|os.O_CREATE|os.O_EXCL, 0o644)
	if err != nil {
		return nil, fmt.Errorf("explore: spill run: %w", err)
	}
	w := bufio.NewWriter(f)
	bloom := newSpillBloom(len(sorted))
	for _, fp := range sorted {
		if _, err := w.Write(fp[:]); err != nil {
			f.Close()
			return nil, fmt.Errorf("explore: spill run %s: %w", path, err)
		}
		bloom.add(fp)
	}
	if err := w.Flush(); err != nil {
		f.Close()
		return nil, fmt.Errorf("explore: spill run %s: %w", path, err)
	}
	s.runsWritten.Add(1)
	s.spillBytes.Add(int64(len(sorted)) * 16)
	return &spillRun{
		f:     f,
		path:  path,
		n:     len(sorted),
		bloom: bloom,
		first: sorted[0],
		last:  sorted[len(sorted)-1],
	}, nil
}

// mergeLocked compacts runs into a single sorted run via a k-way merge of
// the (pairwise disjoint) run files, swaps it in, and releases the old
// files. Every probe consults the disk tier under its stripe lock, so
// after the swap a lock/unlock sweep of all stripes is a quiescence
// barrier: probes that loaded the old runs slice have finished, new ones
// see the merged run, and the superseded files can be closed immediately
// — open file descriptors track live runs, not total runs written.
func (s *SpillStore) mergeLocked(runs []*spillRun) error {
	total := 0
	readers := make([]*bufio.Reader, len(runs))
	heads := make([][16]byte, len(runs))
	alive := make([]bool, len(runs))
	for i, r := range runs {
		total += r.n
		if _, err := r.f.Seek(0, 0); err != nil {
			return fmt.Errorf("explore: spill merge: %w", err)
		}
		readers[i] = bufio.NewReaderSize(r.f, 1<<16)
		alive[i] = readNext(readers[i], &heads[i])
	}
	sorted := make([][16]byte, 0, total)
	for {
		best := -1
		for i := range runs {
			if alive[i] && (best < 0 || bytes.Compare(heads[i][:], heads[best][:]) < 0) {
				best = i
			}
		}
		if best < 0 {
			break
		}
		if n := len(sorted); n == 0 || sorted[n-1] != heads[best] {
			sorted = append(sorted, heads[best])
		}
		alive[best] = readNext(readers[best], &heads[best])
	}
	merged, err := s.writeRunLocked(sorted)
	if err != nil {
		return err
	}
	next := []*spillRun{merged}
	s.runs.Store(&next)
	for i := range s.shards {
		// Empty critical section on purpose: in-flight probes of the old
		// runs slice hold their stripe lock, so acquiring each once
		// drains them all.
		s.shards[i].mu.Lock()
		s.shards[i].mu.Unlock()
	}
	var firstErr error
	for _, r := range runs {
		if err := r.f.Close(); err != nil && firstErr == nil {
			firstErr = err
		}
		os.Remove(r.path)
	}
	return firstErr
}

func readNext(r *bufio.Reader, fp *[16]byte) bool {
	_, err := io.ReadFull(r, fp[:])
	return err == nil
}

// Close releases every run file and removes the files this store created
// (and its directory, when the store made a temporary one). It must not
// race with probes; call it once the search owning the store has
// returned. The store must not be used afterwards.
func (s *SpillStore) Close() error {
	s.spillMu.Lock()
	defer s.spillMu.Unlock()
	if s.closed {
		return nil
	}
	s.closed = true
	var firstErr error
	empty := []*spillRun{}
	runs := *s.runs.Swap(&empty)
	for _, r := range runs {
		if err := r.f.Close(); err != nil && firstErr == nil {
			firstErr = err
		}
		if err := os.Remove(r.path); err != nil && firstErr == nil && !os.IsNotExist(err) {
			firstErr = err
		}
	}
	if s.ownDir {
		if err := os.RemoveAll(s.dir); err != nil && firstErr == nil {
			firstErr = err
		}
	}
	return firstErr
}

var (
	_ BatchStore      = (*SpillStore)(nil)
	_ HasStore        = (*SpillStore)(nil)
	_ ConcurrentStore = (*SpillStore)(nil)
	_ SpillReporter   = (*SpillStore)(nil)
	_ FailableStore   = (*SpillStore)(nil)
)
