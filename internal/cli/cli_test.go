package cli

import (
	"strings"
	"testing"

	"mpbasset/internal/refine"
)

func TestParseInts(t *testing.T) {
	got, err := ParseInts(" 2, 3 ,1", 3, "x")
	if err != nil || got[0] != 2 || got[1] != 3 || got[2] != 1 {
		t.Fatalf("ParseInts = %v, %v", got, err)
	}
	if _, err := ParseInts("2,3", 3, "x"); err == nil {
		t.Error("wrong arity accepted")
	}
	if _, err := ParseInts("2,a,1", 3, "x"); err == nil {
		t.Error("non-numeric accepted")
	}
}

func TestBuildProtocolDefaults(t *testing.T) {
	cases := []struct {
		protocol string
		wantName string
		wantN    int
	}{
		{"paxos", "Paxos(2,3,1)/quorum", 6},
		{"faulty-paxos", "FaultyPaxos(2,3,1)/quorum", 6},
		{"multicast", "EchoMulticast(3,0,1,1)/quorum", 5},
		{"storage", "RegularStorage(3,1)/quorum", 5},
	}
	for _, tc := range cases {
		p, roles, err := BuildProtocol(tc.protocol, "", "", false)
		if err != nil {
			t.Fatalf("%s: %v", tc.protocol, err)
		}
		if p.Name != tc.wantName {
			t.Errorf("%s: name %q, want %q", tc.protocol, p.Name, tc.wantName)
		}
		if p.N != tc.wantN {
			t.Errorf("%s: N = %d, want %d", tc.protocol, p.N, tc.wantN)
		}
		if len(roles) == 0 {
			t.Errorf("%s: no symmetry roles", tc.protocol)
		}
	}
}

func TestBuildProtocolVariants(t *testing.T) {
	p, _, err := BuildProtocol("paxos", "1,5,2", "single", false)
	if err != nil {
		t.Fatal(err)
	}
	if !strings.Contains(p.Name, "(1,5,2)/single") {
		t.Errorf("name = %q", p.Name)
	}
	w, _, err := BuildProtocol("storage", "3,2", "quorum", true)
	if err != nil {
		t.Fatal(err)
	}
	if !strings.Contains(w.Name, "WrongRegularity") {
		t.Errorf("wrong-spec name = %q", w.Name)
	}
}

func TestBuildProtocolErrors(t *testing.T) {
	if _, _, err := BuildProtocol("nope", "", "", false); err == nil {
		t.Error("unknown protocol accepted")
	}
	if _, _, err := BuildProtocol("paxos", "1,2", "", false); err == nil {
		t.Error("wrong setting arity accepted")
	}
	if _, _, err := BuildProtocol("paxos", "2,3,1", "weird", false); err == nil {
		t.Error("unknown model accepted")
	}
	if _, _, err := BuildProtocol("multicast", "0,0,0,0", "", false); err == nil {
		t.Error("empty multicast accepted")
	}
}

func TestValidateParallelFlags(t *testing.T) {
	cases := []struct {
		name       string
		search     string
		workers    int
		chunk      int
		batch      int
		stealDepth int
		wantErr    string // substring; empty means accepted
	}{
		// -workers selects the engine matching the search family.
		{"sequential defaults", "spor", 0, 0, 0, 0, ""},
		{"workers with spor", "spor", 8, 0, 0, 0, ""},
		{"workers with unreduced", "unreduced", 2, 0, 0, 0, ""},
		{"workers with dfs alias", "dfs", 4, 0, 0, 0, ""},
		{"workers with bfs", "bfs", 4, 0, 0, 0, ""},
		{"workers with dpor", "dpor", 1, 0, 0, 0, ""},
		{"many workers with dpor", "dpor", 8, 0, 0, 0, ""},
		{"workers with stateless", "stateless", 4, 0, 0, 0, "-workers requires a search with a parallel engine"},
		// -chunk/-batch keep their original rule (they need -workers) and
		// tune the BFS frontier scheduler only.
		{"workers with bfs knobs", "bfs", 4, 16, 128, 0, ""},
		{"chunk without workers", "spor", 0, 16, 0, 0, "-chunk requires -workers"},
		{"batch without workers", "spor", 0, 0, 64, 0, "-batch requires -workers"},
		{"both knobs without workers", "bfs", 0, 8, 8, 0, "-chunk requires -workers"},
		{"chunk with parallel dfs", "spor", 4, 16, 0, 0, "-chunk tunes the parallel BFS frontier scheduler"},
		{"batch with parallel dfs", "dfs", 4, 0, 64, 0, "-batch tunes the parallel BFS insert batching"},
		{"chunk with parallel dpor", "dpor", 4, 16, 0, 0, "runs parallel DPOR (tune -steal-depth instead)"},
		{"batch with parallel dpor", "dpor", 4, 0, 64, 0, "runs parallel DPOR (tune -steal-depth instead)"},
		// -steal-depth mirrors them for the DFS and dpor searches.
		{"steal-depth with spor", "spor", 4, 0, 0, 8, ""},
		{"steal-depth with dfs alias", "dfs", 8, 0, 0, 3, ""},
		{"steal-depth with unreduced", "unreduced", 2, 0, 0, 64, ""},
		{"steal-depth with dpor", "dpor", 4, 0, 0, 8, ""},
		{"steal-depth without workers", "spor", 0, 0, 0, 8, "-steal-depth requires -workers"},
		{"steal-depth with parallel bfs", "bfs", 4, 0, 0, 8, "-steal-depth tunes parallel DFS/DPOR subtree speculation"},
	}
	for _, tc := range cases {
		err := ValidateParallelFlags(tc.search, tc.workers, tc.chunk, tc.batch, tc.stealDepth)
		if tc.wantErr == "" {
			if err != nil {
				t.Errorf("%s: unexpected error: %v", tc.name, err)
			}
			continue
		}
		if err == nil || !strings.Contains(err.Error(), tc.wantErr) {
			t.Errorf("%s: error %v, want substring %q", tc.name, err, tc.wantErr)
		}
	}
}

func TestParseBytes(t *testing.T) {
	cases := []struct {
		in   string
		want int64
		err  bool
	}{
		{"", 0, false},
		{"0", 0, false},
		{"4096", 4096, false},
		{" 4096 ", 4096, false},
		{"512B", 512, false},
		{"1K", 1 << 10, false},
		{"1k", 1 << 10, false},
		{"64M", 64 << 20, false},
		{"64MB", 64 << 20, false},
		{"64MiB", 64 << 20, false},
		{"2G", 2 << 30, false},
		{"1T", 1 << 40, false},
		{"1.5K", 1536, false},
		{"1.5G", 3 << 29, false},
		{".5K", 512, false},
		{"1.", 1, false},
		// Integer byte counts are exact — no float64 round-trip. 2^53+1 is
		// the first integer float64 cannot represent; the old parser
		// silently rounded it to 2^53.
		{"9007199254740993", 9007199254740993, false},
		{"9007199254740993B", 9007199254740993, false},
		{"4611686018427387903", 4611686018427387903, false}, // 2^62 - 1: the cap itself
		{"4611686018427387904", 0, true},                    // 2^62: past the cap
		{"8796093022207K", (int64(1)<<43 - 1) << 10, false}, // exact near the cap with a suffix
		{"-1", 0, true},
		{"-1K", 0, true},
		{"x", 0, true},
		{"Kx", 0, true},
		{"12Q", 0, true},
		{"NaN", 0, true},
		{"Inf", 0, true},
		{"1e30", 0, true},
		// Exotic float syntax strconv would happily accept is rejected:
		// scientific notation (with or without a suffix), hex floats,
		// digit-separating underscores, explicit signs and doubled points.
		{"1e3", 0, true},
		{"1e3M", 0, true},
		{"1E3", 0, true},
		{"0x1p10", 0, true},
		{"0X1P10", 0, true},
		{"1_000", 0, true},
		{"1_0.5K", 0, true},
		{"+5", 0, true},
		{"1.2.3", 0, true},
		{".", 0, true},
		{".K", 0, true},
	}
	for _, tc := range cases {
		got, err := ParseBytes(tc.in)
		if tc.err {
			if err == nil {
				t.Errorf("ParseBytes(%q) = %d, want error", tc.in, got)
			}
			continue
		}
		if err != nil || got != tc.want {
			t.Errorf("ParseBytes(%q) = %d, %v; want %d", tc.in, got, err, tc.want)
		}
	}
}

func TestValidateSpillFlags(t *testing.T) {
	cases := []struct {
		name    string
		search  string
		budget  int64
		dir     string
		wantErr string // substring; empty means accepted
	}{
		{"no spill flags", "spor", 0, "", ""},
		{"budget with spor", "spor", 1 << 20, "", ""},
		{"budget with unreduced", "unreduced", 1 << 20, "", ""},
		{"budget with dfs alias", "dfs", 1 << 20, "", ""},
		{"budget with bfs", "bfs", 1 << 20, "", ""},
		{"budget and dir", "bfs", 1 << 20, "/tmp/spill", ""},
		{"budget with stateless", "stateless", 1 << 20, "", "-mem-budget requires a stateful search"},
		{"budget with dpor", "dpor", 1 << 20, "", "-mem-budget requires a stateful search"},
		{"dir without budget", "spor", 0, "/tmp/spill", "-spill-dir requires -mem-budget"},
	}
	for _, tc := range cases {
		err := ValidateSpillFlags(tc.search, tc.budget, tc.dir)
		if tc.wantErr == "" {
			if err != nil {
				t.Errorf("%s: unexpected error: %v", tc.name, err)
			}
			continue
		}
		if err == nil || !strings.Contains(err.Error(), tc.wantErr) {
			t.Errorf("%s: error %v, want substring %q", tc.name, err, tc.wantErr)
		}
	}
}

func TestParseSplit(t *testing.T) {
	want := map[string]refine.Strategy{
		"":         refine.None,
		"none":     refine.None,
		"reply":    refine.Reply,
		"quorum":   refine.Quorum,
		"combined": refine.Combined,
	}
	for in, w := range want {
		got, err := ParseSplit(in)
		if err != nil || got != w {
			t.Errorf("ParseSplit(%q) = %v, %v; want %v", in, got, err, w)
		}
	}
	if _, err := ParseSplit("bogus"); err == nil {
		t.Error("bogus split accepted")
	}
}

func TestValidateLivenessFlags(t *testing.T) {
	cases := []struct {
		name     string
		search   string
		property string
		fair     bool
		wantErr  string // substring; empty means accepted
	}{
		{"no liveness flags", "spor", "", false, ""},
		{"property with spor", "spor", "decided", false, ""},
		{"property with unreduced", "unreduced", "decided", false, ""},
		{"property with dfs alias", "dfs", "decided", false, ""},
		{"property and fair", "spor", "decided", true, ""},
		{"property with bfs", "bfs", "decided", false, "-property requires a nested-DFS search"},
		{"property with stateless", "stateless", "decided", false, "-property requires a nested-DFS search"},
		{"property with dpor", "dpor", "decided", false, "-property requires a nested-DFS search"},
		{"fair without property", "spor", "", true, "-fair requires -property"},
		{"fair with bfs property", "bfs", "decided", true, "-property requires a nested-DFS search"},
	}
	for _, tc := range cases {
		err := ValidateLivenessFlags(tc.search, tc.property, tc.fair)
		if tc.wantErr == "" {
			if err != nil {
				t.Errorf("%s: unexpected error: %v", tc.name, err)
			}
			continue
		}
		if err == nil || !strings.Contains(err.Error(), tc.wantErr) {
			t.Errorf("%s: error %v, want substring %q", tc.name, err, tc.wantErr)
		}
	}
}

func TestBuildProperty(t *testing.T) {
	cases := []struct {
		name     string
		protocol string
		setting  string
		model    string
		property string
		fair     bool
		wantName string
		wantErr  string
	}{
		{"paxos decided", "paxos", "", "", "decided", false, "some learner decides", ""},
		{"faulty-paxos decided", "faulty-paxos", "2,3,1", "", "decided", false, "some learner decides", ""},
		{"paxos decided single", "paxos", "2,3,1", "single", "decided", false, "some learner decides", ""},
		{"paxos decided fair", "paxos", "", "", "decided", true, "some learner decides", ""},
		{"multicast delivered", "multicast", "3,0,1,1", "", "delivered", false, "honest receivers deliver", ""},
		{"multicast default setting", "multicast", "", "", "delivered", false, "honest receivers deliver", ""},
		{"storage reads-complete", "storage", "3,1", "", "reads-complete", false, "every read completes", ""},
		{"paxos wrong name", "paxos", "", "", "delivered", false, "", `unknown property "delivered"`},
		{"storage wrong name", "storage", "", "", "decided", false, "", `unknown property "decided"`},
		{"unknown protocol", "raft", "", "", "decided", false, "", "unknown protocol"},
		{"bad setting", "paxos", "2,3", "", "decided", false, "", "want 3 comma-separated numbers"},
	}
	for _, tc := range cases {
		prop, err := BuildProperty(tc.protocol, tc.setting, tc.model, tc.property, tc.fair)
		if tc.wantErr != "" {
			if err == nil || !strings.Contains(err.Error(), tc.wantErr) {
				t.Errorf("%s: error %v, want substring %q", tc.name, err, tc.wantErr)
			}
			continue
		}
		if err != nil {
			t.Errorf("%s: unexpected error: %v", tc.name, err)
			continue
		}
		if prop.Name != tc.wantName {
			t.Errorf("%s: property name %q, want %q", tc.name, prop.Name, tc.wantName)
		}
		if prop.WeakFair != tc.fair {
			t.Errorf("%s: WeakFair %v, want %v", tc.name, prop.WeakFair, tc.fair)
		}
		if prop.Accept == nil || len(prop.Reads) == 0 {
			t.Errorf("%s: property missing Accept or Reads", tc.name)
		}
	}
}

// TestBuildPropertyMatchesProtocol checks that the built property's Reads
// processes exist in the protocol built from the same arguments and that
// its Accept predicate evaluates on that protocol's states.
func TestBuildPropertyMatchesProtocol(t *testing.T) {
	for _, tc := range []struct {
		protocol, setting, property string
	}{
		{"paxos", "2,3,1", "decided"},
		{"faulty-paxos", "2,3,1", "decided"},
		// An honest initiator, so the delivery goal is not vacuously met.
		{"multicast", "2,1,1,1", "delivered"},
		{"storage", "3,1", "reads-complete"},
	} {
		p, _, err := BuildProtocol(tc.protocol, tc.setting, "", false)
		if err != nil {
			t.Fatal(err)
		}
		prop, err := BuildProperty(tc.protocol, tc.setting, "", tc.property, false)
		if err != nil {
			t.Fatal(err)
		}
		for _, q := range prop.Reads {
			if int(q) < 0 || int(q) >= p.N {
				t.Errorf("%s: property reads process %d, protocol has %d", tc.protocol, q, p.N)
			}
		}
		s, err := p.InitialState()
		if err != nil {
			t.Fatal(err)
		}
		if prop.Accept(s) != true {
			t.Errorf("%s: initial state should be accepting (goal unmet at start)", tc.protocol)
		}
	}
}
