// Package cli holds the testable core of the command-line tools: parsing
// protocol settings, byte-size and duration flags, and instantiating the
// bundled protocol models for cmd/mpcheck and cmd/mpbench.
//
// The package sits outside the determinism contract — it runs before any
// engine does — but it guards the contract's boundary: the Validate*
// functions mirror the mpbasset facade's option rejections flag for flag,
// so an unsound combination (DPOR with a visited store, a liveness
// property on a lossy bitstate store, symmetry canonicalization stacked
// on collapse compression) is refused with the same reasoning whether the
// request arrives through the Go API or a command line. See the store/
// engine matrix in package explore's doc for which combinations exist and
// why the excluded ones are excluded.
package cli
