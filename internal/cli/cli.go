package cli

import (
	"fmt"
	"math"
	"strconv"
	"strings"

	"mpbasset/internal/core"
	"mpbasset/internal/liveness"
	"mpbasset/internal/protocols/multicast"
	"mpbasset/internal/protocols/paxos"
	"mpbasset/internal/protocols/storage"
	"mpbasset/internal/refine"
)

// ParseInts parses a comma-separated setting like "2,3,1".
func ParseInts(s string, want int, what string) ([]int, error) {
	parts := strings.Split(s, ",")
	if len(parts) != want {
		return nil, fmt.Errorf("setting %q: want %d comma-separated numbers (%s)", s, want, what)
	}
	out := make([]int, len(parts))
	for i, p := range parts {
		v, err := strconv.Atoi(strings.TrimSpace(p))
		if err != nil {
			return nil, fmt.Errorf("setting %q: %v", s, err)
		}
		out[i] = v
	}
	return out, nil
}

// BuildProtocol instantiates a bundled protocol from CLI-style arguments.
// It returns the protocol plus its symmetry roles. Supported protocols:
// "paxos", "faulty-paxos", "multicast", "storage"; model is "quorum"
// (default) or "single"; wrong selects the deliberately wrong storage
// specification. An empty setting selects the paper's default instance.
func BuildProtocol(protocol, setting, model string, wrong bool) (*core.Protocol, [][]core.ProcessID, error) {
	single := model == "single"
	if model != "" && model != "quorum" && !single {
		return nil, nil, fmt.Errorf("unknown model %q (want quorum or single)", model)
	}
	switch protocol {
	case "paxos", "faulty-paxos":
		if setting == "" {
			setting = "2,3,1"
		}
		v, err := ParseInts(setting, 3, "proposers,acceptors,learners")
		if err != nil {
			return nil, nil, err
		}
		cfg := paxos.Config{Proposers: v[0], Acceptors: v[1], Learners: v[2], Faulty: protocol == "faulty-paxos"}
		if single {
			cfg.Model = paxos.ModelSingle
		}
		p, err := paxos.New(cfg)
		return p, cfg.Roles(), err
	case "multicast":
		if setting == "" {
			setting = "3,0,1,1"
		}
		v, err := ParseInts(setting, 4, "honest receivers,honest initiators,byzantine receivers,byzantine initiators")
		if err != nil {
			return nil, nil, err
		}
		cfg := multicast.Config{HonestReceivers: v[0], HonestInitiators: v[1], ByzantineReceivers: v[2], ByzantineInitiators: v[3]}
		if single {
			cfg.Model = multicast.ModelSingle
		}
		p, err := multicast.New(cfg)
		return p, cfg.Roles(), err
	case "storage":
		if setting == "" {
			setting = "3,1"
		}
		v, err := ParseInts(setting, 2, "objects,readers")
		if err != nil {
			return nil, nil, err
		}
		cfg := storage.Config{Objects: v[0], Readers: v[1], WrongRegularity: wrong}
		if single {
			cfg.Model = storage.ModelSingle
		}
		p, err := storage.New(cfg)
		return p, cfg.Roles(), err
	default:
		return nil, nil, fmt.Errorf("unknown protocol %q (want paxos, faulty-paxos, multicast or storage)", protocol)
	}
}

// dfsSearch reports whether the CLI search name selects a DFS-based
// stateful search ("dfs" is the CLI alias for "unreduced").
func dfsSearch(search string) bool {
	switch search {
	case "spor", "unreduced", "dfs":
		return true
	}
	return false
}

// stealEngine names the speculative engine a search's -workers selects,
// for the error messages of ValidateParallelFlags.
func stealEngine(search string) string {
	if search == "dpor" {
		return "parallel DPOR"
	}
	return "parallel DFS"
}

// ValidateParallelFlags checks the parallel-search flag combinations the
// CLIs accept: -workers requires a search with a parallel engine — the DFS
// searches (spor, unreduced and its dfs alias) run the speculative
// parallel DFS engine, bfs the frontier-parallel BFS engine, and dpor the
// speculative parallel DPOR engine. Only the stateless search has no
// parallel counterpart. The tuning knobs are engine-specific and rejected
// elsewhere instead of silently ignored: -chunk/-batch tune the BFS
// frontier scheduler (they keep their original rule of requiring -workers,
// and additionally need the bfs search), while -steal-depth tunes subtree
// speculation and needs -workers with a DFS or dpor search.
func ValidateParallelFlags(search string, workers, chunk, batch, stealDepth int) error {
	if workers > 0 {
		if !dfsSearch(search) && search != "bfs" && search != "dpor" {
			return fmt.Errorf("-workers requires a search with a parallel engine (spor, unreduced, dfs, bfs or dpor), not %q", search)
		}
	} else {
		if chunk != 0 {
			return fmt.Errorf("-chunk requires -workers (it tunes the parallel BFS scheduler's claim size)")
		}
		if batch != 0 {
			return fmt.Errorf("-batch requires -workers (it tunes the parallel BFS visited-set insert batching)")
		}
		if stealDepth != 0 {
			return fmt.Errorf("-steal-depth requires -workers (it tunes parallel DFS/DPOR subtree speculation)")
		}
		return nil
	}
	if chunk != 0 && search != "bfs" {
		return fmt.Errorf("-chunk tunes the parallel BFS frontier scheduler; the %q search runs %s (tune -steal-depth instead)", search, stealEngine(search))
	}
	if batch != 0 && search != "bfs" {
		return fmt.Errorf("-batch tunes the parallel BFS insert batching; the %q search runs %s (tune -steal-depth instead)", search, stealEngine(search))
	}
	if stealDepth != 0 && !dfsSearch(search) && search != "dpor" {
		return fmt.Errorf("-steal-depth tunes parallel DFS/DPOR subtree speculation; the %q search runs parallel BFS (tune -chunk/-batch instead)", search)
	}
	return nil
}

// decimalDigits reports whether s consists of ASCII decimal digits only
// (vacuously true for the empty string).
func decimalDigits(s string) bool {
	for i := 0; i < len(s); i++ {
		if s[i] < '0' || s[i] > '9' {
			return false
		}
	}
	return true
}

// ParseBytes parses a human-readable byte size like "64M", "1.5GiB" or
// "4096": a non-negative plain decimal number — digits with at most one
// decimal point — with an optional binary-multiple suffix K/M/G/T (the
// B/iB spellings are accepted and equivalent — multiples are always
// 1024-based). An empty string is 0.
//
// Integer sizes are parsed exactly, with no float64 round-trip: byte
// counts above 2^53 (e.g. "9007199254740993") keep every digit. Only a
// genuine fraction ("1.5G") goes through floating point, and then only for
// its sub-unit part, so the error stays below one suffix unit. Scientific
// ("1e3"), hexadecimal ("0x1p10") and other exotic number syntax is
// rejected — a size flag that survives parsing should mean what it says.
func ParseBytes(s string) (int64, error) {
	t := strings.TrimSpace(s)
	if t == "" {
		return 0, nil
	}
	upper := strings.ToUpper(t)
	mult := int64(1)
	for _, suf := range []struct {
		text string
		mult int64
	}{
		{"KIB", 1 << 10}, {"KB", 1 << 10}, {"K", 1 << 10},
		{"MIB", 1 << 20}, {"MB", 1 << 20}, {"M", 1 << 20},
		{"GIB", 1 << 30}, {"GB", 1 << 30}, {"G", 1 << 30},
		{"TIB", 1 << 40}, {"TB", 1 << 40}, {"T", 1 << 40},
		{"B", 1},
	} {
		if strings.HasSuffix(upper, suf.text) {
			mult = suf.mult
			upper = strings.TrimSpace(strings.TrimSuffix(upper, suf.text))
			break
		}
	}
	if strings.HasPrefix(upper, "-") {
		return 0, fmt.Errorf("byte size %q: must not be negative", s)
	}
	intPart, fracPart, _ := strings.Cut(upper, ".")
	if !decimalDigits(intPart) || !decimalDigits(fracPart) || intPart+fracPart == "" {
		return 0, fmt.Errorf("byte size %q: want a plain decimal number with an optional K/M/G/T suffix (scientific and hex notation are not accepted)", s)
	}
	const limit = int64(1) << 62
	var bytes int64
	if intPart != "" {
		v, err := strconv.ParseInt(intPart, 10, 64)
		if err != nil || v > (limit-1)/mult {
			return 0, fmt.Errorf("byte size %q: too large", s)
		}
		bytes = v * mult
	}
	if fracPart != "" {
		// The fraction is strictly below one unit of the multiplier, so the
		// float64 detour cannot touch the exact integer part.
		f, err := strconv.ParseFloat("0."+fracPart, 64)
		if err != nil || math.IsNaN(f) {
			return 0, fmt.Errorf("byte size %q: want a plain decimal number with an optional K/M/G/T suffix (scientific and hex notation are not accepted)", s)
		}
		bytes += int64(f * float64(mult))
	}
	if bytes >= limit {
		return 0, fmt.Errorf("byte size %q: too large", s)
	}
	return bytes, nil
}

// ValidateSpillFlags checks the spill-store flag combinations the CLIs
// accept: -mem-budget requires a stateful search (stateless and DPOR
// searches keep no visited set to spill), and -spill-dir is meaningless
// without -mem-budget — passing it alone is rejected instead of silently
// ignored, mirroring ValidateParallelFlags.
func ValidateSpillFlags(search string, budgetBytes int64, spillDir string) error {
	if budgetBytes > 0 {
		if dfsSearch(search) || search == "bfs" {
			return nil
		}
		return fmt.Errorf("-mem-budget requires a stateful search (spor, unreduced, dfs or bfs), not %q", search)
	}
	if spillDir != "" {
		return fmt.Errorf("-spill-dir requires -mem-budget (the spill directory is meaningless without a memory budget)")
	}
	return nil
}

// ValidateLossyFlags checks the lossy-store flag combinations the CLIs
// accept: -lossy requires a stateful search (stateless and DPOR searches
// keep no visited set, and DPOR's soundness argument assumes exactness
// anyway), excludes -property (nested-DFS cycle detection needs an exact
// visited set), excludes -mem-budget (the bitstate store never grows — its
// size is -bitstate-bytes), and -bitstate-bytes is meaningless without
// -lossy. Mirrors ValidateSpillFlags.
func ValidateLossyFlags(search string, lossy bool, bitstateBytes, budgetBytes int64, property string) error {
	if !lossy {
		if bitstateBytes != 0 {
			return fmt.Errorf("-bitstate-bytes requires -lossy (it sizes the lossy bitstate store's bit array)")
		}
		return nil
	}
	if !dfsSearch(search) && search != "bfs" {
		return fmt.Errorf("-lossy requires a stateful search (spor, unreduced, dfs or bfs), not %q", search)
	}
	if property != "" {
		return fmt.Errorf("-lossy is incompatible with -property: nested-DFS cycle detection needs an exact visited set")
	}
	if budgetBytes > 0 {
		return fmt.Errorf("-lossy is incompatible with -mem-budget: the bitstate store never grows, size it with -bitstate-bytes instead")
	}
	return nil
}

// ValidateCompressFlags checks the collapse-compression flag combinations
// the CLIs accept: -compress requires a stateful search (stateless and
// DPOR searches keep no visited set to compress) and excludes -symmetry
// (symmetry reduction installs its own canonicalizer, and a run gets
// exactly one).
func ValidateCompressFlags(search string, compress, symmetry bool) error {
	if !compress {
		return nil
	}
	if !dfsSearch(search) && search != "bfs" {
		return fmt.Errorf("-compress requires a stateful search (spor, unreduced, dfs or bfs), not %q", search)
	}
	if symmetry {
		return fmt.Errorf("-compress is incompatible with -symmetry: symmetry reduction installs its own canonicalizer")
	}
	return nil
}

// ValidateLivenessFlags checks the liveness flag combinations the CLIs
// accept: -property selects the nested-DFS liveness engines, which exist
// only for the DFS searches (spor, unreduced and its dfs alias) — bfs,
// stateless and dpor have no Büchi cycle detection and are rejected
// instead of silently checking the wrong thing — and -fair is a property
// modifier, meaningless without -property. Mirrors ValidateParallelFlags.
func ValidateLivenessFlags(search, property string, fair bool) error {
	if property == "" {
		if fair {
			return fmt.Errorf("-fair requires -property (it restricts that property's counterexamples to weakly fair schedules)")
		}
		return nil
	}
	if !dfsSearch(search) {
		return fmt.Errorf("-property requires a nested-DFS search (spor, unreduced or dfs), not %q: liveness checking needs the stack-based cycle detection those searches run on", search)
	}
	return nil
}

// BuildProperty instantiates a bundled liveness property for a bundled
// protocol from CLI-style arguments. protocol, setting and model must be
// the same values BuildProtocol was called with, so the property's process
// IDs match the checked instance. Supported property names: "decided"
// (paxos, faulty-paxos), "delivered" (multicast), "reads-complete"
// (storage). fair restricts counterexamples to weakly fair schedules.
func BuildProperty(protocol, setting, model, property string, fair bool) (*liveness.Property, error) {
	single := model == "single"
	var (
		prop *liveness.Property
		want string
	)
	switch protocol {
	case "paxos", "faulty-paxos":
		want = "decided"
		if property == want {
			if setting == "" {
				setting = "2,3,1"
			}
			v, err := ParseInts(setting, 3, "proposers,acceptors,learners")
			if err != nil {
				return nil, err
			}
			cfg := paxos.Config{Proposers: v[0], Acceptors: v[1], Learners: v[2], Faulty: protocol == "faulty-paxos"}
			if single {
				cfg.Model = paxos.ModelSingle
			}
			prop = paxos.Decides(cfg)
		}
	case "multicast":
		want = "delivered"
		if property == want {
			if setting == "" {
				setting = "3,0,1,1"
			}
			v, err := ParseInts(setting, 4, "honest receivers,honest initiators,byzantine receivers,byzantine initiators")
			if err != nil {
				return nil, err
			}
			cfg := multicast.Config{HonestReceivers: v[0], HonestInitiators: v[1], ByzantineReceivers: v[2], ByzantineInitiators: v[3]}
			if single {
				cfg.Model = multicast.ModelSingle
			}
			prop = multicast.Delivers(cfg)
		}
	case "storage":
		want = "reads-complete"
		if property == want {
			if setting == "" {
				setting = "3,1"
			}
			v, err := ParseInts(setting, 2, "objects,readers")
			if err != nil {
				return nil, err
			}
			cfg := storage.Config{Objects: v[0], Readers: v[1]}
			if single {
				cfg.Model = storage.ModelSingle
			}
			prop = storage.ReadsComplete(cfg)
		}
	default:
		return nil, fmt.Errorf("unknown protocol %q (want paxos, faulty-paxos, multicast or storage)", protocol)
	}
	if prop == nil {
		return nil, fmt.Errorf("unknown property %q for protocol %s (want %q)", property, protocol, want)
	}
	prop.WeakFair = fair
	return prop, nil
}

// ParseSplit maps a CLI split name to a refinement strategy.
func ParseSplit(s string) (refine.Strategy, error) {
	switch s {
	case "", "none":
		return refine.None, nil
	case "reply":
		return refine.Reply, nil
	case "quorum":
		return refine.Quorum, nil
	case "combined":
		return refine.Combined, nil
	default:
		return 0, fmt.Errorf("unknown split %q (want none, reply, quorum or combined)", s)
	}
}
