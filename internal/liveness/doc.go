// Package liveness defines Büchi-style liveness properties over protocol
// states and the machinery the checkers share: the weak-fairness monitor
// (a deterministic "copies" automaton in the style of Choueka's flag
// construction, as used by Spin's weak-fairness mode), the product-state
// key encoding, and a slow-but-obviously-correct reference oracle
// (explicit Büchi-product BFS plus Tarjan SCC cycle detection) that the
// nested-DFS engines of package explore are differentially tested against.
//
// A property is an acceptance predicate over states: a counterexample is a
// reachable lasso — a finite stem followed by a cycle — whose cycle passes
// through an accepting state (and, when WeakFair is set, is weakly fair:
// every process continuously enabled along the cycle executes on it).
// Deadlocked states are given an implicit stutter self-loop, so finite
// maximal runs count as lassos too: a run that halts in an accepting state
// violates the property, which is how "some value is eventually decided"
// catches executions that get stuck undecided.
//
// The paper's target properties for fault-tolerant protocols ("some value
// is eventually decided", "every request is eventually answered") are of
// the form eventually-goal; Eventually builds them by negation: the
// accepting predicate marks states where the goal has not been reached
// yet, so an accepting cycle is exactly an execution that defers the goal
// forever.
//
// The package is under the determinism contract: monitors and key
// encodings are pure functions of the state, so NDFS and ParallelNDFS
// report bit-identical lassos for any worker count. In the store matrix,
// liveness runs demand exact visited sets on both the blue and red
// searches — the facade rejects the lossy bitstate tier for properties,
// since a hash collision could hide the accepting cycle itself.
package liveness
