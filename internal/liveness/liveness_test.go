package liveness_test

import (
	"testing"

	"mpbasset/internal/core"
	"mpbasset/internal/liveness"
	"mpbasset/internal/mptest"
)

// TestNextMonitor pins the weak-fairness copies automaton transition by
// transition: copy 0 waits for an accepting state, monitor copies advance
// past a process exactly when it executed or is disabled, and clearing the
// last copy wraps to 0.
func TestNextMonitor(t *testing.T) {
	fair := &liveness.Property{WeakFair: true}
	allEnabled := func(int) bool { return true }
	noneEnabled := func(int) bool { return false }
	only := func(q int) func(int) bool { return func(i int) bool { return i == q } }
	cases := []struct {
		name      string
		prop      *liveness.Property
		copy, n   int
		accepting bool
		evProc    int
		enabled   func(int) bool
		want      int
	}{
		{"nil-property", nil, 2, 3, true, 0, allEnabled, 0},
		{"unfair-property", &liveness.Property{}, 2, 3, true, 0, allEnabled, 0},
		{"copy0-not-accepting", fair, 0, 3, false, 1, allEnabled, 0},
		{"copy0-accepting-enters-monitor", fair, 0, 3, true, 2, allEnabled, 1},
		{"copy0-accepting-clears-proc0", fair, 0, 3, true, 0, allEnabled, 2},
		{"copy1-waits-for-proc0", fair, 1, 3, false, 2, allEnabled, 1},
		{"copy1-proc0-executes", fair, 1, 3, false, 0, allEnabled, 2},
		{"copy1-proc0-disabled", fair, 1, 3, false, 2, func(i int) bool { return i != 0 }, 2},
		{"copy2-chain-clears-to-wrap", fair, 2, 3, false, 1, only(1), 0},
		{"last-copy-clears-wraps", fair, 3, 3, false, 2, allEnabled, 0},
		{"stutter-clears-everything", fair, 1, 3, false, -1, noneEnabled, 0},
		{"stutter-from-accepting-copy0", fair, 0, 3, true, -1, noneEnabled, 0},
	}
	for _, tc := range cases {
		if got := tc.prop.Next(tc.copy, tc.n, tc.accepting, tc.evProc, tc.enabled); got != tc.want {
			t.Errorf("%s: Next(%d) = %d, want %d", tc.name, tc.copy, got, tc.want)
		}
	}
}

func TestCopies(t *testing.T) {
	var nilProp *liveness.Property
	if got := nilProp.Copies(5); got != 1 {
		t.Errorf("nil property: Copies = %d, want 1", got)
	}
	if got := (&liveness.Property{}).Copies(5); got != 1 {
		t.Errorf("unfair property: Copies = %d, want 1", got)
	}
	if got := (&liveness.Property{WeakFair: true}).Copies(5); got != 6 {
		t.Errorf("fair property: Copies = %d, want 6", got)
	}
}

// TestProductKey checks the copy-0 identity (so safety stores and liveness
// stores share an address space) and that distinct copies of the same
// state never collide.
func TestProductKey(t *testing.T) {
	if got := liveness.ProductKey("abc", 0); got != "abc" {
		t.Errorf("copy 0: %q, want bare key", got)
	}
	seen := map[string]int{}
	for copy := 0; copy <= 4; copy++ {
		k := liveness.ProductKey("abc", copy)
		if prev, dup := seen[k]; dup {
			t.Errorf("copies %d and %d collide on %q", prev, copy, k)
		}
		seen[k] = copy
	}
	if a, b := liveness.ProductKey("abc", 12), liveness.ProductKey("abc1", 2); a == b {
		t.Errorf("key/copy framing ambiguous: %q", a)
	}
}

func TestEnabledProcs(t *testing.T) {
	p, _, err := mptest.LivenessTrap(3)
	if err != nil {
		t.Fatal(err)
	}
	s, err := p.InitialState()
	if err != nil {
		t.Fatal(err)
	}
	mask := liveness.EnabledProcs(p.N, p.Enabled(s))
	if len(mask) != p.N {
		t.Fatalf("mask length %d, want %d", len(mask), p.N)
	}
	var any bool
	for q, on := range mask {
		enabledForQ := false
		for _, ev := range p.Enabled(s) {
			if int(ev.T.Proc) == q {
				enabledForQ = true
			}
		}
		if on != enabledForQ {
			t.Errorf("process %d: mask %v, enabled events say %v", q, on, enabledForQ)
		}
		any = any || on
	}
	if !any {
		t.Error("initial state of the trap has no enabled process")
	}
}

// TestEventuallyNegates checks that Eventually accepts exactly the states
// where the goal has not been reached.
func TestEventuallyNegates(t *testing.T) {
	p, _, err := mptest.LivenessTrap(2)
	if err != nil {
		t.Fatal(err)
	}
	s, err := p.InitialState()
	if err != nil {
		t.Fatal(err)
	}
	prop := liveness.Eventually("rounds reach 1", []core.ProcessID{0}, func(s *core.State) bool {
		return s.Local(0).(*mptest.Local).Rounds >= 1
	})
	if prop.Name != "rounds reach 1" {
		t.Errorf("name %q", prop.Name)
	}
	if !prop.Accept(s) {
		t.Error("initial state (goal unmet) should be accepting")
	}
	if len(prop.Reads) != 1 || prop.Reads[0] != 0 {
		t.Errorf("reads %v, want [0]", prop.Reads)
	}
}

// TestInstrument checks the visibility marking: every non-ReadOnly
// transition of a read process becomes visible in the instrumented copy,
// other transitions keep their marks, and the input protocol is not
// mutated.
func TestInstrument(t *testing.T) {
	p, prop, err := mptest.LivenessTrap(4)
	if err != nil {
		t.Fatal(err)
	}
	before := make([]bool, len(p.Transitions))
	for i, tr := range p.Transitions {
		before[i] = tr.Visible
	}
	ip, err := liveness.Instrument(p, prop)
	if err != nil {
		t.Fatal(err)
	}
	if ip == p {
		t.Fatal("Instrument returned the input protocol for a property with reads")
	}
	for i, tr := range p.Transitions {
		if tr.Visible != before[i] {
			t.Fatalf("Instrument mutated the input protocol (transition %d)", i)
		}
	}
	reads := map[core.ProcessID]bool{}
	for _, q := range prop.Reads {
		reads[q] = true
	}
	for i, tr := range ip.Transitions {
		want := p.Transitions[i].Visible || (reads[tr.Proc] && !tr.ReadOnly)
		if tr.Visible != want {
			t.Errorf("transition %d (proc %d, readonly %v): visible %v, want %v",
				i, tr.Proc, tr.ReadOnly, tr.Visible, want)
		}
	}
	// A property that reads nothing leaves the protocol untouched.
	same, err := liveness.Instrument(p, &liveness.Property{Accept: func(*core.State) bool { return false }})
	if err != nil {
		t.Fatal(err)
	}
	if same != p {
		t.Error("Instrument cloned the protocol for a read-free property")
	}
	same, err = liveness.Instrument(p, nil)
	if err != nil || same != p {
		t.Errorf("Instrument(nil property) = %v, %v; want input protocol", same, err)
	}
}

// TestOracle pins the reference checker on models whose ground truth is
// known by construction: the liveness trap's accepting ring cycle, the
// fairness flip on the inverted property, and the state-bound limit.
func TestOracle(t *testing.T) {
	p, prop, err := mptest.LivenessTrap(3)
	if err != nil {
		t.Fatal(err)
	}
	res, err := liveness.Oracle(p, prop, 0)
	if err != nil {
		t.Fatal(err)
	}
	if !res.Violated || res.Limited {
		t.Errorf("trap: violated=%v limited=%v, want a violation", res.Violated, res.Limited)
	}
	if res.AcceptingStates == 0 || res.AcceptingStates > res.States {
		t.Errorf("trap: %d accepting of %d states", res.AcceptingStates, res.States)
	}

	progress := func(fair bool) *liveness.Property {
		pr := liveness.Eventually("progresses", []core.ProcessID{0}, func(s *core.State) bool {
			return s.Local(0).(*mptest.Local).Rounds >= 1
		})
		pr.WeakFair = fair
		return pr
	}
	unfair, err := liveness.Oracle(p, progress(false), 0)
	if err != nil {
		t.Fatal(err)
	}
	if !unfair.Violated {
		t.Error("inverted property without fairness: want the unfair rounds-0 loop as a violation")
	}
	fair, err := liveness.Oracle(p, progress(true), 0)
	if err != nil {
		t.Fatal(err)
	}
	if fair.Violated {
		t.Error("inverted property under weak fairness: the rounds-0 loop is unfair, want verified")
	}
	if fair.States <= unfair.States {
		t.Errorf("fair product has %d states, unfair %d: copies should enlarge the product", fair.States, unfair.States)
	}

	lim, err := liveness.Oracle(p, prop, 2)
	if err != nil {
		t.Fatal(err)
	}
	if !lim.Limited {
		t.Errorf("maxStates=2: limited=%v states=%d, want limited", lim.Limited, lim.States)
	}
}

// TestOracleRejectsNilProperty pins the error path.
func TestOracleRejectsNilProperty(t *testing.T) {
	p, _, err := mptest.LivenessTrap(2)
	if err != nil {
		t.Fatal(err)
	}
	if _, err := liveness.Oracle(p, nil, 0); err == nil {
		t.Error("Oracle with nil property: want error")
	}
	if _, err := liveness.Oracle(p, &liveness.Property{}, 0); err == nil {
		t.Error("Oracle with nil Accept: want error")
	}
}
