package liveness

import (
	"fmt"
	"strconv"

	"mpbasset/internal/core"
)

// Property is a Büchi acceptance condition over protocol states. The
// property HOLDS iff no reachable (fair, when WeakFair is set) cycle —
// including the implicit stutter self-loop of deadlocked states — passes
// through a state where Accept is true.
type Property struct {
	// Name labels the property in results and CLI output.
	Name string
	// Accept marks the "bad" states: a reachable (fair) cycle through an
	// accepting state is a counterexample. Must be a pure function of the
	// state, safe for concurrent use.
	Accept func(*core.State) bool
	// WeakFair restricts counterexamples to weakly fair cycles: a cycle on
	// which some process is enabled in every state yet never executes is
	// not a counterexample. Checking a fair property disables partial-order
	// reduction (see Instrument and explore.NDFS): the fairness monitor
	// observes every transition, so no transition is invisible in the
	// product and the ample-set condition C2 admits no reduction.
	WeakFair bool
	// Reads lists the processes whose local state Accept reads. Instrument
	// marks their state-changing transitions property-visible so the
	// ample-set condition C2 keeps static POR sound for this property.
	Reads []core.ProcessID
}

// Eventually builds the property "the goal predicate eventually becomes
// true (and for cyclic goals: is true infinitely often)": the accepting
// states are exactly the states where goal is false, so a counterexample
// is an execution that avoids the goal forever. For stable (monotone)
// goals such as "some learner has decided" this is exactly the paper's
// eventually-property. reads must list the processes goal inspects.
func Eventually(name string, reads []core.ProcessID, goal func(*core.State) bool) *Property {
	return &Property{
		Name:   name,
		Accept: func(s *core.State) bool { return !goal(s) },
		Reads:  reads,
	}
}

// Instrument returns a copy of the protocol whose transitions are marked
// visible wherever they may change the property's valuation: every
// non-ReadOnly transition of a process in prop.Reads. The ample-set
// condition C2 (a reduced expansion must contain no property-visible
// transition) then keeps static POR sound for liveness checking. The
// returned protocol is finalized; the input is never mutated. When the
// property reads no process state the protocol is returned unchanged.
func Instrument(p *core.Protocol, prop *Property) (*core.Protocol, error) {
	if prop == nil || len(prop.Reads) == 0 {
		return p, nil
	}
	reads := make(map[core.ProcessID]bool, len(prop.Reads))
	for _, q := range prop.Reads {
		reads[q] = true
	}
	np := p.Clone()
	for _, t := range np.Transitions {
		if reads[t.Proc] && !t.ReadOnly {
			t.Visible = true
		}
	}
	if err := np.Finalize(); err != nil {
		return nil, fmt.Errorf("liveness: instrumenting %s for property %q: %w", p.Name, prop.Name, err)
	}
	return np, nil
}

// Copies returns the number of fairness-monitor copies the property's
// product automaton uses for a protocol with n processes: 1 (just the
// protocol graph) without fairness, n+1 with weak fairness (copy 0 plus
// one monitor copy per process).
func (prop *Property) Copies(n int) int {
	if prop == nil || !prop.WeakFair {
		return 1
	}
	return n + 1
}

// Next is the transition function of the weak-fairness monitor, the
// deterministic copies construction Spin uses for its weak-fairness mode:
// product states carry a copy index in [0, n]; an accepting cycle of the
// product must visit copy 0 through an accepting protocol state, and to
// return to copy 0 it must pass copies 1..n in order, where copy i only
// advances past process i when the executed event belongs to process i-1
// or process i-1 is disabled in the source state. A cycle of the product
// through an accepting copy-0 state is therefore exactly a weakly fair
// accepting cycle of the protocol.
//
// copy is the source product state's copy index, accepting reports whether
// the source protocol state is accepting, evProc is the executing process
// (-1 for the stutter step of a deadlocked state, where every process is
// disabled), and enabled reports whether a given process has some enabled
// event in the source state. Without fairness Next is identically 0.
func (prop *Property) Next(copy int, n int, accepting bool, evProc int, enabled func(int) bool) int {
	if prop == nil || !prop.WeakFair {
		return 0
	}
	if copy == 0 {
		if !accepting {
			return 0
		}
		copy = 1
	}
	// Advance past every process that just executed or is disabled; the
	// chain may clear several processes on one step.
	for copy <= n && (evProc == copy-1 || !enabled(copy-1)) {
		copy++
	}
	if copy > n {
		return 0
	}
	return copy
}

// EnabledProcs builds the per-process enabledness mask of a state from its
// enabled-event set (as computed by core.(*Protocol).Enabled).
func EnabledProcs(n int, enabled []core.Event) []bool {
	mask := make([]bool, n)
	for _, ev := range enabled {
		mask[ev.T.Proc] = true
	}
	return mask
}

// ProductKey encodes a Büchi-product state (protocol state × monitor copy)
// as a store key. Copy 0 keeps the bare state key, so without fairness the
// product keys equal the protocol keys; monitor copies append a NUL-framed
// suffix no protocol state key can contain.
func ProductKey(stateKey string, copy int) string {
	if copy == 0 {
		return stateKey
	}
	return stateKey + "\x00c" + strconv.Itoa(copy)
}
