package liveness

import (
	"fmt"

	"mpbasset/internal/core"
)

// OracleResult is the outcome of the reference check.
type OracleResult struct {
	// Violated reports that a reachable (fair) accepting cycle exists.
	Violated bool
	// Limited reports that the product exceeded maxStates before the
	// verdict was established; Violated is then meaningless.
	Limited bool
	// States is the number of distinct product states built.
	States int
	// AcceptingStates is the number of accepting product states.
	AcceptingStates int
}

// oNode is one explicit product state of the oracle's graph.
type oNode struct {
	succs     []int32
	accepting bool
}

// Oracle is the slow reference liveness checker the nested-DFS engines are
// differentially tested against: it builds the full (unreduced) Büchi
// product — protocol states times fairness-monitor copies, with stutter
// self-loops on deadlocked states — as an explicit graph via BFS, then
// runs Tarjan's SCC algorithm and reports a violation iff some accepting
// product state lies on a cycle, i.e. belongs to a nontrivial SCC (two or
// more states, or a single state with a self-loop). It shares nothing with
// package explore beyond core, so its verdicts are an independent check on
// the NDFS engines, their stores, and their reductions.
//
// maxStates bounds the number of product states built; 0 means unlimited.
// A bounded-out run reports Limited and no verdict.
func Oracle(p *core.Protocol, prop *Property, maxStates int) (*OracleResult, error) {
	if prop == nil || prop.Accept == nil {
		return nil, fmt.Errorf("liveness: Oracle requires a property with an Accept predicate")
	}
	init, err := p.InitialState()
	if err != nil {
		return nil, err
	}
	var (
		res    OracleResult
		n      = p.N
		ids    = make(map[string]int32)
		nodes  []oNode
		states []*core.State
		copies []int
		queue  []int32
	)
	intern := func(s *core.State, copy int) int32 {
		key := ProductKey(s.Key(), copy)
		if id, ok := ids[key]; ok {
			return id
		}
		id := int32(len(nodes))
		ids[key] = id
		nodes = append(nodes, oNode{accepting: copy == 0 && prop.Accept(s)})
		states = append(states, s)
		copies = append(copies, copy)
		queue = append(queue, id)
		return id
	}
	intern(init, 0)
	for len(queue) > 0 {
		if maxStates > 0 && len(nodes) > maxStates {
			res.Limited = true
			res.States = len(nodes)
			return &res, nil
		}
		id := queue[0]
		queue = queue[1:]
		s, copy := states[id], copies[id]
		accepting := nodes[id].accepting
		enabled := p.Enabled(s)
		if len(enabled) == 0 {
			// Stutter extension: a deadlocked state loops on itself so a
			// finite maximal run counts as a lasso.
			ncopy := prop.Next(copy, n, accepting, -1, func(int) bool { return false })
			nodes[id].succs = append(nodes[id].succs, intern(s, ncopy))
			continue
		}
		var mask []bool
		if prop.WeakFair {
			mask = EnabledProcs(n, enabled)
		}
		enabledProc := func(q int) bool { return mask[q] }
		for _, ev := range enabled {
			ns, err := p.Execute(s, ev)
			if err != nil {
				return nil, err
			}
			ncopy := prop.Next(copy, n, accepting, int(ev.T.Proc), enabledProc)
			nodes[id].succs = append(nodes[id].succs, intern(ns, ncopy))
		}
	}
	res.States = len(nodes)
	for i := range nodes {
		if nodes[i].accepting {
			res.AcceptingStates++
		}
	}
	res.Violated = hasAcceptingCycle(nodes)
	return &res, nil
}

// hasAcceptingCycle runs an iterative Tarjan SCC decomposition and reports
// whether some accepting node lies on a cycle: its SCC has two or more
// members, or it carries a self-loop.
func hasAcceptingCycle(nodes []oNode) bool {
	const unvisited = -1
	var (
		index   = int32(0)
		indices = make([]int32, len(nodes))
		lowlink = make([]int32, len(nodes))
		onStack = make([]bool, len(nodes))
		stack   []int32
	)
	for i := range indices {
		indices[i] = unvisited
	}
	type frame struct {
		v    int32
		next int
	}
	var call []frame
	for root := range nodes {
		if indices[root] != unvisited {
			continue
		}
		call = append(call[:0], frame{v: int32(root)})
		indices[root] = index
		lowlink[root] = index
		index++
		stack = append(stack, int32(root))
		onStack[root] = true
		for len(call) > 0 {
			f := &call[len(call)-1]
			if f.next < len(nodes[f.v].succs) {
				w := nodes[f.v].succs[f.next]
				f.next++
				if indices[w] == unvisited {
					indices[w] = index
					lowlink[w] = index
					index++
					stack = append(stack, w)
					onStack[w] = true
					call = append(call, frame{v: w})
				} else if onStack[w] && indices[w] < lowlink[f.v] {
					lowlink[f.v] = indices[w]
				}
				continue
			}
			v := f.v
			call = call[:len(call)-1]
			if len(call) > 0 {
				parent := call[len(call)-1].v
				if lowlink[v] < lowlink[parent] {
					lowlink[parent] = lowlink[v]
				}
			}
			if lowlink[v] != indices[v] {
				continue
			}
			// v roots an SCC: pop it and test for an accepting cycle.
			var members []int32
			for {
				w := stack[len(stack)-1]
				stack = stack[:len(stack)-1]
				onStack[w] = false
				members = append(members, w)
				if w == v {
					break
				}
			}
			nontrivial := len(members) > 1
			accepting := false
			for _, w := range members {
				if nodes[w].accepting {
					accepting = true
				}
				if !nontrivial {
					for _, u := range nodes[w].succs {
						if u == w {
							nontrivial = true
							break
						}
					}
				}
			}
			if nontrivial && accepting {
				return true
			}
		}
	}
	return false
}
