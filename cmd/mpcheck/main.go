// Command mpcheck model checks one of the bundled fault-tolerant protocols
// under a chosen search strategy — the CLI face of the library.
//
// Usage examples:
//
//	mpcheck -protocol paxos -setting 2,3,1 -search spor
//	mpcheck -protocol faulty-paxos -setting 2,3,1 -trace
//	mpcheck -protocol multicast -setting 2,1,2,1 -trace -trace-dot attack.dot
//	mpcheck -protocol storage -setting 3,2 -wrong -search unreduced
//	mpcheck -protocol paxos -setting 2,3,1 -model single -search dpor
//
// Exit status: 0 verified, 2 counterexample found, 1 error.
package main

import (
	"flag"
	"fmt"
	"os"
	"time"

	"mpbasset/internal/cli"
	"mpbasset/internal/core"
	"mpbasset/internal/dpor"
	"mpbasset/internal/explore"
	"mpbasset/internal/liveness"
	"mpbasset/internal/por"
	"mpbasset/internal/refine"
	"mpbasset/internal/symmetry"
)

func main() {
	if err := run(os.Args[1:]); err != nil {
		fmt.Fprintln(os.Stderr, "mpcheck:", err)
		os.Exit(1)
	}
}

func run(args []string) error {
	fs := flag.NewFlagSet("mpcheck", flag.ContinueOnError)
	var (
		protocol = fs.String("protocol", "paxos", "protocol: paxos | faulty-paxos | multicast | storage")
		setting  = fs.String("setting", "", "process counts, e.g. 2,3,1 (paxos P,A,L), 3,0,1,1 (multicast HR,HI,BR,BI), 3,1 (storage B,R)")
		model    = fs.String("model", "quorum", "modeling style: quorum | single")
		split    = fs.String("split", "none", "transition refinement: none | reply | quorum | combined")
		search   = fs.String("search", "spor", "search: spor | unreduced (alias: dfs) | bfs | stateless | dpor")
		wrong    = fs.Bool("wrong", false, "check the deliberately wrong storage specification")
		sym      = fs.Bool("symmetry", false, "enable role-based symmetry reduction")
		trace    = fs.Bool("trace", false, "print the annotated counterexample trace, if any")
		budget   = fs.Duration("budget", 5*time.Minute, "wall-clock limit")
		maxSt    = fs.Int("max-states", 0, "state limit (0 = unlimited)")
		workers  = fs.Int("workers", 0, "parallelize the search with this many workers: spor/unreduced/dfs run speculative parallel DFS, bfs runs frontier-parallel BFS, dpor runs speculative parallel DPOR (0 = sequential)")
		chunk    = fs.Int("chunk", 0, "frontier nodes a parallel BFS worker claims per grab (0 = adaptive; needs -workers with -search bfs)")
		batch    = fs.Int("batch", 0, "successor keys a parallel BFS worker buffers per batched visited-set insert (0 = default 64; needs -workers with -search bfs)")
		stealD   = fs.Int("steal-depth", 0, "events a parallel DFS/DPOR worker speculates below a stolen sibling or backtrack point before stealing afresh (0 = default 8; needs -workers with a DFS or dpor search)")
		property = fs.String("property", "", "check this liveness property instead of the safety invariant: decided (paxos, faulty-paxos) | delivered (multicast) | reads-complete (storage); runs nested DFS, so it needs a DFS search (spor, unreduced, dfs)")
		fair     = fs.Bool("fair", false, "restrict liveness counterexamples to weakly fair schedules (needs -property; forces full expansion — the fairness monitor observes every transition)")
		memB     = fs.String("mem-budget", "", "visited-set memory budget, e.g. 512M or 2G: past it, fingerprints spill to sorted runs on disk (empty = in-memory only; spor, unreduced and bfs searches)")
		spillDir = fs.String("spill-dir", "", "directory for spill run files (default: a temporary directory; needs -mem-budget)")
		compress = fs.Bool("compress", false, "collapse compression: intern per-process and message-bag components in a shared table so stored state keys shrink to component IDs (stateful searches; verdicts and stats identical to uncompressed)")
		lossy    = fs.Bool("lossy", false, "EXPLICITLY LOSSY bitstate store: k hash probes over a fixed bit array instead of an exact visited set — coverage sweeps past exact-store limits; a 'Verified' is a coverage claim, not a verdict (stateful searches, safety only)")
		bitsB    = fs.String("bitstate-bytes", "", "bit-array size for -lossy, e.g. 64M or 1G (empty = 64M default; needs -lossy)")
		dotOut   = fs.String("dot", "", "write the full state graph (small models!) as Graphviz DOT to this file")
		traceDot = fs.String("trace-dot", "", "write the counterexample trace as Graphviz DOT to this file")
	)
	if err := fs.Parse(args); err != nil {
		return err
	}
	if err := cli.ValidateParallelFlags(*search, *workers, *chunk, *batch, *stealD); err != nil {
		return err
	}
	memBudget, err := cli.ParseBytes(*memB)
	if err != nil {
		return err
	}
	if err := cli.ValidateSpillFlags(*search, memBudget, *spillDir); err != nil {
		return err
	}
	if err := cli.ValidateLivenessFlags(*search, *property, *fair); err != nil {
		return err
	}
	bitstateBytes, err := cli.ParseBytes(*bitsB)
	if err != nil {
		return err
	}
	if err := cli.ValidateLossyFlags(*search, *lossy, bitstateBytes, memBudget, *property); err != nil {
		return err
	}
	if err := cli.ValidateCompressFlags(*search, *compress, *sym); err != nil {
		return err
	}

	p, roles, err := cli.BuildProtocol(*protocol, *setting, *model, *wrong)
	if err != nil {
		return err
	}
	strat, err := cli.ParseSplit(*split)
	if err != nil {
		return err
	}
	if strat != refine.None {
		if p, err = refine.Split(p, strat); err != nil {
			return err
		}
	}
	var prop *liveness.Property
	if *property != "" {
		if prop, err = cli.BuildProperty(*protocol, *setting, *model, *property, *fair); err != nil {
			return err
		}
		// Instrument before the expander is built, so the property-visible
		// marks constrain the reduction (ample-set condition C2).
		if p, err = liveness.Instrument(p, prop); err != nil {
			return err
		}
	}

	opts := explore.Options{
		MaxDuration: *budget,
		MaxStates:   *maxSt,
		Store:       explore.NewHashStore(),
		TrackTrace:  *trace || *traceDot != "",
		Workers:     *workers,
		ChunkSize:   *chunk,
		BatchSize:   *batch,
		StealDepth:  *stealD,
	}
	var coll *explore.Collapser
	if *compress {
		coll = explore.NewCollapser()
		opts.Canon = coll.Canon
	}
	var spill *explore.SpillStore
	switch {
	case *lossy:
		// Concurrency-safe, so it serves the sequential and parallel
		// engines alike. ValidateLossyFlags already rejected -mem-budget.
		opts.Store = explore.NewBitstateStore(bitstateBytes, 0)
	case memBudget > 0:
		// The spill store is concurrency-safe, so it serves the
		// sequential and parallel engines alike.
		spill, err = explore.NewSpillStore(explore.SpillConfig{BudgetBytes: memBudget, Dir: *spillDir})
		if err != nil {
			return err
		}
		// The deferred close covers the error returns below; the explicit
		// close before the exit paths at the bottom covers os.Exit(2).
		// Close is idempotent, so both may run.
		//lint:closeerr-ok idempotent backstop: the explicit Close on the main path below routes the error into err
		defer spill.Close()
		opts.Store = spill
	case *workers > 0:
		opts.Store = explore.NewShardedHashStore()
	}
	if *sym {
		canon, err := symmetry.New(p.N, roles)
		if err != nil {
			return err
		}
		opts.Canon = canon.Canon
		fmt.Printf("symmetry group: %d permutations\n", canon.NumPermutations())
	}

	// Each search pairs with the parallel engine that reproduces it
	// bit-identically: the DFS searches with the speculative ParallelDFS,
	// bfs with the frontier-parallel ParallelBFS, dpor with the
	// speculative ExploreParallel.
	// ValidateParallelFlags already rejected -workers on other searches.
	var engine func(*core.Protocol, explore.Options) (*explore.Result, error)
	parallelEngine := "speculative parallel DFS"
	opts.Property = prop
	dfsEngine := func() {
		engine = explore.DFS
		if prop != nil {
			engine = explore.NDFS
			parallelEngine = "speculative parallel NDFS"
		}
		if *workers > 0 {
			engine = explore.ParallelDFS
			if prop != nil {
				engine = explore.ParallelNDFS
			}
		}
	}
	switch *search {
	case "spor":
		exp, err := por.NewExpander(p)
		if err != nil {
			return err
		}
		opts.Expander = exp
		dfsEngine()
	case "unreduced", "dfs":
		dfsEngine()
	case "bfs":
		engine = explore.BFS
		if *workers > 0 {
			engine = explore.ParallelBFS
			parallelEngine = "frontier-parallel BFS"
		}
	case "stateless":
		engine = explore.StatelessDFS
	case "dpor":
		engine = dpor.Explore
		if *workers > 0 {
			engine = dpor.ExploreParallel
			parallelEngine = "speculative parallel DPOR"
		}
	default:
		return fmt.Errorf("unknown search %q", *search)
	}

	fmt.Printf("checking %s [%s, %s]\n", p.Name, *search, strat)
	if prop != nil {
		kind := "liveness property"
		if prop.WeakFair {
			kind = "liveness property under weak fairness"
		}
		fmt.Printf("property:  %q (%s)\n", prop.Name, kind)
	}
	if *workers > 0 {
		fmt.Printf("workers:   %d (%s)\n", *workers, parallelEngine)
	}
	if memBudget > 0 {
		fmt.Printf("mem-budget: %d bytes (visited set spills to disk past it)\n", memBudget)
	}
	if *compress {
		fmt.Println("compress:  collapse compression on (stored keys are interned component IDs)")
	}
	if *lossy {
		fmt.Println("lossy:     bitstate store — 'Verified' is a coverage claim, not a verdict")
	}
	if *dotOut != "" {
		if err := writeGraphDOT(p, *dotOut); err != nil {
			return err
		}
	}
	res, err := engine(p, opts)
	// Close before the exit paths below: the spill store owns run files
	// and possibly a temporary directory, and run() exits the process on
	// a violation.
	if spill != nil {
		if cerr := spill.Close(); err == nil {
			err = cerr
		}
	}
	if err != nil {
		return err
	}
	// Compressed trace keys are run-internal intern-table IDs; decompress
	// them so the trace renderer, -trace-dot and any downstream replay see
	// full canonical state keys.
	if coll != nil {
		if err := coll.ExpandTrace(res.Trace); err != nil {
			return err
		}
	}
	report(res)
	if *trace && len(res.Trace) > 0 {
		if res.CycleLen > 0 {
			fmt.Printf("counterexample (lasso; the final %d steps form the accepting cycle):\n", res.CycleLen)
		} else if res.Stutter {
			fmt.Println("counterexample (lasso; the final state deadlocks while accepting):")
		} else {
			fmt.Println("counterexample:")
		}
		if err := explore.RenderTrace(os.Stdout, p, res.Trace); err != nil {
			return err
		}
	}
	if *traceDot != "" && len(res.Trace) > 0 {
		if err := writeTraceDOT(p, res.Trace, *traceDot); err != nil {
			return err
		}
	}
	if res.Verdict == explore.VerdictViolated {
		os.Exit(2)
	}
	return nil
}

func report(res *explore.Result) {
	st := res.Stats
	fmt.Printf("verdict:   %s\n", res.Verdict)
	if res.Violation != nil {
		fmt.Printf("violation: %v\n", res.Violation)
	}
	if res.Stutter {
		fmt.Printf("lasso:     %d-step stem to a deadlocked accepting state (stutter cycle)\n", len(res.Trace))
	} else if res.CycleLen > 0 {
		fmt.Printf("lasso:     %d-step stem + %d-step accepting cycle\n", len(res.Trace)-res.CycleLen, res.CycleLen)
	}
	fmt.Printf("states:    %d (%d revisits)\n", st.States, st.Revisits)
	fmt.Printf("events:    %d\n", st.Events)
	if st.RedStates > 0 {
		fmt.Printf("red:       %d product states visited by the nested searches\n", st.RedStates)
	}
	fmt.Printf("deadlocks: %d\n", st.Deadlocks)
	fmt.Printf("depth:     %d\n", st.MaxDepth)
	fmt.Printf("time:      %s\n", st.Duration.Round(time.Millisecond))
	if st.ReducedExpansions+st.FullExpansions > 0 {
		fmt.Printf("expansions: %d reduced / %d full", st.ReducedExpansions, st.FullExpansions)
		if st.ProvisoExpansions > 0 {
			fmt.Printf(" (%d promoted by the ignoring proviso)", st.ProvisoExpansions)
		}
		fmt.Println()
	}
	if st.SpillRuns > 0 || st.DiskProbes > 0 {
		fmt.Printf("spill:     %d runs, %d bytes written, %d disk probes\n",
			st.SpillRuns, st.SpillBytes, st.DiskProbes)
	}
	if st.BitstateFill > 0 {
		fmt.Printf("bitstate:  %.4f fill, ~%.2e omission probability (state count is a coverage claim, not a census)\n",
			st.BitstateFill, st.BitstateOmission)
	}
}

func writeGraphDOT(p *core.Protocol, path string) error {
	g, err := explore.BuildGraph(p, 200000)
	if err != nil {
		return fmt.Errorf("state graph for -dot: %w", err)
	}
	f, err := os.Create(path)
	if err != nil {
		return err
	}
	if err := g.WriteDOT(f); err != nil {
		f.Close()
		return err
	}
	if err := f.Close(); err != nil {
		return err
	}
	fmt.Printf("state graph (%d states, %d edges) written to %s\n", len(g.Nodes), g.NumEdges(), path)
	return nil
}

func writeTraceDOT(p *core.Protocol, trace []explore.Step, path string) error {
	init, err := p.InitialState()
	if err != nil {
		return err
	}
	f, err := os.Create(path)
	if err != nil {
		return err
	}
	if err := explore.WriteTraceDOT(f, init.Key(), trace); err != nil {
		f.Close()
		return err
	}
	if err := f.Close(); err != nil {
		return err
	}
	fmt.Printf("trace written to %s\n", path)
	return nil
}
