// Command mpbench regenerates the paper's evaluation tables: Table I
// (quorum semantics) and Table II (transition refinement), plus the
// state-space analysis of §II-C.
//
//	mpbench -table 1
//	mpbench -table 2 -budget 2m
//	mpbench -table 2 -paper          # includes Echo Multicast (3,1,1,1)
//	mpbench -analysis
package main

import (
	"flag"
	"fmt"
	"os"
	"time"

	"mpbasset/internal/cli"
	"mpbasset/internal/eval"
)

func main() {
	var (
		table    = flag.Int("table", 0, "table to regenerate: 1 or 2 (0 = both)")
		budget   = flag.Duration("budget", time.Minute, "wall-clock limit per cell (the paper's 48h-timeout analogue)")
		paper    = flag.Bool("paper", false, "run paper-scale workloads (adds Echo Multicast (3,1,1,1); doubles Paxos ballots)")
		analysis = flag.Bool("analysis", false, "print the paper's §II-C/§IV-A state-space analysis")
		verify   = flag.Bool("verify", true, "fail if any verdict deviates from the paper's")
		jsonOut  = flag.Bool("json", false, "emit machine-readable JSON instead of the table layout")
		workers  = flag.Int("workers", 0, "run the stateful cells with this many frontier-parallel BFS workers (0 = sequential DFS)")
		chunk    = flag.Int("chunk", 0, "frontier nodes a parallel worker claims per grab (0 = adaptive; needs -workers)")
		batch    = flag.Int("batch", 0, "successor keys a parallel worker buffers per batched visited-set insert (0 = default 64; needs -workers)")
		memB     = flag.String("mem-budget", "", "visited-set memory budget per cell, e.g. 512M: past it, fingerprints spill to sorted runs on disk (empty = in-memory only)")
		spillDir = flag.String("spill-dir", "", "directory for spill run files (default: a temporary directory per cell; needs -mem-budget)")
	)
	flag.Parse()

	fail := func(err error) {
		fmt.Fprintln(os.Stderr, "mpbench:", err)
		os.Exit(1)
	}
	if *analysis {
		// The §II-C analysis runs no search; engine flags are irrelevant.
		eval.PrintAnalysis(os.Stdout)
		return
	}
	// mpbench's stateful cells run SPOR; reuse the shared flag validation
	// so -chunk/-batch without -workers (or -spill-dir without
	// -mem-budget) is rejected, not silently ignored.
	if err := cli.ValidateParallelFlags("spor", *workers, *chunk, *batch); err != nil {
		fail(err)
	}
	memBudget, err := cli.ParseBytes(*memB)
	if err != nil {
		fail(err)
	}
	if err := cli.ValidateSpillFlags("spor", memBudget, *spillDir); err != nil {
		fail(err)
	}
	opts := eval.Options{
		Budget: *budget, Paper: *paper,
		Workers: *workers, ChunkSize: *chunk, BatchSize: *batch,
		StoreBudgetBytes: memBudget, SpillDir: *spillDir,
	}
	emit := func(title string, rows []eval.Row) {
		if *jsonOut {
			if err := eval.WriteJSON(os.Stdout, title, rows); err != nil {
				fail(err)
			}
			return
		}
		eval.FormatRows(os.Stdout, title, rows)
	}
	if *table == 0 || *table == 1 {
		rows, err := eval.Table1(opts)
		if err != nil {
			fail(err)
		}
		emit("Table I — quorum semantics (cf. paper Table I)", rows)
		if *verify {
			if err := eval.Verify(rows); err != nil {
				fail(err)
			}
		}
		fmt.Println()
	}
	if *table == 0 || *table == 2 {
		rows, err := eval.Table2(opts)
		if err != nil {
			fail(err)
		}
		emit("Table II — transition refinement (cf. paper Table II)", rows)
		if *verify {
			if err := eval.Verify(rows); err != nil {
				fail(err)
			}
		}
	}
}
