// Command mpbench regenerates the paper's evaluation tables: Table I
// (quorum semantics) and Table II (transition refinement), plus the
// state-space analysis of §II-C, a liveness table (the bundled protocols'
// eventuality properties under nested DFS) and a store-tier table
// (collapse compression against the exact stores, lossy bitstate against
// an equal-memory exact cap). It doubles as the CI perf harness: -out
// serializes every table of a run into a machine-readable report, and
// -baseline gates the run against a committed report, failing on
// wall-clock regressions past a threshold or on determinism drift.
//
//	mpbench -table 1
//	mpbench -table 2 -budget 2m
//	mpbench -table 2 -paper          # includes Echo Multicast (3,1,1,1)
//	mpbench -table 3                 # liveness: NDFS unreduced/SPOR/weakly fair
//	mpbench -table 4                 # store tiers: collapse + lossy bitstate
//	mpbench -analysis
//	mpbench -max-states 20000 -budget 30s -out BENCH_ci.json -baseline BENCH_baseline.json
package main

import (
	"flag"
	"fmt"
	"os"
	"time"

	"mpbasset/internal/cli"
	"mpbasset/internal/eval"
)

func main() {
	var (
		table    = flag.Int("table", 0, "table to regenerate: 1, 2, 3 (liveness) or 4 (store tiers); 0 = all")
		budget   = flag.Duration("budget", time.Minute, "wall-clock limit per cell (the paper's 48h-timeout analogue)")
		maxSt    = flag.Int("max-states", 0, "state limit per cell (0 = unlimited); fixes the explored work so -baseline compares like against like")
		paper    = flag.Bool("paper", false, "run paper-scale workloads (adds Echo Multicast (3,1,1,1); doubles Paxos ballots)")
		analysis = flag.Bool("analysis", false, "print the paper's §II-C/§IV-A state-space analysis")
		verify   = flag.Bool("verify", true, "fail if any verdict deviates from the paper's")
		jsonOut  = flag.Bool("json", false, "emit machine-readable JSON instead of the table layout")
		outFile  = flag.String("out", "", "write the run's machine-readable report (all tables) to this file, e.g. BENCH_ci.json")
		baseline = flag.String("baseline", "", "gate the run against this committed report (e.g. BENCH_baseline.json): exit 1 on regressions")
		regPct   = flag.Float64("regress-pct", 25, "tolerated per-cell wall-clock growth over the baseline, in percent (needs -baseline)")
		regFloor = flag.Duration("regress-floor", 250*time.Millisecond, "noise floor: baseline cells faster than this are not duration-gated (needs -baseline)")
		workers  = flag.Int("workers", 0, "run the stateful DFS and DPOR cells with this many speculative workers (0 = sequential)")
		stealD   = flag.Int("steal-depth", 0, "events a parallel DFS/DPOR worker speculates below a stolen sibling or backtrack point (0 = default 8; needs -workers)")
		memB     = flag.String("mem-budget", "", "visited-set memory budget per cell, e.g. 512M: past it, fingerprints spill to sorted runs on disk (empty = in-memory only)")
		spillDir = flag.String("spill-dir", "", "directory for spill run files (default: a temporary directory per cell; needs -mem-budget)")
		compress = flag.Bool("compress", false, "run the stateful cells with collapse compression (results bit-identical, only wall-clock moves)")
		lossy    = flag.Bool("lossy", false, "run the stateful cells over the EXPLICITLY LOSSY bitstate store — cell state counts become coverage claims")
		bitsB    = flag.String("bitstate-bytes", "", "bit-array size for -lossy, e.g. 64M (empty = 64M default; needs -lossy)")
	)
	flag.Parse()

	fail := func(err error) {
		fmt.Fprintln(os.Stderr, "mpbench:", err)
		os.Exit(1)
	}
	if *analysis {
		// The §II-C analysis runs no search; engine flags are irrelevant.
		eval.PrintAnalysis(os.Stdout)
		return
	}
	// mpbench's stateful cells run SPOR (a DFS search); reuse the shared
	// flag validation so -steal-depth without -workers (or -spill-dir
	// without -mem-budget) is rejected, not silently ignored.
	if err := cli.ValidateParallelFlags("spor", *workers, 0, 0, *stealD); err != nil {
		fail(err)
	}
	memBudget, err := cli.ParseBytes(*memB)
	if err != nil {
		fail(err)
	}
	if err := cli.ValidateSpillFlags("spor", memBudget, *spillDir); err != nil {
		fail(err)
	}
	bitstateBytes, err := cli.ParseBytes(*bitsB)
	if err != nil {
		fail(err)
	}
	if err := cli.ValidateLossyFlags("spor", *lossy, bitstateBytes, memBudget, ""); err != nil {
		fail(err)
	}
	if *baseline == "" && (*regPct != 25 || *regFloor != 250*time.Millisecond) {
		fail(fmt.Errorf("-regress-pct/-regress-floor require -baseline (they tune the regression gate)"))
	}
	opts := eval.Options{
		Budget: *budget, MaxStates: *maxSt, Paper: *paper,
		Workers: *workers, StealDepth: *stealD,
		StoreBudgetBytes: memBudget, SpillDir: *spillDir,
		Compress: *compress, Lossy: *lossy, BitstateBytes: bitstateBytes,
	}
	var report eval.Report
	emit := func(title string, rows []eval.Row) {
		report.Tables = append(report.Tables, eval.TableToJSON(title, rows))
		if *jsonOut {
			if err := eval.WriteJSON(os.Stdout, title, rows); err != nil {
				fail(err)
			}
			return
		}
		eval.FormatRows(os.Stdout, title, rows)
	}
	if *table == 0 || *table == 1 {
		rows, err := eval.Table1(opts)
		if err != nil {
			fail(err)
		}
		emit("Table I — quorum semantics (cf. paper Table I)", rows)
		if *verify {
			if err := eval.Verify(rows); err != nil {
				fail(err)
			}
		}
		fmt.Println()
	}
	if *table == 0 || *table == 2 {
		rows, err := eval.Table2(opts)
		if err != nil {
			fail(err)
		}
		emit("Table II — transition refinement (cf. paper Table II)", rows)
		if *verify {
			if err := eval.Verify(rows); err != nil {
				fail(err)
			}
		}
		if *table == 0 {
			fmt.Println()
		}
	}
	if *table == 0 || *table == 3 {
		rows, err := eval.LivenessTable(opts)
		if err != nil {
			fail(err)
		}
		emit("Liveness — nested DFS over the Büchi product", rows)
		if *verify {
			if err := eval.Verify(rows); err != nil {
				fail(err)
			}
		}
		if *table == 0 {
			fmt.Println()
		}
	}
	if *table == 0 || *table == 4 {
		// No Verify here: the compression row's cells are pinned against
		// each other by the baseline determinism gate, and the bitstate
		// row's cells are coverage claims with no paper verdict to match.
		rows, err := eval.StoreTierTable(opts)
		if err != nil {
			fail(err)
		}
		emit("Store tiers — collapse compression and lossy bitstate", rows)
	}
	if *outFile != "" {
		if err := eval.WriteReportFile(*outFile, report); err != nil {
			fail(err)
		}
		fmt.Fprintf(os.Stderr, "mpbench: report written to %s\n", *outFile)
	}
	if *baseline != "" {
		base, err := eval.ReadReportFile(*baseline)
		if err != nil {
			fail(err)
		}
		// An explicit `-regress-floor 0` means "gate every cell": map it to
		// the library's negative disable sentinel (0 would re-select the
		// default floor).
		floorMS := float64(*regFloor) / float64(time.Millisecond)
		if *regFloor == 0 {
			floorMS = -1
		}
		regs := eval.CompareReports(base, report, eval.CompareOptions{
			MaxSlowdownPct: *regPct,
			MinDurationMS:  floorMS,
		})
		if len(regs) > 0 {
			for _, r := range regs {
				fmt.Fprintln(os.Stderr, "mpbench: regression:", r)
			}
			fail(fmt.Errorf("%d regression(s) against %s", len(regs), *baseline))
		}
		fmt.Fprintf(os.Stderr, "mpbench: no regressions against %s\n", *baseline)
	}
}
